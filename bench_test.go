package shatter

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (DESIGN.md §4), plus ablation benches for the
// design choices DESIGN.md §5 calls out. Each benchmark regenerates its
// experiment end to end; the b.N loop re-runs the measured phase so
// `go test -bench` reports per-experiment wall cost.
//
// The suite is built once (12-day quick configuration so the full harness
// completes in minutes) and shared across benchmarks.

import (
	"strconv"
	"sync"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/core"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/solver"
	"github.com/acyd-lab/shatter/internal/testbed"
)

var (
	benchOnce  sync.Once
	benchSuite *core.Suite
	benchErr   error
)

func suite(b *testing.B) *core.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite, benchErr = core.NewSuite(core.SuiteConfig{
			Days: 12, TrainDays: 9, Seed: 20230427, WindowLen: 10,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// BenchmarkFig3ControllerCost regenerates Fig 3: daily ASHRAE vs SHATTER
// control cost for both houses.
func BenchmarkFig3ControllerCost(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		results, err := s.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.SavingsPct <= 0 {
				b.Fatalf("house %s: no savings", r.House)
			}
		}
	}
}

// BenchmarkFig4HyperparameterTuning regenerates Fig 4: the DBSCAN and
// K-Means validity-index sweeps.
func BenchmarkFig4HyperparameterTuning(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ProgressiveTraining regenerates Fig 5: F1 against training
// days for both ADMs on all four datasets.
func BenchmarkFig5ProgressiveTraining(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ClusterGeometry regenerates Fig 6: hull-area comparison of
// the two clustering backends.
func BenchmarkFig6ClusterGeometry(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		results, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 2 {
			b.Fatal("missing backend")
		}
	}
}

// BenchmarkTableIIICaseStudy regenerates the Section V case study window.
func BenchmarkTableIIICaseStudy(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.CaseStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIVADMPerformance regenerates Table IV: the ADM metric grid
// across backends, knowledge levels, and datasets.
func BenchmarkTableIVADMPerformance(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 16 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkTableVAttackCost regenerates Table V: BIoTA vs Greedy vs SHATTER
// attack cost under both ADMs and knowledge levels.
func BenchmarkTableVAttackCost(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.TableV(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ApplianceTriggering regenerates Fig 10: attack cost with
// and without the Algorithm-1 triggering stage.
func BenchmarkFig10ApplianceTriggering(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		results, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.TriggerExtra <= 0 {
				b.Fatalf("house %s: triggering added nothing", r.House)
			}
		}
	}
}

// BenchmarkTableVIZoneAccess regenerates Table VI: triggering impact under
// restricted zone-sensor access.
func BenchmarkTableVIZoneAccess(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.TableVI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVIIApplianceAccess regenerates Table VII: triggering impact
// under restricted appliance access.
func BenchmarkTableVIIApplianceAccess(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.TableVII(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11aHorizonScaling regenerates Fig 11a: joint search cost
// against the optimisation horizon (exponential shape).
func BenchmarkFig11aHorizonScaling(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		points, err := s.Fig11a([]int{4, 6, 8, 10})
		if err != nil {
			b.Fatal(err)
		}
		if points[len(points)-1].Nodes <= points[0].Nodes {
			b.Fatal("no growth")
		}
	}
}

// BenchmarkFig11bZoneScaling regenerates Fig 11b: windowed-DP cost against
// the number of zones (polynomial shape).
func BenchmarkFig11bZoneScaling(b *testing.B) {
	s := suite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11b([]int{4, 8, 12, 16, 20, 24}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTestbedValidation regenerates the Section VI testbed experiment:
// dynamics identification plus benign/attacked demonstration hours.
func BenchmarkTestbedValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.Validate(testbed.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.IncreasePct <= 0 {
			b.Fatal("attack did not increase energy")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationWindowLength sweeps the optimisation horizon I and
// reports the planning cost of the full SHATTER schedule at each setting.
func BenchmarkAblationWindowLength(b *testing.B) {
	s := suite(b)
	for _, window := range []int{5, 10, 20} {
		b.Run("I="+strconv.Itoa(window), func(b *testing.B) {
			model, err := adm.Train(mustTrain(b, s), adm.DefaultConfig(adm.KMeans))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				pl := plannerFor(s, model, window)
				if _, err := pl.PlanSHATTER(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPruning compares branch-and-bound with and without bound
// pruning on the same window.
func BenchmarkAblationPruning(b *testing.B) {
	oracle := bandOracle{}
	zones := []home.ZoneID{home.Outside, home.Bedroom, home.Livingroom, home.Kitchen, home.Bathroom}
	w := solver.Window{
		StartSlot: 18 * 60, Length: 9,
		StartZone: home.Livingroom, StartArrival: 18*60 - 3,
		Zones: zones,
	}
	cost := func(_ int, z home.ZoneID) float64 { return float64(int(z)) }
	allowed := func(int, home.ZoneID) bool { return true }
	for _, prune := range []bool{true, false} {
		name := "pruned"
		if !prune {
			name = "unpruned"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.BranchAndBound(w, oracle, cost, allowed, solver.BBConfig{Prune: prune}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioSweep runs the full pipeline (generate → train ADM →
// plan SHATTER → trigger → evaluate) over non-ARAS registry archetypes and
// a procedural ramp to 12 zones / 4 occupants — the real end-to-end scaling
// measurement behind the scenario_sweep series in cmd/bench.
func BenchmarkScenarioSweep(b *testing.B) {
	s := suite(b)
	specs := scenario.DefaultSweep(s.Config.Seed)
	for i := 0; i < b.N; i++ {
		points, err := s.ScenarioSweep(specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.BenignUSD <= 0 {
				b.Fatalf("%s: degenerate benign bill", p.ScenarioID)
			}
		}
	}
}

// BenchmarkAblationBatterySize sweeps the battery capacity in the TOU cost
// model and re-prices the benign month.
func BenchmarkAblationBatterySize(b *testing.B) {
	s := suite(b)
	for _, kwh := range []float64{0, 3, 6} {
		b.Run("kWh="+strconv.Itoa(int(kwh)), func(b *testing.B) {
			pricing := s.Pricing
			pricing.BatteryKWh = kwh
			for i := 0; i < b.N; i++ {
				ctrl := NewSHATTERController(s.Params)
				if _, err := Simulate(s.Trace("A"), ctrl, s.Params, pricing); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// bandOracle accepts stays of 2..12 minutes everywhere (bench helper).
type bandOracle struct{}

func (bandOracle) MaxStay(int, home.ZoneID, int) (int, bool) { return 12, true }
func (bandOracle) InRangeStay(_ int, _ home.ZoneID, _ int, stay int) bool {
	return stay >= 2 && stay <= 12
}

func mustTrain(b *testing.B, s *core.Suite) *Trace {
	b.Helper()
	tr, err := s.Trace("A").SubTrace(0, s.Config.TrainDays)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func plannerFor(s *core.Suite, model *ADM, window int) *Planner {
	return NewPlanner(s.Trace("A"), model, s.Params, s.Pricing, attack.Full(s.Trace("A").House), window)
}
