package fleetd

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/acyd-lab/shatter/internal/stream"
)

// The fleet manifest is the service's durable intent journal: every admitted
// job spec (the AddRequest, not the materialized jobs — replay re-resolves
// it through the job factory), every admin mutation (pause/resume/remove),
// and every per-home completion is appended as one framed record. On
// restart, NewService replays the journal to rebuild the fleet: finished
// homes are restored from their journaled results without re-running,
// in-flight homes are re-admitted and resume from their day-boundary
// checkpoints. Each record is individually framed exactly like a stream
// checkpoint — 8-byte magic, big-endian payload length, CRC-32 (IEEE), then
// the JSON payload — so a reader rejects corruption before decoding
// anything, and a record half-written by a crash is recognizable as a torn
// tail rather than silent garbage.

// Manifest record operations.
const (
	manifestOpAdd    = "add"
	manifestOpPause  = "pause"
	manifestOpResume = "resume"
	manifestOpRemove = "remove"
	manifestOpDone   = "done"
)

// ManifestRecord is one journal entry. Op selects which payload fields are
// meaningful: add carries the job spec, the per-home ops carry Home, and
// done additionally carries the home's supervision record plus (for
// completed homes) its full deterministic result.
type ManifestRecord struct {
	Op string `json:"op"`
	// Add is the admitted job spec (op "add").
	Add *AddRequest `json:"add,omitempty"`
	// Home addresses the per-home ops (pause/resume/remove/done).
	Home string `json:"home,omitempty"`
	// Outcome is the terminal supervision record (op "done").
	Outcome *stream.HomeOutcome `json:"outcome,omitempty"`
	// Result is the completed home's full result (op "done" with a
	// completed/retried outcome); quarantined and removed homes have none.
	Result *stream.HomeResult `json:"result,omitempty"`
}

// manifestVersion is bumped when the serialized layout changes; readers
// reject other versions instead of guessing.
const manifestVersion = 1

// manifestMagic prefixes every serialized manifest record.
var manifestMagic = [8]byte{'S', 'H', 'M', 'F', 'S', 'T', '0' + manifestVersion, '\n'}

// maxManifestRecord bounds a record payload so a corrupted length header
// cannot force a huge allocation.
const maxManifestRecord = 64 << 20

// ErrBadManifest is returned when a manifest record fails structural
// validation: bad magic, truncation, checksum mismatch, malformed JSON, or
// an inconsistent payload. Corrupted journals must error cleanly, never
// replay garbage.
var ErrBadManifest = errors.New("fleetd: corrupt manifest")

// validateManifestRecord checks the internal consistency a decoded record
// must have before the service replays it.
func validateManifestRecord(rec *ManifestRecord) error {
	switch rec.Op {
	case manifestOpAdd:
		if rec.Add == nil {
			return fmt.Errorf("%w: add record missing spec", ErrBadManifest)
		}
	case manifestOpPause, manifestOpResume, manifestOpRemove:
		if rec.Home == "" {
			return fmt.Errorf("%w: %s record missing home", ErrBadManifest, rec.Op)
		}
	case manifestOpDone:
		if rec.Home == "" {
			return fmt.Errorf("%w: done record missing home", ErrBadManifest)
		}
		if rec.Outcome == nil {
			return fmt.Errorf("%w: done record for %q missing outcome", ErrBadManifest, rec.Home)
		}
		if rec.Outcome.ID != rec.Home {
			return fmt.Errorf("%w: done record home %q holds outcome of %q", ErrBadManifest, rec.Home, rec.Outcome.ID)
		}
		if rec.Result != nil && rec.Result.ID != rec.Home {
			return fmt.Errorf("%w: done record home %q holds result of %q", ErrBadManifest, rec.Home, rec.Result.ID)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadManifest, rec.Op)
	}
	return nil
}

// WriteManifestRecord serializes one record: magic, payload length, CRC-32,
// then the JSON payload — the same trailer-free fixed header as a stream
// checkpoint, reaching w as a single Write.
func WriteManifestRecord(w io.Writer, rec *ManifestRecord) error {
	if err := validateManifestRecord(rec); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleetd: encode manifest record: %w", err)
	}
	if len(payload) > maxManifestRecord {
		return fmt.Errorf("fleetd: manifest record %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 16+len(payload))
	copy(frame[:8], manifestMagic[:])
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(payload))
	copy(frame[16:], payload)
	_, err = w.Write(frame)
	return err
}

// ReadManifestRecord decodes one record from r. A clean end of journal
// returns io.EOF; a record cut off mid-write (the torn tail a kill -9
// leaves) returns an error wrapping both ErrBadManifest and
// io.ErrUnexpectedEOF, so loaders can distinguish crash truncation from
// in-place corruption; every other malformed input wraps ErrBadManifest.
// It never panics and never returns a record that fails validation.
func ReadManifestRecord(r io.Reader) (*ManifestRecord, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %w", ErrBadManifest, io.ErrUnexpectedEOF)
	}
	if [8]byte(hdr[:8]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadManifest, hdr[:8])
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > maxManifestRecord {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadManifest, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %w", ErrBadManifest, io.ErrUnexpectedEOF)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(hdr[12:16]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadManifest)
	}
	rec := &ManifestRecord{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadManifest, err)
	}
	if err := validateManifestRecord(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadManifest strictly decodes a whole journal: every record must be
// well-formed, including the last. This is the validation entry point (and
// the fuzz target); the service's own loader additionally tolerates a torn
// final record (see OpenManifest).
func ReadManifest(r io.Reader) ([]ManifestRecord, error) {
	var recs []ManifestRecord
	for {
		rec, err := ReadManifestRecord(r)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, *rec)
	}
}

// manifestName is the journal file inside the state dir.
const manifestName = "fleet.manifest"

// ManifestPath names the journal inside a state dir.
func ManifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// Manifest is the open journal: an append-only file handle plus the
// serialization lock. Appends from shard workers (done records) and the
// admin path (add/pause/remove) interleave safely.
type Manifest struct {
	mu   sync.Mutex
	dir  string
	path string
	f    *os.File
}

// OpenManifest opens (creating when absent) dir's manifest journal and
// replays its records. Crash truncation is absorbed here: a torn final
// record — the only damage an append-only journal can take from a kill -9,
// since rewrites are atomic — is dropped and the journal is compacted by an
// atomic rewrite (temp file + rename) of the surviving records. Any other
// corruption is an error: the journal is the fleet's source of truth, and a
// scribbled-on one must not silently replay a subset.
func OpenManifest(dir string) (*Manifest, []ManifestRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := ManifestPath(dir)
	recs, torn, err := loadManifest(path)
	if err != nil {
		return nil, nil, err
	}
	compacted := CompactManifest(recs)
	if torn || len(compacted) != len(recs) {
		if err := rewriteManifest(dir, path, compacted); err != nil {
			return nil, nil, err
		}
		recs = compacted
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Manifest{dir: dir, path: path, f: f}, recs, nil
}

// loadManifest reads the journal leniently: a torn tail truncates the
// replay (torn=true) instead of failing it.
func loadManifest(path string) (recs []ManifestRecord, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	for {
		rec, rerr := ReadManifestRecord(br)
		if rerr == io.EOF {
			return recs, false, nil
		}
		if errors.Is(rerr, io.ErrUnexpectedEOF) {
			return recs, true, nil
		}
		if rerr != nil {
			return nil, false, rerr
		}
		recs = append(recs, *rec)
	}
}

// CompactManifest rewrites a replayed record sequence into its minimal
// equivalent: add records in order, then the surviving per-home state —
// removals, completions, and still-effective pauses. Pause/resume pairs
// that cancelled out are dropped. Replay order within the compacted form is
// immaterial: mutations always refer to homes an add record introduces, and
// the service applies them as final state, not as a replayed timeline.
func CompactManifest(recs []ManifestRecord) []ManifestRecord {
	paused := make(map[string]bool)
	out := make([]ManifestRecord, 0, len(recs))
	for i := range recs {
		rec := recs[i]
		switch rec.Op {
		case manifestOpAdd, manifestOpRemove, manifestOpDone:
			out = append(out, rec)
		case manifestOpPause:
			paused[rec.Home] = true
		case manifestOpResume:
			delete(paused, rec.Home)
		}
	}
	for i := range recs {
		if recs[i].Op == manifestOpPause && paused[recs[i].Home] {
			out = append(out, recs[i])
			delete(paused, recs[i].Home)
		}
	}
	return out
}

// rewriteManifest atomically replaces the journal with recs: write to a
// temp file in the same dir, fsync, rename over the old journal. A crash
// anywhere in the rewrite leaves either the old or the new journal intact.
func rewriteManifest(dir, path string, recs []ManifestRecord) error {
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	for i := range recs {
		if err := WriteManifestRecord(w, &recs[i]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Append journals one record. Appends are buffered by the OS, not fsynced:
// a process kill keeps them (the kernel owns the pages), and the power-loss
// window is closed by the Sync the admin paths and Close perform.
func (m *Manifest) Append(rec ManifestRecord) error {
	var buf bytes.Buffer
	if err := WriteManifestRecord(&buf, &rec); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return errors.New("fleetd: manifest closed")
	}
	_, err := m.f.Write(buf.Bytes())
	return err
}

// Sync flushes the journal to stable storage.
func (m *Manifest) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	return m.f.Sync()
}

// Close syncs and closes the journal. Idempotent.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Sync()
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	return err
}
