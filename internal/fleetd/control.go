package fleetd

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
)

// Control-plane topics. Admin requests arrive on fleet/admin/<verb>; the
// service answers on the request's reply topic; metrics snapshots are
// broadcast on fleet/metrics.
const (
	adminFilter  = "fleet/admin/+"
	adminPrefix  = "fleet/admin/"
	MetricsTopic = "fleet/metrics"
	replyPrefix  = "fleet/reply/"
)

// Admin verbs (the last topic segment of an admin request).
const (
	VerbAdd       = "add"
	VerbRemove    = "remove"
	VerbPause     = "pause"
	VerbResume    = "resume"
	VerbDrain     = "drain"
	VerbRehydrate = "rehydrate"
	VerbStatus    = "status"
	VerbStop      = "stop"
	verbProbe     = "probe" // internal: subscription-registration handshake
)

// AddRequest asks the service to admit new homes. The service's JobFactory
// interprets it — the service itself is scenario-agnostic.
type AddRequest struct {
	// Scenarios lists scenario specs in the core grammar (ARAS names or
	// synth:ZxO[@SEED]).
	Scenarios []string `json:"scenarios,omitempty"`
	// Synth, when > 0, adds a synthetic fleet of this size rooted at Seed.
	Synth int    `json:"synth,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
	// Days bounds each home's stream length.
	Days int `json:"days"`
	// Defend enables online detection; Attack applies the paper's
	// injection schedule.
	Defend bool `json:"defend,omitempty"`
	Attack bool `json:"attack,omitempty"`
	// Prefix namespaces the new homes' IDs (IDs must be fleet-unique, so
	// repeated adds of the same scenarios need distinct prefixes).
	Prefix string `json:"prefix,omitempty"`
}

// Request is the admin-request envelope. The verb rides in the topic
// (fleet/admin/<verb>); Reply names the topic the response is published on.
type Request struct {
	ID    string `json:"id"`
	Reply string `json:"reply"`
	// Home addresses per-home verbs (remove/pause/resume).
	Home string `json:"home,omitempty"`
	// Shard addresses per-shard verbs (drain/rehydrate).
	Shard *int `json:"shard,omitempty"`
	// Add carries the payload of an add request.
	Add *AddRequest `json:"add,omitempty"`
}

// Response is the admin-response envelope.
type Response struct {
	ID    string `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Added counts the homes an add request admitted.
	Added int `json:"added,omitempty"`
	// Metrics carries the snapshot a status request asked for.
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// controlPlane is the service side of the admin bus: one subscriber
// dispatching fleet/admin/+ requests, plus the periodic metrics publisher.
type controlPlane struct {
	svc    *Service
	client *mqtt.Client
	quit   chan struct{}
	wg     sync.WaitGroup
}

func newControlPlane(svc *Service, broker string, dial mqtt.DialOptions, every time.Duration) (*controlPlane, error) {
	// The control plane rides through broker restarts: the client redials
	// with the data path's backoff schedule and re-registers the admin
	// subscription itself, so the serve loop below survives an outage.
	dial.Redial = true
	client, err := mqtt.DialWithOptions(broker, dial)
	if err != nil {
		return nil, err
	}
	ch, err := client.Subscribe(adminFilter)
	if err != nil {
		client.Close()
		return nil, err
	}
	cp := &controlPlane{svc: svc, client: client, quit: make(chan struct{})}
	ready := make(chan struct{})
	cp.wg.Add(1)
	go cp.serve(ch, ready)
	// Loopback probe: the broker processes this connection's frames in
	// order, so seeing the probe proves the admin subscription is live
	// before NewService returns.
	if err := client.Publish(adminPrefix+verbProbe, Request{ID: verbProbe}); err != nil {
		client.Close()
		cp.wg.Wait()
		return nil, err
	}
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		client.Close()
		cp.wg.Wait()
		return nil, fmt.Errorf("fleetd: control-plane probe lost")
	}
	cp.wg.Add(1)
	go cp.publishMetrics(every)
	return cp, nil
}

// serve dispatches admin requests serially in arrival order.
func (cp *controlPlane) serve(ch <-chan mqtt.Message, ready chan<- struct{}) {
	defer cp.wg.Done()
	probed := false
	for msg := range ch {
		verb := strings.TrimPrefix(msg.Topic, adminPrefix)
		if verb == verbProbe {
			if !probed {
				probed = true
				close(ready)
			}
			continue
		}
		var req Request
		if err := json.Unmarshal(msg.Payload, &req); err != nil || req.Reply == "" {
			continue // malformed or fire-and-forget: nothing to answer
		}
		resp := cp.handle(verb, &req)
		resp.ID = req.ID
		// A dead reply topic only fails this response; the plane keeps
		// serving.
		_ = cp.client.Publish(req.Reply, resp)
	}
}

// handle executes one admin verb against the service.
func (cp *controlPlane) handle(verb string, req *Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	needShard := func() (int, error) {
		if req.Shard == nil {
			return 0, fmt.Errorf("fleetd: %s request missing shard", verb)
		}
		return *req.Shard, nil
	}
	switch verb {
	case VerbAdd:
		if req.Add == nil {
			return fail(fmt.Errorf("fleetd: add request missing payload"))
		}
		// AddSpec journals the spec to the manifest (when the service is
		// durable) before admitting, so control-plane adds survive a crash.
		n, err := cp.svc.AddSpec(*req.Add)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Added: n}
	case VerbRemove:
		if err := cp.svc.Remove(req.Home); err != nil {
			return fail(err)
		}
	case VerbPause:
		if err := cp.svc.Pause(req.Home); err != nil {
			return fail(err)
		}
	case VerbResume:
		if err := cp.svc.Resume(req.Home); err != nil {
			return fail(err)
		}
	case VerbDrain:
		i, err := needShard()
		if err == nil {
			err = cp.svc.DrainShard(i)
		}
		if err != nil {
			return fail(err)
		}
	case VerbRehydrate:
		i, err := needShard()
		if err == nil {
			err = cp.svc.RehydrateShard(i)
		}
		if err != nil {
			return fail(err)
		}
	case VerbStatus:
		snap := cp.svc.Snapshot()
		return Response{OK: true, Metrics: &snap}
	case VerbStop:
		// Acknowledge first, then trip Done; the embedder owns the actual
		// Close so in-flight state is persisted on its terms.
		cp.svc.stop.Do(func() { close(cp.svc.done) })
	default:
		return fail(fmt.Errorf("fleetd: unknown admin verb %q", verb))
	}
	return Response{OK: true}
}

// publishMetrics broadcasts snapshots on the metrics topic until close.
// A failed publish skips that tick instead of killing the publisher: with
// session resume on the control-plane client, a broker restart is a
// transient the next tick rides out, not a terminal condition.
func (cp *controlPlane) publishMetrics(every time.Duration) {
	defer cp.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-cp.quit:
			return
		case <-tick.C:
			_ = cp.client.Publish(MetricsTopic, cp.svc.Snapshot())
		}
	}
}

func (cp *controlPlane) close() {
	close(cp.quit)
	cp.client.Close()
	cp.wg.Wait()
}

// adminSeq uniquifies reply topics and request IDs across a process's
// admin clients.
var adminSeq atomic.Int64

// Admin is a control-plane client: it speaks the fleet/admin/+ protocol
// over one broker connection, matching responses to requests on a private
// reply topic. Safe for concurrent use.
type Admin struct {
	client *mqtt.Client
	reply  string
	seq    atomic.Int64
	// Timeout bounds each request round-trip; zero defaults to 10s.
	Timeout time.Duration

	mu      sync.Mutex
	pending map[string]chan Response
	closed  bool
}

// NewAdmin connects an admin client to the service's broker. The
// connection redials with the same backoff DialOptions the data path uses,
// re-establishing the private reply-topic subscription (and any Watch
// feed) after a broker restart — requests issued while the broker is down
// fail fast with a disconnected error and succeed again after resume.
func NewAdmin(broker string, dial mqtt.DialOptions) (*Admin, error) {
	dial.Redial = true
	client, err := mqtt.DialWithOptions(broker, dial)
	if err != nil {
		return nil, err
	}
	a := &Admin{
		client:  client,
		reply:   fmt.Sprintf("%sc%d-%d", replyPrefix, adminSeq.Add(1), time.Now().UnixNano()),
		pending: make(map[string]chan Response),
	}
	ch, err := client.Subscribe(a.reply)
	if err != nil {
		client.Close()
		return nil, err
	}
	ready := make(chan struct{})
	go a.dispatch(ch, ready)
	// Same loopback-probe handshake as the service side: prove the reply
	// subscription is registered before the first request goes out.
	if err := client.Publish(a.reply, Response{ID: verbProbe}); err != nil {
		client.Close()
		return nil, err
	}
	select {
	case <-ready:
	case <-time.After(10 * time.Second):
		client.Close()
		return nil, fmt.Errorf("fleetd: admin reply probe lost")
	}
	return a, nil
}

// dispatch routes responses to their waiting requests.
func (a *Admin) dispatch(ch <-chan mqtt.Message, ready chan<- struct{}) {
	probed := false
	for msg := range ch {
		var resp Response
		if err := json.Unmarshal(msg.Payload, &resp); err != nil {
			continue
		}
		if resp.ID == verbProbe {
			if !probed {
				probed = true
				close(ready)
			}
			continue
		}
		a.mu.Lock()
		waiter := a.pending[resp.ID]
		delete(a.pending, resp.ID)
		a.mu.Unlock()
		if waiter != nil {
			waiter <- resp
		}
	}
	// Connection closed: fail everything still waiting.
	a.mu.Lock()
	a.closed = true
	for id, waiter := range a.pending {
		delete(a.pending, id)
		close(waiter)
	}
	a.mu.Unlock()
}

// do performs one request round-trip.
func (a *Admin) do(verb string, req Request) (Response, error) {
	req.ID = fmt.Sprintf("r%d", a.seq.Add(1))
	req.Reply = a.reply
	waiter := make(chan Response, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return Response{}, fmt.Errorf("fleetd: admin connection closed")
	}
	a.pending[req.ID] = waiter
	a.mu.Unlock()
	if err := a.client.Publish(adminPrefix+verb, req); err != nil {
		a.mu.Lock()
		delete(a.pending, req.ID)
		a.mu.Unlock()
		return Response{}, err
	}
	timeout := a.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	select {
	case resp, ok := <-waiter:
		if !ok {
			return Response{}, fmt.Errorf("fleetd: admin connection closed")
		}
		if resp.Error != "" {
			return resp, fmt.Errorf("fleetd: %s: %s", verb, resp.Error)
		}
		return resp, nil
	case <-time.After(timeout):
		a.mu.Lock()
		delete(a.pending, req.ID)
		a.mu.Unlock()
		return Response{}, fmt.Errorf("fleetd: %s request timed out", verb)
	}
}

// Add admits homes described by the request; it returns how many.
func (a *Admin) Add(req AddRequest) (int, error) {
	resp, err := a.do(VerbAdd, Request{Add: &req})
	return resp.Added, err
}

// Remove, Pause, and Resume address one home.
func (a *Admin) Remove(homeID string) error {
	_, err := a.do(VerbRemove, Request{Home: homeID})
	return err
}

func (a *Admin) Pause(homeID string) error {
	_, err := a.do(VerbPause, Request{Home: homeID})
	return err
}

func (a *Admin) Resume(homeID string) error {
	_, err := a.do(VerbResume, Request{Home: homeID})
	return err
}

// Drain and Rehydrate address one shard.
func (a *Admin) Drain(shard int) error {
	_, err := a.do(VerbDrain, Request{Shard: &shard})
	return err
}

func (a *Admin) Rehydrate(shard int) error {
	_, err := a.do(VerbRehydrate, Request{Shard: &shard})
	return err
}

// Status fetches a live metrics snapshot (shard gauges included).
func (a *Admin) Status() (Snapshot, error) {
	resp, err := a.do(VerbStatus, Request{})
	if err != nil {
		return Snapshot{}, err
	}
	if resp.Metrics == nil {
		return Snapshot{}, fmt.Errorf("fleetd: status response missing metrics")
	}
	return *resp.Metrics, nil
}

// Stop asks the service to shut down (its embedder decides persistence).
func (a *Admin) Stop() error {
	_, err := a.do(VerbStop, Request{})
	return err
}

// Watch subscribes to the service's metrics broadcast on this connection.
// The channel closes when the connection does.
func (a *Admin) Watch() (<-chan Snapshot, error) {
	ch, err := a.client.Subscribe(MetricsTopic)
	if err != nil {
		return nil, err
	}
	out := make(chan Snapshot, 4)
	go func() {
		defer close(out)
		for msg := range ch {
			var snap Snapshot
			if json.Unmarshal(msg.Payload, &snap) == nil {
				out <- snap
			}
		}
	}()
	return out, nil
}

// Close tears the admin connection down.
func (a *Admin) Close() error { return a.client.Close() }
