package fleetd

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Metrics is the service's live counter registry. Every shard worker bumps
// the shared atomics as it drives homes, so a snapshot is cheap enough to
// publish every few seconds without pausing the fleet. Counters are
// monotonic over the service's lifetime; gauges (resident, paused, queue
// depths) are read from the shards at snapshot time.
type Metrics struct {
	start time.Time

	homesAdded     atomic.Int64
	homesCompleted atomic.Int64
	homesFailed    atomic.Int64
	homesRemoved   atomic.Int64
	days           atomic.Int64
	slots          atomic.Int64
	sensorEvents   atomic.Int64
	actionEvents   atomic.Int64
	verdicts       atomic.Int64
	anomalies      atomic.Int64
	retries        atomic.Int64
	restores       atomic.Int64
	checkpoints    atomic.Int64
	watchdogTrips  atomic.Int64

	// Detection latency: stream-time distance (in slots, i.e. minutes of
	// simulated time) between an episode's last slot and the slot whose
	// ingestion closed it and produced the verdict. Sum/count/max give the
	// mean and worst case without storing a histogram.
	latencySumSlots atomic.Int64
	latencyCount    atomic.Int64
	latencyMaxSlots atomic.Int64
}

// NewMetrics returns a registry with its rate epoch set to now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// observeVerdict records a verdict and its stream-time detection latency.
func (m *Metrics) observeVerdict(lagSlots int64, anomalous bool) {
	m.verdicts.Add(1)
	if anomalous {
		m.anomalies.Add(1)
	}
	if lagSlots < 0 {
		return // episode closed by end-of-stream flush: no meaningful lag
	}
	m.latencySumSlots.Add(lagSlots)
	m.latencyCount.Add(1)
	for {
		cur := m.latencyMaxSlots.Load()
		if lagSlots <= cur || m.latencyMaxSlots.CompareAndSwap(cur, lagSlots) {
			return
		}
	}
}

// ShardStatus is one shard's gauge set at snapshot time.
type ShardStatus struct {
	Shard int `json:"shard"`
	// Pending homes are admitted but not yet opened (the admission window
	// is the fleet's backpressure valve); Resident homes hold live pipeline
	// state; Ready homes sit on the run queue at a day boundary; Running
	// homes are on a worker right now; Paused homes are parked.
	Pending  int `json:"pending"`
	Resident int `json:"resident"`
	Ready    int `json:"ready"`
	Running  int `json:"running"`
	Paused   int `json:"paused"`
	// Done and Failed count homes that finished on this shard.
	Done   int `json:"done"`
	Failed int `json:"failed"`
	// Drained reports whether the shard is currently drained (state
	// persisted to checkpoints, no live pipelines).
	Drained bool `json:"drained"`
	// ApproxHeapBytes is the service heap prorated by this shard's share of
	// resident homes — an approximation (Go's heap is global), but it tracks
	// which shard holds the live state.
	ApproxHeapBytes uint64 `json:"approx_heap_bytes"`
}

// Snapshot is the metrics document published on the metrics topic and
// printed by cmd/fleetd. All rates are computed over the service lifetime.
type Snapshot struct {
	UptimeNS       int64 `json:"uptime_ns"`
	HomesAdded     int64 `json:"homes_added"`
	HomesActive    int64 `json:"homes_active"` // added - completed - failed - removed
	HomesCompleted int64 `json:"homes_completed"`
	HomesFailed    int64 `json:"homes_failed"`
	HomesRemoved   int64 `json:"homes_removed"`
	Days           int64 `json:"days"`
	Slots          int64 `json:"slots"`
	SensorEvents   int64 `json:"sensor_events"`
	ActionEvents   int64 `json:"action_events"`
	Verdicts       int64 `json:"verdicts"`
	Anomalies      int64 `json:"anomalies"`
	Retries        int64 `json:"retries"`
	Restores       int64 `json:"restores"`
	Checkpoints    int64 `json:"checkpoints"`
	// WatchdogTrips counts homes whose transport the liveness watchdog
	// force-closed after ProgressDeadline elapsed with no day boundary.
	WatchdogTrips int64 `json:"watchdog_trips"`

	HomesPerSec  float64 `json:"homes_per_sec"` // completed homes / uptime
	DaysPerSec   float64 `json:"days_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`

	// DetectionLatencyMeanSlots / MaxSlots are stream-time (simulated
	// minutes) between an episode ending and its verdict.
	DetectionLatencyMeanSlots float64 `json:"detection_latency_mean_slots"`
	DetectionLatencyMaxSlots  int64   `json:"detection_latency_max_slots"`

	HeapAllocBytes uint64        `json:"heap_alloc_bytes"`
	Goroutines     int           `json:"goroutines"`
	Shards         []ShardStatus `json:"shards"`
}

// Snapshot assembles the current counter values plus the given per-shard
// gauges into a publishable document.
func (m *Metrics) Snapshot(shards []ShardStatus) Snapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	up := time.Since(m.start)
	s := Snapshot{
		UptimeNS:       up.Nanoseconds(),
		HomesAdded:     m.homesAdded.Load(),
		HomesCompleted: m.homesCompleted.Load(),
		HomesFailed:    m.homesFailed.Load(),
		HomesRemoved:   m.homesRemoved.Load(),
		Days:           m.days.Load(),
		Slots:          m.slots.Load(),
		SensorEvents:   m.sensorEvents.Load(),
		ActionEvents:   m.actionEvents.Load(),
		Verdicts:       m.verdicts.Load(),
		Anomalies:      m.anomalies.Load(),
		Retries:        m.retries.Load(),
		Restores:       m.restores.Load(),
		Checkpoints:    m.checkpoints.Load(),
		WatchdogTrips:  m.watchdogTrips.Load(),
		HeapAllocBytes: ms.HeapAlloc,
		Goroutines:     runtime.NumGoroutine(),
		Shards:         shards,
	}
	s.HomesActive = s.HomesAdded - s.HomesCompleted - s.HomesFailed - s.HomesRemoved
	if secs := up.Seconds(); secs > 0 {
		s.HomesPerSec = float64(s.HomesCompleted) / secs
		s.DaysPerSec = float64(s.Days) / secs
		s.EventsPerSec = float64(s.SensorEvents+s.ActionEvents+s.Verdicts) / secs
	}
	if n := m.latencyCount.Load(); n > 0 {
		s.DetectionLatencyMeanSlots = float64(m.latencySumSlots.Load()) / float64(n)
		s.DetectionLatencyMaxSlots = m.latencyMaxSlots.Load()
	}
	// Prorate the (global) heap across shards by resident share so the
	// per-shard figure reflects who holds the live pipelines.
	resident := 0
	for i := range shards {
		resident += shards[i].Resident
	}
	for i := range s.Shards {
		if resident > 0 {
			s.Shards[i].ApproxHeapBytes = uint64(float64(ms.HeapAlloc) * float64(s.Shards[i].Resident) / float64(resident))
		}
	}
	return s
}
