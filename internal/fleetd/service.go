package fleetd

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/stream"
)

// JobFactory resolves an admin AddRequest into concrete stream jobs. The
// service itself is scenario-agnostic; the factory (supplied by the core
// layer) owns world materialization, ADM training, and job assembly.
type JobFactory func(req AddRequest) ([]stream.Job, error)

// Config assembles a fleet service. The zero value runs one shard with the
// shard defaults, no control plane, and no metrics publishing.
type Config struct {
	// Shards is the horizontal partition count; 0 defaults to 1. Homes are
	// assigned round-robin in add order.
	Shards int
	// Shard holds the per-shard scheduler and transport options (worker
	// count, admission window, supervision, chaos, frame transport).
	Shard ShardOptions

	// Broker, when non-empty, attaches the control plane: the service
	// subscribes to fleet/admin/+ for admin requests and publishes metrics
	// snapshots on fleet/metrics every MetricsEvery (default 2s). This is
	// the control-plane connection only; per-home frame transport is
	// Shard.Broker.
	Broker string
	// MetricsEvery is the metrics publishing cadence; 0 defaults to 2s.
	MetricsEvery time.Duration
	// Dial configures the control-plane connections.
	Dial mqtt.DialOptions

	// Jobs resolves control-plane add requests; nil rejects them (homes can
	// still be added programmatically via Add).
	Jobs JobFactory

	// StateDir enables the durable fleet manifest: admissions through
	// AddSpec and the control plane, admin mutations (pause/resume/remove),
	// and per-home completions are journaled to <StateDir>/fleet.manifest,
	// and day-boundary checkpoints default to <StateDir>/checkpoints (unless
	// Shard.CheckpointDir overrides). NewService replays the manifest:
	// finished homes are restored from their journaled results without
	// re-running, in-flight homes are re-admitted (paused ones still paused)
	// and resume from their checkpoints — so a service killed without drain
	// and restarted produces results byte-identical to an uninterrupted run.
	// Requires Jobs (replay re-resolves specs through the factory).
	// Programmatic Add is NOT journaled; durable fleets admit via AddSpec.
	StateDir string
}

// endedHome is a terminal home restored from the manifest rather than run
// by a shard this process lifetime.
type endedHome struct {
	result  stream.HomeResult
	outcome stream.HomeOutcome
}

// Service is the long-running fleet runtime: a set of shards multiplexing
// homes over worker pools, a shared metrics registry, and (optionally) an
// MQTT control plane.
type Service struct {
	cfg    Config
	met    *Metrics
	shards []*Shard
	man    *Manifest

	// admitMu serializes AddSpec's journal-then-admit sequence so manifest
	// add records land in admission order.
	admitMu sync.Mutex

	mu    sync.Mutex
	order []string             // home IDs in add order, for Result
	where map[string]int       // home ID -> shard (endedShard for manifest-restored terminal homes)
	ended map[string]endedHome // terminal homes restored from the manifest
	next  int                  // round-robin cursor
	ctl   *controlPlane
	done  chan struct{}
	stop  sync.Once

	resumedDone int // terminal homes restored from the manifest
	resumedLive int // in-flight homes re-admitted from the manifest
}

// endedShard is the where-map sentinel for homes that finished in a prior
// process lifetime: they live in the ended map, not on any shard.
const endedShard = -1

// NewService starts the shards, replays the manifest when a state dir is
// configured, and then attaches the control plane — so an admin never
// observes a half-restored fleet.
func NewService(cfg Config) (*Service, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.MetricsEvery <= 0 {
		cfg.MetricsEvery = 2 * time.Second
	}
	if cfg.StateDir != "" && cfg.Shard.CheckpointDir == "" {
		cfg.Shard.CheckpointDir = filepath.Join(cfg.StateDir, "checkpoints")
	}
	s := &Service{
		cfg:   cfg,
		met:   NewMetrics(),
		where: make(map[string]int),
		ended: make(map[string]endedHome),
		done:  make(chan struct{}),
	}
	if cfg.StateDir != "" {
		// The completion hook journals terminal homes; it must be wired
		// before any shard worker can finish one.
		s.cfg.Shard.onDone = s.noteDone
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, s.cfg.Shard, s.met))
	}
	if cfg.StateDir != "" {
		man, recs, err := OpenManifest(cfg.StateDir)
		if err != nil {
			s.Close(false)
			return nil, err
		}
		s.man = man
		if err := s.replay(recs); err != nil {
			s.Close(false)
			return nil, fmt.Errorf("fleetd: manifest replay: %w", err)
		}
	}
	if cfg.Broker != "" {
		ctl, err := newControlPlane(s, cfg.Broker, cfg.Dial, cfg.MetricsEvery)
		if err != nil {
			s.Close(false)
			return nil, err
		}
		s.ctl = ctl
	}
	return s, nil
}

// replay rebuilds the fleet from manifest records: add specs re-resolve
// through the job factory, mutations collapse to final per-home state, and
// each job lands either in the ended map (done/removed, with its journaled
// outcome) or back on a shard (in-flight, paused when a pause was in
// effect) to resume from its day-boundary checkpoint.
func (s *Service) replay(recs []ManifestRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if s.cfg.Jobs == nil {
		return fmt.Errorf("fleetd: state dir holds a manifest but the service has no job factory")
	}
	var jobs []stream.Job
	seen := make(map[string]bool)
	paused := make(map[string]bool)
	removed := make(map[string]bool)
	finished := make(map[string]*ManifestRecord)
	for i := range recs {
		rec := &recs[i]
		switch rec.Op {
		case manifestOpAdd:
			js, err := s.cfg.Jobs(*rec.Add)
			if err != nil {
				return err
			}
			for _, j := range js {
				if seen[j.ID] {
					return fmt.Errorf("fleetd: manifest admits home %q twice", j.ID)
				}
				seen[j.ID] = true
			}
			jobs = append(jobs, js...)
		case manifestOpPause:
			paused[rec.Home] = true
		case manifestOpResume:
			delete(paused, rec.Home)
		case manifestOpRemove:
			removed[rec.Home] = true
		case manifestOpDone:
			finished[rec.Home] = rec
		}
	}
	var live []stream.Job
	for _, j := range jobs {
		switch {
		case finished[j.ID] != nil:
			rec := finished[j.ID]
			e := endedHome{outcome: *rec.Outcome, result: stream.HomeResult{ID: j.ID}}
			if rec.Result != nil {
				e.result = *rec.Result
			}
			s.end(j.ID, e)
		case removed[j.ID]:
			s.end(j.ID, endedHome{
				outcome: stream.HomeOutcome{ID: j.ID, Status: OutcomeRemoved},
				result:  stream.HomeResult{ID: j.ID},
			})
		default:
			live = append(live, j)
		}
	}
	if err := s.admit(live, paused); err != nil {
		return err
	}
	// end() and admit() each appended their subset; Result order must be
	// the original admission order with ended and live homes interleaved.
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		ids[i] = j.ID
	}
	s.mu.Lock()
	s.order = ids
	s.mu.Unlock()
	s.resumedDone = len(s.ended)
	s.resumedLive = len(live)
	return nil
}

// end registers a manifest-restored terminal home and accounts it in the
// lifetime counters. A stale checkpoint (crash between the done record and
// checkpoint removal) is cleaned up here — replay is its tombstone.
func (s *Service) end(id string, e endedHome) {
	s.mu.Lock()
	s.order = append(s.order, id)
	s.where[id] = endedShard
	s.ended[id] = e
	s.mu.Unlock()
	s.met.homesAdded.Add(1)
	switch e.outcome.Status {
	case OutcomeRemoved:
		s.met.homesRemoved.Add(1)
	case stream.OutcomeQuarantined:
		s.met.homesFailed.Add(1)
	default:
		s.met.homesCompleted.Add(1)
	}
	if dir := s.cfg.Shard.CheckpointDir; dir != "" {
		_ = stream.RemoveCheckpoint(dir, id)
	}
}

// noteDone is the shard completion hook (StateDir only): journal the
// terminal home so a restart restores it instead of re-running. Appends are
// deliberately not fsynced on this hot path; a lost record only means the
// home replays from its checkpoint — deterministically — on restart.
func (s *Service) noteDone(res stream.HomeResult, out stream.HomeOutcome) {
	rec := ManifestRecord{Op: manifestOpDone, Home: out.ID, Outcome: &out}
	switch out.Status {
	case stream.OutcomeCompleted, stream.OutcomeRetried:
		rec.Result = &res
	}
	_ = s.man.Append(rec)
}

// journal appends one admin mutation record and syncs it to disk. Called
// after the mutation succeeded; no-op without a state dir.
func (s *Service) journal(rec ManifestRecord) error {
	if s.man == nil {
		return nil
	}
	if err := s.man.Append(rec); err != nil {
		return err
	}
	return s.man.Sync()
}

// Add admits jobs to the fleet, round-robin across shards in add order.
// IDs must be unique fleet-wide (they key checkpoints and MQTT topics).
// Add is NOT journaled — a durable fleet admits via AddSpec so the spec
// can be replayed through the job factory on restart.
func (s *Service) Add(jobs []stream.Job) error {
	return s.admit(jobs, nil)
}

// admit is Add plus the replay path's pre-paused set.
func (s *Service) admit(jobs []stream.Job, paused map[string]bool) error {
	if len(jobs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkJobsLocked(jobs); err != nil {
		return err
	}
	// Partition preserving add order within each shard.
	batches := make([][]stream.Job, len(s.shards))
	assign := make([]int, len(jobs))
	cursor := s.next
	for i, j := range jobs {
		sh := cursor % len(s.shards)
		assign[i] = sh
		batches[sh] = append(batches[sh], j)
		cursor++
	}
	for sh, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := s.shards[sh].add(batch, paused); err != nil {
			return err
		}
	}
	for i, j := range jobs {
		s.order = append(s.order, j.ID)
		s.where[j.ID] = assign[i]
	}
	s.next = cursor
	return nil
}

// checkJobsLocked validates a batch against the fleet: well-formed jobs,
// no intra-batch duplicates, no collision with admitted or ended homes.
func (s *Service) checkJobsLocked(jobs []stream.Job) error {
	batch := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.ID == "" || j.Open == nil {
			return fmt.Errorf("fleetd: job missing ID or Open")
		}
		if _, dup := s.where[j.ID]; dup || batch[j.ID] {
			return fmt.Errorf("fleetd: duplicate home ID %q", j.ID)
		}
		batch[j.ID] = true
	}
	return nil
}

// AddSpec resolves an add request through the service's job factory and
// admits the homes. With a state dir, the spec is journaled (and synced)
// before admission, so the durable intent always covers the admitted homes:
// a crash between journal and admit re-admits them fresh on restart, which
// replays identically.
func (s *Service) AddSpec(req AddRequest) (int, error) {
	if s.cfg.Jobs == nil {
		return 0, fmt.Errorf("fleetd: service has no job factory")
	}
	jobs, err := s.cfg.Jobs(req)
	if err != nil {
		return 0, err
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	// Validate before journaling so a rejected add leaves no record.
	s.mu.Lock()
	err = s.checkJobsLocked(jobs)
	s.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if err := s.journal(ManifestRecord{Op: manifestOpAdd, Add: &req}); err != nil {
		return 0, err
	}
	if err := s.admit(jobs, nil); err != nil {
		return 0, err
	}
	return len(jobs), nil
}

// Resumed reports what the manifest replay restored: homes already
// terminal (served from their journaled results) and in-flight homes
// re-admitted to shards.
func (s *Service) Resumed() (done, live int) {
	return s.resumedDone, s.resumedLive
}

// shardOf locates a home's shard.
func (s *Service) shardOf(homeID string) (*Shard, error) {
	s.mu.Lock()
	idx, ok := s.where[homeID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleetd: unknown home %q", homeID)
	}
	if idx == endedShard {
		return nil, fmt.Errorf("fleetd: home %q already finished", homeID)
	}
	return s.shards[idx], nil
}

// Pause / Resume / Remove forward to the home's shard and journal the
// mutation (synced) once it succeeds, so a restart replays the same fleet
// shape an uninterrupted service would have.
func (s *Service) Pause(homeID string) error {
	sh, err := s.shardOf(homeID)
	if err != nil {
		return err
	}
	if err := sh.Pause(homeID); err != nil {
		return err
	}
	return s.journal(ManifestRecord{Op: manifestOpPause, Home: homeID})
}

func (s *Service) Resume(homeID string) error {
	sh, err := s.shardOf(homeID)
	if err != nil {
		return err
	}
	if err := sh.Resume(homeID); err != nil {
		return err
	}
	return s.journal(ManifestRecord{Op: manifestOpResume, Home: homeID})
}

func (s *Service) Remove(homeID string) error {
	sh, err := s.shardOf(homeID)
	if err != nil {
		return err
	}
	if err := sh.Remove(homeID); err != nil {
		return err
	}
	return s.journal(ManifestRecord{Op: manifestOpRemove, Home: homeID})
}

// shard bounds-checks a shard index.
func (s *Service) shard(i int) (*Shard, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("fleetd: shard %d out of range [0,%d)", i, len(s.shards))
	}
	return s.shards[i], nil
}

// DrainShard quiesces one shard and persists its homes to checkpoints.
func (s *Service) DrainShard(i int) error {
	sh, err := s.shard(i)
	if err != nil {
		return err
	}
	return sh.Drain()
}

// RehydrateShard readmits a drained shard's homes from their checkpoints.
func (s *Service) RehydrateShard(i int) error {
	sh, err := s.shard(i)
	if err != nil {
		return err
	}
	return sh.Rehydrate()
}

// WaitIdle blocks until every admitted home on every shard reached a
// terminal state.
func (s *Service) WaitIdle() {
	for _, sh := range s.shards {
		sh.WaitIdle()
	}
}

// Snapshot assembles the live metrics document.
func (s *Service) Snapshot() Snapshot {
	statuses := make([]ShardStatus, len(s.shards))
	for i, sh := range s.shards {
		statuses[i] = sh.Status()
	}
	return s.met.Snapshot(statuses)
}

// Result assembles the fleet outcome in add order, mirroring
// stream.RunFleet's FleetResult: per-home results in job order (ID-only
// for homes that did not complete), supervision outcomes for every home,
// and the shared aggregate. Call after WaitIdle for a settled fleet;
// calling earlier reports in-flight homes as OutcomeActive.
func (s *Service) Result() stream.FleetResult {
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	results := make([]stream.HomeResult, len(order))
	outcomes := make([]stream.HomeOutcome, len(order))
	for i, id := range order {
		s.mu.Lock()
		e, restored := s.ended[id]
		s.mu.Unlock()
		if restored {
			results[i], outcomes[i] = e.result, e.outcome
			continue
		}
		sh, err := s.shardOf(id)
		if err != nil {
			results[i] = stream.HomeResult{ID: id}
			outcomes[i] = stream.HomeOutcome{ID: id}
			continue
		}
		results[i], outcomes[i], _ = sh.Outcome(id)
	}
	return stream.AggregateFleet(results, outcomes)
}

// Outcomes returns the supervision records sorted by home ID — the shape
// the control plane's status verb reports.
func (s *Service) Outcomes() []stream.HomeOutcome {
	fr := s.Result()
	sort.Slice(fr.Outcomes, func(i, j int) bool { return fr.Outcomes[i].ID < fr.Outcomes[j].ID })
	return fr.Outcomes
}

// Done is closed when the control plane receives a stop request (or Close
// is called). Embedders select on it to run the service until an admin
// shuts it down.
func (s *Service) Done() <-chan struct{} { return s.done }

// Close shuts the service down: the control plane detaches, every shard
// stops (persisting still-resident homes to checkpoints when persist is set
// and a checkpoint dir is configured), and finally the manifest takes a
// last sync and closes — after the shards, so late completion records from
// finishing workers still land. Idempotent.
func (s *Service) Close(persist bool) {
	s.stop.Do(func() { close(s.done) })
	if s.ctl != nil {
		s.ctl.close()
		s.ctl = nil
	}
	for _, sh := range s.shards {
		sh.Stop(persist && s.cfg.Shard.CheckpointDir != "")
	}
	if s.man != nil {
		_ = s.man.Close()
	}
}
