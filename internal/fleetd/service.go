package fleetd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/stream"
)

// JobFactory resolves an admin AddRequest into concrete stream jobs. The
// service itself is scenario-agnostic; the factory (supplied by the core
// layer) owns world materialization, ADM training, and job assembly.
type JobFactory func(req AddRequest) ([]stream.Job, error)

// Config assembles a fleet service. The zero value runs one shard with the
// shard defaults, no control plane, and no metrics publishing.
type Config struct {
	// Shards is the horizontal partition count; 0 defaults to 1. Homes are
	// assigned round-robin in add order.
	Shards int
	// Shard holds the per-shard scheduler and transport options (worker
	// count, admission window, supervision, chaos, frame transport).
	Shard ShardOptions

	// Broker, when non-empty, attaches the control plane: the service
	// subscribes to fleet/admin/+ for admin requests and publishes metrics
	// snapshots on fleet/metrics every MetricsEvery (default 2s). This is
	// the control-plane connection only; per-home frame transport is
	// Shard.Broker.
	Broker string
	// MetricsEvery is the metrics publishing cadence; 0 defaults to 2s.
	MetricsEvery time.Duration
	// Dial configures the control-plane connections.
	Dial mqtt.DialOptions

	// Jobs resolves control-plane add requests; nil rejects them (homes can
	// still be added programmatically via Add).
	Jobs JobFactory
}

// Service is the long-running fleet runtime: a set of shards multiplexing
// homes over worker pools, a shared metrics registry, and (optionally) an
// MQTT control plane.
type Service struct {
	cfg    Config
	met    *Metrics
	shards []*Shard

	mu    sync.Mutex
	order []string       // home IDs in add order, for Result
	where map[string]int // home ID -> shard
	next  int            // round-robin cursor
	ctl   *controlPlane
	done  chan struct{}
	stop  sync.Once
}

// NewService starts the shards (and the control plane when configured).
func NewService(cfg Config) (*Service, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.MetricsEvery <= 0 {
		cfg.MetricsEvery = 2 * time.Second
	}
	s := &Service{
		cfg:   cfg,
		met:   NewMetrics(),
		where: make(map[string]int),
		done:  make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, cfg.Shard, s.met))
	}
	if cfg.Broker != "" {
		ctl, err := newControlPlane(s, cfg.Broker, cfg.Dial, cfg.MetricsEvery)
		if err != nil {
			s.Close(false)
			return nil, err
		}
		s.ctl = ctl
	}
	return s, nil
}

// Add admits jobs to the fleet, round-robin across shards in add order.
// IDs must be unique fleet-wide (they key checkpoints and MQTT topics).
func (s *Service) Add(jobs []stream.Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range jobs {
		if j.ID == "" || j.Open == nil {
			return fmt.Errorf("fleetd: job missing ID or Open")
		}
		if _, dup := s.where[j.ID]; dup {
			return fmt.Errorf("fleetd: duplicate home ID %q", j.ID)
		}
	}
	// Partition preserving add order within each shard.
	batches := make([][]stream.Job, len(s.shards))
	assign := make([]int, len(jobs))
	cursor := s.next
	for i, j := range jobs {
		sh := cursor % len(s.shards)
		assign[i] = sh
		batches[sh] = append(batches[sh], j)
		cursor++
	}
	for sh, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if err := s.shards[sh].Add(batch); err != nil {
			return err
		}
	}
	for i, j := range jobs {
		s.order = append(s.order, j.ID)
		s.where[j.ID] = assign[i]
	}
	s.next = cursor
	return nil
}

// shardOf locates a home's shard.
func (s *Service) shardOf(homeID string) (*Shard, error) {
	s.mu.Lock()
	idx, ok := s.where[homeID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleetd: unknown home %q", homeID)
	}
	return s.shards[idx], nil
}

// Pause / Resume / Remove forward to the home's shard.
func (s *Service) Pause(homeID string) error {
	sh, err := s.shardOf(homeID)
	if err != nil {
		return err
	}
	return sh.Pause(homeID)
}

func (s *Service) Resume(homeID string) error {
	sh, err := s.shardOf(homeID)
	if err != nil {
		return err
	}
	return sh.Resume(homeID)
}

func (s *Service) Remove(homeID string) error {
	sh, err := s.shardOf(homeID)
	if err != nil {
		return err
	}
	return sh.Remove(homeID)
}

// shard bounds-checks a shard index.
func (s *Service) shard(i int) (*Shard, error) {
	if i < 0 || i >= len(s.shards) {
		return nil, fmt.Errorf("fleetd: shard %d out of range [0,%d)", i, len(s.shards))
	}
	return s.shards[i], nil
}

// DrainShard quiesces one shard and persists its homes to checkpoints.
func (s *Service) DrainShard(i int) error {
	sh, err := s.shard(i)
	if err != nil {
		return err
	}
	return sh.Drain()
}

// RehydrateShard readmits a drained shard's homes from their checkpoints.
func (s *Service) RehydrateShard(i int) error {
	sh, err := s.shard(i)
	if err != nil {
		return err
	}
	return sh.Rehydrate()
}

// WaitIdle blocks until every admitted home on every shard reached a
// terminal state.
func (s *Service) WaitIdle() {
	for _, sh := range s.shards {
		sh.WaitIdle()
	}
}

// Snapshot assembles the live metrics document.
func (s *Service) Snapshot() Snapshot {
	statuses := make([]ShardStatus, len(s.shards))
	for i, sh := range s.shards {
		statuses[i] = sh.Status()
	}
	return s.met.Snapshot(statuses)
}

// Result assembles the fleet outcome in add order, mirroring
// stream.RunFleet's FleetResult: per-home results in job order (ID-only
// for homes that did not complete), supervision outcomes for every home,
// and the shared aggregate. Call after WaitIdle for a settled fleet;
// calling earlier reports in-flight homes as OutcomeActive.
func (s *Service) Result() stream.FleetResult {
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	results := make([]stream.HomeResult, len(order))
	outcomes := make([]stream.HomeOutcome, len(order))
	for i, id := range order {
		sh, err := s.shardOf(id)
		if err != nil {
			results[i] = stream.HomeResult{ID: id}
			outcomes[i] = stream.HomeOutcome{ID: id}
			continue
		}
		results[i], outcomes[i], _ = sh.Outcome(id)
	}
	return stream.AggregateFleet(results, outcomes)
}

// Outcomes returns the supervision records sorted by home ID — the shape
// the control plane's status verb reports.
func (s *Service) Outcomes() []stream.HomeOutcome {
	fr := s.Result()
	sort.Slice(fr.Outcomes, func(i, j int) bool { return fr.Outcomes[i].ID < fr.Outcomes[j].ID })
	return fr.Outcomes
}

// Done is closed when the control plane receives a stop request (or Close
// is called). Embedders select on it to run the service until an admin
// shuts it down.
func (s *Service) Done() <-chan struct{} { return s.done }

// Close shuts the service down: the control plane detaches, then every
// shard stops (persisting still-resident homes to checkpoints when persist
// is set and a checkpoint dir is configured). Idempotent.
func (s *Service) Close(persist bool) {
	s.stop.Do(func() { close(s.done) })
	if s.ctl != nil {
		s.ctl.close()
		s.ctl = nil
	}
	for _, sh := range s.shards {
		sh.Stop(persist && s.cfg.Shard.CheckpointDir != "")
	}
}
