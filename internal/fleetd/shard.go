package fleetd

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/stream"
)

// ShardOptions configures one shard's scheduler and transport. The zero
// value multiplexes over one worker per CPU with a 4096-home admission
// window, one-day quanta, direct (in-process) frame transport, and no
// supervision.
type ShardOptions struct {
	// Workers is the shard's worker-goroutine count; 0 selects one per CPU.
	// Homes vastly outnumber workers — the scheduler multiplexes them.
	Workers int
	// MaxResident bounds how many homes hold live pipeline state at once
	// (the admission window); 0 defaults to 4096. Homes beyond the window
	// wait unopened on the pending queue, which is what keeps a 100k-home
	// shard's memory proportional to the window, not the fleet.
	MaxResident int
	// QuantumDays is how many days a home advances per scheduling turn
	// before yielding its worker at a day boundary; 0 defaults to 1. Larger
	// quanta amortize scheduling overhead; smaller ones tighten pause/drain
	// latency.
	QuantumDays int

	// Recover enables supervised retries: a failed home reopens from its
	// last day-boundary checkpoint up to MaxRetries times (0 defaults to 3,
	// negative disables) before it is quarantined.
	Recover bool
	// MaxRetries is the retry budget per home (see Recover).
	MaxRetries int
	// RetryBackoff schedules the pause before each retry; retries wait on a
	// timer, never on a worker.
	RetryBackoff mqtt.Backoff
	// CheckpointDir persists day-boundary checkpoints (cadence
	// CheckpointEvery, default 1) so drains and retries survive the
	// process; empty keeps checkpoints in memory, which still supports
	// in-process drain/rehydrate and retry.
	CheckpointDir   string
	CheckpointEvery int
	// AsyncCheckpoints moves day-boundary disk writes onto a background
	// sink; drain, stop, restore, and completion barrier the sink before
	// they read or finalize disk state (see stream.FleetOptions).
	AsyncCheckpoints bool
	// Chaos injects the seeded fault schedule into every home's transport.
	Chaos *stream.FaultConfig
	// Clock times chaos delay faults and retry backoff timers; nil (the
	// default, kept by the live service) is real wall-clock time.
	Clock stream.Clock
	// LegacyJSON forces per-slot JSON framing; by default a shard moves
	// binary day-blocks with or without chaos (see
	// stream.FleetOptions.LegacyJSON). Results are bit-identical either way.
	LegacyJSON bool

	// ProgressDeadline arms the liveness watchdog: a running home whose
	// transport produces no day-boundary advance within this window has the
	// transport force-closed and takes the supervised fault path — retry
	// from its last checkpoint, then quarantine. 0 disables. The watchdog
	// guards transports that can stall (the MQTT pipe during a broker hang);
	// direct in-process sources are pull-driven and never wedge, so it does
	// not arm on them. Deadlines are scheduled on Clock — a VirtualClock
	// fires timers immediately, so virtual-time runs should leave this off.
	ProgressDeadline time.Duration

	// Broker, when non-empty, routes every home's frames through the MQTT
	// broker at this address (per-home home/<id>/sensor topics), exactly
	// like stream.RunFleet's MQTT mode.
	Broker string
	// Dial, ProbeTimeout, and ReceiveTimeout configure the broker
	// connections (see stream.FleetOptions).
	Dial           mqtt.DialOptions
	ProbeTimeout   time.Duration
	ReceiveTimeout time.Duration

	// onDone, when set, observes every home reaching a terminal state on
	// this shard with its final result and supervision record — the
	// service's manifest hook. Called off the shard lock, on the worker (or
	// failing goroutine) that finished the home.
	onDone func(res stream.HomeResult, out stream.HomeOutcome)
}

// withDefaults resolves the documented option defaults.
func (o ShardOptions) withDefaults() ShardOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxResident <= 0 {
		o.MaxResident = 4096
	}
	if o.QuantumDays <= 0 {
		o.QuantumDays = 1
	}
	if o.Recover && o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.Recover && o.ReceiveTimeout == 0 && o.Broker != "" {
		o.ReceiveTimeout = 10 * time.Second
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.Clock == nil {
		o.Clock = stream.RealClock
	}
	return o
}

// supervised reports whether the shard keeps day-boundary checkpoints as
// it runs (for retries and/or persistence).
func (o ShardOptions) supervised() bool { return o.Recover || o.CheckpointDir != "" }

// homeState is a home's position in the shard lifecycle.
type homeState uint8

const (
	// statePending: admitted to the shard but holding no pipeline state —
	// freshly added, awaiting a retry timer, or waiting out the admission
	// window.
	statePending homeState = iota
	// stateReady: resident at a day boundary, queued for a worker.
	stateReady
	// stateRunning: a worker is driving the home's quantum.
	stateRunning
	// stateParked: resident at a day boundary, held off the run queue by a
	// drain in progress.
	stateParked
	// statePaused: resident (or pending) and explicitly paused.
	statePaused
	// stateDrained: progress persisted to a checkpoint, pipeline released;
	// Rehydrate readmits the home.
	stateDrained
	// stateDone, stateFailed, stateRemoved are terminal.
	stateDone
	stateFailed
	stateRemoved
)

// homeRun is one home's scheduling record. Pipeline fields (src, drive,
// home, pos, days, …) are only touched by the worker currently driving the
// home or, for parked/drained homes, under the shard lock with no worker
// attached — a home is never on two workers at once.
type homeRun struct {
	job   stream.Job
	state homeState

	src    stream.Source      // as returned by job.Open (owns real resources)
	drive  stream.Source      // transport-wrapped source the scheduler pulls
	bdrive stream.BlockSource // non-nil when the home moves day-blocks

	home *stream.Home
	pos  int // last ingested absolute slot, for verdict latency
	days int // completed days

	opens    int // pipeline openings (attempt epoch for the MQTT pipe)
	failures int
	restores int
	lastCk   *stream.Checkpoint // newest day-boundary checkpoint
	ckDay    int                // highest day boundary ever checkpointed

	pauseReq  bool
	removeReq bool
	err       error
	result    stream.HomeResult
	elapsed   time.Duration

	wd *watchdog // liveness watchdog (nil unless ProgressDeadline armed it)
}

// outcome assembles the home's supervision record. Callers own the home
// (its worker, or the shard lock for idle homes).
func (h *homeRun) outcome(status stream.OutcomeStatus) stream.HomeOutcome {
	out := stream.HomeOutcome{
		ID:       h.job.ID,
		Status:   status,
		Attempts: h.opens,
		Restores: h.restores,
		Days:     h.days,
		Duration: h.elapsed,
	}
	out.CheckpointDay = h.ckDay
	if h.err != nil {
		out.Err = h.err.Error()
	}
	return out
}

// Shard multiplexes many homes over a small worker pool: homes advance one
// quantum (QuantumDays, ending at a day boundary) per scheduling turn and
// then requeue, so thousands of homes share a handful of goroutines and
// every resident home is always at a day boundary when it is not actively
// running — the invariant that makes pause, drain, and checkpointing safe
// at any moment. Backpressure is structural: the bounded admission window
// caps live pipelines (injector→detector→controller state), and the ready
// queue only ever holds admitted homes.
type Shard struct {
	id   int
	opts ShardOptions
	met  *Metrics
	// ckSink is the async checkpoint writer (nil unless CheckpointDir and
	// AsyncCheckpoints are both set).
	ckSink *stream.CheckpointSink

	mu      sync.Mutex
	cond    *sync.Cond
	homes   map[string]*homeRun
	pending []*homeRun
	ready   []*homeRun
	// resident counts homes holding pipeline state; running the homes on a
	// worker right now; outstanding the homes not yet in a terminal state.
	resident    int
	running     int
	outstanding int
	done        int
	failed      int
	draining    bool
	drained     bool
	stopped     bool

	wg sync.WaitGroup
}

// newShard starts the shard's worker pool.
func newShard(id int, opts ShardOptions, met *Metrics) *Shard {
	sh := &Shard{
		id:    id,
		opts:  opts.withDefaults(),
		met:   met,
		homes: make(map[string]*homeRun),
	}
	if sh.opts.CheckpointDir != "" && sh.opts.AsyncCheckpoints {
		sh.ckSink = stream.NewCheckpointSink(sh.opts.CheckpointDir)
	}
	sh.cond = sync.NewCond(&sh.mu)
	for w := 0; w < sh.opts.Workers; w++ {
		sh.wg.Add(1)
		go sh.worker()
	}
	return sh
}

// Add admits jobs to the shard's pending queue. Duplicate IDs (including
// completed ones) are rejected — they would collide on checkpoint files
// and MQTT topics.
func (sh *Shard) Add(jobs []stream.Job) error {
	return sh.add(jobs, nil)
}

// add is Add plus the manifest-replay path's pre-paused set: homes in it
// are admitted with their pause request already standing, so a fast worker
// cannot race them past the pause a prior process lifetime recorded.
func (sh *Shard) add(jobs []stream.Job, paused map[string]bool) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return fmt.Errorf("fleetd: shard %d is stopped", sh.id)
	}
	for _, j := range jobs {
		if _, dup := sh.homes[j.ID]; dup {
			return fmt.Errorf("fleetd: duplicate home ID %q on shard %d", j.ID, sh.id)
		}
	}
	for _, j := range jobs {
		h := &homeRun{job: j, state: statePending, pauseReq: paused[j.ID]}
		sh.homes[j.ID] = h
		sh.pending = append(sh.pending, h)
		sh.outstanding++
	}
	sh.met.homesAdded.Add(int64(len(jobs)))
	sh.cond.Broadcast()
	return nil
}

// worker is one scheduling loop: claim the next runnable home, drive one
// quantum, repeat. The slot buffer is reused across homes (sources size it
// per home).
func (sh *Shard) worker() {
	defer sh.wg.Done()
	var slot stream.Slot
	var blk stream.DayBlock
	for {
		h := sh.next()
		if h == nil {
			return
		}
		sh.drive(h, &slot, &blk)
	}
}

// next blocks until a home is runnable (ready first, then admission from
// pending) or the shard stops.
func (sh *Shard) next() *homeRun {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for {
		if sh.stopped {
			return nil
		}
		if !sh.draining {
			if h := sh.claimLocked(); h != nil {
				return h
			}
		}
		sh.cond.Wait()
	}
}

// claimLocked pops the next runnable home under the shard lock. Queue
// entries whose state moved on since they were enqueued (removed, drained)
// are stale and skipped.
func (sh *Shard) claimLocked() *homeRun {
	for len(sh.ready) > 0 {
		h := sh.ready[0]
		sh.ready = sh.ready[1:]
		switch {
		case h.state != stateReady:
			// stale entry
		case h.removeReq:
			sh.discardLocked(h)
		case h.pauseReq:
			h.state = statePaused
		default:
			h.state = stateRunning
			sh.running++
			return h
		}
	}
	for sh.resident < sh.opts.MaxResident && len(sh.pending) > 0 {
		h := sh.pending[0]
		sh.pending = sh.pending[1:]
		switch {
		case h.state != statePending:
			// stale entry
		case h.removeReq:
			sh.discardLocked(h)
		case h.pauseReq:
			h.state = statePaused
		default:
			h.state = stateRunning
			sh.resident++ // admission: the worker will open the pipeline
			sh.running++
			return h
		}
	}
	return nil
}

// drive advances one home by one quantum (or to end-of-stream) and hands
// it back to the scheduler.
func (sh *Shard) drive(h *homeRun, slot *stream.Slot, blk *stream.DayBlock) {
	began := time.Now()
	defer func() { h.elapsed += time.Since(began) }()
	if h.home == nil {
		if err := sh.open(h); err != nil {
			sh.fail(h, err)
			return
		}
	}
	// The watchdog covers the running quantum only: between quanta the home
	// sits at a day boundary waiting for a worker, and scheduler latency is
	// not a stall. Every exit path (yield/complete/fail) disarms it.
	sh.armWatchdog(h)
	if h.bdrive != nil {
		sh.driveBlocks(h, blk)
		return
	}
	var slots, sensor, action int64
	flush := func() {
		sh.met.slots.Add(slots)
		sh.met.sensorEvents.Add(sensor)
		sh.met.actionEvents.Add(action)
	}
	for d := 0; d < sh.opts.QuantumDays; {
		err := h.drive.Next(slot)
		if err == io.EOF {
			flush()
			res, cerr := h.home.Close()
			if cerr != nil {
				sh.fail(h, cerr)
				return
			}
			h.result = res
			sh.complete(h)
			return
		}
		if err != nil {
			flush()
			sh.fail(h, err)
			return
		}
		h.pos = slot.Day*aras.SlotsPerDay + slot.Index
		act, err := h.home.Ingest(slot)
		if err != nil {
			flush()
			sh.fail(h, err)
			return
		}
		slots++
		sensor += int64(slot.SensorEvents())
		action += int64(len(act.Demands))
		if slot.Index == aras.SlotsPerDay-1 {
			h.days = slot.Day + 1
			sh.met.days.Add(1)
			d++
			h.wd.feed()
			if sh.opts.supervised() && h.days%sh.opts.CheckpointEvery == 0 {
				if err := sh.checkpoint(h, false); err != nil {
					flush()
					sh.fail(h, err)
					return
				}
			}
		}
	}
	flush()
	sh.yield(h)
}

// driveBlocks is the quantum loop at day-block granularity: one frame per
// home-day, the same day-boundary checkpoint cadence, and event metrics
// from IngestDay's accounting. The verdict-latency position advances to the
// day's last slot before ingesting — a whole day arrives at once, so the
// latency metric is day-granular on this path.
func (sh *Shard) driveBlocks(h *homeRun, blk *stream.DayBlock) {
	var slots, sensor, action int64
	flush := func() {
		sh.met.slots.Add(slots)
		sh.met.sensorEvents.Add(sensor)
		sh.met.actionEvents.Add(action)
	}
	for d := 0; d < sh.opts.QuantumDays; d++ {
		err := h.bdrive.NextBlock(blk)
		if err == io.EOF {
			flush()
			res, cerr := h.home.Close()
			if cerr != nil {
				sh.fail(h, cerr)
				return
			}
			h.result = res
			sh.complete(h)
			return
		}
		if err != nil {
			flush()
			sh.fail(h, err)
			return
		}
		h.pos = blk.Day*aras.SlotsPerDay + aras.SlotsPerDay - 1
		st, err := h.home.IngestDay(blk)
		if err != nil {
			flush()
			sh.fail(h, err)
			return
		}
		slots += int64(aras.SlotsPerDay)
		sensor += st.SensorEvents
		action += st.ActionEvents
		h.days = blk.Day + 1
		sh.met.days.Add(1)
		h.wd.feed()
		if sh.opts.supervised() && h.days%sh.opts.CheckpointEvery == 0 {
			if err := sh.checkpoint(h, false); err != nil {
				flush()
				sh.fail(h, err)
				return
			}
		}
	}
	flush()
	sh.yield(h)
}

// open builds (or rebuilds) a home's pipeline on the claiming worker,
// restoring from the newest checkpoint when one exists — the same
// open/restore/transport sequence as stream.RunFleet's supervised attempt.
func (sh *Shard) open(h *homeRun) error {
	src, home, err := h.job.Open()
	if err != nil {
		return err
	}
	sh.wireVerdicts(h, home)
	ck := h.lastCk
	if sh.opts.CheckpointDir != "" {
		if sh.ckSink != nil {
			// The restore decision reads the disk; queued async writes must
			// land first, and a recorded write failure fails this attempt
			// (retrying re-runs the flush) instead of resuming stale.
			if ferr := sh.ckSink.Flush(h.job.ID); ferr != nil {
				closeSource(src)
				return ferr
			}
		}
		if disk, lerr := stream.LoadCheckpoint(sh.opts.CheckpointDir, h.job.ID); lerr == nil && disk != nil {
			ck = disk
		}
		// Load errors (corrupt file) fall back to the in-memory checkpoint
		// or a fresh start; the next save overwrites the bad file.
	}
	if ck != nil && ck.Days > 0 {
		if rerr := stream.RestoreFrom(src, home, ck); rerr == nil {
			h.days = ck.Days
			h.restores++
			sh.met.restores.Add(1)
		} else {
			// A checkpoint that does not fit restarts the home from scratch
			// on fresh components — a half-restored home must never stream.
			closeSource(src)
			if src, home, err = h.job.Open(); err != nil {
				return err
			}
			sh.wireVerdicts(h, home)
			h.days = 0
		}
	}
	h.opens++
	// Same gating as stream.RunFleet: day-block transport is the default
	// with or without chaos — block-mode faults perturb whole day frames on
	// the (home, attempt, day)-keyed schedule.
	useBlocks := !sh.opts.LegacyJSON
	plan := sh.opts.Chaos.Plan(h.job.ID, h.opens-1)
	var drive stream.Source = src
	h.bdrive = nil
	if sh.opts.Broker != "" {
		pipe, perr := stream.OpenPipeOptions(sh.opts.Broker, stream.SensorTopic(h.job.ID), src, stream.PipeOptions{
			Dial:           sh.opts.Dial,
			ProbeTimeout:   sh.opts.ProbeTimeout,
			ReceiveTimeout: sh.opts.ReceiveTimeout,
			Faults:         plan,
			Epoch:          h.opens - 1,
			Blocks:         useBlocks,
			Clock:          sh.opts.Clock,
		})
		if perr != nil {
			closeSource(src)
			return perr
		}
		drive = pipe
		if pipe.Blocks() {
			h.bdrive = pipe
		}
	} else {
		drive = stream.NewFaultSource(src, plan, sh.opts.Clock)
		if useBlocks {
			if bsrc, ok := drive.(stream.BlockSource); ok {
				h.bdrive = bsrc
			}
		}
	}
	h.src, h.drive, h.home = src, drive, home
	return nil
}

// wireVerdicts points the home's verdict hook at the shard metrics. Must
// run before any restore (the hook cannot be installed on a home that has
// already streamed).
func (sh *Shard) wireVerdicts(h *homeRun, home *stream.Home) {
	_ = home.SetOnVerdict(func(v adm.Verdict) {
		end := v.Episode.Day*aras.SlotsPerDay + v.Episode.ArrivalSlot + v.Episode.Duration - 1
		sh.met.observeVerdict(int64(h.pos-end), v.Anomalous)
	})
}

// checkpoint snapshots a home at its current day boundary: always into
// memory (the retry path), and onto disk when a checkpoint dir is set.
// Drive-path saves (direct=false) may route through the async sink;
// finalizing saves (drain, stop) pass direct=true, which barriers the sink
// first — so a stale queued write can never land after the newer
// synchronous one — and then writes in place.
func (sh *Shard) checkpoint(h *homeRun, direct bool) error {
	ck, err := h.home.Checkpoint()
	if err != nil {
		return err
	}
	h.lastCk = ck
	if ck.Days > h.ckDay {
		h.ckDay = ck.Days
	}
	if sh.opts.CheckpointDir != "" {
		if sh.ckSink != nil && !direct {
			if err := sh.ckSink.Save(ck); err != nil {
				return err
			}
		} else {
			if sh.ckSink != nil {
				if err := sh.ckSink.Flush(h.job.ID); err != nil {
					return err
				}
			}
			if err := stream.SaveCheckpoint(sh.opts.CheckpointDir, ck); err != nil {
				return err
			}
		}
	}
	sh.met.checkpoints.Add(1)
	return nil
}

// teardown releases a home's pipeline state. Safe on partially opened
// homes.
func (h *homeRun) teardown() {
	if h.drive != nil && h.drive != h.src {
		closeSource(h.drive) // MQTT pipe: closes pump + subscriptions
	}
	closeSource(h.src)
	h.src, h.drive, h.bdrive, h.home = nil, nil, nil, nil
}

// closeSource releases a source's resources when it holds any.
func closeSource(src stream.Source) {
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// watchdog is one home's liveness deadline: armed for the duration of a
// running quantum, fed at every day boundary, and tripped when a deadline
// elapses with no advance — at which point it force-closes the home's
// transport so the blocked worker unwedges into the ordinary supervised
// fault path (fail → retry from checkpoint → quarantine). Scheduling uses
// Clock.AfterFunc, which has no cancellation, so stale timers are defeated
// by a generation counter: every feed/disarm bumps the generation and a
// firing timer whose generation moved on is a no-op.
type watchdog struct {
	deadline time.Duration
	clock    stream.Clock
	met      *Metrics

	mu      sync.Mutex
	gen     int
	armed   bool
	tripped bool
	target  io.Closer
}

// arm starts a deadline against target (the home's transport).
func (w *watchdog) arm(target io.Closer) {
	w.mu.Lock()
	w.target = target
	w.tripped = false
	w.armed = true
	w.gen++
	gen := w.gen
	w.mu.Unlock()
	w.schedule(gen)
}

func (w *watchdog) schedule(gen int) {
	w.clock.AfterFunc(w.deadline, func() { w.fire(gen) })
}

// fire trips the watchdog if its generation is still current.
func (w *watchdog) fire(gen int) {
	w.mu.Lock()
	if !w.armed || gen != w.gen {
		w.mu.Unlock()
		return
	}
	w.armed = false
	w.tripped = true
	target := w.target
	w.target = nil
	w.mu.Unlock()
	w.met.watchdogTrips.Add(1)
	switch t := target.(type) {
	case nil:
	case interface{ Sever() }:
		// Pipes expose a non-waiting teardown: a stalled transport may have
		// its pump wedged inside the source, and a blocking Close here would
		// stall the timer goroutine behind the very hang being policed.
		t.Sever()
	default:
		target.Close() // unwedges the worker blocked in Next/NextBlock
	}
}

// feed restarts the deadline after a day-boundary advance. Nil-safe.
func (w *watchdog) feed() {
	if w == nil {
		return
	}
	w.mu.Lock()
	if !w.armed {
		w.mu.Unlock()
		return
	}
	w.gen++
	gen := w.gen
	w.mu.Unlock()
	w.schedule(gen)
}

// disarm stops the deadline and reports (consuming) whether the watchdog
// tripped since it was armed. Nil-safe.
func (w *watchdog) disarm() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gen++
	w.armed = false
	w.target = nil
	tripped := w.tripped
	w.tripped = false
	return tripped
}

// armWatchdog arms h's watchdog for the quantum the worker is about to
// drive. Only closable transports are guarded — a direct in-process source
// is pull-driven and cannot stall, and closing is the only lever the
// watchdog has.
func (sh *Shard) armWatchdog(h *homeRun) {
	if sh.opts.ProgressDeadline <= 0 {
		return
	}
	target, ok := h.drive.(io.Closer)
	if !ok {
		return
	}
	if h.wd == nil {
		h.wd = &watchdog{deadline: sh.opts.ProgressDeadline, clock: sh.opts.Clock, met: sh.met}
	}
	h.wd.arm(target)
}

// yield hands a home back to the scheduler at a day boundary.
func (sh *Shard) yield(h *homeRun) {
	h.wd.disarm()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.running--
	switch {
	case h.removeReq:
		sh.discardLocked(h)
	case h.pauseReq:
		h.state = statePaused
	case sh.draining:
		h.state = stateParked
	default:
		h.state = stateReady
		sh.ready = append(sh.ready, h)
	}
	sh.cond.Broadcast()
}

// complete finishes a home successfully. The completion hook runs before
// the checkpoint is removed: if the process dies between them, the replayed
// manifest both restores the result and deletes the now-stale checkpoint —
// whereas the reverse order could lose a finished home's result entirely.
func (sh *Shard) complete(h *homeRun) {
	h.wd.disarm()
	h.teardown()
	if sh.opts.onDone != nil {
		status := stream.OutcomeCompleted
		if h.failures > 0 {
			status = stream.OutcomeRetried
		}
		sh.opts.onDone(h.result, h.outcome(status))
	}
	if sh.opts.CheckpointDir != "" {
		// Barrier any queued async write, then remove: the checkpoint served
		// its purpose, and a later fresh run must not resume from it.
		if sh.ckSink != nil {
			if ferr := sh.ckSink.Flush(h.job.ID); ferr != nil && h.err == nil {
				h.err = ferr
			}
		}
		if rerr := stream.RemoveCheckpoint(sh.opts.CheckpointDir, h.job.ID); rerr != nil && h.err == nil {
			h.err = rerr
		}
	}
	h.lastCk = nil
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.running--
	sh.resident--
	h.state = stateDone
	sh.done++
	sh.outstanding--
	sh.met.homesCompleted.Add(1)
	sh.cond.Broadcast()
}

// fail handles an attempt failure: tear the pipeline down, then either
// schedule a retry (off-worker, on a backoff timer) or quarantine the home.
// A watchdog trip is folded into the error here — the trip closed the
// transport, so the proximate error is a closed-pipe read, and the wrapped
// message keeps the real cause visible in the outcome.
func (sh *Shard) fail(h *homeRun, err error) {
	if h.wd.disarm() {
		err = fmt.Errorf("fleetd: home %q made no day-boundary progress within %s (watchdog): %w",
			h.job.ID, sh.opts.ProgressDeadline, err)
	}
	h.teardown()
	sh.mu.Lock()
	sh.running--
	sh.resident--
	h.failures++
	h.err = err
	retries := 0
	if sh.opts.Recover && sh.opts.MaxRetries > 0 {
		retries = sh.opts.MaxRetries
	}
	if h.failures <= retries && !sh.stopped && !h.removeReq {
		sh.met.retries.Add(1)
		h.state = statePending
		delay := sh.opts.RetryBackoff.Delay(h.failures - 1)
		// The retry waits on a timer, not a worker: the home re-enters the
		// pending queue when the backoff elapses and reopens from its last
		// checkpoint on whichever worker claims it.
		sh.opts.Clock.AfterFunc(delay, func() { sh.requeue(h) })
		sh.cond.Broadcast()
		sh.mu.Unlock()
		return
	}
	h.state = stateFailed
	sh.failed++
	sh.outstanding--
	sh.met.homesFailed.Add(1)
	sh.cond.Broadcast()
	sh.mu.Unlock()
	if sh.opts.onDone != nil {
		// Quarantine is terminal: journal it (off the shard lock) so a
		// restart does not resurrect a home the supervisor gave up on.
		sh.opts.onDone(stream.HomeResult{ID: h.job.ID}, h.outcome(stream.OutcomeQuarantined))
	}
}

// requeue readmits a retry-scheduled home once its backoff elapses.
func (sh *Shard) requeue(h *homeRun) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped || h.state != statePending {
		return
	}
	if h.removeReq {
		sh.discardLocked(h)
		sh.cond.Broadcast()
		return
	}
	sh.pending = append(sh.pending, h)
	sh.cond.Broadcast()
}

// discardLocked finalizes a removal. The home holds no pipeline state on
// every path that reaches here (pending homes never opened; ready/parked
// homes are torn down by the caller that observed removeReq… see Remove).
func (sh *Shard) discardLocked(h *homeRun) {
	if h.state == stateRemoved {
		return
	}
	if h.home != nil {
		h.teardown()
		sh.resident--
	}
	h.state = stateRemoved
	sh.outstanding--
	sh.met.homesRemoved.Add(1)
}

// Pause parks a home at its next day boundary (immediately when it is not
// running). Paused homes stay resident; Resume requeues them.
func (sh *Shard) Pause(homeID string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h, ok := sh.homes[homeID]
	if !ok {
		return fmt.Errorf("fleetd: unknown home %q", homeID)
	}
	return sh.pauseLocked(h)
}

func (sh *Shard) pauseLocked(h *homeRun) error {
	switch h.state {
	case stateDone, stateFailed, stateRemoved, stateDrained:
		return fmt.Errorf("fleetd: home %q cannot pause (terminal or drained)", h.job.ID)
	}
	h.pauseReq = true
	// Ready/pending homes flip lazily when the dispatcher pops them;
	// running homes park at the end of their quantum.
	return nil
}

// Resume lifts a pause; the home requeues where it left off.
func (sh *Shard) Resume(homeID string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h, ok := sh.homes[homeID]
	if !ok {
		return fmt.Errorf("fleetd: unknown home %q", homeID)
	}
	sh.resumeLocked(h)
	return nil
}

func (sh *Shard) resumeLocked(h *homeRun) {
	h.pauseReq = false
	if h.state != statePaused {
		return
	}
	switch {
	case h.home != nil && sh.draining:
		// Mid-drain a resumed resident home parks like every other one, so
		// the drain finalizer checkpoints it instead of racing dispatch.
		h.state = stateParked
	case h.home != nil:
		h.state = stateReady
		sh.ready = append(sh.ready, h)
	default:
		h.state = statePending
		sh.pending = append(sh.pending, h)
	}
	sh.cond.Broadcast()
}

// PauseAll / ResumeAll apply Pause/Resume to every non-terminal home.
func (sh *Shard) PauseAll() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, h := range sh.homes {
		_ = sh.pauseLocked(h)
	}
}

func (sh *Shard) ResumeAll() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, h := range sh.homes {
		sh.resumeLocked(h)
	}
}

// Remove evicts a home from the shard: pending homes are dropped, resident
// ones are torn down at their next safe point.
func (sh *Shard) Remove(homeID string) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h, ok := sh.homes[homeID]
	if !ok {
		return fmt.Errorf("fleetd: unknown home %q", homeID)
	}
	switch h.state {
	case stateDone, stateFailed, stateRemoved:
		return fmt.Errorf("fleetd: home %q already finished", homeID)
	case stateRunning:
		h.removeReq = true // the worker discards it at yield/fail
	default:
		h.removeReq = true
		sh.discardLocked(h)
		sh.cond.Broadcast()
	}
	return nil
}

// Drain quiesces the shard and persists it: dispatch stops, running quanta
// finish at their day boundaries, and then every resident home is
// checkpointed (to CheckpointDir when set, in memory otherwise) and its
// pipeline released. A drained shard holds no live state; Rehydrate
// rebuilds it byte-identically from the checkpoints. Homes that fail to
// checkpoint are quarantined rather than silently lost.
func (sh *Shard) Drain() error {
	sh.mu.Lock()
	if sh.stopped {
		sh.mu.Unlock()
		return fmt.Errorf("fleetd: shard %d is stopped", sh.id)
	}
	if sh.draining {
		sh.mu.Unlock()
		return fmt.Errorf("fleetd: shard %d already draining", sh.id)
	}
	sh.draining = true
	sh.cond.Broadcast()
	for sh.running > 0 {
		sh.cond.Wait()
	}
	// All resident homes are now parked at day boundaries (ready-queue
	// entries included — dispatch is off), so checkpointing them is safe.
	// The lock is held across the finalize: the shard is quiesced anyway,
	// and it keeps concurrent admin verbs from mutating a home mid-teardown.
	for _, h := range sh.homes {
		switch h.state {
		case stateReady, stateParked, statePaused:
		default:
			continue
		}
		if h.home == nil {
			continue
		}
		err := sh.checkpoint(h, true)
		h.teardown()
		sh.resident--
		if err != nil {
			h.err = fmt.Errorf("fleetd: drain checkpoint: %w", err)
			h.state = stateFailed
			sh.failed++
			sh.outstanding--
			sh.met.homesFailed.Add(1)
		} else {
			h.state = stateDrained
		}
	}
	sh.ready = nil
	sh.drained = true
	sh.cond.Broadcast()
	sh.mu.Unlock()
	return nil
}

// Rehydrate readmits a drained shard's homes: each reopens on a worker and
// restores from its drain checkpoint, resuming exactly where Drain stopped
// it.
func (sh *Shard) Rehydrate() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopped {
		return fmt.Errorf("fleetd: shard %d is stopped", sh.id)
	}
	if !sh.drained {
		return fmt.Errorf("fleetd: shard %d is not drained", sh.id)
	}
	for _, h := range sh.homes {
		if h.state == stateDrained {
			h.state = statePending
			sh.pending = append(sh.pending, h)
		}
	}
	sh.draining, sh.drained = false, false
	sh.cond.Broadcast()
	return nil
}

// WaitIdle blocks until every admitted home reached a terminal state (or
// the shard stops). Paused and drained homes keep the shard busy — they
// have not finished.
func (sh *Shard) WaitIdle() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sh.outstanding > 0 && !sh.stopped {
		sh.cond.Wait()
	}
}

// Stop shuts the shard down: workers finish their current quantum and
// exit, then every still-resident home is checkpointed (when persist) and
// torn down. Idempotent.
func (sh *Shard) Stop(persist bool) {
	sh.mu.Lock()
	if sh.stopped {
		sh.mu.Unlock()
		sh.wg.Wait()
		return
	}
	sh.stopped = true
	sh.cond.Broadcast()
	sh.mu.Unlock()
	sh.wg.Wait()
	sh.mu.Lock()
	for _, h := range sh.homes {
		if h.home == nil {
			continue
		}
		if persist {
			if err := sh.checkpoint(h, true); err != nil && h.err == nil {
				h.err = err
			}
		}
		h.teardown()
		sh.resident--
	}
	sh.mu.Unlock()
	if sh.ckSink != nil {
		// Final barrier: every queued write lands before Stop returns.
		sh.ckSink.Close()
	}
}

// Status reports the shard's gauges.
func (sh *Shard) Status() ShardStatus {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := ShardStatus{
		Shard:    sh.id,
		Resident: sh.resident,
		Running:  sh.running,
		Done:     sh.done,
		Failed:   sh.failed,
		Drained:  sh.drained,
	}
	for _, h := range sh.homes {
		switch h.state {
		case statePending:
			st.Pending++
		case stateReady:
			st.Ready++
		case statePaused:
			st.Paused++
		}
	}
	return st
}

// Outcome reports one home's supervision record and result. The result is
// only meaningful for completed homes.
func (sh *Shard) Outcome(homeID string) (stream.HomeResult, stream.HomeOutcome, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	h, ok := sh.homes[homeID]
	if !ok {
		return stream.HomeResult{}, stream.HomeOutcome{}, false
	}
	status := OutcomeActive
	switch h.state {
	case stateDone:
		status = stream.OutcomeCompleted
		if h.failures > 0 {
			status = stream.OutcomeRetried
		}
	case stateFailed:
		status = stream.OutcomeQuarantined
	case stateRemoved:
		status = OutcomeRemoved
	}
	out := h.outcome(status)
	res := h.result
	if h.state != stateDone {
		res = stream.HomeResult{ID: h.job.ID}
	}
	return res, out, true
}

// OutcomeRemoved and OutcomeActive extend the stream outcome vocabulary
// for the long-running service: removed homes were evicted by an admin,
// active ones have not finished yet.
const (
	OutcomeRemoved stream.OutcomeStatus = "removed"
	OutcomeActive  stream.OutcomeStatus = "active"
)
