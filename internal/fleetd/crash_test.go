package fleetd

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

// synthFactory is a deterministic JobFactory over the synthetic fleet —
// replaying the same AddRequest always resolves the same jobs, which is the
// property manifest replay depends on.
func synthFactory(req AddRequest) ([]stream.Job, error) {
	jobs := synthJobs(req.Synth, req.Days, req.Seed)
	for i := range jobs {
		jobs[i].ID = req.Prefix + jobs[i].ID
	}
	return jobs, nil
}

// waitIdleTimeout bounds WaitIdle so a recovery bug fails the test instead
// of hanging it.
func waitIdleTimeout(t *testing.T, svc *Service, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		svc.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("fleet never went idle: %+v", svc.Snapshot())
	}
}

// TestServiceCrashRestartMatchesUninterrupted is the crash-injection gate:
// a service killed without drain (Close(false) drops every in-flight home
// exactly as a kill -9 would — no persistence pass, only the day-boundary
// checkpoints already on disk) and restarted on the same state dir must
// finish with per-home results byte-identical to an uninterrupted run.
func TestServiceCrashRestartMatchesUninterrupted(t *testing.T) {
	run := func(t *testing.T, homes, days int, mqttFrames bool) {
		req := AddRequest{Synth: homes, Seed: 42, Days: days}
		jobs, err := synthFactory(req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := stream.RunFleet(jobs, stream.FleetOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}

		var broker *mqtt.Broker
		if mqttFrames {
			broker, err = mqtt.NewBroker("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer broker.Close()
		}
		stateDir := t.TempDir()
		boot := func() *Service {
			t.Helper()
			opts := ShardOptions{Workers: 2, MaxResident: 3, Recover: true,
				RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}}
			if mqttFrames {
				opts.Broker = broker.Addr()
				opts.Dial = mqtt.DialOptions{Redial: true}
			}
			svc, err := NewService(Config{Shards: 2, Shard: opts, StateDir: stateDir, Jobs: synthFactory})
			if err != nil {
				t.Fatal(err)
			}
			return svc
		}

		svc := boot()
		if n, err := svc.AddSpec(req); err != nil || n != homes {
			t.Fatalf("AddSpec: n=%d err=%v", n, err)
		}
		kills := 0
		for {
			// Randomized-by-scheduling kill points: the sleep lands the kill
			// wherever the fleet happens to be; correctness may not depend on
			// where. The window widens with each kill so progress always
			// outpaces the replay overhead.
			time.Sleep(time.Duration(4+4*kills) * time.Millisecond)
			if svc.Snapshot().HomesActive == 0 {
				break
			}
			svc.Close(false) // kill: no drain, no persistence pass
			kills++
			if kills > 100 {
				t.Fatalf("fleet makes no progress across restarts: %+v", svc.Snapshot())
			}
			svc = boot()
			done, live := svc.Resumed()
			if done+live != homes {
				t.Fatalf("restart %d resumed %d+%d homes, want %d", kills, done, live, homes)
			}
		}
		defer svc.Close(false)
		if kills < 2 {
			t.Fatalf("fleet finished after only %d kills; fixture too small to exercise recovery", kills)
		}
		waitIdleTimeout(t, svc, 2*time.Minute)
		got := svc.Result()
		checkHomesEqual(t, got.Homes, want.Homes)
		checkStatsEqual(t, got.Stats, want.Stats, true)
		if got.Stats.Quarantined != 0 {
			t.Fatalf("crash-restart quarantined homes: %+v", got.Stats)
		}
	}
	t.Run("direct", func(t *testing.T) { run(t, 24, 8, false) })
	t.Run("mqtt", func(t *testing.T) { run(t, 8, 5, true) })
}

// TestServicePausePersistsAcrossRestart: an admin pause is part of the
// durable fleet shape — after a crash-restart the home is still paused, and
// resuming it completes the fleet identically.
func TestServicePausePersistsAcrossRestart(t *testing.T) {
	const homes, days = 4, 2
	req := AddRequest{Synth: homes, Seed: 55, Days: days}
	jobs, err := synthFactory(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stream.RunFleet(jobs, stream.FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()
	boot := func() *Service {
		t.Helper()
		svc, err := NewService(Config{Shards: 1,
			Shard:    ShardOptions{Workers: 1},
			StateDir: stateDir, Jobs: synthFactory})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	svc := boot()
	if _, err := svc.AddSpec(req); err != nil {
		t.Fatal(err)
	}
	target := jobs[homes-1].ID
	if err := svc.Pause(target); err != nil {
		t.Fatal(err)
	}
	svc.Close(false)

	svc = boot()
	defer svc.Close(false)
	// Everything except the paused home finishes.
	deadline := time.Now().Add(time.Minute)
	for {
		snap := svc.Snapshot()
		if snap.HomesCompleted == homes-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck after restart: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	if snap := svc.Snapshot(); snap.HomesActive != 1 {
		t.Fatalf("want exactly the replayed pause active, got %+v", snap)
	}
	if err := svc.Resume(target); err != nil {
		t.Fatal(err)
	}
	waitIdleTimeout(t, svc, time.Minute)
	got := svc.Result()
	checkHomesEqual(t, got.Homes, want.Homes)
}

// TestServiceRemovedAndFinishedSurviveRestart: removed homes stay removed
// and finished homes are served from their journaled results (not re-run)
// after a restart.
func TestServiceRemovedAndFinishedSurviveRestart(t *testing.T) {
	const homes, days = 4, 1
	req := AddRequest{Synth: homes, Seed: 21, Days: days}
	jobs, err := synthFactory(req)
	if err != nil {
		t.Fatal(err)
	}
	stateDir := t.TempDir()
	boot := func() *Service {
		t.Helper()
		svc, err := NewService(Config{Shards: 1,
			Shard:    ShardOptions{Workers: 1, MaxResident: 2},
			StateDir: stateDir, Jobs: synthFactory})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	svc := boot()
	if _, err := svc.AddSpec(req); err != nil {
		t.Fatal(err)
	}
	// The last home waits beyond the admission window; remove it outright.
	if err := svc.Remove(jobs[homes-1].ID); err != nil {
		t.Fatal(err)
	}
	waitIdleTimeout(t, svc, time.Minute)
	first := svc.Result()
	svc.Close(false)

	svc = boot()
	defer svc.Close(false)
	done, live := svc.Resumed()
	if done != homes || live != 0 {
		t.Fatalf("restart resumed %d done / %d live, want %d done", done, live, homes)
	}
	waitIdleTimeout(t, svc, time.Minute)
	second := svc.Result()
	checkHomesEqual(t, second.Homes, first.Homes)
	for i := range second.Outcomes {
		g, w := second.Outcomes[i], first.Outcomes[i]
		if g.Status != w.Status || g.Days != w.Days {
			t.Fatalf("outcome %s changed across restart:\n%+v\nvs\n%+v", w.ID, g, w)
		}
	}
	if snap := svc.Snapshot(); snap.HomesRemoved != 1 || snap.HomesCompleted != homes-1 {
		t.Fatalf("restored counters: %+v", snap)
	}
	if err := svc.Remove(jobs[0].ID); err == nil {
		t.Fatal("mutating a manifest-restored home should error")
	}
}

// TestServiceBrokerOutageChaos runs the fleet's MQTT frame transport through
// repeated broker crash/restart cycles: session-resume pipes plus supervised
// retries must land every home, byte-identical to an undisturbed run.
func TestServiceBrokerOutageChaos(t *testing.T) {
	const homes, days = 6, 5
	req := AddRequest{Synth: homes, Seed: 77, Days: days}
	jobs, err := synthFactory(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stream.RunFleet(jobs, stream.FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	svc, err := NewService(Config{Shards: 2, Shard: ShardOptions{
		Workers: 2, Recover: true, MaxRetries: 1000, CheckpointDir: t.TempDir(),
		Broker:         broker.Addr(),
		Dial:           mqtt.DialOptions{Redial: true, Backoff: mqtt.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond}},
		RetryBackoff:   mqtt.Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond},
		ReceiveTimeout: 500 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	if err := svc.Add(jobs); err != nil {
		t.Fatal(err)
	}
	// One outage is guaranteed to land mid-flight: the broker goes dark the
	// moment the fleet is admitted — workers are dialing or streaming — and
	// stays down long enough that a fast machine cannot finish around it.
	broker.Suspend()
	time.Sleep(30 * time.Millisecond)
	if err := broker.Resume(); err != nil {
		t.Fatal(err)
	}
	// Then randomized outages keep cycling for the rest of the run.
	outages := stream.StartBrokerOutages(broker, stream.OutageSchedule{
		Every: 20 * time.Millisecond, Down: 15 * time.Millisecond, Seed: 5,
	}, nil)
	waitIdleTimeout(t, svc, 3*time.Minute)
	outages.Stop()
	got := svc.Result()
	if got.Stats.Retries == 0 {
		t.Fatal("fixture too tame: no home ever retried across the outages")
	}
	if got.Stats.Quarantined != 0 {
		t.Fatalf("broker chaos lost homes: %+v", got.Stats)
	}
	checkHomesEqual(t, got.Homes, want.Homes)
	checkStatsEqual(t, got.Stats, want.Stats, true)
}

// TestAdminRidesBrokerRestart covers the control plane across an outage:
// verbs fail fast (no hangs) while the broker is down, and the same Admin —
// without redialing by hand — works again once the broker is back.
func TestAdminRidesBrokerRestart(t *testing.T) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	svc, err := NewService(Config{
		Shards:       1,
		Shard:        ShardOptions{Workers: 1},
		Broker:       broker.Addr(),
		MetricsEvery: 20 * time.Millisecond,
		Jobs:         synthFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	a, err := NewAdmin(broker.Addr(), mqtt.DialOptions{
		Backoff: mqtt.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Timeout = 2 * time.Second
	if _, err := a.Status(); err != nil {
		t.Fatal(err)
	}

	broker.Suspend()
	time.Sleep(30 * time.Millisecond) // let both sessions notice the cut
	start := time.Now()
	if _, err := a.Status(); err == nil {
		t.Fatal("status during the outage should fail")
	}
	if took := time.Since(start); took > a.Timeout+2*time.Second {
		t.Fatalf("status during the outage hung for %v", took)
	}

	if err := broker.Resume(); err != nil {
		t.Fatal(err)
	}
	// Both the admin session and the service's control plane resubscribe on
	// their own; poll until the round trip works again.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := a.Status(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("control plane never recovered after broker restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The full verb set works across the restart, not just status.
	if n, err := a.Add(AddRequest{Synth: 2, Seed: 3, Days: 1}); err != nil || n != 2 {
		t.Fatalf("add after restart: n=%d err=%v", n, err)
	}
	if err := a.Pause("no-such-home"); err == nil || !strings.Contains(err.Error(), "unknown home") {
		t.Fatalf("pause round trip after restart: %v", err)
	}
	deadline = time.Now().Add(time.Minute)
	for {
		snap, err := a.Status()
		if err != nil {
			t.Fatal(err)
		}
		if snap.HomesCompleted == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-restart fleet never finished: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The metrics broadcast is alive again too.
	feed, err := a.Watch()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case snap, ok := <-feed:
		if !ok || snap.HomesAdded == 0 {
			t.Fatalf("metrics broadcast dead after restart: ok=%v %+v", ok, snap)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no metrics broadcast after broker restart")
	}
}

// stallSource streams normally until an absolute frame, then blocks until
// the test releases it — the wedged-transport fixture for the liveness
// watchdog. SeekDay keeps the counter absolute, so every restored attempt
// wedges at the same place.
type stallSource struct {
	src     stream.Source
	stallAt int64
	n       int64
	unblock chan struct{}
}

func (s *stallSource) Next(dst *stream.Slot) error {
	if s.n == s.stallAt {
		<-s.unblock
		return errors.New("stalled transport released")
	}
	s.n++
	return s.src.Next(dst)
}

func (s *stallSource) SeekDay(day int) error {
	sk, ok := s.src.(stream.DaySeeker)
	if !ok {
		return errors.New("stall source cannot seek")
	}
	if err := sk.SeekDay(day); err != nil {
		return err
	}
	s.n = int64(day) * int64(aras.SlotsPerDay)
	return nil
}

// TestShardWatchdogQuarantinesStalledHome: a home whose transport stops
// producing day boundaries is force-failed by the progress watchdog, retried
// from its checkpoint, and — still wedged — quarantined, while the rest of
// the fleet finishes untouched.
func TestShardWatchdogQuarantinesStalledHome(t *testing.T) {
	const days = 2
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	specs := scenario.SynthFleet(2, 404)
	unblock := make(chan struct{})
	t.Cleanup(func() { close(unblock) }) // release wedged publisher goroutines
	base := specJob(specs[0], days, 11)
	stalled := stream.Job{ID: base.ID, Open: func() (stream.Source, *stream.Home, error) {
		src, h, err := base.Open()
		if err != nil {
			return nil, nil, err
		}
		// Wedge mid-day-2, past the day-1 checkpoint boundary.
		return &stallSource{src: src, stallAt: 1500, unblock: unblock}, h, nil
	}}
	jobs := []stream.Job{stalled, specJob(specs[1], days, 12)}

	svc, err := NewService(Config{Shards: 1, Shard: ShardOptions{
		Workers: 2, Broker: broker.Addr(),
		Recover: true, MaxRetries: 1,
		RetryBackoff:     mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		ProgressDeadline: 200 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	if err := svc.Add(jobs); err != nil {
		t.Fatal(err)
	}
	waitIdleTimeout(t, svc, 2*time.Minute)
	res := svc.Result()
	byID := map[string]stream.HomeOutcome{}
	for _, o := range res.Outcomes {
		byID[o.ID] = o
	}
	dead := byID[specs[0].ID]
	if dead.Status != stream.OutcomeQuarantined {
		t.Fatalf("stalled home outcome: %+v", dead)
	}
	if !strings.Contains(dead.Err, "watchdog") {
		t.Fatalf("quarantine error does not name the watchdog: %q", dead.Err)
	}
	if dead.Attempts != 2 {
		t.Fatalf("stalled home attempts = %d, want 2 (one retry from checkpoint)", dead.Attempts)
	}
	clean := byID[specs[1].ID]
	if clean.Status != stream.OutcomeCompleted {
		t.Fatalf("clean home outcome: %+v", clean)
	}
	if snap := svc.Snapshot(); snap.WatchdogTrips < 2 {
		t.Fatalf("watchdog trips = %d, want >= 2", snap.WatchdogTrips)
	}
}
