package fleetd

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/stream"
)

// sampleManifest is a journal exercising every record op.
func sampleManifest() []ManifestRecord {
	return []ManifestRecord{
		{Op: manifestOpAdd, Add: &AddRequest{Synth: 4, Seed: 7, Days: 2, Defend: true}},
		{Op: manifestOpPause, Home: "h1"},
		{Op: manifestOpResume, Home: "h1"},
		{Op: manifestOpPause, Home: "h2"},
		{Op: manifestOpRemove, Home: "h3"},
		{Op: manifestOpDone, Home: "h0",
			Outcome: &stream.HomeOutcome{ID: "h0", Status: stream.OutcomeCompleted, Attempts: 1, Days: 2},
			Result:  &stream.HomeResult{ID: "h0", Days: 2, Slots: 2880}},
		{Op: manifestOpDone, Home: "h4",
			Outcome: &stream.HomeOutcome{ID: "h4", Status: stream.OutcomeQuarantined, Attempts: 3, Err: "flaky"}},
	}
}

func encodeManifest(t *testing.T, recs []ManifestRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range recs {
		if err := WriteManifestRecord(&buf, &recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestManifestRoundTrip(t *testing.T) {
	recs := sampleManifest()
	got, err := ReadManifest(bytes.NewReader(encodeManifest(t, recs)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip diverges:\n%+v\nvs\n%+v", got, recs)
	}
}

func TestWriteManifestRecordRejectsInvalid(t *testing.T) {
	bad := []ManifestRecord{
		{Op: "unknown"},
		{Op: manifestOpAdd},             // missing spec
		{Op: manifestOpPause},           // missing home
		{Op: manifestOpDone, Home: "x"}, // missing outcome
		{Op: manifestOpDone, Home: "x", // outcome for a different home
			Outcome: &stream.HomeOutcome{ID: "y"}},
		{Op: manifestOpDone, Home: "x", // result for a different home
			Outcome: &stream.HomeOutcome{ID: "x"},
			Result:  &stream.HomeResult{ID: "y"}},
	}
	for i := range bad {
		if err := WriteManifestRecord(io.Discard, &bad[i]); !errors.Is(err, ErrBadManifest) {
			t.Fatalf("record %d: want ErrBadManifest, got %v", i, err)
		}
	}
}

// TestReadManifestEveryByteCorruption flips every byte of a valid journal in
// turn: each flip must surface as a clean error — magic, length, and CRC
// cover the entire frame, so no single-byte corruption may decode silently.
func TestReadManifestEveryByteCorruption(t *testing.T) {
	data := encodeManifest(t, sampleManifest())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		recs, err := ReadManifest(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flip at byte %d decoded silently: %d records", i, len(recs))
		}
		if !errors.Is(err, ErrBadManifest) {
			t.Fatalf("flip at byte %d: unclassified error %v", i, err)
		}
	}
	// Truncation at every length is an error too — except the clean
	// record-boundary prefixes, which read as a shorter journal.
	boundaries := map[int]bool{len(data): true}
	off := 0
	for _, rec := range sampleManifest() {
		var buf bytes.Buffer
		if err := WriteManifestRecord(&buf, &rec); err != nil {
			t.Fatal(err)
		}
		off += buf.Len()
		boundaries[off] = true
	}
	for n := 0; n < len(data); n++ {
		_, err := ReadManifest(bytes.NewReader(data[:n]))
		if boundaries[n] || n == 0 {
			if err != nil {
				t.Fatalf("clean prefix %d: %v", n, err)
			}
			continue
		}
		if !errors.Is(err, ErrBadManifest) || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d should wrap ErrBadManifest and ErrUnexpectedEOF, got %v", n, err)
		}
	}
}

func TestCompactManifest(t *testing.T) {
	got := CompactManifest(sampleManifest())
	want := []ManifestRecord{
		sampleManifest()[0], // add
		sampleManifest()[4], // remove h3
		sampleManifest()[5], // done h0
		sampleManifest()[6], // done h4
		sampleManifest()[3], // pause h2 still in effect
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("compaction diverges:\n%+v\nvs\n%+v", got, want)
	}
}

// TestOpenManifestTornTail simulates the journal a kill -9 leaves: valid
// records followed by a half-written frame. OpenManifest must drop the torn
// tail, rewrite the journal clean, and keep appending.
func TestOpenManifestTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := sampleManifest()
	data := encodeManifest(t, recs)
	// Append half of one more record — torn mid-payload.
	var extra bytes.Buffer
	tail := ManifestRecord{Op: manifestOpPause, Home: "torn"}
	if err := WriteManifestRecord(&extra, &tail); err != nil {
		t.Fatal(err)
	}
	torn := append(data, extra.Bytes()[:extra.Len()/2]...)
	if err := os.WriteFile(ManifestPath(dir), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	man, replayed, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := CompactManifest(recs)
	if !reflect.DeepEqual(replayed, want) {
		t.Fatalf("torn-tail replay diverges:\n%+v\nvs\n%+v", replayed, want)
	}
	// The rewrite left a strictly valid journal on disk.
	onDisk, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bytes.NewReader(onDisk)); err != nil {
		t.Fatalf("journal still dirty after recovery: %v", err)
	}
	// Appends continue past the recovery.
	add := ManifestRecord{Op: manifestOpRemove, Home: "h9"}
	if err := man.Append(add); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}
	if err := man.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	_, replayed2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed2, append(want, add)) {
		t.Fatalf("appended record lost: %+v", replayed2)
	}
}

// TestOpenManifestRejectsCorruption: mid-journal corruption is not crash
// damage and must fail the open, never replay a silent subset.
func TestOpenManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	data := encodeManifest(t, sampleManifest())
	data[20] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(ManifestPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenManifest(dir); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("want ErrBadManifest, got %v", err)
	}
}

// FuzzReadManifest hammers the journal decoder with corrupted, truncated,
// and hostile inputs: it must never panic or over-allocate, every rejection
// must classify as ErrBadManifest, and anything accepted must re-encode and
// re-decode to the same records.
func FuzzReadManifest(f *testing.F) {
	var valid bytes.Buffer
	rec := ManifestRecord{Op: manifestOpPause, Home: "fuzz"}
	if err := WriteManifestRecord(&valid, &rec); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(append(append([]byte{}, valid.Bytes()...), valid.Bytes()...))
	f.Add(valid.Bytes()[:9])
	f.Add([]byte("NOTMAGIC\x00\x00\x00\x02{}"))
	f.Add([]byte{'S', 'H', 'M', 'F', 'S', 'T', '1', '\n', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(append(append([]byte{}, valid.Bytes()[:16]...), []byte("xxxxxxxx")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadManifest) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		for i := range recs {
			if err := WriteManifestRecord(&buf, &recs[i]); err != nil {
				t.Fatalf("re-encode of accepted record failed: %v", err)
			}
		}
		again, err := ReadManifest(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(recs) || (len(recs) > 0 && !reflect.DeepEqual(again, recs)) {
			t.Fatalf("decode not stable:\n%+v\nvs\n%+v", again, recs)
		}
	})
}
