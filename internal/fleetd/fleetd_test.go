package fleetd

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

// specJob builds a fleet job streaming a scenario spec's world, mirroring
// the job shape core.FleetJobs assembles (construction inside Open).
func specJob(sp scenario.Spec, days int, seed uint64) stream.Job {
	return stream.Job{ID: sp.ID, Open: func() (stream.Source, *stream.Home, error) {
		house, err := sp.Build()
		if err != nil {
			return nil, nil, err
		}
		gen, err := aras.NewGenerator(house, sp.GeneratorConfig(days, seed))
		if err != nil {
			return nil, nil, err
		}
		h, err := stream.NewHome(stream.HomeConfig{
			ID:      sp.ID,
			House:   house,
			Params:  hvac.DefaultParams(),
			Pricing: hvac.DefaultPricing(),
		})
		if err != nil {
			return nil, nil, err
		}
		return stream.NewGeneratorSource(sp.ID, gen), h, nil
	}}
}

// synthJobs builds n procedurally generated benign homes.
func synthJobs(n, days int, seed uint64) []stream.Job {
	jobs := make([]stream.Job, n)
	for i, sp := range scenario.SynthFleet(n, seed) {
		jobs[i] = specJob(sp, days, seed+uint64(i))
	}
	return jobs
}

// checkHomesEqual requires byte-identical per-home results in job order.
func checkHomesEqual(t *testing.T, got, want []stream.HomeResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d vs %d home results", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("home %s diverges:\n%+v\nvs\n%+v", want[i].ID, got[i], want[i])
		}
	}
}

// checkStatsEqual compares aggregates with wall-clock fields (and, when
// ignoreSupervision is set, the supervision counters a drain/rehydrate
// cycle legitimately changes) zeroed.
func checkStatsEqual(t *testing.T, got, want stream.FleetStats, ignoreSupervision bool) {
	t.Helper()
	zero := func(s stream.FleetStats) stream.FleetStats {
		s.Elapsed, s.HomesPerSec, s.EventsPerSec, s.BusFrames = 0, 0, 0, 0
		if ignoreSupervision {
			s.Retries, s.Restores = 0, 0
		}
		return s
	}
	if zero(got) != zero(want) {
		t.Fatalf("aggregate stats diverge:\n%+v\nvs\n%+v", got, want)
	}
}

// TestServiceMatchesRunFleet is the core equivalence gate: the multiplexed
// sharded scheduler must produce byte-identical per-home results to a
// one-shot RunFleet over the same jobs — on the A/B goldens plus synthetic
// homes, with the admission window far smaller than the fleet, over both
// the direct and the MQTT frame transport.
func TestServiceMatchesRunFleet(t *testing.T) {
	const days = 2
	var jobs []stream.Job
	for _, id := range []string{"A", "B", "studio"} {
		sp, ok := scenario.Get(id)
		if !ok {
			t.Fatalf("unknown scenario %q", id)
		}
		jobs = append(jobs, specJob(sp, days, 7))
	}
	jobs = append(jobs, synthJobs(3, days, 1234)...)

	run := func(t *testing.T, jobs []stream.Job, opts ShardOptions) {
		want, err := stream.RunFleet(jobs, stream.FleetOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(Config{Shards: 2, Shard: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close(false)
		if err := svc.Add(jobs); err != nil {
			t.Fatal(err)
		}
		svc.WaitIdle()
		got := svc.Result()
		checkHomesEqual(t, got.Homes, want.Homes)
		checkStatsEqual(t, got.Stats, want.Stats, false)
		for i, o := range got.Outcomes {
			if o.Status != stream.OutcomeCompleted || o.Attempts != 1 || o.Days != days {
				t.Fatalf("outcome %d: %+v", i, o)
			}
			if o.Duration <= 0 {
				t.Fatalf("outcome %s missing wall-clock duration", o.ID)
			}
		}
	}
	t.Run("direct", func(t *testing.T) {
		run(t, jobs, ShardOptions{Workers: 2, MaxResident: 2})
	})
	t.Run("mqtt", func(t *testing.T) {
		broker, err := mqtt.NewBroker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer broker.Close()
		// MQTT pipes are slow under the race detector; the three registry
		// goldens alone still cover the full frame transport path.
		run(t, jobs[:3], ShardOptions{Workers: 2, MaxResident: 2, Broker: broker.Addr()})
	})
}

// TestServiceDrainRehydrateMatchesUninterrupted stops a shard mid-run,
// verifies it holds no live pipelines, rehydrates it from the checkpoints,
// and requires the finished fleet to be byte-identical to an uninterrupted
// run — with in-memory checkpoints, on-disk checkpoints, and over MQTT.
func TestServiceDrainRehydrateMatchesUninterrupted(t *testing.T) {
	const homes, days = 16, 6
	run := func(t *testing.T, jobs []stream.Job, opts ShardOptions) {
		want, err := stream.RunFleet(jobs, stream.FleetOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(Config{Shards: 2, Shard: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close(false)
		if err := svc.Add(jobs); err != nil {
			t.Fatal(err)
		}
		// Let the fleet make some progress, then stop it mid-flight. The
		// sleep only positions the drain somewhere inside the run; the
		// byte-identical guarantee holds wherever it lands.
		time.Sleep(20 * time.Millisecond)
		for i := 0; i < 2; i++ {
			if err := svc.DrainShard(i); err != nil {
				t.Fatal(err)
			}
		}
		snap := svc.Snapshot()
		if snap.HomesActive == 0 {
			t.Fatalf("fleet finished before the drain; nothing was interrupted")
		}
		for _, sh := range snap.Shards {
			if !sh.Drained || sh.Resident != 0 || sh.Running != 0 {
				t.Fatalf("shard %d not quiesced after drain: %+v", sh.Shard, sh)
			}
		}
		for i := 0; i < 2; i++ {
			if err := svc.RehydrateShard(i); err != nil {
				t.Fatal(err)
			}
		}
		svc.WaitIdle()
		got := svc.Result()
		checkHomesEqual(t, got.Homes, want.Homes)
		checkStatsEqual(t, got.Stats, want.Stats, true)
	}
	jobs := synthJobs(homes, days, 77)
	t.Run("memory", func(t *testing.T) {
		run(t, jobs, ShardOptions{Workers: 2, MaxResident: 4})
	})
	t.Run("disk", func(t *testing.T) {
		run(t, jobs, ShardOptions{Workers: 2, MaxResident: 4, CheckpointDir: t.TempDir()})
	})
	t.Run("mqtt", func(t *testing.T) {
		broker, err := mqtt.NewBroker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer broker.Close()
		// Day-block pipes move whole home-days per frame, so the MQTT variant
		// keeps pace with the direct ones and the full fleet stays fast even
		// race-instrumented; the full size keeps the drain landing mid-run.
		run(t, jobs, ShardOptions{Workers: 2, MaxResident: 4, Broker: broker.Addr(), CheckpointDir: t.TempDir()})
	})
}

// TestServicePauseResume parks one home, lets the rest of the fleet finish,
// and checks the paused home completes identically after Resume.
func TestServicePauseResume(t *testing.T) {
	const homes, days = 4, 2
	jobs := synthJobs(homes, days, 55)
	want, err := stream.RunFleet(jobs, stream.FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Config{Shards: 1, Shard: ShardOptions{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	target := jobs[homes-1].ID
	if err := svc.Add(jobs); err != nil {
		t.Fatal(err)
	}
	if err := svc.Pause(target); err != nil {
		t.Fatal(err)
	}
	// The paused home must not finish while the rest of the fleet does.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := svc.Snapshot()
		if snap.HomesCompleted == homes-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	if snap := svc.Snapshot(); snap.HomesActive != 1 {
		t.Fatalf("want exactly the paused home active, got %+v", snap)
	}
	if err := svc.Resume(target); err != nil {
		t.Fatal(err)
	}
	svc.WaitIdle()
	got := svc.Result()
	checkHomesEqual(t, got.Homes, want.Homes)
}

// TestShardAdmissionWindow checks backpressure: live pipelines never exceed
// MaxResident even with the whole fleet admitted at once.
func TestShardAdmissionWindow(t *testing.T) {
	const homes, maxResident = 12, 2
	svc, err := NewService(Config{Shards: 1, Shard: ShardOptions{Workers: 2, MaxResident: maxResident}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	if err := svc.Add(synthJobs(homes, 1, 31)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		svc.WaitIdle()
		close(done)
	}()
	for {
		select {
		case <-done:
			snap := svc.Snapshot()
			if snap.HomesCompleted != homes {
				t.Fatalf("completed %d of %d homes: %+v", snap.HomesCompleted, homes, snap)
			}
			return
		default:
			if st := svc.shards[0].Status(); st.Resident > maxResident {
				t.Fatalf("admission window breached: %+v", st)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// flakySource fails its stream with a transport error at the given absolute
// frame, passing everything else through. SeekDay keeps the frame counter
// absolute, so a restored attempt hits the same failure point again.
type flakySource struct {
	src    stream.Source
	failAt int64
	n      int64
}

func (f *flakySource) Next(dst *stream.Slot) error {
	if f.n == f.failAt {
		return errors.New("flaky transport: connection lost")
	}
	f.n++
	return f.src.Next(dst)
}

func (f *flakySource) SeekDay(day int) error {
	s, ok := f.src.(stream.DaySeeker)
	if !ok {
		return fmt.Errorf("flaky source cannot seek")
	}
	if err := s.SeekDay(day); err != nil {
		return err
	}
	f.n = int64(day) * int64(aras.SlotsPerDay)
	return nil
}

// flakyJob wraps a spec job so the given attempts fail mid-day-2: attempt
// indexes below cleanFrom lose the connection at frame 1500 (past the day-1
// checkpoint boundary), later attempts run clean.
func flakyJob(sp scenario.Spec, days int, seed uint64, cleanFrom int) stream.Job {
	base := specJob(sp, days, seed)
	attempt := 0
	return stream.Job{ID: base.ID, Open: func() (stream.Source, *stream.Home, error) {
		src, h, err := base.Open()
		if err != nil {
			return nil, nil, err
		}
		a := attempt
		attempt++
		if a < cleanFrom {
			return &flakySource{src: src, failAt: 1500}, h, nil
		}
		return src, h, nil
	}}
}

// TestShardRetryAndQuarantine drives the supervision path: a flaky home
// retries from its day-1 checkpoint and completes; a persistently failing
// home exhausts the budget and is quarantined without sinking the fleet.
func TestShardRetryAndQuarantine(t *testing.T) {
	const days = 2
	specs := scenario.SynthFleet(3, 404)
	jobs := []stream.Job{
		flakyJob(specs[0], days, 11, 1), // one bad attempt, then clean
		flakyJob(specs[1], days, 12, 99), // every attempt fails
		specJob(specs[2], days, 13),
	}
	svc, err := NewService(Config{Shards: 1, Shard: ShardOptions{
		Workers:      2,
		Recover:      true,
		MaxRetries:   2,
		RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	if err := svc.Add(jobs); err != nil {
		t.Fatal(err)
	}
	svc.WaitIdle()
	res := svc.Result()
	byID := map[string]stream.HomeOutcome{}
	for _, o := range res.Outcomes {
		byID[o.ID] = o
	}
	flaky := byID[specs[0].ID]
	if flaky.Status != stream.OutcomeRetried || flaky.Attempts != 2 || flaky.Restores != 1 || flaky.Days != days {
		t.Fatalf("flaky outcome: %+v", flaky)
	}
	dead := byID[specs[1].ID]
	if dead.Status != stream.OutcomeQuarantined || dead.Attempts != 3 || !strings.Contains(dead.Err, "flaky transport") {
		t.Fatalf("quarantined outcome: %+v", dead)
	}
	if dead.Days != 1 {
		t.Fatalf("quarantined home's day progress = %d, want 1 (failed mid-day-2)", dead.Days)
	}
	clean := byID[specs[2].ID]
	if clean.Status != stream.OutcomeCompleted || clean.Attempts != 1 {
		t.Fatalf("clean outcome: %+v", clean)
	}
	if res.Stats.Quarantined != 1 || res.Stats.Retries != 3 || res.Stats.Restores < 1 {
		t.Fatalf("aggregate supervision counters: %+v", res.Stats)
	}
}

// TestServiceChaosMatchesRunFleet locks the service's supervised chaos path
// to RunFleet's: same seeded fault schedule, same disk checkpoints, so the
// retry sequence — and therefore every result and outcome counter — must
// coincide exactly.
func TestServiceChaosMatchesRunFleet(t *testing.T) {
	const homes, days = 6, 2
	jobs := synthJobs(homes, days, 909)
	// Block-scale probabilities: each 2-day home publishes two day frames
	// per attempt, so per-frame rates must be large to force retries.
	chaos := &stream.FaultConfig{
		Seed: 909, Drop: 0.2, Duplicate: 0.2, Corrupt: 0.1,
		Disconnect: 0.1, MaxDelay: time.Microsecond,
	}
	want, err := stream.RunFleet(jobs, stream.FleetOptions{
		Workers: 2, Recover: true, CheckpointDir: t.TempDir(), Chaos: chaos,
		RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Config{Shards: 2, Shard: ShardOptions{
		Workers: 2, Recover: true, CheckpointDir: t.TempDir(), Chaos: chaos,
		RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	if err := svc.Add(jobs); err != nil {
		t.Fatal(err)
	}
	svc.WaitIdle()
	got := svc.Result()
	checkHomesEqual(t, got.Homes, want.Homes)
	checkStatsEqual(t, got.Stats, want.Stats, false)
	for i := range got.Outcomes {
		g, w := got.Outcomes[i], want.Outcomes[i]
		g.Duration, w.Duration = 0, 0
		if g != w {
			t.Fatalf("outcome %s diverges:\n%+v\nvs\n%+v", w.ID, g, w)
		}
	}
	if want.Stats.Retries == 0 {
		t.Fatalf("fixture too tame — chaos never forced a retry: %+v", want.Stats)
	}
}

// TestServiceChaosVirtualClockAsyncCheckpoints: the service's fast chaos
// configuration — virtual clock for delay faults and retry timers, async
// day-boundary checkpoint writes — must produce results byte-identical to
// the plain wall-clock, synchronous-checkpoint run.
func TestServiceChaosVirtualClockAsyncCheckpoints(t *testing.T) {
	const homes, days = 6, 2
	jobs := synthJobs(homes, days, 909)
	chaos := &stream.FaultConfig{
		Seed: 909, Drop: 0.2, Duplicate: 0.2, Delay: 0.15, Corrupt: 0.1,
		Disconnect: 0.1, MaxDelay: 200 * time.Microsecond,
	}
	run := func(clock stream.Clock, async bool) stream.FleetResult {
		t.Helper()
		svc, err := NewService(Config{Shards: 2, Shard: ShardOptions{
			Workers: 2, Recover: true, CheckpointDir: t.TempDir(), Chaos: chaos,
			Clock: clock, AsyncCheckpoints: async,
			RetryBackoff: mqtt.Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond},
		}})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close(false)
		if err := svc.Add(jobs); err != nil {
			t.Fatal(err)
		}
		svc.WaitIdle()
		return svc.Result()
	}
	vc := stream.NewVirtualClock()
	fast := run(vc, true)
	plain := run(nil, false)
	checkHomesEqual(t, fast.Homes, plain.Homes)
	checkStatsEqual(t, fast.Stats, plain.Stats, false)
	for i := range fast.Outcomes {
		g, w := fast.Outcomes[i], plain.Outcomes[i]
		g.Duration, w.Duration = 0, 0
		if g != w {
			t.Fatalf("outcome %s diverges:\n%+v\nvs\n%+v", w.ID, g, w)
		}
	}
	if plain.Stats.Retries == 0 {
		t.Fatalf("fixture too tame: %+v", plain.Stats)
	}
	if vc.Advanced() == 0 {
		t.Fatal("virtual clock recorded no skipped waits")
	}
}

// TestServiceRemove evicts one pending and one mid-run home; the rest of
// the fleet finishes and the removed homes report the removed outcome.
func TestServiceRemove(t *testing.T) {
	const homes, days = 6, 2
	jobs := synthJobs(homes, days, 21)
	svc, err := NewService(Config{Shards: 1, Shard: ShardOptions{Workers: 1, MaxResident: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)
	if err := svc.Add(jobs); err != nil {
		t.Fatal(err)
	}
	// The last home sits beyond the admission window: removing it drops it
	// before it ever opens.
	if err := svc.Remove(jobs[homes-1].ID); err != nil {
		t.Fatal(err)
	}
	svc.WaitIdle()
	res := svc.Result()
	removed := 0
	for _, o := range res.Outcomes {
		if o.Status == OutcomeRemoved {
			removed++
		}
	}
	if removed != 1 {
		t.Fatalf("removed %d homes, want 1: %+v", removed, res.Outcomes)
	}
	if got := svc.Snapshot(); got.HomesCompleted != homes-1 || got.HomesRemoved != 1 {
		t.Fatalf("snapshot after removal: %+v", got)
	}
	if err := svc.Remove(jobs[0].ID); err == nil {
		t.Fatalf("removing a finished home should error")
	}
}

// TestServiceControlPlane exercises the full MQTT admin loop: add through
// the job factory, status, pause/resume, drain/rehydrate, the metrics
// broadcast, and stop.
func TestServiceControlPlane(t *testing.T) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	const days = 1
	factory := func(req AddRequest) ([]stream.Job, error) {
		if req.Synth <= 0 {
			return nil, fmt.Errorf("test factory wants synth > 0")
		}
		jobs := synthJobs(req.Synth, days, req.Seed)
		for i := range jobs {
			if req.Prefix != "" {
				jobs[i].ID = req.Prefix + jobs[i].ID
			}
		}
		return jobs, nil
	}
	svc, err := NewService(Config{
		Shards:       2,
		Shard:        ShardOptions{Workers: 1},
		Broker:       broker.Addr(),
		MetricsEvery: 20 * time.Millisecond,
		Jobs:         factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(false)

	a, err := NewAdmin(broker.Addr(), mqtt.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	feed, err := a.Watch()
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.Add(AddRequest{Synth: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("added %d homes, want 4", n)
	}
	if _, err := a.Add(AddRequest{Synth: 4, Seed: 5}); err == nil {
		t.Fatal("duplicate add should fail without a prefix")
	}
	if n, err = a.Add(AddRequest{Synth: 2, Seed: 5, Prefix: "again-"}); err != nil || n != 2 {
		t.Fatalf("prefixed re-add: n=%d err=%v", n, err)
	}
	if err := a.Pause("no-such-home"); err == nil {
		t.Fatal("pausing an unknown home should fail")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := a.Status()
		if err != nil {
			t.Fatal(err)
		}
		if snap.HomesCompleted == 6 {
			if len(snap.Shards) != 2 || snap.HomesAdded != 6 || snap.Slots != 6*int64(aras.SlotsPerDay) {
				t.Fatalf("status snapshot: %+v", snap)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never finished: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := a.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Drain(7); err == nil {
		t.Fatal("draining an out-of-range shard should fail")
	}
	if err := a.Rehydrate(0); err != nil {
		t.Fatal(err)
	}
	select {
	case snap, ok := <-feed:
		if !ok {
			t.Fatal("metrics feed closed early")
		}
		if snap.HomesAdded == 0 {
			t.Fatalf("metrics broadcast missing counters: %+v", snap)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no metrics broadcast arrived")
	}
	if err := a.Stop(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-svc.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("stop request never tripped Done")
	}
}

// TestShardWorkerDeterminism pins Workers=1 ≡ Workers=N through the
// multiplexed scheduler.
func TestShardWorkerDeterminism(t *testing.T) {
	const homes, days = 8, 2
	jobs := synthJobs(homes, days, 61)
	run := func(workers int) stream.FleetResult {
		t.Helper()
		svc, err := NewService(Config{Shards: 2, Shard: ShardOptions{Workers: workers, MaxResident: 3}})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close(false)
		if err := svc.Add(jobs); err != nil {
			t.Fatal(err)
		}
		svc.WaitIdle()
		return svc.Result()
	}
	seq, par := run(1), run(4)
	checkHomesEqual(t, par.Homes, seq.Homes)
	checkStatsEqual(t, par.Stats, seq.Stats, false)
}
