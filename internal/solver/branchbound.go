package solver

import (
	"math"

	"github.com/acyd-lab/shatter/internal/home"
)

// BBConfig configures the exhaustive search.
type BBConfig struct {
	// Prune enables best-first bound pruning; disabling it gives the
	// ablation baseline for the pruning design choice (DESIGN.md §5).
	Prune bool
	// NodeBudget caps search-tree nodes (0 = unlimited). When the budget
	// is exhausted the incumbent (best schedule so far) is returned with
	// Stats.Truncated set.
	NodeBudget int
}

// BBStats extends Stats with search-specific counters.
type BBStats struct {
	Stats
	// Truncated is set when the node budget stopped the search early.
	Truncated bool
}

// BranchAndBound solves the same window problem as OptimizeWindow by
// depth-first search over the joint action tree. Its runtime grows
// exponentially with the horizon — the complexity profile the paper
// attributes to the SMT encoding (Fig 11a) — while OptimizeWindow's DP is
// the production path.
func BranchAndBound(w Window, oracle Oracle, cost CostFn, allowed AllowedFn, cfg BBConfig) (Schedule, BBStats, error) {
	if err := w.validate(); err != nil {
		return Schedule{}, BBStats{}, err
	}
	var st BBStats
	_, startCovered := oracle.MaxStay(w.Occupant, w.StartZone, w.StartArrival)

	// Optimistic per-slot bound: the best cost any allowed zone can earn at
	// each slot, used for pruning.
	optimistic := make([]float64, w.Length+1)
	for t := w.Length - 1; t >= 0; t-- {
		abs := w.StartSlot + t
		best := 0.0
		for _, z := range w.Zones {
			if allowed(abs, z) {
				if c := cost(abs, z); c > best {
					best = c
				}
			}
		}
		optimistic[t] = optimistic[t+1] + best
	}

	best := Schedule{Value: math.Inf(-1)}
	cur := make([]home.ZoneID, w.Length)

	var dfs func(t int, zone home.ZoneID, arrival int, acc float64) bool
	dfs = func(t int, zone home.ZoneID, arrival int, acc float64) bool {
		if cfg.NodeBudget > 0 && st.NodesExpanded >= cfg.NodeBudget {
			st.Truncated = true
			return false
		}
		st.NodesExpanded++
		if t == w.Length {
			if w.TerminalOK != nil && !w.TerminalOK(zone, arrival) {
				return true
			}
			score := acc
			if w.TerminalBonus != nil {
				score += w.TerminalBonus(zone, arrival)
			}
			if score > best.Value {
				best.Value = score
				best.Zones = append(best.Zones[:0], cur...)
				best.EndZone = zone
				best.EndArrival = arrival
				best.Feasible = true
			}
			return true
		}
		if cfg.Prune && acc+optimistic[t] <= best.Value {
			return true
		}
		abs := w.StartSlot + t
		dur := abs - arrival
		lenient := zone == w.StartZone && arrival == w.StartArrival && !startCovered
		// Stay.
		maxStay, covered := oracle.MaxStay(w.Occupant, zone, arrival)
		canStay := (covered && dur+1 <= maxStay) || lenient
		if canStay && allowed(abs, zone) {
			cur[t] = zone
			if !dfs(t+1, zone, arrival, acc+cost(abs, zone)) {
				return false
			}
		}
		// Move.
		exitOK := (oracle.InRangeStay(w.Occupant, zone, arrival, dur) || lenient) && dur >= 1
		if exitOK {
			for _, z2 := range w.Zones {
				if z2 == zone || !allowed(abs, z2) {
					continue
				}
				if _, ok := oracle.MaxStay(w.Occupant, z2, abs); !ok {
					continue
				}
				cur[t] = z2
				if !dfs(t+1, z2, abs, acc+cost(abs, z2)) {
					return false
				}
			}
		}
		return true
	}
	dfs(0, w.StartZone, w.StartArrival, 0)

	if !best.Feasible {
		zones := make([]home.ZoneID, w.Length)
		for i := range zones {
			zones[i] = w.StartZone
		}
		return Schedule{
			Zones:      zones,
			EndZone:    w.StartZone,
			EndArrival: w.StartArrival,
			Feasible:   false,
		}, st, nil
	}
	return best, st, nil
}
