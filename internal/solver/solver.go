// Package solver contains the constraint-solving core that replaces the
// paper's Z3 encoding (DESIGN.md §1). The attack-schedule synthesis of
// Section IV-C is a windowed optimisation: within a horizon of I slots,
// choose a zone assignment per occupant per slot that maximises energy cost
// subject to the ADM's convex-hull stay constraints (Eqs 17-20).
//
// Two engines solve the same window problem:
//
//   - OptimizeWindow: an exact dynamic program over (slot, zone, arrival)
//     states — polynomial, used for the month-scale evaluations. It runs
//     either against the general Oracle interface or, on the attack
//     planner's hot path, directly against a tabulated StayBands oracle
//     (OptimizeWindowBands) with no per-query dispatch.
//   - BranchAndBound: an exhaustive joint search with optional bound
//     pruning — exponential in the horizon, mirroring the paper's SMT
//     solving profile; it powers the Fig 11 scalability study and
//     cross-validates the DP on small windows.
package solver

import (
	"errors"
	"math"

	"github.com/acyd-lab/shatter/internal/home"
)

// Oracle answers the ADM stay queries the schedule constraints reference.
// (*adm.Model satisfies this interface.)
type Oracle interface {
	// MaxStay returns the longest stealthy stay for the arrival time;
	// ok=false when the arrival time itself is outside every cluster.
	MaxStay(occupant int, zone home.ZoneID, arrivalSlot int) (int, bool)
	// InRangeStay reports whether exiting after stayMinutes is stealthy.
	InRangeStay(occupant int, zone home.ZoneID, arrivalSlot, stayMinutes int) bool
}

// CostFn values one occupant-slot: the surrogate marginal cost of the
// occupant being reported in zone z during absolute slot t.
type CostFn func(slot int, zone home.ZoneID) float64

// AllowedFn reports whether the attacker may report zone z at slot t
// (capability constraints: sensor access, forced truth-telling).
type AllowedFn func(slot int, zone home.ZoneID) bool

// Window is one occupant's scheduling problem over [StartSlot,
// StartSlot+Length).
type Window struct {
	Occupant int
	// StartSlot is the absolute minute-of-day at the window start.
	StartSlot int
	// Length is the horizon I.
	Length int
	// StartZone and StartArrival describe the in-progress stay at the
	// window boundary (StartArrival ≤ StartSlot).
	StartZone    home.ZoneID
	StartArrival int
	// Zones enumerates the reportable zones (including Outside).
	Zones []home.ZoneID
	// TerminalOK, when non-nil, restricts acceptable end states: the
	// schedule must finish in a (zone, arrival) state passing the check.
	// The attack planner uses it on each day's final window so the
	// midnight-cut episode stays within an ADM cluster.
	TerminalOK func(zone home.ZoneID, arrival int) bool
	// TerminalBonus, when non-nil, adds a lookahead value to terminal
	// states — the attack planner scores how much reward the in-progress
	// stay can still earn in the next window, which counters the myopia of
	// chained fixed-horizon optimisation (Section IV-C notes the window
	// trade-off).
	TerminalBonus func(zone home.ZoneID, arrival int) float64
}

// Schedule is a solved window.
type Schedule struct {
	// Zones[i] is the reported zone during slot StartSlot+i. When the
	// window was solved through a caller-supplied Workspace, the slice is
	// backed by that workspace and valid only until its next
	// OptimizeWindowWS/OptimizeWindowBands call — chained solvers consume
	// it before solving the next window.
	Zones []home.ZoneID
	// EndZone and EndArrival carry the stay state into the next window.
	EndZone    home.ZoneID
	EndArrival int
	// Value is the surrogate objective achieved.
	Value float64
	// Feasible is false when no ADM-consistent schedule existed and the
	// solver fell back to holding the start zone.
	Feasible bool
}

// Stats reports solver effort for the scalability study.
type Stats struct {
	// NodesExpanded counts state expansions (DP) or search-tree nodes
	// (branch and bound).
	NodesExpanded int
}

// ErrBadWindow rejects malformed windows.
var ErrBadWindow = errors.New("solver: window needs Length >= 1, Zones, and StartArrival <= StartSlot")

func (w Window) validate() error {
	if w.Length < 1 || len(w.Zones) == 0 || w.StartArrival > w.StartSlot {
		return ErrBadWindow
	}
	return nil
}

// Workspace holds the DP state tables for OptimizeWindow so chained window
// optimisations (the attack planner solves ~144 windows per occupant-day)
// reuse one allocation instead of rebuilding the tables per call. Cells are
// epoch-stamped: starting a window bumps the epoch instead of refilling the
// value table with -inf, so a solve touches only the states it actually
// reaches. A zero Workspace is ready to use; it grows to the largest window
// seen. Not safe for concurrent use — give each goroutine its own.
type Workspace struct {
	value    []float64
	choice   []int32
	stamp    []uint32
	epoch    uint32
	zones    []home.ZoneID
	zoneBase []int
}

// ensure sizes the flattened (t, z, a) tables and opens a new epoch; every
// cell whose stamp predates the epoch reads as unset (-inf).
func (ws *Workspace) ensure(cells int) {
	if cap(ws.value) < cells {
		ws.value = make([]float64, cells)
		ws.choice = make([]int32, cells)
		ws.stamp = make([]uint32, cells)
		ws.epoch = 0
	}
	ws.value = ws.value[:cells]
	ws.choice = ws.choice[:cells]
	ws.stamp = ws.stamp[:cells]
	ws.epoch++
	if ws.epoch == 0 {
		// Stamp wrap-around (once per 2³² windows): old stamps could alias
		// the restarted epoch, so clear them and start over.
		s := ws.stamp[:cap(ws.stamp)]
		for i := range s {
			s[i] = 0
		}
		ws.epoch = 1
	}
}

// zonesBuf returns the reusable Schedule.Zones backing array.
func (ws *Workspace) zonesBuf(n int) []home.ZoneID {
	if cap(ws.zones) < n {
		ws.zones = make([]home.ZoneID, n)
	}
	return ws.zones[:n]
}

// zoneBaseBuf returns the reusable per-window zone→table-row scratch used
// by the tabulated-oracle pass.
func (ws *Workspace) zoneBaseBuf(n int) []int {
	if cap(ws.zoneBase) < n {
		ws.zoneBase = make([]int, n)
	}
	return ws.zoneBase[:n]
}

// set records an improved value for cell i under the current epoch.
func (ws *Workspace) set(i int, v float64, c int32) {
	ws.value[i] = v
	ws.choice[i] = c
	ws.stamp[i] = ws.epoch
}

// live reports whether cell i holds a value for the current window.
func (ws *Workspace) live(i int) bool { return ws.stamp[i] == ws.epoch }

// dp carries one window solve's indexing state, shared between the two
// forward-pass variants (interface oracle and tabulated bands) and the
// common terminal selection/reconstruction.
type dp struct {
	ws      *Workspace
	w       Window
	nZ, nA  int
	startZI int
}

const (
	actStay = 0
	actMove = 1
)

// start validates the window, opens a workspace epoch, and seeds the start
// state.
func (d *dp) start(ws *Workspace, w Window) error {
	if err := w.validate(); err != nil {
		return err
	}
	d.ws, d.w = ws, w
	d.nA = w.Length + 1
	d.nZ = len(w.Zones)
	d.startZI = -1
	for i, z := range w.Zones {
		if z == w.StartZone {
			d.startZI = i
			break
		}
	}
	if d.startZI < 0 {
		return errors.New("solver: StartZone not in Zones")
	}
	// value[(t*nZ+z)*nA+a]: best cost over slots [0, t) ending in state
	// (z, a) before slot t; choice encodes the predecessor (z, a) and action.
	ws.ensure((w.Length + 1) * d.nZ * d.nA)
	ws.set(d.idx(0, d.startZI, 0), 0, -1)
	return nil
}

// arrivalSlot maps arrival index 0 to StartArrival and 1+i to arrival at
// StartSlot+i.
func (d *dp) arrivalSlot(aIdx int) int {
	if aIdx == 0 {
		return d.w.StartArrival
	}
	return d.w.StartSlot + aIdx - 1
}

func (d *dp) idx(t, z, a int) int { return (t*d.nZ+z)*d.nA + a }

func (d *dp) encode(z, a, action int) int32 { return int32(action*d.nZ*d.nA + z*d.nA + a) }

func (d *dp) decode(c int32) (z, a int) {
	rem := int(c) % (d.nZ * d.nA)
	return rem / d.nA, rem % d.nA
}

// finish picks the best terminal state (scored with the lookahead bonus,
// which is excluded from the reported Value) and reconstructs the schedule
// into the workspace's zones buffer.
func (d *dp) finish(st Stats) (Schedule, Stats, error) {
	w, ws := d.w, d.ws
	negInf := math.Inf(-1)
	bestV, bestScore, bestZ, bestA := negInf, negInf, -1, -1
	for z := 0; z < d.nZ; z++ {
		for a := 0; a < d.nA; a++ {
			i := d.idx(w.Length, z, a)
			if !ws.live(i) {
				continue
			}
			tv := ws.value[i]
			if w.TerminalOK != nil && !w.TerminalOK(w.Zones[z], d.arrivalSlot(a)) {
				continue
			}
			score := tv
			if w.TerminalBonus != nil {
				score += w.TerminalBonus(w.Zones[z], d.arrivalSlot(a))
			}
			if score > bestScore {
				bestScore = score
				bestV, bestZ, bestA = tv, z, a
			}
		}
	}
	zones := ws.zonesBuf(w.Length)
	if bestZ < 0 {
		// No feasible schedule: hold the start zone (flagged infeasible).
		for i := range zones {
			zones[i] = w.StartZone
		}
		return Schedule{
			Zones:      zones,
			EndZone:    w.StartZone,
			EndArrival: w.StartArrival,
			Feasible:   false,
		}, st, nil
	}
	// Reconstruct.
	z, a := bestZ, bestA
	for t := w.Length; t > 0; t-- {
		zones[t-1] = w.Zones[z]
		z, a = d.decode(ws.choice[d.idx(t, z, a)])
	}
	return Schedule{
		Zones:      zones,
		EndZone:    w.Zones[bestZ],
		EndArrival: d.arrivalSlot(bestA),
		Value:      bestV,
		Feasible:   true,
	}, st, nil
}

// OptimizeWindow solves the window with an exact dynamic program, allocating
// fresh DP state. Hot paths that solve many windows should use
// OptimizeWindowWS with a reused Workspace (or OptimizeWindowBands against a
// tabulated oracle).
func OptimizeWindow(w Window, oracle Oracle, cost CostFn, allowed AllowedFn) (Schedule, Stats, error) {
	var ws Workspace
	return OptimizeWindowWS(&ws, w, oracle, cost, allowed)
}

// OptimizeWindowWS solves the window with an exact dynamic program using the
// given workspace's state tables.
//
// State: before slot t the occupant is in zone z having arrived at a.
// Actions: stay (duration stays within MaxStay(a, z)) or exit (requires
// InRangeStay(a, t−a)) into a zone z' that is allowed at t and has cluster
// coverage at arrival t.
func OptimizeWindowWS(ws *Workspace, w Window, oracle Oracle, cost CostFn, allowed AllowedFn) (Schedule, Stats, error) {
	var d dp
	if err := d.start(ws, w); err != nil {
		return Schedule{}, Stats{}, err
	}
	var st Stats

	// startLenient: the inherited stay may itself lack cluster coverage
	// (real behaviour can be anomalous). The attacker then reports truth
	// until the next natural transition; model this by allowing both stay
	// and exit from an uncovered start state.
	_, startCovered := oracle.MaxStay(w.Occupant, w.StartZone, w.StartArrival)

	for t := 0; t < w.Length; t++ {
		abs := w.StartSlot + t
		for z := 0; z < d.nZ; z++ {
			for a := 0; a < d.nA; a++ {
				i := d.idx(t, z, a)
				if !ws.live(i) {
					continue
				}
				v := ws.value[i]
				st.NodesExpanded++
				zone := w.Zones[z]
				arr := d.arrivalSlot(a)
				dur := abs - arr // completed stay so far
				// Action 1: stay for slot t (new duration dur+1).
				maxStay, covered := oracle.MaxStay(w.Occupant, zone, arr)
				canStay := false
				switch {
				case covered:
					canStay = dur+1 <= maxStay
				case z == d.startZI && a == 0 && !startCovered:
					canStay = true // lenient inherited stay
				}
				if canStay && allowed(abs, zone) {
					nv := v + cost(abs, zone)
					if ni := d.idx(t+1, z, a); !ws.live(ni) || nv > ws.value[ni] {
						ws.set(ni, nv, d.encode(z, a, actStay))
					}
				}
				// Action 2: exit now (stay = dur) and occupy z' for slot t.
				exitOK := oracle.InRangeStay(w.Occupant, zone, arr, dur)
				if z == d.startZI && a == 0 && !startCovered {
					exitOK = true
				}
				if !exitOK || dur < 1 {
					continue
				}
				for z2 := 0; z2 < d.nZ; z2++ {
					if z2 == z {
						continue
					}
					zone2 := w.Zones[z2]
					if !allowed(abs, zone2) {
						continue
					}
					// The new arrival must have cluster coverage so the
					// occupant can eventually exit stealthily.
					if _, ok := oracle.MaxStay(w.Occupant, zone2, abs); !ok {
						continue
					}
					nv := v + cost(abs, zone2)
					aIdx := t + 1 // arrival at abs
					if ni := d.idx(t+1, z2, aIdx); !ws.live(ni) || nv > ws.value[ni] {
						ws.set(ni, nv, d.encode(z, a, actMove))
					}
				}
			}
		}
	}
	return d.finish(st)
}
