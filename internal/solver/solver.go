// Package solver contains the constraint-solving core that replaces the
// paper's Z3 encoding (DESIGN.md §1). The attack-schedule synthesis of
// Section IV-C is a windowed optimisation: within a horizon of I slots,
// choose a zone assignment per occupant per slot that maximises energy cost
// subject to the ADM's convex-hull stay constraints (Eqs 17-20).
//
// Two engines solve the same window problem:
//
//   - OptimizeWindow: an exact dynamic program over (slot, zone, arrival)
//     states — polynomial, used for the month-scale evaluations.
//   - BranchAndBound: an exhaustive joint search with optional bound
//     pruning — exponential in the horizon, mirroring the paper's SMT
//     solving profile; it powers the Fig 11 scalability study and
//     cross-validates the DP on small windows.
package solver

import (
	"errors"
	"math"

	"github.com/acyd-lab/shatter/internal/home"
)

// Oracle answers the ADM stay queries the schedule constraints reference.
// (*adm.Model satisfies this interface.)
type Oracle interface {
	// MaxStay returns the longest stealthy stay for the arrival time;
	// ok=false when the arrival time itself is outside every cluster.
	MaxStay(occupant int, zone home.ZoneID, arrivalSlot int) (int, bool)
	// InRangeStay reports whether exiting after stayMinutes is stealthy.
	InRangeStay(occupant int, zone home.ZoneID, arrivalSlot, stayMinutes int) bool
}

// CostFn values one occupant-slot: the surrogate marginal cost of the
// occupant being reported in zone z during absolute slot t.
type CostFn func(slot int, zone home.ZoneID) float64

// AllowedFn reports whether the attacker may report zone z at slot t
// (capability constraints: sensor access, forced truth-telling).
type AllowedFn func(slot int, zone home.ZoneID) bool

// Window is one occupant's scheduling problem over [StartSlot,
// StartSlot+Length).
type Window struct {
	Occupant int
	// StartSlot is the absolute minute-of-day at the window start.
	StartSlot int
	// Length is the horizon I.
	Length int
	// StartZone and StartArrival describe the in-progress stay at the
	// window boundary (StartArrival ≤ StartSlot).
	StartZone    home.ZoneID
	StartArrival int
	// Zones enumerates the reportable zones (including Outside).
	Zones []home.ZoneID
	// TerminalOK, when non-nil, restricts acceptable end states: the
	// schedule must finish in a (zone, arrival) state passing the check.
	// The attack planner uses it on each day's final window so the
	// midnight-cut episode stays within an ADM cluster.
	TerminalOK func(zone home.ZoneID, arrival int) bool
	// TerminalBonus, when non-nil, adds a lookahead value to terminal
	// states — the attack planner scores how much reward the in-progress
	// stay can still earn in the next window, which counters the myopia of
	// chained fixed-horizon optimisation (Section IV-C notes the window
	// trade-off).
	TerminalBonus func(zone home.ZoneID, arrival int) float64
}

// Schedule is a solved window.
type Schedule struct {
	// Zones[i] is the reported zone during slot StartSlot+i.
	Zones []home.ZoneID
	// EndZone and EndArrival carry the stay state into the next window.
	EndZone    home.ZoneID
	EndArrival int
	// Value is the surrogate objective achieved.
	Value float64
	// Feasible is false when no ADM-consistent schedule existed and the
	// solver fell back to holding the start zone.
	Feasible bool
}

// Stats reports solver effort for the scalability study.
type Stats struct {
	// NodesExpanded counts state expansions (DP) or search-tree nodes
	// (branch and bound).
	NodesExpanded int
}

// ErrBadWindow rejects malformed windows.
var ErrBadWindow = errors.New("solver: window needs Length >= 1, Zones, and StartArrival <= StartSlot")

func (w Window) validate() error {
	if w.Length < 1 || len(w.Zones) == 0 || w.StartArrival > w.StartSlot {
		return ErrBadWindow
	}
	return nil
}

// Workspace holds the DP state tables for OptimizeWindow so chained window
// optimisations (the attack planner solves ~144 windows per occupant-day)
// reuse one allocation instead of rebuilding the tables per call. A zero
// Workspace is ready to use; it grows to the largest window seen. Not safe
// for concurrent use — give each goroutine its own.
type Workspace struct {
	value  []float64
	choice []int32
}

// ensure sizes the flattened (t, z, a) tables and resets them.
func (ws *Workspace) ensure(cells int) {
	if cap(ws.value) < cells {
		ws.value = make([]float64, cells)
		ws.choice = make([]int32, cells)
	}
	ws.value = ws.value[:cells]
	ws.choice = ws.choice[:cells]
	negInf := math.Inf(-1)
	for i := range ws.value {
		ws.value[i] = negInf
		ws.choice[i] = -1
	}
}

// OptimizeWindow solves the window with an exact dynamic program, allocating
// fresh DP state. Hot paths that solve many windows should use
// OptimizeWindowWS with a reused Workspace.
func OptimizeWindow(w Window, oracle Oracle, cost CostFn, allowed AllowedFn) (Schedule, Stats, error) {
	var ws Workspace
	return OptimizeWindowWS(&ws, w, oracle, cost, allowed)
}

// OptimizeWindowWS solves the window with an exact dynamic program using the
// given workspace's state tables.
//
// State: before slot t the occupant is in zone z having arrived at a.
// Actions: stay (duration stays within MaxStay(a, z)) or exit (requires
// InRangeStay(a, t−a)) into a zone z' that is allowed at t and has cluster
// coverage at arrival t.
func OptimizeWindowWS(ws *Workspace, w Window, oracle Oracle, cost CostFn, allowed AllowedFn) (Schedule, Stats, error) {
	if err := w.validate(); err != nil {
		return Schedule{}, Stats{}, err
	}
	var st Stats
	// Arrival index 0 = StartArrival; 1+i = arrival at StartSlot+i.
	arrivalSlot := func(aIdx int) int {
		if aIdx == 0 {
			return w.StartArrival
		}
		return w.StartSlot + aIdx - 1
	}
	nA := w.Length + 1
	nZ := len(w.Zones)
	startZI := -1
	for i, z := range w.Zones {
		if z == w.StartZone {
			startZI = i
			break
		}
	}
	if startZI < 0 {
		return Schedule{}, st, errors.New("solver: StartZone not in Zones")
	}

	negInf := math.Inf(-1)
	// value[(t*nZ+z)*nA+a]: best cost over slots [0, t) ending in state
	// (z, a) before slot t; choice encodes the predecessor (z, a) and action.
	ws.ensure((w.Length + 1) * nZ * nA)
	value, choice := ws.value, ws.choice
	idx := func(t, z, a int) int { return (t*nZ+z)*nA + a }
	value[idx(0, startZI, 0)] = 0

	// startLenient: the inherited stay may itself lack cluster coverage
	// (real behaviour can be anomalous). The attacker then reports truth
	// until the next natural transition; model this by allowing both stay
	// and exit from an uncovered start state.
	_, startCovered := oracle.MaxStay(w.Occupant, w.StartZone, w.StartArrival)

	encode := func(z, a, action int) int32 { return int32(action*nZ*nA + z*nA + a) }
	decode := func(c int32) (z, a, action int) {
		action = int(c) / (nZ * nA)
		rem := int(c) % (nZ * nA)
		return rem / nA, rem % nA, action
	}
	const (
		actStay = 0
		actMove = 1
	)

	for t := 0; t < w.Length; t++ {
		abs := w.StartSlot + t
		for z := 0; z < nZ; z++ {
			for a := 0; a < nA; a++ {
				v := value[idx(t, z, a)]
				if v == negInf {
					continue
				}
				st.NodesExpanded++
				zone := w.Zones[z]
				arr := arrivalSlot(a)
				dur := abs - arr // completed stay so far
				// Action 1: stay for slot t (new duration dur+1).
				maxStay, covered := oracle.MaxStay(w.Occupant, zone, arr)
				canStay := false
				switch {
				case covered:
					canStay = dur+1 <= maxStay
				case z == startZI && a == 0 && !startCovered:
					canStay = true // lenient inherited stay
				}
				if canStay && allowed(abs, zone) {
					nv := v + cost(abs, zone)
					if ni := idx(t+1, z, a); nv > value[ni] {
						value[ni] = nv
						choice[ni] = encode(z, a, actStay)
					}
				}
				// Action 2: exit now (stay = dur) and occupy z' for slot t.
				exitOK := oracle.InRangeStay(w.Occupant, zone, arr, dur)
				if z == startZI && a == 0 && !startCovered {
					exitOK = true
				}
				if !exitOK || dur < 1 {
					continue
				}
				for z2 := 0; z2 < nZ; z2++ {
					if z2 == z {
						continue
					}
					zone2 := w.Zones[z2]
					if !allowed(abs, zone2) {
						continue
					}
					// The new arrival must have cluster coverage so the
					// occupant can eventually exit stealthily.
					if _, ok := oracle.MaxStay(w.Occupant, zone2, abs); !ok {
						continue
					}
					nv := v + cost(abs, zone2)
					aIdx := t + 1 // arrival at abs
					if ni := idx(t+1, z2, aIdx); nv > value[ni] {
						value[ni] = nv
						choice[ni] = encode(z, a, actMove)
					}
				}
			}
		}
	}

	// Pick the best terminal state (scored with the lookahead bonus, which
	// is excluded from the reported Value).
	bestV, bestScore, bestZ, bestA := negInf, negInf, -1, -1
	for z := 0; z < nZ; z++ {
		for a := 0; a < nA; a++ {
			tv := value[idx(w.Length, z, a)]
			if tv == negInf {
				continue
			}
			if w.TerminalOK != nil && !w.TerminalOK(w.Zones[z], arrivalSlot(a)) {
				continue
			}
			score := tv
			if w.TerminalBonus != nil {
				score += w.TerminalBonus(w.Zones[z], arrivalSlot(a))
			}
			if score > bestScore {
				bestScore = score
				bestV, bestZ, bestA = tv, z, a
			}
		}
	}
	if bestZ < 0 {
		// No feasible schedule: hold the start zone (flagged infeasible).
		zones := make([]home.ZoneID, w.Length)
		for i := range zones {
			zones[i] = w.StartZone
		}
		return Schedule{
			Zones:      zones,
			EndZone:    w.StartZone,
			EndArrival: w.StartArrival,
			Feasible:   false,
		}, st, nil
	}
	// Reconstruct.
	zones := make([]home.ZoneID, w.Length)
	z, a := bestZ, bestA
	for t := w.Length; t > 0; t-- {
		zones[t-1] = w.Zones[z]
		pz, pa, _ := decode(choice[idx(t, z, a)])
		z, a = pz, pa
	}
	return Schedule{
		Zones:      zones,
		EndZone:    w.Zones[bestZ],
		EndArrival: arrivalSlot(bestA),
		Value:      bestV,
		Feasible:   true,
	}, st, nil
}
