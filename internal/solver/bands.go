// Tabulated stay-band oracle: the attack planner's DP issues its stay
// queries for one occupant over integer arrival slots of a single day, so
// the whole query surface flattens into per-(zone, arrival) arrays. A
// trained ADM exports the table once (adm.Model.StayBands) and
// OptimizeWindowBands consumes it with direct array loads — no interface
// dispatch, no map lookups — inside the O(T·Z·A·Z) inner loop.

package solver

import (
	"github.com/acyd-lab/shatter/internal/home"
)

// StayBands is the flattened stay-band table for one occupant. A cell
// c = int(zone)·Slots + arrival answers the two Oracle queries:
//
//   - MaxStayAt: Covered[c] plus the [MinStay[c], MaxStay[c]] union bounds.
//   - InRange: the per-hull stay intervals IvLo/IvHi[IvOff[c]:IvOff[c+1]],
//     needed because the union range may contain gaps between clusters.
//
// Arrivals outside [0, Slots) and zones beyond the table read as uncovered;
// the source model's out-of-day geometric fallback is intentionally not
// replicated — the planner's day-bounded windows never leave the table.
// A StayBands is immutable after construction and safe for concurrent
// readers.
type StayBands struct {
	// Slots is the number of tabulated arrival slots per day (table stride).
	Slots int
	// Covered[c] reports whether some cluster hull covers the cell's
	// arrival slot.
	Covered []bool
	// MinStay and MaxStay are the integer stay-range union bounds (valid
	// when covered).
	MinStay, MaxStay []int32
	// IvOff/IvLo/IvHi store each cell's hull stay intervals contiguously:
	// interval k in [IvOff[c], IvOff[c+1]) spans [IvLo[k], IvHi[k]].
	IvOff []int32
	IvLo  []float64
	IvHi  []float64
	// Tol is the boundary tolerance of the interval membership test,
	// mirroring the source model's geometry predicates.
	Tol float64
}

// cell resolves a (zone, arrival) query to a table index; ok=false for
// queries outside the tabulated surface.
func (b *StayBands) cell(z home.ZoneID, arrival int) (int, bool) {
	if arrival < 0 || arrival >= b.Slots || z < 0 {
		return 0, false
	}
	c := int(z)*b.Slots + arrival
	if c >= len(b.Covered) {
		return 0, false
	}
	return c, true
}

// MaxStayAt mirrors Oracle.MaxStay for the table's occupant.
func (b *StayBands) MaxStayAt(z home.ZoneID, arrival int) (int, bool) {
	c, ok := b.cell(z, arrival)
	if !ok || !b.Covered[c] {
		return 0, false
	}
	return int(b.MaxStay[c]), true
}

// MinStayAt mirrors adm.Model.MinStay (Algorithm 1's threshold).
func (b *StayBands) MinStayAt(z home.ZoneID, arrival int) (int, bool) {
	c, ok := b.cell(z, arrival)
	if !ok || !b.Covered[c] {
		return 0, false
	}
	return int(b.MinStay[c]), true
}

// InRange mirrors Oracle.InRangeStay: whether exiting after stay minutes is
// stealthy for the arrival, gap-aware across the cell's hull intervals.
func (b *StayBands) InRange(z home.ZoneID, arrival, stay int) bool {
	c, ok := b.cell(z, arrival)
	if !ok {
		return false
	}
	return b.inRangeCell(c, stay)
}

func (b *StayBands) inRangeCell(c, stay int) bool {
	y := float64(stay)
	for k := b.IvOff[c]; k < b.IvOff[c+1]; k++ {
		if y >= b.IvLo[k]-b.Tol && y <= b.IvHi[k]+b.Tol {
			return true
		}
	}
	return false
}

// OptimizeWindowBands solves the window with the same exact dynamic program
// as OptimizeWindowWS but reads the tabulated oracle directly — the forward
// pass below mirrors OptimizeWindowWS statement for statement with every
// oracle call replaced by an array load, and the two are locked together by
// cross-validation tests. All of the window's arrival slots must lie inside
// the table ([0, bands.Slots)), which holds for any day-bounded window.
func OptimizeWindowBands(ws *Workspace, w Window, bands *StayBands, cost CostFn, allowed AllowedFn) (Schedule, Stats, error) {
	var d dp
	if err := d.start(ws, w); err != nil {
		return Schedule{}, Stats{}, err
	}
	var st Stats

	stride := bands.Slots
	covered := bands.Covered
	maxStay := bands.MaxStay
	// zoneBase[z] is the table row of w.Zones[z]; -1 for zones beyond the
	// table (always uncovered).
	zoneBase := ws.zoneBaseBuf(d.nZ)
	for z, zone := range w.Zones {
		if zone < 0 || int(zone)*stride >= len(covered) {
			zoneBase[z] = -1
		} else {
			zoneBase[z] = int(zone) * stride
		}
	}
	bandCell := func(z, arrival int) int {
		if base := zoneBase[z]; base >= 0 && arrival >= 0 && arrival < stride {
			return base + arrival
		}
		return -1
	}

	// startLenient: see OptimizeWindowWS.
	startCovered := false
	if c, ok := bands.cell(w.StartZone, w.StartArrival); ok {
		startCovered = covered[c]
	}

	for t := 0; t < w.Length; t++ {
		abs := w.StartSlot + t
		for z := 0; z < d.nZ; z++ {
			for a := 0; a < d.nA; a++ {
				i := d.idx(t, z, a)
				if !ws.live(i) {
					continue
				}
				v := ws.value[i]
				st.NodesExpanded++
				zone := w.Zones[z]
				arr := d.arrivalSlot(a)
				dur := abs - arr // completed stay so far
				c := bandCell(z, arr)
				// Action 1: stay for slot t (new duration dur+1).
				canStay := false
				switch {
				case c >= 0 && covered[c]:
					canStay = dur+1 <= int(maxStay[c])
				case z == d.startZI && a == 0 && !startCovered:
					canStay = true // lenient inherited stay
				}
				if canStay && allowed(abs, zone) {
					nv := v + cost(abs, zone)
					if ni := d.idx(t+1, z, a); !ws.live(ni) || nv > ws.value[ni] {
						ws.set(ni, nv, d.encode(z, a, actStay))
					}
				}
				// Action 2: exit now (stay = dur) and occupy z' for slot t.
				exitOK := c >= 0 && bands.inRangeCell(c, dur)
				if z == d.startZI && a == 0 && !startCovered {
					exitOK = true
				}
				if !exitOK || dur < 1 {
					continue
				}
				for z2 := 0; z2 < d.nZ; z2++ {
					if z2 == z {
						continue
					}
					zone2 := w.Zones[z2]
					if !allowed(abs, zone2) {
						continue
					}
					// The new arrival must have cluster coverage so the
					// occupant can eventually exit stealthily.
					if c2 := bandCell(z2, abs); c2 < 0 || !covered[c2] {
						continue
					}
					nv := v + cost(abs, zone2)
					aIdx := t + 1 // arrival at abs
					if ni := d.idx(t+1, z2, aIdx); !ws.live(ni) || nv > ws.value[ni] {
						ws.set(ni, nv, d.encode(z, a, actMove))
					}
				}
			}
		}
	}
	return d.finish(st)
}
