package solver

import (
	"math"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/rng"
)

// bandsFromMap tabulates a mapOracle over nSlots arrival slots so the
// specialized band pass can be cross-validated against the interface pass
// on identical stay semantics.
func bandsFromMap(o mapOracle, nZones, nSlots int) *StayBands {
	b := &StayBands{
		Slots:   nSlots,
		Covered: make([]bool, nZones*nSlots),
		MinStay: make([]int32, nZones*nSlots),
		MaxStay: make([]int32, nZones*nSlots),
		IvOff:   make([]int32, nZones*nSlots+1),
		Tol:     1e-9,
	}
	for z := 0; z < nZones; z++ {
		band, ok := o[home.ZoneID(z)]
		for t := 0; t < nSlots; t++ {
			c := z*nSlots + t
			b.IvOff[c] = int32(len(b.IvLo))
			if !ok {
				continue
			}
			b.Covered[c] = true
			b.MinStay[c] = int32(band[0])
			b.MaxStay[c] = int32(band[1])
			b.IvLo = append(b.IvLo, float64(band[0]))
			b.IvHi = append(b.IvHi, float64(band[1]))
		}
	}
	b.IvOff[nZones*nSlots] = int32(len(b.IvLo))
	return b
}

// TestBandsQueriesMatchOracle locks the StayBands accessors to the oracle
// they tabulate.
func TestBandsQueriesMatchOracle(t *testing.T) {
	oracle := mapOracle{
		home.Outside:    {1, 600},
		home.Bedroom:    {2, 14},
		home.Kitchen:    {3, 7},
		home.Livingroom: {2, 25},
	}
	b := bandsFromMap(oracle, len(allZones), 300)
	for _, z := range allZones {
		for arr := 0; arr < 300; arr += 13 {
			wantMax, wantOK := oracle.MaxStay(0, z, arr)
			gotMax, gotOK := b.MaxStayAt(z, arr)
			if gotOK != wantOK || (wantOK && gotMax != wantMax) {
				t.Fatalf("z=%v arr=%d: MaxStayAt (%d,%v) != oracle (%d,%v)", z, arr, gotMax, gotOK, wantMax, wantOK)
			}
			for stay := 0; stay < 30; stay++ {
				if got, want := b.InRange(z, arr, stay), oracle.InRangeStay(0, z, arr, stay); got != want {
					t.Fatalf("z=%v arr=%d stay=%d: InRange %v != oracle %v", z, arr, stay, got, want)
				}
			}
		}
	}
	// Out-of-table queries read as uncovered, never panic.
	if _, ok := b.MaxStayAt(home.Bedroom, -1); ok {
		t.Error("negative arrival should be uncovered")
	}
	if _, ok := b.MaxStayAt(home.Bedroom, 300); ok {
		t.Error("past-table arrival should be uncovered")
	}
	if _, ok := b.MaxStayAt(home.ZoneID(99), 10); ok {
		t.Error("zone beyond the table should be uncovered")
	}
	if b.InRange(home.ZoneID(99), 10, 5) {
		t.Error("zone beyond the table should never be in range")
	}
}

// TestBandsDPMatchesOracleDP is the lock between the two forward passes:
// over randomized stay bands, windows, and capabilities, OptimizeWindowBands
// must reproduce OptimizeWindowWS exactly — value, feasibility, schedule,
// end state, and node count.
func TestBandsDPMatchesOracleDP(t *testing.T) {
	r := rng.New(42)
	const nSlots = 400
	var wsA, wsB Workspace
	for trial := 0; trial < 40; trial++ {
		oracle := mapOracle{}
		for _, z := range allZones {
			if r.Intn(6) == 0 && z != home.Outside {
				continue // leave the zone uncovered
			}
			lo := 1 + r.Intn(3)
			oracle[z] = [2]int{lo, lo + r.Intn(25)}
		}
		costTbl := map[home.ZoneID]float64{}
		for _, z := range allZones {
			costTbl[z] = r.Range(0, 10)
		}
		cost := func(_ int, z home.ZoneID) float64 { return costTbl[z] }
		blocked := allZones[r.Intn(len(allZones))]
		allowed := func(_ int, z home.ZoneID) bool { return z != blocked }
		start := 50 + r.Intn(200)
		w := Window{
			Occupant:     0,
			StartSlot:    start,
			Length:       4 + r.Intn(9),
			StartZone:    allZones[r.Intn(len(allZones))],
			StartArrival: start - r.Intn(8),
			Zones:        allZones,
		}
		if trial%3 == 0 {
			w.TerminalOK = func(z home.ZoneID, arr int) bool { return z != home.Kitchen }
		}
		if trial%4 == 0 {
			w.TerminalBonus = func(z home.ZoneID, arr int) float64 { return costTbl[z] * float64(arr%5) }
		}
		bands := bandsFromMap(oracle, len(allZones), nSlots)
		sa, sta, errA := OptimizeWindowWS(&wsA, w, oracle, cost, allowed)
		sb, stb, errB := OptimizeWindowBands(&wsB, w, bands, cost, allowed)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if sta != stb {
			t.Fatalf("trial %d: stats %+v != %+v", trial, sta, stb)
		}
		if sa.Feasible != sb.Feasible || math.Abs(sa.Value-sb.Value) > 1e-12 ||
			sa.EndZone != sb.EndZone || sa.EndArrival != sb.EndArrival ||
			!reflect.DeepEqual(sa.Zones, sb.Zones) {
			t.Fatalf("trial %d: schedules diverge:\noracle: %+v\nbands:  %+v", trial, sa, sb)
		}
	}
}

// TestWorkspaceEpochReuse asserts the epoch-stamped workspace gives the
// same answers across a chain of windows of varying sizes as fresh
// workspaces do — stale cells from earlier (including larger) windows must
// never leak into a later solve.
func TestWorkspaceEpochReuse(t *testing.T) {
	oracle := mapOracle{
		home.Outside:    {1, 600},
		home.Bedroom:    {2, 20},
		home.Livingroom: {2, 30},
		home.Kitchen:    {2, 6},
		home.Bathroom:   {2, 9},
	}
	var shared Workspace
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		start := 100 + r.Intn(500)
		w := Window{
			StartSlot:    start,
			Length:       2 + r.Intn(12), // varying sizes force regrowth and shrink
			StartZone:    home.Bedroom,
			StartArrival: start - 1 - r.Intn(5),
			Zones:        allZones,
		}
		got, _, err := OptimizeWindowWS(&shared, w, oracle, zoneCost, allAllowed)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := OptimizeWindow(w, oracle, zoneCost, allAllowed)
		if err != nil {
			t.Fatal(err)
		}
		if got.Feasible != want.Feasible || math.Abs(got.Value-want.Value) > 1e-12 ||
			!reflect.DeepEqual(got.Zones, want.Zones) {
			t.Fatalf("trial %d: shared workspace diverges: %+v vs %+v", trial, got, want)
		}
	}
}

// TestWorkspaceEpochWrap forces the uint32 epoch to wrap and checks the
// stamp tables are cleared rather than aliasing stale cells.
func TestWorkspaceEpochWrap(t *testing.T) {
	oracle := mapOracle{home.Bedroom: {1, 30}, home.Kitchen: {2, 8}}
	w := Window{
		StartSlot: 60, Length: 5,
		StartZone: home.Bedroom, StartArrival: 58,
		Zones: allZones,
	}
	var ws Workspace
	if _, _, err := OptimizeWindowWS(&ws, w, oracle, zoneCost, allAllowed); err != nil {
		t.Fatal(err)
	}
	ws.epoch = ^uint32(0) // next ensure wraps
	got, _, err := OptimizeWindowWS(&ws, w, oracle, zoneCost, allAllowed)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := OptimizeWindow(w, oracle, zoneCost, allAllowed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Value-want.Value) > 1e-12 || !reflect.DeepEqual(got.Zones, want.Zones) {
		t.Fatalf("post-wrap solve diverges: %+v vs %+v", got, want)
	}
}

// TestDPWindowZeroAllocs is the allocation-regression gate for the DP hot
// path: after warm-up, a window solve (both passes) allocates nothing.
func TestDPWindowZeroAllocs(t *testing.T) {
	oracle := mapOracle{
		home.Outside:    {1, 600},
		home.Bedroom:    {2, 20},
		home.Livingroom: {2, 30},
		home.Kitchen:    {2, 6},
		home.Bathroom:   {2, 9},
	}
	bands := bandsFromMap(oracle, len(allZones), 1440)
	w := Window{
		StartSlot: 600, Length: 10,
		StartZone: home.Bedroom, StartArrival: 595,
		Zones: allZones,
	}
	var ws Workspace
	solveOracle := func() {
		if _, _, err := OptimizeWindowWS(&ws, w, oracle, zoneCost, allAllowed); err != nil {
			t.Fatal(err)
		}
	}
	solveBands := func() {
		if _, _, err := OptimizeWindowBands(&ws, w, bands, zoneCost, allAllowed); err != nil {
			t.Fatal(err)
		}
	}
	solveOracle() // warm the workspace
	if allocs := testing.AllocsPerRun(50, solveOracle); allocs != 0 {
		t.Errorf("OptimizeWindowWS: %.1f allocs/window after warm-up, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, solveBands); allocs != 0 {
		t.Errorf("OptimizeWindowBands: %.1f allocs/window after warm-up, want 0", allocs)
	}
}
