package solver

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/rng"
)

// bandOracle accepts any stay in [minStay, maxStay] for every zone and
// arrival — a simple, fully covered world.
type bandOracle struct {
	min, max int
}

func (o bandOracle) MaxStay(_ int, _ home.ZoneID, _ int) (int, bool) { return o.max, true }
func (o bandOracle) InRangeStay(_ int, _ home.ZoneID, _ int, stay int) bool {
	return stay >= o.min && stay <= o.max
}

// mapOracle gives per-zone stay bands; zones absent from the map have no
// coverage at all.
type mapOracle map[home.ZoneID][2]int

func (o mapOracle) MaxStay(_ int, z home.ZoneID, _ int) (int, bool) {
	b, ok := o[z]
	return b[1], ok
}
func (o mapOracle) InRangeStay(_ int, z home.ZoneID, _ int, stay int) bool {
	b, ok := o[z]
	return ok && stay >= b[0] && stay <= b[1]
}

var allZones = []home.ZoneID{home.Outside, home.Bedroom, home.Livingroom, home.Kitchen, home.Bathroom}

func allAllowed(int, home.ZoneID) bool { return true }

// zoneCost makes the kitchen the jackpot zone.
func zoneCost(_ int, z home.ZoneID) float64 {
	switch z {
	case home.Kitchen:
		return 10
	case home.Bathroom:
		return 3
	case home.Livingroom:
		return 2
	case home.Bedroom:
		return 1
	default:
		return 0
	}
}

func TestWindowValidation(t *testing.T) {
	bad := Window{Length: 0, Zones: allZones}
	if _, _, err := OptimizeWindow(bad, bandOracle{1, 100}, zoneCost, allAllowed); err == nil {
		t.Error("zero-length window should error")
	}
	bad = Window{Length: 5, Zones: allZones, StartSlot: 3, StartArrival: 9}
	if _, _, err := OptimizeWindow(bad, bandOracle{1, 100}, zoneCost, allAllowed); err == nil {
		t.Error("arrival after start should error")
	}
	bad = Window{Length: 5, Zones: allZones, StartZone: home.ZoneID(77)}
	if _, _, err := OptimizeWindow(bad, bandOracle{1, 100}, zoneCost, allAllowed); err == nil {
		t.Error("StartZone outside Zones should error")
	}
}

func TestDPMovesToJackpotZone(t *testing.T) {
	w := Window{
		Occupant:  0,
		StartSlot: 100, Length: 10,
		StartZone: home.Bedroom, StartArrival: 95,
		Zones: allZones,
	}
	sched, _, err := OptimizeWindow(w, bandOracle{2, 60}, zoneCost, allAllowed)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible {
		t.Fatal("expected feasible schedule")
	}
	// The start stay is already 5 minutes (≥ min 2), so the occupant can
	// move to the kitchen immediately and sit there for the whole window.
	for i, z := range sched.Zones {
		if z != home.Kitchen {
			t.Fatalf("slot %d: in %v, want Kitchen", i, z)
		}
	}
	if math.Abs(sched.Value-100) > 1e-9 {
		t.Errorf("value = %v, want 100", sched.Value)
	}
}

func TestDPRespectsMaxStay(t *testing.T) {
	// Kitchen pays best but tolerates at most 4-minute stays; the schedule
	// must bounce between zones.
	oracle := mapOracle{
		home.Kitchen:    {2, 4},
		home.Livingroom: {2, 60},
		home.Bedroom:    {2, 60},
		home.Outside:    {2, 60},
		home.Bathroom:   {2, 60},
	}
	w := Window{
		StartSlot: 50, Length: 12,
		StartZone: home.Livingroom, StartArrival: 45,
		Zones: allZones,
	}
	sched, _, err := OptimizeWindow(w, oracle, zoneCost, allAllowed)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible {
		t.Fatal("expected feasible schedule")
	}
	// Verify no kitchen run exceeds 4 slots.
	run := 0
	if w.StartZone == home.Kitchen {
		run = w.StartSlot - w.StartArrival
	}
	for _, z := range sched.Zones {
		if z == home.Kitchen {
			run++
			if run > 4 {
				t.Fatal("kitchen stay exceeded MaxStay")
			}
		} else {
			run = 0
		}
	}
	// It should still visit the kitchen at least once.
	visited := false
	for _, z := range sched.Zones {
		if z == home.Kitchen {
			visited = true
		}
	}
	if !visited {
		t.Error("optimal schedule should exploit the kitchen")
	}
}

func TestDPRespectsAllowed(t *testing.T) {
	// Kitchen is off-limits (no sensor access): the optimiser settles for
	// the bathroom.
	noKitchen := func(_ int, z home.ZoneID) bool { return z != home.Kitchen }
	w := Window{
		StartSlot: 10, Length: 8,
		StartZone: home.Bedroom, StartArrival: 5,
		Zones: allZones,
	}
	sched, _, err := OptimizeWindow(w, bandOracle{2, 60}, zoneCost, noKitchen)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range sched.Zones {
		if z == home.Kitchen {
			t.Fatal("schedule used a disallowed zone")
		}
	}
	if sched.Value <= 0 {
		t.Error("should still earn something in allowed zones")
	}
}

func TestDPInfeasibleFallsBack(t *testing.T) {
	// No zone has coverage and nothing is allowed: fall back to holding.
	never := func(int, home.ZoneID) bool { return false }
	w := Window{
		StartSlot: 10, Length: 5,
		StartZone: home.Bedroom, StartArrival: 8,
		Zones: allZones,
	}
	sched, _, err := OptimizeWindow(w, mapOracle{}, zoneCost, never)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Feasible {
		t.Error("expected infeasible")
	}
	for _, z := range sched.Zones {
		if z != home.Bedroom {
			t.Error("fallback must hold the start zone")
		}
	}
}

func TestDPLenientUncoveredStart(t *testing.T) {
	// Start state has no cluster coverage (real behaviour was anomalous);
	// the solver may still stay or exit.
	oracle := mapOracle{
		home.Kitchen: {2, 30},
		home.Outside: {1, 600},
	}
	w := Window{
		StartSlot: 20, Length: 6,
		StartZone: home.Bedroom, StartArrival: 15, // bedroom has no coverage
		Zones: allZones,
	}
	sched, _, err := OptimizeWindow(w, oracle, zoneCost, allAllowed)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.Feasible {
		t.Fatal("lenient start should allow a schedule")
	}
	// Best play: exit the bedroom immediately into the kitchen.
	if sched.Zones[0] != home.Kitchen {
		t.Errorf("first slot in %v, want Kitchen", sched.Zones[0])
	}
}

func TestBBMatchesDPOnSmallWindows(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		oracle := mapOracle{
			home.Outside:    {1, 600},
			home.Bedroom:    {2, 3 + r.Intn(20)},
			home.Livingroom: {2, 3 + r.Intn(20)},
			home.Kitchen:    {2, 3 + r.Intn(8)},
			home.Bathroom:   {2, 3 + r.Intn(10)},
		}
		costTbl := map[home.ZoneID]float64{
			home.Outside:    0,
			home.Bedroom:    r.Range(0, 5),
			home.Livingroom: r.Range(0, 5),
			home.Kitchen:    r.Range(5, 12),
			home.Bathroom:   r.Range(0, 6),
		}
		cost := func(_ int, z home.ZoneID) float64 { return costTbl[z] }
		w := Window{
			StartSlot: 100, Length: 6,
			StartZone: home.Livingroom, StartArrival: 97,
			Zones: allZones,
		}
		dp, _, err := OptimizeWindow(w, oracle, cost, allAllowed)
		if err != nil {
			t.Fatal(err)
		}
		bb, _, err := BranchAndBound(w, oracle, cost, allAllowed, BBConfig{Prune: true})
		if err != nil {
			t.Fatal(err)
		}
		if dp.Feasible != bb.Feasible {
			t.Fatalf("trial %d: feasibility disagreement", trial)
		}
		if dp.Feasible && math.Abs(dp.Value-bb.Value) > 1e-9 {
			t.Fatalf("trial %d: DP %v != B&B %v", trial, dp.Value, bb.Value)
		}
	}
}

func TestBBPruningReducesNodes(t *testing.T) {
	w := Window{
		StartSlot: 100, Length: 8,
		StartZone: home.Livingroom, StartArrival: 97,
		Zones: allZones,
	}
	oracle := bandOracle{2, 30}
	_, pruned, err := BranchAndBound(w, oracle, zoneCost, allAllowed, BBConfig{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	_, unpruned, err := BranchAndBound(w, oracle, zoneCost, allAllowed, BBConfig{Prune: false})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NodesExpanded >= unpruned.NodesExpanded {
		t.Errorf("pruning expanded %d nodes vs %d without", pruned.NodesExpanded, unpruned.NodesExpanded)
	}
}

func TestBBNodeBudget(t *testing.T) {
	w := Window{
		StartSlot: 100, Length: 12,
		StartZone: home.Livingroom, StartArrival: 97,
		Zones: allZones,
	}
	_, st, err := BranchAndBound(w, bandOracle{2, 30}, zoneCost, allAllowed, BBConfig{Prune: false, NodeBudget: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Error("expected truncation under a tiny budget")
	}
	if st.NodesExpanded > 501 {
		t.Errorf("budget overshot: %d", st.NodesExpanded)
	}
}

func TestBBExponentialInHorizon(t *testing.T) {
	// The Fig 11a shape: unpruned joint search grows super-linearly in the
	// horizon.
	oracle := bandOracle{2, 30}
	nodes := make([]int, 0, 3)
	for _, length := range []int{4, 6, 8} {
		w := Window{
			StartSlot: 100, Length: length,
			StartZone: home.Livingroom, StartArrival: 97,
			Zones: allZones,
		}
		_, st, err := BranchAndBound(w, oracle, zoneCost, allAllowed, BBConfig{Prune: false})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, st.NodesExpanded)
	}
	// Each +2 horizon should multiply node count by well over 2.
	if float64(nodes[1]) < 2.5*float64(nodes[0]) || float64(nodes[2]) < 2.5*float64(nodes[1]) {
		t.Errorf("node growth not exponential-looking: %v", nodes)
	}
}

// Property: DP schedules always respect MaxStay along the whole window for
// random band oracles.
func TestPropertyDPRespectsStayBands(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		maxStay := 2 + r.Intn(10)
		oracle := bandOracle{1, maxStay}
		w := Window{
			StartSlot: 200, Length: 10,
			StartZone: home.Bedroom, StartArrival: 200 - 1 - r.Intn(maxStay),
			Zones: allZones,
		}
		sched, _, err := OptimizeWindow(w, oracle, zoneCost, allAllowed)
		if err != nil || !sched.Feasible {
			return err == nil // infeasible fallback is acceptable
		}
		// Walk the schedule verifying stay lengths.
		zone, arrival := w.StartZone, w.StartArrival
		for i, z := range sched.Zones {
			abs := w.StartSlot + i
			if z != zone {
				zone, arrival = z, abs
			}
			if abs+1-arrival > maxStay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: DP value is monotone in the allowed set — allowing more zones
// can never reduce the optimum.
func TestPropertyDPMonotoneInCapability(t *testing.T) {
	oracle := bandOracle{2, 20}
	w := Window{
		StartSlot: 60, Length: 8,
		StartZone: home.Bedroom, StartArrival: 55,
		Zones: allZones,
	}
	restricted := func(_ int, z home.ZoneID) bool { return z == home.Bedroom || z == home.Outside }
	full := allAllowed
	sr, _, err := OptimizeWindow(w, oracle, zoneCost, restricted)
	if err != nil {
		t.Fatal(err)
	}
	sf, _, err := OptimizeWindow(w, oracle, zoneCost, full)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Value < sr.Value {
		t.Errorf("full capability %v < restricted %v", sf.Value, sr.Value)
	}
}
