package testbed

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
)

// Message aliases the transport message type so testbed consumers can write
// MITM rewrites without importing the transport package directly.
type Message = mqtt.Message

// Rig wires the simulated plant to a real MQTT-style broker over loopback
// TCP, reproducing the paper's testbed architecture (Fig 9): a sensor node
// publishes per-zone load reports, a supervisory controller subscribes and
// publishes fan duties, and — under attack — the sensor traffic passes
// through a man-in-the-middle proxy that forges the reports.
type Rig struct {
	sim    *Simulator
	model  *DynamicsModel
	broker *mqtt.Broker
	proxy  *mqtt.Proxy

	sensor *mqtt.Client // publishes loads (possibly via the MITM proxy)
	ctrl   *mqtt.Client // the controller's broker connection
	loads  <-chan mqtt.Message
	duties <-chan mqtt.Message
}

// loadReport is the sensor node's message.
type loadReport struct {
	Zone  int     `json:"zone"`
	LoadW float64 `json:"loadW"`
}

// dutyCommand is the controller's actuation message.
type dutyCommand struct {
	Zone int     `json:"zone"`
	Duty float64 `json:"duty"`
}

// NewRig boots a broker, an optional MITM proxy with the given rewrite, and
// the two clients. Callers must Close the rig.
func NewRig(sim *Simulator, model *DynamicsModel, rewrite func(mqtt.Message) mqtt.Message) (*Rig, error) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &Rig{sim: sim, model: model, broker: broker}
	sensorAddr := broker.Addr()
	if rewrite != nil {
		proxy, err := mqtt.NewProxy("127.0.0.1:0", broker.Addr(), rewrite)
		if err != nil {
			broker.Close()
			return nil, err
		}
		r.proxy = proxy
		sensorAddr = proxy.Addr()
	}
	if r.sensor, err = mqtt.Dial(sensorAddr); err != nil {
		r.Close()
		return nil, err
	}
	if r.ctrl, err = mqtt.Dial(broker.Addr()); err != nil {
		r.Close()
		return nil, err
	}
	if r.loads, err = r.ctrl.Subscribe("testbed/load"); err != nil {
		r.Close()
		return nil, err
	}
	if r.duties, err = r.ctrl.Subscribe("testbed/duty"); err != nil {
		r.Close()
		return nil, err
	}
	// Give the broker a moment to register subscriptions before traffic.
	time.Sleep(30 * time.Millisecond)
	return r, nil
}

// Tick runs one supervisory minute: the sensor node publishes each zone's
// believed load, the controller computes and publishes duties, and the
// plant steps with the real loads. Loads shorter than the zone count read
// as zero. Returns the energy consumed (Wh).
func (r *Rig) Tick(actual, believed []float64) (float64, error) {
	zones := r.sim.Zones()
	// Sensor node publishes (through the proxy when attacked).
	for zi := 0; zi < zones; zi++ {
		if err := r.sensor.Publish("testbed/load", loadReport{Zone: zi, LoadW: at(believed, zi)}); err != nil {
			return 0, fmt.Errorf("testbed: publish load: %w", err)
		}
	}
	in := r.sim.NewInputs()
	copy(in.LEDWatts, actual)
	// The controller consumes the per-zone reports and answers with duties.
	deadline := time.After(3 * time.Second)
	for received := 0; received < zones; {
		select {
		case m, ok := <-r.loads:
			if !ok {
				return 0, fmt.Errorf("testbed: load channel closed")
			}
			var rep loadReport
			if err := json.Unmarshal(m.Payload, &rep); err != nil {
				return 0, err
			}
			if rep.Zone < 0 || rep.Zone >= zones {
				return 0, fmt.Errorf("testbed: load report for bad zone %d", rep.Zone)
			}
			duty := 0.0
			if rep.LoadW > 0 {
				duty = clamp01(r.model.DutyForLoad[rep.Zone].Eval(rep.LoadW * 0.85))
			}
			if err := r.ctrl.Publish("testbed/duty", dutyCommand{Zone: rep.Zone, Duty: duty}); err != nil {
				return 0, err
			}
			received++
		case <-deadline:
			return 0, fmt.Errorf("testbed: timed out waiting for load reports")
		}
	}
	// Apply the actuation commands.
	deadline = time.After(3 * time.Second)
	for received := 0; received < zones; {
		select {
		case m, ok := <-r.duties:
			if !ok {
				return 0, fmt.Errorf("testbed: duty channel closed")
			}
			var cmd dutyCommand
			if err := json.Unmarshal(m.Payload, &cmd); err != nil {
				return 0, err
			}
			if cmd.Zone < 0 || cmd.Zone >= zones {
				return 0, fmt.Errorf("testbed: duty command for bad zone %d", cmd.Zone)
			}
			in.FanDuty[cmd.Zone] = cmd.Duty
			received++
		case <-deadline:
			return 0, fmt.Errorf("testbed: timed out waiting for duty commands")
		}
	}
	return r.sim.Step(in), nil
}

// Close tears down clients, proxy, and broker.
func (r *Rig) Close() {
	if r.sensor != nil {
		r.sensor.Close()
	}
	if r.ctrl != nil {
		r.ctrl.Close()
	}
	if r.proxy != nil {
		r.proxy.Close()
	}
	if r.broker != nil {
		r.broker.Close()
	}
}

// ForgeRewrite returns a MITM rewrite forging every load report into a
// single-zone story: zones other than forgeZone report empty; forgeZone
// reports the forged wattage.
func ForgeRewrite(forgeZone int, forgedW float64) func(mqtt.Message) mqtt.Message {
	return func(m mqtt.Message) mqtt.Message {
		if m.Topic != "testbed/load" {
			return m
		}
		var rep loadReport
		if err := json.Unmarshal(m.Payload, &rep); err != nil {
			return m
		}
		if rep.Zone == forgeZone {
			rep.LoadW = forgedW
		} else {
			rep.LoadW = 0
		}
		forged, err := json.Marshal(rep)
		if err != nil {
			return m
		}
		m.Payload = forged
		return m
	}
}

// KitchenForgeRewrite is the validation demo's rewrite: the "everyone
// cooking in the kitchen" story on the canonical layout (kitchen index
// ZoneID Kitchen − 1).
func KitchenForgeRewrite(kitchenIndexW float64) func(mqtt.Message) mqtt.Message {
	return ForgeRewrite(2, kitchenIndexW)
}

// zoneTopicIndex parses a zone index out of a topic suffix against a zone
// count bound; kept for forward compatibility with per-zone topics.
func zoneTopicIndex(topic string, zones int) (int, bool) {
	if len(topic) == 0 {
		return 0, false
	}
	i, err := strconv.Atoi(topic[len(topic)-1:])
	if err != nil || i < 0 || i >= zones {
		return 0, false
	}
	return i, true
}
