package testbed

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
)

// Message aliases the transport message type so testbed consumers can write
// MITM rewrites without importing the transport package directly.
type Message = mqtt.Message

// Rig wires the simulated plant to a real MQTT-style broker over loopback
// TCP, reproducing the paper's testbed architecture (Fig 9): a sensor node
// publishes per-zone load reports, a supervisory controller subscribes and
// publishes fan duties, and — under attack — the sensor traffic passes
// through a man-in-the-middle proxy that forges the reports.
type Rig struct {
	sim    *Simulator
	model  *DynamicsModel
	broker *mqtt.Broker
	proxy  *mqtt.Proxy

	sensor *mqtt.Client // publishes loads (possibly via the MITM proxy)
	ctrl   *mqtt.Client // the controller's broker connection
	loads  <-chan mqtt.Message
	duties <-chan mqtt.Message
}

// loadReport is the sensor node's message.
type loadReport struct {
	Zone  int     `json:"zone"`
	LoadW float64 `json:"loadW"`
}

// dutyCommand is the controller's actuation message.
type dutyCommand struct {
	Zone int     `json:"zone"`
	Duty float64 `json:"duty"`
}

// NewRig boots a broker, an optional MITM proxy with the given rewrite, and
// the two clients. Callers must Close the rig.
func NewRig(sim *Simulator, model *DynamicsModel, rewrite func(mqtt.Message) mqtt.Message) (*Rig, error) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &Rig{sim: sim, model: model, broker: broker}
	sensorAddr := broker.Addr()
	if rewrite != nil {
		proxy, err := mqtt.NewProxy("127.0.0.1:0", broker.Addr(), rewrite)
		if err != nil {
			broker.Close()
			return nil, err
		}
		r.proxy = proxy
		sensorAddr = proxy.Addr()
	}
	if r.sensor, err = mqtt.Dial(sensorAddr); err != nil {
		r.Close()
		return nil, err
	}
	if r.ctrl, err = mqtt.Dial(broker.Addr()); err != nil {
		r.Close()
		return nil, err
	}
	if r.loads, err = r.ctrl.Subscribe("testbed/load"); err != nil {
		r.Close()
		return nil, err
	}
	if r.duties, err = r.ctrl.Subscribe("testbed/duty"); err != nil {
		r.Close()
		return nil, err
	}
	// Give the broker a moment to register subscriptions before traffic.
	time.Sleep(30 * time.Millisecond)
	return r, nil
}

// Tick runs one supervisory minute: the sensor node publishes each zone's
// believed load, the controller computes and publishes duties, and the
// plant steps with the real loads. Returns the energy consumed (Wh).
func (r *Rig) Tick(actual, believed [zoneCount]float64) (float64, error) {
	// Sensor node publishes (through the proxy when attacked).
	for zi := 0; zi < zoneCount; zi++ {
		if err := r.sensor.Publish("testbed/load", loadReport{Zone: zi, LoadW: believed[zi]}); err != nil {
			return 0, fmt.Errorf("testbed: publish load: %w", err)
		}
	}
	var in Inputs
	in.LEDWatts = actual
	// The controller consumes the four reports and answers with duties.
	deadline := time.After(3 * time.Second)
	for received := 0; received < zoneCount; {
		select {
		case m, ok := <-r.loads:
			if !ok {
				return 0, fmt.Errorf("testbed: load channel closed")
			}
			var rep loadReport
			if err := json.Unmarshal(m.Payload, &rep); err != nil {
				return 0, err
			}
			duty := 0.0
			if rep.LoadW > 0 {
				duty = clamp01(r.model.DutyForLoad[rep.Zone].Eval(rep.LoadW * 0.85))
			}
			if err := r.ctrl.Publish("testbed/duty", dutyCommand{Zone: rep.Zone, Duty: duty}); err != nil {
				return 0, err
			}
			received++
		case <-deadline:
			return 0, fmt.Errorf("testbed: timed out waiting for load reports")
		}
	}
	// Apply the actuation commands.
	deadline = time.After(3 * time.Second)
	for received := 0; received < zoneCount; {
		select {
		case m, ok := <-r.duties:
			if !ok {
				return 0, fmt.Errorf("testbed: duty channel closed")
			}
			var cmd dutyCommand
			if err := json.Unmarshal(m.Payload, &cmd); err != nil {
				return 0, err
			}
			in.FanDuty[cmd.Zone] = cmd.Duty
			received++
		case <-deadline:
			return 0, fmt.Errorf("testbed: timed out waiting for duty commands")
		}
	}
	return r.sim.Step(in), nil
}

// Close tears down clients, proxy, and broker.
func (r *Rig) Close() {
	if r.sensor != nil {
		r.sensor.Close()
	}
	if r.ctrl != nil {
		r.ctrl.Close()
	}
	if r.proxy != nil {
		r.proxy.Close()
	}
	if r.broker != nil {
		r.broker.Close()
	}
}

// KitchenForgeRewrite returns the MITM rewrite used by the validation demo:
// every load report is replaced by the "everyone cooking in the kitchen"
// story (zones other than the kitchen report empty; the kitchen reports the
// forged wattage).
func KitchenForgeRewrite(kitchenIndexW float64) func(mqtt.Message) mqtt.Message {
	return func(m mqtt.Message) mqtt.Message {
		if m.Topic != "testbed/load" {
			return m
		}
		var rep loadReport
		if err := json.Unmarshal(m.Payload, &rep); err != nil {
			return m
		}
		if rep.Zone == 2 { // kitchen index (ZoneID Kitchen − 1)
			rep.LoadW = kitchenIndexW
		} else {
			rep.LoadW = 0
		}
		forged, err := json.Marshal(rep)
		if err != nil {
			return m
		}
		m.Payload = forged
		return m
	}
}

// zoneTopicIndex parses a zone index out of a topic suffix; kept for
// forward compatibility with per-zone topics.
func zoneTopicIndex(topic string) (int, bool) {
	if len(topic) == 0 {
		return 0, false
	}
	i, err := strconv.Atoi(topic[len(topic)-1:])
	if err != nil || i < 0 || i >= zoneCount {
		return 0, false
	}
	return i, true
}
