// Package testbed simulates the paper's prototype validation testbed
// (Section VI, Figs 8-9): a 1/24-scale model house whose occupants and
// appliances are emulated by 5 W LED bulbs, cooled by 1.4 CFM supply fans,
// sensed by DHT-22-class temperature sensors, and supervised over an
// MQTT-style broker that a man-in-the-middle attacker can rewrite.
//
// The zones are deliberately NOT insulated from each other or the ambient
// lab — the paper observes the resulting dynamics are non-linear and learns
// them with a degree-2 polynomial regression at <2% error; this package
// reproduces both the plant and that identification step.
//
// The rig is built for a scenario house: NewForHouse scales any world from
// the scenario registry down to tabletop size (one testbed zone per
// conditioned zone, thermal mass derived from the zone's full-size volume),
// and New keeps the paper's canonical four-zone build (house A).
package testbed

import (
	"errors"
	"fmt"

	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/rng"
)

// Config parameterises the scaled plant.
type Config struct {
	// Scale is the linear down-scale factor (paper: 24).
	Scale float64
	// AmbientF is the lab temperature around (and supplying) the testbed.
	AmbientF float64
	// SetpointF is the zone target the controller holds.
	SetpointF float64
	// SupplyF is the chilled-plenum temperature the fans draw from — the
	// 1.4 CFM fans alone cannot remove a 5 W bulb's heat at a 3 °F rise,
	// so the testbed (like the full-size AHU) supplies cooled air.
	SupplyF float64
	// FanCFM is each zone's supply fan rating (paper: 1.4 CFM).
	FanCFM float64
	// FanPowerW is the electrical draw of a fan at full duty.
	FanPowerW float64
	// LEDPowerW is one emulation bulb's draw (paper: 5 W).
	LEDPowerW float64
	// SensorNoiseF is the DHT-22-like measurement noise (σ, °F).
	SensorNoiseF float64
	// Seed drives sensor noise.
	Seed uint64
}

// DefaultConfig returns the paper's testbed parameters.
func DefaultConfig() Config {
	return Config{
		Scale:        24,
		AmbientF:     72,
		SetpointF:    75,
		SupplyF:      56,
		FanCFM:       1.4,
		FanPowerW:    2.5,
		LEDPowerW:    5,
		SensorNoiseF: 0.4,
		Seed:         1,
	}
}

// Simulator is the scaled thermal plant. It is not safe for concurrent use.
type Simulator struct {
	cfg   Config
	house *home.House
	// TempF holds the true zone temperatures (conditioned zones only,
	// index = ZoneID − 1).
	TempF []float64
	// heatCapacity is the per-zone lumped capacitance in W·min/°F.
	heatCapacity []float64
	// coupling[i][j] is the inter-zone leak conductance (W/°F); adjacent
	// zones are separated by uninsulated 12-inch walls.
	coupling [][]float64
	// ambientLeak is each zone's conductance to the lab (W/°F).
	ambientLeak []float64
	next        []float64 // Step scratch
	noise       *rng.Source
}

// ErrBadConfig rejects non-physical configurations.
var ErrBadConfig = errors.New("testbed: Scale, FanCFM and LEDPowerW must be positive")

// New builds the paper's canonical testbed — ARAS house A scaled down —
// with all zones at ambient.
func New(cfg Config) (*Simulator, error) {
	return NewForHouse(cfg, home.MustHouse("A"))
}

// NewForHouse builds the scaled plant for any scenario house: one testbed
// zone per conditioned zone, with the lumped capacitance and ambient leak
// derived from the full-size zone volume, and the zones coupled in a linear
// chain of shared uninsulated walls (the Fig 8b layout generalized).
func NewForHouse(cfg Config, house *home.House) (*Simulator, error) {
	if cfg.Scale <= 0 || cfg.FanCFM <= 0 || cfg.LEDPowerW <= 0 {
		return nil, ErrBadConfig
	}
	n := len(house.Zones) - 1 // zone 0 is Outside
	if n < 1 {
		return nil, fmt.Errorf("testbed: house %s has no conditioned zones", house.Name)
	}
	s := &Simulator{
		cfg:          cfg,
		house:        house,
		TempF:        make([]float64, n),
		heatCapacity: make([]float64, n),
		ambientLeak:  make([]float64, n),
		next:         make([]float64, n),
		coupling:     make([][]float64, n),
		noise:        rng.New(cfg.Seed),
	}
	// Scaled volumes from the full-size house divided by Scale³, converted
	// to a capacitance: air ≈ 0.018 W·min/(ft³·°F), plus structure mass.
	for i := 0; i < n; i++ {
		s.TempF[i] = cfg.AmbientF
		vol := house.Zones[i+1].VolumeFt3 / (cfg.Scale * cfg.Scale * cfg.Scale / 24) // keep ~1 ft³ scale zones
		s.heatCapacity[i] = 0.6 + 1.2*vol
		s.ambientLeak[i] = 0.08 + 0.02*vol
		s.coupling[i] = make([]float64, n)
	}
	// Adjacency: consecutive zones share walls in the linear layout
	// (bedroom-livingroom, livingroom-kitchen, kitchen-bathroom in Fig 8b).
	for i := 0; i+1 < n; i++ {
		s.coupling[i][i+1] = 0.05
		s.coupling[i+1][i] = 0.05
	}
	return s, nil
}

// Zones returns the number of conditioned testbed zones.
func (s *Simulator) Zones() int { return len(s.TempF) }

// House returns the full-size house the testbed scales down.
func (s *Simulator) House() *home.House { return s.house }

// Inputs are one minute's actuation and load. Slices shorter than the zone
// count read as zero for the missing zones.
type Inputs struct {
	// LEDWatts is the emulation load per conditioned zone (occupants +
	// appliances rendered as lit bulbs).
	LEDWatts []float64
	// FanDuty is each zone's supply-fan duty in [0, 1].
	FanDuty []float64
}

// NewInputs returns a zeroed per-zone input frame for this plant.
func (s *Simulator) NewInputs() Inputs {
	return Inputs{LEDWatts: make([]float64, s.Zones()), FanDuty: make([]float64, s.Zones())}
}

// at reads xs[i], treating missing entries as zero.
func at(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

// Step advances the plant by one minute and returns the electrical energy
// consumed (Wh) during the step.
func (s *Simulator) Step(in Inputs) float64 {
	const sensible = 0.3167 // W per CFM·°F
	var energyWh float64
	next := s.next
	for i := range s.TempF {
		duty := clamp01(at(in.FanDuty, i))
		heat := at(in.LEDWatts, i) * 0.85 // bulbs radiate most of their draw
		cool := duty * s.cfg.FanCFM * (s.TempF[i] - s.cfg.SupplyF) * sensible
		if cool < 0 {
			cool = 0 // supply air warmer than the zone cannot cool it
		}
		// Non-insulated leakage: mildly non-linear in the temperature
		// difference (natural convection strengthens with ΔT), which is the
		// non-linearity the paper's regression has to learn.
		dAmb := s.cfg.AmbientF - s.TempF[i]
		leak := s.ambientLeak[i] * dAmb * (1 + 0.06*abs(dAmb))
		var inter float64
		for j := range s.TempF {
			inter += s.coupling[i][j] * (s.TempF[j] - s.TempF[i])
		}
		next[i] = s.TempF[i] + (heat-cool+leak+inter)/s.heatCapacity[i]
		// Electrical energy: bulbs, fan motor, and the plenum chiller work
		// to cool the moved air from ambient down to the supply temperature.
		chillW := duty * s.cfg.FanCFM * (s.cfg.AmbientF - s.cfg.SupplyF) * sensible
		if chillW < 0 {
			chillW = 0
		}
		energyWh += (at(in.LEDWatts, i) + duty*s.cfg.FanPowerW + chillW) / 60
	}
	copy(s.TempF, next)
	return energyWh
}

// ReadTempF returns the DHT-22-style noisy measurement for a zone.
func (s *Simulator) ReadTempF(zone home.ZoneID) (float64, error) {
	i, err := s.zoneIndex(zone)
	if err != nil {
		return 0, err
	}
	return s.TempF[i] + s.noise.Norm(0, s.cfg.SensorNoiseF), nil
}

// TrueTempF returns the noiseless zone temperature (for assertions).
func (s *Simulator) TrueTempF(zone home.ZoneID) (float64, error) {
	i, err := s.zoneIndex(zone)
	if err != nil {
		return 0, err
	}
	return s.TempF[i], nil
}

// Reset returns all zones to ambient.
func (s *Simulator) Reset() {
	for i := range s.TempF {
		s.TempF[i] = s.cfg.AmbientF
	}
}

// Config returns the simulator's configuration.
func (s *Simulator) Config() Config { return s.cfg }

func (s *Simulator) zoneIndex(z home.ZoneID) (int, error) {
	if !z.Conditioned() || int(z) > s.Zones() {
		return 0, fmt.Errorf("testbed: zone %v is not a conditioned testbed zone", z)
	}
	return int(z) - 1, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
