package testbed

import (
	"errors"
	"fmt"

	"github.com/acyd-lab/shatter/internal/regress"
	"github.com/acyd-lab/shatter/internal/stats"
)

// DynamicsModel is the identified plant model (Section VI): per zone, a
// degree-2 polynomial mapping a believed heat load to the fan duty that
// holds the setpoint ("estimating the airflow ... given the temperature"),
// and a companion polynomial mapping the fan-off steady temperature rise to
// the heat load that caused it ("heat generation given the temperature").
// The paper reports <2% identification error; Identify reproduces that.
type DynamicsModel struct {
	// DutyForLoad[i] maps heat load (W) → equilibrium fan duty at setpoint.
	DutyForLoad []regress.Poly
	// HeatForRise[i] maps fan-off steady rise (°F) → heat load (W).
	HeatForRise []regress.Poly
	// FitErrorPct is the held-out mean absolute percentage error of the
	// duty model, in percent.
	FitErrorPct float64
}

// ErrIdentification is returned when the calibration data cannot be fitted.
var ErrIdentification = errors.New("testbed: dynamics identification failed")

// Identify runs the calibration procedure on a fresh simulator: for a sweep
// of LED heat loads, (a) bisect the fan duty whose equilibrium holds the
// setpoint and (b) measure the fan-off steady temperature rise; fit
// degree-2 polynomials to both relations. Even-indexed sweep points train,
// odd-indexed points validate.
func Identify(sim *Simulator) (*DynamicsModel, error) {
	m := &DynamicsModel{
		DutyForLoad: make([]regress.Poly, sim.Zones()),
		HeatForRise: make([]regress.Poly, sim.Zones()),
	}
	// The sweep stays within the fans' controllable envelope (a full-duty
	// 1.4 CFM fan on 56 °F supply air removes ≈8.4 W at the setpoint).
	loads := []float64{1, 1.8, 2.6, 3.4, 4.2, 5, 5.8, 6.6, 7.4, 8.2}
	var allErrPct []float64
	for zi := 0; zi < sim.Zones(); zi++ {
		var heats, duties, rises []float64
		for _, load := range loads {
			heats = append(heats, load*0.85)
			duties = append(duties, equilibrate(sim, zi, load))
			rises = append(rises, settle(sim, zi, load, 0)-sim.cfg.AmbientF)
		}
		dutyPoly, err := regress.FitPoly(everyOther(heats, 0), everyOther(duties, 0), 2)
		if err != nil {
			return nil, fmt.Errorf("%w: zone %d duty: %v", ErrIdentification, zi, err)
		}
		heatPoly, err := regress.FitPoly(everyOther(rises, 0), everyOther(heats, 0), 2)
		if err != nil {
			return nil, fmt.Errorf("%w: zone %d heat: %v", ErrIdentification, zi, err)
		}
		m.DutyForLoad[zi] = dutyPoly
		m.HeatForRise[zi] = heatPoly
		testH, testD := everyOther(heats, 1), everyOther(duties, 1)
		pred := make([]float64, len(testH))
		for i, h := range testH {
			pred[i] = dutyPoly.Eval(h)
		}
		if e := stats.MeanAbsPctError(pred, testD); e == e { // skip NaN
			allErrPct = append(allErrPct, e*100)
		}
	}
	m.FitErrorPct = stats.Mean(allErrPct)
	return m, nil
}

// equilibrate bisects the fan duty whose steady state holds the zone at the
// setpoint under the given LED load.
func equilibrate(sim *Simulator, zi int, loadW float64) float64 {
	target := sim.cfg.SetpointF
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 18; iter++ {
		mid := (lo + hi) / 2
		if settle(sim, zi, loadW, mid) > target {
			lo = mid // too hot: more fan
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// settle runs the plant with constant inputs until the zone temperature
// stabilises and returns the steady temperature.
func settle(sim *Simulator, zi int, loadW, duty float64) float64 {
	sim.Reset()
	in := sim.NewInputs()
	in.LEDWatts[zi] = loadW
	in.FanDuty[zi] = duty
	prev := sim.TempF[zi]
	for step := 0; step < 800; step++ {
		sim.Step(in)
		if step > 30 && abs(sim.TempF[zi]-prev) < 1e-6 {
			break
		}
		prev = sim.TempF[zi]
	}
	return sim.TempF[zi]
}

func everyOther(xs []float64, offset int) []float64 {
	var out []float64
	for i := offset; i < len(xs); i += 2 {
		out = append(out, xs[i])
	}
	return out
}
