package testbed

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/home"
)

// MinuteLoad is one minute of testbed ground truth: the LED wattage lit in
// each conditioned zone (occupant emulation plus appliance emulation).
type MinuteLoad struct {
	// OccupantW[i] is the occupant-emulation LED load per zone.
	OccupantW []float64
	// ApplianceW[i] is the appliance-emulation LED load per zone.
	ApplianceW []float64
}

// newMinuteLoad allocates a zeroed load frame for n zones.
func newMinuteLoad(n int) MinuteLoad {
	return MinuteLoad{OccupantW: make([]float64, n), ApplianceW: make([]float64, n)}
}

// Scenario is a minutes-long testbed run: the actual loads and, under
// attack, the loads the controller is told about plus the appliance LEDs
// the attacker really triggers.
type Scenario struct {
	// Actual is the ground-truth load per minute.
	Actual []MinuteLoad
	// Reported, when non-nil, is what the MITM attacker makes the
	// controller believe (same length as Actual).
	Reported []MinuteLoad
	// TriggeredW, when non-nil, adds really-on attacker-triggered appliance
	// LEDs per minute per zone (they draw power and heat the zone).
	TriggeredW [][]float64
}

// DemoScenario builds the paper's demonstration hour for any scenario
// house, placed by zone kind: the first occupant showers in their
// bathroom-kind zone then relaxes in their living-kind zone with the TV
// bulb on, while every other occupant naps in their bedroom-kind zone.
// Under attack, the controller is told every occupant is cooking in their
// kitchen-kind zone and those kitchens' appliance bulbs are really
// triggered. For house A this reproduces Fig 8's hour exactly.
func DemoScenario(cfg Config, house *home.House, attacked bool) Scenario {
	const minutes = 60
	n := len(house.Zones) - 1
	led := cfg.LEDPowerW
	zi := func(z home.ZoneID) int { return int(z) - 1 }
	sc := Scenario{Actual: make([]MinuteLoad, minutes)}
	for t := 0; t < minutes; t++ {
		m := newMinuteLoad(n)
		for o := range house.Occupants {
			switch {
			case o == 0 && t < 25:
				// The first occupant showers (bathroom bulb + small appliance
				// bulb for the bathtub heater).
				bath := zi(house.ZoneForActivity(o, home.HavingShower))
				m.OccupantW[bath] += led
				m.ApplianceW[bath] += led * 0.5
			case o == 0:
				// ... then moves to the living room with the TV bulb on.
				living := zi(house.ZoneForActivity(o, home.WatchingTV))
				m.OccupantW[living] += led
				m.ApplianceW[living] += led * 0.4
			default:
				// Everyone else naps in their bedroom all hour (1 bulb each).
				m.OccupantW[zi(house.ZoneForActivity(o, home.Napping))] += led
			}
		}
		sc.Actual[t] = m
	}
	if !attacked {
		return sc
	}
	sc.Reported = make([]MinuteLoad, minutes)
	sc.TriggeredW = make([][]float64, minutes)
	for t := 0; t < minutes; t++ {
		rep := newMinuteLoad(n)
		trig := make([]float64, n)
		for o := range house.Occupants {
			// The forged story: every occupant cooking in their kitchen with
			// the oven, microwave, and kettle bulbs on; those bulbs are
			// REALLY triggered (inaudible voice commands), so they draw
			// power and heat the kitchen.
			kitchen := zi(house.ZoneForActivity(o, home.PreparingDinner))
			rep.OccupantW[kitchen] += led
			if rep.ApplianceW[kitchen] == 0 {
				rep.ApplianceW[kitchen] = 3 * led
				trig[kitchen] = 3 * led
			}
		}
		sc.Reported[t] = rep
		sc.TriggeredW[t] = trig
	}
	return sc
}

// Fig8Scenario reproduces the paper's demonstration hour on the canonical
// house: Alice showers in the bathroom then relaxes in the living room
// while Bob naps in the bedroom; under attack, the controller is told both
// are cooking in the kitchen and the kitchen appliance bulbs are really
// triggered.
func Fig8Scenario(cfg Config, attacked bool) Scenario {
	return DemoScenario(cfg, home.MustHouse("A"), attacked)
}

// RunResult summarises a testbed run.
type RunResult struct {
	// EnergyWh is the total electrical energy over the run.
	EnergyWh float64
	// MaxRiseF is the worst occupied-zone excursion above the setpoint —
	// the comfort violation the attack induces (Fig 8's overheated
	// occupied zones).
	MaxRiseF float64
	// Minutes is the run length.
	Minutes int
}

// ErrBadScenario rejects inconsistent scenarios.
var ErrBadScenario = errors.New("testbed: scenario length mismatch")

// Run executes the scenario: each minute the controller reads believed
// loads (actual, or forged under attack), sets fan duties from the
// identified dynamics model, and the plant steps with the real loads.
func Run(sim *Simulator, model *DynamicsModel, sc Scenario) (RunResult, error) {
	if sc.Reported != nil && len(sc.Reported) != len(sc.Actual) {
		return RunResult{}, ErrBadScenario
	}
	if sc.TriggeredW != nil && len(sc.TriggeredW) != len(sc.Actual) {
		return RunResult{}, ErrBadScenario
	}
	sim.Reset()
	res := RunResult{Minutes: len(sc.Actual)}
	in := sim.NewInputs()
	for t := range sc.Actual {
		believed := sc.Actual[t]
		if sc.Reported != nil {
			believed = sc.Reported[t]
		}
		for i := range in.LEDWatts {
			in.LEDWatts[i] = at(sc.Actual[t].OccupantW, i) + at(sc.Actual[t].ApplianceW, i)
			if sc.TriggeredW != nil {
				in.LEDWatts[i] += at(sc.TriggeredW[t], i)
			}
		}
		for i := range in.FanDuty {
			// Triggered appliances report "on", so the controller also sees
			// their load.
			belW := at(believed.OccupantW, i) + at(believed.ApplianceW, i)
			if sc.TriggeredW != nil {
				belW += at(sc.TriggeredW[t], i)
			}
			if belW <= 0 {
				in.FanDuty[i] = 0 // demand control: no believed load, no air
				continue
			}
			in.FanDuty[i] = clamp01(model.DutyForLoad[i].Eval(belW * 0.85))
		}
		res.EnergyWh += sim.Step(in)
		// Comfort tracking: occupied zones only.
		for i := range in.LEDWatts {
			if at(sc.Actual[t].OccupantW, i) > 0 {
				if rise := sim.TempF[i] - sim.cfg.SetpointF; rise > res.MaxRiseF {
					res.MaxRiseF = rise
				}
			}
		}
	}
	return res, nil
}

// ValidationResult is the Section VI headline: benign vs attacked energy.
type ValidationResult struct {
	Benign   RunResult
	Attacked RunResult
	// IncreasePct is the attacked-over-benign energy increase in percent
	// (the paper reports 78%).
	IncreasePct float64
	// FitErrorPct is the dynamics identification error (paper: <2%).
	FitErrorPct float64
}

// Validate runs the full Section VI experiment on the canonical house:
// identify the dynamics, run the demonstration hour benign and attacked,
// and report the energy increase.
func Validate(cfg Config) (ValidationResult, error) {
	return ValidateHouse(cfg, home.MustHouse("A"))
}

// ValidateHouse runs the Section VI experiment against any scenario
// house's scaled-down rig — the registry-driven form of Validate.
func ValidateHouse(cfg Config, house *home.House) (ValidationResult, error) {
	sim, err := NewForHouse(cfg, house)
	if err != nil {
		return ValidationResult{}, err
	}
	model, err := Identify(sim)
	if err != nil {
		return ValidationResult{}, err
	}
	benign, err := Run(sim, model, DemoScenario(cfg, house, false))
	if err != nil {
		return ValidationResult{}, err
	}
	attacked, err := Run(sim, model, DemoScenario(cfg, house, true))
	if err != nil {
		return ValidationResult{}, err
	}
	res := ValidationResult{
		Benign:      benign,
		Attacked:    attacked,
		FitErrorPct: model.FitErrorPct,
	}
	if benign.EnergyWh > 0 {
		res.IncreasePct = (attacked.EnergyWh/benign.EnergyWh - 1) * 100
	}
	return res, nil
}
