package testbed

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/home"
)

// MinuteLoad is one minute of testbed ground truth: the LED wattage lit in
// each conditioned zone (occupant emulation plus appliance emulation).
type MinuteLoad struct {
	// OccupantW[i] is the occupant-emulation LED load per zone.
	OccupantW [zoneCount]float64
	// ApplianceW[i] is the appliance-emulation LED load per zone.
	ApplianceW [zoneCount]float64
}

// totalW returns the electrically real LED load per zone.
func (m MinuteLoad) totalW() [zoneCount]float64 {
	var out [zoneCount]float64
	for i := range out {
		out[i] = m.OccupantW[i] + m.ApplianceW[i]
	}
	return out
}

// Scenario is a minutes-long testbed run: the actual loads and, under
// attack, the loads the controller is told about plus the appliance LEDs
// the attacker really triggers.
type Scenario struct {
	// Actual is the ground-truth load per minute.
	Actual []MinuteLoad
	// Reported, when non-nil, is what the MITM attacker makes the
	// controller believe (same length as Actual).
	Reported []MinuteLoad
	// TriggeredW, when non-nil, adds really-on attacker-triggered appliance
	// LEDs per minute per zone (they draw power and heat the zone).
	TriggeredW [][zoneCount]float64
}

// Fig8Scenario reproduces the paper's demonstration hour: Alice showers in
// the bathroom then relaxes in the living room while Bob naps in the
// bedroom; under attack, the controller is told both are cooking in the
// kitchen and the kitchen appliance bulbs are really triggered.
func Fig8Scenario(cfg Config, attacked bool) Scenario {
	const minutes = 60
	led := cfg.LEDPowerW
	sc := Scenario{Actual: make([]MinuteLoad, minutes)}
	for t := 0; t < minutes; t++ {
		var m MinuteLoad
		// Bob naps in the bedroom all hour (1 bulb).
		m.OccupantW[int(home.Bedroom)-1] = led
		if t < 25 {
			// Alice showers (bathroom, bulb + small appliance bulb for the
			// bathtub heater).
			m.OccupantW[int(home.Bathroom)-1] = led
			m.ApplianceW[int(home.Bathroom)-1] = led * 0.5
		} else {
			// Alice moves to the living room with the TV bulb on.
			m.OccupantW[int(home.Livingroom)-1] = led
			m.ApplianceW[int(home.Livingroom)-1] = led * 0.4
		}
		sc.Actual[t] = m
	}
	if !attacked {
		return sc
	}
	sc.Reported = make([]MinuteLoad, minutes)
	sc.TriggeredW = make([][zoneCount]float64, minutes)
	for t := 0; t < minutes; t++ {
		var rep MinuteLoad
		// The forged story: both occupants cooking in the kitchen with the
		// oven, microwave, and kettle bulbs on.
		rep.OccupantW[int(home.Kitchen)-1] = 2 * led
		rep.ApplianceW[int(home.Kitchen)-1] = 3 * led
		sc.Reported[t] = rep
		// The kitchen appliance bulbs are REALLY triggered (inaudible voice
		// commands): they draw power and heat the kitchen.
		sc.TriggeredW[t][int(home.Kitchen)-1] = 3 * led
	}
	return sc
}

// RunResult summarises a testbed run.
type RunResult struct {
	// EnergyWh is the total electrical energy over the run.
	EnergyWh float64
	// MaxRiseF is the worst occupied-zone excursion above the setpoint —
	// the comfort violation the attack induces (Fig 8's overheated
	// occupied zones).
	MaxRiseF float64
	// Minutes is the run length.
	Minutes int
}

// ErrBadScenario rejects inconsistent scenarios.
var ErrBadScenario = errors.New("testbed: scenario length mismatch")

// Run executes the scenario: each minute the controller reads believed
// loads (actual, or forged under attack), sets fan duties from the
// identified dynamics model, and the plant steps with the real loads.
func Run(sim *Simulator, model *DynamicsModel, sc Scenario) (RunResult, error) {
	if sc.Reported != nil && len(sc.Reported) != len(sc.Actual) {
		return RunResult{}, ErrBadScenario
	}
	if sc.TriggeredW != nil && len(sc.TriggeredW) != len(sc.Actual) {
		return RunResult{}, ErrBadScenario
	}
	sim.Reset()
	res := RunResult{Minutes: len(sc.Actual)}
	for t := range sc.Actual {
		believed := sc.Actual[t]
		if sc.Reported != nil {
			believed = sc.Reported[t]
		}
		var in Inputs
		in.LEDWatts = sc.Actual[t].totalW()
		if sc.TriggeredW != nil {
			for i := range in.LEDWatts {
				in.LEDWatts[i] += sc.TriggeredW[t][i]
			}
		}
		belW := believed.totalW()
		if sc.TriggeredW != nil {
			// Triggered appliances report "on", so the controller also sees
			// their load.
			for i := range belW {
				belW[i] += sc.TriggeredW[t][i]
			}
		}
		for i := range belW {
			if belW[i] <= 0 {
				in.FanDuty[i] = 0 // demand control: no believed load, no air
				continue
			}
			in.FanDuty[i] = clamp01(model.DutyForLoad[i].Eval(belW[i] * 0.85))
		}
		res.EnergyWh += sim.Step(in)
		// Comfort tracking: occupied zones only.
		for i := range in.LEDWatts {
			if sc.Actual[t].OccupantW[i] > 0 {
				if rise := sim.TempF[i] - sim.cfg.SetpointF; rise > res.MaxRiseF {
					res.MaxRiseF = rise
				}
			}
		}
	}
	return res, nil
}

// ValidationResult is the Section VI headline: benign vs attacked energy.
type ValidationResult struct {
	Benign   RunResult
	Attacked RunResult
	// IncreasePct is the attacked-over-benign energy increase in percent
	// (the paper reports 78%).
	IncreasePct float64
	// FitErrorPct is the dynamics identification error (paper: <2%).
	FitErrorPct float64
}

// Validate runs the full Section VI experiment: identify the dynamics, run
// the demonstration hour benign and attacked, and report the energy
// increase.
func Validate(cfg Config) (ValidationResult, error) {
	sim, err := New(cfg)
	if err != nil {
		return ValidationResult{}, err
	}
	model, err := Identify(sim)
	if err != nil {
		return ValidationResult{}, err
	}
	benign, err := Run(sim, model, Fig8Scenario(cfg, false))
	if err != nil {
		return ValidationResult{}, err
	}
	attacked, err := Run(sim, model, Fig8Scenario(cfg, true))
	if err != nil {
		return ValidationResult{}, err
	}
	res := ValidationResult{
		Benign:      benign,
		Attacked:    attacked,
		FitErrorPct: model.FitErrorPct,
	}
	if benign.EnergyWh > 0 {
		res.IncreasePct = (attacked.EnergyWh/benign.EnergyWh - 1) * 100
	}
	return res, nil
}
