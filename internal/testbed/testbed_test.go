package testbed

import (
	"math"
	"testing"

	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/scenario"
)

func newSim(t *testing.T) *Simulator {
	t.Helper()
	sim, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero scale should error")
	}
}

func TestPlantHeatsUnderLoad(t *testing.T) {
	sim := newSim(t)
	in := sim.NewInputs()
	in.LEDWatts[0] = 10 // bedroom bulbs
	for i := 0; i < 200; i++ {
		sim.Step(in)
	}
	if sim.TempF[0] <= sim.cfg.AmbientF+1 {
		t.Errorf("loaded zone stayed at %v, ambient %v", sim.TempF[0], sim.cfg.AmbientF)
	}
}

func TestPlantCoolsWithFan(t *testing.T) {
	sim := newSim(t)
	in := sim.NewInputs()
	in.LEDWatts[2] = 10
	for i := 0; i < 300; i++ {
		sim.Step(in)
	}
	hot := sim.TempF[2]
	in.FanDuty[2] = 1
	for i := 0; i < 300; i++ {
		sim.Step(in)
	}
	if sim.TempF[2] >= hot {
		t.Errorf("full fan did not cool: %v -> %v", hot, sim.TempF[2])
	}
	// The fan cannot push the zone below ambient.
	if sim.TempF[2] < sim.cfg.AmbientF-0.5 {
		t.Errorf("zone cooled below ambient: %v", sim.TempF[2])
	}
}

func TestUninsulatedZonesLeakHeat(t *testing.T) {
	sim := newSim(t)
	in := sim.NewInputs()
	in.LEDWatts[1] = 15 // heat only the living room
	for i := 0; i < 400; i++ {
		sim.Step(in)
	}
	// Adjacent zones (bedroom index 0, kitchen index 2) warm up through
	// the shared uninsulated walls.
	if sim.TempF[0] <= sim.cfg.AmbientF+0.2 || sim.TempF[2] <= sim.cfg.AmbientF+0.2 {
		t.Errorf("no inter-zone leakage: %v", sim.TempF)
	}
}

func TestSensorNoiseBounded(t *testing.T) {
	sim := newSim(t)
	var worst float64
	for i := 0; i < 500; i++ {
		r, err := sim.ReadTempF(home.Bedroom)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(r - sim.TempF[0]); d > worst {
			worst = d
		}
	}
	if worst == 0 {
		t.Error("sensor reads are noiseless")
	}
	if worst > 3 {
		t.Errorf("sensor noise implausibly large: %v", worst)
	}
	if _, err := sim.ReadTempF(home.Outside); err == nil {
		t.Error("outside has no sensor")
	}
}

func TestIdentifyUnderTwoPercent(t *testing.T) {
	sim := newSim(t)
	model, err := Identify(sim)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's identification achieved <2% error on testbed
	// measurements; the simulated plant must be at least as identifiable.
	if model.FitErrorPct >= 2 {
		t.Errorf("identification error %.2f%%, want < 2%%", model.FitErrorPct)
	}
	// Duty must be monotone in load over the calibrated range.
	for zi := 0; zi < sim.Zones(); zi++ {
		prev := -1.0
		for load := 2.0; load <= 18; load += 2 {
			d := model.DutyForLoad[zi].Eval(load * 0.85)
			if d < prev-0.02 {
				t.Errorf("zone %d: duty not monotone at load %v", zi, load)
			}
			prev = d
		}
	}
}

func TestHeatForRiseEstimator(t *testing.T) {
	sim := newSim(t)
	model, err := Identify(sim)
	if err != nil {
		t.Fatal(err)
	}
	// The fan-off steady rise for a known load should invert back to
	// roughly that load.
	for _, load := range []float64{4, 9, 14} {
		rise := settle(sim, 1, load, 0) - sim.cfg.AmbientF
		est := model.HeatForRise[1].Eval(rise)
		if math.Abs(est-load*0.85) > 0.15*load*0.85+0.3 {
			t.Errorf("load %v: estimated heat %v, want ≈%v", load, est, load*0.85)
		}
	}
}

func TestValidateReproducesAttackIncrease(t *testing.T) {
	res, err := Validate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FitErrorPct >= 2 {
		t.Errorf("fit error %.2f%%, want < 2%%", res.FitErrorPct)
	}
	// The paper measured a 78% energy increase; the simulated substitute
	// must land in the same regime (a large double-digit increase).
	if res.IncreasePct < 40 {
		t.Errorf("attack increased energy only %.1f%%, want a large increase", res.IncreasePct)
	}
	if res.IncreasePct > 160 {
		t.Errorf("attack increase %.1f%% implausibly large", res.IncreasePct)
	}
	// The attacked run must also violate comfort in occupied zones (the
	// misdirected cooling lets occupied zones overheat).
	if res.Attacked.MaxRiseF <= res.Benign.MaxRiseF {
		t.Errorf("attack should worsen comfort: %.2f vs %.2f", res.Attacked.MaxRiseF, res.Benign.MaxRiseF)
	}
}

func TestRunScenarioLengthMismatch(t *testing.T) {
	sim := newSim(t)
	model, err := Identify(sim)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Actual:   make([]MinuteLoad, 5),
		Reported: make([]MinuteLoad, 3),
	}
	if _, err := Run(sim, model, sc); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestRigEndToEndBenign(t *testing.T) {
	sim := newSim(t)
	model, err := Identify(sim)
	if err != nil {
		t.Fatal(err)
	}
	rig, err := NewRig(sim, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	sim.Reset()
	loads := []float64{5, 0, 0, 5}
	var total float64
	for i := 0; i < 10; i++ {
		wh, err := rig.Tick(loads, loads)
		if err != nil {
			t.Fatal(err)
		}
		total += wh
	}
	if total <= 0 {
		t.Error("rig consumed no energy")
	}
}

func TestRigMITMForgesKitchen(t *testing.T) {
	sim := newSim(t)
	model, err := Identify(sim)
	if err != nil {
		t.Fatal(err)
	}
	// Benign rig first.
	benignRig, err := NewRig(sim, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	actual := []float64{5, 5, 0, 0} // bedroom + living room
	sim.Reset()
	var benignWh float64
	for i := 0; i < 15; i++ {
		wh, err := benignRig.Tick(actual, actual)
		if err != nil {
			t.Fatal(err)
		}
		benignWh += wh
	}
	benignRig.Close()

	// Attacked rig: MITM rewrites every load report into the kitchen story.
	attackRig, err := NewRig(sim, model, KitchenForgeRewrite(15))
	if err != nil {
		t.Fatal(err)
	}
	defer attackRig.Close()
	sim.Reset()
	var attackedWh float64
	for i := 0; i < 15; i++ {
		// The sensor node publishes the truth; the proxy forges it.
		wh, err := attackRig.Tick(actual, actual)
		if err != nil {
			t.Fatal(err)
		}
		attackedWh += wh
	}
	if attackedWh <= benignWh {
		t.Errorf("MITM attack should waste energy: %.3f vs %.3f Wh", attackedWh, benignWh)
	}
}

func TestZoneTopicIndex(t *testing.T) {
	if _, ok := zoneTopicIndex("", 4); ok {
		t.Error("empty topic should fail")
	}
	if i, ok := zoneTopicIndex("testbed/load/2", 4); !ok || i != 2 {
		t.Errorf("parse = %d,%v", i, ok)
	}
	if _, ok := zoneTopicIndex("testbed/load/x", 4); ok {
		t.Error("non-numeric suffix should fail")
	}
	if _, ok := zoneTopicIndex("testbed/load/2", 2); ok {
		t.Error("index beyond the zone count should fail")
	}
}

func TestNewForHouseMatchesCanonical(t *testing.T) {
	// The canonical build IS the house-A build: same zone count, same
	// derived thermal plant, so New and NewForHouse(A) behave identically.
	a, err := NewForHouse(DefaultConfig(), home.MustHouse("A"))
	if err != nil {
		t.Fatal(err)
	}
	b := newSim(t)
	if a.Zones() != b.Zones() {
		t.Fatalf("zone counts differ: %d vs %d", a.Zones(), b.Zones())
	}
	in := a.NewInputs()
	in.LEDWatts[1] = 8
	in.FanDuty[1] = 0.5
	for i := 0; i < 50; i++ {
		if wa, wb := a.Step(in), b.Step(in); wa != wb {
			t.Fatalf("step %d: energy diverges %v vs %v", i, wa, wb)
		}
	}
	for i := range a.TempF {
		if a.TempF[i] != b.TempF[i] {
			t.Fatalf("zone %d temperature diverges: %v vs %v", i, a.TempF[i], b.TempF[i])
		}
	}
}

func TestValidateHouseOnScenarioWorld(t *testing.T) {
	// The Section VI experiment must run against a non-canonical world: a
	// bigger procedural house scales down to more testbed zones, identifies
	// cleanly, and still shows the attack's energy penalty.
	house, err := scenario.Synth(7, 3, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewForHouse(DefaultConfig(), house)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Zones() != 7 {
		t.Fatalf("synth world scaled to %d testbed zones, want 7", sim.Zones())
	}
	res, err := ValidateHouse(DefaultConfig(), house)
	if err != nil {
		t.Fatal(err)
	}
	if res.FitErrorPct >= 2 {
		t.Errorf("fit error %.2f%%, want < 2%%", res.FitErrorPct)
	}
	if res.IncreasePct <= 0 {
		t.Errorf("attack decreased energy: %.1f%%", res.IncreasePct)
	}
}
