package geometry

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/acyd-lab/shatter/internal/rng"
)

func TestConvexHullEmpty(t *testing.T) {
	if _, err := ConvexHull(nil); err == nil {
		t.Fatal("expected error for empty point set")
	}
}

func TestConvexHullSinglePoint(t *testing.T) {
	h, err := ConvexHull([]Point{{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vertices) != 1 {
		t.Fatalf("got %d vertices, want 1", len(h.Vertices))
	}
	if !h.Contains(Point{3, 4}) {
		t.Error("degenerate hull must contain its point")
	}
	if h.Contains(Point{3, 5}) {
		t.Error("degenerate hull must not contain other points")
	}
	if h.Area() != 0 {
		t.Errorf("point hull area = %v, want 0", h.Area())
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	h, err := ConvexHull(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vertices) != 2 {
		t.Fatalf("collinear hull has %d vertices, want 2", len(h.Vertices))
	}
	if !h.Contains(Point{1.5, 1.5}) {
		t.Error("collinear hull should contain interior point of the segment")
	}
	if h.Contains(Point{1.5, 1.6}) {
		t.Error("collinear hull should not contain off-segment point")
	}
	if h.Area() != 0 {
		t.Errorf("segment hull area = %v, want 0", h.Area())
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.5, 0.5}}
	h, err := ConvexHull(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vertices) != 4 {
		t.Fatalf("square hull has %d vertices, want 4", len(h.Vertices))
	}
	if got := h.Area(); math.Abs(got-4) > 1e-12 {
		t.Errorf("area = %v, want 4", got)
	}
	if got := h.Perimeter(); math.Abs(got-8) > 1e-12 {
		t.Errorf("perimeter = %v, want 8", got)
	}
	for _, p := range pts {
		if !h.Contains(p) {
			t.Errorf("hull should contain input point %v", p)
		}
	}
	outside := []Point{{-0.1, 1}, {2.1, 1}, {1, -0.1}, {1, 2.1}, {3, 3}}
	for _, p := range outside {
		if h.Contains(p) {
			t.Errorf("hull should not contain %v", p)
		}
	}
}

func TestConvexHullCCWOrientation(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 3}, {0, 3}, {2, 1}}
	h, err := ConvexHull(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Every consecutive triple must turn left (CCW).
	n := len(h.Vertices)
	for i := 0; i < n; i++ {
		a, b, c := h.Vertices[i], h.Vertices[(i+1)%n], h.Vertices[(i+2)%n]
		if Cross(a, b, c) <= 0 {
			t.Fatalf("vertices not CCW at %d: %v %v %v", i, a, b, c)
		}
	}
}

func TestContainsDuplicatePoints(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}, {2, 2}, {2, 2}}
	h, err := ConvexHull(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Vertices) != 2 {
		t.Fatalf("got %d vertices, want 2 after dedup", len(h.Vertices))
	}
}

func TestYRangeAtX(t *testing.T) {
	// Triangle with apex at (1,2), base from (0,0) to (2,0).
	h, err := ConvexHull([]Point{{0, 0}, {2, 0}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := h.YRangeAtX(1)
	if !ok {
		t.Fatal("expected intersection at x=1")
	}
	if math.Abs(lo-0) > 1e-9 || math.Abs(hi-2) > 1e-9 {
		t.Errorf("y-range at x=1 = [%v,%v], want [0,2]", lo, hi)
	}
	lo, hi, ok = h.YRangeAtX(0.5)
	if !ok {
		t.Fatal("expected intersection at x=0.5")
	}
	if math.Abs(lo-0) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Errorf("y-range at x=0.5 = [%v,%v], want [0,1]", lo, hi)
	}
	if _, _, ok := h.YRangeAtX(5); ok {
		t.Error("x=5 should not intersect the hull")
	}
}

func TestYRangeAtXVerticalEdge(t *testing.T) {
	h, err := ConvexHull([]Point{{0, 0}, {0, 3}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := h.YRangeAtX(0)
	if !ok || math.Abs(lo) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Errorf("vertical edge y-range = [%v,%v] ok=%v, want [0,3] true", lo, hi, ok)
	}
}

func TestSegmentPredicates(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 0}}
	if !s.LeftOfLineSegment(Point{0.5, 1}) {
		t.Error("point above rightward segment should be left")
	}
	if s.LeftOfLineSegment(Point{0.5, -1}) {
		t.Error("point below rightward segment should not be left")
	}
	if !s.LeftOrOn(Point{0.5, 0}) {
		t.Error("point on the segment line should satisfy LeftOrOn")
	}
}

func TestBoundingBoxAndCentroid(t *testing.T) {
	h, err := ConvexHull([]Point{{0, 0}, {4, 0}, {4, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	minX, minY, maxX, maxY := h.BoundingBox()
	if minX != 0 || minY != 0 || maxX != 4 || maxY != 2 {
		t.Errorf("bbox = (%v,%v,%v,%v), want (0,0,4,2)", minX, minY, maxX, maxY)
	}
	c := h.Centroid()
	if math.Abs(c.X-2) > 1e-9 || math.Abs(c.Y-1) > 1e-9 {
		t.Errorf("centroid = %v, want (2,1)", c)
	}
}

// Property: a hull contains all of its input points.
func TestPropertyHullContainsInputs(t *testing.T) {
	src := rng.New(42)
	f := func(seed uint64) bool {
		r := rng.New(seed ^ src.Uint64())
		n := 3 + r.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Range(0, 1440), r.Range(0, 480)}
		}
		h, err := ConvexHull(pts)
		if err != nil {
			return false
		}
		for _, p := range pts {
			if !h.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: hull is invariant under permutation of the input order.
func TestPropertyHullOrderInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Range(-100, 100), r.Range(-100, 100)}
		}
		h1, err := ConvexHull(pts)
		if err != nil {
			return false
		}
		shuffled := make([]Point, n)
		copy(shuffled, pts)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		h2, err := ConvexHull(shuffled)
		if err != nil {
			return false
		}
		if len(h1.Vertices) != len(h2.Vertices) {
			return false
		}
		return math.Abs(h1.Area()-h2.Area()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the centroid of the hull vertices is contained in the hull
// (convexity), for non-degenerate hulls.
func TestPropertyCentroidInside(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Range(0, 50), r.Range(0, 50)}
		}
		h, err := ConvexHull(pts)
		if err != nil || len(h.Vertices) < 3 {
			return true // degenerate, skip
		}
		return h.Contains(h.Centroid())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: YRangeAtX is consistent with Contains — midpoints of the
// reported interval are inside; points just outside the interval are not.
func TestPropertyYRangeConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.Range(0, 100), r.Range(0, 100)}
		}
		h, err := ConvexHull(pts)
		if err != nil || len(h.Vertices) < 3 {
			return true
		}
		minX, _, maxX, _ := h.BoundingBox()
		x := r.Range(minX, maxX)
		lo, hi, ok := h.YRangeAtX(x)
		if !ok {
			return true
		}
		mid := (lo + hi) / 2
		if !h.Contains(Point{x, mid}) {
			return false
		}
		if hi-lo > 1 {
			if h.Contains(Point{x, hi + 1}) || h.Contains(Point{x, lo - 1}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistToSegment(t *testing.T) {
	tests := []struct {
		p, a, b Point
		want    float64
	}{
		{Point{0, 1}, Point{0, 0}, Point{2, 0}, 1},
		{Point{3, 0}, Point{0, 0}, Point{2, 0}, 1},
		{Point{-1, 0}, Point{0, 0}, Point{2, 0}, 1},
		{Point{1, 0}, Point{1, 0}, Point{1, 0}, 0}, // degenerate segment
	}
	for i, tc := range tests {
		if got := distToSegment(tc.p, tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: distToSegment = %v, want %v", i, got, tc.want)
		}
	}
}

func TestScanYRangesMatchesYRangeAtX(t *testing.T) {
	hulls := []Hull{
		mustHull(t, []Point{{100, 10}, {300, 10}, {300, 80}, {100, 40}}), // quad
		mustHull(t, []Point{{50, 5}, {50, 25}}),                          // vertical segment
		mustHull(t, []Point{{10, 3}, {40, 9}}),                           // sloped segment
		mustHull(t, []Point{{7, 12}}),                                    // point
		mustHull(t, []Point{{200, 30}, {210, 30}, {205, 60}}),            // triangle
	}
	const loX, hiX = 0, 400
	for hi, h := range hulls {
		got := map[int][2]float64{}
		h.ScanYRangesAtIntegerX(loX, hiX, func(x int, lo, hiY float64) {
			got[x] = [2]float64{lo, hiY}
		})
		for x := loX; x <= hiX; x++ {
			lo, hiY, ok := h.YRangeAtX(float64(x))
			iv, scanned := got[x]
			if ok != scanned {
				t.Fatalf("hull %d x=%d: YRangeAtX ok=%v but scan emitted=%v", hi, x, ok, scanned)
			}
			if !ok {
				continue
			}
			if math.Abs(iv[0]-lo) > 1e-12 || math.Abs(iv[1]-hiY) > 1e-12 {
				t.Fatalf("hull %d x=%d: scan [%v,%v] != YRangeAtX [%v,%v]", hi, x, iv[0], iv[1], lo, hiY)
			}
		}
	}
}

func mustHull(t *testing.T, pts []Point) Hull {
	t.Helper()
	h, err := ConvexHull(pts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
