// Package geometry implements the 2-D computational geometry the SHATTER
// framework uses to linearise clustering-based anomaly detection models:
// convex hulls (QuickHull, Barber et al. — paper reference [17]), the
// LeftOfLineSegment predicate of Eq 10, point-in-hull membership of Eq 9,
// and hull measures used by the Fig 6 cluster-geometry comparison.
package geometry

import (
	"fmt"
	"math"
	"sort"
)

// Point is a point in the (arrival-time, stay-duration) plane — or any other
// 2-D feature plane.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Sub returns p − q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Cross returns the z component of the cross product (q−p) × (r−p).
// Positive means r is to the left of the directed line p→q.
func Cross(p, q, r Point) float64 {
	return (q.X-p.X)*(r.Y-p.Y) - (q.Y-p.Y)*(r.X-p.X)
}

// Segment is a directed line segment. In a counter-clockwise hull boundary,
// interior points lie strictly to the left of every directed edge.
type Segment struct {
	A Point `json:"a"`
	B Point `json:"b"`
}

// LeftOfLineSegment reports whether p lies strictly to the left of the
// directed segment (Eq 10 in the paper uses the symmetric "< 0" form for
// clockwise edges; we orient hulls counter-clockwise so "left" is interior).
// Points exactly on the line are not "left"; use LeftOrOn for closed tests.
func (s Segment) LeftOfLineSegment(p Point) bool {
	return Cross(s.A, s.B, p) > 0
}

// LeftOrOn reports whether p lies to the left of or exactly on the directed
// line through the segment. Closed hull membership uses this predicate so
// boundary points (e.g. the training points that define the hull) count as
// inside.
func (s Segment) LeftOrOn(p Point) bool {
	return Cross(s.A, s.B, p) >= -1e-9
}

// Len returns the segment's Euclidean length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Hull is a convex hull with vertices in counter-clockwise order.
// A hull may be degenerate: a single point or a collinear segment.
type Hull struct {
	Vertices []Point `json:"vertices"`
}

// ErrTooFewPoints is returned by ConvexHull when given no points.
var ErrTooFewPoints = fmt.Errorf("geometry: convex hull of empty point set")

// ConvexHull computes the convex hull of pts using the monotone-chain
// variant of QuickHull-style divide and conquer. It runs in O(n log n),
// handles duplicate and collinear input, and returns vertices in
// counter-clockwise order. Degenerate inputs (1 point, collinear points)
// yield degenerate hulls that still support membership tests.
func ConvexHull(pts []Point) (Hull, error) {
	if len(pts) == 0 {
		return Hull{}, ErrTooFewPoints
	}
	// Copy and sort lexicographically.
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		last := uniq[len(uniq)-1]
		if p != last {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) == 1 {
		return Hull{Vertices: []Point{ps[0]}}, nil
	}
	// Monotone chain: lower then upper hull.
	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && Cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && Cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	// Concatenate, dropping the duplicated endpoints.
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return Hull{Vertices: hull}, nil
}

// Edges returns the directed boundary edges of the hull in CCW order.
// Degenerate hulls return zero (point) or one (segment) edge.
func (h Hull) Edges() []Segment {
	n := len(h.Vertices)
	switch n {
	case 0, 1:
		return nil
	case 2:
		return []Segment{{h.Vertices[0], h.Vertices[1]}}
	}
	edges := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Segment{h.Vertices[i], h.Vertices[(i+1)%n]})
	}
	return edges
}

// Contains reports whether p is inside or on the hull (closed membership,
// Eq 9: the point must be LeftOrOn every CCW edge). Degenerate hulls test
// proximity to the point/segment within a small tolerance.
func (h Hull) Contains(p Point) bool {
	switch len(h.Vertices) {
	case 0:
		return false
	case 1:
		return h.Vertices[0].Dist(p) < 1e-9
	case 2:
		return distToSegment(p, h.Vertices[0], h.Vertices[1]) < 1e-9
	}
	for _, e := range h.Edges() {
		if !e.LeftOrOn(p) {
			return false
		}
	}
	return true
}

// Area returns the enclosed area via the shoelace formula (0 for degenerate
// hulls). Fig 6's observation that K-Means hulls cover more area than
// DBSCAN hulls is quantified with this.
func (h Hull) Area() float64 {
	n := len(h.Vertices)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		a, b := h.Vertices[i], h.Vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(sum) / 2
}

// Perimeter returns the hull boundary length.
func (h Hull) Perimeter() float64 {
	var sum float64
	for _, e := range h.Edges() {
		sum += e.Len()
	}
	if len(h.Vertices) == 2 {
		// A segment's boundary is traversed once in Edges; the perimeter of
		// the degenerate region is twice the segment length, but for our
		// reporting purposes the single-edge length is the useful measure.
		return sum
	}
	return sum
}

// BoundingBox returns the axis-aligned bounds (minX, minY, maxX, maxY).
func (h Hull) BoundingBox() (minX, minY, maxX, maxY float64) {
	if len(h.Vertices) == 0 {
		return 0, 0, 0, 0
	}
	minX, maxX = h.Vertices[0].X, h.Vertices[0].X
	minY, maxY = h.Vertices[0].Y, h.Vertices[0].Y
	for _, v := range h.Vertices[1:] {
		minX = math.Min(minX, v.X)
		maxX = math.Max(maxX, v.X)
		minY = math.Min(minY, v.Y)
		maxY = math.Max(maxY, v.Y)
	}
	return minX, minY, maxX, maxY
}

// YRangeAtX returns the [minY, maxY] interval of the hull at vertical line
// x, and ok=false when the line does not intersect the hull. The ADM uses
// this to answer MaxStay/MinStay queries: for an arrival time x, the valid
// stay durations are exactly the hull's y-interval at x.
func (h Hull) YRangeAtX(x float64) (minY, maxY float64, ok bool) {
	n := len(h.Vertices)
	if n == 0 {
		return 0, 0, false
	}
	if n == 1 {
		v := h.Vertices[0]
		if math.Abs(v.X-x) < 1e-9 {
			return v.Y, v.Y, true
		}
		return 0, 0, false
	}
	minY, maxY = math.Inf(1), math.Inf(-1)
	found := false
	edges := h.Edges()
	if n == 2 {
		// Treat the single segment bidirectionally.
		edges = append(edges, Segment{h.Vertices[1], h.Vertices[0]})
	}
	for _, e := range edges {
		lo, hi := e.A.X, e.B.X
		if lo > hi {
			lo, hi = hi, lo
		}
		if x < lo-1e-9 || x > hi+1e-9 {
			continue
		}
		var y float64
		if math.Abs(e.B.X-e.A.X) < 1e-12 {
			// Vertical edge: the whole y-span intersects.
			minY = math.Min(minY, math.Min(e.A.Y, e.B.Y))
			maxY = math.Max(maxY, math.Max(e.A.Y, e.B.Y))
			found = true
			continue
		}
		t := (x - e.A.X) / (e.B.X - e.A.X)
		y = e.A.Y + t*(e.B.Y-e.A.Y)
		minY = math.Min(minY, y)
		maxY = math.Max(maxY, y)
		found = true
	}
	if !found {
		return 0, 0, false
	}
	return minY, maxY, true
}

// ScanYRangesAtIntegerX reports the hull's y-interval at every integer x in
// [loX, hiX] that the hull intersects, with the same tolerance semantics as
// YRangeAtX — but walking the vertex ring directly, so a full scan performs
// no per-x allocation. Tabulation layers (the ADM's stay-range memo) use
// this to precompute YRangeAtX over a dense integer domain.
func (h Hull) ScanYRangesAtIntegerX(loX, hiX int, emit func(x int, minY, maxY float64)) {
	n := len(h.Vertices)
	if n == 0 {
		return
	}
	if n == 1 {
		v := h.Vertices[0]
		x := int(math.Round(v.X))
		if x >= loX && x <= hiX && math.Abs(v.X-float64(x)) < 1e-9 {
			emit(x, v.Y, v.Y)
		}
		return
	}
	minX, _, maxX, _ := h.BoundingBox()
	if lo := int(math.Ceil(minX - 1e-9)); lo > loX {
		loX = lo
	}
	if hi := int(math.Floor(maxX + 1e-9)); hi < hiX {
		hiX = hi
	}
	edges := n
	if n == 2 {
		edges = 1 // a 2-vertex hull has a single (bidirectional) edge
	}
	for x := loX; x <= hiX; x++ {
		fx := float64(x)
		lo, hi := math.Inf(1), math.Inf(-1)
		found := false
		for i := 0; i < edges; i++ {
			a, b := h.Vertices[i], h.Vertices[(i+1)%n]
			elo, ehi := a.X, b.X
			if elo > ehi {
				elo, ehi = ehi, elo
			}
			if fx < elo-1e-9 || fx > ehi+1e-9 {
				continue
			}
			if math.Abs(b.X-a.X) < 1e-12 {
				// Vertical edge: the whole y-span intersects.
				lo = math.Min(lo, math.Min(a.Y, b.Y))
				hi = math.Max(hi, math.Max(a.Y, b.Y))
				found = true
				continue
			}
			t := (fx - a.X) / (b.X - a.X)
			y := a.Y + t*(b.Y-a.Y)
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
			found = true
		}
		if found {
			emit(x, lo, hi)
		}
	}
}

// Centroid returns the arithmetic mean of the hull vertices (adequate for
// reporting; not the area centroid).
func (h Hull) Centroid() Point {
	if len(h.Vertices) == 0 {
		return Point{}
	}
	var cx, cy float64
	for _, v := range h.Vertices {
		cx += v.X
		cy += v.Y
	}
	n := float64(len(h.Vertices))
	return Point{cx / n, cy / n}
}

func distToSegment(p, a, b Point) float64 {
	ab := b.Sub(a)
	ap := p.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a)
	}
	t := (ap.X*ab.X + ap.Y*ab.Y) / den
	t = math.Max(0, math.Min(1, t))
	proj := Point{a.X + t*ab.X, a.Y + t*ab.Y}
	return p.Dist(proj)
}
