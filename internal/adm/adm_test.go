package adm

import (
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

func trainedModel(t *testing.T, alg Algorithm, days int) (*Model, *aras.Trace) {
	t.Helper()
	h := home.MustHouse("A")
	tr, err := aras.Generate(h, aras.GeneratorConfig{Days: days, Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(alg)
	if alg == DBSCAN {
		// Modest MinPts and a wider radius for short unit-test traces.
		cfg.MinPts = 4
		cfg.Eps = 30
	}
	m, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

func TestTrainEmptyTrace(t *testing.T) {
	h := home.MustHouse("A")
	tr := &aras.Trace{House: h}
	if _, err := Train(tr, DefaultConfig(DBSCAN)); err == nil {
		t.Error("empty trace should fail training")
	}
}

func TestAlgorithmString(t *testing.T) {
	if DBSCAN.String() != "DBSCAN" || KMeans.String() != "K-Means" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should still render")
	}
}

func TestTrainedModelAcceptsTrainingBehaviour(t *testing.T) {
	for _, alg := range []Algorithm{DBSCAN, KMeans} {
		m, tr := trainedModel(t, alg, 20)
		// The model must accept the bulk of the behaviour it was trained on
		// (DBSCAN prunes noise, so a minority of irregular episodes may be
		// flagged).
		total, flagged := 0, 0
		for o := range tr.House.Occupants {
			for _, e := range tr.Episodes(o) {
				total++
				if m.EpisodeAnomalous(e) {
					flagged++
				}
			}
		}
		if total == 0 {
			t.Fatal("no episodes")
		}
		// DBSCAN legitimately prunes irregular-day behaviour as noise; the
		// bound below only guards against the model rejecting the habitual
		// majority.
		if flagged > total*2/5 {
			t.Errorf("%v: flagged %d/%d of its own training data", alg, flagged, total)
		}
	}
}

func TestKMeansCoversAllTrainingPoints(t *testing.T) {
	// K-Means clusters every sample (no noise), so every training episode
	// is inside some hull — the Fig 6 observation.
	m, tr := trainedModel(t, KMeans, 15)
	for o := range tr.House.Occupants {
		for _, e := range tr.Episodes(o) {
			if m.EpisodeAnomalous(e) {
				t.Fatalf("K-Means ADM flagged its own training episode %+v", e)
			}
		}
	}
}

func TestDBSCANPrunesNoiseKMeansDoesNot(t *testing.T) {
	hDB, trDB := trainedModel(t, DBSCAN, 25)
	hKM, _ := trainedModel(t, KMeans, 25)
	_ = trDB
	sDB, sKM := hDB.Stats(), hKM.Stats()
	if sKM.NoisePruned != 0 {
		t.Errorf("K-Means pruned %d points, want 0", sKM.NoisePruned)
	}
	if sDB.NoisePruned == 0 {
		t.Error("DBSCAN should prune some irregular-day episodes as noise")
	}
	// Fig 6: K-Means hulls cover a larger total area.
	if sKM.TotalArea <= sDB.TotalArea {
		t.Errorf("K-Means area %v should exceed DBSCAN area %v", sKM.TotalArea, sDB.TotalArea)
	}
}

func TestRejectsWildEpisodes(t *testing.T) {
	m, _ := trainedModel(t, DBSCAN, 25)
	// A 3 AM four-hour bathroom stay is not habitual behaviour.
	if m.WithinCluster(0, home.Bathroom, 3*60, 240) {
		t.Error("wild bathroom stay accepted")
	}
	// A 3 AM kitchen visit of an hour likewise.
	if m.WithinCluster(0, home.Kitchen, 3*60+7, 60) {
		t.Error("3AM hour-long kitchen stay accepted")
	}
}

func TestStayRangeAndQueries(t *testing.T) {
	m, tr := trainedModel(t, DBSCAN, 25)
	// Use a real training episode: its stay must be inside [min, max].
	var probe *aras.Episode
	for _, e := range tr.Episodes(0) {
		if e.Zone == home.Bedroom && e.Duration > 30 && !m.EpisodeAnomalous(e) {
			probe = &e
			break
		}
	}
	if probe == nil {
		t.Skip("no accepted bedroom episode found")
	}
	minS, maxS, ok := m.StayRange(0, probe.Zone, probe.ArrivalSlot)
	if !ok {
		t.Fatal("StayRange should cover a training arrival")
	}
	if probe.Duration < minS || probe.Duration > maxS {
		t.Errorf("training stay %d outside [%d,%d]", probe.Duration, minS, maxS)
	}
	gotMax, ok := m.MaxStay(0, probe.Zone, probe.ArrivalSlot)
	if !ok || gotMax != maxS {
		t.Errorf("MaxStay = %d,%v want %d", gotMax, ok, maxS)
	}
	gotMin, ok := m.MinStay(0, probe.Zone, probe.ArrivalSlot)
	if !ok || gotMin != minS {
		t.Errorf("MinStay = %d,%v want %d", gotMin, ok, minS)
	}
	if !m.InRangeStay(0, probe.Zone, probe.ArrivalSlot, probe.Duration) {
		t.Error("InRangeStay rejects a training stay")
	}
}

func TestStayRangeAnomalousArrival(t *testing.T) {
	m, _ := trainedModel(t, DBSCAN, 20)
	// Nobody arrives in the kitchen at 3:33 AM in training.
	if _, _, ok := m.StayRange(0, home.Kitchen, 3*60+33); ok {
		t.Error("anomalous arrival should have no stay range")
	}
}

func TestConsistent(t *testing.T) {
	m, tr := trainedModel(t, KMeans, 20)
	eps := tr.DayEpisodes(5, 0)
	if !m.Consistent(eps) {
		t.Error("K-Means model should accept a training day wholesale")
	}
	// Corrupt one episode.
	bad := make([]aras.Episode, len(eps))
	copy(bad, eps)
	bad[0].Zone = home.Bathroom
	bad[0].ArrivalSlot = 200
	bad[0].Duration = 400
	if m.Consistent(bad) {
		t.Error("corrupted day should be inconsistent")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	m, tr := trainedModel(t, DBSCAN, 25)
	var labeled []LabeledEpisode
	for _, e := range tr.Episodes(0) {
		labeled = append(labeled, LabeledEpisode{Episode: e, Attack: false})
	}
	// Synthesise blatant attacks.
	for i := 0; i < 40; i++ {
		labeled = append(labeled, LabeledEpisode{
			Episode: aras.Episode{
				Occupant:    0,
				Zone:        home.Kitchen,
				ArrivalSlot: 120 + i,
				Duration:    300,
			},
			Attack: true,
		})
	}
	c := Evaluate(m, labeled)
	if c.Recall() < 0.9 {
		t.Errorf("blatant attacks mostly undetected: recall %v", c.Recall())
	}
	if got := DetectionRate(m, labeled); got < 0.9 {
		t.Errorf("detection rate %v", got)
	}
}

func TestDetectionRateNoAttacks(t *testing.T) {
	m, tr := trainedModel(t, DBSCAN, 10)
	var labeled []LabeledEpisode
	for _, e := range tr.Episodes(0)[:5] {
		labeled = append(labeled, LabeledEpisode{Episode: e})
	}
	if DetectionRate(m, labeled) != 0 {
		t.Error("no attacks → rate 0")
	}
}

func TestTuneSweeps(t *testing.T) {
	h := home.MustHouse("A")
	tr, err := aras.Generate(h, aras.GeneratorConfig{Days: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	db := TuneDBSCAN(tr, 0, 20, 5, 30, 5)
	if len(db) == 0 {
		t.Fatal("DBSCAN sweep empty")
	}
	km := TuneKMeans(tr, 0, 3, 2, 30, 4)
	if len(km) == 0 {
		t.Fatal("KMeans sweep empty")
	}
	for _, p := range km {
		if p.Hyperparameter < 2 {
			t.Error("bad hyperparameter recorded")
		}
	}
}

func TestZoneCoverage(t *testing.T) {
	m, _ := trainedModel(t, KMeans, 20)
	cov := m.ZoneCoverage(0, 19*60) // 7 PM
	if len(cov) == 0 {
		t.Error("evening coverage should be non-empty")
	}
}

func TestHullsAccessors(t *testing.T) {
	m, _ := trainedModel(t, DBSCAN, 15)
	if len(m.Hulls(0, home.Bedroom)) == 0 {
		t.Error("bedroom should have hulls")
	}
	if m.Hulls(0, home.ZoneID(99)) != nil {
		t.Error("unknown zone should have no hulls")
	}
	if len(m.TrainingPoints(0, home.Bedroom)) == 0 {
		t.Error("bedroom should have training points")
	}
}
