package adm

import (
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// testTrace generates a short deterministic trace for a paper house.
func testTrace(t *testing.T, name string, days int) *aras.Trace {
	t.Helper()
	tr, err := aras.Generate(home.MustHouse(name), aras.GeneratorConfig{Days: days, Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// streamVerdicts replays a trace's occupancy stream through the online
// detector slot-by-slot and returns all verdicts in close order.
func streamVerdicts(t *testing.T, m *Model, tr *aras.Trace) []Verdict {
	t.Helper()
	det := NewDetector(m)
	var out []Verdict
	for d := 0; d < tr.NumDays(); d++ {
		day := tr.Days[d]
		for s := 0; s < aras.SlotsPerDay; s++ {
			for o := range day.Zone {
				v, closed, err := det.Observe(d, s, o, day.Zone[o][s], day.Act[o][s])
				if err != nil {
					t.Fatalf("Observe(day %d slot %d occ %d): %v", d, s, o, err)
				}
				if closed {
					out = append(out, v)
				}
			}
		}
	}
	return append(out, det.Flush()...)
}

// TestDetectorMatchesBatch pins the online detector's episodes and verdicts
// to the batch path (DayEpisodes + EpisodeAnomalous) on both paper houses.
func TestDetectorMatchesBatch(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		tr := testTrace(t, name, 8)
		train, err := tr.SubTrace(0, 6)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(DBSCAN)
		cfg.MinPts = 3
		cfg.Eps = 30
		m, err := Train(train, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Batch reference: per-day episodes per occupant, in (day, occupant,
		// arrival) order.
		var batch []Verdict
		for d := 0; d < tr.NumDays(); d++ {
			for o := range tr.House.Occupants {
				for _, e := range tr.DayEpisodes(d, o) {
					batch = append(batch, Verdict{Episode: e, Anomalous: m.EpisodeAnomalous(e)})
				}
			}
		}
		streamed := streamVerdicts(t, m, tr)
		if len(streamed) != len(batch) {
			t.Fatalf("house %s: %d streamed verdicts, %d batch", name, len(streamed), len(batch))
		}
		// Streaming interleaves occupants by close time; compare as sets
		// keyed by (day, occupant, arrival) — unique per episode — and also
		// confirm per-occupant close order is monotone.
		index := make(map[[3]int]Verdict, len(batch))
		for _, v := range batch {
			index[[3]int{v.Episode.Day, v.Episode.Occupant, v.Episode.ArrivalSlot}] = v
		}
		lastClose := make(map[int][2]int)
		for _, v := range streamed {
			want, ok := index[[3]int{v.Episode.Day, v.Episode.Occupant, v.Episode.ArrivalSlot}]
			if !ok {
				t.Fatalf("house %s: streamed episode %+v not in batch set", name, v.Episode)
			}
			if !reflect.DeepEqual(v, want) {
				t.Fatalf("house %s: verdict mismatch\nstreamed: %+v\nbatch:    %+v", name, v, want)
			}
			o := v.Episode.Occupant
			at := [2]int{v.Episode.Day, v.Episode.ArrivalSlot}
			if prev, seen := lastClose[o]; seen && (at[0] < prev[0] || (at[0] == prev[0] && at[1] <= prev[1])) {
				t.Fatalf("house %s: occupant %d episodes closed out of order", name, o)
			}
			lastClose[o] = at
		}
	}
}

// TestDetectorRejectsDisorder covers the stream-hygiene errors.
func TestDetectorRejectsDisorder(t *testing.T) {
	tr := testTrace(t, "A", 4)
	m, err := Train(tr, Config{Algorithm: KMeans, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(m)
	if _, _, err := det.Observe(0, 0, 99, home.Bedroom, home.Sleeping); err == nil {
		t.Error("occupant out of range accepted")
	}
	if _, _, err := det.Observe(0, aras.SlotsPerDay, 0, home.Bedroom, home.Sleeping); err == nil {
		t.Error("slot out of range accepted")
	}
	if _, _, err := det.Observe(0, 5, 0, home.Bedroom, home.Sleeping); err != nil {
		t.Fatal(err)
	}
	if _, _, err := det.Observe(0, 5, 0, home.Bedroom, home.Sleeping); err == nil {
		t.Error("replayed slot accepted")
	}
	if _, _, err := det.Observe(0, 4, 0, home.Bedroom, home.Sleeping); err == nil {
		t.Error("rewound slot accepted")
	}
}

// TestDetectorFlushMidDay seals a stream that stops between day boundaries.
func TestDetectorFlushMidDay(t *testing.T) {
	tr := testTrace(t, "A", 4)
	m, err := Train(tr, Config{Algorithm: KMeans, K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDetector(m)
	for s := 0; s < 10; s++ {
		if _, _, err := det.Observe(0, s, 0, home.Bedroom, home.Sleeping); err != nil {
			t.Fatal(err)
		}
	}
	vs := det.Flush()
	if len(vs) != 1 {
		t.Fatalf("got %d verdicts, want 1", len(vs))
	}
	e := vs[0].Episode
	if e.ArrivalSlot != 0 || e.Duration != 10 || e.Zone != home.Bedroom {
		t.Fatalf("bad sealed episode: %+v", e)
	}
	if len(det.Flush()) != 0 {
		t.Error("second Flush should be empty")
	}
}
