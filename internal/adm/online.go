package adm

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// Episodizer segments an occupancy stream into episodes online: it tracks
// each occupant's current stay and closes it the moment the occupant moves
// zones or a day boundary passes. Segmentation replicates the batch
// extractor (Trace.DayEpisodes) exactly — stays split at midnight and the
// dominant activity resolves ties toward the smallest ActivityID — so a
// replayed trace produces identical episodes. Not safe for concurrent use.
type Episodizer struct {
	cur []stay
}

// stay is one occupant's open episode.
type stay struct {
	open     bool
	day      int
	zone     home.ZoneID
	start    int // arrival slot (minute of day)
	last     int // last observed slot
	actCount map[home.ActivityID]int
}

// NewEpisodizer tracks the given number of occupants.
func NewEpisodizer(occupants int) *Episodizer {
	return &Episodizer{cur: make([]stay, occupants)}
}

// Observe feeds one occupant-slot of an occupancy stream. Slots must arrive
// in order per occupant: day-major, then slot 0..aras.SlotsPerDay-1. When
// the observation closes the previous stay — the occupant moved zones, or a
// new day began — the closed episode is returned with ok = true.
func (ez *Episodizer) Observe(day, slot, occupant int, zone home.ZoneID, act home.ActivityID) (e aras.Episode, ok bool, err error) {
	if occupant < 0 || occupant >= len(ez.cur) {
		return aras.Episode{}, false, fmt.Errorf("adm: occupant %d out of range", occupant)
	}
	if slot < 0 || slot >= aras.SlotsPerDay {
		return aras.Episode{}, false, fmt.Errorf("adm: slot %d out of range", slot)
	}
	st := &ez.cur[occupant]
	if st.open {
		if day < st.day || (day == st.day && slot <= st.last) {
			return aras.Episode{}, false, fmt.Errorf("adm: out-of-order observation day %d slot %d after day %d slot %d",
				day, slot, st.day, st.last)
		}
		if day != st.day {
			// Day boundary: the batch extractor splits stays at midnight.
			e, ok = ez.close(occupant, aras.SlotsPerDay), true
		} else if zone != st.zone {
			e, ok = ez.close(occupant, slot), true
		}
	}
	if !st.open {
		*st = stay{open: true, day: day, zone: zone, start: slot, last: slot,
			actCount: map[home.ActivityID]int{act: 1}}
		return e, ok, nil
	}
	st.last = slot
	st.actCount[act]++
	return e, ok, nil
}

// Flush closes every occupant's open stay and returns the final episodes in
// occupant order. For whole-day streams this matches the batch extractor's
// end-of-day close; Flush also seals a stream that stops mid-day (the
// episode ends after its last observed slot).
func (ez *Episodizer) Flush() []aras.Episode {
	var out []aras.Episode
	for o := range ez.cur {
		if !ez.cur[o].open {
			continue
		}
		out = append(out, ez.close(o, ez.cur[o].last+1))
	}
	return out
}

// close seals occupant o's stay [start, end) and resets the slot state.
func (ez *Episodizer) close(o, end int) aras.Episode {
	st := &ez.cur[o]
	// Dominant activity: maximum count, ties toward the smaller ActivityID —
	// the same resolution Trace.DayEpisodes computes.
	dominant, best := home.Other, -1
	for a, c := range st.actCount {
		if c > best || (c == best && a < dominant) {
			dominant, best = a, c
		}
	}
	e := aras.Episode{
		Day:         st.day,
		Occupant:    o,
		Zone:        st.zone,
		ArrivalSlot: st.start,
		Duration:    end - st.start,
		Activity:    dominant,
	}
	*st = stay{}
	return e
}

// Verdict is the online detector's judgement of one closed episode — the
// per-episode event the streaming runtime publishes as soon as a stay ends,
// instead of waiting for a whole trace to materialize.
type Verdict struct {
	Episode aras.Episode
	// Anomalous mirrors Model.EpisodeAnomalous on the closed episode.
	Anomalous bool
}

// Detector scores an occupancy stream online: an Episodizer segments the
// stream and, the moment a stay closes, the trained model classifies it.
// Verdicts are identical to what the batch path computes from
// Trace.DayEpisodes + Model.EpisodeAnomalous on the same stream. A Detector
// is not safe for concurrent use; run one per home.
type Detector struct {
	model *Model
	ez    *Episodizer
}

// NewDetector wraps a trained model for online use.
func NewDetector(m *Model) *Detector {
	return &Detector{model: m, ez: NewEpisodizer(len(m.house.Occupants))}
}

// Model returns the wrapped ADM.
func (d *Detector) Model() *Model { return d.model }

// Observe feeds one occupant-slot of the (possibly falsified) occupancy
// stream; see Episodizer.Observe for ordering requirements. When the
// observation closes a stay, its verdict is returned with ok = true.
func (d *Detector) Observe(day, slot, occupant int, zone home.ZoneID, act home.ActivityID) (v Verdict, ok bool, err error) {
	e, ok, err := d.ez.Observe(day, slot, occupant, zone, act)
	if err != nil || !ok {
		return Verdict{}, false, err
	}
	return Verdict{Episode: e, Anomalous: d.model.EpisodeAnomalous(e)}, true, nil
}

// Flush closes every occupant's open stay and returns the final verdicts in
// occupant order.
func (d *Detector) Flush() []Verdict {
	eps := d.ez.Flush()
	out := make([]Verdict, len(eps))
	for i, e := range eps {
		out[i] = Verdict{Episode: e, Anomalous: d.model.EpisodeAnomalous(e)}
	}
	return out
}
