package adm

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// Episodizer segments an occupancy stream into episodes online: it tracks
// each occupant's current stay and closes it the moment the occupant moves
// zones or a day boundary passes. Segmentation replicates the batch
// extractor (Trace.DayEpisodes) exactly — stays split at midnight and the
// dominant activity resolves ties toward the smallest ActivityID — so a
// replayed trace produces identical episodes. Not safe for concurrent use.
type Episodizer struct {
	cur []stay
}

// stay is one occupant's open episode.
type stay struct {
	open     bool
	day      int
	zone     home.ZoneID
	start    int // arrival slot (minute of day)
	last     int // last observed slot
	actCount map[home.ActivityID]int
}

// NewEpisodizer tracks the given number of occupants.
func NewEpisodizer(occupants int) *Episodizer {
	return &Episodizer{cur: make([]stay, occupants)}
}

// Observe feeds one occupant-slot of an occupancy stream. Slots must arrive
// in order per occupant: day-major, then slot 0..aras.SlotsPerDay-1. When
// the observation closes the previous stay — the occupant moved zones, or a
// new day began — the closed episode is returned with ok = true.
func (ez *Episodizer) Observe(day, slot, occupant int, zone home.ZoneID, act home.ActivityID) (e aras.Episode, ok bool, err error) {
	if occupant < 0 || occupant >= len(ez.cur) {
		return aras.Episode{}, false, fmt.Errorf("adm: occupant %d out of range", occupant)
	}
	if slot < 0 || slot >= aras.SlotsPerDay {
		return aras.Episode{}, false, fmt.Errorf("adm: slot %d out of range", slot)
	}
	st := &ez.cur[occupant]
	if st.open {
		if day < st.day || (day == st.day && slot <= st.last) {
			return aras.Episode{}, false, fmt.Errorf("adm: out-of-order observation day %d slot %d after day %d slot %d",
				day, slot, st.day, st.last)
		}
		if day != st.day {
			// Day boundary: the batch extractor splits stays at midnight.
			e, ok = ez.close(occupant, aras.SlotsPerDay), true
		} else if zone != st.zone {
			e, ok = ez.close(occupant, slot), true
		}
	}
	if !st.open {
		*st = stay{open: true, day: day, zone: zone, start: slot, last: slot,
			actCount: map[home.ActivityID]int{act: 1}}
		return e, ok, nil
	}
	st.last = slot
	st.actCount[act]++
	return e, ok, nil
}

// ObserveDay feeds one occupant's whole-day occupancy columns (zones[t],
// acts[t] for t = 0..aras.SlotsPerDay-1) and appends every episode the day
// closes to dst, returning it. It is equivalent to aras.SlotsPerDay ordered
// Observe calls — the same episodes in the same order — but segments the
// contiguous columns directly: zone runs are scanned once, dominant
// activities are counted in a flat per-activity array, and the per-slot
// activity-count map is materialized only for the day's open tail stay (so
// checkpoint snapshots and later per-slot Observe calls see identical
// state). A day already partially observed via Observe cannot be re-fed
// column-wise; that ordering violation errors exactly as Observe would.
func (ez *Episodizer) ObserveDay(day, occupant int, zones []home.ZoneID, acts []home.ActivityID, dst []aras.Episode) ([]aras.Episode, error) {
	if occupant < 0 || occupant >= len(ez.cur) {
		return dst, fmt.Errorf("adm: occupant %d out of range", occupant)
	}
	if len(zones) != aras.SlotsPerDay || len(acts) != aras.SlotsPerDay {
		return dst, fmt.Errorf("adm: day columns sized %d/%d, want %d", len(zones), len(acts), aras.SlotsPerDay)
	}
	st := &ez.cur[occupant]
	if st.open {
		if day <= st.day {
			return dst, fmt.Errorf("adm: out-of-order observation day %d slot 0 after day %d slot %d",
				day, st.day, st.last)
		}
		// Day boundary: the batch extractor splits stays at midnight.
		dst = append(dst, ez.close(occupant, aras.SlotsPerDay))
	}
	var count [home.NumActivities]int
	start := 0
	for t := 0; t <= aras.SlotsPerDay; t++ {
		if t < aras.SlotsPerDay && zones[t] == zones[start] {
			count[acts[t]]++
			continue
		}
		if t < aras.SlotsPerDay {
			// Zone changed at t: close [start, t) with its dominant activity
			// (maximum count, ties toward the smaller ActivityID — scanning
			// ascending IDs resolves ties identically to close()).
			dominant, best := home.Other, -1
			for a := 0; a < home.NumActivities; a++ {
				if count[a] > best {
					dominant, best = home.ActivityID(a), count[a]
				}
				count[a] = 0
			}
			dst = append(dst, aras.Episode{
				Day:         day,
				Occupant:    occupant,
				Zone:        zones[start],
				ArrivalSlot: start,
				Duration:    t - start,
				Activity:    dominant,
			})
			start = t
			count[acts[t]]++
			continue
		}
		// End of the day's columns: the tail run stays open, carrying the
		// same incremental state per-slot Observe calls would have built.
		actCount := make(map[home.ActivityID]int)
		for a := 0; a < home.NumActivities; a++ {
			if count[a] > 0 {
				actCount[home.ActivityID(a)] = count[a]
			}
		}
		*st = stay{open: true, day: day, zone: zones[start], start: start,
			last: aras.SlotsPerDay - 1, actCount: actCount}
	}
	return dst, nil
}

// Flush closes every occupant's open stay and returns the final episodes in
// occupant order. For whole-day streams this matches the batch extractor's
// end-of-day close; Flush also seals a stream that stops mid-day (the
// episode ends after its last observed slot).
func (ez *Episodizer) Flush() []aras.Episode {
	var out []aras.Episode
	for o := range ez.cur {
		if !ez.cur[o].open {
			continue
		}
		out = append(out, ez.close(o, ez.cur[o].last+1))
	}
	return out
}

// close seals occupant o's stay [start, end) and resets the slot state.
func (ez *Episodizer) close(o, end int) aras.Episode {
	st := &ez.cur[o]
	// Dominant activity: maximum count, ties toward the smaller ActivityID —
	// the same resolution Trace.DayEpisodes computes.
	dominant, best := home.Other, -1
	for a, c := range st.actCount {
		if c > best || (c == best && a < dominant) {
			dominant, best = a, c
		}
	}
	e := aras.Episode{
		Day:         st.day,
		Occupant:    o,
		Zone:        st.zone,
		ArrivalSlot: st.start,
		Duration:    end - st.start,
		Activity:    dominant,
	}
	*st = stay{}
	return e
}

// Verdict is the online detector's judgement of one closed episode — the
// per-episode event the streaming runtime publishes as soon as a stay ends,
// instead of waiting for a whole trace to materialize.
type Verdict struct {
	Episode aras.Episode
	// Anomalous mirrors Model.EpisodeAnomalous on the closed episode.
	Anomalous bool
}

// Detector scores an occupancy stream online: an Episodizer segments the
// stream and, the moment a stay closes, the trained model classifies it.
// Verdicts are identical to what the batch path computes from
// Trace.DayEpisodes + Model.EpisodeAnomalous on the same stream. A Detector
// is not safe for concurrent use; run one per home.
type Detector struct {
	model *Model
	ez    *Episodizer
	eps   []aras.Episode // ObserveDay scratch
}

// NewDetector wraps a trained model for online use.
func NewDetector(m *Model) *Detector {
	return &Detector{model: m, ez: NewEpisodizer(len(m.house.Occupants))}
}

// Model returns the wrapped ADM.
func (d *Detector) Model() *Model { return d.model }

// Observe feeds one occupant-slot of the (possibly falsified) occupancy
// stream; see Episodizer.Observe for ordering requirements. When the
// observation closes a stay, its verdict is returned with ok = true.
func (d *Detector) Observe(day, slot, occupant int, zone home.ZoneID, act home.ActivityID) (v Verdict, ok bool, err error) {
	e, ok, err := d.ez.Observe(day, slot, occupant, zone, act)
	if err != nil || !ok {
		return Verdict{}, false, err
	}
	return Verdict{Episode: e, Anomalous: d.model.EpisodeAnomalous(e)}, true, nil
}

// ObserveDay feeds one occupant's whole-day occupancy columns and appends a
// verdict for every episode the day closes to dst, returning it; see
// Episodizer.ObserveDay for ordering requirements and equivalence.
func (d *Detector) ObserveDay(day, occupant int, zones []home.ZoneID, acts []home.ActivityID, dst []Verdict) ([]Verdict, error) {
	eps, err := d.ez.ObserveDay(day, occupant, zones, acts, d.eps[:0])
	d.eps = eps[:0]
	if err != nil {
		return dst, err
	}
	for _, e := range eps {
		dst = append(dst, Verdict{Episode: e, Anomalous: d.model.EpisodeAnomalous(e)})
	}
	return dst, nil
}

// Flush closes every occupant's open stay and returns the final verdicts in
// occupant order.
func (d *Detector) Flush() []Verdict {
	eps := d.ez.Flush()
	out := make([]Verdict, len(eps))
	for i, e := range eps {
		out[i] = Verdict{Episode: e, Anomalous: d.model.EpisodeAnomalous(e)}
	}
	return out
}
