// Stay-range memoisation: the attack solver issues millions of
// MaxStay/InRangeStay oracle queries per planning run, all with integer
// arrival slots in [0, SlotsPerDay). Because a convex hull's intersection
// with the vertical line x = arrival is a single y-interval, the whole query
// surface can be tabulated once at training time — per (occupant, zone,
// arrival slot) a covered flag, the integer [minStay, maxStay] union bounds,
// and the per-hull y-intervals needed for gap-aware InRangeStay checks.
// Queries then cost an array load instead of per-edge geometry.
package adm

import (
	"math"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/solver"
)

// stayInterval is one hull's stealthy-stay band at a fixed arrival slot.
type stayInterval struct{ lo, hi float64 }

// zoneMemo tabulates the stay queries for one (occupant, zone) model over
// the integer arrival slots of a day.
type zoneMemo struct {
	covered []bool  // covered[t]: some hull intersects x = t
	minStay []int32 // StayRange lower bound (valid when covered)
	maxStay []int32 // StayRange upper bound (valid when covered)
	// ivOff/ivs store each slot's hull intervals contiguously:
	// ivs[ivOff[t]:ivOff[t+1]] are the y-intervals at arrival t.
	ivOff []int32
	ivs   []stayInterval
}

// memoTol mirrors the geometry predicates' boundary tolerance. Training
// points are integral, so hull boundaries at integer x are rationals with
// denominator ≤ SlotsPerDay; any tolerance ≪ 1/SlotsPerDay² preserves the
// exact membership decisions of the hull tests for integer stays.
const memoTol = 1e-9

// buildZoneMemo tabulates the hull set via the allocation-free
// geometry.Hull.ScanYRangesAtIntegerX walk, which matches YRangeAtX /
// Contains semantics exactly for integer queries.
func buildZoneMemo(hulls []geometry.Hull) *zoneMemo {
	m := &zoneMemo{
		covered: make([]bool, aras.SlotsPerDay),
		minStay: make([]int32, aras.SlotsPerDay),
		maxStay: make([]int32, aras.SlotsPerDay),
		ivOff:   make([]int32, aras.SlotsPerDay+1),
	}
	// Collect intervals per slot. perSlot is scratch; most slots are covered
	// by zero or a few hulls.
	perSlot := make([][]stayInterval, aras.SlotsPerDay)
	for _, h := range hulls {
		h.ScanYRangesAtIntegerX(0, aras.SlotsPerDay-1, func(slot int, lo, hi float64) {
			perSlot[slot] = append(perSlot[slot], stayInterval{lo, hi})
		})
	}
	total := 0
	for _, ivs := range perSlot {
		total += len(ivs)
	}
	m.ivs = make([]stayInterval, 0, total)
	for t := 0; t < aras.SlotsPerDay; t++ {
		m.ivOff[t] = int32(len(m.ivs))
		ivs := perSlot[t]
		if len(ivs) == 0 {
			continue
		}
		m.ivs = append(m.ivs, ivs...)
		m.covered[t] = true
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, iv := range ivs {
			lo = math.Min(lo, iv.lo)
			hi = math.Max(hi, iv.hi)
		}
		minS, maxS := clampStayRange(lo, hi)
		m.minStay[t], m.maxStay[t] = int32(minS), int32(maxS)
	}
	m.ivOff[aras.SlotsPerDay] = int32(len(m.ivs))
	return m
}

// clampStayRange converts a real stay interval to the integer [min, max]
// StayRange reports: boundary-tolerant rounding, clamped to non-negative
// durations. Shared by the memo build and the geometric fallback.
func clampStayRange(lo, hi float64) (minStay, maxStay int) {
	minStay = int(math.Ceil(lo - 1e-9))
	maxStay = int(math.Floor(hi + 1e-9))
	if minStay < 0 {
		minStay = 0
	}
	if maxStay < minStay {
		maxStay = minStay
	}
	return minStay, maxStay
}

// StayBands returns the occupant's flattened stay-band table — the
// tabulated oracle solver.OptimizeWindowBands consumes directly on the
// attack planner's hot path. The table is built once at Train time from the
// same per-zone memos that back MaxStay/InRangeStay, so for every arrival
// slot in [0, aras.SlotsPerDay) its answers are identical to the Model's;
// it is immutable and safe for concurrent readers. Returns nil for unknown
// occupants.
func (m *Model) StayBands(occupant int) *solver.StayBands {
	if occupant < 0 || occupant >= len(m.bands) {
		return nil
	}
	return m.bands[occupant]
}

// buildStayBands flattens the occupant's per-zone memos over the house's nz
// zones into one contiguous table.
func (m *Model) buildStayBands(occupant, nz int) *solver.StayBands {
	const s = aras.SlotsPerDay
	b := &solver.StayBands{
		Slots:   s,
		Covered: make([]bool, nz*s),
		MinStay: make([]int32, nz*s),
		MaxStay: make([]int32, nz*s),
		IvOff:   make([]int32, nz*s+1),
		Tol:     memoTol,
	}
	total := 0
	for z := 0; z < nz; z++ {
		if zm := m.memo[key{occupant: occupant, zone: home.ZoneID(z)}]; zm != nil {
			total += len(zm.ivs)
		}
	}
	b.IvLo = make([]float64, 0, total)
	b.IvHi = make([]float64, 0, total)
	for z := 0; z < nz; z++ {
		zm := m.memo[key{occupant: occupant, zone: home.ZoneID(z)}]
		row := z * s
		for t := 0; t < s; t++ {
			b.IvOff[row+t] = int32(len(b.IvLo))
			if zm == nil {
				continue // zone never visited in training: uncovered row
			}
			b.Covered[row+t] = zm.covered[t]
			b.MinStay[row+t] = zm.minStay[t]
			b.MaxStay[row+t] = zm.maxStay[t]
			for _, iv := range zm.ivs[zm.ivOff[t]:zm.ivOff[t+1]] {
				b.IvLo = append(b.IvLo, iv.lo)
				b.IvHi = append(b.IvHi, iv.hi)
			}
		}
	}
	b.IvOff[nz*s] = int32(len(b.IvLo))
	return b
}

// stayWithin reports whether the stay lies inside any hull interval at the
// arrival slot.
func (m *zoneMemo) stayWithin(arrival, stay int) bool {
	y := float64(stay)
	for _, iv := range m.ivs[m.ivOff[arrival]:m.ivOff[arrival+1]] {
		if y >= iv.lo-memoTol && y <= iv.hi+memoTol {
			return true
		}
	}
	return false
}
