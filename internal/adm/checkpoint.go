package adm

import (
	"errors"
	"fmt"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// StayState is the serializable form of one occupant's open episode.
type StayState struct {
	Open     bool                    `json:"open"`
	Day      int                     `json:"day"`
	Zone     home.ZoneID             `json:"zone"`
	Start    int                     `json:"start"`
	Last     int                     `json:"last"`
	ActCount map[home.ActivityID]int `json:"act_count,omitempty"`
}

// EpisodizerState is the serializable snapshot of an Episodizer: each
// occupant's in-flight stay, so a restored stream resumes segmentation
// exactly where the interrupted one left off.
type EpisodizerState struct {
	Stays []StayState `json:"stays"`
}

// ErrEpisodizerRestore is returned when a snapshot cannot be applied.
var ErrEpisodizerRestore = errors.New("adm: snapshot does not fit episodizer")

// Snapshot captures the episodizer's open stays.
func (ez *Episodizer) Snapshot() EpisodizerState {
	st := EpisodizerState{Stays: make([]StayState, len(ez.cur))}
	for o, s := range ez.cur {
		ss := StayState{Open: s.open, Day: s.day, Zone: s.zone, Start: s.start, Last: s.last}
		if s.open {
			ss.ActCount = make(map[home.ActivityID]int, len(s.actCount))
			for a, c := range s.actCount {
				ss.ActCount[a] = c
			}
		}
		st.Stays[o] = ss
	}
	return st
}

// Restore applies a snapshot to an episodizer tracking the same occupant
// count. Open stays must carry a coherent slot window so a corrupted
// snapshot errors instead of seeding garbage episodes.
func (ez *Episodizer) Restore(st EpisodizerState) error {
	if len(st.Stays) != len(ez.cur) {
		return fmt.Errorf("%w: %d stays for %d occupants", ErrEpisodizerRestore, len(st.Stays), len(ez.cur))
	}
	cur := make([]stay, len(ez.cur))
	for o, ss := range st.Stays {
		if !ss.Open {
			continue
		}
		if ss.Start < 0 || ss.Last < ss.Start || ss.Last >= aras.SlotsPerDay || ss.Day < 0 {
			return fmt.Errorf("%w: occupant %d stay day %d slots [%d,%d]", ErrEpisodizerRestore, o, ss.Day, ss.Start, ss.Last)
		}
		acts := make(map[home.ActivityID]int, len(ss.ActCount))
		for a, c := range ss.ActCount {
			if c <= 0 {
				return fmt.Errorf("%w: occupant %d activity %d count %d", ErrEpisodizerRestore, o, a, c)
			}
			acts[a] = c
		}
		if len(acts) == 0 {
			return fmt.Errorf("%w: occupant %d open stay without activity counts", ErrEpisodizerRestore, o)
		}
		cur[o] = stay{open: true, day: ss.Day, zone: ss.Zone, start: ss.Start, last: ss.Last, actCount: acts}
	}
	ez.cur = cur
	return nil
}

// Snapshot captures the detector's segmentation state (the trained model is
// configuration, not state — a restored detector wraps the same model).
func (d *Detector) Snapshot() EpisodizerState { return d.ez.Snapshot() }

// Restore applies a segmentation snapshot; see Episodizer.Restore.
func (d *Detector) Restore(st EpisodizerState) error { return d.ez.Restore(st) }
