// Package adm implements the paper's anomaly detection model (Section
// IV-B): per-(occupant, zone) clustering of (arrival-time, stay-duration)
// pairs, linearised as convex hulls so the attack analysis can reason about
// membership with the LeftOfLineSegment predicate (Eqs 5-10, Fig 7).
//
// The ADM answers four queries the attack framework depends on:
//
//   - WithinCluster — is a completed stay consistent with learned habits?
//   - MaxStay — the longest stealthy stay for an arrival time (Eq 19).
//   - MinStay — the shortest stealthy stay (Algorithm 1's threshold).
//   - InRangeStay — is a proposed (arrival, stay) pair stealthy? (Eq 20).
package adm

import (
	"errors"
	"fmt"
	"math"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/cluster"
	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/solver"
)

// Algorithm selects the clustering backend.
type Algorithm int

// The two ADM backends the paper evaluates.
const (
	DBSCAN Algorithm = iota + 1
	KMeans
)

// String names the algorithm for table output.
func (a Algorithm) String() string {
	switch a {
	case DBSCAN:
		return "DBSCAN"
	case KMeans:
		return "K-Means"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Config parameterises training.
type Config struct {
	Algorithm Algorithm
	// MinPts and Eps configure DBSCAN (Fig 4a tunes MinPts; the paper works
	// at MinPts = 30). Eps defaults to 20 minutes when zero.
	MinPts int
	Eps    float64
	// K configures K-Means (Fig 4b; the paper works at k = 29). A zone's
	// point count may be below K; the trainer then uses one cluster per
	// distinct point neighbourhood (K clamped to the sample count).
	K int
	// Seed drives K-Means initialisation.
	Seed uint64
}

// DefaultConfig returns the paper's chosen hyperparameters for the backend.
func DefaultConfig(alg Algorithm) Config {
	switch alg {
	case KMeans:
		return Config{Algorithm: KMeans, K: 29, Seed: 7}
	default:
		return Config{Algorithm: DBSCAN, MinPts: 30, Eps: 20, Seed: 7}
	}
}

// key identifies a per-occupant, per-zone model.
type key struct {
	occupant int
	zone     home.ZoneID
}

// Model is a trained ADM for one house.
type Model struct {
	Algorithm Algorithm
	house     *home.House
	// hulls[k] are the convex-hull cluster regions for that occupant/zone.
	hulls map[key][]geometry.Hull
	// trainingPoints retains the raw points for reporting (Fig 6).
	trainingPoints map[key][]geometry.Point
	// memo tabulates the stay queries per occupant/zone over the integer
	// arrival slots of a day — the attack solver's hot path. Built once at
	// Train time, so a trained Model is safe for concurrent readers.
	memo map[key]*zoneMemo
	// bands flattens each occupant's memos into the solver's tabulated
	// oracle (StayBands), also built once at Train time.
	bands []*solver.StayBands
}

// ErrNoData is returned when a trace yields no episodes to train on.
var ErrNoData = errors.New("adm: no training episodes")

// Train fits the ADM on all occupants' episodes in the trace.
func Train(trace *aras.Trace, cfg Config) (*Model, error) {
	m := &Model{
		Algorithm:      cfg.Algorithm,
		house:          trace.House,
		hulls:          make(map[key][]geometry.Hull),
		trainingPoints: make(map[key][]geometry.Point),
		memo:           make(map[key]*zoneMemo),
	}
	if cfg.Eps == 0 {
		cfg.Eps = 20
	}
	trained := false
	for o := range trace.House.Occupants {
		byZone := make(map[home.ZoneID][]geometry.Point)
		total := 0
		for _, e := range trace.Episodes(o) {
			p := geometry.Point{X: float64(e.ArrivalSlot), Y: float64(e.Duration)}
			byZone[e.Zone] = append(byZone[e.Zone], p)
			total++
		}
		for z, pts := range byZone {
			k := key{occupant: o, zone: z}
			m.trainingPoints[k] = pts
			// The paper tunes K-Means' k on the occupant's pooled episode
			// set (Fig 4b); the per-zone models split that budget
			// proportionally to each zone's share of the episodes.
			zoneCfg := cfg
			if cfg.Algorithm == KMeans && total > 0 {
				share := float64(len(pts)) / float64(total)
				zoneCfg.K = int(float64(cfg.K)*share + 0.5)
				if zoneCfg.K < 1 {
					zoneCfg.K = 1
				}
			}
			hulls, err := clusterHulls(pts, zoneCfg)
			if err != nil {
				return nil, fmt.Errorf("adm: occupant %d zone %v: %w", o, z, err)
			}
			m.hulls[k] = hulls
			m.memo[k] = buildZoneMemo(hulls)
			trained = true
		}
	}
	if !trained {
		return nil, ErrNoData
	}
	m.bands = make([]*solver.StayBands, len(trace.House.Occupants))
	for o := range m.bands {
		m.bands[o] = m.buildStayBands(o, len(trace.House.Zones))
	}
	return m, nil
}

// clusterHulls clusters the points and produces one convex hull per
// non-noise cluster (clusters that degenerate to fewer than 1 point are
// dropped).
func clusterHulls(pts []geometry.Point, cfg Config) ([]geometry.Hull, error) {
	var res cluster.Result
	var err error
	switch cfg.Algorithm {
	case DBSCAN:
		res, err = cluster.DBSCAN(pts, cluster.DBSCANParams{Eps: cfg.Eps, MinPts: cfg.MinPts})
	case KMeans:
		k := cfg.K
		if k > len(pts) {
			k = len(pts)
		}
		if k < 1 {
			k = 1
		}
		res, err = cluster.KMeans(pts, k, cfg.Seed)
	default:
		err = fmt.Errorf("unknown algorithm %v", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	hulls := make([]geometry.Hull, 0, res.K)
	for c := 0; c < res.K; c++ {
		members := res.Members(pts, c)
		if len(members) == 0 {
			continue
		}
		h, err := geometry.ConvexHull(members)
		if err != nil {
			continue
		}
		hulls = append(hulls, h)
	}
	return hulls, nil
}

// Hulls returns the cluster hulls for an occupant/zone (nil when the zone
// was never visited in training).
func (m *Model) Hulls(occupant int, zone home.ZoneID) []geometry.Hull {
	return m.hulls[key{occupant: occupant, zone: zone}]
}

// TrainingPoints returns the raw training points for an occupant/zone.
func (m *Model) TrainingPoints(occupant int, zone home.ZoneID) []geometry.Point {
	return m.trainingPoints[key{occupant: occupant, zone: zone}]
}

// WithinCluster reports whether the (arrival, stay) pair falls inside any
// learned cluster hull for the occupant/zone (Eq 9).
func (m *Model) WithinCluster(occupant int, zone home.ZoneID, arrivalSlot, stayMinutes int) bool {
	if zm, ok := m.memoFor(occupant, zone, arrivalSlot); ok {
		return zm.stayWithin(arrivalSlot, stayMinutes)
	}
	p := geometry.Point{X: float64(arrivalSlot), Y: float64(stayMinutes)}
	for _, h := range m.hulls[key{occupant: occupant, zone: zone}] {
		if h.Contains(p) {
			return true
		}
	}
	return false
}

// memoFor returns the stay-query table for the occupant/zone when the
// arrival slot is within its tabulated day range. Out-of-range arrivals
// (callers probing beyond a day boundary) fall back to hull geometry.
func (m *Model) memoFor(occupant int, zone home.ZoneID, arrivalSlot int) (*zoneMemo, bool) {
	if arrivalSlot < 0 || arrivalSlot >= aras.SlotsPerDay {
		return nil, false
	}
	zm := m.memo[key{occupant: occupant, zone: zone}]
	return zm, zm != nil
}

// StayRange returns the union [min, max] of stealthy stay durations for an
// arrival time, and ok=false when no cluster covers the arrival time at
// all. The range may contain gaps between clusters; use InRangeStay to test
// a specific duration.
func (m *Model) StayRange(occupant int, zone home.ZoneID, arrivalSlot int) (minStay, maxStay int, ok bool) {
	if zm, memoOK := m.memoFor(occupant, zone, arrivalSlot); memoOK {
		if !zm.covered[arrivalSlot] {
			return 0, 0, false
		}
		return int(zm.minStay[arrivalSlot]), int(zm.maxStay[arrivalSlot]), true
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	found := false
	for _, h := range m.hulls[key{occupant: occupant, zone: zone}] {
		l, u, in := h.YRangeAtX(float64(arrivalSlot))
		if !in {
			continue
		}
		lo = math.Min(lo, l)
		hi = math.Max(hi, u)
		found = true
	}
	if !found {
		return 0, 0, false
	}
	minStay, maxStay = clampStayRange(lo, hi)
	return minStay, maxStay, true
}

// MaxStay returns the maximum stealthy stay for the arrival time (Eq 19's
// maxStay(.)); ok=false when the arrival itself is anomalous.
func (m *Model) MaxStay(occupant int, zone home.ZoneID, arrivalSlot int) (int, bool) {
	_, maxStay, ok := m.StayRange(occupant, zone, arrivalSlot)
	return maxStay, ok
}

// MinStay returns the minimum stealthy stay for the arrival time
// (Algorithm 1's minStay(.)); ok=false when the arrival is anomalous.
func (m *Model) MinStay(occupant int, zone home.ZoneID, arrivalSlot int) (int, bool) {
	minStay, _, ok := m.StayRange(occupant, zone, arrivalSlot)
	return minStay, ok
}

// InRangeStay reports whether exiting after stayMinutes is stealthy for the
// arrival time (Eq 20's inRangeStay(.)).
func (m *Model) InRangeStay(occupant int, zone home.ZoneID, arrivalSlot, stayMinutes int) bool {
	return m.WithinCluster(occupant, zone, arrivalSlot, stayMinutes)
}

// EpisodeAnomalous classifies a completed episode: outside-zone stays are
// never anomalous (the ADM watches in-home behaviour; "Outside" has its own
// clusters trained like any zone).
func (m *Model) EpisodeAnomalous(e aras.Episode) bool {
	return !m.WithinCluster(e.Occupant, e.Zone, e.ArrivalSlot, e.Duration)
}

// Consistent checks a whole day's occupancy stream for one occupant (Eq 8):
// every episode must fall within a cluster.
func (m *Model) Consistent(episodes []aras.Episode) bool {
	for _, e := range episodes {
		if m.EpisodeAnomalous(e) {
			return false
		}
	}
	return true
}

// HullStats summarises the learned geometry for Fig 6's comparison.
type HullStats struct {
	Clusters  int
	TotalArea float64
	// NoisePruned counts training points not covered by any hull (only
	// DBSCAN prunes points; K-Means covers everything by construction).
	NoisePruned int
}

// Stats aggregates hull geometry across all occupant/zone models.
func (m *Model) Stats() HullStats {
	var s HullStats
	for k, hulls := range m.hulls {
		s.Clusters += len(hulls)
		for _, h := range hulls {
			s.TotalArea += h.Area()
		}
		for _, p := range m.trainingPoints[k] {
			covered := false
			for _, h := range hulls {
				if h.Contains(p) {
					covered = true
					break
				}
			}
			if !covered {
				s.NoisePruned++
			}
		}
	}
	return s
}
