package adm

import (
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/cluster"
	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/stats"
)

// LabeledEpisode is an episode with ground truth for ADM evaluation:
// Attack=true marks adversarially scheduled stays (positives).
type LabeledEpisode struct {
	aras.Episode
	Attack bool
}

// Evaluate classifies each labelled episode with the model (anomalous ⇒
// predicted attack) and returns the confusion matrix behind Table IV and
// Fig 5.
func Evaluate(m *Model, episodes []LabeledEpisode) stats.Confusion {
	var c stats.Confusion
	for _, e := range episodes {
		c.Observe(m.EpisodeAnomalous(e.Episode), e.Attack)
	}
	return c
}

// DetectionRate returns the fraction of attack episodes flagged anomalous —
// the "(60-100)% of BIoTA attack vectors identified" measurement in
// Section VII-A.
func DetectionRate(m *Model, episodes []LabeledEpisode) float64 {
	detected, total := 0, 0
	for _, e := range episodes {
		if !e.Attack {
			continue
		}
		total++
		if m.EpisodeAnomalous(e.Episode) {
			detected++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(detected) / float64(total)
}

// TunePoint is one hyperparameter setting's validity scores (Fig 4).
type TunePoint struct {
	Hyperparameter int
	DaviesBouldin  float64
	Silhouette     float64
	CalinskiHara   float64
}

// TuneDBSCAN sweeps MinPts over [lo, hi] step and scores the clustering of
// one occupant's pooled episode points with the three validity indices
// (Fig 4a).
func TuneDBSCAN(trace *aras.Trace, occupant int, eps float64, lo, hi, step int) []TunePoint {
	pts := pooledPoints(trace, occupant)
	var out []TunePoint
	for mp := lo; mp <= hi; mp += step {
		res, err := cluster.DBSCAN(pts, cluster.DBSCANParams{Eps: eps, MinPts: mp})
		if err != nil {
			continue
		}
		out = append(out, TunePoint{
			Hyperparameter: mp,
			DaviesBouldin:  cluster.DaviesBouldin(pts, res),
			Silhouette:     cluster.Silhouette(pts, res),
			CalinskiHara:   cluster.CalinskiHarabasz(pts, res),
		})
	}
	return out
}

// TuneKMeans sweeps k over [lo, hi] step (Fig 4b).
func TuneKMeans(trace *aras.Trace, occupant int, seed uint64, lo, hi, step int) []TunePoint {
	pts := pooledPoints(trace, occupant)
	var out []TunePoint
	for k := lo; k <= hi; k += step {
		if k > len(pts) {
			break
		}
		res, err := cluster.KMeans(pts, k, seed)
		if err != nil {
			continue
		}
		out = append(out, TunePoint{
			Hyperparameter: k,
			DaviesBouldin:  cluster.DaviesBouldin(pts, res),
			Silhouette:     cluster.Silhouette(pts, res),
			CalinskiHara:   cluster.CalinskiHarabasz(pts, res),
		})
	}
	return out
}

// pooledPoints collects one occupant's (arrival, stay) points across all
// zones, the feature space the paper tunes on.
func pooledPoints(trace *aras.Trace, occupant int) []geometry.Point {
	var pts []geometry.Point
	for _, e := range trace.Episodes(occupant) {
		pts = append(pts, geometry.Point{X: float64(e.ArrivalSlot), Y: float64(e.Duration)})
	}
	return pts
}

// ZoneCoverage reports, per zone, how many stealthy minutes of stay the
// model admits at a given arrival slot — a defender-facing summary of the
// attack surface each zone exposes.
func (m *Model) ZoneCoverage(occupant int, arrivalSlot int) map[home.ZoneID]int {
	out := make(map[home.ZoneID]int)
	for z := range m.house.Zones {
		minS, maxS, ok := m.StayRange(occupant, home.ZoneID(z), arrivalSlot)
		if ok {
			out[home.ZoneID(z)] = maxS - minS
		}
	}
	return out
}
