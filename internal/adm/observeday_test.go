package adm

import (
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// TestObserveDayMatchesObserve pins the column-batched episodizer to the
// per-slot reference: same episodes in the same order, same carried open-stay
// state (checked via snapshots at every day boundary and the final Flush).
func TestObserveDayMatchesObserve(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		house := home.MustHouse(name)
		tr, err := aras.Generate(house, aras.GeneratorConfig{Days: 5, Seed: 321})
		if err != nil {
			t.Fatal(err)
		}
		for o := range house.Occupants {
			slotEz, dayEz := NewEpisodizer(len(house.Occupants)), NewEpisodizer(len(house.Occupants))
			var want, got []aras.Episode
			for d := 0; d < tr.NumDays(); d++ {
				zones, acts := tr.Days[d].Zone[o], tr.Days[d].Act[o]
				for s := 0; s < aras.SlotsPerDay; s++ {
					e, ok, err := slotEz.Observe(d, s, o, zones[s], acts[s])
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						want = append(want, e)
					}
				}
				got, err = dayEz.ObserveDay(d, o, zones, acts, got)
				if err != nil {
					t.Fatal(err)
				}
				sSnap, dSnap := slotEz.Snapshot(), dayEz.Snapshot()
				if !reflect.DeepEqual(sSnap, dSnap) {
					t.Fatalf("house %s occ %d day %d: open-stay state diverged\nslot: %+v\nday:  %+v", name, o, d, sSnap, dSnap)
				}
			}
			want = append(want, slotEz.Flush()...)
			got = append(got, dayEz.Flush()...)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("house %s occ %d: episodes diverged\nslot: %+v\nday:  %+v", name, o, want, got)
			}
		}
	}
}

// TestObserveDayOrdering locks the ordering violations ObserveDay must
// reject exactly as the per-slot path would.
func TestObserveDayOrdering(t *testing.T) {
	zones := make([]home.ZoneID, aras.SlotsPerDay)
	acts := make([]home.ActivityID, aras.SlotsPerDay)
	ez := NewEpisodizer(1)
	if _, err := ez.ObserveDay(1, 0, zones, acts, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ez.ObserveDay(1, 0, zones, acts, nil); err == nil {
		t.Error("replayed day accepted")
	}
	if _, err := ez.ObserveDay(0, 0, zones, acts, nil); err == nil {
		t.Error("backward day accepted")
	}
	if _, err := ez.ObserveDay(2, 1, zones, acts, nil); err == nil {
		t.Error("out-of-range occupant accepted")
	}
	if _, err := ez.ObserveDay(2, 0, zones[:10], acts[:10], nil); err == nil {
		t.Error("short columns accepted")
	}
}

// TestDetectorObserveDayMatches pins the batched detector to its per-slot
// verdicts on a trained model.
func TestDetectorObserveDayMatches(t *testing.T) {
	house := home.MustHouse("A")
	tr, err := aras.Generate(house, aras.GeneratorConfig{Days: 6, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	train, err := tr.SubTrace(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(DBSCAN)
	cfg.MinPts = 3
	cfg.Eps = 30
	model, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	slotDet, dayDet := NewDetector(model), NewDetector(model)
	var want, got []Verdict
	for d := 0; d < tr.NumDays(); d++ {
		for o := range house.Occupants {
			zones, acts := tr.Days[d].Zone[o], tr.Days[d].Act[o]
			for s := 0; s < aras.SlotsPerDay; s++ {
				v, ok, err := slotDet.Observe(d, s, o, zones[s], acts[s])
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					want = append(want, v)
				}
			}
			got, err = dayDet.ObserveDay(d, o, zones, acts, got)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	want = append(want, slotDet.Flush()...)
	got = append(got, dayDet.Flush()...)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("verdicts diverged: %d slot vs %d day", len(want), len(got))
	}
}
