package adm

import (
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/home"
)

// geometryWithin is the pre-memo reference implementation of WithinCluster:
// a direct hull-membership test.
func geometryWithin(m *Model, occupant int, zone home.ZoneID, arrival, stay int) bool {
	p := geometry.Point{X: float64(arrival), Y: float64(stay)}
	for _, h := range m.hulls[key{occupant: occupant, zone: zone}] {
		if h.Contains(p) {
			return true
		}
	}
	return false
}

// geometryStayRange is the pre-memo reference implementation of StayRange.
func geometryStayRange(m *Model, occupant int, zone home.ZoneID, arrival int) (int, int, bool) {
	save := m.memo
	m.memo = nil
	defer func() { m.memo = save }()
	return m.StayRange(occupant, zone, arrival)
}

// TestMemoMatchesGeometry asserts the tabulated stay queries agree with the
// direct hull geometry across the full integer query surface the attack
// solver exercises.
func TestMemoMatchesGeometry(t *testing.T) {
	for _, alg := range []Algorithm{DBSCAN, KMeans} {
		m, _ := trainedModel(t, alg, 20)
		for o := 0; o < 2; o++ {
			for z := home.ZoneID(0); z < home.NumZones; z++ {
				for arr := 0; arr < aras.SlotsPerDay; arr += 7 {
					gMin, gMax, gOK := geometryStayRange(m, o, z, arr)
					mMin, mMax, mOK := m.StayRange(o, z, arr)
					if gOK != mOK || gMin != mMin || gMax != mMax {
						t.Fatalf("%v o=%d z=%v arr=%d: StayRange memo (%d,%d,%v) != geometry (%d,%d,%v)",
							alg, o, z, arr, mMin, mMax, mOK, gMin, gMax, gOK)
					}
					if !gOK {
						continue
					}
					for _, stay := range []int{0, 1, gMin - 1, gMin, (gMin + gMax) / 2, gMax, gMax + 1, gMax + 60} {
						if stay < 0 {
							continue
						}
						if got, want := m.WithinCluster(o, z, arr, stay), geometryWithin(m, o, z, arr, stay); got != want {
							t.Fatalf("%v o=%d z=%v arr=%d stay=%d: memo %v != geometry %v",
								alg, o, z, arr, stay, got, want)
						}
					}
				}
			}
		}
	}
}

// TestMemoOutOfRangeArrival checks the geometry fallback for arrivals
// outside the tabulated day range.
func TestMemoOutOfRangeArrival(t *testing.T) {
	m, _ := trainedModel(t, KMeans, 20)
	if _, _, ok := m.StayRange(0, home.Bedroom, -5); ok {
		t.Error("negative arrival should be uncovered")
	}
	if _, _, ok := m.StayRange(0, home.Bedroom, aras.SlotsPerDay+100); ok {
		t.Error("past-midnight arrival should be uncovered")
	}
}
