package adm

import (
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/solver"
)

// geometryWithin is the pre-memo reference implementation of WithinCluster:
// a direct hull-membership test.
func geometryWithin(m *Model, occupant int, zone home.ZoneID, arrival, stay int) bool {
	p := geometry.Point{X: float64(arrival), Y: float64(stay)}
	for _, h := range m.hulls[key{occupant: occupant, zone: zone}] {
		if h.Contains(p) {
			return true
		}
	}
	return false
}

// geometryStayRange is the pre-memo reference implementation of StayRange.
func geometryStayRange(m *Model, occupant int, zone home.ZoneID, arrival int) (int, int, bool) {
	save := m.memo
	m.memo = nil
	defer func() { m.memo = save }()
	return m.StayRange(occupant, zone, arrival)
}

// TestMemoMatchesGeometry asserts the tabulated stay queries agree with the
// direct hull geometry across the full integer query surface the attack
// solver exercises.
func TestMemoMatchesGeometry(t *testing.T) {
	for _, alg := range []Algorithm{DBSCAN, KMeans} {
		m, _ := trainedModel(t, alg, 20)
		for o := 0; o < 2; o++ {
			for z := home.ZoneID(0); z < home.NumZones; z++ {
				for arr := 0; arr < aras.SlotsPerDay; arr += 7 {
					gMin, gMax, gOK := geometryStayRange(m, o, z, arr)
					mMin, mMax, mOK := m.StayRange(o, z, arr)
					if gOK != mOK || gMin != mMin || gMax != mMax {
						t.Fatalf("%v o=%d z=%v arr=%d: StayRange memo (%d,%d,%v) != geometry (%d,%d,%v)",
							alg, o, z, arr, mMin, mMax, mOK, gMin, gMax, gOK)
					}
					if !gOK {
						continue
					}
					for _, stay := range []int{0, 1, gMin - 1, gMin, (gMin + gMax) / 2, gMax, gMax + 1, gMax + 60} {
						if stay < 0 {
							continue
						}
						if got, want := m.WithinCluster(o, z, arr, stay), geometryWithin(m, o, z, arr, stay); got != want {
							t.Fatalf("%v o=%d z=%v arr=%d stay=%d: memo %v != geometry %v",
								alg, o, z, arr, stay, got, want)
						}
					}
				}
			}
		}
	}
}

// TestMemoOutOfRangeArrival checks the geometry fallback for arrivals
// outside the tabulated day range.
func TestMemoOutOfRangeArrival(t *testing.T) {
	m, _ := trainedModel(t, KMeans, 20)
	if _, _, ok := m.StayRange(0, home.Bedroom, -5); ok {
		t.Error("negative arrival should be uncovered")
	}
	if _, _, ok := m.StayRange(0, home.Bedroom, aras.SlotsPerDay+100); ok {
		t.Error("past-midnight arrival should be uncovered")
	}
}

// TestStayBandsMatchModel locks the exported flattened table to the Model's
// own oracle across the full in-day query surface: identical coverage,
// stay-range bounds, and gap-aware in-range decisions for every occupant,
// zone, and arrival slot.
func TestStayBandsMatchModel(t *testing.T) {
	for _, alg := range []Algorithm{DBSCAN, KMeans} {
		m, tr := trainedModel(t, alg, 20)
		for o := range tr.House.Occupants {
			b := m.StayBands(o)
			if b == nil {
				t.Fatalf("%v: no bands for occupant %d", alg, o)
			}
			for z := home.ZoneID(0); int(z) < len(tr.House.Zones); z++ {
				for arr := 0; arr < aras.SlotsPerDay; arr += 11 {
					wantMax, wantOK := m.MaxStay(o, z, arr)
					gotMax, gotOK := b.MaxStayAt(z, arr)
					if gotOK != wantOK || (wantOK && gotMax != wantMax) {
						t.Fatalf("%v o=%d z=%v arr=%d: bands MaxStay (%d,%v) != model (%d,%v)",
							alg, o, z, arr, gotMax, gotOK, wantMax, wantOK)
					}
					wantMin, wantMinOK := m.MinStay(o, z, arr)
					gotMin, gotMinOK := b.MinStayAt(z, arr)
					if gotMinOK != wantMinOK || (wantMinOK && gotMin != wantMin) {
						t.Fatalf("%v o=%d z=%v arr=%d: bands MinStay (%d,%v) != model (%d,%v)",
							alg, o, z, arr, gotMin, gotMinOK, wantMin, wantMinOK)
					}
					for _, stay := range []int{0, 1, gotMin, (gotMin + gotMax) / 2, gotMax, gotMax + 1, gotMax + 45} {
						if stay < 0 {
							continue
						}
						if got, want := b.InRange(z, arr, stay), m.InRangeStay(o, z, arr, stay); got != want {
							t.Fatalf("%v o=%d z=%v arr=%d stay=%d: bands InRange %v != model %v",
								alg, o, z, arr, stay, got, want)
						}
					}
				}
			}
		}
	}
	m, _ := trainedModel(t, KMeans, 12)
	if m.StayBands(-1) != nil || m.StayBands(99) != nil {
		t.Error("out-of-range occupants should have nil bands")
	}
}

// TestBandsDPMatchesModelDP cross-validates the solver's tabulated-oracle
// pass against the interface pass on a real trained model: the planner's
// window problem must produce identical schedules either way.
func TestBandsDPMatchesModelDP(t *testing.T) {
	m, tr := trainedModel(t, KMeans, 20)
	zones := make([]home.ZoneID, len(tr.House.Zones))
	for i := range zones {
		zones[i] = home.ZoneID(i)
	}
	cost := func(slot int, z home.ZoneID) float64 {
		if !z.Conditioned() {
			return 0
		}
		return float64(int(z)*7%5) + float64(slot%13)/13
	}
	allowed := func(int, home.ZoneID) bool { return true }
	var wsA, wsB solver.Workspace
	for o := range tr.House.Occupants {
		b := m.StayBands(o)
		for start := 0; start+10 <= aras.SlotsPerDay; start += 97 {
			w := solver.Window{
				Occupant:  o,
				StartSlot: start, Length: 10,
				StartZone: home.Bedroom, StartArrival: start,
				Zones: zones,
			}
			sa, sta, errA := solver.OptimizeWindowWS(&wsA, w, m, cost, allowed)
			sb, stb, errB := solver.OptimizeWindowBands(&wsB, w, b, cost, allowed)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("o=%d start=%d: error mismatch %v vs %v", o, start, errA, errB)
			}
			if errA != nil {
				continue
			}
			if sta != stb || sa.Feasible != sb.Feasible || sa.Value != sb.Value ||
				sa.EndZone != sb.EndZone || sa.EndArrival != sb.EndArrival ||
				!reflect.DeepEqual(sa.Zones, sb.Zones) {
				t.Fatalf("o=%d start=%d: band DP diverges from model DP:\nmodel: %+v %+v\nbands: %+v %+v",
					o, start, sa, sta, sb, stb)
			}
		}
	}
}
