package attack

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// Plan is a complete falsified-measurement campaign over a trace: the
// occupancy/activity stream the attacker reports to the control system plus
// any appliances really triggered by inaudible voice commands.
type Plan struct {
	// Strategy names the generator ("BIoTA", "Greedy", "SHATTER").
	Strategy string
	// RepZone[d][o][t] is the reported zone of occupant o at slot t, day d.
	RepZone [][][]home.ZoneID
	// RepAct[d][o][t] is the reported activity.
	RepAct [][][]home.ActivityID
	// Triggered[d][a][t] marks appliance a really switched on by the
	// attacker at slot t of day d (Algorithm 1).
	Triggered [][][]bool
	// InfeasibleWindows counts optimisation windows that fell back to
	// truth-telling because no stealthy schedule existed.
	InfeasibleWindows int
}

// newPlan allocates a truth-telling plan (reported = actual) to be edited
// by the strategies.
func newPlan(trace *aras.Trace, strategy string) *Plan {
	days := trace.NumDays()
	p := &Plan{
		Strategy:  strategy,
		RepZone:   make([][][]home.ZoneID, days),
		RepAct:    make([][][]home.ActivityID, days),
		Triggered: make([][][]bool, days),
	}
	for d := 0; d < days; d++ {
		occ := len(trace.House.Occupants)
		p.RepZone[d] = make([][]home.ZoneID, occ)
		p.RepAct[d] = make([][]home.ActivityID, occ)
		for o := 0; o < occ; o++ {
			p.RepZone[d][o] = append([]home.ZoneID(nil), trace.Days[d].Zone[o]...)
			p.RepAct[d][o] = append([]home.ActivityID(nil), trace.Days[d].Act[o]...)
		}
		p.Triggered[d] = make([][]bool, len(trace.House.Appliances))
		for a := range p.Triggered[d] {
			p.Triggered[d][a] = make([]bool, aras.SlotsPerDay)
		}
	}
	return p
}

// CloneForTriggering returns a copy of the plan that shares the reported
// occupancy/activity streams (immutable once planning completes) but
// carries fresh, empty Triggered grids. Algorithm 1 can then mark triggers
// on the copy while the original remains a cacheable untriggered campaign.
func (p *Plan) CloneForTriggering() *Plan {
	out := &Plan{
		Strategy:          p.Strategy,
		RepZone:           p.RepZone,
		RepAct:            p.RepAct,
		Triggered:         make([][][]bool, len(p.Triggered)),
		InfeasibleWindows: p.InfeasibleWindows,
	}
	for d := range p.Triggered {
		out.Triggered[d] = make([][]bool, len(p.Triggered[d]))
		for a := range p.Triggered[d] {
			out.Triggered[d][a] = make([]bool, len(p.Triggered[d][a]))
		}
	}
	return out
}

// setReport records a falsified observation, choosing the activity: the
// truth when the zone is truthful, otherwise the most intense activity of
// the reported zone (maximum demand, Algorithm 2's G-maximising choice).
func (p *Plan) setReport(trace *aras.Trace, day, occupant, slot int, z home.ZoneID) {
	actual := trace.Days[day].Zone[occupant][slot]
	p.RepZone[day][occupant][slot] = z
	if z == actual {
		p.RepAct[day][occupant][slot] = trace.Days[day].Act[occupant][slot]
		return
	}
	if z.Conditioned() {
		p.RepAct[day][occupant][slot] = trace.House.MostIntenseActivity(z)
	} else {
		p.RepAct[day][occupant][slot] = home.GoingOut
	}
}

// InjectedSlots counts occupant-slots whose reported zone differs from the
// actual zone — the attack vector's footprint.
func (p *Plan) InjectedSlots(trace *aras.Trace) int {
	n := 0
	for d := range p.RepZone {
		for o := range p.RepZone[d] {
			for t, z := range p.RepZone[d][o] {
				if z != trace.Days[d].Zone[o][t] {
					n++
				}
			}
		}
	}
	return n
}

// TriggeredSlots counts appliance-slots the attacker really switched on.
func (p *Plan) TriggeredSlots() int {
	n := 0
	for d := range p.Triggered {
		for a := range p.Triggered[d] {
			for _, on := range p.Triggered[d][a] {
				if on {
					n++
				}
			}
		}
	}
	return n
}

// ReportedEpisodes converts the reported occupancy stream of one day and
// occupant into episodes (the stream the ADM checks). Injected marks an
// episode whose (zone, arrival, duration) does not occur in the actual
// stream — covering both directly falsified stays and stays distorted by
// neighbouring injections; episodes matching reality exactly are the
// defender's ordinary false-positive surface, not attack artefacts.
type ReportedEpisode struct {
	aras.Episode
	Injected bool
}

// DayReportedEpisodes extracts episodes from the reported stream.
func (p *Plan) DayReportedEpisodes(trace *aras.Trace, day, occupant int) []ReportedEpisode {
	return p.appendDayReportedEpisodes(nil, trace, day, occupant, naturalEpisodeSet(trace, day, occupant))
}

// naturalEpisodeSet indexes the actual stream's (zone, arrival, duration)
// triples for one occupant-day. Callers that re-extract reported episodes
// repeatedly (the sanitisation fixpoint) build it once and reuse it.
func naturalEpisodeSet(trace *aras.Trace, day, occupant int) map[[3]int]bool {
	natural := make(map[[3]int]bool)
	for _, e := range trace.DayEpisodes(day, occupant) {
		natural[[3]int{int(e.Zone), e.ArrivalSlot, e.Duration}] = true
	}
	return natural
}

// appendDayReportedEpisodes appends the day's reported episodes to buf,
// classifying injection against the prebuilt natural set.
func (p *Plan) appendDayReportedEpisodes(buf []ReportedEpisode, trace *aras.Trace, day, occupant int, natural map[[3]int]bool) []ReportedEpisode {
	zones := p.RepZone[day][occupant]
	start := 0
	for t := 1; t <= aras.SlotsPerDay; t++ {
		if t < aras.SlotsPerDay && zones[t] == zones[start] {
			continue
		}
		ep := aras.Episode{
			Day:         day,
			Occupant:    occupant,
			Zone:        zones[start],
			ArrivalSlot: start,
			Duration:    t - start,
		}
		buf = append(buf, ReportedEpisode{
			Episode:  ep,
			Injected: !natural[[3]int{int(ep.Zone), ep.ArrivalSlot, ep.Duration}],
		})
		if t < aras.SlotsPerDay {
			start = t
		}
	}
	return buf
}

// View adapts the plan into the hvac.View the attacked controller consumes:
// reported occupancy/activity, and appliance status including really
// triggered appliances (their status sensors read "on" because they are on).
// The observation buffer is reused across Occupants calls, so an instance
// must not be shared between concurrent simulations.
type View struct {
	trace *aras.Trace
	plan  *Plan

	obs []hvac.OccupantObs
}

var _ hvac.View = (*View)(nil)

// ErrNilPlan guards View construction.
var ErrNilPlan = errors.New("attack: nil plan or trace")

// NewView builds the falsified controller view.
func NewView(trace *aras.Trace, plan *Plan) (*View, error) {
	if trace == nil || plan == nil {
		return nil, ErrNilPlan
	}
	return &View{trace: trace, plan: plan}, nil
}

// Occupants implements hvac.View. The returned slice is valid until the
// next call.
func (v *View) Occupants(day, slot int) []hvac.OccupantObs {
	occ := len(v.plan.RepZone[day])
	if cap(v.obs) < occ {
		v.obs = make([]hvac.OccupantObs, occ)
	}
	obs := v.obs[:occ]
	for o := 0; o < occ; o++ {
		obs[o] = hvac.OccupantObs{
			Zone:     v.plan.RepZone[day][o][slot],
			Activity: v.plan.RepAct[day][o][slot],
		}
	}
	return obs
}

// ApplianceOn implements hvac.View. Beyond the real statuses (including
// really-triggered appliances), the attacker injects δ^D false status
// measurements consistent with the reported activities: an occupant
// reported PreparingDinner comes with the oven and microwave reading "on"
// (the activity-appliance relationship makes the story self-consistent),
// so the controller supplies cooling for their heat.
func (v *View) ApplianceOn(day, slot, appliance int) bool {
	if v.trace.Days[day].Appliance[appliance][slot] || v.plan.Triggered[day][appliance][slot] {
		return true
	}
	appl := v.trace.House.Appliances[appliance]
	for o := range v.plan.RepZone[day] {
		z := v.plan.RepZone[day][o][slot]
		if z != appl.Zone || z == v.trace.Days[day].Zone[o][slot] {
			continue // only falsified presences carry forged statuses
		}
		for _, ai := range v.trace.House.AppliancesForActivity(v.plan.RepAct[day][o][slot]) {
			if ai == appliance {
				return true
			}
		}
	}
	return false
}

// ActualApplianceOn reports the true electrical state (trace plus really
// triggered appliances) for energy accounting. Forged δ^D statuses are
// beliefs only — they make the controller move air, but draw no power
// themselves.
func (v *View) ActualApplianceOn(day, slot, appliance int) bool {
	return v.trace.Days[day].Appliance[appliance][slot] ||
		v.plan.Triggered[day][appliance][slot]
}
