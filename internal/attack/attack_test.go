package attack

import (
	"math"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// fixture bundles a trained world for attack tests: a 12-day trace with the
// ADM trained on it.
type fixture struct {
	trace   *aras.Trace
	model   *adm.Model
	cost    *hvac.CostModel
	params  hvac.Params
	pricing hvac.Pricing
	ctrl    hvac.Controller
}

func newFixture(t *testing.T, houseName string, days int) *fixture {
	t.Helper()
	h := home.MustHouse(houseName)
	tr, err := aras.Generate(h, aras.GeneratorConfig{Days: days, Seed: 777})
	if err != nil {
		t.Fatal(err)
	}
	cfg := adm.Config{Algorithm: adm.KMeans, K: 24, Seed: 3}
	model, err := adm.Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := hvac.DefaultParams()
	pricing := hvac.DefaultPricing()
	return &fixture{
		trace:   tr,
		model:   model,
		cost:    hvac.NewCostModel(h, params, pricing),
		params:  params,
		pricing: pricing,
		ctrl:    &hvac.SHATTERController{Params: params},
	}
}

func (f *fixture) planner(cap Capability) *Planner {
	return &Planner{Trace: f.trace, Model: f.model, Cost: f.cost, Cap: cap, WindowLen: 10}
}

func TestCapabilityFull(t *testing.T) {
	h := home.MustHouse("A")
	c := Full(h)
	if !c.CanReport(0, 100, home.Bedroom, home.Kitchen) {
		t.Error("full capability should allow any report")
	}
	if !c.CanTrigger(0, 100) {
		t.Error("full capability should allow any trigger")
	}
}

func TestCapabilityTruthAlwaysAllowed(t *testing.T) {
	c := Capability{} // no access at all
	if !c.CanReport(0, 100, home.Bedroom, home.Bedroom) {
		t.Error("reporting the truth requires no access")
	}
	if c.CanReport(0, 100, home.Bedroom, home.Kitchen) {
		t.Error("no-access attacker cannot falsify")
	}
}

func TestCapabilityZoneRestriction(t *testing.T) {
	h := home.MustHouse("A")
	c := Full(h).WithZones(home.Bedroom, home.Livingroom)
	// Reporting Bedroom→Livingroom OK (both accessible).
	if !c.CanReport(0, 10, home.Bedroom, home.Livingroom) {
		t.Error("both-accessible report should pass")
	}
	// Kitchen sensors unreachable: cannot report into the kitchen...
	if c.CanReport(0, 10, home.Bedroom, home.Kitchen) {
		t.Error("report into inaccessible zone should fail")
	}
	// ...nor move someone who is really in the kitchen.
	if c.CanReport(0, 10, home.Kitchen, home.Bedroom) {
		t.Error("report out of inaccessible zone should fail")
	}
	// Outside needs no sensors.
	if !c.CanReport(0, 10, home.Bedroom, home.Outside) {
		t.Error("reporting Outside should only need actual-zone access")
	}
}

func TestCapabilitySlotRestriction(t *testing.T) {
	h := home.MustHouse("A")
	c := Full(h)
	c.SlotAllowed = func(slot int) bool { return slot >= 600 }
	if c.CanReport(0, 100, home.Bedroom, home.Kitchen) {
		t.Error("slot outside T^A should fail")
	}
	if !c.CanReport(0, 700, home.Bedroom, home.Kitchen) {
		t.Error("slot inside T^A should pass")
	}
	if c.CanTrigger(0, 100) {
		t.Error("trigger outside T^A should fail")
	}
}

func TestCapabilityOccupantRestriction(t *testing.T) {
	h := home.MustHouse("A")
	c := Full(h).WithOccupants(1)
	if c.CanReport(0, 100, home.Bedroom, home.Kitchen) {
		t.Error("occupant 0 stream not accessible")
	}
	if !c.CanReport(1, 100, home.Bedroom, home.Kitchen) {
		t.Error("occupant 1 stream accessible")
	}
}

func TestPlanRequiresModel(t *testing.T) {
	f := newFixture(t, "A", 6)
	pl := &Planner{Trace: f.trace, Cost: f.cost, Cap: Full(f.trace.House)}
	if _, err := pl.PlanSHATTER(); err == nil {
		t.Error("PlanSHATTER without model should error")
	}
	if _, err := pl.PlanGreedy(); err == nil {
		t.Error("PlanGreedy without model should error")
	}
}

func TestSHATTERPlanIncreasesCost(t *testing.T) {
	f := newFixture(t, "A", 8)
	pl := f.planner(Full(f.trace.House))
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	if plan.InjectedSlots(f.trace) == 0 {
		t.Fatal("SHATTER plan injected nothing")
	}
	imp, err := EvaluateImpact(f.trace, plan, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if imp.ExtraCostUSD <= 0 {
		t.Fatalf("attack should raise cost, extra = %v", imp.ExtraCostUSD)
	}
}

func TestSHATTERPlanStealthyAgainstOwnModel(t *testing.T) {
	f := newFixture(t, "A", 8)
	pl := f.planner(Full(f.trace.House))
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	imp, err := EvaluateImpact(f.trace, plan, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// With full knowledge (attacker model == defender model) the schedule
	// must be essentially undetectable.
	if imp.DetectionRate > 0.05 {
		t.Errorf("full-knowledge SHATTER detection rate = %v, want ~0", imp.DetectionRate)
	}
}

func TestSHATTERBeatsGreedy(t *testing.T) {
	f := newFixture(t, "A", 8)
	pl := f.planner(Full(f.trace.House))
	shatter, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := pl.PlanGreedy()
	if err != nil {
		t.Fatal(err)
	}
	impS, err := EvaluateImpact(f.trace, shatter, f.model, f.ctrl, f.params, f.pricing, EvalOptions{AbortDetectedDays: true})
	if err != nil {
		t.Fatal(err)
	}
	impG, err := EvaluateImpact(f.trace, greedy, f.model, f.ctrl, f.params, f.pricing, EvalOptions{AbortDetectedDays: true})
	if err != nil {
		t.Fatal(err)
	}
	if impS.Attacked.TotalCostUSD < impG.Attacked.TotalCostUSD {
		t.Errorf("SHATTER (%v) should be >= greedy (%v)",
			impS.Attacked.TotalCostUSD, impG.Attacked.TotalCostUSD)
	}
}

func TestBIoTAHighCostHighDetection(t *testing.T) {
	f := newFixture(t, "A", 8)
	pl := f.planner(Full(f.trace.House))
	biota, err := pl.PlanBIoTA()
	if err != nil {
		t.Fatal(err)
	}
	shatter, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	impB, err := EvaluateImpact(f.trace, biota, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	impS, err := EvaluateImpact(f.trace, shatter, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// BIoTA, unconstrained by the ADM, racks up at least as much raw cost...
	if impB.Attacked.TotalCostUSD < impS.Attacked.TotalCostUSD {
		t.Errorf("BIoTA raw cost (%v) should be >= SHATTER (%v)",
			impB.Attacked.TotalCostUSD, impS.Attacked.TotalCostUSD)
	}
	// ...but the ADM catches the majority of its vectors (60-100% in the
	// paper).
	if impB.DetectionRate < 0.5 {
		t.Errorf("BIoTA detection rate = %v, want >= 0.5", impB.DetectionRate)
	}
	if impS.DetectionRate >= impB.DetectionRate {
		t.Errorf("SHATTER detection (%v) should be below BIoTA (%v)",
			impS.DetectionRate, impB.DetectionRate)
	}
}

func TestTriggerAddsImpact(t *testing.T) {
	f := newFixture(t, "A", 8)
	cap := Full(f.trace.House)
	pl := f.planner(cap)
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	impNoTrig, err := EvaluateImpact(f.trace, plan, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := TriggerAppliances(f.trace, plan, f.model, cap)
	if n == 0 {
		t.Fatal("no appliances triggered")
	}
	if plan.TriggeredSlots() != n {
		t.Errorf("TriggeredSlots %d != reported %d", plan.TriggeredSlots(), n)
	}
	impTrig, err := EvaluateImpact(f.trace, plan, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if impTrig.Attacked.TotalCostUSD <= impNoTrig.Attacked.TotalCostUSD {
		t.Errorf("triggering should add cost: %v vs %v",
			impTrig.Attacked.TotalCostUSD, impNoTrig.Attacked.TotalCostUSD)
	}
	plan.ClearTriggers()
	if plan.TriggeredSlots() != 0 {
		t.Error("ClearTriggers left residue")
	}
}

func TestTriggerRespectsOccupancyAndCapability(t *testing.T) {
	f := newFixture(t, "A", 6)
	cap := Full(f.trace.House).WithAppliances(0) // oven only
	pl := f.planner(cap)
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	TriggerAppliances(f.trace, plan, f.model, cap)
	for d := range plan.Triggered {
		for a := range plan.Triggered[d] {
			for tslot, on := range plan.Triggered[d][a] {
				if !on {
					continue
				}
				if a != 0 {
					t.Fatalf("triggered inaccessible appliance %d", a)
				}
				z := f.trace.House.Appliances[a].Zone
				if zoneActuallyOccupied(f.trace, d, tslot, z) {
					t.Fatalf("triggered %v while really occupied (day %d slot %d)", z, d, tslot)
				}
			}
		}
	}
}

func TestZoneRestrictionReducesImpact(t *testing.T) {
	f := newFixture(t, "A", 8)
	full := Full(f.trace.House)
	restricted := full.WithZones(home.Bedroom, home.Livingroom)
	planFull, err := f.planner(full).PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	planRestr, err := f.planner(restricted).PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	impFull, err := EvaluateImpact(f.trace, planFull, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	impRestr, err := EvaluateImpact(f.trace, planRestr, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if impRestr.ExtraCostUSD >= impFull.ExtraCostUSD {
		t.Errorf("2-zone impact (%v) should be below 4-zone impact (%v)",
			impRestr.ExtraCostUSD, impFull.ExtraCostUSD)
	}
}

func TestAbortDetectedDaysLowersCost(t *testing.T) {
	f := newFixture(t, "A", 8)
	pl := f.planner(Full(f.trace.House))
	biota, err := pl.PlanBIoTA()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EvaluateImpact(f.trace, biota, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aborted, err := EvaluateImpact(f.trace, biota, f.model, f.ctrl, f.params, f.pricing, EvalOptions{AbortDetectedDays: true})
	if err != nil {
		t.Fatal(err)
	}
	if aborted.Attacked.TotalCostUSD >= raw.Attacked.TotalCostUSD {
		t.Errorf("aborting detected days should cut cost: %v vs %v",
			aborted.Attacked.TotalCostUSD, raw.Attacked.TotalCostUSD)
	}
	if aborted.DetectedDays == 0 {
		t.Error("BIoTA should have detected days")
	}
}

func TestReportedEpisodesPartition(t *testing.T) {
	f := newFixture(t, "A", 6)
	pl := f.planner(Full(f.trace.House))
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < f.trace.NumDays(); d++ {
		for o := range f.trace.House.Occupants {
			total := 0
			for _, e := range plan.DayReportedEpisodes(f.trace, d, o) {
				total += e.Duration
			}
			if total != aras.SlotsPerDay {
				t.Fatalf("day %d occ %d: episodes cover %d slots", d, o, total)
			}
		}
	}
}

func TestSensorDeltas(t *testing.T) {
	f := newFixture(t, "A", 6)
	pl := f.planner(Full(f.trace.House))
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	// Find a day the plan actually falsifies.
	day := -1
	for d := 0; d < f.trace.NumDays() && day < 0; d++ {
		for o := range f.trace.House.Occupants {
			for tt := 0; tt < aras.SlotsPerDay; tt++ {
				if plan.RepZone[d][o][tt] != f.trace.Days[d].Zone[o][tt] {
					day = d
					break
				}
			}
		}
	}
	if day < 0 {
		t.Fatal("plan injected nothing")
	}
	deltas, err := SensorDeltas(f.trace, plan, f.ctrl, f.params, day)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != aras.SlotsPerDay {
		t.Fatalf("deltas rows = %d", len(deltas))
	}
	// The attack must require non-trivial CO2 injection somewhere.
	maxAbs := 0.0
	for _, row := range deltas {
		for _, v := range row {
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
	}
	if maxAbs < 1 {
		t.Errorf("max |δC| = %v ppm on day %d; expected a visible injection", maxAbs, day)
	}
	if _, err := SensorDeltas(f.trace, plan, f.ctrl, f.params, 99); err == nil {
		t.Error("bad day should error")
	}
}

func TestNewViewNil(t *testing.T) {
	if _, err := NewView(nil, nil); err == nil {
		t.Error("nil args should error")
	}
}

func TestNoCapabilityNoInjection(t *testing.T) {
	f := newFixture(t, "A", 4)
	pl := f.planner(Capability{}) // powerless attacker
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.InjectedSlots(f.trace); got != 0 {
		t.Errorf("powerless attacker injected %d slots", got)
	}
	imp, err := EvaluateImpact(f.trace, plan, f.model, f.ctrl, f.params, f.pricing, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imp.ExtraCostUSD) > 1e-9 {
		t.Errorf("powerless attack changed cost by %v", imp.ExtraCostUSD)
	}
}

// TestPlannerWorkersDeterministic asserts the planner's fan-out contract:
// for every strategy, a Workers=1 plan and a wide-pool plan are identical,
// occupant-slot for occupant-slot. CI runs this under -race to certify the
// occupant-day cells really are independent.
func TestPlannerWorkersDeterministic(t *testing.T) {
	f := newFixture(t, "A", 8)
	for _, tc := range []struct {
		name string
		plan func(pl *Planner) (*Plan, error)
	}{
		{"SHATTER", (*Planner).PlanSHATTER},
		{"Greedy", (*Planner).PlanGreedy},
		{"BIoTA", (*Planner).PlanBIoTA},
	} {
		seqPl := f.planner(Full(f.trace.House))
		seqPl.Workers = 1
		seq, err := tc.plan(seqPl)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		parPl := f.planner(Full(f.trace.House))
		parPl.Workers = 8
		par, err := tc.plan(parPl)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: Workers=1 and Workers=8 plans diverge", tc.name)
		}
	}
}

// TestPlannerOccupantDayAllocBounds is the allocation-regression gate for
// the planning hot path: a warm re-plan must stay within a fixed allocation
// budget per occupant-day (the residue is the plan skeleton, the per-cell
// closures, and the sanitisation ledger — the ~144 DP windows themselves
// allocate nothing).
func TestPlannerOccupantDayAllocBounds(t *testing.T) {
	f := newFixture(t, "A", 8)
	pl := f.planner(Full(f.trace.House))
	pl.Workers = 1 // AllocsPerRun needs the single-goroutine path
	cells := float64(f.trace.NumDays() * len(f.trace.House.Occupants))
	for _, tc := range []struct {
		name   string
		plan   func() error
		budget float64 // allocs per occupant-day, ~2x measured headroom
	}{
		{"SHATTER", func() error { _, err := pl.PlanSHATTER(); return err }, 120},
		{"Greedy", func() error { _, err := pl.PlanGreedy(); return err }, 110},
	} {
		if err := tc.plan(); err != nil { // warm-up
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if err := tc.plan(); err != nil {
				t.Fatal(err)
			}
		})
		if perCell := allocs / cells; perCell > tc.budget {
			t.Errorf("%s: %.1f allocs per occupant-day, budget %.0f", tc.name, perCell, tc.budget)
		}
	}
}
