package attack

import (
	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// TriggerAppliances implements Algorithm 1 (Revised Appliance Triggering
// Decision): while the attack schedule reports an occupant freshly arrived
// in a zone — within the ADM's minimum stealthy stay for that arrival — and
// the zone is really unoccupied (Eq 16's stealthiness against occupants),
// the attacker voice-triggers the accessible appliances installed there.
// The triggered appliances really draw power and their status sensors read
// "on", so the controller also supplies extra cooling for their heat.
//
// It returns the number of appliance-slots triggered and mutates
// plan.Triggered in place.
func TriggerAppliances(trace *aras.Trace, plan *Plan, model *adm.Model, cap Capability) int {
	if model == nil {
		return 0
	}
	total := 0
	for d := 0; d < trace.NumDays(); d++ {
		for o := range trace.House.Occupants {
			zones := plan.RepZone[d][o]
			arrival := 0
			thresh := 0
			for t := 0; t < aras.SlotsPerDay; t++ {
				if t == 0 || zones[t] != zones[t-1] {
					// Arrival event (E^A): refresh the stealthy-trigger
					// window from the ADM's minimum stay.
					arrival = t
					if mn, ok := model.MinStay(o, zones[t], t); ok {
						thresh = mn
					} else {
						thresh = 0
					}
				}
				zone := zones[t]
				if !zone.Conditioned() || t-arrival > thresh {
					continue
				}
				if zoneActuallyOccupied(trace, d, t, zone) {
					continue // an occupant would notice (Eq 16)
				}
				for _, ai := range trace.House.AppliancesInZone(zone) {
					if !cap.CanTrigger(ai, t) {
						continue
					}
					if trace.Days[d].Appliance[ai][t] || plan.Triggered[d][ai][t] {
						continue
					}
					plan.Triggered[d][ai][t] = true
					total++
				}
			}
		}
	}
	return total
}

// zoneActuallyOccupied reports whether any real occupant is in the zone.
func zoneActuallyOccupied(trace *aras.Trace, day, slot int, z home.ZoneID) bool {
	for o := range trace.Days[day].Zone {
		if trace.Days[day].Zone[o][slot] == z {
			return true
		}
	}
	return false
}

// ClearTriggers resets all triggered appliances (used by evaluation to
// compare with/without triggering on the same schedule, Fig 10).
func (p *Plan) ClearTriggers() {
	for d := range p.Triggered {
		for a := range p.Triggered[d] {
			for t := range p.Triggered[d][a] {
				p.Triggered[d][a][t] = false
			}
		}
	}
}
