package attack

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// EvalOptions configures impact evaluation.
type EvalOptions struct {
	// AbortDetectedDays models the defender acting on alarms: any day on
	// which the defender's ADM flags an injected episode reverts to its
	// benign cost (the attack vector was not stealthy, so its impact does
	// not materialise). Table V's SHATTER/Greedy rows under partial
	// attacker knowledge shrink through exactly this mechanism.
	AbortDetectedDays bool
	// Benign, when non-nil, supplies a precomputed no-attack simulation of
	// the same (trace, controller, params, pricing) and skips re-simulating
	// it — the benign leg is identical across every evaluation of a house,
	// so suite-level callers memoize it.
	Benign *hvac.Result
}

// Impact is the outcome of an attack campaign.
type Impact struct {
	Strategy string
	// Benign and Attacked are the full simulation results.
	Benign   hvac.Result
	Attacked hvac.Result
	// ExtraCostUSD = Attacked − Benign total cost.
	ExtraCostUSD float64
	// DetectionRate is the fraction of injected reported episodes the
	// defender's ADM flags as anomalous.
	DetectionRate float64
	// DetectedDays counts days with at least one flagged injected episode.
	DetectedDays int
	// InfeasibleWindows is carried from the plan.
	InfeasibleWindows int
}

// EvaluateImpact simulates the benign and attacked systems and scores
// stealthiness against the defender's ADM (which may differ from the
// attacker's estimate under partial knowledge).
func EvaluateImpact(trace *aras.Trace, plan *Plan, defender *adm.Model, ctrl hvac.Controller, params hvac.Params, pricing hvac.Pricing, opts EvalOptions) (Impact, error) {
	var benign hvac.Result
	if opts.Benign != nil {
		benign = *opts.Benign
	} else {
		var err error
		benign, err = hvac.Simulate(trace, ctrl, params, pricing, hvac.Options{})
		if err != nil {
			return Impact{}, fmt.Errorf("attack: benign simulation: %w", err)
		}
	}

	injected, flagged := 0, 0
	detectedDay := make([]bool, trace.NumDays())
	if defender != nil {
		for d := 0; d < trace.NumDays(); d++ {
			for o := range trace.House.Occupants {
				for _, e := range plan.DayReportedEpisodes(trace, d, o) {
					if !e.Injected {
						continue
					}
					injected++
					if defender.EpisodeAnomalous(e.Episode) {
						flagged++
						detectedDay[d] = true
					}
				}
			}
		}
	}

	effective := plan
	if opts.AbortDetectedDays {
		effective = plan.revertDays(trace, detectedDay)
	}
	view, err := NewView(trace, effective)
	if err != nil {
		return Impact{}, err
	}
	attacked, err := hvac.Simulate(trace, ctrl, params, pricing, hvac.Options{
		View:              view,
		ActualApplianceOn: view.ActualApplianceOn,
	})
	if err != nil {
		return Impact{}, fmt.Errorf("attack: attacked simulation: %w", err)
	}

	imp := Impact{
		Strategy:          plan.Strategy,
		Benign:            benign,
		Attacked:          attacked,
		ExtraCostUSD:      attacked.TotalCostUSD - benign.TotalCostUSD,
		InfeasibleWindows: plan.InfeasibleWindows,
	}
	if injected > 0 {
		imp.DetectionRate = float64(flagged) / float64(injected)
	}
	for _, det := range detectedDay {
		if det {
			imp.DetectedDays++
		}
	}
	return imp, nil
}

// revertDays returns a copy of the plan with the flagged days restored to
// truth-telling (no injections, no triggers): a fresh truth plan with the
// surviving days' falsifications overlaid.
func (p *Plan) revertDays(trace *aras.Trace, revert []bool) *Plan {
	fresh := newPlan(trace, p.Strategy)
	for d := range p.RepZone {
		if revert[d] {
			continue
		}
		for o := range p.RepZone[d] {
			copy(fresh.RepZone[d][o], p.RepZone[d][o])
			copy(fresh.RepAct[d][o], p.RepAct[d][o])
		}
		for a := range p.Triggered[d] {
			copy(fresh.Triggered[d][a], p.Triggered[d][a])
		}
	}
	fresh.InfeasibleWindows = p.InfeasibleWindows
	return fresh
}

// SensorDeltas synthesises the IAQ component of the FDI attack vector for
// one day: the δ^C series (Eq 14) that must be injected into each zone's
// CO2 sensor so the reported measurements stay consistent with the reported
// occupancy under the plant's mass balance. (Temperature deltas follow the
// same construction via Eq 15; CO2 is the binding consistency check because
// occupancy drives it directly.)
func SensorDeltas(trace *aras.Trace, plan *Plan, ctrl hvac.Controller, params hvac.Params, day int) ([][]float64, error) {
	benignView := &hvac.TraceView{Trace: trace}
	attackView, err := NewView(trace, plan)
	if err != nil {
		return nil, err
	}
	benign, err := hvac.BelievedCO2Series(trace, benignView, ctrl, params, day)
	if err != nil {
		return nil, err
	}
	attacked, err := hvac.BelievedCO2Series(trace, attackView, ctrl, params, day)
	if err != nil {
		return nil, err
	}
	deltas := make([][]float64, len(benign))
	for t := range benign {
		deltas[t] = make([]float64, len(benign[t]))
		for z := range benign[t] {
			deltas[t][z] = attacked[t][z] - benign[t][z]
		}
	}
	return deltas, nil
}
