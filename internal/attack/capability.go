// Package attack implements the SHATTER attack analytics (Sections III-IV):
// the attacker capability model, the three schedule-synthesis strategies the
// paper compares (BIoTA-style rule-aware FDI, greedy scheduling per
// Algorithm 2, and the SHATTER windowed dynamic schedule), the real-time
// appliance-triggering decision of Algorithm 1, the falsified sensor views
// fed to the controller, and the impact/detection evaluation behind
// Tables V-VII and Fig 10.
package attack

import (
	"sort"
	"strconv"
	"strings"

	"github.com/acyd-lab/shatter/internal/home"
)

// Capability models the attacker's access (Section III-B.4): which zones'
// sensor measurements (IAQ, occupancy) can be read and altered (Z^A), which
// occupants' tracking streams can be forged (O^A), which appliances can be
// triggered by inaudible voice commands (D^A), and which time slots are
// attackable (T^A).
type Capability struct {
	// Zones[z] grants read/alter access to zone z's sensor measurements.
	Zones map[home.ZoneID]bool
	// Appliances[d] grants triggering access to appliance d.
	Appliances map[int]bool
	// Occupants[o] grants access to occupant o's tracking measurements.
	Occupants map[int]bool
	// SlotAllowed restricts attackable slots; nil means all slots.
	SlotAllowed func(slot int) bool
}

// Full returns the unrestricted capability for the house: every zone,
// appliance, occupant, and slot.
func Full(h *home.House) Capability {
	c := Capability{
		Zones:      make(map[home.ZoneID]bool, len(h.Zones)),
		Appliances: make(map[int]bool, len(h.Appliances)),
		Occupants:  make(map[int]bool, len(h.Occupants)),
	}
	for _, z := range h.Zones {
		c.Zones[z.ID] = true
	}
	for i := range h.Appliances {
		c.Appliances[i] = true
	}
	for o := range h.Occupants {
		c.Occupants[o] = true
	}
	return c
}

// WithZones returns a copy whose sensor access is limited to the listed
// zones (Outside needs no sensors and is always reachable).
func (c Capability) WithZones(zones ...home.ZoneID) Capability {
	out := c.clone()
	out.Zones = make(map[home.ZoneID]bool, len(zones))
	for _, z := range zones {
		out.Zones[z] = true
	}
	return out
}

// WithAppliances returns a copy whose triggering access is limited to the
// listed appliance indices.
func (c Capability) WithAppliances(appliances ...int) Capability {
	out := c.clone()
	out.Appliances = make(map[int]bool, len(appliances))
	for _, a := range appliances {
		out.Appliances[a] = true
	}
	return out
}

// WithOccupants returns a copy restricted to the listed occupants' streams.
func (c Capability) WithOccupants(occupants ...int) Capability {
	out := c.clone()
	out.Occupants = make(map[int]bool, len(occupants))
	for _, o := range occupants {
		out.Occupants[o] = true
	}
	return out
}

func (c Capability) clone() Capability {
	out := Capability{
		Zones:       make(map[home.ZoneID]bool, len(c.Zones)),
		Appliances:  make(map[int]bool, len(c.Appliances)),
		Occupants:   make(map[int]bool, len(c.Occupants)),
		SlotAllowed: c.SlotAllowed,
	}
	for k, v := range c.Zones {
		out.Zones[k] = v
	}
	for k, v := range c.Appliances {
		out.Appliances[k] = v
	}
	for k, v := range c.Occupants {
		out.Occupants[k] = v
	}
	return out
}

// Signature returns a canonical, order-independent key for the capability,
// usable for memoizing campaigns planned under it. ok is false when the
// capability carries a SlotAllowed predicate: functions cannot be compared,
// so slot-restricted capabilities are unkeyable and their campaigns must be
// planned fresh.
func (c Capability) Signature() (sig string, ok bool) {
	if c.SlotAllowed != nil {
		return "", false
	}
	var b strings.Builder
	writeSet := func(prefix string, set map[int]bool) {
		b.WriteString(prefix)
		ids := make([]int, 0, len(set))
		for id, granted := range set {
			if granted {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for i, id := range ids {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(id))
		}
	}
	zones := make(map[int]bool, len(c.Zones))
	for z, granted := range c.Zones {
		zones[int(z)] = granted
	}
	writeSet("z:", zones)
	writeSet(";d:", c.Appliances)
	writeSet(";o:", c.Occupants)
	return b.String(), true
}

// slotOK applies the T^A restriction.
func (c Capability) slotOK(slot int) bool {
	return c.SlotAllowed == nil || c.SlotAllowed(slot)
}

// zoneOK reports sensor access to z; Outside has no in-home sensors to
// forge, so it is always reachable.
func (c Capability) zoneOK(z home.ZoneID) bool {
	if !z.Conditioned() {
		return true
	}
	return c.Zones[z]
}

// CanReport decides whether occupant o, actually in actualZone, may be
// reported in reportZone at the slot (Section IV-C: the attacker needs
// access to both the actual occupant zone and the scheduled zone; reporting
// the truth needs no access at all).
func (c Capability) CanReport(o int, slot int, actualZone, reportZone home.ZoneID) bool {
	if reportZone == actualZone {
		return true
	}
	if !c.Occupants[o] || !c.slotOK(slot) {
		return false
	}
	return c.zoneOK(actualZone) && c.zoneOK(reportZone)
}

// CanTrigger decides whether appliance d can be voice-triggered at the slot.
func (c Capability) CanTrigger(d int, slot int) bool {
	return c.Appliances[d] && c.slotOK(slot)
}
