package attack

import (
	"errors"
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/pool"
	"github.com/acyd-lab/shatter/internal/solver"
)

// Planner bundles what every strategy needs: the ground truth, the
// attacker's (possibly partial-knowledge) ADM estimate, the cost surrogate,
// and the capability model.
type Planner struct {
	Trace *aras.Trace
	// Model is the attacker's estimate of the deployed ADM — trained on all
	// of the training data or only a subset (Table IV/V's "attacker's
	// knowledge" axis).
	Model *adm.Model
	// Cost is the marginal-cost surrogate the optimiser maximises.
	Cost *hvac.CostModel
	// Cap is the attacker's access.
	Cap Capability
	// WindowLen is the optimisation horizon I (Eq 17); the paper uses 10.
	// Defaults to 10 when zero.
	WindowLen int
	// CostSurface, when non-nil, supplies the tabulated occupant-day cost
	// surrogate instead of the planner computing it. The surface depends
	// only on (trace, cost model) — not on the attacker's ADM estimate or
	// strategy — so suite-level callers memoize one per (house, day,
	// occupant) and share it across every planning cell. The provider
	// receives the planner's trace and must return nil when the surface was
	// built for a different trace (e.g. after the planner is re-pointed at
	// a sub-trace); the planner then tabulates locally.
	CostSurface func(tr *aras.Trace, day, occupant int) solver.CostFn
	// Workers bounds the occupant-day planning fan-out: the cells of a
	// campaign (one per occupant-day for SHATTER/Greedy, one per day for
	// BIoTA) are independent and spread across a bounded worker pool.
	// 0 uses one worker per CPU; 1 forces sequential planning. Plans are
	// identical for any worker count.
	Workers int
}

// planScratch is one planning worker's reusable state: the DP workspace and
// the local cost-table buffer (used when no memoized surface is injected).
// Scratch never influences results, only allocation counts, so sharing one
// per worker preserves the Workers=1 ≡ Workers=N determinism contract.
type planScratch struct {
	ws   solver.Workspace
	ctbl []float64
}

// ErrNeedModel is returned when a strategy requires an ADM estimate.
var ErrNeedModel = errors.New("attack: planner requires an ADM model")

func (pl *Planner) windowLen() int {
	if pl.WindowLen <= 0 {
		return 10
	}
	return pl.WindowLen
}

// zonesOf lists reportable zones for the house.
func zonesOf(h *home.House) []home.ZoneID {
	zs := make([]home.ZoneID, 0, len(h.Zones))
	for _, z := range h.Zones {
		zs = append(zs, z.ID)
	}
	return zs
}

// costFor builds the surrogate CostFn for one occupant and day: the
// per-minute cost of the occupant reported in a zone with that zone's most
// intense activity (or the actual activity when reporting truthfully).
func (pl *Planner) costFor(day, occupant int) solver.CostFn {
	w := pl.Trace.Weather[day]
	dd := pl.Trace.Days[day]
	house := pl.Trace.House
	return func(slot int, z home.ZoneID) float64 {
		if !z.Conditioned() {
			return 0
		}
		act := house.MostIntenseActivity(z)
		if dd.Zone[occupant][slot] == z {
			act = dd.Act[occupant][slot]
		}
		return pl.Cost.OccupantSlotCost(occupant, z, act, slot, w.TempF[slot])
	}
}

// costTableFn precomputes the occupant-day cost surface of costFor into a
// (zone, slot)-indexed table and returns a table-backed CostFn plus the
// (possibly grown) buffer for reuse. The schedule optimisers query the
// surrogate thousands of times per occupant-day with the same (slot, zone)
// arguments; tabulating the ≤ house-zones × SlotsPerDay distinct values once
// removes the repeated HVAC cost-model evaluations from the hot path.
func (pl *Planner) costTableFn(day, occupant int, tbl []float64) (solver.CostFn, []float64) {
	house := pl.Trace.House
	nz := len(house.Zones)
	n := nz * aras.SlotsPerDay
	if cap(tbl) < n {
		tbl = make([]float64, n)
	}
	tbl = tbl[:n]
	w := pl.Trace.Weather[day]
	dd := pl.Trace.Days[day]
	for z := home.ZoneID(0); int(z) < nz; z++ {
		row := tbl[int(z)*aras.SlotsPerDay : (int(z)+1)*aras.SlotsPerDay]
		if !z.Conditioned() {
			for t := range row {
				row[t] = 0
			}
			continue
		}
		intense := house.MostIntenseActivity(z)
		for t := range row {
			act := intense
			if dd.Zone[occupant][t] == z {
				act = dd.Act[occupant][t]
			}
			row[t] = pl.Cost.OccupantSlotCost(occupant, z, act, t, w.TempF[t])
		}
	}
	return CostFnFromTable(tbl), tbl
}

// CostTable returns the freshly allocated (zone, slot)-indexed surrogate
// cost surface for one occupant-day — the memoizable artifact behind
// CostSurface.
func (pl *Planner) CostTable(day, occupant int) []float64 {
	_, tbl := pl.costTableFn(day, occupant, nil)
	return tbl
}

// CostFnFromTable wraps a CostTable surface as a solver.CostFn. The zone
// bound is recovered from the table size, so surfaces built for any house
// layout self-describe.
func CostFnFromTable(tbl []float64) solver.CostFn {
	nz := home.ZoneID(len(tbl) / aras.SlotsPerDay)
	return func(slot int, z home.ZoneID) float64 {
		if z < 0 || z >= nz {
			return 0
		}
		return tbl[int(z)*aras.SlotsPerDay+slot]
	}
}

// surfaceFor resolves the occupant-day cost surrogate: the injected
// memoized surface when it covers the planner's trace, otherwise a locally
// tabulated one (tbl is the reusable local buffer).
func (pl *Planner) surfaceFor(day, occupant int, tbl *[]float64) solver.CostFn {
	if pl.CostSurface != nil {
		if fn := pl.CostSurface(pl.Trace, day, occupant); fn != nil {
			return fn
		}
	}
	fn, t := pl.costTableFn(day, occupant, *tbl)
	*tbl = t
	return fn
}

// allowedFor builds the capability AllowedFn for one occupant and day.
func (pl *Planner) allowedFor(day, occupant int) solver.AllowedFn {
	dd := pl.Trace.Days[day]
	return func(slot int, z home.ZoneID) bool {
		return pl.Cap.CanReport(occupant, slot, dd.Zone[occupant][slot], z)
	}
}

// viableTerminal builds a window terminal check: the end state must be able
// to keep earning — continue the stay stealthily, exit into some covered
// zone, or coincide with ground truth (truth-telling can always continue).
// zones is the house's reportable zone list and bands the occupant's
// tabulated stay oracle, both hoisted by the caller so the
// per-terminal-state check allocates nothing. end points at the caller's
// current window end, so one closure serves every interior window of the
// occupant-day.
func (pl *Planner) viableTerminal(day, occupant int, end *int, zones []home.ZoneID, allowed solver.AllowedFn, bands *solver.StayBands) func(home.ZoneID, int) bool {
	return func(z home.ZoneID, arr int) bool {
		e := *end
		if e >= aras.SlotsPerDay {
			return true
		}
		if z == pl.Trace.Days[day].Zone[occupant][e] {
			return true // truth state: continuation is reality's problem
		}
		dur := e - arr
		if maxStay, ok := bands.MaxStayAt(z, arr); ok && dur+1 <= maxStay {
			return true // can keep staying
		}
		if !bands.InRange(z, arr, dur) {
			return false
		}
		for _, z2 := range zones {
			if z2 == z || !allowed(e, z2) {
				continue
			}
			if _, ok := bands.MaxStayAt(z2, e); ok {
				return true // can exit into a covered zone
			}
		}
		return false
	}
}

// CostFnFor exposes the planner's surrogate cost function for external
// harnesses (e.g. the Fig 11 scalability benchmarks drive the solver
// directly with it).
func (pl *Planner) CostFnFor(day, occupant int) solver.CostFn {
	return pl.costFor(day, occupant)
}

// actualArrival returns the start slot of the in-progress actual stay at
// the slot (scanning back within the day).
func actualArrival(trace *aras.Trace, day, occupant, slot int) int {
	zones := trace.Days[day].Zone[occupant]
	z := zones[slot]
	for slot > 0 && zones[slot-1] == z {
		slot--
	}
	return slot
}

// PlanSHATTER synthesises the paper's dynamic attack schedule: per
// occupant, per day, a chain of exactly optimised windows of length I
// (Section IV-C(a)), each solved with the DP engine against the attacker's
// ADM estimate and capability. Occupant-days are independent cells fanned
// across Workers; each worker recycles one DP workspace across its cells'
// ~144 windows.
func (pl *Planner) PlanSHATTER() (*Plan, error) {
	if pl.Model == nil {
		return nil, ErrNeedModel
	}
	p := newPlan(pl.Trace, "SHATTER")
	zones := zonesOf(pl.Trace.House)
	occ := len(pl.Trace.House.Occupants)
	cells := pl.Trace.NumDays() * occ
	// Each cell reports its infeasible-window count to its own slot; the
	// plan total is folded in index order, independent of pool width.
	infeasible := make([]int, cells)
	scratch := make([]planScratch, pool.Width(pl.Workers, cells))
	err := pool.RunIndexed(pl.Workers, cells, func(worker, i int) error {
		d, o := i/occ, i%occ
		n, err := pl.shatterDay(p, &scratch[worker], d, o, zones)
		infeasible[i] = n
		return err
	})
	if err != nil {
		return nil, err
	}
	for _, n := range infeasible {
		p.InfeasibleWindows += n
	}
	return p, nil
}

// shatterDay plans one occupant-day: the chain of optimised windows, the
// truth floor, and the sanitisation pass. It writes only the (d, o) rows of
// the plan, which is what makes occupant-days safe to fan out.
func (pl *Planner) shatterDay(p *Plan, st *planScratch, d, o int, zones []home.ZoneID) (infeasible int, err error) {
	bands := pl.Model.StayBands(o)
	iLen := pl.windowLen()
	cost := pl.surfaceFor(d, o, &st.ctbl)
	allowed := pl.allowedFor(d, o)
	// The terminal closures are hoisted out of the window loop (one
	// allocation per occupant-day instead of per window) and read the
	// current interior-window end through this variable.
	var end int
	// Final window of the day: the midnight-cut episode the ADM will see
	// must itself lie within a cluster.
	terminalFinal := func(z home.ZoneID, arr int) bool {
		return bands.InRange(z, arr, aras.SlotsPerDay-arr)
	}
	// Interior window: score terminal states by how much the in-progress
	// stay can still earn next window, countering horizon myopia — and
	// require terminal states to be viable (able to continue or exit
	// stealthily) so a window cannot strand the next one in a dead end.
	terminalBonus := func(z home.ZoneID, arr int) float64 {
		maxStay, ok := bands.MaxStayAt(z, arr)
		if !ok {
			return 0
		}
		remaining := maxStay - (end - arr)
		if remaining <= 0 {
			return 0
		}
		if remaining > iLen {
			remaining = iLen
		}
		slot := end
		if slot >= aras.SlotsPerDay {
			slot = aras.SlotsPerDay - 1
		}
		return float64(remaining) * cost(slot, z)
	}
	terminalViable := pl.viableTerminal(d, o, &end, zones, allowed, bands)
	// Day starts truth-telling: occupants begin where they really
	// are (typically asleep), with the day-split arrival at slot 0.
	zone := pl.Trace.Days[d].Zone[o][0]
	arrival := 0
	for start := 0; start < aras.SlotsPerDay; start += iLen {
		length := iLen
		if start+length > aras.SlotsPerDay {
			length = aras.SlotsPerDay - start
		}
		w := solver.Window{
			Occupant:     o,
			StartSlot:    start,
			Length:       length,
			StartZone:    zone,
			StartArrival: arrival,
			Zones:        zones,
		}
		if start+length == aras.SlotsPerDay {
			w.TerminalOK = terminalFinal
		} else {
			end = start + length
			w.TerminalBonus = terminalBonus
			w.TerminalOK = terminalViable
		}
		sched, _, err := solver.OptimizeWindowBands(&st.ws, w, bands, cost, allowed)
		if err != nil {
			return infeasible, fmt.Errorf("attack: day %d occupant %d window %d: %w", d, o, start, err)
		}
		if !sched.Feasible && w.TerminalOK != nil && start+length != aras.SlotsPerDay {
			// No viable terminal existed; accept any terminal and
			// let the next window's fallback deal with dead ends.
			w.TerminalOK = nil
			sched, _, err = solver.OptimizeWindowBands(&st.ws, w, bands, cost, allowed)
			if err != nil {
				return infeasible, fmt.Errorf("attack: day %d occupant %d window %d: %w", d, o, start, err)
			}
		}
		if !sched.Feasible {
			infeasible++
			// Fall back to truth for this window.
			for i := 0; i < length; i++ {
				p.setReport(pl.Trace, d, o, start+i, pl.Trace.Days[d].Zone[o][start+i])
			}
			last := start + length - 1
			zone = pl.Trace.Days[d].Zone[o][last]
			arrival = actualArrival(pl.Trace, d, o, last)
			continue
		}
		for i, z := range sched.Zones {
			p.setReport(pl.Trace, d, o, start+i, z)
		}
		zone, arrival = sched.EndZone, sched.EndArrival
	}
	pl.applyTruthFloor(p, d, o, cost)
	pl.sanitizeDay(p, d, o)
	return infeasible, nil
}

// applyTruthFloor reverts an occupant-day to truth when the optimised
// schedule's surrogate value falls below simply not attacking (δ = 0 is
// always available to the attacker; hull constraints never apply to
// reality-as-reported). cost is the occupant-day surrogate, supplied by the
// caller so the tabulated surface is shared with the optimiser.
func (pl *Planner) applyTruthFloor(p *Plan, day, occupant int, cost solver.CostFn) {
	var scheduled, truth float64
	for t := 0; t < aras.SlotsPerDay; t++ {
		scheduled += cost(t, p.RepZone[day][occupant][t])
		truth += cost(t, pl.Trace.Days[day].Zone[occupant][t])
	}
	if scheduled >= truth {
		return
	}
	for t := 0; t < aras.SlotsPerDay; t++ {
		p.setReport(pl.Trace, day, occupant, t, pl.Trace.Days[day].Zone[occupant][t])
	}
}

// sanitizeDay censors residual anomalies: any injected reported episode the
// attacker's own model would flag (window-boundary artefacts, lenient-start
// exits) is reverted to truth, iterating to a fixpoint since reverting can
// merge neighbouring episodes. If anomalous injections survive the
// iteration cap the whole occupant-day reverts to truth — the attacker
// never knowingly ships a flagged vector.
func (pl *Planner) sanitizeDay(p *Plan, day, occupant int) {
	// The natural-episode index and the episode buffer are invariant across
	// fixpoint iterations; build/allocate them once.
	natural := naturalEpisodeSet(pl.Trace, day, occupant)
	var episodes []ReportedEpisode
	for iter := 0; iter < 64; iter++ {
		changed := 0
		anomalous := 0
		episodes = p.appendDayReportedEpisodes(episodes[:0], pl.Trace, day, occupant, natural)
		for _, e := range episodes {
			if !e.Injected || !pl.Model.EpisodeAnomalous(e.Episode) {
				continue
			}
			anomalous++
			end := e.ArrivalSlot + e.Duration
			for t := e.ArrivalSlot; t < end; t++ {
				if p.RepZone[day][occupant][t] != pl.Trace.Days[day].Zone[occupant][t] {
					changed++
				}
				p.setReport(pl.Trace, day, occupant, t, pl.Trace.Days[day].Zone[occupant][t])
			}
		}
		if anomalous == 0 {
			return
		}
		if changed == 0 {
			break // stuck: reverting altered nothing (distorted truth episodes)
		}
	}
	// Whole-day revert.
	for t := 0; t < aras.SlotsPerDay; t++ {
		p.setReport(pl.Trace, day, occupant, t, pl.Trace.Days[day].Zone[occupant][t])
	}
}

// PlanGreedy implements Algorithm 2: whenever the in-progress reported stay
// can exit stealthily, move to the zone with the highest instantaneous cost
// and commit to its maximum stealthy stay. The strategy's weaknesses — no
// lookahead and maxStay commitments — are exactly what the Section V case
// study demonstrates: it gets trapped (e.g. Bob parked Outside) where the
// windowed SHATTER schedule keeps earning.
func (pl *Planner) PlanGreedy() (*Plan, error) {
	if pl.Model == nil {
		return nil, ErrNeedModel
	}
	p := newPlan(pl.Trace, "Greedy")
	zones := zonesOf(pl.Trace.House)
	occ := len(pl.Trace.House.Occupants)
	cells := pl.Trace.NumDays() * occ
	scratch := make([]planScratch, pool.Width(pl.Workers, cells))
	err := pool.RunIndexed(pl.Workers, cells, func(worker, i int) error {
		d, o := i/occ, i%occ
		cost := pl.surfaceFor(d, o, &scratch[worker].ctbl)
		pl.greedyDay(p, d, o, zones, cost)
		pl.applyTruthFloor(p, d, o, cost)
		pl.sanitizeDay(p, d, o)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// greedyDay walks one occupant-day as a consistency-checked state machine.
// zones is the house's reportable zone list and cost the occupant-day
// surrogate, both hoisted by the caller.
func (pl *Planner) greedyDay(p *Plan, d, o int, zones []home.ZoneID, cost solver.CostFn) {
	bands := pl.Model.StayBands(o)
	allowed := pl.allowedFor(d, o)
	zone := pl.Trace.Days[d].Zone[o][0]
	arrival := 0
	commitUntil := 0 // committed stay end (Algorithm 2's duration)
	_, startCovered := bands.MaxStayAt(zone, arrival)
	lenient := !startCovered
	for t := 0; t < aras.SlotsPerDay; t++ {
		dur := t - arrival
		canExit := dur >= 1 && (lenient || bands.InRange(zone, arrival, dur))
		// Will the current stay still be stealthy through slot t?
		maxStay, covered := bands.MaxStayAt(zone, arrival)
		mustMove := !(lenient || (covered && dur+1 <= maxStay)) || !allowed(t, zone)
		if canExit && (t >= commitUntil || mustMove) {
			// Re-choose: the highest-paying zone whose arrival is covered.
			bestZone, bestCost := home.ZoneID(-1), -1.0
			var bestMax int
			for _, z := range zones {
				if z == zone || !allowed(t, z) {
					continue
				}
				ms, ok := bands.MaxStayAt(z, t)
				if !ok || ms < 1 {
					continue
				}
				if c := cost(t, z); c > bestCost {
					bestZone, bestCost, bestMax = z, c, ms
				}
			}
			if bestZone >= 0 && (mustMove || bestCost > cost(t, zone)) {
				zone, arrival, lenient = bestZone, t, false
				commitUntil = t + bestMax
				if commitUntil > aras.SlotsPerDay {
					commitUntil = aras.SlotsPerDay
				}
				mustMove = false
			}
		}
		if mustMove {
			// No stealthy option: fall back to reporting the truth.
			zone = pl.Trace.Days[d].Zone[o][t]
			arrival = actualArrival(pl.Trace, d, o, t)
			_, cov := bands.MaxStayAt(zone, arrival)
			lenient = !cov
			commitUntil = t
		}
		p.setReport(pl.Trace, d, o, t, zone)
	}
}

// PlanBIoTA reproduces the state-of-the-art baseline the paper compares
// against (Table V): a greedy FDI attack that maximises instantaneous
// demand subject only to rule-based verification (zone capacity, occupant
// conservation) — no behavioural ADM awareness. Its vectors keep a large
// margin from the benign distribution, which is why the clustering ADMs
// flag 60-100% of them (Section VII-A).
func (pl *Planner) PlanBIoTA() (*Plan, error) {
	p := newPlan(pl.Trace, "BIoTA")
	house := pl.Trace.House
	zones := zonesOf(house)
	// Hoist the loop invariants: zone capacities once, and per worker a
	// zone-indexed occupancy counter plus per-occupant cost surrogates
	// (rebuilt per day) in place of per-slot maps. Days are independent
	// cells — the capacity rule couples occupants within a slot, so the
	// fan-out is per day, not per occupant-day.
	maxOcc := make([]int, len(house.Zones))
	for _, z := range zones {
		maxOcc[z] = house.Zone(z).MaxOccupancy
	}
	type biotaScratch struct {
		counts []int
		costs  []solver.CostFn
		ctbls  [][]float64
	}
	days := pl.Trace.NumDays()
	scratch := make([]biotaScratch, pool.Width(pl.Workers, days))
	err := pool.RunIndexed(pl.Workers, days, func(worker, d int) error {
		st := &scratch[worker]
		if st.counts == nil {
			st.counts = make([]int, len(house.Zones))
			st.costs = make([]solver.CostFn, len(house.Occupants))
			st.ctbls = make([][]float64, len(house.Occupants))
		}
		for o := range st.costs {
			st.costs[o] = pl.surfaceFor(d, o, &st.ctbls[o])
		}
		for t := 0; t < aras.SlotsPerDay; t++ {
			counts := st.counts
			for z := range counts {
				counts[z] = 0
			}
			for o := range house.Occupants {
				cost := st.costs[o]
				actual := pl.Trace.Days[d].Zone[o][t]
				bestZone, bestCost := actual, cost(t, actual)
				for _, z := range zones {
					if !pl.Cap.CanReport(o, t, actual, z) {
						continue
					}
					// Rule-based capacity verification.
					if counts[z]+1 > maxOcc[z] {
						continue
					}
					if c := cost(t, z); c > bestCost {
						bestZone, bestCost = z, c
					}
				}
				counts[bestZone]++
				p.setReport(pl.Trace, d, o, t, bestZone)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}
