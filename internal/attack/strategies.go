package attack

import (
	"errors"
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/solver"
)

// Planner bundles what every strategy needs: the ground truth, the
// attacker's (possibly partial-knowledge) ADM estimate, the cost surrogate,
// and the capability model.
type Planner struct {
	Trace *aras.Trace
	// Model is the attacker's estimate of the deployed ADM — trained on all
	// of the training data or only a subset (Table IV/V's "attacker's
	// knowledge" axis).
	Model *adm.Model
	// Cost is the marginal-cost surrogate the optimiser maximises.
	Cost *hvac.CostModel
	// Cap is the attacker's access.
	Cap Capability
	// WindowLen is the optimisation horizon I (Eq 17); the paper uses 10.
	// Defaults to 10 when zero.
	WindowLen int
}

// ErrNeedModel is returned when a strategy requires an ADM estimate.
var ErrNeedModel = errors.New("attack: planner requires an ADM model")

func (pl *Planner) windowLen() int {
	if pl.WindowLen <= 0 {
		return 10
	}
	return pl.WindowLen
}

// zonesOf lists reportable zones for the house.
func zonesOf(h *home.House) []home.ZoneID {
	zs := make([]home.ZoneID, 0, len(h.Zones))
	for _, z := range h.Zones {
		zs = append(zs, z.ID)
	}
	return zs
}

// costFor builds the surrogate CostFn for one occupant and day: the
// per-minute cost of the occupant reported in a zone with that zone's most
// intense activity (or the actual activity when reporting truthfully).
func (pl *Planner) costFor(day, occupant int) solver.CostFn {
	w := pl.Trace.Weather[day]
	dd := pl.Trace.Days[day]
	return func(slot int, z home.ZoneID) float64 {
		if !z.Conditioned() {
			return 0
		}
		act := home.MostIntenseActivityInZone(z)
		if dd.Zone[occupant][slot] == z {
			act = dd.Act[occupant][slot]
		}
		return pl.Cost.OccupantSlotCost(occupant, z, act, slot, w.TempF[slot])
	}
}

// allowedFor builds the capability AllowedFn for one occupant and day.
func (pl *Planner) allowedFor(day, occupant int) solver.AllowedFn {
	dd := pl.Trace.Days[day]
	return func(slot int, z home.ZoneID) bool {
		return pl.Cap.CanReport(occupant, slot, dd.Zone[occupant][slot], z)
	}
}

// viableTerminal builds a window terminal check: the end state must be able
// to keep earning — continue the stay stealthily, exit into some covered
// zone, or coincide with ground truth (truth-telling can always continue).
func (pl *Planner) viableTerminal(day, occupant, end int, allowed solver.AllowedFn) func(home.ZoneID, int) bool {
	return func(z home.ZoneID, arr int) bool {
		if end >= aras.SlotsPerDay {
			return true
		}
		if z == pl.Trace.Days[day].Zone[occupant][end] {
			return true // truth state: continuation is reality's problem
		}
		dur := end - arr
		if maxStay, ok := pl.Model.MaxStay(occupant, z, arr); ok && dur+1 <= maxStay {
			return true // can keep staying
		}
		if !pl.Model.InRangeStay(occupant, z, arr, dur) {
			return false
		}
		for _, z2 := range zonesOf(pl.Trace.House) {
			if z2 == z || !allowed(end, z2) {
				continue
			}
			if _, ok := pl.Model.MaxStay(occupant, z2, end); ok {
				return true // can exit into a covered zone
			}
		}
		return false
	}
}

// CostFnFor exposes the planner's surrogate cost function for external
// harnesses (e.g. the Fig 11 scalability benchmarks drive the solver
// directly with it).
func (pl *Planner) CostFnFor(day, occupant int) solver.CostFn {
	return pl.costFor(day, occupant)
}

// actualArrival returns the start slot of the in-progress actual stay at
// the slot (scanning back within the day).
func actualArrival(trace *aras.Trace, day, occupant, slot int) int {
	zones := trace.Days[day].Zone[occupant]
	z := zones[slot]
	for slot > 0 && zones[slot-1] == z {
		slot--
	}
	return slot
}

// PlanSHATTER synthesises the paper's dynamic attack schedule: per
// occupant, per day, a chain of exactly optimised windows of length I
// (Section IV-C(a)), each solved with the DP engine against the attacker's
// ADM estimate and capability.
func (pl *Planner) PlanSHATTER() (*Plan, error) {
	if pl.Model == nil {
		return nil, ErrNeedModel
	}
	p := newPlan(pl.Trace, "SHATTER")
	zones := zonesOf(pl.Trace.House)
	iLen := pl.windowLen()
	for d := 0; d < pl.Trace.NumDays(); d++ {
		for o := range pl.Trace.House.Occupants {
			cost := pl.costFor(d, o)
			allowed := pl.allowedFor(d, o)
			// Day starts truth-telling: occupants begin where they really
			// are (typically asleep), with the day-split arrival at slot 0.
			zone := pl.Trace.Days[d].Zone[o][0]
			arrival := 0
			for start := 0; start < aras.SlotsPerDay; start += iLen {
				length := iLen
				if start+length > aras.SlotsPerDay {
					length = aras.SlotsPerDay - start
				}
				w := solver.Window{
					Occupant:     o,
					StartSlot:    start,
					Length:       length,
					StartZone:    zone,
					StartArrival: arrival,
					Zones:        zones,
				}
				if start+length == aras.SlotsPerDay {
					// Final window of the day: the midnight-cut episode the
					// ADM will see must itself lie within a cluster.
					occ := o
					w.TerminalOK = func(z home.ZoneID, arr int) bool {
						return pl.Model.InRangeStay(occ, z, arr, aras.SlotsPerDay-arr)
					}
				} else {
					// Interior window: score terminal states by how much the
					// in-progress stay can still earn next window, countering
					// horizon myopia — and require terminal states to be
					// viable (able to continue or exit stealthily) so a
					// window cannot strand the next one in a dead end.
					occ := o
					end := start + length
					w.TerminalBonus = func(z home.ZoneID, arr int) float64 {
						maxStay, ok := pl.Model.MaxStay(occ, z, arr)
						if !ok {
							return 0
						}
						remaining := maxStay - (end - arr)
						if remaining <= 0 {
							return 0
						}
						if remaining > iLen {
							remaining = iLen
						}
						slot := end
						if slot >= aras.SlotsPerDay {
							slot = aras.SlotsPerDay - 1
						}
						return float64(remaining) * cost(slot, z)
					}
					w.TerminalOK = pl.viableTerminal(d, occ, end, allowed)
				}
				sched, _, err := solver.OptimizeWindow(w, pl.Model, cost, allowed)
				if err != nil {
					return nil, fmt.Errorf("attack: day %d occupant %d window %d: %w", d, o, start, err)
				}
				if !sched.Feasible && w.TerminalOK != nil && start+length != aras.SlotsPerDay {
					// No viable terminal existed; accept any terminal and
					// let the next window's fallback deal with dead ends.
					w.TerminalOK = nil
					sched, _, err = solver.OptimizeWindow(w, pl.Model, cost, allowed)
					if err != nil {
						return nil, fmt.Errorf("attack: day %d occupant %d window %d: %w", d, o, start, err)
					}
				}
				if !sched.Feasible {
					p.InfeasibleWindows++
					// Fall back to truth for this window.
					for i := 0; i < length; i++ {
						p.setReport(pl.Trace, d, o, start+i, pl.Trace.Days[d].Zone[o][start+i])
					}
					end := start + length - 1
					zone = pl.Trace.Days[d].Zone[o][end]
					arrival = actualArrival(pl.Trace, d, o, end)
					continue
				}
				for i, z := range sched.Zones {
					p.setReport(pl.Trace, d, o, start+i, z)
				}
				zone, arrival = sched.EndZone, sched.EndArrival
			}
			pl.applyTruthFloor(p, d, o)
			pl.sanitizeDay(p, d, o)
		}
	}
	return p, nil
}

// applyTruthFloor reverts an occupant-day to truth when the optimised
// schedule's surrogate value falls below simply not attacking (δ = 0 is
// always available to the attacker; hull constraints never apply to
// reality-as-reported).
func (pl *Planner) applyTruthFloor(p *Plan, day, occupant int) {
	cost := pl.costFor(day, occupant)
	var scheduled, truth float64
	for t := 0; t < aras.SlotsPerDay; t++ {
		scheduled += cost(t, p.RepZone[day][occupant][t])
		truth += cost(t, pl.Trace.Days[day].Zone[occupant][t])
	}
	if scheduled >= truth {
		return
	}
	for t := 0; t < aras.SlotsPerDay; t++ {
		p.setReport(pl.Trace, day, occupant, t, pl.Trace.Days[day].Zone[occupant][t])
	}
}

// sanitizeDay censors residual anomalies: any injected reported episode the
// attacker's own model would flag (window-boundary artefacts, lenient-start
// exits) is reverted to truth, iterating to a fixpoint since reverting can
// merge neighbouring episodes. If anomalous injections survive the
// iteration cap the whole occupant-day reverts to truth — the attacker
// never knowingly ships a flagged vector.
func (pl *Planner) sanitizeDay(p *Plan, day, occupant int) {
	for iter := 0; iter < 64; iter++ {
		changed := 0
		anomalous := 0
		for _, e := range p.DayReportedEpisodes(pl.Trace, day, occupant) {
			if !e.Injected || !pl.Model.EpisodeAnomalous(e.Episode) {
				continue
			}
			anomalous++
			end := e.ArrivalSlot + e.Duration
			for t := e.ArrivalSlot; t < end; t++ {
				if p.RepZone[day][occupant][t] != pl.Trace.Days[day].Zone[occupant][t] {
					changed++
				}
				p.setReport(pl.Trace, day, occupant, t, pl.Trace.Days[day].Zone[occupant][t])
			}
		}
		if anomalous == 0 {
			return
		}
		if changed == 0 {
			break // stuck: reverting altered nothing (distorted truth episodes)
		}
	}
	// Whole-day revert.
	for t := 0; t < aras.SlotsPerDay; t++ {
		p.setReport(pl.Trace, day, occupant, t, pl.Trace.Days[day].Zone[occupant][t])
	}
}

// PlanGreedy implements Algorithm 2: whenever the in-progress reported stay
// can exit stealthily, move to the zone with the highest instantaneous cost
// and commit to its maximum stealthy stay. The strategy's weaknesses — no
// lookahead and maxStay commitments — are exactly what the Section V case
// study demonstrates: it gets trapped (e.g. Bob parked Outside) where the
// windowed SHATTER schedule keeps earning.
func (pl *Planner) PlanGreedy() (*Plan, error) {
	if pl.Model == nil {
		return nil, ErrNeedModel
	}
	p := newPlan(pl.Trace, "Greedy")
	for d := 0; d < pl.Trace.NumDays(); d++ {
		for o := range pl.Trace.House.Occupants {
			pl.greedyDay(p, d, o)
			pl.applyTruthFloor(p, d, o)
			pl.sanitizeDay(p, d, o)
		}
	}
	return p, nil
}

// greedyDay walks one occupant-day as a consistency-checked state machine.
func (pl *Planner) greedyDay(p *Plan, d, o int) {
	cost := pl.costFor(d, o)
	allowed := pl.allowedFor(d, o)
	zone := pl.Trace.Days[d].Zone[o][0]
	arrival := 0
	commitUntil := 0 // committed stay end (Algorithm 2's duration)
	_, startCovered := pl.Model.MaxStay(o, zone, arrival)
	lenient := !startCovered
	for t := 0; t < aras.SlotsPerDay; t++ {
		dur := t - arrival
		canExit := dur >= 1 && (lenient || pl.Model.InRangeStay(o, zone, arrival, dur))
		// Will the current stay still be stealthy through slot t?
		maxStay, covered := pl.Model.MaxStay(o, zone, arrival)
		mustMove := !(lenient || (covered && dur+1 <= maxStay)) || !allowed(t, zone)
		if canExit && (t >= commitUntil || mustMove) {
			// Re-choose: the highest-paying zone whose arrival is covered.
			bestZone, bestCost := home.ZoneID(-1), -1.0
			var bestMax int
			for _, z := range zonesOf(pl.Trace.House) {
				if z == zone || !allowed(t, z) {
					continue
				}
				ms, ok := pl.Model.MaxStay(o, z, t)
				if !ok || ms < 1 {
					continue
				}
				if c := cost(t, z); c > bestCost {
					bestZone, bestCost, bestMax = z, c, ms
				}
			}
			if bestZone >= 0 && (mustMove || bestCost > cost(t, zone)) {
				zone, arrival, lenient = bestZone, t, false
				commitUntil = t + bestMax
				if commitUntil > aras.SlotsPerDay {
					commitUntil = aras.SlotsPerDay
				}
				mustMove = false
			}
		}
		if mustMove {
			// No stealthy option: fall back to reporting the truth.
			zone = pl.Trace.Days[d].Zone[o][t]
			arrival = actualArrival(pl.Trace, d, o, t)
			_, cov := pl.Model.MaxStay(o, zone, arrival)
			lenient = !cov
			commitUntil = t
		}
		p.setReport(pl.Trace, d, o, t, zone)
	}
}

// PlanBIoTA reproduces the state-of-the-art baseline the paper compares
// against (Table V): a greedy FDI attack that maximises instantaneous
// demand subject only to rule-based verification (zone capacity, occupant
// conservation) — no behavioural ADM awareness. Its vectors keep a large
// margin from the benign distribution, which is why the clustering ADMs
// flag 60-100% of them (Section VII-A).
func (pl *Planner) PlanBIoTA() (*Plan, error) {
	p := newPlan(pl.Trace, "BIoTA")
	house := pl.Trace.House
	for d := 0; d < pl.Trace.NumDays(); d++ {
		for t := 0; t < aras.SlotsPerDay; t++ {
			counts := make(map[home.ZoneID]int)
			for o := range house.Occupants {
				cost := pl.costFor(d, o)
				actual := pl.Trace.Days[d].Zone[o][t]
				bestZone, bestCost := actual, cost(t, actual)
				for _, z := range zonesOf(house) {
					if !pl.Cap.CanReport(o, t, actual, z) {
						continue
					}
					// Rule-based capacity verification.
					if counts[z]+1 > house.Zone(z).MaxOccupancy {
						continue
					}
					if c := cost(t, z); c > bestCost {
						bestZone, bestCost = z, c
					}
				}
				counts[bestZone]++
				p.setReport(pl.Trace, d, o, t, bestZone)
			}
		}
	}
	return p, nil
}
