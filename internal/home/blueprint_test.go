package home

import (
	"errors"
	"testing"
)

// eightZone returns a valid multi-bedroom blueprint for the builder tests.
func eightZone() Blueprint {
	return Blueprint{
		Name: "test8",
		Zones: []Zone{
			{Name: "Bed1", Kind: Bedroom, VolumeFt3: 900, AreaFt2: 100, MaxOccupancy: 2},
			{Name: "Bed2", Kind: Bedroom, VolumeFt3: 900, AreaFt2: 100, MaxOccupancy: 2},
			{Name: "Bed3", Kind: Bedroom, VolumeFt3: 900, AreaFt2: 100, MaxOccupancy: 2},
			{Name: "Living", Kind: Livingroom, VolumeFt3: 2000, AreaFt2: 220, MaxOccupancy: 8},
			{Name: "Kitchen", Kind: Kitchen, VolumeFt3: 1000, AreaFt2: 110, MaxOccupancy: 4},
			{Name: "BathA", Kind: Bathroom, VolumeFt3: 450, AreaFt2: 50, MaxOccupancy: 1},
			{Name: "BathB", Kind: Bathroom, VolumeFt3: 450, AreaFt2: 50, MaxOccupancy: 1},
			{Name: "Office", Kind: Livingroom, VolumeFt3: 800, AreaFt2: 90, MaxOccupancy: 2},
		},
		Occupants: []Occupant{
			{Name: "P", Demographics: 1.0},
			{Name: "Q", Demographics: 1.1},
			{Name: "R", Demographics: 0.9},
		},
	}
}

func TestBuildHouseMultiZone(t *testing.T) {
	h, err := BuildHouse(eightZone())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Zones) != 9 { // Outside prepended
		t.Fatalf("%d zones, want 9", len(h.Zones))
	}
	for i, z := range h.Zones {
		if z.ID != ZoneID(i) {
			t.Errorf("zone %d has ID %d", i, z.ID)
		}
	}
	// Round-robin bedroom assignment: three occupants, three bedrooms.
	seen := map[ZoneID]bool{}
	for o := range h.Occupants {
		z := h.ZoneForActivity(o, Sleeping)
		if h.KindOf(z) != Bedroom {
			t.Errorf("occupant %d sleeps in %v-kind zone", o, h.KindOf(z))
		}
		if seen[z] {
			t.Errorf("occupant %d shares a bedroom despite spare rooms", o)
		}
		seen[z] = true
	}
	// Kind-aware intense activity: an extra living-kind zone (Office, id 8)
	// must report the living room's peak activity.
	if got := h.MostIntenseActivity(8); got != MostIntenseActivityInZone(Livingroom) {
		t.Errorf("office intense activity %v, want living-kind %v", got, MostIntenseActivityInZone(Livingroom))
	}
	// Default fit-out retargets by kind: every appliance in a real zone.
	if len(h.Appliances) == 0 {
		t.Fatal("no appliances")
	}
	for _, a := range h.Appliances {
		if !a.Zone.Conditioned() || int(a.Zone) >= len(h.Zones) {
			t.Errorf("appliance %s in bad zone %d", a.Name, a.Zone)
		}
	}
	// Activity links resolve by name on the retargeted fit-out.
	if appls := h.AppliancesForActivity(PreparingDinner); len(appls) != 2 {
		t.Errorf("dinner links %d appliances, want 2", len(appls))
	}
}

func TestBuildHouseMatchesNewHouse(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		bp, err := ArasBlueprint(name)
		if err != nil {
			t.Fatal(err)
		}
		built, err := BuildHouse(bp)
		if err != nil {
			t.Fatal(err)
		}
		legacy := MustHouse(name)
		if len(built.Zones) != len(legacy.Zones) || len(built.Appliances) != len(legacy.Appliances) {
			t.Fatalf("house %s: blueprint build diverges from NewHouse", name)
		}
		for z := range legacy.Zones {
			if built.Zones[z] != legacy.Zones[z] {
				t.Errorf("house %s zone %d: %+v != %+v", name, z, built.Zones[z], legacy.Zones[z])
			}
		}
		for o := range legacy.Occupants {
			for a := ActivityID(0); a < NumActivities; a++ {
				if built.ZoneForActivity(o, a) != ActivityByID(a).Zone {
					t.Errorf("house %s: occupant %d activity %v not canonical", name, o, a)
				}
			}
		}
	}
}

func TestBuildHouseValidation(t *testing.T) {
	check := func(name string, mutate func(*Blueprint)) {
		bp := eightZone()
		mutate(&bp)
		if _, err := BuildHouse(bp); !errors.Is(err, ErrBadBlueprint) {
			t.Errorf("%s: got %v, want ErrBadBlueprint", name, err)
		}
	}
	check("empty name", func(bp *Blueprint) { bp.Name = "" })
	check("no occupants", func(bp *Blueprint) { bp.Occupants = nil })
	check("no zones", func(bp *Blueprint) { bp.Zones = nil })
	check("zero volume", func(bp *Blueprint) { bp.Zones[0].VolumeFt3 = 0 })
	check("zero capacity", func(bp *Blueprint) { bp.Zones[0].MaxOccupancy = 0 })
	check("bad demographics", func(bp *Blueprint) { bp.Occupants[0].Demographics = 0 })
	check("missing kind past canon", func(bp *Blueprint) { bp.Zones[7].Kind = Outside })
	check("missing kitchen", func(bp *Blueprint) { bp.Zones[4].Kind = Livingroom })
	check("bad appliance zone", func(bp *Blueprint) {
		bp.Appliances = []Appliance{{Name: "X", Zone: 99, PowerW: 100}}
	})
	check("bad pin", func(bp *Blueprint) {
		bp.ZoneAssignments = [][]ZoneID{{Outside, 99, 0, 0, 0}}
	})
	check("negative pin", func(bp *Blueprint) {
		bp.ZoneAssignments = [][]ZoneID{{Outside, -1, 0, 0, 0}}
	})
	check("bad activity link", func(bp *Blueprint) {
		bp.ActivityAppliances = map[ActivityID][]string{ActivityID(99): {"Oven"}}
	})
	check("link to unknown appliance", func(bp *Blueprint) {
		bp.ActivityAppliances = map[ActivityID][]string{WatchingTV: {"Tv"}} // typo for "TV"
	})
}

func TestZoneAssignmentPinning(t *testing.T) {
	bp := eightZone()
	// Pin all three occupants into Bed2 (zone 2) and BathB (zone 7).
	bp.ZoneAssignments = [][]ZoneID{
		{Outside, 2, 0, 0, 7},
		{Outside, 2, 0, 0, 7},
		{Outside, 2, 0, 0, 7},
	}
	h, err := BuildHouse(bp)
	if err != nil {
		t.Fatal(err)
	}
	for o := range h.Occupants {
		if z := h.ZoneForActivity(o, Sleeping); z != 2 {
			t.Errorf("occupant %d sleeps in %d, want pinned 2", o, z)
		}
		if z := h.ZoneForActivity(o, HavingShower); z != 7 {
			t.Errorf("occupant %d showers in %d, want pinned 7", o, z)
		}
		// Unpinned kinds still round-robin.
		if k := h.KindOf(h.ZoneForActivity(o, PreparingDinner)); k != Kitchen {
			t.Errorf("occupant %d cooks in %v-kind zone", o, k)
		}
	}
}
