package home

import (
	"math"
	"testing"
)

func TestNewHouseKnownNames(t *testing.T) {
	for _, name := range []string{"A", "a", "B", "b"} {
		h, err := NewHouse(name)
		if err != nil {
			t.Fatalf("NewHouse(%q): %v", name, err)
		}
		if len(h.Zones) != NumZones {
			t.Errorf("house %s: %d zones, want %d", name, len(h.Zones), NumZones)
		}
		if len(h.Occupants) != 2 {
			t.Errorf("house %s: %d occupants, want 2", name, len(h.Occupants))
		}
		if len(h.Appliances) != 13 {
			t.Errorf("house %s: %d appliances, want 13 (Table VII)", name, len(h.Appliances))
		}
	}
}

func TestNewHouseUnknown(t *testing.T) {
	if _, err := NewHouse("C"); err == nil {
		t.Error("unknown house should error")
	}
}

func TestMustHousePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHouse(\"zzz\") should panic")
		}
	}()
	MustHouse("zzz")
}

func TestZoneStrings(t *testing.T) {
	tests := map[ZoneID]string{
		Outside: "Outside", Bedroom: "Bedroom", Livingroom: "Livingroom",
		Kitchen: "Kitchen", Bathroom: "Bathroom",
	}
	for z, want := range tests {
		if got := z.String(); got != want {
			t.Errorf("zone %d = %q, want %q", z, got, want)
		}
	}
	if got := ZoneID(99).String(); got != "Zone(99)" {
		t.Errorf("out-of-range zone = %q", got)
	}
}

func TestConditioned(t *testing.T) {
	if Outside.Conditioned() {
		t.Error("Outside must not be conditioned")
	}
	for _, z := range []ZoneID{Bedroom, Livingroom, Kitchen, Bathroom} {
		if !z.Conditioned() {
			t.Errorf("%v should be conditioned", z)
		}
	}
}

func TestActivityTableComplete(t *testing.T) {
	acts := Activities()
	if len(acts) != NumActivities {
		t.Fatalf("%d activities, want %d", len(acts), NumActivities)
	}
	for i, a := range acts {
		if ActivityID(i) != a.ID {
			t.Errorf("activity %d has ID %d", i, a.ID)
		}
		if a.Name == "" {
			t.Errorf("activity %d has empty name", i)
		}
		if a.ID != GoingOut && a.MET <= 0 {
			t.Errorf("activity %v has non-positive MET", a.Name)
		}
		if int(a.Zone) < 0 || int(a.Zone) >= NumZones {
			t.Errorf("activity %v has bad zone", a.Name)
		}
	}
}

func TestActivityRates(t *testing.T) {
	sleep := ActivityByID(Sleeping)
	cook := ActivityByID(PreparingDinner)
	if cook.CO2Ft3PerMin(1.0) <= sleep.CO2Ft3PerMin(1.0) {
		t.Error("cooking must generate more CO2 than sleeping")
	}
	if cook.HeatW(1.0) <= sleep.HeatW(1.0) {
		t.Error("cooking must generate more heat than sleeping")
	}
	// Demographics scaling is linear.
	if math.Abs(cook.HeatW(2.0)-2*cook.HeatW(1.0)) > 1e-12 {
		t.Error("heat should scale linearly with demographics")
	}
	// Sanity: ~1 MET ≈ 75 W sensible.
	watching := ActivityByID(WatchingTV)
	if math.Abs(watching.HeatW(1.0)-75) > 1e-9 {
		t.Errorf("1-MET heat = %v, want 75", watching.HeatW(1.0))
	}
}

func TestActivityByIDOutOfRange(t *testing.T) {
	a := ActivityByID(ActivityID(999))
	if a.MET <= 0 {
		t.Error("fallback activity should have positive MET")
	}
}

func TestActivitiesInZone(t *testing.T) {
	kitchen := ActivitiesInZone(Kitchen)
	if len(kitchen) == 0 {
		t.Fatal("kitchen must host activities")
	}
	for _, id := range kitchen {
		if ActivityByID(id).Zone != Kitchen {
			t.Errorf("%v not a kitchen activity", id)
		}
	}
}

func TestMostIntenseActivityInZone(t *testing.T) {
	got := MostIntenseActivityInZone(Kitchen)
	if got != PreparingDinner {
		t.Errorf("most intense kitchen activity = %v, want PreparingDinner", got)
	}
	// Every zone with activities must return one of its own.
	for z := ZoneID(1); z < NumZones; z++ {
		a := MostIntenseActivityInZone(z)
		if ActivityByID(a).Zone != z {
			t.Errorf("zone %v: most intense activity %v is elsewhere", z, a)
		}
	}
}

func TestApplianceHeat(t *testing.T) {
	a := Appliance{PowerW: 1000, HeatFraction: 0.3}
	if a.HeatW() != 300 {
		t.Errorf("HeatW = %v, want 300", a.HeatW())
	}
}

func TestHouseApplianceQueries(t *testing.T) {
	h := MustHouse("A")
	kitchenAppl := h.AppliancesInZone(Kitchen)
	if len(kitchenAppl) != 5 {
		t.Errorf("%d kitchen appliances, want 5", len(kitchenAppl))
	}
	for _, i := range kitchenAppl {
		if h.Appliances[i].Zone != Kitchen {
			t.Errorf("appliance %d not in kitchen", i)
		}
	}
	dishAppls := h.AppliancesForActivity(WashingDishes)
	if len(dishAppls) != 1 || h.Appliances[dishAppls[0]].Name != "Dishwasher" {
		t.Errorf("washing dishes appliances = %v", dishAppls)
	}
	if h.AppliancesForActivity(Sleeping) != nil {
		t.Error("sleeping should use no appliances")
	}
	if h.AppliancesForActivity(ActivityID(-1)) != nil {
		t.Error("out-of-range activity should return nil")
	}
}

func TestHouseBSmallerThanA(t *testing.T) {
	a, b := MustHouse("A"), MustHouse("B")
	for z := ZoneID(1); z < NumZones; z++ {
		if b.Zone(z).VolumeFt3 >= a.Zone(z).VolumeFt3 {
			t.Errorf("house B zone %v should be smaller than house A", z)
		}
	}
}

func TestHouseZoneAccessor(t *testing.T) {
	h := MustHouse("A")
	if h.Zone(Kitchen).Name != "Kitchen" {
		t.Errorf("Zone(Kitchen).Name = %q", h.Zone(Kitchen).Name)
	}
}
