package home

import "fmt"

// ActivityID indexes the 27 ARAS activities. Activity 0 (GoingOut) means
// the occupant is outside the home.
type ActivityID int

// The 27 ARAS activity labels (Alemdar et al., paper reference [5]).
const (
	GoingOut ActivityID = iota
	PreparingBreakfast
	HavingBreakfast
	PreparingLunch
	HavingLunch
	PreparingDinner
	HavingDinner
	WashingDishes
	HavingSnack
	Sleeping
	WatchingTV
	Studying
	HavingShower
	Toileting
	Napping
	UsingInternet
	ReadingBook
	Laundry
	Shaving
	BrushingTeeth
	TalkingOnPhone
	ListeningToMusic
	Cleaning
	HavingConversation
	HavingGuest
	ChangingClothes
	Other
)

// NumActivities is the number of ARAS activity labels.
const NumActivities = 27

// Activity describes the physiological and spatial profile of one activity.
type Activity struct {
	ID   ActivityID
	Name string
	// MET is the metabolic-equivalent intensity. Persily & de Jonge [20]
	// give CO2 generation ≈ 0.0042 L/s and sensible heat ≈ 75 W per MET
	// for an average adult; both scale linearly with MET and with the
	// occupant's demographics factor.
	MET float64
	// Zone is the zone in which the activity is conducted.
	Zone ZoneID
	// Appliances lists appliance indices (into House.Appliances) that the
	// activity habitually switches on — the activity-appliance relationship
	// the SHATTER controller exploits (Section II reason 2).
	Appliances []int
}

// Per-MET physiological rates for an average adult (Persily & de Jonge).
const (
	// CO2LPerMinPerMET is CO2 generation in litres/minute at 1 MET.
	CO2LPerMinPerMET = 0.252
	// SensibleHeatWPerMET is sensible heat in watts at 1 MET.
	SensibleHeatWPerMET = 75.0
	// LitersPerFt3 converts litres to cubic feet for zone mass balances.
	LitersPerFt3 = 28.3168
)

// CO2Ft3PerMin returns the activity's CO2 generation in ft³/min for an
// occupant with the given demographics factor (P^CE in the paper).
func (a Activity) CO2Ft3PerMin(demographics float64) float64 {
	return a.MET * demographics * CO2LPerMinPerMET / LitersPerFt3
}

// HeatW returns the activity's sensible heat in watts for an occupant with
// the given demographics factor (P^HR in the paper).
func (a Activity) HeatW(demographics float64) float64 {
	return a.MET * demographics * SensibleHeatWPerMET
}

// String returns the activity name.
func (a ActivityID) String() string {
	if a < 0 || int(a) >= len(activityTable) {
		return fmt.Sprintf("Activity(%d)", int(a))
	}
	return activityTable[a].Name
}

// activityTable defines the canonical 27 activities. MET values follow the
// Compendium of Physical Activities; zone assignments follow the ARAS
// testbed layout. Appliance links are filled in by house construction
// (appliance indices are house-specific).
var activityTable = [NumActivities]Activity{
	GoingOut:           {ID: GoingOut, Name: "GoingOut", MET: 0, Zone: Outside},
	PreparingBreakfast: {ID: PreparingBreakfast, Name: "PreparingBreakfast", MET: 2.5, Zone: Kitchen},
	HavingBreakfast:    {ID: HavingBreakfast, Name: "HavingBreakfast", MET: 1.5, Zone: Kitchen},
	PreparingLunch:     {ID: PreparingLunch, Name: "PreparingLunch", MET: 2.5, Zone: Kitchen},
	HavingLunch:        {ID: HavingLunch, Name: "HavingLunch", MET: 1.5, Zone: Kitchen},
	PreparingDinner:    {ID: PreparingDinner, Name: "PreparingDinner", MET: 3.3, Zone: Kitchen},
	HavingDinner:       {ID: HavingDinner, Name: "HavingDinner", MET: 1.5, Zone: Kitchen},
	WashingDishes:      {ID: WashingDishes, Name: "WashingDishes", MET: 2.3, Zone: Kitchen},
	HavingSnack:        {ID: HavingSnack, Name: "HavingSnack", MET: 1.4, Zone: Livingroom},
	Sleeping:           {ID: Sleeping, Name: "Sleeping", MET: 0.95, Zone: Bedroom},
	WatchingTV:         {ID: WatchingTV, Name: "WatchingTV", MET: 1.0, Zone: Livingroom},
	Studying:           {ID: Studying, Name: "Studying", MET: 1.3, Zone: Livingroom},
	HavingShower:       {ID: HavingShower, Name: "HavingShower", MET: 2.0, Zone: Bathroom},
	Toileting:          {ID: Toileting, Name: "Toileting", MET: 1.5, Zone: Bathroom},
	Napping:            {ID: Napping, Name: "Napping", MET: 0.95, Zone: Bedroom},
	UsingInternet:      {ID: UsingInternet, Name: "UsingInternet", MET: 1.3, Zone: Livingroom},
	ReadingBook:        {ID: ReadingBook, Name: "ReadingBook", MET: 1.3, Zone: Livingroom},
	Laundry:            {ID: Laundry, Name: "Laundry", MET: 2.0, Zone: Bathroom},
	Shaving:            {ID: Shaving, Name: "Shaving", MET: 1.8, Zone: Bathroom},
	BrushingTeeth:      {ID: BrushingTeeth, Name: "BrushingTeeth", MET: 2.0, Zone: Bathroom},
	TalkingOnPhone:     {ID: TalkingOnPhone, Name: "TalkingOnPhone", MET: 1.4, Zone: Livingroom},
	ListeningToMusic:   {ID: ListeningToMusic, Name: "ListeningToMusic", MET: 1.0, Zone: Livingroom},
	Cleaning:           {ID: Cleaning, Name: "Cleaning", MET: 3.3, Zone: Livingroom},
	HavingConversation: {ID: HavingConversation, Name: "HavingConversation", MET: 1.5, Zone: Livingroom},
	HavingGuest:        {ID: HavingGuest, Name: "HavingGuest", MET: 1.5, Zone: Livingroom},
	ChangingClothes:    {ID: ChangingClothes, Name: "ChangingClothes", MET: 2.0, Zone: Bedroom},
	Other:              {ID: Other, Name: "Other", MET: 1.5, Zone: Livingroom},
}

// Activities returns a copy of the canonical activity table.
func Activities() []Activity {
	out := make([]Activity, NumActivities)
	copy(out, activityTable[:])
	return out
}

// ActivityByID returns the canonical profile for id.
func ActivityByID(id ActivityID) Activity {
	if id < 0 || int(id) >= NumActivities {
		return Activity{ID: id, Name: id.String(), MET: 1.2, Zone: Livingroom}
	}
	return activityTable[id]
}

// ActivitiesInZone returns all activity ids conducted in zone z.
func ActivitiesInZone(z ZoneID) []ActivityID {
	var out []ActivityID
	for _, a := range activityTable {
		if a.Zone == z {
			out = append(out, a.ID)
		}
	}
	return out
}

// mostIntenseInZone caches MostIntenseActivityInZone per zone — the attack
// planners query it for every falsified occupant-slot.
var mostIntenseInZone = func() [NumZones]ActivityID {
	var out [NumZones]ActivityID
	for z := ZoneID(0); z < NumZones; z++ {
		best, bestMET := Other, -1.0
		for _, a := range activityTable {
			if a.Zone == z && a.MET > bestMET {
				best, bestMET = a.ID, a.MET
			}
		}
		out[z] = best
	}
	return out
}()

// MostIntenseActivityInZone returns the activity in z with the highest MET —
// the activity a greedy attacker reports to maximise instantaneous demand
// (Algorithm 2).
func MostIntenseActivityInZone(z ZoneID) ActivityID {
	if z < 0 || z >= NumZones {
		return Other
	}
	return mostIntenseInZone[z]
}
