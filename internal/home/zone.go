// Package home models the smart-home domain of the SHATTER paper: zones,
// occupants, the 27 ARAS activities with activity-specific metabolic CO2 and
// heat generation rates (Persily & de Jonge, paper reference [20]), and the
// smart appliances whose status feeds both the activity-aware DCHVAC
// controller and the appliance-triggering attack surface.
package home

import "fmt"

// ZoneID indexes the zones of an ARAS-style home. Zone 0 is "outside the
// home" (no conditioning); zones 1-4 are the conditioned spaces, matching
// the paper's case-study numbering (Z-1 Bedroom … Z-4 Bathroom).
type ZoneID int

// The canonical ARAS zone layout.
const (
	Outside ZoneID = iota
	Bedroom
	Livingroom
	Kitchen
	Bathroom
)

// NumZones is the number of canonical zones including Outside.
const NumZones = 5

// zoneNames is indexed by ZoneID.
var zoneNames = [...]string{"Outside", "Bedroom", "Livingroom", "Kitchen", "Bathroom"}

// String returns the zone's human-readable name.
func (z ZoneID) String() string {
	if z < 0 || int(z) >= len(zoneNames) {
		return fmt.Sprintf("Zone(%d)", int(z))
	}
	return zoneNames[z]
}

// Conditioned reports whether the zone is served by the HVAC system.
func (z ZoneID) Conditioned() bool { return z != Outside }

// Zone describes one conditioned (or outside) space of the home.
type Zone struct {
	ID ZoneID
	// Name is the display name ("Bedroom").
	Name string
	// Kind classifies the zone by the canonical ARAS space it behaves like
	// (Bedroom, Livingroom, Kitchen, or Bathroom, expressed as the canonical
	// ZoneID). Activities whose canonical zone matches the kind are conducted
	// there, which is how houses with more zones than the ARAS pair (second
	// bedrooms, extra bathrooms) map the 27 activities onto their layout.
	// BuildHouse normalises a zero Kind on a conditioned canonical zone to
	// the zone's own ID, so the ARAS houses keep Kind == ID.
	Kind ZoneID
	// VolumeFt3 is the air volume in cubic feet (P^V_z in the paper).
	VolumeFt3 float64
	// AreaFt2 is the floor area in square feet, used by the ASHRAE
	// baseline's area-based ventilation term.
	AreaFt2 float64
	// MaxOccupancy is the rule-based capacity bound (BIoTA-style
	// verification rule).
	MaxOccupancy int
}
