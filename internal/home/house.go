package home

import (
	"errors"
	"fmt"
)

// Occupant describes one resident. The demographics factor scales the
// per-MET CO2/heat rates (Persily & de Jonge observe, e.g., a middle-aged
// man generating roughly twice an infant's pollutants — Section II
// reason 3).
type Occupant struct {
	ID   int
	Name string
	// Demographics scales physiological generation rates (1.0 = average
	// adult).
	Demographics float64
}

// Appliance describes one smart appliance.
type Appliance struct {
	ID   int
	Name string
	// Zone is where the appliance is installed (D_{z,d} in the paper).
	Zone ZoneID
	// PowerW is the electrical draw when on (P^PC_d).
	PowerW float64
	// HeatFraction is the fraction of PowerW radiated as sensible heat into
	// the zone (P^HRF_d; e.g. LED lighting radiates ≈12% — paper ref [34]).
	HeatFraction float64
	// VoiceTriggerable reports whether the appliance can be activated via
	// (inaudible) voice commands — the appliance-triggering attack surface.
	VoiceTriggerable bool
}

// HeatW returns the appliance's sensible heat contribution in watts when on.
func (a Appliance) HeatW() float64 { return a.PowerW * a.HeatFraction }

// House is a complete home configuration: geometry, residents, appliances.
type House struct {
	Name       string
	Zones      []Zone
	Occupants  []Occupant
	Appliances []Appliance

	// activityAppliances[activity] lists appliance indices habitually used
	// during that activity in this house.
	activityAppliances [NumActivities][]int
}

// ErrUnknownHouse is returned by NewHouse for unrecognised names.
var ErrUnknownHouse = errors.New("home: unknown house (want \"A\" or \"B\")")

// NewHouse constructs one of the two ARAS-style houses. House A is the
// larger apartment with two working-age adults; House B is smaller with one
// adult away most of the day, which is why the paper's House B costs run
// lower across Tables V-VII.
func NewHouse(name string) (*House, error) {
	switch name {
	case "A", "a":
		return houseA(), nil
	case "B", "b":
		return houseB(), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownHouse, name)
	}
}

// MustHouse is NewHouse for the two known names; it panics on programmer
// error and exists for tests and examples.
func MustHouse(name string) *House {
	h, err := NewHouse(name)
	if err != nil {
		panic(err)
	}
	return h
}

func standardZones(scale float64) []Zone {
	return []Zone{
		{ID: Outside, Name: "Outside", VolumeFt3: 0, AreaFt2: 0, MaxOccupancy: 1 << 20},
		{ID: Bedroom, Name: "Bedroom", VolumeFt3: 1080 * scale, AreaFt2: 120 * scale, MaxOccupancy: 3},
		{ID: Livingroom, Name: "Livingroom", VolumeFt3: 1620 * scale, AreaFt2: 180 * scale, MaxOccupancy: 6},
		{ID: Kitchen, Name: "Kitchen", VolumeFt3: 972 * scale, AreaFt2: 108 * scale, MaxOccupancy: 4},
		{ID: Bathroom, Name: "Bathroom", VolumeFt3: 486 * scale, AreaFt2: 54 * scale, MaxOccupancy: 2},
	}
}

// standardAppliances returns the 13-appliance fit-out used by Table VII.
func standardAppliances() []Appliance {
	return []Appliance{
		{ID: 0, Name: "Oven", Zone: Kitchen, PowerW: 2000, HeatFraction: 0.35, VoiceTriggerable: true},
		{ID: 1, Name: "Microwave", Zone: Kitchen, PowerW: 1100, HeatFraction: 0.25, VoiceTriggerable: true},
		{ID: 2, Name: "Dishwasher", Zone: Kitchen, PowerW: 1200, HeatFraction: 0.30, VoiceTriggerable: true},
		{ID: 3, Name: "Kettle", Zone: Kitchen, PowerW: 1500, HeatFraction: 0.40, VoiceTriggerable: true},
		{ID: 4, Name: "CoffeeMaker", Zone: Kitchen, PowerW: 900, HeatFraction: 0.35, VoiceTriggerable: true},
		{ID: 5, Name: "TV", Zone: Livingroom, PowerW: 150, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 6, Name: "Stereo", Zone: Livingroom, PowerW: 80, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 7, Name: "Computer", Zone: Livingroom, PowerW: 200, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 8, Name: "GameConsole", Zone: Livingroom, PowerW: 120, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 9, Name: "BedroomTV", Zone: Bedroom, PowerW: 100, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 10, Name: "HairDryer", Zone: Bathroom, PowerW: 1200, HeatFraction: 0.60, VoiceTriggerable: true},
		{ID: 11, Name: "Washer", Zone: Bathroom, PowerW: 500, HeatFraction: 0.30, VoiceTriggerable: true},
		{ID: 12, Name: "Dryer", Zone: Bathroom, PowerW: 1800, HeatFraction: 0.40, VoiceTriggerable: true},
	}
}

// linkActivities wires the activity→appliance relationships for the
// standard fit-out.
func (h *House) linkActivities() {
	link := map[ActivityID][]int{
		PreparingBreakfast: {3, 4},     // kettle, coffee maker
		PreparingLunch:     {1},        // microwave
		PreparingDinner:    {0, 1},     // oven, microwave
		WashingDishes:      {2},        // dishwasher
		WatchingTV:         {5},        // tv
		ListeningToMusic:   {6},        // stereo
		UsingInternet:      {7},        // computer
		Studying:           {7},        // computer
		Laundry:            {11, 12},   // washer, dryer
		Shaving:            {10},       // hair dryer (grooming)
		HavingGuest:        {5},        // tv
	}
	for act, appls := range link {
		h.activityAppliances[act] = appls
	}
}

// AppliancesForActivity returns the appliance indices habitually on during
// the activity (empty for activities that use none).
func (h *House) AppliancesForActivity(a ActivityID) []int {
	if a < 0 || int(a) >= NumActivities {
		return nil
	}
	return h.activityAppliances[a]
}

// AppliancesInZone returns the indices of appliances installed in zone z.
func (h *House) AppliancesInZone(z ZoneID) []int {
	var out []int
	for i, a := range h.Appliances {
		if a.Zone == z {
			out = append(out, i)
		}
	}
	return out
}

// Zone returns the zone with the given id.
func (h *House) Zone(id ZoneID) Zone { return h.Zones[id] }

func houseA() *House {
	h := &House{
		Name:  "A",
		Zones: standardZones(1.0),
		Occupants: []Occupant{
			{ID: 0, Name: "Alice", Demographics: 1.0},
			{ID: 1, Name: "Bob", Demographics: 1.15},
		},
		Appliances: standardAppliances(),
	}
	h.linkActivities()
	return h
}

func houseB() *House {
	h := &House{
		Name:  "B",
		Zones: standardZones(0.8),
		Occupants: []Occupant{
			{ID: 0, Name: "Carol", Demographics: 0.9},
			{ID: 1, Name: "Dave", Demographics: 1.1},
		},
		Appliances: standardAppliances(),
	}
	h.linkActivities()
	return h
}
