package home

import (
	"errors"
	"fmt"
)

// Occupant describes one resident. The demographics factor scales the
// per-MET CO2/heat rates (Persily & de Jonge observe, e.g., a middle-aged
// man generating roughly twice an infant's pollutants — Section II
// reason 3).
type Occupant struct {
	ID   int
	Name string
	// Demographics scales physiological generation rates (1.0 = average
	// adult).
	Demographics float64
}

// Appliance describes one smart appliance.
type Appliance struct {
	ID   int
	Name string
	// Zone is where the appliance is installed (D_{z,d} in the paper).
	Zone ZoneID
	// PowerW is the electrical draw when on (P^PC_d).
	PowerW float64
	// HeatFraction is the fraction of PowerW radiated as sensible heat into
	// the zone (P^HRF_d; e.g. LED lighting radiates ≈12% — paper ref [34]).
	HeatFraction float64
	// VoiceTriggerable reports whether the appliance can be activated via
	// (inaudible) voice commands — the appliance-triggering attack surface.
	VoiceTriggerable bool
}

// HeatW returns the appliance's sensible heat contribution in watts when on.
func (a Appliance) HeatW() float64 { return a.PowerW * a.HeatFraction }

// House is a complete home configuration: geometry, residents, appliances.
type House struct {
	Name       string
	Zones      []Zone
	Occupants  []Occupant
	Appliances []Appliance

	// activityAppliances[activity] lists appliance indices habitually used
	// during that activity in this house.
	activityAppliances [NumActivities][]int
	// assigned[o][kind] is the zone occupant o uses for activities whose
	// canonical zone is kind. For the canonical single-zone-per-kind ARAS
	// layout this is the identity mapping.
	assigned [][]ZoneID
}

// Blueprint is the declarative house description BuildHouse assembles —
// the data-driven replacement for the hardwired A/B constructors, used by
// the scenario layer to express arbitrary homes.
type Blueprint struct {
	// Name identifies the house (trace CSVs and dataset names embed it).
	Name string
	// Zones lists the zones in ID order. A leading Outside zone is optional;
	// BuildHouse inserts the canonical one when absent. Conditioned zones
	// must carry a Kind (canonical zones may leave it zero; it normalises to
	// the zone's own ID).
	Zones []Zone
	// Occupants lists the residents; IDs are normalised to slice order.
	Occupants []Occupant
	// Appliances is the smart-appliance fit-out. Nil selects the standard
	// 13-appliance fit-out with each appliance installed in the first zone
	// of its canonical kind.
	Appliances []Appliance
	// ActivityAppliances maps an activity to the names of appliances
	// habitually on while it is conducted. Nil selects the standard links.
	ActivityAppliances map[ActivityID][]string
	// ZoneAssignments pins occupant→zone per kind: ZoneAssignments[o][k] is
	// the zone occupant o uses for activities whose canonical zone is k. A
	// nil table, short row, or zero entry falls back to round-robin over the
	// zones of that kind (occupant o gets the o mod n-th zone).
	ZoneAssignments [][]ZoneID
}

// ErrUnknownHouse is returned by NewHouse for unrecognised names.
var ErrUnknownHouse = errors.New("home: unknown house (want \"A\" or \"B\")")

// ErrBadBlueprint is returned by BuildHouse for invalid blueprints.
var ErrBadBlueprint = errors.New("home: invalid blueprint")

// NewHouse constructs one of the two ARAS-style houses. House A is the
// larger apartment with two working-age adults; House B is smaller with one
// adult away most of the day, which is why the paper's House B costs run
// lower across Tables V-VII. Both are thin wrappers over BuildHouse with
// the canonical blueprints; other homes come from the scenario layer.
func NewHouse(name string) (*House, error) {
	bp, err := ArasBlueprint(name)
	if err != nil {
		return nil, err
	}
	return BuildHouse(bp)
}

// MustHouse is NewHouse for the two known names; it panics on programmer
// error and exists for tests and examples.
func MustHouse(name string) *House {
	h, err := NewHouse(name)
	if err != nil {
		panic(err)
	}
	return h
}

// ArasBlueprint returns the canonical blueprint of ARAS house "A" or "B" —
// the declarative source NewHouse builds from, exported so the scenario
// registry can derive its paper-faithful specs from the same data.
func ArasBlueprint(name string) (Blueprint, error) {
	switch name {
	case "A", "a":
		return Blueprint{
			Name:  "A",
			Zones: standardZones(1.0),
			Occupants: []Occupant{
				{ID: 0, Name: "Alice", Demographics: 1.0},
				{ID: 1, Name: "Bob", Demographics: 1.15},
			},
		}, nil
	case "B", "b":
		return Blueprint{
			Name:  "B",
			Zones: standardZones(0.8),
			Occupants: []Occupant{
				{ID: 0, Name: "Carol", Demographics: 0.9},
				{ID: 1, Name: "Dave", Demographics: 1.1},
			},
		}, nil
	default:
		return Blueprint{}, fmt.Errorf("%w: %q", ErrUnknownHouse, name)
	}
}

// BuildHouse assembles and validates a House from a blueprint.
func BuildHouse(bp Blueprint) (*House, error) {
	if bp.Name == "" {
		return nil, fmt.Errorf("%w: empty house name", ErrBadBlueprint)
	}
	if len(bp.Occupants) == 0 {
		return nil, fmt.Errorf("%w: house %q has no occupants", ErrBadBlueprint, bp.Name)
	}
	zones := make([]Zone, 0, len(bp.Zones)+1)
	// A leading Outside zone is recognised by name plus the Outside shape
	// (no volume, no kind); blueprints typically list conditioned zones only
	// and leave IDs unset, so ID zero cannot mark Outside, and a conditioned
	// zone with a forgotten volume must fall through to validation rather
	// than be silently absorbed as Outside.
	hasOutside := len(bp.Zones) > 0 && bp.Zones[0].Name == "Outside" &&
		bp.Zones[0].VolumeFt3 == 0 && bp.Zones[0].Kind == Outside
	if !hasOutside {
		zones = append(zones, Zone{ID: Outside, Name: "Outside", MaxOccupancy: 1 << 20})
	}
	zones = append(zones, bp.Zones...)
	if len(zones) < 2 {
		return nil, fmt.Errorf("%w: house %q has no conditioned zones", ErrBadBlueprint, bp.Name)
	}
	for i := range zones {
		z := &zones[i]
		z.ID = ZoneID(i)
		if i == 0 {
			z.Kind = Outside
			continue
		}
		if z.Kind == Outside {
			// Canonical shorthand: conditioned zone with unset kind.
			if i >= NumZones {
				return nil, fmt.Errorf("%w: house %q zone %q needs a Kind", ErrBadBlueprint, bp.Name, z.Name)
			}
			z.Kind = ZoneID(i)
		}
		if z.Kind <= Outside || z.Kind >= NumZones {
			return nil, fmt.Errorf("%w: house %q zone %q has kind %d", ErrBadBlueprint, bp.Name, z.Name, z.Kind)
		}
		if z.VolumeFt3 <= 0 || z.AreaFt2 <= 0 {
			return nil, fmt.Errorf("%w: house %q zone %q needs positive volume and area", ErrBadBlueprint, bp.Name, z.Name)
		}
		if z.MaxOccupancy < 1 {
			return nil, fmt.Errorf("%w: house %q zone %q needs MaxOccupancy >= 1", ErrBadBlueprint, bp.Name, z.Name)
		}
	}
	occupants := append([]Occupant(nil), bp.Occupants...)
	for i := range occupants {
		occupants[i].ID = i
		if occupants[i].Demographics <= 0 {
			return nil, fmt.Errorf("%w: house %q occupant %q needs positive demographics", ErrBadBlueprint, bp.Name, occupants[i].Name)
		}
	}
	// Index zones by kind for appliance retargeting and occupant assignment.
	var kindZones [NumZones][]ZoneID
	for _, z := range zones[1:] {
		kindZones[z.Kind] = append(kindZones[z.Kind], z.ID)
	}
	appliances := bp.Appliances
	if appliances == nil {
		appliances = standardAppliancesFor(kindZones)
	} else {
		appliances = append([]Appliance(nil), appliances...)
	}
	for i := range appliances {
		appliances[i].ID = i
		z := appliances[i].Zone
		if z <= Outside || int(z) >= len(zones) {
			return nil, fmt.Errorf("%w: house %q appliance %q installed in bad zone %d", ErrBadBlueprint, bp.Name, appliances[i].Name, z)
		}
	}
	h := &House{
		Name:       bp.Name,
		Zones:      zones,
		Occupants:  occupants,
		Appliances: appliances,
	}
	// Resolve the per-occupant activity-zone assignment: every occupant
	// needs a zone for each conditioned kind.
	h.assigned = make([][]ZoneID, len(occupants))
	for o := range occupants {
		h.assigned[o] = make([]ZoneID, NumZones)
		for k := Bedroom; k < NumZones; k++ {
			var pinned ZoneID
			if o < len(bp.ZoneAssignments) && int(k) < len(bp.ZoneAssignments[o]) {
				pinned = bp.ZoneAssignments[o][k]
			}
			switch {
			case pinned != Outside:
				if pinned < 0 || int(pinned) >= len(zones) {
					return nil, fmt.Errorf("%w: house %q occupant %d pinned to bad zone %d", ErrBadBlueprint, bp.Name, o, pinned)
				}
				h.assigned[o][k] = pinned
			case len(kindZones[k]) > 0:
				h.assigned[o][k] = kindZones[k][o%len(kindZones[k])]
			default:
				return nil, fmt.Errorf("%w: house %q has no %v-kind zone for occupant %d", ErrBadBlueprint, bp.Name, k, o)
			}
		}
	}
	links := bp.ActivityAppliances
	// Explicit link tables must resolve every name (a typo silently
	// dropping an appliance link is a correctness trap); the standard
	// fallback stays lenient so custom appliance subsets keep whichever
	// standard links still apply.
	strict := links != nil
	if links == nil {
		links = standardActivityAppliances()
	}
	if err := h.linkActivities(links, strict); err != nil {
		return nil, err
	}
	return h, nil
}

func standardZones(scale float64) []Zone {
	return []Zone{
		{ID: Outside, Name: "Outside", VolumeFt3: 0, AreaFt2: 0, MaxOccupancy: 1 << 20},
		{ID: Bedroom, Name: "Bedroom", Kind: Bedroom, VolumeFt3: 1080 * scale, AreaFt2: 120 * scale, MaxOccupancy: 3},
		{ID: Livingroom, Name: "Livingroom", Kind: Livingroom, VolumeFt3: 1620 * scale, AreaFt2: 180 * scale, MaxOccupancy: 6},
		{ID: Kitchen, Name: "Kitchen", Kind: Kitchen, VolumeFt3: 972 * scale, AreaFt2: 108 * scale, MaxOccupancy: 4},
		{ID: Bathroom, Name: "Bathroom", Kind: Bathroom, VolumeFt3: 486 * scale, AreaFt2: 54 * scale, MaxOccupancy: 2},
	}
}

// StandardAppliances returns the 13-appliance fit-out used by Table VII,
// installed in the canonical zones.
func StandardAppliances() []Appliance {
	return []Appliance{
		{ID: 0, Name: "Oven", Zone: Kitchen, PowerW: 2000, HeatFraction: 0.35, VoiceTriggerable: true},
		{ID: 1, Name: "Microwave", Zone: Kitchen, PowerW: 1100, HeatFraction: 0.25, VoiceTriggerable: true},
		{ID: 2, Name: "Dishwasher", Zone: Kitchen, PowerW: 1200, HeatFraction: 0.30, VoiceTriggerable: true},
		{ID: 3, Name: "Kettle", Zone: Kitchen, PowerW: 1500, HeatFraction: 0.40, VoiceTriggerable: true},
		{ID: 4, Name: "CoffeeMaker", Zone: Kitchen, PowerW: 900, HeatFraction: 0.35, VoiceTriggerable: true},
		{ID: 5, Name: "TV", Zone: Livingroom, PowerW: 150, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 6, Name: "Stereo", Zone: Livingroom, PowerW: 80, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 7, Name: "Computer", Zone: Livingroom, PowerW: 200, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 8, Name: "GameConsole", Zone: Livingroom, PowerW: 120, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 9, Name: "BedroomTV", Zone: Bedroom, PowerW: 100, HeatFraction: 0.90, VoiceTriggerable: true},
		{ID: 10, Name: "HairDryer", Zone: Bathroom, PowerW: 1200, HeatFraction: 0.60, VoiceTriggerable: true},
		{ID: 11, Name: "Washer", Zone: Bathroom, PowerW: 500, HeatFraction: 0.30, VoiceTriggerable: true},
		{ID: 12, Name: "Dryer", Zone: Bathroom, PowerW: 1800, HeatFraction: 0.40, VoiceTriggerable: true},
	}
}

// standardAppliancesFor retargets the standard fit-out onto a layout: each
// appliance lands in the first zone of its canonical kind. For the canonical
// layout this reproduces StandardAppliances exactly.
func standardAppliancesFor(kindZones [NumZones][]ZoneID) []Appliance {
	appls := StandardAppliances()
	out := appls[:0]
	for _, a := range appls {
		if zs := kindZones[a.Zone]; len(zs) > 0 {
			a.Zone = zs[0]
			out = append(out, a)
		}
	}
	return out
}

// standardActivityAppliances returns the canonical activity→appliance-name
// relationships of the standard fit-out.
func standardActivityAppliances() map[ActivityID][]string {
	return map[ActivityID][]string{
		PreparingBreakfast: {"Kettle", "CoffeeMaker"},
		PreparingLunch:     {"Microwave"},
		PreparingDinner:    {"Oven", "Microwave"},
		WashingDishes:      {"Dishwasher"},
		WatchingTV:         {"TV"},
		ListeningToMusic:   {"Stereo"},
		UsingInternet:      {"Computer"},
		Studying:           {"Computer"},
		Laundry:            {"Washer", "Dryer"},
		Shaving:            {"HairDryer"},
		HavingGuest:        {"TV"},
	}
}

// linkActivities resolves the activity→appliance relationships by appliance
// name, so custom inventories (subsets, duplicates across zones) link
// correctly. In strict mode every name must match an installed appliance.
func (h *House) linkActivities(links map[ActivityID][]string, strict bool) error {
	byName := make(map[string][]int, len(h.Appliances))
	for i, a := range h.Appliances {
		byName[a.Name] = append(byName[a.Name], i)
	}
	for act, names := range links {
		if act < 0 || int(act) >= NumActivities {
			return fmt.Errorf("%w: house %q links unknown activity %d", ErrBadBlueprint, h.Name, act)
		}
		var appls []int
		for _, name := range names {
			if strict && len(byName[name]) == 0 {
				return fmt.Errorf("%w: house %q links %v to unknown appliance %q", ErrBadBlueprint, h.Name, act, name)
			}
			appls = append(appls, byName[name]...)
		}
		h.activityAppliances[act] = appls
	}
	return nil
}

// AppliancesForActivity returns the appliance indices habitually on during
// the activity (empty for activities that use none).
func (h *House) AppliancesForActivity(a ActivityID) []int {
	if a < 0 || int(a) >= NumActivities {
		return nil
	}
	return h.activityAppliances[a]
}

// AppliancesInZone returns the indices of appliances installed in zone z.
func (h *House) AppliancesInZone(z ZoneID) []int {
	var out []int
	for i, a := range h.Appliances {
		if a.Zone == z {
			out = append(out, i)
		}
	}
	return out
}

// Zone returns the zone with the given id.
func (h *House) Zone(id ZoneID) Zone { return h.Zones[id] }

// KindOf returns the canonical kind of zone z. Out-of-range ids degrade to
// the canonical interpretation (z itself) so legacy callers probing the
// canonical layout keep their behaviour.
func (h *House) KindOf(z ZoneID) ZoneID {
	if z < 0 || int(z) >= len(h.Zones) {
		return z
	}
	return h.Zones[z].Kind
}

// ZoneForActivity returns the zone occupant o conducts the activity in —
// the per-house, per-occupant replacement for the canonical Activity.Zone
// lookup (a second bedroom's resident sleeps in their own room).
func (h *House) ZoneForActivity(occupant int, act ActivityID) ZoneID {
	k := ActivityByID(act).Zone
	if k == Outside || occupant < 0 || occupant >= len(h.assigned) {
		return k
	}
	return h.assigned[occupant][k]
}

// MostIntenseActivity returns the highest-MET activity conductible in zone
// z of this house — the kind-aware form of MostIntenseActivityInZone, which
// the attack planners use to maximise the believed demand of a falsified
// presence in any zone of any layout.
func (h *House) MostIntenseActivity(z ZoneID) ActivityID {
	return MostIntenseActivityInZone(h.KindOf(z))
}
