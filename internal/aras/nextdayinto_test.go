package aras

import (
	"io"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/home"
)

// TestNextDayIntoMatchesNextDay pins the buffer-reusing day generator to the
// allocating one: same RNG consumption, same days, same weather — including
// correct clearing of appliance columns left over from the previous day.
func TestNextDayIntoMatchesNextDay(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		house := home.MustHouse(name)
		cfg := GeneratorConfig{Days: 5, Seed: 4242}
		ga, err := NewGenerator(house, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := NewGenerator(house, cfg)
		if err != nil {
			t.Fatal(err)
		}
		day := NewDay(len(house.Occupants), len(house.Appliances))
		w := Weather{TempF: make([]float64, SlotsPerDay), CO2PPM: make([]float64, SlotsPerDay)}
		for d := 0; d < cfg.Days; d++ {
			wantDay, wantW, err := ga.NextDay()
			if err != nil {
				t.Fatal(err)
			}
			if err := gb.NextDayInto(&day, &w); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantDay, day) {
				t.Fatalf("house %s day %d: ground truth diverged", name, d)
			}
			if !reflect.DeepEqual(wantW, w) {
				t.Fatalf("house %s day %d: weather diverged", name, d)
			}
		}
		if err := gb.NextDayInto(&day, &w); err != io.EOF {
			t.Fatalf("day stream past bound: %v, want io.EOF", err)
		}
		gc, err := NewGenerator(house, cfg)
		if err != nil {
			t.Fatal(err)
		}
		bad := NewDay(len(house.Occupants)+1, len(house.Appliances))
		if err := gc.NextDayInto(&bad, &w); err == nil {
			t.Fatal("mis-shaped day buffer accepted")
		}
	}
}
