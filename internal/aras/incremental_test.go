package aras

import (
	"bytes"
	"io"
	"testing"

	"github.com/acyd-lab/shatter/internal/home"
)

// TestGeneratorMatchesBatch pins the incremental day stream to the batch
// path: draining NextDay reproduces Generate's trace byte-for-byte (CSV
// encoding compared) for both paper houses.
func TestGeneratorMatchesBatch(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		house := home.MustHouse(name)
		cfg := GeneratorConfig{Days: 9, Seed: 42}
		batch, err := Generate(house, cfg)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		g, err := NewGenerator(house, cfg)
		if err != nil {
			t.Fatalf("NewGenerator(%s): %v", name, err)
		}
		streamed := &Trace{House: house}
		for {
			if got, want := g.DayIndex(), len(streamed.Days); got != want {
				t.Fatalf("house %s: DayIndex = %d, want %d", name, got, want)
			}
			day, w, err := g.NextDay()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("NextDay(%s): %v", name, err)
			}
			streamed.Days = append(streamed.Days, day)
			streamed.Weather = append(streamed.Weather, w)
		}
		if streamed.NumDays() != cfg.Days {
			t.Fatalf("house %s: streamed %d days, want %d", name, streamed.NumDays(), cfg.Days)
		}
		var bb, sb bytes.Buffer
		if err := batch.WriteCSV(&bb); err != nil {
			t.Fatal(err)
		}
		if err := streamed.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bb.Bytes(), sb.Bytes()) {
			t.Errorf("house %s: streamed trace differs from batch trace", name)
		}
		// Weather is not CSV-encoded; compare directly.
		for d := range batch.Weather {
			for _, pair := range [][2][]float64{
				{batch.Weather[d].TempF, streamed.Weather[d].TempF},
				{batch.Weather[d].CO2PPM, streamed.Weather[d].CO2PPM},
			} {
				for i := range pair[0] {
					if pair[0][i] != pair[1][i] {
						t.Fatalf("house %s day %d: weather diverges at slot %d", name, d, i)
					}
				}
			}
		}
	}
}

// TestGeneratorUnbounded checks Days = 0 streams past any batch horizon and
// stays aligned with a longer batch run.
func TestGeneratorUnbounded(t *testing.T) {
	house := home.MustHouse("A")
	batch, err := Generate(house, GeneratorConfig{Days: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(house, GeneratorConfig{Days: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 5; d++ {
		day, _, err := g.NextDay()
		if err != nil {
			t.Fatalf("day %d: %v", d, err)
		}
		for o := range day.Zone {
			for s := 0; s < SlotsPerDay; s++ {
				if day.Zone[o][s] != batch.Days[d].Zone[o][s] || day.Act[o][s] != batch.Days[d].Act[o][s] {
					t.Fatalf("day %d occupant %d slot %d diverges", d, o, s)
				}
			}
		}
	}
	if _, _, err := g.NextDay(); err != nil {
		t.Fatalf("unbounded generator hit %v after the batch horizon", err)
	}
}

func TestNewGeneratorRejectsBadConfig(t *testing.T) {
	house := home.MustHouse("A")
	if _, err := NewGenerator(house, GeneratorConfig{Days: -1}); err == nil {
		t.Error("negative Days accepted")
	}
	if _, err := NewGenerator(house, GeneratorConfig{Days: 3, Profiles: make([]ScheduleProfile, 1)}); err == nil {
		t.Error("profile count mismatch accepted")
	}
}
