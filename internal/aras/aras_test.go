package aras

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/acyd-lab/shatter/internal/home"
)

func genTrace(t *testing.T, houseName string, days int, seed uint64) *Trace {
	t.Helper()
	h := home.MustHouse(houseName)
	tr, err := Generate(h, GeneratorConfig{Days: days, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateBadConfig(t *testing.T) {
	h := home.MustHouse("A")
	if _, err := Generate(h, GeneratorConfig{Days: 0}); err == nil {
		t.Error("Days=0 should error")
	}
}

func TestGenerateShape(t *testing.T) {
	tr := genTrace(t, "A", 5, 1)
	if tr.NumDays() != 5 {
		t.Fatalf("days = %d, want 5", tr.NumDays())
	}
	for d := 0; d < 5; d++ {
		day := tr.Days[d]
		if len(day.Zone) != 2 || len(day.Act) != 2 {
			t.Fatalf("day %d: occupant arrays wrong", d)
		}
		for o := 0; o < 2; o++ {
			if len(day.Zone[o]) != SlotsPerDay {
				t.Fatalf("day %d occ %d: %d slots", d, o, len(day.Zone[o]))
			}
		}
		if len(day.Appliance) != 13 {
			t.Fatalf("day %d: %d appliances, want 13", d, len(day.Appliance))
		}
		if len(tr.Weather[d].TempF) != SlotsPerDay {
			t.Fatalf("day %d: weather slots wrong", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genTrace(t, "A", 3, 42)
	b := genTrace(t, "A", 3, 42)
	for d := 0; d < 3; d++ {
		for o := 0; o < 2; o++ {
			for s := 0; s < SlotsPerDay; s++ {
				if a.Days[d].Zone[o][s] != b.Days[d].Zone[o][s] {
					t.Fatalf("seed 42 not deterministic at d=%d o=%d s=%d", d, o, s)
				}
			}
		}
	}
}

func TestGenerateZoneActivityConsistency(t *testing.T) {
	tr := genTrace(t, "A", 4, 7)
	for d := range tr.Days {
		for o := range tr.Days[d].Zone {
			for s := 0; s < SlotsPerDay; s++ {
				act := home.ActivityByID(tr.Days[d].Act[o][s])
				if act.Zone != tr.Days[d].Zone[o][s] {
					t.Fatalf("d=%d o=%d s=%d: activity %v in zone %v",
						d, o, s, act.Name, tr.Days[d].Zone[o][s])
				}
			}
		}
	}
}

func TestGenerateSleepsAtNight(t *testing.T) {
	tr := genTrace(t, "A", 10, 11)
	// At 3 AM every occupant should almost always be asleep in the bedroom.
	asleep := 0
	total := 0
	for d := range tr.Days {
		for o := range tr.Days[d].Zone {
			total++
			if tr.Days[d].Act[o][3*60] == home.Sleeping {
				asleep++
			}
		}
	}
	if asleep < total*8/10 {
		t.Errorf("only %d/%d occupant-days asleep at 3AM", asleep, total)
	}
}

func TestWorkerOutOnWeekdays(t *testing.T) {
	tr := genTrace(t, "A", 14, 13)
	// Occupant 1 (Bob) is a commuter: at 2 PM on weekdays he should usually
	// be outside.
	out, days := 0, 0
	for d := range tr.Days {
		if d%7 >= 5 {
			continue
		}
		days++
		if tr.Days[d].Zone[1][14*60] == home.Outside {
			out++
		}
	}
	if out < days*7/10 {
		t.Errorf("commuter out on %d/%d weekdays at 2PM", out, days)
	}
}

func TestEpisodesPartitionDay(t *testing.T) {
	tr := genTrace(t, "A", 3, 17)
	for d := 0; d < 3; d++ {
		for o := 0; o < 2; o++ {
			eps := tr.DayEpisodes(d, o)
			total := 0
			for i, e := range eps {
				if e.Duration <= 0 {
					t.Fatalf("episode %d has non-positive duration", i)
				}
				if i > 0 && eps[i-1].ArrivalSlot+eps[i-1].Duration != e.ArrivalSlot {
					t.Fatalf("episodes not contiguous at %d", i)
				}
				total += e.Duration
			}
			if total != SlotsPerDay {
				t.Fatalf("episodes cover %d slots, want %d", total, SlotsPerDay)
			}
			if eps[0].ArrivalSlot != 0 {
				t.Fatal("first episode must start at slot 0")
			}
		}
	}
}

func TestEpisodesZoneChanges(t *testing.T) {
	tr := genTrace(t, "A", 2, 19)
	for _, e := range tr.Episodes(0) {
		act := home.ActivityByID(e.Activity)
		if act.Zone != e.Zone {
			t.Fatalf("dominant activity %v inconsistent with zone %v", act.Name, e.Zone)
		}
	}
}

func TestHabitualStructure(t *testing.T) {
	// Kitchen arrivals should concentrate around meal times: the generator
	// must produce clusterable behaviour for the ADM.
	tr := genTrace(t, "A", 30, 23)
	eps := tr.Episodes(0)
	mealArrivals := 0
	kitchenTotal := 0
	for _, e := range eps {
		if e.Zone != home.Kitchen {
			continue
		}
		kitchenTotal++
		m := e.ArrivalSlot
		if (m > 6*60 && m < 10*60) || (m > 11*60+30 && m < 14*60) || (m > 17*60 && m < 20*60+30) {
			mealArrivals++
		}
	}
	if kitchenTotal == 0 {
		t.Fatal("no kitchen episodes generated")
	}
	if mealArrivals < kitchenTotal*3/4 {
		t.Errorf("only %d/%d kitchen arrivals near meal times", mealArrivals, kitchenTotal)
	}
}

func TestAppliancesFollowActivities(t *testing.T) {
	tr := genTrace(t, "A", 10, 29)
	// Whenever the dishwasher is on, someone should be (or have recently
	// been) washing dishes. Check the converse direction: during washing
	// dishes blocks the dishwasher runs.
	hits, blocks := 0, 0
	for d := range tr.Days {
		for o := range tr.Days[d].Act {
			for s := 0; s < SlotsPerDay; s++ {
				if tr.Days[d].Act[o][s] == home.WashingDishes {
					blocks++
					if tr.Days[d].Appliance[2][s] { // dishwasher
						hits++
					}
				}
			}
		}
	}
	if blocks == 0 {
		t.Fatal("no washing-dishes slots generated")
	}
	if hits < blocks*9/10 {
		t.Errorf("dishwasher on during %d/%d washing slots", hits, blocks)
	}
}

func TestOccupancyCount(t *testing.T) {
	tr := genTrace(t, "A", 2, 31)
	for s := 0; s < SlotsPerDay; s += 60 {
		sum := 0
		for z := home.ZoneID(0); z < home.NumZones; z++ {
			sum += tr.OccupancyCount(0, s, z)
		}
		if sum != 2 {
			t.Fatalf("slot %d: total occupancy %d, want 2", s, sum)
		}
	}
}

func TestSubTrace(t *testing.T) {
	tr := genTrace(t, "A", 10, 37)
	sub, err := tr.SubTrace(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumDays() != 5 {
		t.Errorf("subtrace days = %d, want 5", sub.NumDays())
	}
	if _, err := tr.SubTrace(5, 3); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := tr.SubTrace(0, 11); err == nil {
		t.Error("out-of-range should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := genTrace(t, "A", 2, 41)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tr.House)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		for o := 0; o < 2; o++ {
			for s := 0; s < SlotsPerDay; s++ {
				if got.Days[d].Zone[o][s] != tr.Days[d].Zone[o][s] ||
					got.Days[d].Act[o][s] != tr.Days[d].Act[o][s] {
					t.Fatalf("round trip mismatch d=%d o=%d s=%d", d, o, s)
				}
			}
		}
		for a := range tr.Days[d].Appliance {
			for s := 0; s < SlotsPerDay; s++ {
				if got.Days[d].Appliance[a][s] != tr.Days[d].Appliance[a][s] {
					t.Fatalf("appliance round trip mismatch d=%d a=%d s=%d", d, a, s)
				}
			}
		}
	}
}

func TestCSVRejectsWrongHouse(t *testing.T) {
	tr := genTrace(t, "A", 1, 43)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(&buf, home.MustHouse("B")); err == nil {
		t.Error("reading a house-A trace into house B should fail")
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	h := home.MustHouse("A")
	cases := []string{
		"",
		"bogus,header\n",
		"house,A,days,x,occupants,2,appliances,13\n",
		"house,A,days,1,occupants,9,appliances,13\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), h); err == nil {
			t.Errorf("case %d: want error for malformed CSV", i)
		}
	}
}

func TestWeatherPlausible(t *testing.T) {
	tr := genTrace(t, "A", 5, 47)
	for d := range tr.Weather {
		for _, temp := range tr.Weather[d].TempF {
			if temp < 50 || temp > 110 {
				t.Fatalf("implausible outdoor temp %v", temp)
			}
		}
		for _, co2 := range tr.Weather[d].CO2PPM {
			if co2 < 380 || co2 > 470 {
				t.Fatalf("implausible outdoor CO2 %v", co2)
			}
		}
		// Afternoon should be warmer than pre-dawn.
		if tr.Weather[d].TempF[15*60] <= tr.Weather[d].TempF[4*60] {
			t.Errorf("day %d: 3PM not warmer than 4AM", d)
		}
	}
}

// Property: every generated day partitions each occupant's time into
// episodes whose durations sum to a full day, for arbitrary seeds.
func TestPropertyEpisodesCoverDay(t *testing.T) {
	h := home.MustHouse("B")
	f := func(seed uint64) bool {
		tr, err := Generate(h, GeneratorConfig{Days: 1, Seed: seed})
		if err != nil {
			return false
		}
		for o := range h.Occupants {
			total := 0
			for _, e := range tr.DayEpisodes(0, o) {
				total += e.Duration
			}
			if total != SlotsPerDay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDatasetName(t *testing.T) {
	if got := DatasetName("A", 0); got != "HAO1" {
		t.Errorf("DatasetName = %q, want HAO1", got)
	}
	if got := DatasetName("B", 1); got != "HBO2" {
		t.Errorf("DatasetName = %q, want HBO2", got)
	}
}
