package aras

import (
	"bytes"
	"strings"
	"testing"

	"github.com/acyd-lab/shatter/internal/home"
)

// FuzzReadCSV drives the trace decoder with arbitrary input against both
// house shapes. ReadCSV must never panic; on success the decoded trace must
// be structurally sound (declared shape allocated, zones/activities stored
// as written), and a valid round-trip must re-encode losslessly.
func FuzzReadCSV(f *testing.F) {
	houseA := home.MustHouse("A")
	houseB := home.MustHouse("B")

	// Seed: a genuine 2-day trace of house A.
	tr, err := Generate(houseA, GeneratorConfig{Days: 2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := tr.WriteCSV(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())

	// Seeds for the error paths: truncated header, wrong house, bad counts,
	// short rows, out-of-range day/slot, malformed numbers and masks.
	f.Add("")
	f.Add("house,A\n")
	f.Add("house,B,days,2,occupants,2,appliances,13\n")
	f.Add("house,A,days,x,occupants,2,appliances,13\n")
	f.Add("house,A,days,2,occupants,3,appliances,13\n")
	f.Add("house,A,days,2,occupants,2,appliances,13\n0,0,1,9\n")
	f.Add("house,A,days,2,occupants,2,appliances,13\n9,0,1,9,2,10,0\n")
	f.Add("house,A,days,2,occupants,2,appliances,13\n0,1441,1,9,2,10,0\n")
	f.Add("house,A,days,2,occupants,2,appliances,13\n0,0,z,9,2,10,0\n")
	f.Add("house,A,days,2,occupants,2,appliances,13\n0,0,1,9,2,10,zz\n")
	f.Add("house,A,days,1,occupants,2,appliances,13\n0,0,1,9,2,10,1fff\n")

	f.Fuzz(func(t *testing.T, data string) {
		for _, h := range []*home.House{houseA, houseB} {
			got, err := ReadCSV(strings.NewReader(data), h)
			if err != nil {
				continue
			}
			// Successful decodes must be structurally sound.
			if len(got.Days) != len(got.Weather) {
				t.Fatalf("days/weather mismatch: %d vs %d", len(got.Days), len(got.Weather))
			}
			for d := range got.Days {
				if len(got.Days[d].Zone) != len(h.Occupants) || len(got.Days[d].Appliance) != len(h.Appliances) {
					t.Fatalf("day %d shape: %d occupants, %d appliances", d, len(got.Days[d].Zone), len(got.Days[d].Appliance))
				}
				for o := range got.Days[d].Zone {
					if len(got.Days[d].Zone[o]) != SlotsPerDay || len(got.Days[d].Act[o]) != SlotsPerDay {
						t.Fatalf("day %d occupant %d: short slot arrays", d, o)
					}
				}
			}
			// A decodable trace must re-encode and decode to the same bytes.
			var re bytes.Buffer
			if err := got.WriteCSV(&re); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			again, err := ReadCSV(bytes.NewReader(re.Bytes()), h)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			var re2 bytes.Buffer
			if err := again.WriteCSV(&re2); err != nil {
				t.Fatalf("re-re-encode: %v", err)
			}
			if !bytes.Equal(re.Bytes(), re2.Bytes()) {
				t.Fatal("round-trip is not a fixpoint")
			}
		}
	})
}
