// Package aras provides the activity/occupancy dataset substrate for the
// SHATTER reproduction. The original paper evaluates on the ARAS dataset
// (Alemdar et al., reference [5]): per-minute annotations of 27 activities
// for 2 residents in each of 2 houses over a month. That recording is not
// redistributable and the build environment is offline, so this package
// generates synthetic traces from per-occupant daily-routine models that
// preserve the properties the paper's analysis depends on — habitual,
// clusterable (arrival-time, stay-duration) pairs per occupant/zone, with
// day-to-day jitter and occasional irregular days (see DESIGN.md §1).
package aras

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"github.com/acyd-lab/shatter/internal/home"
)

// SlotsPerDay is the number of 1-minute control slots per day (Δt = 1 min).
const SlotsPerDay = 1440

// Day is one day of ground truth for a house: per-occupant zone/activity
// per slot and per-appliance status per slot.
type Day struct {
	// Zone[o][t] is occupant o's zone at slot t.
	Zone [][]home.ZoneID
	// Act[o][t] is occupant o's activity at slot t.
	Act [][]home.ActivityID
	// Appliance[d][t] is appliance d's on/off status at slot t.
	Appliance [][]bool
}

// NewDay allocates a zeroed day for the given occupant and appliance counts.
func NewDay(occupants, appliances int) Day {
	d := Day{
		Zone:      make([][]home.ZoneID, occupants),
		Act:       make([][]home.ActivityID, occupants),
		Appliance: make([][]bool, appliances),
	}
	for o := 0; o < occupants; o++ {
		d.Zone[o] = make([]home.ZoneID, SlotsPerDay)
		d.Act[o] = make([]home.ActivityID, SlotsPerDay)
	}
	for a := 0; a < appliances; a++ {
		d.Appliance[a] = make([]bool, SlotsPerDay)
	}
	return d
}

// Weather holds the outdoor boundary conditions for one day.
type Weather struct {
	// TempF[t] is the outdoor dry-bulb temperature (°F) at slot t (P^OT).
	TempF []float64
	// CO2PPM[t] is the outdoor CO2 concentration (ppm) at slot t (P^OC).
	CO2PPM []float64
}

// Trace is a complete multi-day recording for one house.
type Trace struct {
	House   *home.House
	Days    []Day
	Weather []Weather
}

// NumDays returns the number of recorded days.
func (tr *Trace) NumDays() int { return len(tr.Days) }

// Episode is one contiguous stay of an occupant in a zone — the ADM's
// training unit: the (ArrivalSlot, Duration) pair is a point in the
// (arrival-time-of-day, stay-duration) plane of Figs 6-7.
type Episode struct {
	Day      int
	Occupant int
	Zone     home.ZoneID
	// ArrivalSlot is the minute-of-day the stay began (0-1439). Stays that
	// span midnight are split at the day boundary, matching the per-day
	// slot axis the paper plots.
	ArrivalSlot int
	// Duration is the stay length in minutes.
	Duration int
	// Activity is the dominant activity during the stay.
	Activity home.ActivityID
}

// Episodes extracts all stays of one occupant across the whole trace.
func (tr *Trace) Episodes(occupant int) []Episode {
	var out []Episode
	for d := range tr.Days {
		out = append(out, tr.DayEpisodes(d, occupant)...)
	}
	return out
}

// DayEpisodes extracts the stays of one occupant on one day.
func (tr *Trace) DayEpisodes(day, occupant int) []Episode {
	zones := tr.Days[day].Zone[occupant]
	acts := tr.Days[day].Act[occupant]
	var out []Episode
	start := 0
	actCount := make(map[home.ActivityID]int)
	for t := 0; t <= SlotsPerDay; t++ {
		if t < SlotsPerDay && zones[t] == zones[start] {
			actCount[acts[t]]++
			continue
		}
		// Close the episode [start, t).
		dominant, best := home.Other, -1
		for a, c := range actCount {
			if c > best || (c == best && a < dominant) {
				dominant, best = a, c
			}
		}
		out = append(out, Episode{
			Day:         day,
			Occupant:    occupant,
			Zone:        zones[start],
			ArrivalSlot: start,
			Duration:    t - start,
			Activity:    dominant,
		})
		if t < SlotsPerDay {
			start = t
			actCount = map[home.ActivityID]int{acts[t]: 1}
		}
	}
	return out
}

// OccupancyCount returns the number of occupants in zone z at slot t of day.
func (tr *Trace) OccupancyCount(day, slot int, z home.ZoneID) int {
	n := 0
	for o := range tr.Days[day].Zone {
		if tr.Days[day].Zone[o][slot] == z {
			n++
		}
	}
	return n
}

// SubTrace returns a trace restricted to days [from, to). Weather is sliced
// alongside. The underlying day storage is shared, not copied.
func (tr *Trace) SubTrace(from, to int) (*Trace, error) {
	if from < 0 || to > len(tr.Days) || from >= to {
		return nil, fmt.Errorf("aras: bad day range [%d,%d) of %d", from, to, len(tr.Days))
	}
	return &Trace{House: tr.House, Days: tr.Days[from:to], Weather: tr.Weather[from:to]}, nil
}

// errCSV is the sentinel for malformed trace files.
var errCSV = errors.New("aras: malformed trace CSV")

// WriteCSV encodes the trace (without weather) as CSV: a header row with
// counts followed by one row per (day, slot) holding each occupant's zone
// and activity and a hex bitmask of appliance states.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	occ := len(tr.House.Occupants)
	appl := len(tr.House.Appliances)
	header := []string{"house", tr.House.Name, "days", strconv.Itoa(len(tr.Days)),
		"occupants", strconv.Itoa(occ), "appliances", strconv.Itoa(appl)}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 2+2*occ+1)
	for d, day := range tr.Days {
		for t := 0; t < SlotsPerDay; t++ {
			row[0] = strconv.Itoa(d)
			row[1] = strconv.Itoa(t)
			for o := 0; o < occ; o++ {
				row[2+2*o] = strconv.Itoa(int(day.Zone[o][t]))
				row[2+2*o+1] = strconv.Itoa(int(day.Act[o][t]))
			}
			var mask uint64
			for a := 0; a < appl; a++ {
				if day.Appliance[a][t] {
					mask |= 1 << uint(a)
				}
			}
			row[len(row)-1] = strconv.FormatUint(mask, 16)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a trace previously written by WriteCSV. The house must be
// supplied by the caller (the CSV stores only its name for validation).
func ReadCSV(r io.Reader, house *home.House) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: header: %v", errCSV, err)
	}
	if len(header) != 8 || header[0] != "house" {
		return nil, fmt.Errorf("%w: bad header", errCSV)
	}
	if header[1] != house.Name {
		return nil, fmt.Errorf("%w: trace is for house %q, got house %q", errCSV, header[1], house.Name)
	}
	days, err := strconv.Atoi(header[3])
	if err != nil {
		return nil, fmt.Errorf("%w: day count: %v", errCSV, err)
	}
	occ, err := strconv.Atoi(header[5])
	if err != nil || occ != len(house.Occupants) {
		return nil, fmt.Errorf("%w: occupant count mismatch", errCSV)
	}
	appl, err := strconv.Atoi(header[7])
	if err != nil || appl != len(house.Appliances) {
		return nil, fmt.Errorf("%w: appliance count mismatch", errCSV)
	}
	tr := &Trace{House: house, Days: make([]Day, days), Weather: make([]Weather, days)}
	for d := range tr.Days {
		tr.Days[d] = NewDay(occ, appl)
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCSV, err)
		}
		if len(row) != 2+2*occ+1 {
			return nil, fmt.Errorf("%w: row width %d", errCSV, len(row))
		}
		d, err1 := strconv.Atoi(row[0])
		t, err2 := strconv.Atoi(row[1])
		if err1 != nil || err2 != nil || d < 0 || d >= days || t < 0 || t >= SlotsPerDay {
			return nil, fmt.Errorf("%w: bad day/slot", errCSV)
		}
		for o := 0; o < occ; o++ {
			z, err1 := strconv.Atoi(row[2+2*o])
			a, err2 := strconv.Atoi(row[2+2*o+1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: bad zone/activity", errCSV)
			}
			tr.Days[d].Zone[o][t] = home.ZoneID(z)
			tr.Days[d].Act[o][t] = home.ActivityID(a)
		}
		mask, err := strconv.ParseUint(row[len(row)-1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad appliance mask", errCSV)
		}
		for a := 0; a < appl; a++ {
			tr.Days[d].Appliance[a][t] = mask&(1<<uint(a)) != 0
		}
	}
	return tr, nil
}

// DatasetName names the per-occupant splits the paper uses: HAO1 is House A
// Occupant 1, etc.
func DatasetName(house string, occupant int) string {
	return "H" + house + "O" + strconv.Itoa(occupant+1)
}
