package aras

import (
	"errors"
	"math"

	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/rng"
)

// GeneratorConfig parameterises the synthetic trace generator.
type GeneratorConfig struct {
	// Days is the number of days to generate (the paper uses 30).
	Days int
	// Seed makes generation reproducible.
	Seed uint64
	// IrregularProb is the per-day probability that an occupant has an
	// irregular day (heavier jitter, reordered blocks). Irregular days
	// supply the noise points DBSCAN prunes and K-Means absorbs.
	// Defaults to 0.08 when zero.
	IrregularProb float64
	// SummerMeanF is the mean outdoor temperature (°F); defaults to 84
	// (cooling-dominated season, as in the paper's energy experiments).
	SummerMeanF float64
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.IrregularProb == 0 {
		c.IrregularProb = 0.08
	}
	if c.SummerMeanF == 0 {
		c.SummerMeanF = 84
	}
	return c
}

// ErrBadConfig is returned for non-positive day counts.
var ErrBadConfig = errors.New("aras: Days must be positive")

// routine describes an occupant's habitual daily schedule. All times are
// minutes after midnight; all durations in minutes.
type routine struct {
	// worker occupants leave for work on weekdays.
	worker bool
	// wakeMean/wakeStd control the wake-up anchor.
	wakeMean, wakeStd float64
	// bedMean/bedStd control the bedtime anchor.
	bedMean, bedStd float64
	// leaveMean/returnMean are the weekday work window anchors.
	leaveMean, returnMean float64
	// showerMorning is the probability of a morning shower.
	showerMorning float64
	// eveningTVMean is the evening television block length.
	eveningTVMean float64
	// choresWeight scales how much daytime is spent on active chores
	// (cleaning, laundry) vs sedentary activities.
	choresWeight float64
}

// routineFor returns the behaviour archetype for an occupant of a house.
// House A: Alice studies/works from home, Bob commutes. House B: both
// occupants are out most of the day (hence House B's lower benign and
// attacked costs throughout the paper's tables).
func routineFor(houseName string, occupant int) routine {
	switch {
	case houseName == "A" && occupant == 0: // Alice, home-based
		return routine{
			worker:        false,
			wakeMean:      7*60 + 10, wakeStd: 18,
			bedMean: 23 * 60, bedStd: 25,
			showerMorning: 0.75,
			eveningTVMean: 95,
			choresWeight:  1.0,
		}
	case houseName == "A" && occupant == 1: // Bob, commuter
		return routine{
			worker:        true,
			wakeMean:      6*60 + 40, wakeStd: 15,
			bedMean: 22*60 + 45, bedStd: 20,
			leaveMean:     8*60 + 40,
			returnMean:    17*60 + 45,
			showerMorning: 0.85,
			eveningTVMean: 80,
			choresWeight:  0.5,
		}
	case houseName == "B" && occupant == 0: // Carol, long-hours commuter
		return routine{
			worker:        true,
			wakeMean:      6*60 + 20, wakeStd: 15,
			bedMean: 22*60 + 30, bedStd: 20,
			leaveMean:     7*60 + 50,
			returnMean:    18*60 + 30,
			showerMorning: 0.8,
			eveningTVMean: 60,
			choresWeight:  0.6,
		}
	default: // Dave, commuter with evening activities out
		return routine{
			worker:        true,
			wakeMean:      7 * 60, wakeStd: 18,
			bedMean: 23*60 + 15, bedStd: 25,
			leaveMean:     8*60 + 30,
			returnMean:    19*60 + 15,
			showerMorning: 0.7,
			eveningTVMean: 70,
			choresWeight:  0.4,
		}
	}
}

// block is one contiguous activity in the day plan.
type block struct {
	act home.ActivityID
	dur int
}

// Generate produces a synthetic trace for the house.
func Generate(house *home.House, cfg GeneratorConfig) (*Trace, error) {
	if cfg.Days <= 0 {
		return nil, ErrBadConfig
	}
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	tr := &Trace{
		House:   house,
		Days:    make([]Day, cfg.Days),
		Weather: make([]Weather, cfg.Days),
	}
	occRngs := make([]*rng.Source, len(house.Occupants))
	for o := range occRngs {
		occRngs[o] = r.Fork()
	}
	weatherRng := r.Fork()
	for d := 0; d < cfg.Days; d++ {
		day := NewDay(len(house.Occupants), len(house.Appliances))
		weekday := d%7 < 5
		for o := range house.Occupants {
			rt := routineFor(house.Name, o)
			irregular := occRngs[o].Bool(cfg.IrregularProb)
			plan := planDay(rt, weekday, irregular, occRngs[o])
			rasterize(house, plan, &day, o, occRngs[o])
		}
		tr.Days[d] = day
		tr.Weather[d] = genWeather(cfg.SummerMeanF, weatherRng)
	}
	return tr, nil
}

// planDay builds the ordered block list for one occupant-day, beginning at
// midnight (asleep) and covering all 1440 minutes.
func planDay(rt routine, weekday, irregular bool, r *rng.Source) []block {
	jit := 1.0
	if irregular {
		jit = 3.0
	}
	norm := func(mean, std float64) int {
		v := r.Norm(mean, std*jit)
		if v < 1 {
			v = 1
		}
		return int(v)
	}
	var plan []block
	total := 0
	add := func(act home.ActivityID, dur int) {
		if dur <= 0 {
			return
		}
		if total+dur > SlotsPerDay {
			dur = SlotsPerDay - total
		}
		if dur <= 0 {
			return
		}
		plan = append(plan, block{act, dur})
		total += dur
	}
	// padUntil inserts a filler activity so the next block starts near the
	// anchor minute.
	padUntil := func(anchor int, filler home.ActivityID) {
		if anchor > total {
			add(filler, anchor-total)
		}
	}

	wake := norm(rt.wakeMean, rt.wakeStd)
	add(home.Sleeping, wake)
	// Morning routine.
	add(home.Toileting, norm(8, 2))
	if r.Bool(rt.showerMorning) {
		add(home.HavingShower, norm(14, 3))
	}
	add(home.BrushingTeeth, norm(3, 1))
	add(home.ChangingClothes, norm(5, 2))
	add(home.PreparingBreakfast, norm(17, 4))
	add(home.HavingBreakfast, norm(15, 4))

	if rt.worker && weekday {
		// Out for the work day.
		ret := norm(rt.returnMean, 25)
		padUntil(ret, home.GoingOut)
	} else {
		// Home day: anchored lunch, daytime activity mix.
		lunchAt := norm(12*60+20, 15)
		fillDaytime(rt, r, lunchAt, add, &total)
		padUntil(lunchAt, home.UsingInternet)
		add(home.PreparingLunch, norm(16, 4))
		add(home.HavingLunch, norm(20, 5))
		add(home.WashingDishes, norm(8, 2))
		afternoonEnd := norm(17*60+50, 20)
		fillDaytime(rt, r, afternoonEnd, add, &total)
		padUntil(afternoonEnd, home.WatchingTV)
	}

	// Evening: dinner, leisure, night routine, bed.
	add(home.PreparingDinner, norm(24, 5))
	add(home.HavingDinner, norm(25, 5))
	add(home.WashingDishes, norm(10, 3))
	add(home.WatchingTV, norm(rt.eveningTVMean, 20))
	if r.Bool(0.6) {
		add(home.UsingInternet, norm(35, 12))
	}
	if r.Bool(0.25) {
		add(home.HavingConversation, norm(20, 8))
	}
	add(home.Toileting, norm(6, 2))
	add(home.BrushingTeeth, norm(3, 1))
	bed := norm(rt.bedMean, rt.bedStd)
	padUntil(bed, home.ReadingBook)
	// Sleep to midnight.
	add(home.Sleeping, SlotsPerDay-total)
	return plan
}

// fillDaytime adds a few randomly chosen home-day activities until close to
// the anchor minute.
func fillDaytime(rt routine, r *rng.Source, anchor int, add func(home.ActivityID, int), total *int) {
	sedentary := []home.ActivityID{
		home.UsingInternet, home.WatchingTV, home.ReadingBook,
		home.Studying, home.TalkingOnPhone, home.ListeningToMusic, home.HavingSnack,
	}
	active := []home.ActivityID{home.Cleaning, home.Laundry, home.Napping}
	for *total < anchor-20 {
		var act home.ActivityID
		if r.Bool(0.22 * rt.choresWeight) {
			act = active[r.Intn(len(active))]
		} else {
			act = sedentary[r.Intn(len(sedentary))]
		}
		var dur int
		switch act {
		case home.Napping:
			dur = int(r.Norm(55, 15))
		case home.Laundry:
			dur = int(r.Norm(25, 6))
		case home.HavingSnack:
			dur = int(r.Norm(12, 3))
		default:
			dur = int(r.Norm(45, 15))
		}
		if dur < 3 {
			dur = 3
		}
		if *total+dur > anchor {
			dur = anchor - *total
		}
		add(act, dur)
	}
}

// rasterize writes the plan into the day's slot arrays and switches linked
// appliances on during activity blocks.
func rasterize(house *home.House, plan []block, day *Day, occupant int, r *rng.Source) {
	t := 0
	for _, b := range plan {
		act := home.ActivityByID(b.act)
		for i := 0; i < b.dur && t < SlotsPerDay; i, t = i+1, t+1 {
			day.Zone[occupant][t] = act.Zone
			day.Act[occupant][t] = b.act
		}
		// Appliances linked to the activity run for (most of) the block.
		for _, ai := range house.AppliancesForActivity(b.act) {
			runStart := t - b.dur
			runLen := b.dur
			// Short-cycle appliances (kettle, coffee maker, hair dryer) run
			// only a few minutes.
			switch house.Appliances[ai].Name {
			case "Kettle", "CoffeeMaker":
				runLen = minInt(runLen, 4+r.Intn(3))
			case "HairDryer":
				runLen = minInt(runLen, 3+r.Intn(3))
			case "Microwave":
				runLen = minInt(runLen, 3+r.Intn(5))
			}
			for i := 0; i < runLen && runStart+i < SlotsPerDay; i++ {
				if runStart+i >= 0 {
					day.Appliance[ai][runStart+i] = true
				}
			}
		}
	}
	// Safety: fill any remaining slots as sleeping in the bedroom.
	for ; t < SlotsPerDay; t++ {
		day.Zone[occupant][t] = home.Bedroom
		day.Act[occupant][t] = home.Sleeping
	}
}

// genWeather produces a diurnal outdoor temperature curve (sinusoid peaking
// mid-afternoon plus a random daily offset and minute noise) and a nearly
// constant outdoor CO2 level around 420 ppm.
func genWeather(meanF float64, r *rng.Source) Weather {
	w := Weather{
		TempF:  make([]float64, SlotsPerDay),
		CO2PPM: make([]float64, SlotsPerDay),
	}
	dailyOffset := r.Norm(0, 2.5)
	for t := 0; t < SlotsPerDay; t++ {
		phase := 2 * math.Pi * float64(t-15*60) / SlotsPerDay
		w.TempF[t] = meanF + dailyOffset + 8*math.Cos(phase) + r.Norm(0, 0.2)
		w.CO2PPM[t] = 420 + r.Norm(0, 1.5)
	}
	return w
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
