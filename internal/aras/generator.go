package aras

import (
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/rng"
)

// GeneratorConfig parameterises the synthetic trace generator.
type GeneratorConfig struct {
	// Days is the number of days to generate (the paper uses 30).
	Days int
	// Seed makes generation reproducible.
	Seed uint64
	// IrregularProb is the per-day probability that an occupant has an
	// irregular day (heavier jitter, reordered blocks). Irregular days
	// supply the noise points DBSCAN prunes and K-Means absorbs.
	// Defaults to 0.08 when zero.
	IrregularProb float64
	// SummerMeanF is the mean outdoor temperature (°F); defaults to 84
	// (cooling-dominated season, as in the paper's energy experiments).
	SummerMeanF float64
	// Profiles supplies one schedule profile per occupant, in occupant
	// order — the scenario layer's replacement for the baked-in A/B worker
	// assumptions. Nil falls back to DefaultProfile(house.Name, o). When
	// set, its length must equal the house's occupant count.
	Profiles []ScheduleProfile
}

func (c GeneratorConfig) withDefaults() GeneratorConfig {
	if c.IrregularProb == 0 {
		c.IrregularProb = 0.08
	}
	if c.SummerMeanF == 0 {
		c.SummerMeanF = 84
	}
	return c
}

// ErrBadConfig is returned for invalid day counts: batch Generate requires
// Days > 0, the incremental Generator requires Days >= 0 (0 = unbounded).
var ErrBadConfig = errors.New("aras: invalid Days")

// ErrBadProfiles is returned when GeneratorConfig.Profiles does not match
// the house's occupant count.
var ErrBadProfiles = errors.New("aras: Profiles length must equal occupant count")

// ScheduleProfile describes an occupant's habitual daily schedule — the
// behaviour archetype the generator turns into a clusterable day plan. All
// times are minutes after midnight; all durations in minutes. Scenario
// specs carry one per occupant; the zero value is a homebody who never
// leaves, so sweeps can start from it and override anchors.
type ScheduleProfile struct {
	// Worker occupants leave for work on weekdays.
	Worker bool
	// WakeMean/WakeStd control the wake-up anchor.
	WakeMean, WakeStd float64
	// BedMean/BedStd control the bedtime anchor.
	BedMean, BedStd float64
	// ReturnMean anchors the weekday work window: workers go out after the
	// morning routine and return around this minute. LeaveMean records the
	// archetype's nominal departure time for description/derivation only —
	// the generator does not hold workers home until it (anchoring the
	// departure would alter the ARAS reproduction traces).
	LeaveMean, ReturnMean float64
	// ShowerMorning is the probability of a morning shower.
	ShowerMorning float64
	// EveningTVMean is the evening television block length.
	EveningTVMean float64
	// ChoresWeight scales how much daytime is spent on active chores
	// (cleaning, laundry) vs sedentary activities.
	ChoresWeight float64
}

// DefaultProfile returns the behaviour archetype for an occupant of a
// paper house. House A: Alice studies/works from home, Bob commutes.
// House B: both occupants are out most of the day (hence House B's lower
// benign and attacked costs throughout the paper's tables). Unknown
// (house, occupant) pairs get the commuter default.
func DefaultProfile(houseName string, occupant int) ScheduleProfile {
	switch {
	case houseName == "A" && occupant == 0: // Alice, home-based
		return ScheduleProfile{
			Worker:   false,
			WakeMean: 7*60 + 10, WakeStd: 18,
			BedMean: 23 * 60, BedStd: 25,
			ShowerMorning: 0.75,
			EveningTVMean: 95,
			ChoresWeight:  1.0,
		}
	case houseName == "A" && occupant == 1: // Bob, commuter
		return ScheduleProfile{
			Worker:   true,
			WakeMean: 6*60 + 40, WakeStd: 15,
			BedMean: 22*60 + 45, BedStd: 20,
			LeaveMean:     8*60 + 40,
			ReturnMean:    17*60 + 45,
			ShowerMorning: 0.85,
			EveningTVMean: 80,
			ChoresWeight:  0.5,
		}
	case houseName == "B" && occupant == 0: // Carol, long-hours commuter
		return ScheduleProfile{
			Worker:   true,
			WakeMean: 6*60 + 20, WakeStd: 15,
			BedMean: 22*60 + 30, BedStd: 20,
			LeaveMean:     7*60 + 50,
			ReturnMean:    18*60 + 30,
			ShowerMorning: 0.8,
			EveningTVMean: 60,
			ChoresWeight:  0.6,
		}
	default: // Dave, commuter with evening activities out
		return ScheduleProfile{
			Worker:   true,
			WakeMean: 7 * 60, WakeStd: 18,
			BedMean: 23*60 + 15, BedStd: 25,
			LeaveMean:     8*60 + 30,
			ReturnMean:    19*60 + 15,
			ShowerMorning: 0.7,
			EveningTVMean: 70,
			ChoresWeight:  0.4,
		}
	}
}

// block is one contiguous activity in the day plan.
type block struct {
	act home.ActivityID
	dur int
}

// Generator produces a trace one day at a time — the incremental core the
// streaming runtime pulls from instead of materializing a whole multi-day
// trace up front. It owns the same forked per-occupant and weather RNG
// streams the batch path uses, so the sequence of days it emits is
// byte-identical to a single Generate call with the same configuration.
// A Generator is not safe for concurrent use.
type Generator struct {
	house      *home.House
	cfg        GeneratorConfig
	occRngs    []*rng.Source
	weatherRng *rng.Source
	day        int
}

// NewGenerator validates the configuration and seeds the day stream.
// cfg.Days bounds the stream (NextDay returns io.EOF after that many days);
// Days == 0 leaves the stream unbounded, which only the incremental API
// supports — batch Generate still requires a positive day count.
func NewGenerator(house *home.House, cfg GeneratorConfig) (*Generator, error) {
	if cfg.Days < 0 {
		return nil, ErrBadConfig
	}
	if cfg.Profiles != nil && len(cfg.Profiles) != len(house.Occupants) {
		return nil, fmt.Errorf("%w: %d profiles for %d occupants", ErrBadProfiles, len(cfg.Profiles), len(house.Occupants))
	}
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	g := &Generator{
		house:   house,
		cfg:     cfg,
		occRngs: make([]*rng.Source, len(house.Occupants)),
	}
	for o := range g.occRngs {
		g.occRngs[o] = r.Fork()
	}
	g.weatherRng = r.Fork()
	return g, nil
}

// House returns the world the generator emits days for.
func (g *Generator) House() *home.House { return g.house }

// DayIndex returns the index of the day the next NextDay call emits.
func (g *Generator) DayIndex() int { return g.day }

// NextDay plans, rasterizes, and returns one day of ground truth with its
// weather. It returns io.EOF once the configured day count is exhausted.
func (g *Generator) NextDay() (Day, Weather, error) {
	day := NewDay(len(g.house.Occupants), len(g.house.Appliances))
	w := Weather{
		TempF:  make([]float64, SlotsPerDay),
		CO2PPM: make([]float64, SlotsPerDay),
	}
	if err := g.NextDayInto(&day, &w); err != nil {
		return Day{}, Weather{}, err
	}
	return day, w, nil
}

// NextDayInto is NextDay writing into caller-owned buffers — the streaming
// hot path reuses one Day/Weather pair per home instead of allocating ~23KB
// per home-day. The buffers must have the house's occupant/appliance shape
// (NewDay/make as in NextDay); contents are fully overwritten. The emitted
// values are byte-identical to NextDay's: both consume the same RNG streams
// in the same order.
func (g *Generator) NextDayInto(day *Day, w *Weather) error {
	if g.cfg.Days > 0 && g.day >= g.cfg.Days {
		return io.EOF
	}
	if len(day.Zone) != len(g.house.Occupants) || len(day.Appliance) != len(g.house.Appliances) {
		return fmt.Errorf("aras: NextDayInto: day shaped %d/%d, house has %d occupants / %d appliances",
			len(day.Zone), len(day.Appliance), len(g.house.Occupants), len(g.house.Appliances))
	}
	// rasterize overwrites every Zone/Act slot but only ORs appliance runs in.
	for a := range day.Appliance {
		col := day.Appliance[a]
		for t := range col {
			col[t] = false
		}
	}
	weekday := g.day%7 < 5
	for o := range g.house.Occupants {
		var rt ScheduleProfile
		if g.cfg.Profiles != nil {
			rt = g.cfg.Profiles[o]
		} else {
			rt = DefaultProfile(g.house.Name, o)
		}
		irregular := g.occRngs[o].Bool(g.cfg.IrregularProb)
		plan := planDay(rt, weekday, irregular, g.occRngs[o])
		rasterize(g.house, plan, day, o, g.occRngs[o])
	}
	genWeatherInto(g.cfg.SummerMeanF, g.weatherRng, w)
	g.day++
	return nil
}

// Generate produces a synthetic trace for the house by draining the
// incremental Generator — the batch path is a loop over NextDay, so the two
// are equivalent by construction. Schedule profiles come from cfg.Profiles
// (the scenario layer); a nil Profiles falls back to the paper houses'
// default archetypes.
func Generate(house *home.House, cfg GeneratorConfig) (*Trace, error) {
	if cfg.Days <= 0 {
		return nil, ErrBadConfig
	}
	g, err := NewGenerator(house, cfg)
	if err != nil {
		return nil, err
	}
	tr := &Trace{
		House:   house,
		Days:    make([]Day, cfg.Days),
		Weather: make([]Weather, cfg.Days),
	}
	for d := 0; d < cfg.Days; d++ {
		tr.Days[d], tr.Weather[d], err = g.NextDay()
		if err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// planDay builds the ordered block list for one occupant-day, beginning at
// midnight (asleep) and covering all 1440 minutes.
func planDay(rt ScheduleProfile, weekday, irregular bool, r *rng.Source) []block {
	jit := 1.0
	if irregular {
		jit = 3.0
	}
	norm := func(mean, std float64) int {
		v := r.Norm(mean, std*jit)
		if v < 1 {
			v = 1
		}
		return int(v)
	}
	var plan []block
	total := 0
	add := func(act home.ActivityID, dur int) {
		if dur <= 0 {
			return
		}
		if total+dur > SlotsPerDay {
			dur = SlotsPerDay - total
		}
		if dur <= 0 {
			return
		}
		plan = append(plan, block{act, dur})
		total += dur
	}
	// padUntil inserts a filler activity so the next block starts near the
	// anchor minute.
	padUntil := func(anchor int, filler home.ActivityID) {
		if anchor > total {
			add(filler, anchor-total)
		}
	}

	wake := norm(rt.WakeMean, rt.WakeStd)
	add(home.Sleeping, wake)
	// Morning routine.
	add(home.Toileting, norm(8, 2))
	if r.Bool(rt.ShowerMorning) {
		add(home.HavingShower, norm(14, 3))
	}
	add(home.BrushingTeeth, norm(3, 1))
	add(home.ChangingClothes, norm(5, 2))
	add(home.PreparingBreakfast, norm(17, 4))
	add(home.HavingBreakfast, norm(15, 4))

	if rt.Worker && weekday {
		// Out for the work day.
		ret := norm(rt.ReturnMean, 25)
		padUntil(ret, home.GoingOut)
	} else {
		// Home day: anchored lunch, daytime activity mix.
		lunchAt := norm(12*60+20, 15)
		fillDaytime(rt, r, lunchAt, add, &total)
		padUntil(lunchAt, home.UsingInternet)
		add(home.PreparingLunch, norm(16, 4))
		add(home.HavingLunch, norm(20, 5))
		add(home.WashingDishes, norm(8, 2))
		afternoonEnd := norm(17*60+50, 20)
		fillDaytime(rt, r, afternoonEnd, add, &total)
		padUntil(afternoonEnd, home.WatchingTV)
	}

	// Evening: dinner, leisure, night routine, bed.
	add(home.PreparingDinner, norm(24, 5))
	add(home.HavingDinner, norm(25, 5))
	add(home.WashingDishes, norm(10, 3))
	add(home.WatchingTV, norm(rt.EveningTVMean, 20))
	if r.Bool(0.6) {
		add(home.UsingInternet, norm(35, 12))
	}
	if r.Bool(0.25) {
		add(home.HavingConversation, norm(20, 8))
	}
	add(home.Toileting, norm(6, 2))
	add(home.BrushingTeeth, norm(3, 1))
	bed := norm(rt.BedMean, rt.BedStd)
	padUntil(bed, home.ReadingBook)
	// Sleep to midnight.
	add(home.Sleeping, SlotsPerDay-total)
	return plan
}

// fillDaytime adds a few randomly chosen home-day activities until close to
// the anchor minute.
func fillDaytime(rt ScheduleProfile, r *rng.Source, anchor int, add func(home.ActivityID, int), total *int) {
	sedentary := []home.ActivityID{
		home.UsingInternet, home.WatchingTV, home.ReadingBook,
		home.Studying, home.TalkingOnPhone, home.ListeningToMusic, home.HavingSnack,
	}
	active := []home.ActivityID{home.Cleaning, home.Laundry, home.Napping}
	for *total < anchor-20 {
		var act home.ActivityID
		if r.Bool(0.22 * rt.ChoresWeight) {
			act = active[r.Intn(len(active))]
		} else {
			act = sedentary[r.Intn(len(sedentary))]
		}
		var dur int
		switch act {
		case home.Napping:
			dur = int(r.Norm(55, 15))
		case home.Laundry:
			dur = int(r.Norm(25, 6))
		case home.HavingSnack:
			dur = int(r.Norm(12, 3))
		default:
			dur = int(r.Norm(45, 15))
		}
		if dur < 3 {
			dur = 3
		}
		if *total+dur > anchor {
			dur = anchor - *total
		}
		add(act, dur)
	}
}

// rasterize writes the plan into the day's slot arrays and switches linked
// appliances on during activity blocks. Zones come from the house's
// per-occupant activity assignment, so multi-bedroom layouts place each
// occupant in their own room.
func rasterize(house *home.House, plan []block, day *Day, occupant int, r *rng.Source) {
	t := 0
	for _, b := range plan {
		zone := house.ZoneForActivity(occupant, b.act)
		for i := 0; i < b.dur && t < SlotsPerDay; i, t = i+1, t+1 {
			day.Zone[occupant][t] = zone
			day.Act[occupant][t] = b.act
		}
		// Appliances linked to the activity run for (most of) the block.
		for _, ai := range house.AppliancesForActivity(b.act) {
			runStart := t - b.dur
			runLen := b.dur
			// Short-cycle appliances (kettle, coffee maker, hair dryer) run
			// only a few minutes.
			switch house.Appliances[ai].Name {
			case "Kettle", "CoffeeMaker":
				runLen = minInt(runLen, 4+r.Intn(3))
			case "HairDryer":
				runLen = minInt(runLen, 3+r.Intn(3))
			case "Microwave":
				runLen = minInt(runLen, 3+r.Intn(5))
			}
			for i := 0; i < runLen && runStart+i < SlotsPerDay; i++ {
				if runStart+i >= 0 {
					day.Appliance[ai][runStart+i] = true
				}
			}
		}
	}
	// Safety: fill any remaining slots as sleeping in the occupant's bedroom.
	bed := house.ZoneForActivity(occupant, home.Sleeping)
	for ; t < SlotsPerDay; t++ {
		day.Zone[occupant][t] = bed
		day.Act[occupant][t] = home.Sleeping
	}
}

// diurnalCos[t] is the 8°F-amplitude diurnal sinusoid term (peaking
// mid-afternoon) of the outdoor temperature curve. The phase depends only on
// the minute-of-day, so the table holds exactly the values the per-slot
// 8*math.Cos(phase) expression produced.
var diurnalCos = func() *[SlotsPerDay]float64 {
	var tab [SlotsPerDay]float64
	for t := 0; t < SlotsPerDay; t++ {
		phase := 2 * math.Pi * float64(t-15*60) / SlotsPerDay
		tab[t] = 8 * math.Cos(phase)
	}
	return &tab
}()

// genWeatherInto produces a diurnal outdoor temperature curve (sinusoid
// peaking mid-afternoon plus a random daily offset and minute noise) and a
// nearly constant outdoor CO2 level around 420 ppm, into caller-owned
// SlotsPerDay buffers (allocated if nil or mis-sized).
func genWeatherInto(meanF float64, r *rng.Source, w *Weather) {
	if len(w.TempF) != SlotsPerDay {
		w.TempF = make([]float64, SlotsPerDay)
	}
	if len(w.CO2PPM) != SlotsPerDay {
		w.CO2PPM = make([]float64, SlotsPerDay)
	}
	dailyOffset := r.Norm(0, 2.5)
	base := meanF + dailyOffset
	for t := 0; t < SlotsPerDay; t++ {
		w.TempF[t] = base + diurnalCos[t] + r.Norm(0, 0.2)
		w.CO2PPM[t] = 420 + r.Norm(0, 1.5)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
