package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionObserve(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // TP
	c.Observe(true, false)  // FP
	c.Observe(false, true)  // FN
	c.Observe(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("total = %d, want 4", c.Total())
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
	if got := c.Precision(); got != 0.5 {
		t.Errorf("precision = %v, want 0.5", got)
	}
	if got := c.Recall(); got != 0.5 {
		t.Errorf("recall = %v, want 0.5", got)
	}
	if got := c.F1(); got != 0.5 {
		t.Errorf("f1 = %v, want 0.5", got)
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Add(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Errorf("after add: %+v", a)
	}
}

func TestConfusionEmptyNaN(t *testing.T) {
	var c Confusion
	if !math.IsNaN(c.Accuracy()) || !math.IsNaN(c.Precision()) ||
		!math.IsNaN(c.Recall()) || !math.IsNaN(c.F1()) {
		t.Error("empty confusion should give NaN metrics")
	}
}

func TestPerfectClassifier(t *testing.T) {
	c := Confusion{TP: 50, TN: 50}
	if c.F1() != 1 || c.Accuracy() != 1 {
		t.Errorf("perfect classifier: f1=%v acc=%v", c.F1(), c.Accuracy())
	}
}

// Property: F1 is the harmonic mean of precision and recall and lies in
// [min(p,r), max(p,r)].
func TestPropertyF1Bounds(t *testing.T) {
	f := func(tp, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), FP: int(fp), FN: int(fn), TN: 5}
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		if math.IsNaN(f1) {
			return true
		}
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDevSum(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
	if got := Sum(xs); got != 40 {
		t.Errorf("sum = %v, want 40", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty input should yield NaN")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestMeanAbsPctError(t *testing.T) {
	pred := []float64{110, 90}
	actual := []float64{100, 100}
	if got := MeanAbsPctError(pred, actual); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	if !math.IsNaN(MeanAbsPctError([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(MeanAbsPctError([]float64{1}, []float64{0})) {
		t.Error("all-zero actuals should be NaN")
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1, FP: 1, TN: 1, FN: 1}
	if s := c.String(); s == "" {
		t.Error("String should render metrics")
	}
}
