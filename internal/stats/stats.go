// Package stats provides the binary-classification metrics used to evaluate
// SHATTER's anomaly detection models (Table IV, Fig 5): confusion matrices,
// accuracy, precision, recall, and F1-score, plus small summary-statistic
// helpers shared by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Confusion is a binary confusion matrix. "Positive" means "attack"
// throughout this repository: TP = attack flagged as attack.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add merges another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Observe records a single labelled prediction.
func (c *Confusion) Observe(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		c.TP++
	case predictedPositive && !actuallyPositive:
		c.FP++
	case !predictedPositive && actuallyPositive:
		c.FN++
	default:
		c.TN++
	}
}

// Total returns the number of observations.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or NaN with no observations.
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return math.NaN()
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP), or NaN when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or NaN when there were no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return math.NaN()
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall — the paper's metric
// of choice because the ADM datasets are heavily imbalanced (Section III-A).
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if math.IsNaN(p) || math.IsNaN(r) || p+r == 0 {
		return math.NaN()
	}
	return 2 * p * r / (p + r)
}

// String renders the four headline metrics for table output.
func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.2f prec=%.2f rec=%.2f f1=%.2f",
		c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MeanAbsPctError returns the mean |pred−actual|/|actual| over pairs where
// actual is non-zero — the "<2% error" testbed regression metric.
func MeanAbsPctError(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	var n int
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
