package regress

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/acyd-lab/shatter/internal/rng"
)

func TestFitPolyExactQuadratic(t *testing.T) {
	// y = 2 + 3x + 0.5x²
	want := []float64{2, 3, 0.5}
	xs := []float64{-2, -1, 0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = want[0] + want[1]*x + want[2]*x*x
	}
	p, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p.Coeffs {
		if math.Abs(c-want[i]) > 1e-9 {
			t.Errorf("coeff %d = %v, want %v", i, c, want[i])
		}
	}
	if r2 := p.R2(xs, ys); math.Abs(r2-1) > 1e-9 {
		t.Errorf("R2 = %v, want 1", r2)
	}
}

func TestFitPolyConstant(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{5, 5, 5}
	p, err := FitPoly(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Eval(10)-5) > 1e-9 {
		t.Errorf("constant fit eval = %v, want 5", p.Eval(10))
	}
	if p.Degree() != 0 {
		t.Errorf("degree = %d, want 0", p.Degree())
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly([]float64{1}, []float64{1}, -1); err != ErrBadDegree {
		t.Errorf("want ErrBadDegree, got %v", err)
	}
	if _, err := FitPoly([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 2); err != ErrTooFewSamples {
		t.Errorf("want ErrTooFewSamples, got %v", err)
	}
	// All-identical x with degree 1 is singular.
	if _, err := FitPoly([]float64{3, 3, 3}, []float64{1, 2, 3}, 1); err != ErrSingular {
		t.Errorf("want ErrSingular, got %v", err)
	}
}

func TestFitPolyNoisyRecovery(t *testing.T) {
	r := rng.New(31)
	truth := Poly{Coeffs: []float64{1, -2, 0.3}}
	n := 200
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Range(-5, 5)
		ys[i] = truth.Eval(xs[i]) + r.Norm(0, 0.05)
	}
	p, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Coeffs {
		if math.Abs(p.Coeffs[i]-truth.Coeffs[i]) > 0.1 {
			t.Errorf("coeff %d = %v, want ≈%v", i, p.Coeffs[i], truth.Coeffs[i])
		}
	}
	if r2 := p.R2(xs, ys); r2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", r2)
	}
}

// Property: fitting a polynomial of the generating degree recovers
// predictions (not necessarily coefficients, which can be ill-conditioned)
// to high accuracy on the sample range.
func TestPropertyFitReproducesGenerator(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		deg := r.Intn(3) + 1
		coeffs := make([]float64, deg+1)
		for i := range coeffs {
			coeffs[i] = r.Range(-3, 3)
		}
		truth := Poly{Coeffs: coeffs}
		n := deg + 2 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = r.Range(-4, 4)
			ys[i] = truth.Eval(xs[i])
		}
		p, err := FitPoly(xs, ys, deg)
		if err != nil {
			// Degenerate draws (e.g. coincident x) are acceptable skips.
			return err == ErrSingular
		}
		for i := range xs {
			if math.Abs(p.Eval(xs[i])-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEvalHorner(t *testing.T) {
	p := Poly{Coeffs: []float64{1, 2, 3}} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Errorf("eval(2) = %v, want 17", got)
	}
	empty := Poly{}
	if got := empty.Eval(5); got != 0 {
		t.Errorf("empty poly eval = %v, want 0", got)
	}
	if empty.Degree() != -1 {
		t.Errorf("empty degree = %d, want -1", empty.Degree())
	}
}

func TestR2Degenerate(t *testing.T) {
	p := Poly{Coeffs: []float64{5}}
	if got := p.R2([]float64{1, 2}, []float64{5, 5}); got != 1 {
		t.Errorf("perfect constant fit R2 = %v, want 1", got)
	}
	if !math.IsNaN(p.R2(nil, nil)) {
		t.Error("empty R2 should be NaN")
	}
}
