// Package regress implements least-squares polynomial regression. The
// prototype testbed (paper Section VI) learns its non-linear zone thermal
// dynamics — airflow and heat generation as a function of temperature —
// with a degree-2 polynomial regression that achieved <2% error against
// testbed measurements; this package provides that estimator.
//
// Fitting solves the normal equations (Vᵀ V) β = Vᵀ y with a numerically
// pivoted Gaussian elimination, which is robust for the low degrees (≤4)
// used here.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Poly is a fitted polynomial y = Σ Coeffs[i]·xⁱ.
type Poly struct {
	Coeffs []float64
}

var (
	// ErrBadDegree is returned for negative degree.
	ErrBadDegree = errors.New("regress: degree must be >= 0")
	// ErrTooFewSamples is returned when len(samples) < degree+1.
	ErrTooFewSamples = errors.New("regress: need at least degree+1 samples")
	// ErrSingular is returned when the normal equations are singular
	// (e.g. all x identical while fitting degree >= 1).
	ErrSingular = errors.New("regress: singular system (degenerate inputs)")
)

// FitPoly fits a polynomial of the given degree to (xs, ys).
func FitPoly(xs, ys []float64, degree int) (Poly, error) {
	if degree < 0 {
		return Poly{}, ErrBadDegree
	}
	if len(xs) != len(ys) {
		return Poly{}, fmt.Errorf("regress: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	n := len(xs)
	m := degree + 1
	if n < m {
		return Poly{}, ErrTooFewSamples
	}
	// Build normal equations A β = b where A = VᵀV (m×m), b = Vᵀy.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m+1) // augmented column holds b
	}
	// Precompute power sums Σ x^k for k in [0, 2·degree] and Σ y·x^k.
	powSums := make([]float64, 2*degree+1)
	ySums := make([]float64, m)
	for i := 0; i < n; i++ {
		xp := 1.0
		for k := 0; k <= 2*degree; k++ {
			powSums[k] += xp
			if k < m {
				ySums[k] += ys[i] * xp
			}
			xp *= xs[i]
		}
	}
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			a[r][c] = powSums[r+c]
		}
		a[r][m] = ySums[r]
	}
	coeffs, err := solveGaussian(a)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coeffs: coeffs}, nil
}

// solveGaussian solves the augmented system in place with partial pivoting.
func solveGaussian(a [][]float64) ([]float64, error) {
	m := len(a)
	for col := 0; col < m; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		// Eliminate below.
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		sum := a[r][m]
		for c := r + 1; c < m; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// Eval evaluates the polynomial at x (Horner's method).
func (p Poly) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		y = y*x + p.Coeffs[i]
	}
	return y
}

// Degree returns the polynomial degree (−1 for an empty polynomial).
func (p Poly) Degree() int { return len(p.Coeffs) - 1 }

// R2 returns the coefficient of determination of the fit on (xs, ys).
func (p Poly) R2(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var ssTot, ssRes float64
	for i := range xs {
		d := ys[i] - mean
		ssTot += d * d
		r := ys[i] - p.Eval(xs[i])
		ssRes += r * r
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
