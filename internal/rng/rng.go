// Package rng provides a small deterministic pseudo-random number generator
// used throughout the SHATTER reproduction so that every dataset, experiment,
// and test is exactly reproducible from a seed, independent of math/rand
// version changes or global state.
//
// The generator is splitmix64 for seeding feeding xoshiro256** for the
// stream; both are public-domain algorithms with excellent statistical
// quality for simulation workloads (this is NOT a cryptographic generator).
package rng

import "math"

// Source is a deterministic random source. The zero value is not valid; use
// New. Source is not safe for concurrent use; create one per goroutine.
type Source struct {
	state [4]uint64
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	s := &Source{}
	// splitmix64 to spread the seed across the 256-bit state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.state[i] = z ^ (z >> 31)
	}
	return s
}

// Fork derives an independent child stream. The child's sequence does not
// overlap the parent's for any practical sample count, and the parent's
// stream advances by exactly one step, keeping replay deterministic.
func (s *Source) Fork() *Source {
	return New(s.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.state[1]*5, 7) * 9
	t := s.state[1] << 17
	s.state[2] ^= s.state[0]
	s.state[3] ^= s.state[1]
	s.state[1] ^= s.state[2]
	s.state[0] ^= s.state[3]
	s.state[2] ^= t
	s.state[3] = rotl(s.state[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics for misuse during development.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Box-Muller transform.
func (s *Source) Norm(mean, stddev float64) float64 {
	// Avoid log(0).
	u1 := 1 - s.Float64()
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle shuffles the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
