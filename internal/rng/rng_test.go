package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams from distinct seeds collide too often: %d/64", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) should hit all values over 1000 draws, hit %d", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(1234)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm(10, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ≈10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %v, want ≈2", math.Sqrt(variance))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(77)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Fork()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 32; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("fork stream collides with parent: %d/32", same)
	}
}

func TestShuffle(t *testing.T) {
	r := New(8)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 45 {
		t.Error("shuffle lost elements")
	}
	allSame := true
	for i := range xs {
		if xs[i] != orig[i] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("shuffle of 10 elements left order unchanged (astronomically unlikely)")
	}
}
