package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/rng"
)

// twoBlobs generates two well-separated Gaussian blobs plus optional
// uniform noise points.
func twoBlobs(r *rng.Source, perBlob, noise int) []geometry.Point {
	pts := make([]geometry.Point, 0, 2*perBlob+noise)
	for i := 0; i < perBlob; i++ {
		pts = append(pts, geometry.Point{X: r.Norm(10, 1), Y: r.Norm(10, 1)})
	}
	for i := 0; i < perBlob; i++ {
		pts = append(pts, geometry.Point{X: r.Norm(50, 1), Y: r.Norm(50, 1)})
	}
	for i := 0; i < noise; i++ {
		pts = append(pts, geometry.Point{X: r.Range(0, 60), Y: r.Range(0, 60)})
	}
	return pts
}

func TestKMeansBadK(t *testing.T) {
	pts := []geometry.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if _, err := KMeans(pts, 0, 1); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(pts, 3, 1); err == nil {
		t.Error("k>n should error")
	}
}

func TestKMeansTwoBlobs(t *testing.T) {
	r := rng.New(7)
	pts := twoBlobs(r, 50, 0)
	res, err := KMeans(pts, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	// The first 50 points should share a label, and differ from the last 50.
	first := res.Labels[0]
	for i := 1; i < 50; i++ {
		if res.Labels[i] != first {
			t.Fatalf("point %d not in same cluster as blob mates", i)
		}
	}
	second := res.Labels[50]
	if second == first {
		t.Fatal("blobs merged into one cluster")
	}
	for i := 51; i < 100; i++ {
		if res.Labels[i] != second {
			t.Fatalf("point %d not in same cluster as blob mates", i)
		}
	}
}

func TestKMeansAssignsEveryPoint(t *testing.T) {
	r := rng.New(3)
	pts := twoBlobs(r, 30, 10)
	res, err := KMeans(pts, 5, 123)
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseCount() != 0 {
		t.Error("k-means must not produce noise labels")
	}
	for i, l := range res.Labels {
		if l < 0 || l >= res.K {
			t.Fatalf("label out of range at %d: %d", i, l)
		}
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	r := rng.New(11)
	pts := twoBlobs(r, 40, 5)
	a, err := KMeans(pts, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed should reproduce identical clustering")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := make([]geometry.Point, 10)
	for i := range pts {
		pts[i] = geometry.Point{X: 5, Y: 5}
	}
	res, err := KMeans(pts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 10 {
		t.Fatal("missing labels")
	}
}

func TestDBSCANBadParams(t *testing.T) {
	pts := []geometry.Point{{X: 1, Y: 1}}
	if _, err := DBSCAN(pts, DBSCANParams{Eps: 0, MinPts: 3}); err == nil {
		t.Error("Eps=0 should error")
	}
	if _, err := DBSCAN(pts, DBSCANParams{Eps: 1, MinPts: 0}); err == nil {
		t.Error("MinPts=0 should error")
	}
}

func TestDBSCANTwoBlobsWithNoise(t *testing.T) {
	r := rng.New(5)
	pts := twoBlobs(r, 60, 8)
	res, err := DBSCAN(pts, DBSCANParams{Eps: 2.5, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("found %d clusters, want 2", res.K)
	}
	// Blob members should be non-noise.
	for i := 0; i < 120; i++ {
		if res.Labels[i] == Noise {
			// A blob point can occasionally be a border case; tolerate a few.
			continue
		}
	}
	if res.NoiseCount() == 0 {
		t.Error("expected some uniform points to be labelled noise")
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	// Points too far apart for any cluster.
	pts := []geometry.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}}
	res, err := DBSCAN(pts, DBSCANParams{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 0 || res.NoiseCount() != 4 {
		t.Errorf("got K=%d noise=%d, want K=0 noise=4", res.K, res.NoiseCount())
	}
}

func TestDBSCANSingleDenseCluster(t *testing.T) {
	r := rng.New(9)
	pts := make([]geometry.Point, 50)
	for i := range pts {
		pts[i] = geometry.Point{X: r.Norm(0, 0.5), Y: r.Norm(0, 0.5)}
	}
	res, err := DBSCAN(pts, DBSCANParams{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 {
		t.Fatalf("found %d clusters, want 1", res.K)
	}
	if res.NoiseCount() != 0 {
		t.Errorf("dense cluster should have no noise, got %d", res.NoiseCount())
	}
}

// Property: every DBSCAN label is either Noise or a valid cluster index,
// and cluster ids are contiguous from 0.
func TestPropertyDBSCANLabelsValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(80)
		pts := make([]geometry.Point, n)
		for i := range pts {
			pts[i] = geometry.Point{X: r.Range(0, 30), Y: r.Range(0, 30)}
		}
		res, err := DBSCAN(pts, DBSCANParams{Eps: r.Range(0.5, 5), MinPts: 1 + r.Intn(6)})
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, l := range res.Labels {
			if l == Noise {
				continue
			}
			if l < 0 || l >= res.K {
				return false
			}
			seen[l] = true
		}
		return len(seen) == res.K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: k-means assignment is nearest-centroid stable: recomputing each
// cluster's centroid and reassigning changes nothing after convergence.
func TestPropertyKMeansConverged(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(60)
		pts := make([]geometry.Point, n)
		for i := range pts {
			pts[i] = geometry.Point{X: r.Range(0, 100), Y: r.Range(0, 100)}
		}
		k := 2 + r.Intn(4)
		res, err := KMeans(pts, k, seed)
		if err != nil {
			return false
		}
		// Compute centroids from the labels.
		sums := make([]geometry.Point, k)
		counts := make([]int, k)
		for i, p := range pts {
			c := res.Labels[i]
			sums[c].X += p.X
			sums[c].Y += p.Y
			counts[c]++
		}
		cents := make([]geometry.Point, k)
		for c := range cents {
			if counts[c] == 0 {
				continue
			}
			cents[c] = geometry.Point{X: sums[c].X / float64(counts[c]), Y: sums[c].Y / float64(counts[c])}
		}
		// Every point must be at least as close to its own centroid as to
		// any other non-empty centroid (allowing fp tolerance).
		for i, p := range pts {
			own := res.Labels[i]
			if counts[own] == 0 {
				return false
			}
			dOwn := sqDist(p, cents[own])
			for c := 0; c < k; c++ {
				if counts[c] == 0 || c == own {
					continue
				}
				if sqDist(p, cents[c]) < dOwn-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidityIndicesOnSeparatedBlobs(t *testing.T) {
	r := rng.New(21)
	pts := twoBlobs(r, 50, 0)
	good, err := KMeans(pts, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := KMeans(pts, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated 2-clustering should beat an over-split 7-clustering on
	// all three indices.
	if DaviesBouldin(pts, good) >= DaviesBouldin(pts, bad) {
		t.Error("DBI: 2 clusters should score lower (better) than 7")
	}
	if Silhouette(pts, good) <= Silhouette(pts, bad) {
		t.Error("Silhouette: 2 clusters should score higher than 7")
	}
	if CalinskiHarabasz(pts, good) <= CalinskiHarabasz(pts, bad) {
		t.Error("CHI: 2 clusters should score higher than 7")
	}
}

func TestValidityDegenerate(t *testing.T) {
	pts := []geometry.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	one := Result{Labels: []int{0, 0, 0}, K: 1}
	if !math.IsNaN(DaviesBouldin(pts, one)) {
		t.Error("DBI of single cluster should be NaN")
	}
	if !math.IsNaN(Silhouette(pts, one)) {
		t.Error("Silhouette of single cluster should be NaN")
	}
	if !math.IsNaN(CalinskiHarabasz(pts, one)) {
		t.Error("CHI of single cluster should be NaN")
	}
}

func TestSilhouetteRange(t *testing.T) {
	r := rng.New(17)
	pts := twoBlobs(r, 30, 10)
	res, err := KMeans(pts, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := Silhouette(pts, res)
	if s < -1 || s > 1 {
		t.Errorf("silhouette %v out of [-1,1]", s)
	}
}

func TestMembersAndNoiseCount(t *testing.T) {
	pts := []geometry.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 9, Y: 9}}
	res := Result{Labels: []int{0, 0, 1, Noise}, K: 2}
	if got := len(res.Members(pts, 0)); got != 2 {
		t.Errorf("cluster 0 members = %d, want 2", got)
	}
	if got := res.NoiseCount(); got != 1 {
		t.Errorf("noise = %d, want 1", got)
	}
}
