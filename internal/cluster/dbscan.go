package cluster

import (
	"errors"
	"math"

	"github.com/acyd-lab/shatter/internal/geometry"
)

// DBSCANParams configures DBSCAN. The paper tunes MinPts (Fig 4a, optimum
// 30) and fixes Eps = 3 ("maximum distance in between within cluster
// samples ... the minimum number of points to create a convex hull").
type DBSCANParams struct {
	// Eps is the neighbourhood radius.
	Eps float64
	// MinPts is the minimum neighbourhood size (including the point itself)
	// for a point to be a core point.
	MinPts int
}

// ErrBadParams is returned for non-positive Eps or MinPts.
var ErrBadParams = errors.New("cluster: DBSCAN requires Eps > 0 and MinPts >= 1")

// gridIndex is a uniform spatial hash over the point set with cell size Eps:
// every neighbour of a point lies in its own or one of the eight adjacent
// cells, so a region query inspects O(points per 3×3 block) candidates
// instead of the full set.
type gridIndex struct {
	eps   float64
	cells map[gridCell][]int32
}

type gridCell struct{ x, y int32 }

func newGridIndex(pts []geometry.Point, eps float64) *gridIndex {
	g := &gridIndex{eps: eps, cells: make(map[gridCell][]int32, len(pts)/2+1)}
	for i, p := range pts {
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g
}

func (g *gridIndex) cellOf(p geometry.Point) gridCell {
	return gridCell{int32(math.Floor(p.X / g.eps)), int32(math.Floor(p.Y / g.eps))}
}

// neighbours appends the Eps-neighbourhood of pts[i] (including i itself) to
// buf. The candidate order differs from the naive O(n²) scan, but DBSCAN's
// final labelling is order-independent within a region query: the set of
// points core-reachable from a seed does not depend on expansion order, and
// border points shared between clusters are claimed by outer visit order
// (ascending i), which is unchanged.
func (g *gridIndex) neighbours(pts []geometry.Point, i int, eps2 float64, buf []int32) []int32 {
	p := pts[i]
	c := g.cellOf(p)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, j := range g.cells[gridCell{c.x + dx, c.y + dy}] {
				if sqDist(p, pts[j]) <= eps2 {
					buf = append(buf, j)
				}
			}
		}
	}
	return buf
}

// DBSCAN clusters pts by density reachability. Points in no dense region
// are labelled Noise — the property that keeps DBSCAN hulls tight around
// habitual behaviour and makes the DBSCAN-based ADM harder to evade
// (Section VII-A).
//
// Region queries go through a uniform grid with cell size Eps, so the
// expected cost is O(n · k) for neighbourhoods of size k rather than the
// textbook O(n²); the visit order (and therefore the labelling) matches the
// naive algorithm exactly.
func DBSCAN(pts []geometry.Point, params DBSCANParams) (Result, error) {
	if params.Eps <= 0 || params.MinPts < 1 {
		return Result{}, ErrBadParams
	}
	n := len(pts)
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	eps2 := params.Eps * params.Eps
	grid := newGridIndex(pts, params.Eps)
	nbuf := make([]int32, 0, 64)  // region-query scratch, reused per query
	queue := make([]int32, 0, 64) // BFS frontier, reused per cluster
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nbuf = grid.neighbours(pts, i, eps2, nbuf[:0])
		if len(nbuf) < params.MinPts {
			labels[i] = Noise
			continue
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = cluster
		queue = append(queue[:0], nbuf...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			nbuf = grid.neighbours(pts, int(j), eps2, nbuf[:0])
			if len(nbuf) >= params.MinPts {
				queue = append(queue, nbuf...)
			}
		}
		cluster++
	}
	return Result{Labels: labels, K: cluster}, nil
}
