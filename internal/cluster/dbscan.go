package cluster

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/geometry"
)

// DBSCANParams configures DBSCAN. The paper tunes MinPts (Fig 4a, optimum
// 30) and fixes Eps = 3 ("maximum distance in between within cluster
// samples ... the minimum number of points to create a convex hull").
type DBSCANParams struct {
	// Eps is the neighbourhood radius.
	Eps float64
	// MinPts is the minimum neighbourhood size (including the point itself)
	// for a point to be a core point.
	MinPts int
}

// ErrBadParams is returned for non-positive Eps or MinPts.
var ErrBadParams = errors.New("cluster: DBSCAN requires Eps > 0 and MinPts >= 1")

// DBSCAN clusters pts by density reachability. Points in no dense region
// are labelled Noise — the property that keeps DBSCAN hulls tight around
// habitual behaviour and makes the DBSCAN-based ADM harder to evade
// (Section VII-A).
//
// The implementation is the textbook O(n²) region-query algorithm, which is
// ample for ADM training sets (≤ tens of thousands of points) and keeps the
// code auditable.
func DBSCAN(pts []geometry.Point, params DBSCANParams) (Result, error) {
	if params.Eps <= 0 || params.MinPts < 1 {
		return Result{}, ErrBadParams
	}
	n := len(pts)
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	eps2 := params.Eps * params.Eps
	neighbours := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if sqDist(pts[i], pts[j]) <= eps2 {
				out = append(out, j)
			}
		}
		return out
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbours(i)
		if len(nb) < params.MinPts {
			labels[i] = Noise
			continue
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			nbj := neighbours(j)
			if len(nbj) >= params.MinPts {
				queue = append(queue, nbj...)
			}
		}
		cluster++
	}
	return Result{Labels: labels, K: cluster}, nil
}
