package cluster

import (
	"strconv"
	"testing"

	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/rng"
)

// benchPoints synthesises an ADM-shaped training set: a few dense habit
// clusters in the (arrival, stay) plane plus uniform noise, mirroring what
// adm.Train feeds the clusterer.
func benchPoints(n int) []geometry.Point {
	r := rng.New(42)
	centers := []geometry.Point{
		{X: 420, Y: 45}, {X: 760, Y: 120}, {X: 1110, Y: 30}, {X: 1320, Y: 420},
	}
	pts := make([]geometry.Point, 0, n)
	for i := 0; i < n; i++ {
		if i%10 == 9 { // noise
			pts = append(pts, geometry.Point{X: r.Float64() * 1440, Y: r.Float64() * 600})
			continue
		}
		c := centers[i%len(centers)]
		pts = append(pts, geometry.Point{
			X: c.X + (r.Float64()-0.5)*40,
			Y: c.Y + (r.Float64()-0.5)*25,
		})
	}
	return pts
}

func BenchmarkDBSCAN(b *testing.B) {
	for _, n := range []int{200, 1000, 4000} {
		pts := benchPoints(n)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DBSCAN(pts, DBSCANParams{Eps: 20, MinPts: 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
