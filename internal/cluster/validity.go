package cluster

import (
	"math"

	"github.com/acyd-lab/shatter/internal/geometry"
)

// Validity indices (Fig 4). All three ignore Noise-labelled points so they
// are comparable between DBSCAN and K-Means results. Each returns NaN when
// the clustering is degenerate for that index (fewer than 2 clusters, or a
// cluster with fewer than 1 member), mirroring scikit-learn behaviour the
// paper's tuning relies on.

// DaviesBouldin returns the Davies-Bouldin index — the mean over clusters of
// the worst ratio (σi + σj) / d(ci, cj). Lower is better.
func DaviesBouldin(pts []geometry.Point, res Result) float64 {
	cents, scatters, valid := clusterScatter(pts, res)
	if len(valid) < 2 {
		return math.NaN()
	}
	var sum float64
	for _, i := range valid {
		worst := 0.0
		for _, j := range valid {
			if i == j {
				continue
			}
			d := cents[i].Dist(cents[j])
			if d == 0 {
				continue
			}
			if r := (scatters[i] + scatters[j]) / d; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(len(valid))
}

// Silhouette returns the mean silhouette coefficient over all non-noise
// points: (b − a) / max(a, b), with a = mean intra-cluster distance and
// b = smallest mean distance to another cluster. Higher is better; range
// [−1, 1].
func Silhouette(pts []geometry.Point, res Result) float64 {
	// Group member indices by cluster.
	groups := make(map[int][]int)
	for i, l := range res.Labels {
		if l != Noise {
			groups[l] = append(groups[l], i)
		}
	}
	if len(groups) < 2 {
		return math.NaN()
	}
	var total float64
	var count int
	for c, members := range groups {
		for _, i := range members {
			a := meanDistTo(pts, i, members)
			b := math.Inf(1)
			for oc, others := range groups {
				if oc == c {
					continue
				}
				if d := meanDistTo(pts, i, others); d < b {
					b = d
				}
			}
			if len(members) == 1 {
				// Singleton clusters score 0 by convention.
				count++
				continue
			}
			den := math.Max(a, b)
			if den > 0 {
				total += (b - a) / den
			}
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return total / float64(count)
}

// CalinskiHarabasz returns the variance-ratio criterion:
// (between-cluster dispersion / (k−1)) / (within-cluster dispersion / (n−k)).
// Higher is better.
func CalinskiHarabasz(pts []geometry.Point, res Result) float64 {
	groups := make(map[int][]int)
	var all []int
	for i, l := range res.Labels {
		if l != Noise {
			groups[l] = append(groups[l], i)
			all = append(all, i)
		}
	}
	k, n := len(groups), len(all)
	if k < 2 || n <= k {
		return math.NaN()
	}
	overall := meanOf(pts, all)
	var between, within float64
	for _, members := range groups {
		c := meanOf(pts, members)
		dc := c.Dist(overall)
		between += float64(len(members)) * dc * dc
		for _, i := range members {
			d := pts[i].Dist(c)
			within += d * d
		}
	}
	if within == 0 {
		return math.Inf(1)
	}
	return (between / float64(k-1)) / (within / float64(n-k))
}

// clusterScatter returns, per cluster id, the centroid and the mean distance
// of members to the centroid, plus the list of non-empty cluster ids.
func clusterScatter(pts []geometry.Point, res Result) (map[int]geometry.Point, map[int]float64, []int) {
	groups := make(map[int][]int)
	for i, l := range res.Labels {
		if l != Noise {
			groups[l] = append(groups[l], i)
		}
	}
	cents := make(map[int]geometry.Point, len(groups))
	scatters := make(map[int]float64, len(groups))
	valid := make([]int, 0, len(groups))
	for c, members := range groups {
		cent := meanOf(pts, members)
		var s float64
		for _, i := range members {
			s += pts[i].Dist(cent)
		}
		cents[c] = cent
		scatters[c] = s / float64(len(members))
		valid = append(valid, c)
	}
	return cents, scatters, valid
}

func meanOf(pts []geometry.Point, idx []int) geometry.Point {
	var sx, sy float64
	for _, i := range idx {
		sx += pts[i].X
		sy += pts[i].Y
	}
	n := float64(len(idx))
	return geometry.Point{X: sx / n, Y: sy / n}
}

// meanDistTo returns the mean distance from point i to the points in idx,
// excluding i itself.
func meanDistTo(pts []geometry.Point, i int, idx []int) float64 {
	var sum float64
	var count int
	for _, j := range idx {
		if j == i {
			continue
		}
		sum += pts[i].Dist(pts[j])
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
