// Package cluster implements the two clustering algorithms the SHATTER ADM
// is built on — K-Means (Hartigan & Wong, paper reference [22]) and DBSCAN
// (paper reference [21]) — together with the three internal validity indices
// used for hyperparameter tuning in Fig 4: the Davies-Bouldin index, the
// Silhouette coefficient, and the Calinski-Harabasz index.
//
// All algorithms operate on 2-D points because the ADM feature space is
// (arrival time, stay duration); the distance metric is Euclidean.
package cluster

import (
	"errors"
	"math"

	"github.com/acyd-lab/shatter/internal/geometry"
	"github.com/acyd-lab/shatter/internal/rng"
)

// Noise is the cluster label DBSCAN assigns to outlier points. K-Means never
// produces Noise labels (every sample is assigned to a cluster — the exact
// property that makes K-Means hulls larger in Fig 6 and the K-Means ADM
// easier to evade in Table V).
const Noise = -1

// Result holds a clustering: Labels[i] is the cluster index of point i
// (or Noise), and K is the number of clusters found.
type Result struct {
	Labels []int
	K      int
}

// Members returns the points of cluster c.
func (r Result) Members(pts []geometry.Point, c int) []geometry.Point {
	var out []geometry.Point
	for i, l := range r.Labels {
		if l == c {
			out = append(out, pts[i])
		}
	}
	return out
}

// NoiseCount returns the number of points labelled Noise.
func (r Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// ErrBadK is returned when k is out of range for the sample count.
var ErrBadK = errors.New("cluster: k must satisfy 1 <= k <= len(points)")

// KMeans clusters pts into k clusters using k-means++ seeding and Lloyd
// iterations, stopping at convergence or maxIter. The seed makes runs
// reproducible. Empty clusters are re-seeded from the farthest point.
func KMeans(pts []geometry.Point, k int, seed uint64) (Result, error) {
	const maxIter = 200
	n := len(pts)
	if k < 1 || k > n {
		return Result{}, ErrBadK
	}
	r := rng.New(seed)
	centroids := seedPlusPlus(pts, k, r)
	labels := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		// Assignment step.
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, cen := range centroids {
				if d := sqDist(p, cen); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Update step.
		sums := make([]geometry.Point, k)
		counts := make([]int, k)
		for i, p := range pts {
			c := labels[i]
			sums[c].X += p.X
			sums[c].Y += p.Y
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// current centroid assignment.
				centroids[c] = farthestPoint(pts, centroids, labels)
				changed = true
				continue
			}
			centroids[c] = geometry.Point{
				X: sums[c].X / float64(counts[c]),
				Y: sums[c].Y / float64(counts[c]),
			}
		}
		if !changed {
			break
		}
	}
	return Result{Labels: labels, K: k}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy:
// the first uniformly, subsequent ones proportional to squared distance
// from the nearest chosen centroid.
func seedPlusPlus(pts []geometry.Point, k int, r *rng.Source) []geometry.Point {
	n := len(pts)
	centroids := make([]geometry.Point, 0, k)
	centroids = append(centroids, pts[r.Intn(n)])
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range pts {
			d2[i] = math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < d2[i] {
					d2[i] = d
				}
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with centroids; pick uniformly.
			centroids = append(centroids, pts[r.Intn(n)])
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		chosen := n - 1
		for i, d := range d2 {
			acc += d
			if acc >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, pts[chosen])
	}
	return centroids
}

func farthestPoint(pts, centroids []geometry.Point, labels []int) geometry.Point {
	bestD, best := -1.0, pts[0]
	for i, p := range pts {
		d := sqDist(p, centroids[labels[i]])
		if d > bestD {
			bestD, best = d, p
		}
	}
	return best
}

func sqDist(a, b geometry.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}
