package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/acyd-lab/shatter/internal/rng"
)

// FaultClass enumerates the transport fault classes the chaos layer
// injects. Drop, Duplicate, Delay, and Disconnect are recoverable — the
// fleet either absorbs them in the transport (duplicates, delays) or
// retries the home from its last checkpoint (drops, disconnects) and still
// produces byte-identical results. Corrupt and Truncate are recoverable
// only while the retry budget lasts; past it the home is quarantined.
type FaultClass int

const (
	FaultNone FaultClass = iota
	// FaultDrop silently loses a frame; the receiver sees a gap in the
	// (day, slot) sequence and the home retries from its checkpoint.
	FaultDrop
	// FaultDuplicate delivers a frame twice; the pipe's dedup absorbs it.
	FaultDuplicate
	// FaultDelay stalls a frame briefly; ordering is preserved so only
	// latency changes.
	FaultDelay
	// FaultCorrupt mangles the frame's payload: on the direct path the
	// read errors outright, on the bus the frame arrives flagged as
	// failing its integrity check and errors at the receiver.
	FaultCorrupt
	// FaultTruncate cuts the frame's reading vectors short; the frame
	// decodes but fails the home's structural check.
	FaultTruncate
	// FaultDisconnect force-closes the publishing connection mid-stream.
	FaultDisconnect
)

// String names the class for error messages and logs.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("FaultClass(%d)", int(c))
}

// FaultConfig is the seeded chaos schedule for a fleet: per-frame fault
// probabilities applied to every home's transport. The schedule is
// deterministic per (home, attempt) and independent of worker count and
// wall-clock timing, so a chaos run is exactly reproducible from its seed.
type FaultConfig struct {
	// Seed roots every home's fault schedule.
	Seed uint64
	// Per-frame probabilities of each fault class (evaluated in this
	// order from a single uniform draw; their sum should stay <= 1).
	Drop       float64
	Duplicate  float64
	Delay      float64
	Corrupt    float64
	Truncate   float64
	Disconnect float64
	// MaxDelay bounds a delayed frame's stall; 0 defaults to 2ms.
	MaxDelay time.Duration
	// CleanAttempt is the retry attempt index from which a home's
	// transport runs fault-free, guaranteeing a bounded chaos run
	// eventually completes: attempts 0..CleanAttempt-1 are faulty. 0
	// defaults to 2 (two faulty attempts, then clean); negative means
	// every attempt is faulty (quarantine testing).
	CleanAttempt int
}

// ErrInjectedFault tags every failure the chaos layer manufactures, so
// tests and quarantine records can tell injected faults from real bugs.
var ErrInjectedFault = errors.New("stream: injected fault")

// Plan derives the deterministic fault schedule for one home's transport
// attempt, or nil when the attempt runs clean (nil receivers — chaos
// disabled — always run clean).
func (c *FaultConfig) Plan(homeID string, attempt int) *FaultPlan {
	if c == nil {
		return nil
	}
	clean := c.CleanAttempt
	if clean == 0 {
		clean = 2
	}
	if clean > 0 && attempt >= clean {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(homeID))
	seed := c.Seed ^ h.Sum64() ^ (uint64(attempt+1) * 0x9e3779b97f4a7c15)
	return &FaultPlan{cfg: c, rng: rng.New(seed)}
}

// FaultPlan is one transport attempt's seeded fault stream: Roll is
// consulted once per published frame, in stream order, so the fault
// sequence depends only on (config, home, attempt).
type FaultPlan struct {
	cfg *FaultConfig
	rng *rng.Source
}

// Roll draws the fault for the next frame.
func (p *FaultPlan) Roll() FaultClass {
	u := p.rng.Float64()
	cum := 0.0
	for _, t := range [...]struct {
		prob  float64
		class FaultClass
	}{
		{p.cfg.Drop, FaultDrop},
		{p.cfg.Duplicate, FaultDuplicate},
		{p.cfg.Delay, FaultDelay},
		{p.cfg.Corrupt, FaultCorrupt},
		{p.cfg.Truncate, FaultTruncate},
		{p.cfg.Disconnect, FaultDisconnect},
	} {
		cum += t.prob
		if u < cum {
			return t.class
		}
	}
	return FaultNone
}

// DelayFor draws a delayed frame's stall duration.
func (p *FaultPlan) DelayFor() time.Duration {
	max := p.cfg.MaxDelay
	if max <= 0 {
		max = 2 * time.Millisecond
	}
	return time.Duration(p.rng.Float64() * float64(max))
}

// faultSource wraps a Source with the chaos schedule for the direct
// (brokerless) path, manufacturing the same observable failures the MQTT
// transport would: dropped frames surface as sequence gaps, corruption as
// decode errors, disconnects as a dead stream. Duplicates re-deliver the
// previous frame (the direct path has no dedup layer, so the home's
// ordering check trips and the supervisor retries).
type faultSource struct {
	src  Source
	plan *FaultPlan

	dup  bool // re-deliver prev on the next call
	prev Slot
	dead bool
}

// NewFaultSource wraps a source with a chaos schedule on the direct (no
// broker) path — the constructor the fleet service shares with RunFleet's
// internal wiring. A nil plan returns src unchanged.
func NewFaultSource(src Source, plan *FaultPlan) Source {
	if plan == nil {
		return src
	}
	return newFaultSource(src, plan)
}

func newFaultSource(src Source, plan *FaultPlan) *faultSource {
	return &faultSource{src: src, plan: plan}
}

// Next implements Source under the fault schedule.
func (f *faultSource) Next(dst *Slot) error {
	if f.dead {
		return fmt.Errorf("%w: connection force-closed", ErrInjectedFault)
	}
	if f.dup {
		f.dup = false
		copySlot(dst, &f.prev)
		return nil
	}
	for {
		if err := f.src.Next(dst); err != nil {
			return err
		}
		switch f.plan.Roll() {
		case FaultDrop:
			continue // lose the frame: the consumer sees a gap
		case FaultDuplicate:
			copySlot(&f.prev, dst)
			f.dup = true
		case FaultDelay:
			time.Sleep(f.plan.DelayFor())
		case FaultCorrupt:
			return fmt.Errorf("%w: corrupted frame (%d,%d)", ErrInjectedFault, dst.Day, dst.Index)
		case FaultTruncate:
			if len(dst.Reported) > 0 {
				dst.Reported = dst.Reported[:len(dst.Reported)-1]
			} else {
				dst.True = dst.True[:0]
			}
		case FaultDisconnect:
			f.dead = true
			return fmt.Errorf("%w: connection force-closed at frame (%d,%d)", ErrInjectedFault, dst.Day, dst.Index)
		}
		return nil
	}
}

// SeekDay forwards to the wrapped source so a faulty attempt can still
// resume from a checkpoint.
func (f *faultSource) SeekDay(day int) error {
	if s, ok := f.src.(DaySeeker); ok {
		return s.SeekDay(day)
	}
	return fmt.Errorf("stream: wrapped source cannot seek")
}

// copySlot deep-copies a frame into dst, reusing dst's backing storage.
func copySlot(dst, src *Slot) {
	dst.ensure(len(src.True), len(src.TrueAppliance))
	dst.Home, dst.Day, dst.Index = src.Home, src.Day, src.Index
	dst.OutdoorTempF, dst.OutdoorCO2PPM = src.OutdoorTempF, src.OutdoorCO2PPM
	copy(dst.True, src.True)
	copy(dst.TrueAppliance, src.TrueAppliance)
	dst.Reported = dst.Reported[:len(src.Reported)]
	copy(dst.Reported, src.Reported)
	dst.ReportedAppliance = dst.ReportedAppliance[:len(src.ReportedAppliance)]
	copy(dst.ReportedAppliance, src.ReportedAppliance)
}
