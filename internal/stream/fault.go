package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"github.com/acyd-lab/shatter/internal/rng"
)

// FaultClass enumerates the transport fault classes the chaos layer
// injects. Drop, Duplicate, Delay, and Disconnect are recoverable — the
// fleet either absorbs them in the transport (duplicates, delays) or
// retries the home from its last checkpoint (drops, disconnects) and still
// produces byte-identical results. Corrupt and Truncate are recoverable
// only while the retry budget lasts; past it the home is quarantined.
type FaultClass int

const (
	FaultNone FaultClass = iota
	// FaultDrop silently loses a frame; the receiver sees a gap in the
	// (day, slot) sequence — or a short stream, when the tail was lost —
	// and the home retries from its checkpoint.
	FaultDrop
	// FaultDuplicate delivers a frame twice; the pipe's dedup absorbs it.
	FaultDuplicate
	// FaultDelay stalls a frame briefly; ordering is preserved so only
	// latency changes.
	FaultDelay
	// FaultCorrupt mangles the frame's payload: on the direct path the
	// read errors outright, on the bus the frame arrives flagged as
	// failing its integrity check and errors at the receiver.
	FaultCorrupt
	// FaultTruncate cuts the frame's reading vectors short; the frame
	// decodes but fails the home's structural check.
	FaultTruncate
	// FaultDisconnect force-closes the publishing connection mid-stream.
	FaultDisconnect
)

// String names the class for error messages and logs.
func (c FaultClass) String() string {
	switch c {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	case FaultTruncate:
		return "truncate"
	case FaultDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("FaultClass(%d)", int(c))
}

// FaultConfig is the seeded chaos schedule for a fleet: per-frame fault
// probabilities applied to every home's transport. A frame is whatever unit
// the transport moves — a per-slot envelope on the LegacyJSON path, a whole
// binary day-block on the default path — so probabilities are sized to the
// granularity the run uses. The schedule is deterministic per
// (home, attempt) on the slot path and per (home, attempt, day) on the
// block path, and independent of worker count and wall-clock timing, so a
// chaos run is exactly reproducible from its seed.
type FaultConfig struct {
	// Seed roots every home's fault schedule.
	Seed uint64
	// Per-frame probabilities of each fault class (evaluated in this
	// order from a single uniform draw; their sum should stay <= 1).
	Drop       float64
	Duplicate  float64
	Delay      float64
	Corrupt    float64
	Truncate   float64
	Disconnect float64
	// MaxDelay bounds a delayed frame's stall; 0 defaults to 2ms.
	MaxDelay time.Duration
	// CleanAttempt is the retry attempt index from which a home's
	// transport runs fault-free, guaranteeing a bounded chaos run
	// eventually completes: attempts 0..CleanAttempt-1 are faulty. 0
	// defaults to 2 (two faulty attempts, then clean); negative means
	// every attempt is faulty (quarantine testing).
	CleanAttempt int
}

// ErrInjectedFault tags every failure the chaos layer manufactures, so
// tests and quarantine records can tell injected faults from real bugs.
var ErrInjectedFault = errors.New("stream: injected fault")

// Plan derives the deterministic fault schedule for one home's transport
// attempt, or nil when the attempt runs clean (nil receivers — chaos
// disabled — always run clean).
func (c *FaultConfig) Plan(homeID string, attempt int) *FaultPlan {
	if c == nil {
		return nil
	}
	clean := c.CleanAttempt
	if clean == 0 {
		clean = 2
	}
	if clean > 0 && attempt >= clean {
		return nil
	}
	h := fnv.New64a()
	h.Write([]byte(homeID))
	seed := c.Seed ^ h.Sum64() ^ (uint64(attempt+1) * 0x9e3779b97f4a7c15)
	return &FaultPlan{cfg: c, seed: seed, rng: rng.New(seed)}
}

// FaultPlan is one transport attempt's seeded fault stream. Roll is
// consulted once per published slot frame, in stream order, so the per-slot
// sequence depends only on (config, home, attempt). RollDay keys each
// day-block's fault by the absolute day instead, so the block schedule is
// additionally independent of where in the stream an attempt resumed.
type FaultPlan struct {
	cfg  *FaultConfig
	seed uint64
	rng  *rng.Source
}

// classify maps one uniform draw to a fault class by the config's
// cumulative probabilities.
func (p *FaultPlan) classify(u float64) FaultClass {
	cum := 0.0
	for _, t := range [...]struct {
		prob  float64
		class FaultClass
	}{
		{p.cfg.Drop, FaultDrop},
		{p.cfg.Duplicate, FaultDuplicate},
		{p.cfg.Delay, FaultDelay},
		{p.cfg.Corrupt, FaultCorrupt},
		{p.cfg.Truncate, FaultTruncate},
		{p.cfg.Disconnect, FaultDisconnect},
	} {
		cum += t.prob
		if u < cum {
			return t.class
		}
	}
	return FaultNone
}

// delayIn draws a delayed frame's stall from the given stream.
func (p *FaultPlan) delayIn(r *rng.Source) time.Duration {
	max := p.cfg.MaxDelay
	if max <= 0 {
		max = 2 * time.Millisecond
	}
	return time.Duration(r.Float64() * float64(max))
}

// Roll draws the fault for the next slot frame.
func (p *FaultPlan) Roll() FaultClass {
	return p.classify(p.rng.Float64())
}

// DelayFor draws a delayed slot frame's stall duration.
func (p *FaultPlan) DelayFor() time.Duration {
	return p.delayIn(p.rng)
}

// RollDay draws the fault for the day-block frame covering the given
// absolute day, plus the stall duration when the class is FaultDelay. The
// draw is keyed by (home, attempt, day) — not by call order — so a retry
// that seeks past its checkpoint sees exactly the faults an uninterrupted
// attempt would have seen for the remaining days.
func (p *FaultPlan) RollDay(day int) (FaultClass, time.Duration) {
	r := rng.New(p.seed ^ (uint64(day+1) * 0xbf58476d1ce4e5b9))
	class := p.classify(r.Float64())
	var stall time.Duration
	if class == FaultDelay {
		stall = p.delayIn(r)
	}
	return class, stall
}

// faultSource wraps a Source with the chaos schedule for the direct
// (brokerless) path, manufacturing the same observable failures the MQTT
// transport would: dropped frames surface as sequence gaps (or, when the
// tail is lost, as a short-stream error at EOF), corruption as decode
// errors, disconnects as a dead stream. Duplicates re-deliver the previous
// frame (the direct path has no dedup layer, so the home's ordering check
// trips and the supervisor retries).
type faultSource struct {
	src   Source
	plan  *FaultPlan
	clock Clock

	dup  bool // re-deliver prev on the next call
	prev Slot
	dead bool
	gap  bool // a frame was dropped; EOF before it surfaces is a tail loss
}

// NewFaultSource wraps a source with a chaos schedule on the direct (no
// broker) path — the constructor the fleet service shares with RunFleet's
// internal wiring. When src can emit day-blocks the wrapper can too, with
// faults applied per block frame. A nil plan returns src unchanged; a nil
// clock waits on real time.
func NewFaultSource(src Source, plan *FaultPlan, clock Clock) Source {
	if plan == nil {
		return src
	}
	fs := faultSource{src: src, plan: plan, clock: clockOrReal(clock)}
	if _, ok := src.(BlockSource); ok {
		return &blockFaultSource{faultSource: fs}
	}
	return &fs
}

func newFaultSource(src Source, plan *FaultPlan) *faultSource {
	return &faultSource{src: src, plan: plan, clock: RealClock}
}

// Next implements Source under the fault schedule.
func (f *faultSource) Next(dst *Slot) error {
	if f.dead {
		return fmt.Errorf("%w: connection force-closed", ErrInjectedFault)
	}
	if f.dup {
		f.dup = false
		copySlot(dst, &f.prev)
		return nil
	}
	for {
		if err := f.src.Next(dst); err != nil {
			if err == io.EOF && f.gap {
				// The dropped frame was never followed by a delivered one, so
				// no sequence check can catch it — the stream just ends
				// short. Error instead of silently completing with lost data.
				return fmt.Errorf("%w: stream ended after a dropped frame", ErrInjectedFault)
			}
			return err
		}
		switch f.plan.Roll() {
		case FaultDrop:
			f.gap = true
			continue // lose the frame: the consumer sees a gap
		case FaultDuplicate:
			copySlot(&f.prev, dst)
			f.dup = true
		case FaultDelay:
			f.clock.Sleep(f.plan.DelayFor())
		case FaultCorrupt:
			return fmt.Errorf("%w: corrupted frame (%d,%d)", ErrInjectedFault, dst.Day, dst.Index)
		case FaultTruncate:
			if len(dst.Reported) > 0 {
				dst.Reported = dst.Reported[:len(dst.Reported)-1]
			} else {
				dst.True = dst.True[:0]
			}
		case FaultDisconnect:
			f.dead = true
			return fmt.Errorf("%w: connection force-closed at frame (%d,%d)", ErrInjectedFault, dst.Day, dst.Index)
		}
		return nil
	}
}

// SeekDay forwards to the wrapped source so a faulty attempt can still
// resume from a checkpoint.
func (f *faultSource) SeekDay(day int) error {
	if s, ok := f.src.(DaySeeker); ok {
		return s.SeekDay(day)
	}
	return fmt.Errorf("stream: wrapped source cannot seek")
}

// blockFaultSource extends the direct-path chaos wrapper to day-block
// granularity: one RollDay-keyed fault per home-day frame, exercising the
// same recovery machinery a slot fault would — at 1/1440th of the frame
// rate. Only constructed over sources that implement BlockSource.
type blockFaultSource struct {
	faultSource
	bdup  bool // re-deliver bprev on the next call
	bprev DayBlock
}

// NextBlock implements BlockSource under the day-keyed fault schedule.
func (f *blockFaultSource) NextBlock(dst *DayBlock) error {
	if f.dead {
		return fmt.Errorf("%w: connection force-closed", ErrInjectedFault)
	}
	if f.bdup {
		f.bdup = false
		copyBlock(dst, &f.bprev)
		return nil
	}
	bsrc := f.src.(BlockSource)
	for {
		if err := bsrc.NextBlock(dst); err != nil {
			if err == io.EOF && f.gap {
				return fmt.Errorf("%w: stream ended after a dropped day frame", ErrInjectedFault)
			}
			return err
		}
		class, stall := f.plan.RollDay(dst.Day)
		switch class {
		case FaultDrop:
			f.gap = true
			continue // lose the whole day frame
		case FaultDuplicate:
			copyBlock(&f.bprev, dst)
			f.bdup = true
		case FaultDelay:
			f.clock.Sleep(stall)
		case FaultCorrupt:
			return fmt.Errorf("%w: corrupted day frame %d", ErrInjectedFault, dst.Day)
		case FaultTruncate:
			truncateBlock(dst)
		case FaultDisconnect:
			f.dead = true
			return fmt.Errorf("%w: connection force-closed at day frame %d", ErrInjectedFault, dst.Day)
		}
		return nil
	}
}

// copySlot deep-copies a frame into dst, reusing dst's backing storage.
func copySlot(dst, src *Slot) {
	dst.ensure(len(src.True), len(src.TrueAppliance))
	dst.Home, dst.Day, dst.Index = src.Home, src.Day, src.Index
	dst.OutdoorTempF, dst.OutdoorCO2PPM = src.OutdoorTempF, src.OutdoorCO2PPM
	copy(dst.True, src.True)
	copy(dst.TrueAppliance, src.TrueAppliance)
	dst.Reported = dst.Reported[:len(src.Reported)]
	copy(dst.Reported, src.Reported)
	dst.ReportedAppliance = dst.ReportedAppliance[:len(src.ReportedAppliance)]
	copy(dst.ReportedAppliance, src.ReportedAppliance)
}

// copyBlock deep-copies a day-block into dst, reusing dst's backing storage.
func copyBlock(dst, src *DayBlock) {
	dst.ensure(len(src.TrueZone), len(src.TrueAppliance))
	dst.Home, dst.Day = src.Home, src.Day
	copy(dst.TempF, src.TempF)
	copy(dst.CO2PPM, src.CO2PPM)
	for o := range src.TrueZone {
		copy(dst.TrueZone[o], src.TrueZone[o])
		copy(dst.TrueAct[o], src.TrueAct[o])
		copy(dst.RepZone[o], src.RepZone[o])
		copy(dst.RepAct[o], src.RepAct[o])
	}
	for a := range src.TrueAppliance {
		copy(dst.TrueAppliance[a], src.TrueAppliance[a])
		copy(dst.RepAppliance[a], src.RepAppliance[a])
	}
}

// truncateBlock slices one column pair off a day-block. The remaining
// columns stay internally consistent (so the block still encodes on the
// wire), but the home's structural check rejects the short shape — the
// block-granular analogue of a truncated reading vector.
func truncateBlock(b *DayBlock) {
	if n := len(b.TrueAppliance); n > 0 {
		b.TrueAppliance = b.TrueAppliance[:n-1]
		b.RepAppliance = b.RepAppliance[:n-1]
		return
	}
	if n := len(b.TrueZone); n > 0 {
		b.TrueZone = b.TrueZone[:n-1]
		b.TrueAct = b.TrueAct[:n-1]
		b.RepZone = b.RepZone[:n-1]
		b.RepAct = b.RepAct[:n-1]
	}
}
