package stream

import (
	"bytes"
	"errors"
	"io"
	"os"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// attackedWorld builds a defended, attacked fixture: the trace carries a
// SHATTER campaign, and open constructs a fresh (source, home) pair wired
// with the injector, detector, and truth episodizer — the maximal state a
// checkpoint must carry.
func attackedWorld(t *testing.T, name string, days, trainDays int) (open func() (Source, *Home)) {
	t.Helper()
	params := hvac.DefaultParams()
	pricing := hvac.DefaultPricing()
	tr, model := testWorld(t, name, days, trainDays)
	house := tr.House
	cap := attack.Full(house)
	pl := &attack.Planner{
		Trace:     tr,
		Model:     model,
		Cost:      hvac.NewCostModel(house, params, pricing),
		Cap:       cap,
		WindowLen: 10,
	}
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	attack.TriggerAppliances(tr, plan, model, cap)
	return func() (Source, *Home) {
		inj, err := NewInjector(house, plan)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHome(HomeConfig{
			ID:       name,
			House:    house,
			Params:   params,
			Pricing:  pricing,
			Defender: model,
			Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		return NewTraceSource(name, tr), h
	}
}

// ingestDays pulls exactly the first n days through the home.
func ingestDays(t *testing.T, src Source, h *Home, n int) {
	t.Helper()
	var s Slot
	for i := 0; i < n*aras.SlotsPerDay; i++ {
		if err := src.Next(&s); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, err := h.Ingest(&s); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

// roundtrip serializes and re-decodes a checkpoint, returning the decoded
// copy and the serialized bytes.
func roundtrip(t *testing.T, ck *Checkpoint) (*Checkpoint, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return got, buf.Bytes()
}

// TestCheckpointRestoreEquivalence is the resilience layer's core lock: a
// defended, attacked home interrupted at every day boundary, serialized,
// restored into freshly constructed components, and driven to end-of-stream
// must produce a result byte-identical to the uninterrupted run.
func TestCheckpointRestoreEquivalence(t *testing.T) {
	const days, trainDays = 8, 6
	open := attackedWorld(t, "A", days, trainDays)

	src, h := open()
	baseline := drive(t, src, h, nil)
	if baseline.Injected == 0 || baseline.Verdicts == 0 {
		t.Fatalf("fixture too quiet to exercise the ledger: %+v", baseline)
	}

	var firstCutBytes []byte
	for cut := 1; cut < days; cut++ {
		src, h := open()
		ingestDays(t, src, h, cut)
		ck, err := h.Checkpoint()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if ck.Days != cut || ck.Home != "A" {
			t.Fatalf("cut %d: checkpoint cursor %+v", cut, ck)
		}
		decoded, raw := roundtrip(t, ck)
		if cut == 1 {
			firstCutBytes = raw
		}

		src2, h2 := open()
		if err := h2.Restore(decoded); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if err := src2.(DaySeeker).SeekDay(decoded.Days); err != nil {
			t.Fatalf("cut %d: seek: %v", cut, err)
		}
		res := drive(t, src2, h2, nil)
		if !reflect.DeepEqual(res, baseline) {
			t.Fatalf("cut %d: resumed result diverges\nresumed:  %+v\nbaseline: %+v", cut, res, baseline)
		}
	}

	// Checkpoint files must be byte-stable: a second independent run cut at
	// the same boundary serializes identically.
	src3, h3 := open()
	ingestDays(t, src3, h3, 1)
	ck, err := h3.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	_, raw := roundtrip(t, ck)
	if !bytes.Equal(raw, firstCutBytes) {
		t.Fatal("checkpoint bytes differ across identical runs")
	}
}

// TestCheckpointGeneratorSeekEquivalence pins the generator restore path: a
// live-generated (not trace-replayed) defended home resumed from a
// checkpoint matches the uninterrupted run, because SeekDay replays and
// discards the skipped days, evolving the generator RNG identically.
func TestCheckpointGeneratorSeekEquivalence(t *testing.T) {
	const days, trainDays = 4, 2
	_, model := testWorld(t, "B", days, trainDays)
	house := home.MustHouse("B")
	open := func() (Source, *Home) {
		gen, err := aras.NewGenerator(house, aras.GeneratorConfig{Days: days, Seed: 2024})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHome(HomeConfig{
			ID:       "B",
			House:    house,
			Params:   hvac.DefaultParams(),
			Pricing:  hvac.DefaultPricing(),
			Defender: model,
		})
		if err != nil {
			t.Fatal(err)
		}
		return NewGeneratorSource("B", gen), h
	}
	src, h := open()
	baseline := drive(t, src, h, nil)

	const cut = 2
	src1, h1 := open()
	ingestDays(t, src1, h1, cut)
	ck, err := h1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	src2, h2 := open()
	if err := h2.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if err := src2.(DaySeeker).SeekDay(cut); err != nil {
		t.Fatal(err)
	}
	res := drive(t, src2, h2, nil)
	if !reflect.DeepEqual(res, baseline) {
		t.Fatalf("generator resume diverges\nresumed:  %+v\nbaseline: %+v", res, baseline)
	}
}

// TestGeneratorSeekDay pins the seek contract directly: seeking a fresh
// source equals consuming, and backward or mid-day seeks error.
func TestGeneratorSeekDay(t *testing.T) {
	house := home.MustHouse("A")
	mk := func() *GeneratorSource {
		gen, err := aras.NewGenerator(house, aras.GeneratorConfig{Days: 4, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return NewGeneratorSource("A", gen)
	}
	consumed, seeked := mk(), mk()
	var s Slot
	for i := 0; i < 2*aras.SlotsPerDay; i++ {
		if err := consumed.Next(&s); err != nil {
			t.Fatal(err)
		}
	}
	if err := seeked.SeekDay(2); err != nil {
		t.Fatal(err)
	}
	var a, b Slot
	for i := 0; i < 2*aras.SlotsPerDay; i++ {
		if err := consumed.Next(&a); err != nil {
			t.Fatal(err)
		}
		if err := seeked.Next(&b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("frame %d diverges after seek", i)
		}
	}

	// Backward and mid-day seeks are errors.
	back := mk()
	if err := back.SeekDay(2); err != nil {
		t.Fatal(err)
	}
	if err := back.Next(&s); err != nil {
		t.Fatal(err)
	}
	if err := back.SeekDay(1); err == nil {
		t.Fatal("backward seek accepted")
	}
	if err := back.SeekDay(2); err == nil {
		t.Fatal("seek into partially emitted day accepted")
	}
}

// TestCheckpointGuards pins the misuse errors: mid-day checkpoints, restores
// onto a streamed home, and cross-home restores are all rejected.
func TestCheckpointGuards(t *testing.T) {
	open := attackedWorld(t, "B", 2, 1)

	src, h := open()
	var s Slot
	for i := 0; i < 10; i++ {
		if err := src.Next(&s); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Ingest(&s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Checkpoint(); !errors.Is(err, ErrCheckpointMidDay) {
		t.Fatalf("mid-day checkpoint: %v", err)
	}

	src2, h2 := open()
	ingestDays(t, src2, h2, 1)
	ck, err := h2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Restore onto a home that has already streamed.
	if err := h.Restore(ck); err == nil {
		t.Fatal("restore onto a streamed home accepted")
	}
	// Restore onto a home with a different ID.
	other, err := NewHome(HomeConfig{
		ID:      "other",
		House:   home.MustHouse("B"),
		Params:  hvac.DefaultParams(),
		Pricing: hvac.DefaultPricing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(ck); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("cross-home restore: %v", err)
	}
	// Restore onto a home missing the defender/ledger configuration.
	if err := restoreFresh(t, "B", ck); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("config-mismatch restore: %v", err)
	}
}

// restoreFresh applies ck to an undefended home named id.
func restoreFresh(t *testing.T, id string, ck *Checkpoint) error {
	t.Helper()
	h, err := NewHome(HomeConfig{
		ID:      id,
		House:   home.MustHouse(id),
		Params:  hvac.DefaultParams(),
		Pricing: hvac.DefaultPricing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h.Restore(ck)
}

// TestReadCheckpointRejectsCorruption walks the corruption classes the codec
// must reject cleanly: bad magic, truncation, oversized length, bit flips,
// malformed JSON, and version skew — all ErrBadCheckpoint, never a panic.
func TestReadCheckpointRejectsCorruption(t *testing.T) {
	open := attackedWorld(t, "A", 2, 1)
	src, h := open()
	ingestDays(t, src, h, 1)
	ck, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	bad := func(name string, data []byte) {
		t.Helper()
		if _, err := ReadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: err = %v, want ErrBadCheckpoint", name, err)
		}
	}
	bad("empty", nil)
	bad("short header", valid[:10])
	bad("bad magic", append([]byte("NOTMAGIC"), valid[8:]...))
	bad("truncated payload", valid[:len(valid)-5])

	flipped := append([]byte(nil), valid...)
	flipped[20] ^= 0x40
	bad("bit flip", flipped)

	big := append([]byte(nil), valid...)
	big[8], big[9], big[10], big[11] = 0xff, 0xff, 0xff, 0xff
	bad("oversized length", big)

	// Version skew round-trips the writer but fails validation on read.
	skew := *ck
	skew.Version = checkpointVersion + 1
	var vbuf bytes.Buffer
	// The magic byte encodes the version, so hand-craft the mismatch: write
	// with the skewed payload under the current magic.
	if err := WriteCheckpoint(&vbuf, &skew); err != nil {
		t.Fatal(err)
	}
	bad("version skew", vbuf.Bytes())

	// Internally inconsistent cursors are rejected even when the envelope
	// checks out.
	tornCk := *ck
	tornCk.Days++
	var tbuf bytes.Buffer
	if err := WriteCheckpoint(&tbuf, &tornCk); err != nil {
		t.Fatal(err)
	}
	bad("cursor mismatch", tbuf.Bytes())
}

// TestCheckpointFileStore covers the on-disk lifecycle: save/load roundtrip,
// missing-as-nil, corrupt-file error, home-ID mismatch, and removal.
func TestCheckpointFileStore(t *testing.T) {
	dir := t.TempDir()
	open := attackedWorld(t, "B", 2, 1)
	src, h := open()
	ingestDays(t, src, h, 1)
	ck, err := h.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	if got, err := LoadCheckpoint(dir, "B"); err != nil || got != nil {
		t.Fatalf("missing checkpoint: %v, %v", got, err)
	}
	if err := SaveCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(dir, "B")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("loaded checkpoint differs from saved")
	}

	// A file whose contents belong to another home is rejected.
	data, err := os.ReadFile(CheckpointPath(dir, "B"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(dir, "impostor"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir, "impostor"); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("home mismatch: %v", err)
	}

	// Corrupt bytes on disk surface as ErrBadCheckpoint.
	if err := os.WriteFile(CheckpointPath(dir, "B"), data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(dir, "B"); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("corrupt file: %v", err)
	}

	if err := RemoveCheckpoint(dir, "B"); err != nil {
		t.Fatal(err)
	}
	if err := RemoveCheckpoint(dir, "B"); err != nil {
		t.Fatalf("second remove: %v", err)
	}
	if got, err := LoadCheckpoint(dir, "B"); err != nil || got != nil {
		t.Fatalf("after remove: %v, %v", got, err)
	}
}

// FuzzReadCheckpoint hammers the checkpoint decoder with corrupted,
// truncated, and hostile inputs: it must never panic or over-allocate, and
// anything it accepts must re-encode byte-identically (the codec is a
// fixpoint on its own output).
func FuzzReadCheckpoint(f *testing.F) {
	// Seed: a minimal valid checkpoint.
	ck := &Checkpoint{
		Version: checkpointVersion,
		Home:    "fuzz",
		Days:    0,
		Sim:     hvac.SimState{Day: 0},
		Result:  HomeResult{ID: "fuzz"},
	}
	var valid bytes.Buffer
	if err := WriteCheckpoint(&valid, ck); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Seed: truncated header, bad magic, oversized length, garbage payload.
	f.Add(valid.Bytes()[:12])
	f.Add([]byte("NOTMAGIC\x00\x00\x00\x02{}"))
	f.Add([]byte{'S', 'H', 'C', 'K', 'P', 'T', '1', '\n', 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(append(append([]byte{}, valid.Bytes()[:16]...), []byte("xxxxxxxx")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, got); err != nil {
			t.Fatalf("re-encode of accepted checkpoint failed: %v", err)
		}
		again, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteCheckpoint(&buf2, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("checkpoint encoding not stable")
		}
	})
}

// TestWriteCheckpointOversized: payloads past the size cap are refused at
// write time (the read-side cap is covered by the corruption test).
func TestWriteCheckpointOversized(t *testing.T) {
	ck := &Checkpoint{
		Version: checkpointVersion,
		Home:    "big",
		Sim:     hvac.SimState{ZoneCO2: make([]float64, 0)},
	}
	// A verdict ledger large enough to cross maxCheckpoint would be slow to
	// build for real; instead check the guard arithmetic via an oversized
	// length header on the read side and trust json.Marshal's count here.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatalf("small checkpoint rejected: %v", err)
	}
	var w countingWriter
	if err := WriteCheckpoint(&w, ck); err != nil {
		t.Fatal(err)
	}
	if w.n != int64(buf.Len()) {
		t.Fatalf("writer saw %d bytes, buffer %d", w.n, buf.Len())
	}
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)
