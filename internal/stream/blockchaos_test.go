package stream

import (
	"os"
	"testing"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
)

// goldenJobs builds the registry-golden fleet the three-leg equivalence
// tests run: named scenarios with pinned seeds, so the clean baseline is a
// stable fixture rather than a synthetic one.
func goldenJobs(t *testing.T, days int) []Job {
	t.Helper()
	specs := registrySpecs(t, "B", "studio", "family4", "nightshift")
	jobs := make([]Job, len(specs))
	for i, sp := range specs {
		jobs[i] = specJob(sp, days, uint64(900+i))
	}
	return jobs
}

// TestFleetChaosThreeLegEquivalence is the per-class equivalence lock for
// the framing split: for every fault class, a block-framed chaos run, a
// LegacyJSON chaos run, and the clean unsupervised baseline must agree on
// every per-home result and deterministic aggregate — chaos on either
// transport changes nothing but the resilience counters, and the two
// framings never drift apart. CHAOS_CLASS narrows the sweep to one class
// (the CI matrix drives it).
func TestFleetChaosThreeLegEquivalence(t *testing.T) {
	const days = 2
	jobs := goldenJobs(t, days)
	clean, err := RunFleet(jobs, FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	only := os.Getenv("CHAOS_CLASS")
	legacy := chaosClasses()
	for name, blockCfg := range blockChaosClasses() {
		if only != "" && only != name {
			continue
		}
		blockCfg, legacyCfg := blockCfg, legacy[name]
		t.Run(name, func(t *testing.T) {
			run := func(cfg FaultConfig, legacyJSON bool) FleetResult {
				t.Helper()
				got, err := RunFleet(jobs, FleetOptions{
					Workers: 2, Recover: true, Chaos: &cfg, LegacyJSON: legacyJSON,
					CheckpointDir: t.TempDir(),
					RetryBackoff:  mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Stats.Quarantined != 0 {
					t.Fatalf("recoverable chaos quarantined %d homes: %+v", got.Stats.Quarantined, got.Outcomes)
				}
				return got
			}
			block := run(blockCfg, false)
			legacyGot := run(legacyCfg, true)
			// Leg 1 ≡ leg 3 and leg 2 ≡ leg 3 (so leg 1 ≡ leg 2).
			checkSameHomes(t, block, clean)
			checkSameHomes(t, legacyGot, clean)
			if name != "delay" {
				if block.Stats.Retries == 0 {
					t.Fatalf("%s: block leg caused no retries", name)
				}
				if legacyGot.Stats.Retries == 0 {
					t.Fatalf("%s: legacy leg caused no retries", name)
				}
			}
		})
	}
}

// TestFleetChaosThreeLegEquivalenceMQTT repeats the three-leg lock over a
// real broker for the mixed class: block framing, legacy framing, and the
// clean baseline must coincide when every fault classes is in play at once
// on the wire.
func TestFleetChaosThreeLegEquivalenceMQTT(t *testing.T) {
	const days = 2
	jobs := goldenJobs(t, days)
	clean, err := RunFleet(jobs, FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg FaultConfig, legacyJSON bool) FleetResult {
		t.Helper()
		broker, err := mqtt.NewBroker("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer broker.Close()
		got, err := RunFleet(jobs, FleetOptions{
			Workers: 2, Broker: broker.Addr(), Recover: true, Chaos: &cfg, LegacyJSON: legacyJSON,
			CheckpointDir:  t.TempDir(),
			RetryBackoff:   mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
			ReceiveTimeout: 2 * time.Second,
			DrainTimeout:   2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Stats.Quarantined != 0 {
			t.Fatalf("recoverable chaos quarantined %d homes: %+v", got.Stats.Quarantined, got.Outcomes)
		}
		return got
	}
	block := run(blockChaosClasses()["mixed"], false)
	legacyGot := run(chaosClasses()["mixed"], true)
	checkSameHomes(t, block, clean)
	checkSameHomes(t, legacyGot, clean)
	if block.Stats.Retries == 0 || legacyGot.Stats.Retries == 0 {
		t.Fatalf("mixed mqtt chaos too tame: block %d retries, legacy %d", block.Stats.Retries, legacyGot.Stats.Retries)
	}
}

// TestFleetChaosVirtualClock: under a VirtualClock, a mixed-chaos fleet is
// byte-identical across worker counts and identical to the same run under
// real time — retries, restores, outcomes and all — while the clock records
// the virtual waits the run skipped. This is what makes chaos benchmarks
// compute-bound.
func TestFleetChaosVirtualClock(t *testing.T) {
	jobs := chaosJobs(4, 2)
	cfg := blockChaosClasses()["mixed"]
	// Real backoff sizes so skipping them is observable in virtual time.
	backoff := mqtt.Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond}
	run := func(workers int, clock Clock) FleetResult {
		t.Helper()
		got, err := RunFleet(jobs, FleetOptions{
			Workers: workers, Recover: true, Chaos: &cfg, Clock: clock,
			CheckpointDir: t.TempDir(),
			RetryBackoff:  backoff,
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	vc1, vc8 := NewVirtualClock(), NewVirtualClock()
	seq := run(1, vc1)
	par := run(8, vc8)
	real := run(2, nil)
	sameOutcomes := func(a, b FleetResult, label string) {
		t.Helper()
		checkDeterministic(t, a, b)
		for i := range a.Outcomes {
			x, y := a.Outcomes[i], b.Outcomes[i]
			x.Duration, y.Duration = 0, 0
			if x != y {
				t.Fatalf("%s: outcome %d diverges:\n%+v\nvs\n%+v", label, i, x, y)
			}
		}
	}
	sameOutcomes(seq, par, "virtual workers 1 vs 8")
	sameOutcomes(seq, real, "virtual vs real clock")
	if seq.Stats.Retries == 0 {
		t.Fatalf("fixture too tame: %+v", seq.Stats)
	}
	if vc1.Advanced() == 0 || vc8.Advanced() == 0 {
		t.Fatalf("virtual clocks recorded no waits: %s, %s", vc1.Advanced(), vc8.Advanced())
	}
	// Virtual waits are schedule-determined, so both worker counts skipped
	// the same amount of virtual time.
	if vc1.Advanced() != vc8.Advanced() {
		t.Fatalf("virtual waits diverge across worker counts: %s vs %s", vc1.Advanced(), vc8.Advanced())
	}
}
