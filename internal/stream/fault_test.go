package stream

import (
	"errors"
	"io"
	"testing"
	"time"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// traceSrc builds a small deterministic source for fault-layer tests.
func traceSrc(t *testing.T, days int) *TraceSource {
	t.Helper()
	house := home.MustHouse("A")
	tr, err := aras.Generate(house, aras.GeneratorConfig{Days: days, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return NewTraceSource("A", tr)
}

// TestFaultPlanDeterminism: the fault schedule is a pure function of
// (config, home, attempt) — two plans for the same coordinates roll the
// same sequence, and different homes or attempts diverge.
func TestFaultPlanDeterminism(t *testing.T) {
	cfg := &FaultConfig{Seed: 42, Drop: 0.1, Duplicate: 0.1, Delay: 0.1, Corrupt: 0.1}
	roll := func(home string, attempt, n int) []FaultClass {
		p := cfg.Plan(home, attempt)
		if p == nil {
			t.Fatalf("plan (%s,%d) unexpectedly clean", home, attempt)
		}
		out := make([]FaultClass, n)
		for i := range out {
			out[i] = p.Roll()
		}
		return out
	}
	a := roll("h1", 0, 500)
	b := roll("h1", 0, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d diverges for identical coordinates", i)
		}
	}
	diff := func(x, y []FaultClass) bool {
		for i := range x {
			if x[i] != y[i] {
				return true
			}
		}
		return false
	}
	if !diff(a, roll("h2", 0, 500)) {
		t.Fatal("different homes share a schedule")
	}
	if !diff(a, roll("h1", 1, 500)) {
		t.Fatal("different attempts share a schedule")
	}
}

// TestFaultPlanCleanAttempt pins the retry-escape hatch: attempts past
// CleanAttempt run fault-free, the default is two faulty attempts, and a
// negative value keeps every attempt faulty.
func TestFaultPlanCleanAttempt(t *testing.T) {
	cfg := &FaultConfig{Seed: 1, Drop: 1}
	if cfg.Plan("h", 0) == nil || cfg.Plan("h", 1) == nil {
		t.Fatal("default faulty attempts missing")
	}
	if cfg.Plan("h", 2) != nil {
		t.Fatal("default clean attempt still faulty")
	}
	cfg.CleanAttempt = 1
	if cfg.Plan("h", 0) == nil || cfg.Plan("h", 1) != nil {
		t.Fatal("CleanAttempt=1 schedule wrong")
	}
	cfg.CleanAttempt = -1
	if cfg.Plan("h", 10) == nil {
		t.Fatal("negative CleanAttempt produced a clean attempt")
	}
	var nilCfg *FaultConfig
	if nilCfg.Plan("h", 0) != nil {
		t.Fatal("nil config produced a plan")
	}
}

// plan1 returns a plan whose every roll is the given class.
func plan1(t *testing.T, set func(*FaultConfig)) *FaultPlan {
	t.Helper()
	cfg := &FaultConfig{Seed: 3, CleanAttempt: -1, MaxDelay: 100 * time.Microsecond}
	set(cfg)
	p := cfg.Plan("h", 0)
	if p == nil {
		t.Fatal("nil plan")
	}
	return p
}

// TestFaultSourceClasses drives each fault class through the direct-path
// wrapper and checks the manufactured failure mode.
func TestFaultSourceClasses(t *testing.T) {
	t.Run("drop", func(t *testing.T) {
		// Dropping every frame consumes the stream to its end — but losing
		// the tail must never complete the home silently short, so EOF after
		// an unsurfaced drop is an injected-fault error.
		fs := newFaultSource(traceSrc(t, 1), plan1(t, func(c *FaultConfig) { c.Drop = 1 }))
		var s Slot
		if err := fs.Next(&s); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("err = %v, want injected fault (tail dropped)", err)
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		fs := newFaultSource(traceSrc(t, 1), plan1(t, func(c *FaultConfig) { c.Duplicate = 1 }))
		var a, b, c Slot
		if err := fs.Next(&a); err != nil {
			t.Fatal(err)
		}
		if err := fs.Next(&b); err != nil {
			t.Fatal(err)
		}
		if err := fs.Next(&c); err != nil {
			t.Fatal(err)
		}
		if a.Index != 0 || b.Index != 0 || c.Index != 1 {
			t.Fatalf("positions %d,%d,%d, want 0,0,1", a.Index, b.Index, c.Index)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		fs := newFaultSource(traceSrc(t, 1), plan1(t, func(c *FaultConfig) { c.Corrupt = 1 }))
		var s Slot
		if err := fs.Next(&s); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("err = %v, want injected fault", err)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		fs := newFaultSource(traceSrc(t, 1), plan1(t, func(c *FaultConfig) { c.Truncate = 1 }))
		var s Slot
		if err := fs.Next(&s); err != nil {
			t.Fatal(err)
		}
		occ := len(home.MustHouse("A").Occupants)
		if len(s.Reported) != occ-1 {
			t.Fatalf("reported vector %d long, want %d", len(s.Reported), occ-1)
		}
	})
	t.Run("disconnect", func(t *testing.T) {
		fs := newFaultSource(traceSrc(t, 1), plan1(t, func(c *FaultConfig) { c.Disconnect = 1 }))
		var s Slot
		if err := fs.Next(&s); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("err = %v, want injected fault", err)
		}
		// The connection stays dead.
		if err := fs.Next(&s); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("second read: %v, want injected fault", err)
		}
	})
	t.Run("delay", func(t *testing.T) {
		// Delays perturb latency only; the frame arrives intact and a home
		// fed through a delay-only source finishes normally.
		fs := newFaultSource(traceSrc(t, 1), plan1(t, func(c *FaultConfig) { c.Delay = 0.01 }))
		var s Slot
		n := 0
		for {
			if err := fs.Next(&s); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			n++
		}
		if n != aras.SlotsPerDay {
			t.Fatalf("delivered %d frames, want %d", n, aras.SlotsPerDay)
		}
	})
}

// TestFaultPlanRollDayKeying: the block schedule is keyed by
// (home, attempt, day), not by call order — querying days in any order, or
// only a suffix (a resumed attempt), yields the same classes — while
// different homes, attempts, and days still diverge.
func TestFaultPlanRollDayKeying(t *testing.T) {
	cfg := &FaultConfig{Seed: 99, Drop: 0.15, Duplicate: 0.15, Delay: 0.15,
		Corrupt: 0.15, Truncate: 0.15, Disconnect: 0.1, MaxDelay: time.Millisecond}
	const days = 64
	rollAll := func(home string, attempt int, order []int) map[int]FaultClass {
		p := cfg.Plan(home, attempt)
		if p == nil {
			t.Fatalf("plan (%s,%d) unexpectedly clean", home, attempt)
		}
		out := make(map[int]FaultClass, len(order))
		for _, d := range order {
			c, stall := p.RollDay(d)
			if (c == FaultDelay) != (stall > 0) {
				t.Fatalf("day %d: class %v with stall %v", d, c, stall)
			}
			out[d] = c
		}
		return out
	}
	fwd := make([]int, days)
	rev := make([]int, days)
	for i := range fwd {
		fwd[i], rev[i] = i, days-1-i
	}
	a, b := rollAll("h1", 0, fwd), rollAll("h1", 0, rev)
	for d := 0; d < days; d++ {
		if a[d] != b[d] {
			t.Fatalf("day %d class depends on query order: %v vs %v", d, a[d], b[d])
		}
	}
	// A resumed attempt that only queries the tail sees the same suffix.
	tail := rollAll("h1", 0, fwd[days/2:])
	for d := days / 2; d < days; d++ {
		if a[d] != tail[d] {
			t.Fatalf("day %d class depends on resume point", d)
		}
	}
	diff := func(x, y map[int]FaultClass) bool {
		for d := 0; d < days; d++ {
			if x[d] != y[d] {
				return true
			}
		}
		return false
	}
	if !diff(a, rollAll("h2", 0, fwd)) {
		t.Fatal("different homes share a block schedule")
	}
	if !diff(a, rollAll("h1", 1, fwd)) {
		t.Fatal("different attempts share a block schedule")
	}
	varies := false
	for d := 1; d < days; d++ {
		if a[d] != a[0] {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("every day rolled the same class — day keying inert?")
	}
}

// TestFaultSourceSeekDay: the wrapper forwards seeks so faulty retry
// attempts can still resume from a checkpoint.
func TestFaultSourceSeekDay(t *testing.T) {
	fs := newFaultSource(traceSrc(t, 3), plan1(t, func(c *FaultConfig) { c.Delay = 0.001 }))
	if err := fs.SeekDay(2); err != nil {
		t.Fatal(err)
	}
	var s Slot
	if err := fs.Next(&s); err != nil {
		t.Fatal(err)
	}
	if s.Day != 2 || s.Index != 0 {
		t.Fatalf("post-seek frame at (%d,%d), want (2,0)", s.Day, s.Index)
	}
}
