package stream

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
)

// Injector applies a precomputed attack.Plan to a home's slot stream in
// flight — the streaming counterpart of attack.View. Planning stays offline
// (the optimiser needs its horizon), but execution is live: each frame's
// reported occupancy is replaced by the plan's falsified readings, really
// triggered appliances are switched on in the truth (they draw power), and
// forged δ^D appliance statuses consistent with the reported activities are
// injected into the believed statuses. Frames beyond the plan's horizon
// pass through truthfully.
type Injector struct {
	house *home.House
	plan  *attack.Plan
}

// ErrNilInjector guards construction.
var ErrNilInjector = errors.New("stream: nil house or plan")

// NewInjector builds the live injector for a home's plan.
func NewInjector(h *home.House, plan *attack.Plan) (*Injector, error) {
	if h == nil || plan == nil {
		return nil, ErrNilInjector
	}
	return &Injector{house: h, plan: plan}, nil
}

// Rewrite falsifies one frame in place. The rewrite reproduces
// attack.View's semantics exactly: Reported matches View.Occupants,
// ReportedAppliance matches View.ApplianceOn, and TrueAppliance matches
// View.ActualApplianceOn, so a rewritten stream drives the plant to the
// same state as the batch attacked simulation.
func (inj *Injector) Rewrite(s *Slot) {
	d, t := s.Day, s.Index
	if d < 0 || d >= len(inj.plan.RepZone) {
		return // beyond the campaign horizon: truth-telling
	}
	for o := range s.Reported {
		s.Reported[o] = OccupantReading{
			Zone:     inj.plan.RepZone[d][o][t],
			Activity: inj.plan.RepAct[d][o][t],
		}
	}
	// Really-triggered appliances are actually on: they draw power and
	// their status sensors read "on" honestly.
	for a := range s.TrueAppliance {
		if inj.plan.Triggered[d][a][t] {
			s.TrueAppliance[a] = true
		}
	}
	// Believed statuses: the true electrical state plus forged statuses
	// consistent with the falsified presences (the activity-appliance
	// relationship makes the story self-consistent).
	for a := range s.ReportedAppliance {
		s.ReportedAppliance[a] = s.TrueAppliance[a] || inj.forged(s, a)
	}
}

// forged reports whether appliance a's status reads "on" only because a
// falsified occupant's reported activity habitually uses it in its zone.
func (inj *Injector) forged(s *Slot, a int) bool {
	appl := inj.house.Appliances[a]
	for o := range s.Reported {
		z := s.Reported[o].Zone
		if z != appl.Zone || z == s.True[o].Zone {
			continue // only falsified presences carry forged statuses
		}
		for _, ai := range inj.house.AppliancesForActivity(s.Reported[o].Activity) {
			if ai == a {
				return true
			}
		}
	}
	return false
}
