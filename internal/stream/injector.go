package stream

import (
	"errors"

	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
)

// Injector applies a precomputed attack.Plan to a home's slot stream in
// flight — the streaming counterpart of attack.View. Planning stays offline
// (the optimiser needs its horizon), but execution is live: each frame's
// reported occupancy is replaced by the plan's falsified readings, really
// triggered appliances are switched on in the truth (they draw power), and
// forged δ^D appliance statuses consistent with the reported activities are
// injected into the believed statuses. Frames beyond the plan's horizon
// pass through truthfully.
type Injector struct {
	house *home.House
	plan  *attack.Plan
	// forged is RewriteBlock's per-appliance forged-status scratch.
	forgedCol [][]bool
}

// ErrNilInjector guards construction.
var ErrNilInjector = errors.New("stream: nil house or plan")

// NewInjector builds the live injector for a home's plan.
func NewInjector(h *home.House, plan *attack.Plan) (*Injector, error) {
	if h == nil || plan == nil {
		return nil, ErrNilInjector
	}
	return &Injector{house: h, plan: plan}, nil
}

// Rewrite falsifies one frame in place. The rewrite reproduces
// attack.View's semantics exactly: Reported matches View.Occupants,
// ReportedAppliance matches View.ApplianceOn, and TrueAppliance matches
// View.ActualApplianceOn, so a rewritten stream drives the plant to the
// same state as the batch attacked simulation.
func (inj *Injector) Rewrite(s *Slot) {
	d, t := s.Day, s.Index
	if d < 0 || d >= len(inj.plan.RepZone) {
		return // beyond the campaign horizon: truth-telling
	}
	for o := range s.Reported {
		s.Reported[o] = OccupantReading{
			Zone:     inj.plan.RepZone[d][o][t],
			Activity: inj.plan.RepAct[d][o][t],
		}
	}
	// Really-triggered appliances are actually on: they draw power and
	// their status sensors read "on" honestly.
	for a := range s.TrueAppliance {
		if inj.plan.Triggered[d][a][t] {
			s.TrueAppliance[a] = true
		}
	}
	// Believed statuses: the true electrical state plus forged statuses
	// consistent with the falsified presences (the activity-appliance
	// relationship makes the story self-consistent).
	for a := range s.ReportedAppliance {
		s.ReportedAppliance[a] = s.TrueAppliance[a] || inj.forged(s, a)
	}
}

// RewriteBlock falsifies one whole day-block in place — the column-wise
// counterpart of Rewrite, producing bit-identical reported and true columns:
// occupancy columns come straight from the plan, triggered appliances are
// OR-ed into the truth, and forged δ^D statuses are derived occupant-major
// (appliance a reads "on" at slot t iff some falsified presence's reported
// activity uses it in its zone — the same predicate forged evaluates
// appliance-major). Blocks beyond the plan's horizon pass through
// truthfully.
func (inj *Injector) RewriteBlock(b *DayBlock) {
	d := b.Day
	if d < 0 || d >= len(inj.plan.RepZone) {
		return // beyond the campaign horizon: truth-telling
	}
	for o := range b.RepZone {
		copy(b.RepZone[o], inj.plan.RepZone[d][o])
		copy(b.RepAct[o], inj.plan.RepAct[d][o])
	}
	for a := range b.TrueAppliance {
		trig, col := inj.plan.Triggered[d][a], b.TrueAppliance[a]
		for t := range col {
			if trig[t] {
				col[t] = true
			}
		}
	}
	if len(inj.forgedCol) != len(b.RepAppliance) {
		inj.forgedCol = make([][]bool, len(b.RepAppliance))
		for a := range inj.forgedCol {
			inj.forgedCol[a] = make([]bool, len(b.RepAppliance[a]))
		}
	}
	for a := range inj.forgedCol {
		col := inj.forgedCol[a]
		for t := range col {
			col[t] = false
		}
	}
	for o := range b.RepZone {
		zones, acts, truth := b.RepZone[o], b.RepAct[o], b.TrueZone[o]
		for t := range zones {
			z := zones[t]
			if z == truth[t] {
				continue // only falsified presences carry forged statuses
			}
			for _, ai := range inj.house.AppliancesForActivity(acts[t]) {
				if inj.house.Appliances[ai].Zone == z {
					inj.forgedCol[ai][t] = true
				}
			}
		}
	}
	for a := range b.RepAppliance {
		rep, truth, forged := b.RepAppliance[a], b.TrueAppliance[a], inj.forgedCol[a]
		for t := range rep {
			rep[t] = truth[t] || forged[t]
		}
	}
}

// forged reports whether appliance a's status reads "on" only because a
// falsified occupant's reported activity habitually uses it in its zone.
func (inj *Injector) forged(s *Slot, a int) bool {
	appl := inj.house.Appliances[a]
	for o := range s.Reported {
		z := s.Reported[o].Zone
		if z != appl.Zone || z == s.True[o].Zone {
			continue // only falsified presences carry forged statuses
		}
		for _, ai := range inj.house.AppliancesForActivity(s.Reported[o].Activity) {
			if ai == a {
				return true
			}
		}
	}
	return false
}
