package stream

import (
	"fmt"
	"io"

	"github.com/acyd-lab/shatter/internal/aras"
)

// Source produces a home's slot frames in order: day-major, then minute
// 0..aras.SlotsPerDay-1. Next fills dst (reusing its backing storage where
// possible) and returns io.EOF at end of stream. Sources are not safe for
// concurrent use.
type Source interface {
	Next(dst *Slot) error
}

// GeneratorSource adapts the incremental aras.Generator to the event model:
// days are planned lazily one at a time and emitted slot-by-slot, so a home
// streams forever (unbounded generator) without ever materializing a
// multi-day trace. The reported view mirrors the truth — attacks enter the
// stream through an Injector, not the source.
type GeneratorSource struct {
	id   string
	gen  *aras.Generator
	day  aras.Day
	wth  aras.Weather
	d    int // index of the buffered day
	slot int // next slot to emit; SlotsPerDay forces a day fetch
}

// NewGeneratorSource streams the generator's days as slot frames tagged
// with the home ID.
func NewGeneratorSource(id string, g *aras.Generator) *GeneratorSource {
	return &GeneratorSource{id: id, gen: g, slot: aras.SlotsPerDay, d: -1}
}

// Next implements Source.
func (s *GeneratorSource) Next(dst *Slot) error {
	if s.slot == aras.SlotsPerDay {
		d := s.gen.DayIndex()
		day, wth, err := s.gen.NextDay()
		if err != nil {
			return err
		}
		s.day, s.wth, s.d, s.slot = day, wth, d, 0
	}
	fillSlot(dst, s.id, s.d, s.slot, s.day, s.wth)
	s.slot++
	return nil
}

// NextBlock implements BlockSource: the generator plans the next day
// directly into the block's ground-truth columns (no intermediate aras.Day
// allocation) and mirrors them into the reported view. Interleaving with a
// partially consumed per-slot day is an error — blocks only coarsen whole
// days.
func (s *GeneratorSource) NextBlock(dst *DayBlock) error {
	if s.slot != aras.SlotsPerDay {
		return fmt.Errorf("stream: source for %s mid-day (slot %d); cannot emit a day block", s.id, s.slot)
	}
	d := s.gen.DayIndex()
	dst.ensure(len(s.gen.House().Occupants), len(s.gen.House().Appliances))
	day := aras.Day{Zone: dst.TrueZone, Act: dst.TrueAct, Appliance: dst.TrueAppliance}
	wth := aras.Weather{TempF: dst.TempF, CO2PPM: dst.CO2PPM}
	if err := s.gen.NextDayInto(&day, &wth); err != nil {
		return err
	}
	dst.Home = s.id
	dst.Day = d
	dst.mirrorTruth()
	return nil
}

// SeekDay implements DaySeeker: it fast-forwards the stream to the start
// of the given day by planning and discarding the skipped days, which
// evolves the generator's RNG streams exactly as emitting them would — the
// resumed stream is byte-identical to the uninterrupted one. Seeking
// backward or into a partially emitted day is an error.
func (s *GeneratorSource) SeekDay(day int) error {
	cur := s.d
	if s.slot == aras.SlotsPerDay {
		cur = s.gen.DayIndex()
	}
	if day == cur && s.slot == 0 {
		return nil // already positioned on the buffered day's first slot
	}
	if day < cur || (day == cur && s.slot != aras.SlotsPerDay) {
		return fmt.Errorf("stream: source for %s cannot seek back to day %d (at day %d slot %d)", s.id, day, cur, s.slot%aras.SlotsPerDay)
	}
	for s.gen.DayIndex() < day {
		if _, _, err := s.gen.NextDay(); err != nil {
			return fmt.Errorf("stream: source for %s seeking day %d: %w", s.id, day, err)
		}
	}
	s.slot, s.d = aras.SlotsPerDay, -1
	return nil
}

// TraceSource replays a materialized trace as slot frames — the bridge that
// lets recorded (or batch-generated) data drive the streaming runtime, and
// the replay path the equivalence tests pin against the batch pipeline.
type TraceSource struct {
	id    string
	trace *aras.Trace
	d     int
	slot  int
}

// NewTraceSource streams the trace's days as slot frames tagged with the
// home ID.
func NewTraceSource(id string, tr *aras.Trace) *TraceSource {
	return &TraceSource{id: id, trace: tr}
}

// Next implements Source.
func (s *TraceSource) Next(dst *Slot) error {
	if s.d >= s.trace.NumDays() {
		return io.EOF
	}
	fillSlot(dst, s.id, s.d, s.slot, s.trace.Days[s.d], s.trace.Weather[s.d])
	s.slot++
	if s.slot == aras.SlotsPerDay {
		s.slot = 0
		s.d++
	}
	return nil
}

// NextBlock implements BlockSource: the trace day is copied column-wise into
// the block (a copy, not an alias — injectors rewrite blocks in place and
// must not corrupt the source trace). Mid-day cursors refuse to coarsen.
func (s *TraceSource) NextBlock(dst *DayBlock) error {
	if s.slot != 0 {
		return fmt.Errorf("stream: source for %s mid-day (slot %d); cannot emit a day block", s.id, s.slot)
	}
	if s.d >= s.trace.NumDays() {
		return io.EOF
	}
	day, wth := s.trace.Days[s.d], s.trace.Weather[s.d]
	dst.ensure(len(day.Zone), len(day.Appliance))
	copy(dst.TempF, wth.TempF)
	copy(dst.CO2PPM, wth.CO2PPM)
	for o := range day.Zone {
		copy(dst.TrueZone[o], day.Zone[o])
		copy(dst.TrueAct[o], day.Act[o])
	}
	for a := range day.Appliance {
		copy(dst.TrueAppliance[a], day.Appliance[a])
	}
	dst.Home = s.id
	dst.Day = s.d
	dst.mirrorTruth()
	s.d++
	return nil
}

// SeekDay implements DaySeeker: trace cursors jump in O(1). Seeking past
// the trace positions the source at end-of-stream.
func (s *TraceSource) SeekDay(day int) error {
	if day < 0 {
		return fmt.Errorf("stream: source for %s cannot seek to day %d", s.id, day)
	}
	s.d, s.slot = day, 0
	return nil
}

// fillSlot populates one frame from a day of ground truth.
func fillSlot(dst *Slot, id string, d, slot int, day aras.Day, wth aras.Weather) {
	dst.ensure(len(day.Zone), len(day.Appliance))
	dst.Home = id
	dst.Day = d
	dst.Index = slot
	dst.OutdoorTempF = wth.TempF[slot]
	dst.OutdoorCO2PPM = wth.CO2PPM[slot]
	for o := range day.Zone {
		dst.True[o] = OccupantReading{Zone: day.Zone[o][slot], Activity: day.Act[o][slot]}
	}
	for a := range day.Appliance {
		dst.TrueAppliance[a] = day.Appliance[a][slot]
	}
	dst.mirrorTruth()
}
