package stream

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// codecBlocks materializes every day-block of a generated world — realistic
// column content (weather floats, zone/activity IDs, appliance bitsets) for
// the round-trip cases.
func codecBlocks(t *testing.T, house string, days int) []*DayBlock {
	t.Helper()
	h := home.MustHouse(house)
	gen, err := aras.NewGenerator(h, aras.GeneratorConfig{Days: days, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	src := NewGeneratorSource(house, gen)
	var blocks []*DayBlock
	for {
		blk := new(DayBlock)
		if err := src.NextBlock(blk); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
	}
	if len(blocks) != days {
		t.Fatalf("generated %d blocks, want %d", len(blocks), days)
	}
	return blocks
}

// TestBlockFrameRoundTrip pins encode → decode as the identity on realistic
// blocks from both paper houses, including decoder storage reuse across
// differently shaped homes.
func TestBlockFrameRoundTrip(t *testing.T) {
	var dst DayBlock // reused across every decode, shapes A and B interleaved
	var buf []byte
	for _, house := range []string{"A", "B"} {
		for _, blk := range codecBlocks(t, house, 3) {
			var err error
			buf, err = AppendBlockFrame(buf[:0], blk, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !IsBlockFrame(buf) {
				t.Fatal("encoded frame not classified as block frame")
			}
			epoch, err := DecodeBlockFrame(&dst, buf)
			if err != nil {
				t.Fatal(err)
			}
			if epoch != 7 {
				t.Fatalf("epoch %d, want 7", epoch)
			}
			if !reflect.DeepEqual(&dst, blk) {
				t.Fatalf("house %s day %d: decoded block differs from original", house, blk.Day)
			}
		}
	}
}

// TestBlockFrameCorruption walks every single-byte corruption and every
// truncation length of a valid frame through the decoder: each must error
// (never panic, never decode silently wrong data). Flipping any payload or
// header byte breaks magic, length, or CRC; the frame has no slack bytes.
func TestBlockFrameCorruption(t *testing.T) {
	blk := codecBlocks(t, "A", 1)[0]
	frame, err := AppendBlockFrame(nil, blk, 3)
	if err != nil {
		t.Fatal(err)
	}
	var dst DayBlock
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, err := DecodeBlockFrame(&dst, mut); !errors.Is(err, ErrBadBlockFrame) {
			t.Fatalf("flip at byte %d: got %v, want ErrBadBlockFrame", i, err)
		}
	}
	for n := 0; n < len(frame); n++ {
		if _, err := DecodeBlockFrame(&dst, frame[:n]); !errors.Is(err, ErrBadBlockFrame) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrBadBlockFrame", n, err)
		}
	}
	// Trailing garbage after a valid frame must also be rejected.
	if _, err := DecodeBlockFrame(&dst, append(append([]byte(nil), frame...), 0)); !errors.Is(err, ErrBadBlockFrame) {
		t.Fatalf("trailing byte: got %v, want ErrBadBlockFrame", err)
	}
}

// TestBlockFrameEncodeRejects pins the encoder's own validation: malformed
// shapes and out-of-range fields must refuse to produce a frame.
func TestBlockFrameEncodeRejects(t *testing.T) {
	blk := codecBlocks(t, "A", 1)[0]
	if _, err := AppendBlockFrame(nil, blk, -1); err == nil {
		t.Error("negative epoch accepted")
	}
	blk.Day = -1
	if _, err := AppendBlockFrame(nil, blk, 0); err == nil {
		t.Error("negative day accepted")
	}
	blk.Day = 0
	blk.TrueZone[0][5] = 1 << 20
	if _, err := AppendBlockFrame(nil, blk, 0); err == nil {
		t.Error("zone ID beyond int16 accepted")
	}
	blk.TrueZone[0][5] = 0
	short := &DayBlock{Home: "A"}
	if _, err := AppendBlockFrame(nil, short, 0); err == nil {
		t.Error("short-column block accepted")
	}
}

// FuzzDecodeBlockFrame hammers the block decoder with arbitrary bytes: every
// input either decodes to a block that re-encodes byte-identically or errors
// cleanly — no panics, no lossy acceptance.
func FuzzDecodeBlockFrame(f *testing.F) {
	h := home.MustHouse("A")
	gen, err := aras.NewGenerator(h, aras.GeneratorConfig{Days: 1, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	src := NewGeneratorSource("A", gen)
	var blk DayBlock
	if err := src.NextBlock(&blk); err != nil {
		f.Fatal(err)
	}
	valid, err := AppendBlockFrame(nil, &blk, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:16])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("SHBLOK1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var dst DayBlock
		epoch, err := DecodeBlockFrame(&dst, data)
		if err != nil {
			if !errors.Is(err, ErrBadBlockFrame) {
				t.Fatalf("decode error outside ErrBadBlockFrame: %v", err)
			}
			return
		}
		re, err := AppendBlockFrame(nil, &dst, epoch)
		if err != nil {
			t.Fatalf("re-encode of accepted block failed: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("accepted frame does not re-encode identically (%d vs %d bytes)", len(re), len(data))
		}
	})
}
