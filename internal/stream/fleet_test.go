package stream

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/scenario"
)

// specJob builds a fleet job that streams a scenario spec's world for the
// given number of days. Construction happens inside Open, on the worker.
func specJob(sp scenario.Spec, days int, seed uint64) Job {
	return Job{ID: sp.ID, Open: func() (Source, *Home, error) {
		house, err := sp.Build()
		if err != nil {
			return nil, nil, err
		}
		gen, err := aras.NewGenerator(house, sp.GeneratorConfig(days, seed))
		if err != nil {
			return nil, nil, err
		}
		h, err := NewHome(HomeConfig{
			ID:      sp.ID,
			House:   house,
			Params:  hvac.DefaultParams(),
			Pricing: hvac.DefaultPricing(),
		})
		if err != nil {
			return nil, nil, err
		}
		return NewGeneratorSource(sp.ID, gen), h, nil
	}}
}

// registrySpecs resolves registry IDs to specs, failing the test on unknowns.
func registrySpecs(t *testing.T, ids ...string) []scenario.Spec {
	t.Helper()
	specs := make([]scenario.Spec, len(ids))
	for i, id := range ids {
		sp, ok := scenario.Get(id)
		if !ok {
			t.Fatalf("unknown scenario %q", id)
		}
		specs[i] = sp
	}
	return specs
}

// checkDeterministic compares two fleet results field-by-field, ignoring
// the wall-clock stats.
func checkDeterministic(t *testing.T, a, b FleetResult) {
	t.Helper()
	if len(a.Homes) != len(b.Homes) {
		t.Fatalf("%d vs %d home results", len(a.Homes), len(b.Homes))
	}
	for i := range a.Homes {
		got, want := a.Homes[i], b.Homes[i]
		if got.ID != want.ID || got.Days != want.Days || got.Slots != want.Slots ||
			got.SensorEvents != want.SensorEvents || got.ActionEvents != want.ActionEvents ||
			got.Verdicts != want.Verdicts || got.Anomalies != want.Anomalies ||
			got.Injected != want.Injected || got.Flagged != want.Flagged ||
			got.DetectedDays != want.DetectedDays ||
			got.Sim.TotalKWh != want.Sim.TotalKWh || got.Sim.TotalCostUSD != want.Sim.TotalCostUSD {
			t.Fatalf("home %s diverges across worker counts:\n%+v\nvs\n%+v", got.ID, got, want)
		}
	}
	zeroClock := func(s FleetStats) FleetStats {
		s.Elapsed, s.HomesPerSec, s.EventsPerSec, s.BusFrames = 0, 0, 0, 0
		return s
	}
	if zeroClock(a.Stats) != zeroClock(b.Stats) {
		t.Fatalf("aggregate stats diverge:\n%+v\nvs\n%+v", a.Stats, b.Stats)
	}
}

// TestRunFleetDeterministicWorkers pins Workers=1 ≡ Workers=N over a mixed
// registry fleet that includes a defended, attacked home.
func TestRunFleetDeterministicWorkers(t *testing.T) {
	const days = 2
	jobs := []Job{}
	for _, sp := range registrySpecs(t, "B", "studio", "family4", "nightshift") {
		jobs = append(jobs, specJob(sp, days, 99))
	}
	// House A streams defended: the detector runs online over the frames.
	tr, model := testWorld(t, "A", 4, 2)
	jobs = append(jobs, Job{ID: "A-defended", Open: func() (Source, *Home, error) {
		h, err := NewHome(HomeConfig{
			ID:       "A-defended",
			House:    tr.House,
			Params:   hvac.DefaultParams(),
			Pricing:  hvac.DefaultPricing(),
			Defender: model,
		})
		if err != nil {
			return nil, nil, err
		}
		return NewTraceSource("A-defended", tr), h, nil
	}})

	seq, err := RunFleet(jobs, FleetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFleet(jobs, FleetOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkDeterministic(t, seq, par)
	if seq.Stats.Homes != len(jobs) || seq.Stats.Verdicts == 0 {
		t.Fatalf("unexpected aggregate: %+v", seq.Stats)
	}
}

// TestRunFleetHundredSynthHomes drives a 110-home procedurally generated
// fleet concurrently and checks the result is identical to the sequential
// run — the fleet-scale determinism acceptance gate.
func TestRunFleetHundredSynthHomes(t *testing.T) {
	const homes, days = 110, 2
	jobs := make([]Job, homes)
	for i := range jobs {
		sp := scenario.Synth(4+i%6, 1+i%3, uint64(1000+i))
		jobs[i] = specJob(sp, days, uint64(31+i))
	}
	par, err := RunFleet(jobs, FleetOptions{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := RunFleet(jobs, FleetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkDeterministic(t, par, seq)
	st := par.Stats
	if st.Homes != homes || st.Days != homes*days || st.Slots != int64(homes*days*aras.SlotsPerDay) {
		t.Fatalf("aggregate miscount: %+v", st)
	}
	if st.TotalKWh <= 0 || st.TotalCostUSD <= 0 || st.Events <= st.Slots {
		t.Fatalf("implausible aggregate: %+v", st)
	}
}

// TestFleetBrokerTransport routes a small fleet through a real MQTT broker
// over loopback TCP on both wire encodings and checks (a) per-home results
// are bit-identical across the direct run, the default binary day-block
// transport, and the per-slot LegacyJSON transport, and (b) the fleet-wide
// home/+/sensor monitor tallied each encoding's own frame unit — one frame
// per home-day on the block path, one per slot on the JSON path.
func TestFleetBrokerTransport(t *testing.T) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	const days = 1
	var jobs []Job
	for _, sp := range registrySpecs(t, "A", "B", "studio") {
		jobs = append(jobs, specJob(sp, days, 7))
	}
	direct, err := RunFleet(jobs, FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := RunFleet(jobs, FleetOptions{Workers: 2, Broker: broker.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := RunFleet(jobs, FleetOptions{Workers: 2, Broker: broker.Addr(), LegacyJSON: true})
	if err != nil {
		t.Fatal(err)
	}
	checkDeterministic(t, direct, piped)
	checkDeterministic(t, direct, legacy)
	if piped.Stats.BusFrames != piped.Stats.Days {
		t.Fatalf("block monitor saw %d bus frames, want %d (one per home-day)", piped.Stats.BusFrames, piped.Stats.Days)
	}
	if legacy.Stats.BusFrames != legacy.Stats.Slots {
		t.Fatalf("JSON monitor saw %d bus frames, want %d", legacy.Stats.BusFrames, legacy.Stats.Slots)
	}
	if direct.Stats.BusFrames != 0 {
		t.Fatalf("direct run reported %d bus frames", direct.Stats.BusFrames)
	}
}

// TestRunFleetErrorPropagation checks first-error-wins with home context.
func TestRunFleetErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		specJob(scenario.Synth(4, 1, 5), 1, 5),
		{ID: "broken", Open: func() (Source, *Home, error) { return nil, nil, boom }},
	}
	_, err := RunFleet(jobs, FleetOptions{Workers: 4})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v, want wrapped boom naming the home", err)
	}
}

// TestVerdictEventsThroughFleet checks OnVerdict events survive the fleet
// path (the hook a service publishes detector verdicts from).
func TestVerdictEventsThroughFleet(t *testing.T) {
	tr, model := testWorld(t, "B", 3, 2)
	var count int64
	job := Job{ID: "B", Open: func() (Source, *Home, error) {
		h, err := NewHome(HomeConfig{
			ID:       "B",
			House:    tr.House,
			Params:   hvac.DefaultParams(),
			Pricing:  hvac.DefaultPricing(),
			Defender: model,
			OnVerdict: func(v adm.Verdict) {
				if v.Episode.Duration <= 0 {
					panic(fmt.Sprintf("bad verdict episode: %+v", v.Episode))
				}
				count++
			},
		})
		if err != nil {
			return nil, nil, err
		}
		return NewTraceSource("B", tr), h, nil
	}}
	res, err := RunFleet([]Job{job}, FleetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || count != res.Homes[0].Verdicts {
		t.Fatalf("OnVerdict saw %d verdicts, result says %d", count, res.Homes[0].Verdicts)
	}
}

// TestRunFleetRejectsDuplicateIDs: duplicate IDs would share an MQTT topic
// (crossing two homes' streams), so the fleet refuses them up front.
func TestRunFleetRejectsDuplicateIDs(t *testing.T) {
	sp := scenario.Synth(4, 1, 5)
	jobs := []Job{specJob(sp, 1, 5), specJob(sp, 1, 5)}
	if _, err := RunFleet(jobs, FleetOptions{Workers: 2}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate-ID rejection", err)
	}
}
