package stream

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// testWorld generates a paper house's batch trace and a DBSCAN defender
// trained on its first trainDays days — the shared fixture the equivalence
// tests replay through the streaming runtime.
func testWorld(t *testing.T, name string, days, trainDays int) (*aras.Trace, *adm.Model) {
	t.Helper()
	house := home.MustHouse(name)
	tr, err := aras.Generate(house, aras.GeneratorConfig{Days: days, Seed: 2024})
	if err != nil {
		t.Fatal(err)
	}
	train, err := tr.SubTrace(0, trainDays)
	if err != nil {
		t.Fatal(err)
	}
	cfg := adm.DefaultConfig(adm.DBSCAN)
	cfg.MinPts = 3
	cfg.Eps = 30
	model, err := adm.Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, model
}

// drive pulls src to end-of-stream through h, invoking observe (when
// non-nil) on each frame after Ingest rewrote it.
func drive(t *testing.T, src Source, h *Home, observe func(*Slot)) HomeResult {
	t.Helper()
	var s Slot
	for {
		if err := src.Next(&s); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Ingest(&s); err != nil {
			t.Fatal(err)
		}
		if observe != nil {
			observe(&s)
		}
	}
	res, err := h.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// verdictKey uniquely identifies an episode within a home's stream.
func verdictKey(e aras.Episode) [3]int { return [3]int{e.Day, e.Occupant, e.ArrivalSlot} }

// TestHomeStreamMatchesBatchBenign replays houses A and B through the full
// streaming pipeline (incremental generator → online detector → HVAC
// stepper) and pins everything to the batch path byte-for-byte: the ground
// truth trace, the controller's energy/cost result, and every ADM verdict.
func TestHomeStreamMatchesBatchBenign(t *testing.T) {
	params := hvac.DefaultParams()
	pricing := hvac.DefaultPricing()
	for _, name := range []string{"A", "B"} {
		const days, trainDays = 8, 6
		batchTrace, model := testWorld(t, name, days, trainDays)

		batchSim, err := hvac.Simulate(batchTrace, &hvac.SHATTERController{Params: params}, params, pricing, hvac.Options{})
		if err != nil {
			t.Fatal(err)
		}
		batchVerdicts := make(map[[3]int]adm.Verdict)
		for d := 0; d < batchTrace.NumDays(); d++ {
			for o := range batchTrace.House.Occupants {
				for _, e := range batchTrace.DayEpisodes(d, o) {
					batchVerdicts[verdictKey(e)] = adm.Verdict{Episode: e, Anomalous: model.EpisodeAnomalous(e)}
				}
			}
		}

		house := home.MustHouse(name)
		gen, err := aras.NewGenerator(house, aras.GeneratorConfig{Days: days, Seed: 2024})
		if err != nil {
			t.Fatal(err)
		}
		var streamed []adm.Verdict
		h, err := NewHome(HomeConfig{
			ID:        name,
			House:     house,
			Params:    params,
			Pricing:   pricing,
			Defender:  model,
			OnVerdict: func(v adm.Verdict) { streamed = append(streamed, v) },
		})
		if err != nil {
			t.Fatal(err)
		}
		rebuilt := &aras.Trace{House: house}
		res := drive(t, NewGeneratorSource(name, gen), h, func(s *Slot) {
			if s.Index == 0 {
				rebuilt.Days = append(rebuilt.Days, aras.NewDay(len(house.Occupants), len(house.Appliances)))
				rebuilt.Weather = append(rebuilt.Weather, aras.Weather{
					TempF:  make([]float64, aras.SlotsPerDay),
					CO2PPM: make([]float64, aras.SlotsPerDay),
				})
			}
			day := &rebuilt.Days[s.Day]
			for o, r := range s.True {
				day.Zone[o][s.Index] = r.Zone
				day.Act[o][s.Index] = r.Activity
			}
			for a, on := range s.TrueAppliance {
				day.Appliance[a][s.Index] = on
			}
			rebuilt.Weather[s.Day].TempF[s.Index] = s.OutdoorTempF
			rebuilt.Weather[s.Day].CO2PPM[s.Index] = s.OutdoorCO2PPM
		})

		// Ground truth: the streamed frames reassemble the batch trace
		// byte-for-byte (CSV encoding) including the weather series.
		var want, got bytes.Buffer
		if err := batchTrace.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("house %s: streamed trace differs from batch trace", name)
		}
		if !reflect.DeepEqual(batchTrace.Weather, rebuilt.Weather) {
			t.Errorf("house %s: streamed weather differs from batch weather", name)
		}

		// Controller accounting: bit-identical hvac.Result.
		if !reflect.DeepEqual(batchSim, res.Sim) {
			t.Errorf("house %s: streamed sim result differs from batch\nbatch:    %+v\nstreamed: %+v", name, batchSim, res.Sim)
		}

		// Detection: every online verdict matches its batch counterpart.
		if len(streamed) != len(batchVerdicts) {
			t.Fatalf("house %s: %d streamed verdicts, %d batch", name, len(streamed), len(batchVerdicts))
		}
		anomalies := int64(0)
		for _, v := range streamed {
			want, ok := batchVerdicts[verdictKey(v.Episode)]
			if !ok {
				t.Fatalf("house %s: streamed episode %+v not in batch set", name, v.Episode)
			}
			if !reflect.DeepEqual(v, want) {
				t.Fatalf("house %s: verdict mismatch\nstreamed: %+v\nbatch:    %+v", name, v, want)
			}
			if v.Anomalous {
				anomalies++
			}
		}
		if res.Verdicts != int64(len(batchVerdicts)) || res.Anomalies != anomalies {
			t.Errorf("house %s: counters %d/%d, want %d/%d", name, res.Verdicts, res.Anomalies, len(batchVerdicts), anomalies)
		}
		if res.Days != days || res.Slots != int64(days*aras.SlotsPerDay) {
			t.Errorf("house %s: %d days / %d slots, want %d / %d", name, res.Days, res.Slots, days, days*aras.SlotsPerDay)
		}
		if res.SensorEvents != res.Slots*int64(len(house.Occupants)+len(house.Appliances)) {
			t.Errorf("house %s: sensor events %d", name, res.SensorEvents)
		}
	}
}

// TestHomeStreamMatchesBatchAttacked streams a SHATTER campaign (sensor
// spoofing + appliance triggering) through the live injector and pins the
// attacked plant accounting, the per-slot falsified view, and the defender's
// injection ledger to batch attack.EvaluateImpact.
func TestHomeStreamMatchesBatchAttacked(t *testing.T) {
	params := hvac.DefaultParams()
	pricing := hvac.DefaultPricing()
	for _, name := range []string{"A", "B"} {
		const days, trainDays = 6, 4
		tr, model := testWorld(t, name, days, trainDays)
		house := tr.House
		cap := attack.Full(house)
		pl := &attack.Planner{
			Trace:     tr,
			Model:     model,
			Cost:      hvac.NewCostModel(house, params, pricing),
			Cap:       cap,
			WindowLen: 10,
		}
		plan, err := pl.PlanSHATTER()
		if err != nil {
			t.Fatal(err)
		}
		attack.TriggerAppliances(tr, plan, model, cap)

		imp, err := attack.EvaluateImpact(tr, plan, model, &hvac.SHATTERController{Params: params}, params, pricing, attack.EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		batchInjected, batchFlagged := 0, 0
		for d := 0; d < tr.NumDays(); d++ {
			for o := range house.Occupants {
				for _, e := range plan.DayReportedEpisodes(tr, d, o) {
					if !e.Injected {
						continue
					}
					batchInjected++
					if model.EpisodeAnomalous(e.Episode) {
						batchFlagged++
					}
				}
			}
		}

		inj, err := NewInjector(house, plan)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHome(HomeConfig{
			ID:       name,
			House:    house,
			Params:   params,
			Pricing:  pricing,
			Defender: model,
			Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		view, err := attack.NewView(tr, plan)
		if err != nil {
			t.Fatal(err)
		}
		res := drive(t, NewTraceSource(name, tr), h, func(s *Slot) {
			// The rewritten frame must reproduce attack.View's semantics.
			obs := view.Occupants(s.Day, s.Index)
			for o, r := range s.Reported {
				if r.Zone != obs[o].Zone || r.Activity != obs[o].Activity {
					t.Fatalf("house %s day %d slot %d occ %d: reported %+v, view %+v", name, s.Day, s.Index, o, r, obs[o])
				}
			}
			for a := range s.ReportedAppliance {
				if s.ReportedAppliance[a] != view.ApplianceOn(s.Day, s.Index, a) {
					t.Fatalf("house %s day %d slot %d appl %d: believed status diverges from view", name, s.Day, s.Index, a)
				}
				if s.TrueAppliance[a] != view.ActualApplianceOn(s.Day, s.Index, a) {
					t.Fatalf("house %s day %d slot %d appl %d: actual status diverges from view", name, s.Day, s.Index, a)
				}
			}
		})

		if !reflect.DeepEqual(imp.Attacked, res.Sim) {
			t.Errorf("house %s: streamed attacked result differs from batch\nbatch:    %+v\nstreamed: %+v", name, imp.Attacked, res.Sim)
		}
		if int(res.Injected) != batchInjected || int(res.Flagged) != batchFlagged {
			t.Errorf("house %s: injection ledger %d/%d, batch %d/%d", name, res.Injected, res.Flagged, batchInjected, batchFlagged)
		}
		if res.DetectedDays != imp.DetectedDays {
			t.Errorf("house %s: %d detected days, batch %d", name, res.DetectedDays, imp.DetectedDays)
		}
		var rate float64
		if res.Injected > 0 {
			rate = float64(res.Flagged) / float64(res.Injected)
		}
		if rate != imp.DetectionRate {
			t.Errorf("house %s: detection rate %v, batch %v", name, rate, imp.DetectionRate)
		}
	}
}

// TestInjectorBeyondHorizon checks frames past the plan's campaign horizon
// pass through truthfully.
func TestInjectorBeyondHorizon(t *testing.T) {
	tr, model := testWorld(t, "A", 4, 2)
	short, err := tr.SubTrace(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := &attack.Planner{
		Trace:     short,
		Model:     model,
		Cost:      hvac.NewCostModel(tr.House, hvac.DefaultParams(), hvac.DefaultPricing()),
		Cap:       attack.Full(tr.House),
		WindowLen: 10,
	}
	plan, err := pl.PlanBIoTA()
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(tr.House, plan)
	if err != nil {
		t.Fatal(err)
	}
	src := NewTraceSource("A", tr)
	var s Slot
	rewrote := false
	for {
		if err := src.Next(&s); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		inj.Rewrite(&s)
		if s.Day < 2 {
			for o := range s.Reported {
				if s.Reported[o].Zone != s.True[o].Zone {
					rewrote = true
				}
			}
			continue
		}
		for o := range s.Reported {
			if s.Reported[o] != s.True[o] {
				t.Fatalf("day %d slot %d: beyond-horizon occupancy rewritten", s.Day, s.Index)
			}
		}
		for a := range s.ReportedAppliance {
			if s.ReportedAppliance[a] != s.TrueAppliance[a] {
				t.Fatalf("day %d slot %d: beyond-horizon appliance status rewritten", s.Day, s.Index)
			}
		}
	}
	if !rewrote {
		t.Error("greedy plan never falsified a frame inside the horizon")
	}
}

// TestHomeIngestHygiene covers the runtime's stream-order cross-checks.
func TestHomeIngestHygiene(t *testing.T) {
	house := home.MustHouse("A")
	gen, err := aras.NewGenerator(house, aras.GeneratorConfig{Days: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHome(HomeConfig{ID: "A", House: house, Params: hvac.DefaultParams(), Pricing: hvac.DefaultPricing()})
	if err != nil {
		t.Fatal(err)
	}
	src := NewGeneratorSource("A", gen)
	var s Slot
	if err := src.Next(&s); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Ingest(&s); err != nil {
		t.Fatal(err)
	}
	// Replaying the same frame is out of order for the stepper.
	if _, err := h.Ingest(&s); err == nil {
		t.Error("replayed frame accepted")
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Ingest(&s); err == nil {
		t.Error("Ingest after Close accepted")
	}
	if _, err := h.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

// TestInjectionLedgerIsPerOccupant pins the batch DayReportedEpisodes
// semantics the ledger reproduces: a reported episode is compared against
// its OWN occupant's truth, so a falsified stay that happens to coincide
// with another occupant's real stay is still an injection.
func TestInjectionLedgerIsPerOccupant(t *testing.T) {
	h := &Home{labeling: true}
	// Occupant 1 really stayed in zone 2, arrival 480, duration 60.
	h.recordNatural(aras.Episode{Day: 0, Occupant: 1, Zone: 2, ArrivalSlot: 480, Duration: 60})
	// Occupant 0 reports the identical (zone, arrival, duration) triple —
	// absent from occupant 0's truth, hence injected.
	h.recordVerdict(adm.Verdict{
		Episode:   aras.Episode{Day: 0, Occupant: 0, Zone: 2, ArrivalSlot: 480, Duration: 60},
		Anomalous: true,
	})
	// Occupant 1 reports their own real stay — ordinary FP surface.
	h.recordVerdict(adm.Verdict{
		Episode:   aras.Episode{Day: 0, Occupant: 1, Zone: 2, ArrivalSlot: 480, Duration: 60},
		Anomalous: true,
	})
	h.resolveDaysBelow(1)
	if h.res.Injected != 1 || h.res.Flagged != 1 || h.res.DetectedDays != 1 {
		t.Fatalf("ledger %d injected / %d flagged / %d detected days, want 1/1/1: %+v",
			h.res.Injected, h.res.Flagged, h.res.DetectedDays, h.res)
	}
}

// TestStreamSlotZeroAllocsSteadyState is the allocation-regression gate for
// the per-slot streaming path: once a benign home's pipeline is warm, a
// TraceSource frame pull plus its Ingest (injector-less, detector-less)
// allocates nothing, and attaching the online detector stays within a small
// per-slot budget (episode closes allocate their verdict bookkeeping).
func TestStreamSlotZeroAllocsSteadyState(t *testing.T) {
	const days = 3
	tr, model := testWorld(t, "A", days, 2)
	params := hvac.DefaultParams()
	pricing := hvac.DefaultPricing()

	measure := func(defender *adm.Model) float64 {
		h, err := NewHome(HomeConfig{ID: "A", House: tr.House, Params: params, Pricing: pricing, Defender: defender})
		if err != nil {
			t.Fatal(err)
		}
		src := NewTraceSource("A", tr)
		var s Slot
		// Warm one full day so the frame buffers, controller scratch, and
		// detector state reach steady state.
		for i := 0; i < aras.SlotsPerDay; i++ {
			if err := src.Next(&s); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Ingest(&s); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(1000, func() {
			if err := src.Next(&s); err != nil {
				t.Fatal(err)
			}
			if _, err := h.Ingest(&s); err != nil {
				t.Fatal(err)
			}
		})
	}
	if allocs := measure(nil); allocs != 0 {
		t.Errorf("benign slot path: %.2f allocs/slot after warm-up, want 0", allocs)
	}
	if allocs := measure(model); allocs > 1 {
		t.Errorf("defended slot path: %.2f allocs/slot after warm-up, budget 1", allocs)
	}
}
