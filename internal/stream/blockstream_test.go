package stream

import (
	"io"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// buildAttack plans a triggered SHATTER campaign over the fixture world —
// the shared setup for the attacked block-equivalence cases.
func buildAttack(t *testing.T, tr *aras.Trace, model *adm.Model) *attack.Plan {
	t.Helper()
	pl := &attack.Planner{
		Trace:     tr,
		Model:     model,
		Cost:      hvac.NewCostModel(tr.House, hvac.DefaultParams(), hvac.DefaultPricing()),
		Cap:       attack.Full(tr.House),
		WindowLen: 10,
	}
	plan, err := pl.PlanSHATTER()
	if err != nil {
		t.Fatal(err)
	}
	attack.TriggerAppliances(tr, plan, model, attack.Full(tr.House))
	return plan
}

// homePair builds two identically configured Homes (separate controller and
// injector instances — both hold per-run scratch).
func homePair(t *testing.T, name string, tr *aras.Trace, model *adm.Model, plan *attack.Plan) (slot, block *Home, slotV, blockV *[]adm.Verdict) {
	t.Helper()
	mk := func(streamed *[]adm.Verdict) *Home {
		cfg := HomeConfig{
			ID:      name,
			House:   tr.House,
			Params:  hvac.DefaultParams(),
			Pricing: hvac.DefaultPricing(),
			OnVerdict: func(v adm.Verdict) {
				*streamed = append(*streamed, v)
			},
		}
		if model != nil {
			cfg.Defender = model
		}
		if plan != nil {
			inj, err := NewInjector(tr.House, plan)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Injector = inj
		}
		h, err := NewHome(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	var sv, bv []adm.Verdict
	return mk(&sv), mk(&bv), &sv, &bv
}

// TestIngestDayMatchesIngest pins the day-block path to aras.SlotsPerDay
// per-slot Ingest calls: identical HomeResult (plant accounting, detection
// counters, injection ledger) and identical verdict emission order, for
// benign, defended, and attacked pipelines on both paper houses, over both
// source kinds.
func TestIngestDayMatchesIngest(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		const days, trainDays = 6, 4
		tr, model := testWorld(t, name, days, trainDays)
		plan := buildAttack(t, tr, model)
		for _, tc := range []struct {
			label string
			model *adm.Model
			plan  *attack.Plan
		}{
			{"benign", nil, nil},
			{"defended", model, nil},
			{"attacked", model, plan},
		} {
			slotHome, blockHome, slotV, blockV := homePair(t, name, tr, tc.model, tc.plan)
			slotRes := drive(t, NewTraceSource(name, tr), slotHome, nil)

			src := NewTraceSource(name, tr)
			var blk DayBlock
			for {
				if err := src.NextBlock(&blk); err == io.EOF {
					break
				} else if err != nil {
					t.Fatal(err)
				}
				if _, err := blockHome.IngestDay(&blk); err != nil {
					t.Fatal(err)
				}
			}
			blockRes, err := blockHome.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(slotRes, blockRes) {
				t.Errorf("house %s %s: block result differs from slot result\nslot:  %+v\nblock: %+v", name, tc.label, slotRes, blockRes)
			}
			if !reflect.DeepEqual(*slotV, *blockV) {
				t.Errorf("house %s %s: verdict stream differs (%d slot vs %d block)", name, tc.label, len(*slotV), len(*blockV))
			}
		}
	}
}

// TestGeneratorBlockMatchesSlots pins GeneratorSource.NextBlock against the
// per-slot Next stream: the same frames decode out of the blocks, and a
// defended home fed blocks matches one fed slots.
func TestGeneratorBlockMatchesSlots(t *testing.T) {
	const days = 4
	house := home.MustHouse("A")
	mkGen := func() *aras.Generator {
		g, err := aras.NewGenerator(house, aras.GeneratorConfig{Days: days, Seed: 2024})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	slotSrc := NewGeneratorSource("A", mkGen())
	blockSrc := NewGeneratorSource("A", mkGen())
	var s, fromBlock Slot
	var blk DayBlock
	for d := 0; d < days; d++ {
		if err := blockSrc.NextBlock(&blk); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < aras.SlotsPerDay; i++ {
			if err := slotSrc.Next(&s); err != nil {
				t.Fatal(err)
			}
			blk.Slot(&fromBlock, i)
			if !reflect.DeepEqual(s, fromBlock) {
				t.Fatalf("day %d slot %d: block decode differs from slot stream\nslot:  %+v\nblock: %+v", d, i, s, fromBlock)
			}
		}
	}
	if err := blockSrc.NextBlock(&blk); err != io.EOF {
		t.Fatalf("block stream past bound: %v, want io.EOF", err)
	}
}

// TestIngestDayHygiene covers the block path's stream-order cross-checks.
func TestIngestDayHygiene(t *testing.T) {
	house := home.MustHouse("A")
	gen, err := aras.NewGenerator(house, aras.GeneratorConfig{Days: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHome(HomeConfig{ID: "A", House: house, Params: hvac.DefaultParams(), Pricing: hvac.DefaultPricing()})
	if err != nil {
		t.Fatal(err)
	}
	src := NewGeneratorSource("A", gen)
	var blk DayBlock
	if err := src.NextBlock(&blk); err != nil {
		t.Fatal(err)
	}
	if _, err := h.IngestDay(&blk); err != nil {
		t.Fatal(err)
	}
	// Replaying the same day is out of order for the stepper.
	if _, err := h.IngestDay(&blk); err == nil {
		t.Error("replayed day block accepted")
	}
	// A mid-day per-slot cursor refuses to coarsen into blocks.
	var s Slot
	if err := src.Next(&s); err != nil {
		t.Fatal(err)
	}
	if err := src.NextBlock(&blk); err == nil {
		t.Error("mid-day NextBlock accepted")
	}
	if _, err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.IngestDay(&blk); err == nil {
		t.Error("IngestDay after Close accepted")
	}
}
