package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// HomeConfig wires one home's streaming pipeline.
type HomeConfig struct {
	// ID names the home on the fleet bus.
	ID string
	// House is the world the stream describes.
	House *home.House
	// Controller plans airflow from the reported view. Nil selects the
	// paper's SHATTER controller under Params. Controllers hold per-plan
	// scratch, so every home needs its own instance.
	Controller hvac.Controller
	Params     hvac.Params
	Pricing    hvac.Pricing
	// Defender, when non-nil, runs online anomaly detection over the
	// reported occupancy stream.
	Defender *adm.Model
	// Injector, when non-nil, applies an attack plan to the stream in
	// flight.
	Injector *Injector
	// OnVerdict, when non-nil, observes every detector verdict the moment
	// its episode closes — the hook a fleet service publishes verdict events
	// from. Called synchronously from Ingest/Close.
	OnVerdict func(adm.Verdict)
}

// HomeResult aggregates one home's streamed run.
type HomeResult struct {
	ID string
	// Days counts days with at least one ingested slot; Slots the frames.
	Days  int
	Slots int64
	// SensorEvents, ActionEvents, and Verdicts count the typed events the
	// run produced (occupancy+appliance readings, per-zone controller
	// demands, and closed-episode judgements respectively).
	SensorEvents int64
	ActionEvents int64
	Verdicts     int64
	// Anomalies counts verdicts flagged anomalous (attack detections plus
	// the defender's ordinary false-positive surface).
	Anomalies int64
	// Injected counts reported episodes that do not occur in the truth;
	// Flagged those the defender caught; DetectedDays days with >= 1 catch.
	Injected     int64
	Flagged      int64
	DetectedDays int
	// Sim is the plant/cost accounting, bit-identical to batch
	// hvac.Simulate over the same stream.
	Sim hvac.Result
}

// Home runs one home's incremental pipeline: frames are rewritten by the
// optional injector, scored by the optional online detector, and stepped
// through the incremental HVAC simulator. Not safe for concurrent use.
type Home struct {
	cfg HomeConfig
	sim *hvac.Sim
	det *adm.Detector
	nat *adm.Episodizer // truth-stream segmentation for injection labels

	in       hvac.StepInput
	believed []hvac.OccupantObs
	actual   []hvac.OccupantObs

	// Per-day ledger: reported verdicts and natural (occupant, zone,
	// arrival, duration) tuples, resolved once the day's episodes have all
	// closed. Natural keys are compared per occupant, matching the batch
	// DayReportedEpisodes semantics (each occupant's reported stream is
	// checked against that occupant's own truth). The ledger is a day-sorted
	// slice of per-day entries whose storage is recycled as days resolve, so
	// a warm stream runs it allocation-free.
	labeling bool
	led      []dayLedger
	ledSpare []dayLedger
	closed   bool
	res      HomeResult

	// IngestDay scratch: per-occupant verdict columns awaiting the
	// order-preserving merge, merge cursors, natural-episode buffer, and the
	// HVAC day input aliasing the in-flight block's columns.
	vcols [][]adm.Verdict
	vcur  []int
	ncol  []aras.Episode
	dayIn hvac.DayInput
}

// dayLedger is one day's unresolved labelling state: verdicts in close
// order, natural keys sorted lexicographically for binary search.
type dayLedger struct {
	day      int
	verdicts []adm.Verdict
	natural  [][4]int
}

// NewHome builds the runtime for one home.
func NewHome(cfg HomeConfig) (*Home, error) {
	if cfg.House == nil {
		return nil, errors.New("stream: HomeConfig.House is nil")
	}
	if cfg.Controller == nil {
		cfg.Controller = &hvac.SHATTERController{Params: cfg.Params}
	}
	sim, err := hvac.NewSim(cfg.House, cfg.Controller, cfg.Params, cfg.Pricing)
	if err != nil {
		return nil, err
	}
	h := &Home{
		cfg:      cfg,
		sim:      sim,
		believed: make([]hvac.OccupantObs, len(cfg.House.Occupants)),
		actual:   make([]hvac.OccupantObs, len(cfg.House.Occupants)),
		res:      HomeResult{ID: cfg.ID},
	}
	if cfg.Defender != nil {
		h.det = adm.NewDetector(cfg.Defender)
		if cfg.Injector != nil {
			h.nat = adm.NewEpisodizer(len(cfg.House.Occupants))
			h.labeling = true
		}
	}
	return h, nil
}

// SetOnVerdict installs (or replaces) the verdict observer after
// construction — the hook a fleet service uses to attach its metrics to a
// home another layer assembled. It must be called before the first Ingest;
// the callback runs synchronously from Ingest/Close like cfg.OnVerdict.
func (h *Home) SetOnVerdict(fn func(adm.Verdict)) error {
	if h.res.Slots != 0 || h.closed {
		return errors.New("stream: SetOnVerdict after streaming began")
	}
	h.cfg.OnVerdict = fn
	return nil
}

// Ingest advances the pipeline by one frame and returns the controller's
// action event for the slot (its Demands slice is controller scratch, valid
// until the next Ingest). Frames must arrive in stream order; the runtime
// cross-checks the frame's (day, slot) against the stepper's position so
// transport bugs surface as errors, not silent divergence.
func (h *Home) Ingest(s *Slot) (Action, error) {
	if h.closed {
		return Action{}, errors.New("stream: Ingest after Close")
	}
	if s.Day != h.sim.Day() || s.Index != h.sim.SlotOfDay() {
		return Action{}, fmt.Errorf("stream: home %s: frame (%d,%d) arrived at stepper position (%d,%d)",
			h.cfg.ID, s.Day, s.Index, h.sim.Day(), h.sim.SlotOfDay())
	}
	occ, appl := len(h.actual), len(h.cfg.House.Appliances)
	if len(s.True) != occ || len(s.TrueAppliance) != appl ||
		len(s.Reported) != occ || len(s.ReportedAppliance) != appl {
		return Action{}, fmt.Errorf("stream: home %s: frame sized %dx%d (reported %dx%d), want %dx%d",
			h.cfg.ID, len(s.True), len(s.TrueAppliance), len(s.Reported), len(s.ReportedAppliance), occ, appl)
	}
	if h.cfg.Injector != nil {
		h.cfg.Injector.Rewrite(s)
	}
	if h.det != nil {
		for o := range s.Reported {
			v, ok, err := h.det.Observe(s.Day, s.Index, o, s.Reported[o].Zone, s.Reported[o].Activity)
			if err != nil {
				return Action{}, err
			}
			if ok {
				h.recordVerdict(v)
			}
		}
		if h.nat != nil {
			for o := range s.True {
				e, ok, err := h.nat.Observe(s.Day, s.Index, o, s.True[o].Zone, s.True[o].Activity)
				if err != nil {
					return Action{}, err
				}
				if ok {
					h.recordNatural(e)
				}
			}
			// Entering day d closes every day d-1 episode on both streams,
			// so earlier days are ready to label.
			if s.Index == 0 && s.Day > 0 {
				h.resolveDaysBelow(s.Day)
			}
		}
	}
	for o := range s.Reported {
		h.believed[o] = hvac.OccupantObs{Zone: s.Reported[o].Zone, Activity: s.Reported[o].Activity}
		h.actual[o] = hvac.OccupantObs{Zone: s.True[o].Zone, Activity: s.True[o].Activity}
	}
	h.in = hvac.StepInput{
		OutdoorTempF:      s.OutdoorTempF,
		OutdoorCO2PPM:     s.OutdoorCO2PPM,
		Believed:          h.believed,
		BelievedAppliance: s.ReportedAppliance,
		ActualOccupants:   h.actual,
		ActualAppliance:   s.TrueAppliance,
	}
	rep := h.sim.Step(h.in)
	if s.Index == 0 {
		h.res.Days++
	}
	h.res.Slots++
	h.res.SensorEvents += int64(s.SensorEvents())
	h.res.ActionEvents += int64(len(rep.Demands))
	return Action{
		Home:    h.cfg.ID,
		Day:     rep.Day,
		Index:   rep.Slot,
		Demands: rep.Demands,
		KWh:     rep.KWh,
		CostUSD: rep.CostUSD,
	}, nil
}

// DayStats is the per-block event accounting IngestDay reports back to its
// driver — what a per-slot loop would have tallied from its own frames, so
// block-mode fleet paths keep identical metrics without reaching into the
// home's internals.
type DayStats struct {
	SensorEvents int64
	ActionEvents int64
}

// IngestDay advances the pipeline by one whole day-block — the hot-path
// equivalent of aras.SlotsPerDay Ingest calls, bit-identical in every
// result and in the OnVerdict callback order, without per-slot frame
// materialization. The block's reported and true-appliance columns are
// rewritten in place when an injector is attached (as Ingest rewrites its
// frame); detection runs column-wise per occupant with the closed episodes
// re-merged into the per-slot (close-slot, occupant) verdict order; the
// plant advances via the segment-amortized hvac day stepper.
func (h *Home) IngestDay(b *DayBlock) (DayStats, error) {
	if h.closed {
		return DayStats{}, errors.New("stream: IngestDay after Close")
	}
	if b.Day != h.sim.Day() || h.sim.SlotOfDay() != 0 {
		return DayStats{}, fmt.Errorf("stream: home %s: day block %d arrived at stepper position (%d,%d)",
			h.cfg.ID, b.Day, h.sim.Day(), h.sim.SlotOfDay())
	}
	occ, appl := len(h.actual), len(h.cfg.House.Appliances)
	if err := b.shapeErr(occ, appl); err != nil {
		return DayStats{}, fmt.Errorf("stream: home %s: %w", h.cfg.ID, err)
	}
	if h.cfg.Injector != nil {
		h.cfg.Injector.RewriteBlock(b)
	}
	if h.det != nil {
		if h.vcols == nil {
			h.vcols = make([][]adm.Verdict, occ)
			h.vcur = make([]int, occ)
		}
		for o := 0; o < occ; o++ {
			col, err := h.det.ObserveDay(b.Day, o, b.RepZone[o], b.RepAct[o], h.vcols[o][:0])
			if err != nil {
				return DayStats{}, err
			}
			h.vcols[o] = col
			h.vcur[o] = 0
		}
		// Merge the per-occupant close streams back into per-slot emission
		// order: ascending close slot (day-boundary closes of the previous
		// day surface at slot 0), ties by occupant. Each column is already
		// close-ordered, so this is a k-way merge over tiny k.
		for {
			best, bestPos := -1, 0
			for o := 0; o < occ; o++ {
				if h.vcur[o] >= len(h.vcols[o]) {
					continue
				}
				v := &h.vcols[o][h.vcur[o]]
				pos := 0
				if v.Episode.Day == b.Day {
					pos = v.Episode.ArrivalSlot + v.Episode.Duration
				}
				if best == -1 || pos < bestPos {
					best, bestPos = o, pos
				}
			}
			if best == -1 {
				break
			}
			h.recordVerdict(h.vcols[best][h.vcur[best]])
			h.vcur[best]++
		}
		if h.nat != nil {
			for o := 0; o < occ; o++ {
				col, err := h.nat.ObserveDay(b.Day, o, b.TrueZone[o], b.TrueAct[o], h.ncol[:0])
				h.ncol = col[:0]
				if err != nil {
					return DayStats{}, err
				}
				for _, e := range col {
					h.recordNatural(e)
				}
			}
			if b.Day > 0 {
				h.resolveDaysBelow(b.Day)
			}
		}
	}
	h.dayIn = hvac.DayInput{
		OutdoorTempF:      b.TempF,
		OutdoorCO2PPM:     b.CO2PPM,
		BelievedZone:      b.RepZone,
		BelievedAct:       b.RepAct,
		BelievedAppliance: b.RepAppliance,
		ActualZone:        b.TrueZone,
		ActualAct:         b.TrueAct,
		ActualAppliance:   b.TrueAppliance,
	}
	if err := h.sim.StepDay(&h.dayIn); err != nil {
		return DayStats{}, err
	}
	st := DayStats{
		SensorEvents: int64(aras.SlotsPerDay) * int64(occ+appl),
		ActionEvents: int64(aras.SlotsPerDay) * int64(len(h.cfg.House.Zones)),
	}
	h.res.Days++
	h.res.Slots += int64(aras.SlotsPerDay)
	h.res.SensorEvents += st.SensorEvents
	h.res.ActionEvents += st.ActionEvents
	return st, nil
}

// Close seals open episodes, resolves the detection ledger, and returns the
// final accounting.
func (h *Home) Close() (HomeResult, error) {
	if h.closed {
		return HomeResult{}, errors.New("stream: double Close")
	}
	h.closed = true
	if h.det != nil {
		for _, v := range h.det.Flush() {
			h.recordVerdict(v)
		}
		if h.nat != nil {
			for _, e := range h.nat.Flush() {
				h.recordNatural(e)
			}
			h.resolveDaysBelow(math.MaxInt) // all days
		}
	}
	h.res.Sim = h.sim.Result()
	return h.res, nil
}

// ledgerFor returns the labelling entry for a day, creating it (from
// recycled storage when available) in day-sorted position. Streams touch
// days in nondecreasing order, so the entry is almost always last already.
func (h *Home) ledgerFor(day int) *dayLedger {
	i := len(h.led)
	for i > 0 && h.led[i-1].day > day {
		i--
	}
	if i > 0 && h.led[i-1].day == day {
		return &h.led[i-1]
	}
	var entry dayLedger
	if n := len(h.ledSpare); n > 0 {
		entry = h.ledSpare[n-1]
		h.ledSpare = h.ledSpare[:n-1]
	}
	entry.day = day
	entry.verdicts = entry.verdicts[:0]
	entry.natural = entry.natural[:0]
	h.led = append(h.led, dayLedger{})
	copy(h.led[i+1:], h.led[i:])
	h.led[i] = entry
	return &h.led[i]
}

// recordVerdict counts a closed reported episode and, under attack,
// ledgers it for injection labelling.
func (h *Home) recordVerdict(v adm.Verdict) {
	h.res.Verdicts++
	if v.Anomalous {
		h.res.Anomalies++
	}
	if h.cfg.OnVerdict != nil {
		h.cfg.OnVerdict(v)
	}
	if h.labeling {
		l := h.ledgerFor(v.Episode.Day)
		l.verdicts = append(l.verdicts, v)
	}
}

// recordNatural ledgers a truth-stream episode for injection labelling,
// keeping the day's key slice sorted for binary search at resolution.
func (h *Home) recordNatural(e aras.Episode) {
	l := h.ledgerFor(e.Day)
	key := [4]int{e.Occupant, int(e.Zone), e.ArrivalSlot, e.Duration}
	i := sort.Search(len(l.natural), func(i int) bool { return !keyLess(l.natural[i], key) })
	l.natural = append(l.natural, [4]int{})
	copy(l.natural[i+1:], l.natural[i:])
	l.natural[i] = key
}

func keyLess(a, b [4]int) bool {
	for x := 0; x < 4; x++ {
		if a[x] != b[x] {
			return a[x] < b[x]
		}
	}
	return false
}

// resolveDaysBelow labels every ledgered day < bound: a reported episode
// absent from the day's natural keys is an injection (the batch
// DayReportedEpisodes semantics), and flagged injections mark the day
// detected. Resolved entries' storage is recycled, so a steady-state stream
// resolves each day without allocating.
func (h *Home) resolveDaysBelow(bound int) {
	n := 0
	for n < len(h.led) && h.led[n].day < bound {
		n++
	}
	if n == 0 {
		return
	}
	for i := 0; i < n; i++ {
		l := &h.led[i]
		detected := false
		for _, v := range l.verdicts {
			key := [4]int{v.Episode.Occupant, int(v.Episode.Zone), v.Episode.ArrivalSlot, v.Episode.Duration}
			j := sort.Search(len(l.natural), func(j int) bool { return !keyLess(l.natural[j], key) })
			if j < len(l.natural) && l.natural[j] == key {
				continue // occurs in that occupant's truth: ordinary FP surface, not an injection
			}
			h.res.Injected++
			if v.Anomalous {
				h.res.Flagged++
				detected = true
			}
		}
		if detected {
			h.res.DetectedDays++
		}
		h.ledSpare = append(h.ledSpare, *l)
		*l = dayLedger{}
	}
	h.led = h.led[:copy(h.led, h.led[n:])]
}
