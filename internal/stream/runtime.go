package stream

import (
	"errors"
	"fmt"
	"sort"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// HomeConfig wires one home's streaming pipeline.
type HomeConfig struct {
	// ID names the home on the fleet bus.
	ID string
	// House is the world the stream describes.
	House *home.House
	// Controller plans airflow from the reported view. Nil selects the
	// paper's SHATTER controller under Params. Controllers hold per-plan
	// scratch, so every home needs its own instance.
	Controller hvac.Controller
	Params     hvac.Params
	Pricing    hvac.Pricing
	// Defender, when non-nil, runs online anomaly detection over the
	// reported occupancy stream.
	Defender *adm.Model
	// Injector, when non-nil, applies an attack plan to the stream in
	// flight.
	Injector *Injector
	// OnVerdict, when non-nil, observes every detector verdict the moment
	// its episode closes — the hook a fleet service publishes verdict events
	// from. Called synchronously from Ingest/Close.
	OnVerdict func(adm.Verdict)
}

// HomeResult aggregates one home's streamed run.
type HomeResult struct {
	ID string
	// Days counts days with at least one ingested slot; Slots the frames.
	Days  int
	Slots int64
	// SensorEvents, ActionEvents, and Verdicts count the typed events the
	// run produced (occupancy+appliance readings, per-zone controller
	// demands, and closed-episode judgements respectively).
	SensorEvents int64
	ActionEvents int64
	Verdicts     int64
	// Anomalies counts verdicts flagged anomalous (attack detections plus
	// the defender's ordinary false-positive surface).
	Anomalies int64
	// Injected counts reported episodes that do not occur in the truth;
	// Flagged those the defender caught; DetectedDays days with >= 1 catch.
	Injected     int64
	Flagged      int64
	DetectedDays int
	// Sim is the plant/cost accounting, bit-identical to batch
	// hvac.Simulate over the same stream.
	Sim hvac.Result
}

// Home runs one home's incremental pipeline: frames are rewritten by the
// optional injector, scored by the optional online detector, and stepped
// through the incremental HVAC simulator. Not safe for concurrent use.
type Home struct {
	cfg HomeConfig
	sim *hvac.Sim
	det *adm.Detector
	nat *adm.Episodizer // truth-stream segmentation for injection labels

	in       hvac.StepInput
	believed []hvac.OccupantObs
	actual   []hvac.OccupantObs

	// Per-day ledger: reported verdicts and natural (occupant, zone,
	// arrival, duration) tuples, resolved once the day's episodes have all
	// closed. The natural set is keyed per occupant, matching the batch
	// DayReportedEpisodes semantics (each occupant's reported stream is
	// compared against that occupant's own truth).
	verdicts map[int][]adm.Verdict
	natural  map[int]map[[4]int]bool
	closed   bool
	res      HomeResult
}

// NewHome builds the runtime for one home.
func NewHome(cfg HomeConfig) (*Home, error) {
	if cfg.House == nil {
		return nil, errors.New("stream: HomeConfig.House is nil")
	}
	if cfg.Controller == nil {
		cfg.Controller = &hvac.SHATTERController{Params: cfg.Params}
	}
	sim, err := hvac.NewSim(cfg.House, cfg.Controller, cfg.Params, cfg.Pricing)
	if err != nil {
		return nil, err
	}
	h := &Home{
		cfg:      cfg,
		sim:      sim,
		believed: make([]hvac.OccupantObs, len(cfg.House.Occupants)),
		actual:   make([]hvac.OccupantObs, len(cfg.House.Occupants)),
		res:      HomeResult{ID: cfg.ID},
	}
	if cfg.Defender != nil {
		h.det = adm.NewDetector(cfg.Defender)
		if cfg.Injector != nil {
			h.nat = adm.NewEpisodizer(len(cfg.House.Occupants))
			h.verdicts = make(map[int][]adm.Verdict)
			h.natural = make(map[int]map[[4]int]bool)
		}
	}
	return h, nil
}

// SetOnVerdict installs (or replaces) the verdict observer after
// construction — the hook a fleet service uses to attach its metrics to a
// home another layer assembled. It must be called before the first Ingest;
// the callback runs synchronously from Ingest/Close like cfg.OnVerdict.
func (h *Home) SetOnVerdict(fn func(adm.Verdict)) error {
	if h.res.Slots != 0 || h.closed {
		return errors.New("stream: SetOnVerdict after streaming began")
	}
	h.cfg.OnVerdict = fn
	return nil
}

// Ingest advances the pipeline by one frame and returns the controller's
// action event for the slot (its Demands slice is controller scratch, valid
// until the next Ingest). Frames must arrive in stream order; the runtime
// cross-checks the frame's (day, slot) against the stepper's position so
// transport bugs surface as errors, not silent divergence.
func (h *Home) Ingest(s *Slot) (Action, error) {
	if h.closed {
		return Action{}, errors.New("stream: Ingest after Close")
	}
	if s.Day != h.sim.Day() || s.Index != h.sim.SlotOfDay() {
		return Action{}, fmt.Errorf("stream: home %s: frame (%d,%d) arrived at stepper position (%d,%d)",
			h.cfg.ID, s.Day, s.Index, h.sim.Day(), h.sim.SlotOfDay())
	}
	occ, appl := len(h.actual), len(h.cfg.House.Appliances)
	if len(s.True) != occ || len(s.TrueAppliance) != appl ||
		len(s.Reported) != occ || len(s.ReportedAppliance) != appl {
		return Action{}, fmt.Errorf("stream: home %s: frame sized %dx%d (reported %dx%d), want %dx%d",
			h.cfg.ID, len(s.True), len(s.TrueAppliance), len(s.Reported), len(s.ReportedAppliance), occ, appl)
	}
	if h.cfg.Injector != nil {
		h.cfg.Injector.Rewrite(s)
	}
	if h.det != nil {
		for o := range s.Reported {
			v, ok, err := h.det.Observe(s.Day, s.Index, o, s.Reported[o].Zone, s.Reported[o].Activity)
			if err != nil {
				return Action{}, err
			}
			if ok {
				h.recordVerdict(v)
			}
		}
		if h.nat != nil {
			for o := range s.True {
				e, ok, err := h.nat.Observe(s.Day, s.Index, o, s.True[o].Zone, s.True[o].Activity)
				if err != nil {
					return Action{}, err
				}
				if ok {
					h.recordNatural(e)
				}
			}
			// Entering day d closes every day d-1 episode on both streams,
			// so earlier days are ready to label.
			if s.Index == 0 && s.Day > 0 {
				h.resolveDaysBelow(s.Day)
			}
		}
	}
	for o := range s.Reported {
		h.believed[o] = hvac.OccupantObs{Zone: s.Reported[o].Zone, Activity: s.Reported[o].Activity}
		h.actual[o] = hvac.OccupantObs{Zone: s.True[o].Zone, Activity: s.True[o].Activity}
	}
	h.in = hvac.StepInput{
		OutdoorTempF:      s.OutdoorTempF,
		OutdoorCO2PPM:     s.OutdoorCO2PPM,
		Believed:          h.believed,
		BelievedAppliance: s.ReportedAppliance,
		ActualOccupants:   h.actual,
		ActualAppliance:   s.TrueAppliance,
	}
	rep := h.sim.Step(h.in)
	if s.Index == 0 {
		h.res.Days++
	}
	h.res.Slots++
	h.res.SensorEvents += int64(s.SensorEvents())
	h.res.ActionEvents += int64(len(rep.Demands))
	return Action{
		Home:    h.cfg.ID,
		Day:     rep.Day,
		Index:   rep.Slot,
		Demands: rep.Demands,
		KWh:     rep.KWh,
		CostUSD: rep.CostUSD,
	}, nil
}

// Close seals open episodes, resolves the detection ledger, and returns the
// final accounting.
func (h *Home) Close() (HomeResult, error) {
	if h.closed {
		return HomeResult{}, errors.New("stream: double Close")
	}
	h.closed = true
	if h.det != nil {
		for _, v := range h.det.Flush() {
			h.recordVerdict(v)
		}
		if h.nat != nil {
			for _, e := range h.nat.Flush() {
				h.recordNatural(e)
			}
			h.resolveDaysBelow(int(^uint(0) >> 1)) // all days
		}
	}
	h.res.Sim = h.sim.Result()
	return h.res, nil
}

// recordVerdict counts a closed reported episode and, under attack,
// ledgers it for injection labelling.
func (h *Home) recordVerdict(v adm.Verdict) {
	h.res.Verdicts++
	if v.Anomalous {
		h.res.Anomalies++
	}
	if h.cfg.OnVerdict != nil {
		h.cfg.OnVerdict(v)
	}
	if h.verdicts != nil {
		h.verdicts[v.Episode.Day] = append(h.verdicts[v.Episode.Day], v)
	}
}

// recordNatural ledgers a truth-stream episode for injection labelling.
func (h *Home) recordNatural(e aras.Episode) {
	day := h.natural[e.Day]
	if day == nil {
		day = make(map[[4]int]bool)
		h.natural[e.Day] = day
	}
	day[[4]int{e.Occupant, int(e.Zone), e.ArrivalSlot, e.Duration}] = true
}

// resolveDaysBelow labels every ledgered day < bound: a reported episode
// absent from the day's natural set is an injection (the batch
// DayReportedEpisodes semantics), and flagged injections mark the day
// detected.
func (h *Home) resolveDaysBelow(bound int) {
	var days []int
	for d := range h.verdicts {
		if d < bound {
			days = append(days, d)
		}
	}
	sort.Ints(days)
	for _, d := range days {
		nat := h.natural[d]
		detected := false
		for _, v := range h.verdicts[d] {
			key := [4]int{v.Episode.Occupant, int(v.Episode.Zone), v.Episode.ArrivalSlot, v.Episode.Duration}
			if nat[key] {
				continue // occurs in that occupant's truth: ordinary FP surface, not an injection
			}
			h.res.Injected++
			if v.Anomalous {
				h.res.Flagged++
				detected = true
			}
		}
		if detected {
			h.res.DetectedDays++
		}
		delete(h.verdicts, d)
		delete(h.natural, d)
	}
	// Natural-only days (no reported verdicts) can linger; drop any below
	// the bound so the ledger stays bounded.
	for d := range h.natural {
		if d < bound {
			delete(h.natural, d)
		}
	}
}
