package stream

import (
	"fmt"
	"sync"
)

// CheckpointSink serializes checkpoint writes onto a single background
// goroutine, so a day boundary on the drive hot path costs an enqueue
// instead of an encode-fsync round trip. Durability semantics shift from
// "persisted at the day boundary" to "persisted by the next flush barrier":
// the supervisor flushes before any decision that depends on disk state
// (restoring after a failure, declaring a home complete, draining a shard),
// which is exactly when staleness would be observable. Write errors are
// recorded per home and surface at that home's next Flush.
type CheckpointSink struct {
	dir string
	ch  chan *Checkpoint

	// lifeMu fences Save's channel send against Close's channel close.
	lifeMu sync.RWMutex
	closed bool

	mu      sync.Mutex
	cond    *sync.Cond
	pending int
	errs    map[string]error

	done chan struct{}
}

// NewCheckpointSink starts a sink writing into dir.
func NewCheckpointSink(dir string) *CheckpointSink {
	s := &CheckpointSink{
		dir:  dir,
		ch:   make(chan *Checkpoint, 64),
		errs: make(map[string]error),
		done: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

func (s *CheckpointSink) run() {
	defer close(s.done)
	for ck := range s.ch {
		err := SaveCheckpoint(s.dir, ck)
		s.mu.Lock()
		if err != nil && s.errs[ck.Home] == nil {
			s.errs[ck.Home] = err
		}
		s.pending--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// Save enqueues a checkpoint write. The caller must not mutate ck after
// handing it over (the drive paths allocate a fresh Checkpoint per day
// boundary, so this holds by construction).
func (s *CheckpointSink) Save(ck *Checkpoint) error {
	s.lifeMu.RLock()
	defer s.lifeMu.RUnlock()
	if s.closed {
		return fmt.Errorf("stream: checkpoint sink closed")
	}
	s.mu.Lock()
	s.pending++
	s.mu.Unlock()
	s.ch <- ck
	return nil
}

// Flush blocks until every enqueued write has landed, then reports and
// clears the given home's recorded write error, if any. An empty homeID
// barriers without consuming any error.
func (s *CheckpointSink) Flush(homeID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 {
		s.cond.Wait()
	}
	if homeID == "" {
		return nil
	}
	err := s.errs[homeID]
	delete(s.errs, homeID)
	return err
}

// Close drains the queue, stops the worker, and returns the first still
// unclaimed write error. Idempotent; Save after Close errors.
func (s *CheckpointSink) Close() error {
	s.lifeMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.lifeMu.Unlock()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	for home, err := range s.errs {
		if err != nil {
			return fmt.Errorf("stream: checkpoint %s: %w", home, err)
		}
	}
	return nil
}
