package stream

import (
	"sync/atomic"
	"time"
)

// Clock abstracts every wait the fleet runtime performs — chaos delay
// faults, supervised-retry backoff, and fleetd's retry timers — so a test
// or benchmark can substitute virtual time. Real wall-clock time is the
// default everywhere; the live fleetd service keeps it.
type Clock interface {
	// Sleep blocks the caller for d (no-op for non-positive d).
	Sleep(d time.Duration)
	// AfterFunc schedules f to run once d has elapsed.
	AfterFunc(d time.Duration, f func())
}

// realClock is the wall-clock Clock.
type realClock struct{}

func (realClock) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (realClock) AfterFunc(d time.Duration, f func()) { time.AfterFunc(d, f) }

// RealClock is the default Clock: time.Sleep and time.AfterFunc.
var RealClock Clock = realClock{}

// VirtualClock is a deterministic logical clock: every wait returns
// immediately and only advances an accounting counter, so a chaos run with
// delay faults and retry backoff is compute-bound instead of wall-clock
// bound. The fault schedule itself never reads the clock — it is a pure
// function of (config, home, attempt, day) — so results under VirtualClock
// are byte-identical to results under RealClock.
type VirtualClock struct {
	advanced atomic.Int64
}

// NewVirtualClock returns a virtual clock starting at zero elapsed time.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Sleep advances virtual time by d and returns immediately.
func (c *VirtualClock) Sleep(d time.Duration) {
	if d > 0 {
		c.advanced.Add(int64(d))
	}
}

// AfterFunc advances virtual time by d and runs f on its own goroutine
// immediately — a virtual-time wait never holds real work back.
func (c *VirtualClock) AfterFunc(d time.Duration, f func()) {
	if d > 0 {
		c.advanced.Add(int64(d))
	}
	go f()
}

// Advanced reports the total virtual time waited so far — the wall-clock
// cost the run would have paid under RealClock sleeps.
func (c *VirtualClock) Advanced() time.Duration {
	return time.Duration(c.advanced.Load())
}

// clockOrReal resolves a possibly-nil Clock to the wall-clock default.
func clockOrReal(c Clock) Clock {
	if c == nil {
		return RealClock
	}
	return c
}
