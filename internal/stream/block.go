package stream

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// DayBlock is one whole home-day of sensor traffic in struct-of-arrays
// layout: parallel per-slot columns of weather, per-occupant zones and
// activities, and per-appliance statuses, each aras.SlotsPerDay long. It is
// the streaming hot path's frame — a source emits one block per home-day,
// the injector rewrites its reported columns in place, and Home.IngestDay
// advances detection and the HVAC plant over the contiguous columns without
// materializing 1440 per-slot Slot frames. Slot decodes a block back to
// frame granularity for callers that need it.
type DayBlock struct {
	// Home identifies the emitting home on the fleet bus.
	Home string
	// Day is the day index the block covers; its slots are (Day, 0..1439).
	Day int
	// TempF and CO2PPM are the day's outdoor weather columns.
	TempF  []float64
	CO2PPM []float64
	// TrueZone[o][t] / TrueAct[o][t] are occupant o's ground truth;
	// TrueAppliance[a][t] the real electrical state of appliance a.
	TrueZone      [][]home.ZoneID
	TrueAct       [][]home.ActivityID
	TrueAppliance [][]bool
	// RepZone/RepAct/RepAppliance are the reported (believed) columns; they
	// mirror the truth until an Injector falsifies them.
	RepZone      [][]home.ZoneID
	RepAct       [][]home.ActivityID
	RepAppliance [][]bool
}

// BlockSource is implemented by sources that can emit whole home-days in
// struct-of-arrays layout. NextBlock fills dst (reusing its backing storage
// where possible) and returns io.EOF at end of stream; blocks are emitted in
// day order and only from a day boundary — a source whose per-slot cursor
// sits mid-day refuses to coarsen. Both repository sources implement it, so
// block-mode pipelines need no capability negotiation with the generator or
// trace layers.
type BlockSource interface {
	NextBlock(dst *DayBlock) error
}

// ensure sizes the block's columns for a home with the given occupant and
// appliance counts, reusing backing storage where the shape already fits.
func (b *DayBlock) ensure(occupants, appliances int) {
	b.TempF = growFloats(b.TempF)
	b.CO2PPM = growFloats(b.CO2PPM)
	b.TrueZone = growZoneCols(b.TrueZone, occupants)
	b.RepZone = growZoneCols(b.RepZone, occupants)
	b.TrueAct = growActCols(b.TrueAct, occupants)
	b.RepAct = growActCols(b.RepAct, occupants)
	b.TrueAppliance = growBoolCols(b.TrueAppliance, appliances)
	b.RepAppliance = growBoolCols(b.RepAppliance, appliances)
}

// shapeErr verifies the block matches a home's occupant/appliance shape with
// full-length columns.
func (b *DayBlock) shapeErr(occupants, appliances int) error {
	if len(b.TempF) != aras.SlotsPerDay || len(b.CO2PPM) != aras.SlotsPerDay {
		return fmt.Errorf("stream: block weather columns sized %d/%d, want %d", len(b.TempF), len(b.CO2PPM), aras.SlotsPerDay)
	}
	if len(b.TrueZone) != occupants || len(b.TrueAct) != occupants ||
		len(b.RepZone) != occupants || len(b.RepAct) != occupants {
		return fmt.Errorf("stream: block occupant columns %d/%d/%d/%d, want %d",
			len(b.TrueZone), len(b.TrueAct), len(b.RepZone), len(b.RepAct), occupants)
	}
	if len(b.TrueAppliance) != appliances || len(b.RepAppliance) != appliances {
		return fmt.Errorf("stream: block appliance columns %d/%d, want %d", len(b.TrueAppliance), len(b.RepAppliance), appliances)
	}
	for o := 0; o < occupants; o++ {
		if len(b.TrueZone[o]) != aras.SlotsPerDay || len(b.TrueAct[o]) != aras.SlotsPerDay ||
			len(b.RepZone[o]) != aras.SlotsPerDay || len(b.RepAct[o]) != aras.SlotsPerDay {
			return fmt.Errorf("stream: block occupant %d column not %d slots", o, aras.SlotsPerDay)
		}
	}
	for a := 0; a < appliances; a++ {
		if len(b.TrueAppliance[a]) != aras.SlotsPerDay || len(b.RepAppliance[a]) != aras.SlotsPerDay {
			return fmt.Errorf("stream: block appliance %d column not %d slots", a, aras.SlotsPerDay)
		}
	}
	return nil
}

// mirrorTruth copies the ground-truth columns into the reported view (the
// benign state an Injector then perturbs).
func (b *DayBlock) mirrorTruth() {
	for o := range b.TrueZone {
		copy(b.RepZone[o], b.TrueZone[o])
		copy(b.RepAct[o], b.TrueAct[o])
	}
	for a := range b.TrueAppliance {
		copy(b.RepAppliance[a], b.TrueAppliance[a])
	}
}

// Slot decodes minute t of the block into a per-slot frame — the shim that
// serves frame-granularity consumers from block-granularity transport.
func (b *DayBlock) Slot(dst *Slot, t int) {
	dst.ensure(len(b.TrueZone), len(b.TrueAppliance))
	dst.Home = b.Home
	dst.Day = b.Day
	dst.Index = t
	dst.OutdoorTempF = b.TempF[t]
	dst.OutdoorCO2PPM = b.CO2PPM[t]
	for o := range b.TrueZone {
		dst.True[o] = OccupantReading{Zone: b.TrueZone[o][t], Activity: b.TrueAct[o][t]}
		dst.Reported[o] = OccupantReading{Zone: b.RepZone[o][t], Activity: b.RepAct[o][t]}
	}
	for a := range b.TrueAppliance {
		dst.TrueAppliance[a] = b.TrueAppliance[a][t]
		dst.ReportedAppliance[a] = b.RepAppliance[a][t]
	}
}

func growFloats(b []float64) []float64 {
	if cap(b) < aras.SlotsPerDay {
		return make([]float64, aras.SlotsPerDay)
	}
	return b[:aras.SlotsPerDay]
}

func growZoneCols(cols [][]home.ZoneID, n int) [][]home.ZoneID {
	if cap(cols) < n {
		cols = make([][]home.ZoneID, n)
	}
	cols = cols[:n]
	for i := range cols {
		if cap(cols[i]) < aras.SlotsPerDay {
			cols[i] = make([]home.ZoneID, aras.SlotsPerDay)
		} else {
			cols[i] = cols[i][:aras.SlotsPerDay]
		}
	}
	return cols
}

func growActCols(cols [][]home.ActivityID, n int) [][]home.ActivityID {
	if cap(cols) < n {
		cols = make([][]home.ActivityID, n)
	}
	cols = cols[:n]
	for i := range cols {
		if cap(cols[i]) < aras.SlotsPerDay {
			cols[i] = make([]home.ActivityID, aras.SlotsPerDay)
		} else {
			cols[i] = cols[i][:aras.SlotsPerDay]
		}
	}
	return cols
}

func growBoolCols(cols [][]bool, n int) [][]bool {
	if cap(cols) < n {
		cols = make([][]bool, n)
	}
	cols = cols[:n]
	for i := range cols {
		if cap(cols[i]) < aras.SlotsPerDay {
			cols[i] = make([]bool, aras.SlotsPerDay)
		} else {
			cols[i] = cols[i][:aras.SlotsPerDay]
		}
	}
	return cols
}
