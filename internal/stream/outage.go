package stream

import (
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
)

// OutageSchedule describes a broker-outage chaos campaign: every Every (with
// deterministic jitter) the broker is suspended for Down, Count times total
// (0 = until stopped). Session-resume clients must ride every outage out —
// the schedule always resumes the broker before finishing, so the bus is
// never left dark.
type OutageSchedule struct {
	// Every is the nominal gap between outage onsets. The actual gap is
	// jittered deterministically from Seed into [Every/2, Every*3/2) so
	// outages don't phase-lock with day boundaries.
	Every time.Duration
	// Down is how long each outage lasts before the broker restarts.
	Down time.Duration
	// Count bounds the number of outages; 0 repeats until Stop.
	Count int
	// Seed drives the jitter sequence; the same seed replays the same
	// outage timeline.
	Seed uint64
}

// BrokerOutages is a running outage campaign against one broker.
type BrokerOutages struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu      sync.Mutex
	outages int
}

// StartBrokerOutages launches a background schedule of Suspend/Resume cycles
// against b. Waits run on clock (nil = wall clock); under a non-real clock
// waits return immediately, so chaos tests can cycle the broker as fast as
// the fleet can reconnect. Call Stop to end the campaign — it always leaves
// the broker resumed.
func StartBrokerOutages(b *mqtt.Broker, sched OutageSchedule, clock Clock) *BrokerOutages {
	clock = clockOrReal(clock)
	o := &BrokerOutages{
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go o.run(b, sched, clock)
	return o
}

// run executes the outage timeline. splitmix64 over Seed gives the jitter
// stream — deterministic, so a failing chaos run replays exactly.
func (o *BrokerOutages) run(b *mqtt.Broker, sched OutageSchedule, clock Clock) {
	defer close(o.done)
	// However the campaign exits, leave the bus up.
	defer b.Resume() //nolint:errcheck // best-effort: Stop must not leave the broker dark

	state := sched.Seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for n := 0; sched.Count == 0 || n < sched.Count; n++ {
		gap := sched.Every
		if gap > 0 {
			gap = gap/2 + time.Duration(next()%uint64(gap))
		}
		if !o.wait(gap, clock) {
			return
		}
		b.Suspend()
		o.mu.Lock()
		o.outages++
		o.mu.Unlock()
		stopped := !o.wait(sched.Down, clock)
		if err := b.Resume(); err != nil {
			return // broker closed underneath the campaign
		}
		if stopped {
			return
		}
	}
}

// wait blocks for d on the campaign's clock, returning false if Stop fired.
// Under the real clock the wait itself is interruptible; virtual clocks
// return immediately, so the stop check after the sleep suffices.
func (o *BrokerOutages) wait(d time.Duration, clock Clock) bool {
	if clock == RealClock {
		select {
		case <-o.stop:
			return false
		case <-time.After(d):
			return true
		}
	}
	clock.Sleep(d)
	select {
	case <-o.stop:
		return false
	default:
		return true
	}
}

// Outages reports how many Suspend cycles have fired so far.
func (o *BrokerOutages) Outages() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.outages
}

// Stop ends the campaign and blocks until the broker is resumed. Safe to
// call more than once.
func (o *BrokerOutages) Stop() {
	o.stopOnce.Do(func() { close(o.stop) })
	<-o.done
}
