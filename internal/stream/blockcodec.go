package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// The binary day-block frame is the fleet bus's hot-path encoding: one
// fixed-layout frame per home-day instead of aras.SlotsPerDay JSON slot
// envelopes. Its integrity scheme is the checkpoint codec's — an 8-byte
// versioned magic, a big-endian u32 payload length, and a CRC-32 (IEEE) of
// the payload — so both persisted and in-flight state share one corruption
// model: bad frames error cleanly, never decode garbage.
//
// Payload layout (all integers big-endian):
//
//	u32 epoch      publishing attempt tag (stale-epoch discard)
//	u32 day        day index the block covers
//	u16 homeLen    then homeLen bytes of home ID
//	u16 occupants
//	u16 appliances
//	u16 slots      must equal aras.SlotsPerDay
//	TempF          slots x u64 (IEEE-754 bits)
//	CO2PPM         slots x u64
//	per occupant   TrueZone, TrueAct, RepZone, RepAct: slots x i16 each
//	per appliance  TrueAppliance, RepAppliance: packed bitset, (slots+7)/8 bytes each
const blockFrameVersion = 1

// blockMagic prefixes every binary day-block frame; its first byte also
// discriminates block frames from JSON control traffic on a shared topic.
var blockMagic = [8]byte{'S', 'H', 'B', 'L', 'O', 'K', '0' + blockFrameVersion, '\n'}

// maxBlockFrame bounds a frame so a corrupted length header cannot force a
// huge allocation (and matches the transport's own frame cap).
const maxBlockFrame = 1 << 20

// maxBlockCols bounds the occupant/appliance column counts a decoder will
// accept; real houses have a handful of each.
const maxBlockCols = 1 << 12

// ErrBadBlockFrame is returned when a binary day-block frame fails
// structural validation: bad magic, truncation, checksum mismatch, or
// out-of-range fields. Corrupt frames must error cleanly, never panic.
var ErrBadBlockFrame = errors.New("stream: corrupt day-block frame")

// IsBlockFrame reports whether a payload opens with the day-block magic —
// the cheap classification receivers and the fleet monitor use to tell
// block frames from JSON control frames.
func IsBlockFrame(p []byte) bool {
	return len(p) >= len(blockMagic) && string(p[:len(blockMagic)]) == string(blockMagic[:])
}

// AppendBlockFrame appends the binary wire encoding of the block (tagged
// with the publishing epoch) to dst and returns the extended slice. Reusing
// dst's storage across calls keeps a steady-state publisher allocation-free.
func AppendBlockFrame(dst []byte, b *DayBlock, epoch int) ([]byte, error) {
	if err := b.shapeErr(len(b.TrueZone), len(b.TrueAppliance)); err != nil {
		return dst, err
	}
	occ, appl := len(b.TrueZone), len(b.TrueAppliance)
	if occ > maxBlockCols || appl > maxBlockCols {
		return dst, fmt.Errorf("stream: block with %d/%d columns exceeds frame limit", occ, appl)
	}
	if epoch < 0 || epoch > math.MaxInt32 {
		return dst, fmt.Errorf("stream: block epoch %d out of frame range", epoch)
	}
	if b.Day < 0 || b.Day > math.MaxInt32 {
		return dst, fmt.Errorf("stream: block day %d out of frame range", b.Day)
	}
	if len(b.Home) > math.MaxUint16 {
		return dst, fmt.Errorf("stream: home ID %d bytes exceeds frame limit", len(b.Home))
	}
	payloadLen := blockPayloadLen(len(b.Home), occ, appl)
	if payloadLen > maxBlockFrame {
		return dst, fmt.Errorf("stream: block payload %d bytes exceeds limit", payloadLen)
	}

	base := len(dst)
	dst = append(dst, blockMagic[:]...)
	dst = appendU32(dst, uint32(payloadLen))
	dst = appendU32(dst, 0) // CRC backfilled below
	body := len(dst)

	dst = appendU32(dst, uint32(epoch))
	dst = appendU32(dst, uint32(b.Day))
	dst = appendU16(dst, uint16(len(b.Home)))
	dst = append(dst, b.Home...)
	dst = appendU16(dst, uint16(occ))
	dst = appendU16(dst, uint16(appl))
	dst = appendU16(dst, uint16(aras.SlotsPerDay))
	for _, v := range b.TempF {
		dst = appendU64(dst, math.Float64bits(v))
	}
	for _, v := range b.CO2PPM {
		dst = appendU64(dst, math.Float64bits(v))
	}
	for o := 0; o < occ; o++ {
		var err error
		if dst, err = appendZoneCol(dst, b.TrueZone[o]); err != nil {
			return dst[:base], err
		}
		if dst, err = appendActCol(dst, b.TrueAct[o]); err != nil {
			return dst[:base], err
		}
		if dst, err = appendZoneCol(dst, b.RepZone[o]); err != nil {
			return dst[:base], err
		}
		if dst, err = appendActCol(dst, b.RepAct[o]); err != nil {
			return dst[:base], err
		}
	}
	for a := 0; a < appl; a++ {
		dst = appendBitset(dst, b.TrueAppliance[a])
		dst = appendBitset(dst, b.RepAppliance[a])
	}
	if got := len(dst) - body; got != payloadLen {
		return dst[:base], fmt.Errorf("stream: block payload sized %d, computed %d", got, payloadLen)
	}
	binary.BigEndian.PutUint32(dst[base+12:base+16], crc32.ChecksumIEEE(dst[body:]))
	return dst, nil
}

// DecodeBlockFrame decodes a binary day-block frame into dst (reusing its
// column storage) and returns the frame's publishing epoch. Every
// structural defect — bad magic, truncation, trailing bytes, checksum
// mismatch, out-of-range fields — errors with ErrBadBlockFrame; the decoder
// never panics and never returns a half-filled block as valid.
func DecodeBlockFrame(dst *DayBlock, data []byte) (int, error) {
	if len(data) < 16 {
		return 0, fmt.Errorf("%w: %d-byte frame", ErrBadBlockFrame, len(data))
	}
	if !IsBlockFrame(data) {
		return 0, fmt.Errorf("%w: bad magic %q", ErrBadBlockFrame, data[:8])
	}
	n := binary.BigEndian.Uint32(data[8:12])
	if n > maxBlockFrame {
		return 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadBlockFrame, n)
	}
	if int(n) != len(data)-16 {
		return 0, fmt.Errorf("%w: payload length %d in a %d-byte frame", ErrBadBlockFrame, n, len(data))
	}
	payload := data[16:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(data[12:16]) {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrBadBlockFrame)
	}

	cur := reader{buf: payload}
	epoch := int(cur.u32())
	day := int(cur.u32())
	homeLen := int(cur.u16())
	homeID := cur.bytes(homeLen)
	occ := int(cur.u16())
	appl := int(cur.u16())
	slots := int(cur.u16())
	if cur.bad {
		return 0, fmt.Errorf("%w: truncated header", ErrBadBlockFrame)
	}
	if slots != aras.SlotsPerDay {
		return 0, fmt.Errorf("%w: %d slots per day, want %d", ErrBadBlockFrame, slots, aras.SlotsPerDay)
	}
	if occ > maxBlockCols || appl > maxBlockCols {
		return 0, fmt.Errorf("%w: %d/%d columns exceed limit", ErrBadBlockFrame, occ, appl)
	}
	if want := blockPayloadLen(homeLen, occ, appl); want != len(payload) {
		return 0, fmt.Errorf("%w: %d-byte payload for shape needing %d", ErrBadBlockFrame, len(payload), want)
	}

	dst.ensure(occ, appl)
	dst.Home = string(homeID)
	dst.Day = day
	for t := range dst.TempF {
		dst.TempF[t] = math.Float64frombits(cur.u64())
	}
	for t := range dst.CO2PPM {
		dst.CO2PPM[t] = math.Float64frombits(cur.u64())
	}
	for o := 0; o < occ; o++ {
		cur.zoneCol(dst.TrueZone[o])
		cur.actCol(dst.TrueAct[o])
		cur.zoneCol(dst.RepZone[o])
		cur.actCol(dst.RepAct[o])
	}
	for a := 0; a < appl; a++ {
		cur.bitset(dst.TrueAppliance[a])
		cur.bitset(dst.RepAppliance[a])
	}
	if cur.bad || len(cur.buf) != cur.off {
		return 0, fmt.Errorf("%w: truncated or trailing column data", ErrBadBlockFrame)
	}
	return epoch, nil
}

// blockPayloadLen computes the exact payload size for a block shape.
func blockPayloadLen(homeLen, occ, appl int) int {
	const header = 4 + 4 + 2 + 2 + 2 + 2 // epoch, day, homeLen, occ, appl, slots
	weather := 2 * aras.SlotsPerDay * 8
	occCols := occ * 4 * aras.SlotsPerDay * 2
	applCols := appl * 2 * ((aras.SlotsPerDay + 7) / 8)
	return header + homeLen + weather + occCols + applCols
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendZoneCol(dst []byte, col []home.ZoneID) ([]byte, error) {
	for _, z := range col {
		if z < math.MinInt16 || z > math.MaxInt16 {
			return dst, fmt.Errorf("stream: zone ID %d out of frame range", z)
		}
		dst = appendU16(dst, uint16(int16(z)))
	}
	return dst, nil
}

func appendActCol(dst []byte, col []home.ActivityID) ([]byte, error) {
	for _, a := range col {
		if a < math.MinInt16 || a > math.MaxInt16 {
			return dst, fmt.Errorf("stream: activity ID %d out of frame range", a)
		}
		dst = appendU16(dst, uint16(int16(a)))
	}
	return dst, nil
}

func appendBitset(dst []byte, col []bool) []byte {
	var acc byte
	for t, on := range col {
		if on {
			acc |= 1 << (t & 7)
		}
		if t&7 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if len(col)&7 != 0 {
		dst = append(dst, acc)
	}
	return dst
}

// reader is a bounds-checked big-endian cursor; any overrun latches bad
// instead of panicking, so the decoder validates once at the end.
type reader struct {
	buf []byte
	off int
	bad bool
}

func (r *reader) take(n int) []byte {
	if r.bad || n < 0 || len(r.buf)-r.off < n {
		r.bad = true
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) bytes(n int) []byte { return r.take(n) }

func (r *reader) zoneCol(col []home.ZoneID) {
	b := r.take(2 * len(col))
	if b == nil {
		return
	}
	for t := range col {
		col[t] = home.ZoneID(int16(binary.BigEndian.Uint16(b[2*t:])))
	}
}

func (r *reader) actCol(col []home.ActivityID) {
	b := r.take(2 * len(col))
	if b == nil {
		return
	}
	for t := range col {
		col[t] = home.ActivityID(int16(binary.BigEndian.Uint16(b[2*t:])))
	}
}

func (r *reader) bitset(col []bool) {
	b := r.take((len(col) + 7) / 8)
	if b == nil {
		return
	}
	for t := range col {
		col[t] = b[t>>3]&(1<<(t&7)) != 0
	}
}
