// Package stream is the incremental runtime of the SHATTER reproduction:
// a typed per-slot event model over which trace generation, HVAC control,
// attack injection, and anomaly detection all advance minute-by-minute
// instead of materializing whole multi-day traces. Every streaming path is
// equivalence-locked to its batch counterpart — replaying a house through
// the stream reproduces the batch trace, controller costs, and ADM verdicts
// byte-for-byte — so the batch experiment suite and the fleet service are
// two shells over the same core.
//
// The layer stack:
//
//	Source    → per-slot frames (aras.Generator or a recorded Trace)
//	Injector  → applies an attack.Plan to the frames in flight
//	Home      → hvac.Sim stepper + adm.Detector per home
//	Fleet     → N homes over a worker pool, optionally via the MQTT broker
package stream

import (
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// OccupantReading is one occupant's sensed location and activity at a slot.
type OccupantReading struct {
	Zone     home.ZoneID     `json:"z"`
	Activity home.ActivityID `json:"a"`
}

// Slot is one minute of a home's sensor traffic — the frame a deployment
// publishes on its per-home topic each control cycle. It carries the ground
// truth alongside the reported view: the two coincide until an Injector
// falsifies the reported half (sensor spoofing never changes the truth, and
// really-triggered appliances change both).
type Slot struct {
	// Home identifies the emitting home on the fleet bus.
	Home string `json:"home,omitempty"`
	// Day and Index locate the slot (Index is the minute of day).
	Day   int `json:"day"`
	Index int `json:"slot"`
	// OutdoorTempF and OutdoorCO2PPM are the slot's weather.
	OutdoorTempF  float64 `json:"tempF"`
	OutdoorCO2PPM float64 `json:"co2"`
	// True is the ground-truth occupancy; TrueAppliance the real electrical
	// state of each appliance.
	True          []OccupantReading `json:"true"`
	TrueAppliance []bool            `json:"trueAppl"`
	// Reported is what the sensors claim; ReportedAppliance the believed
	// appliance statuses (forged δ^D statuses included under attack).
	Reported          []OccupantReading `json:"rep"`
	ReportedAppliance []bool            `json:"repAppl"`
}

// Action is a controller's per-slot decision event: the airflow demands the
// supervisory controller publishes back to the zone actuators, with the
// slot's metered energy and cost.
type Action struct {
	Home    string        `json:"home,omitempty"`
	Day     int           `json:"day"`
	Index   int           `json:"slot"`
	Demands []hvac.Demand `json:"demands"`
	KWh     float64       `json:"kWh"`
	CostUSD float64       `json:"costUSD"`
}

// ensure sizes the slot's slices for a home with the given occupant and
// appliance counts, reusing backing storage.
func (s *Slot) ensure(occupants, appliances int) {
	s.True = growReadings(s.True, occupants)
	s.Reported = growReadings(s.Reported, occupants)
	s.TrueAppliance = growBools(s.TrueAppliance, appliances)
	s.ReportedAppliance = growBools(s.ReportedAppliance, appliances)
}

// mirrorTruth copies the ground truth into the reported view (the benign
// state an Injector then perturbs).
func (s *Slot) mirrorTruth() {
	copy(s.Reported, s.True)
	copy(s.ReportedAppliance, s.TrueAppliance)
}

// SensorEvents counts the individual sensor measurements the frame carries
// (occupancy readings plus appliance statuses) — the unit the fleet
// throughput metrics report.
func (s *Slot) SensorEvents() int {
	return len(s.Reported) + len(s.ReportedAppliance)
}

func growReadings(b []OccupantReading, n int) []OccupantReading {
	if cap(b) < n {
		return make([]OccupantReading, n)
	}
	return b[:n]
}

func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}
