package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// Checkpoint is one home's serialized progress at a day boundary: the
// stream cursor (Days completed; the next frame is (Days, 0)), the
// incremental HVAC plant state, the online detector's and the truth
// episodizer's open stays, and the injection-labelling ledger. A home
// restored from a checkpoint and driven to end-of-stream produces results
// byte-identical to one that ran uninterrupted — the resilience layer's
// equivalence lock.
type Checkpoint struct {
	Version int    `json:"version"`
	Home    string `json:"home"`
	// Days counts completed days; the restored stream resumes at (Days, 0).
	Days int           `json:"days"`
	Sim  hvac.SimState `json:"sim"`
	// Detector and Natural carry the reported- and truth-stream episodizer
	// states; both are nil for undefended homes.
	Detector *adm.EpisodizerState `json:"detector,omitempty"`
	Natural  *adm.EpisodizerState `json:"natural,omitempty"`
	// Verdicts and NaturalLedger are the unresolved per-day injection
	// labelling ledger (days whose episodes have not all closed yet).
	Verdicts      map[int][]adm.Verdict `json:"verdicts,omitempty"`
	NaturalLedger map[int][][4]int      `json:"natural_ledger,omitempty"`
	// Result is the accounting through the last completed day (its Sim
	// field stays zero until Close).
	Result HomeResult `json:"result"`
}

// checkpointVersion is bumped when the serialized layout changes; readers
// reject other versions instead of guessing.
const checkpointVersion = 1

// checkpointMagic prefixes every serialized checkpoint.
var checkpointMagic = [8]byte{'S', 'H', 'C', 'K', 'P', 'T', '0' + checkpointVersion, '\n'}

// maxCheckpoint bounds a checkpoint payload so a corrupted length header
// cannot force a huge allocation.
const maxCheckpoint = 64 << 20

// ErrBadCheckpoint is returned when a checkpoint fails structural
// validation: bad magic, truncation, checksum mismatch, or inconsistent
// cursors. Corrupted files must error cleanly, never restore garbage.
var ErrBadCheckpoint = errors.New("stream: corrupt checkpoint")

// ErrCheckpointMidDay is returned when a checkpoint is requested between
// day boundaries.
var ErrCheckpointMidDay = errors.New("stream: checkpoint only at a day boundary")

// Checkpoint captures the home's progress. It is only valid at a day
// boundary — after ingesting the last slot of a day and before the first
// slot of the next — which is where the fleet supervisor snapshots.
func (h *Home) Checkpoint() (*Checkpoint, error) {
	if h.closed {
		return nil, errors.New("stream: checkpoint after Close")
	}
	sim, err := h.sim.Snapshot()
	if err != nil {
		if errors.Is(err, hvac.ErrMidDay) {
			return nil, fmt.Errorf("%w (home %s, day %d slot %d)", ErrCheckpointMidDay, h.cfg.ID, h.sim.Day(), h.sim.SlotOfDay())
		}
		return nil, err
	}
	ck := &Checkpoint{
		Version: checkpointVersion,
		Home:    h.cfg.ID,
		Days:    sim.Day,
		Sim:     sim,
		Result:  h.res,
	}
	ck.Result.Sim = hvac.Result{}
	if h.det != nil {
		st := h.det.Snapshot()
		ck.Detector = &st
	}
	if h.nat != nil {
		st := h.nat.Snapshot()
		ck.Natural = &st
		// The in-memory ledger keeps verdicts in close order and natural keys
		// pre-sorted, so the serialized maps are byte-identical to what the
		// map-backed ledger produced (JSON sorts the day keys).
		ck.Verdicts = make(map[int][]adm.Verdict, len(h.led))
		ck.NaturalLedger = make(map[int][][4]int, len(h.led))
		for i := range h.led {
			l := &h.led[i]
			if len(l.verdicts) > 0 {
				ck.Verdicts[l.day] = append([]adm.Verdict(nil), l.verdicts...)
			}
			if len(l.natural) > 0 {
				ck.NaturalLedger[l.day] = append([][4]int(nil), l.natural...)
			}
		}
	}
	return ck, nil
}

// Restore applies a checkpoint to a freshly constructed Home with the same
// configuration (house, controller, defender, injector). The target must
// not have ingested any frames; structural mismatches error without
// leaving the home half-restored.
func (h *Home) Restore(ck *Checkpoint) error {
	if ck == nil {
		return errors.New("stream: nil checkpoint")
	}
	if h.closed || h.res.Slots != 0 || h.sim.Day() != 0 || h.sim.SlotOfDay() != 0 {
		return errors.New("stream: restore target already streamed")
	}
	if err := validateCheckpoint(ck); err != nil {
		return err
	}
	if ck.Home != h.cfg.ID {
		return fmt.Errorf("%w: checkpoint for home %q applied to %q", ErrBadCheckpoint, ck.Home, h.cfg.ID)
	}
	if (ck.Detector != nil) != (h.det != nil) || (ck.Natural != nil) != (h.nat != nil) {
		return fmt.Errorf("%w: defender/ledger configuration mismatch for home %q", ErrBadCheckpoint, h.cfg.ID)
	}
	// Each component validates its piece fully before mutating, but a
	// failure partway leaves earlier components restored — callers must
	// discard the home on error (the fleet supervisor reopens the job).
	if err := h.sim.Restore(ck.Sim); err != nil {
		return fmt.Errorf("stream: restore %s plant: %w", h.cfg.ID, err)
	}
	if h.det != nil {
		if err := h.det.Restore(*ck.Detector); err != nil {
			return fmt.Errorf("stream: restore %s detector: %w", h.cfg.ID, err)
		}
	}
	if h.nat != nil {
		if err := h.nat.Restore(*ck.Natural); err != nil {
			return fmt.Errorf("stream: restore %s truth episodizer: %w", h.cfg.ID, err)
		}
		days := make([]int, 0, len(ck.Verdicts)+len(ck.NaturalLedger))
		for d := range ck.Verdicts {
			days = append(days, d)
		}
		for d := range ck.NaturalLedger {
			if _, dup := ck.Verdicts[d]; !dup {
				days = append(days, d)
			}
		}
		sort.Ints(days)
		h.led = h.led[:0]
		for _, d := range days {
			l := dayLedger{
				day:      d,
				verdicts: append([]adm.Verdict(nil), ck.Verdicts[d]...),
				natural:  append([][4]int(nil), ck.NaturalLedger[d]...),
			}
			// Serialized key order is untrusted input; binary search at
			// resolution needs it sorted.
			sort.Slice(l.natural, func(i, j int) bool { return keyLess(l.natural[i], l.natural[j]) })
			h.led = append(h.led, l)
		}
	}
	h.res = ck.Result
	h.res.ID = h.cfg.ID
	h.res.Sim = hvac.Result{}
	return nil
}

// validateCheckpoint checks the internal consistency a decoded checkpoint
// must have before any of it is applied.
func validateCheckpoint(ck *Checkpoint) error {
	if ck.Version != checkpointVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, ck.Version, checkpointVersion)
	}
	if ck.Days < 0 || ck.Sim.Day != ck.Days {
		return fmt.Errorf("%w: day cursor %d vs plant day %d", ErrBadCheckpoint, ck.Days, ck.Sim.Day)
	}
	if ck.Result.Days != ck.Days || ck.Result.Slots != int64(ck.Days)*int64(aras.SlotsPerDay) {
		return fmt.Errorf("%w: result covers %d days / %d slots, cursor says %d days", ErrBadCheckpoint, ck.Result.Days, ck.Result.Slots, ck.Days)
	}
	return nil
}

// ckEncPool recycles checkpoint encode buffers: a day-boundary checkpoint
// is ~10KB of JSON per home per day, and the fleet hot path writes one for
// every home-day, so the arena is kept warm instead of reallocated.
var ckEncPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// WriteCheckpoint serializes a checkpoint: magic, payload length, CRC-32,
// then the JSON payload. The trailer-free fixed header lets a reader
// reject truncated or corrupted files before decoding anything. Encoding
// goes through a pooled buffer and reaches w as a single Write.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	buf := ckEncPool.Get().(*bytes.Buffer)
	defer func() {
		if buf.Cap() <= maxCheckpoint {
			buf.Reset()
			ckEncPool.Put(buf)
		}
	}()
	buf.Reset()
	var zero [16]byte
	buf.Write(zero[:]) // header placeholder, patched below
	if err := json.NewEncoder(buf).Encode(ck); err != nil {
		return fmt.Errorf("stream: encode checkpoint: %w", err)
	}
	frame := buf.Bytes()
	payload := frame[16 : len(frame)-1] // Encode appends '\n'; the payload is Marshal's bytes
	if len(payload) > maxCheckpoint {
		return fmt.Errorf("stream: checkpoint payload %d bytes exceeds limit", len(payload))
	}
	copy(frame[:8], checkpointMagic[:])
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(payload))
	_, err := w.Write(frame[:len(frame)-1])
	return err
}

// ReadCheckpoint decodes a serialized checkpoint, rejecting bad magic,
// truncation, oversized payloads, checksum mismatches, malformed JSON, and
// structurally inconsistent state with ErrBadCheckpoint-wrapped errors. It
// never panics and never returns a checkpoint that fails validation.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
	}
	if [8]byte(hdr[:8]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCheckpoint, hdr[:8])
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > maxCheckpoint {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadCheckpoint, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated payload: %v", ErrBadCheckpoint, err)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(hdr[12:16]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadCheckpoint)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(payload, ck); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBadCheckpoint, err)
	}
	if err := validateCheckpoint(ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// CheckpointPath names a home's checkpoint file inside dir; home IDs are
// percent-escaped so procedural IDs ("synth:12x4@55") stay filesystem-safe.
func CheckpointPath(dir, homeID string) string {
	return filepath.Join(dir, url.PathEscape(homeID)+".ckpt")
}

// SaveCheckpoint atomically writes a home's checkpoint under dir (write to
// a temp file, fsync-free rename), so a crash mid-write leaves the previous
// checkpoint intact instead of a torn file.
func SaveCheckpoint(dir string, ck *Checkpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := CheckpointPath(dir, ck.Home)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(tmp, ck); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a home's checkpoint from dir. A missing file is not
// an error — it returns (nil, nil), the "start from scratch" signal — while
// a present-but-corrupt file returns ErrBadCheckpoint.
func LoadCheckpoint(dir, homeID string) (*Checkpoint, error) {
	f, err := os.Open(CheckpointPath(dir, homeID))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := ReadCheckpoint(f)
	if err != nil {
		return nil, err
	}
	if ck.Home != homeID {
		return nil, fmt.Errorf("%w: file for %q holds checkpoint of %q", ErrBadCheckpoint, homeID, ck.Home)
	}
	return ck, nil
}

// RemoveCheckpoint deletes a home's checkpoint; missing files are fine.
func RemoveCheckpoint(dir, homeID string) error {
	err := os.Remove(CheckpointPath(dir, homeID))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// DaySeeker is implemented by sources that can reposition to the start of
// a day — the restore path's way of fast-forwarding a freshly opened
// source to a checkpoint's cursor. Deterministic sources (the generator
// replays and discards the skipped days, evolving its RNG streams exactly
// as an uninterrupted run would; traces jump in O(1)) make the resumed
// stream byte-identical to the uninterrupted one.
type DaySeeker interface {
	SeekDay(day int) error
}
