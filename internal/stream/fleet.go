package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/pool"
)

// Job is one home's entry in a fleet run. Open constructs the home's source
// and runtime lazily on the worker that picks the job up, so a thousand-home
// fleet does not hold a thousand idle pipelines.
type Job struct {
	ID   string
	Open func() (Source, *Home, error)
}

// FleetOptions configures a fleet run.
type FleetOptions struct {
	// Workers bounds the pool. 0 uses one worker per CPU; 1 forces
	// sequential execution. Per-home results are deterministic either way.
	Workers int
	// Broker, when non-empty, routes every home's frames through the MQTT
	// broker at this address: each home publishes on home/<id>/sensor and
	// its runtime consumes the subscribed stream, with per-home
	// backpressure from the bounded subscription buffer and TCP flow
	// control. A fleet-wide monitor subscribed to home/+/sensor tallies the
	// bus traffic.
	Broker string
}

// FleetStats aggregates a fleet run.
type FleetStats struct {
	Homes        int           `json:"homes"`
	Days         int64         `json:"days"`
	Slots        int64         `json:"slots"`
	SensorEvents int64         `json:"sensor_events"`
	ActionEvents int64         `json:"action_events"`
	Verdicts     int64         `json:"verdicts"`
	Events       int64         `json:"events"`
	TotalKWh     float64       `json:"total_kwh"`
	TotalCostUSD float64       `json:"total_cost_usd"`
	Injected     int64         `json:"injected"`
	Flagged      int64         `json:"flagged"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	HomesPerSec  float64       `json:"homes_per_sec"`
	EventsPerSec float64       `json:"events_per_sec"`
	// BusFrames counts the frames the fleet-wide home/+/sensor monitor saw
	// (zero without a broker).
	BusFrames int64 `json:"bus_frames"`
}

// FleetResult is a fleet run's outcome: per-home results in job order plus
// the aggregate. Everything except Stats' wall-clock fields is
// deterministic for a fixed job list, independent of Workers and transport.
type FleetResult struct {
	Homes []HomeResult
	Stats FleetStats
}

// RunFleet drives every job's pipeline to end-of-stream across a bounded
// worker pool. Each home's pipeline is sequential (pull-based, so the
// source, injector, detector, and stepper stay in lockstep), homes run
// concurrently, and errors propagate first-job-wins.
func RunFleet(jobs []Job, opts FleetOptions) (FleetResult, error) {
	started := time.Now()
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.ID] {
			// Duplicate IDs would share a topic in MQTT mode (crossing the
			// two homes' streams) and are ambiguous in the results either
			// way; reject them up front.
			return FleetResult{}, fmt.Errorf("stream: duplicate fleet job ID %q", j.ID)
		}
		seen[j.ID] = true
	}
	var monitor *fleetMonitor
	if opts.Broker != "" {
		m, err := newFleetMonitor(opts.Broker)
		if err != nil {
			return FleetResult{}, fmt.Errorf("stream: fleet monitor: %w", err)
		}
		monitor = m
		defer monitor.close()
	}
	results := make([]HomeResult, len(jobs))
	err := pool.Run(opts.Workers, len(jobs), func(i int) error {
		res, err := runJob(jobs[i], opts.Broker)
		if err != nil {
			return fmt.Errorf("stream: home %s: %w", jobs[i].ID, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return FleetResult{}, err
	}
	out := FleetResult{Homes: results}
	st := &out.Stats
	st.Homes = len(results)
	for i := range results {
		r := &results[i]
		st.Days += int64(r.Days)
		st.Slots += r.Slots
		st.SensorEvents += r.SensorEvents
		st.ActionEvents += r.ActionEvents
		st.Verdicts += r.Verdicts
		st.Injected += r.Injected
		st.Flagged += r.Flagged
		st.TotalKWh += r.Sim.TotalKWh
		st.TotalCostUSD += r.Sim.TotalCostUSD
	}
	st.Events = st.SensorEvents + st.ActionEvents + st.Verdicts
	if monitor != nil {
		st.BusFrames = monitor.drain(len(jobs))
	}
	st.Elapsed = time.Since(started)
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.HomesPerSec = float64(st.Homes) / secs
		st.EventsPerSec = float64(st.Events) / secs
	}
	return out, nil
}

// runJob drives one home from open to close.
func runJob(job Job, broker string) (HomeResult, error) {
	src, home, err := job.Open()
	if err != nil {
		return HomeResult{}, err
	}
	if broker != "" {
		pipe, err := OpenPipe(broker, SensorTopic(job.ID), src)
		if err != nil {
			return HomeResult{}, err
		}
		defer pipe.Close()
		src = pipe
	}
	var slot Slot
	for {
		if err := src.Next(&slot); err == io.EOF {
			break
		} else if err != nil {
			return HomeResult{}, err
		}
		if _, err := home.Ingest(&slot); err != nil {
			return HomeResult{}, err
		}
	}
	return home.Close()
}

// SensorTopic names a home's sensor stream on the fleet bus; the fleet-wide
// filter home/+/sensor matches every home's topic.
func SensorTopic(homeID string) string { return "home/" + homeID + "/sensor" }

// fleetMonitor is the fleet-wide observer: one client subscribed to
// home/+/sensor counting every data frame on the bus (transport control
// frames — handshake probes and end-of-stream sentinels — are excluded
// from the count; the sentinels mark stream ends for drain).
type fleetMonitor struct {
	client *mqtt.Client
	frames atomic.Int64
	eofs   atomic.Int64
	seen   chan struct{} // closed on the first frame of any kind
	done   chan struct{}
}

func newFleetMonitor(broker string) (*fleetMonitor, error) {
	c, err := mqtt.Dial(broker)
	if err != nil {
		return nil, err
	}
	ch, err := c.Subscribe("home/+/sensor")
	if err != nil {
		c.Close()
		return nil, err
	}
	m := &fleetMonitor{client: c, seen: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		first := true
		for msg := range ch {
			if first {
				close(m.seen)
				first = false
			}
			var hdr struct {
				Day int `json:"day"`
			}
			switch err := json.Unmarshal(msg.Payload, &hdr); {
			case err != nil:
			case hdr.Day >= 0:
				m.frames.Add(1)
			case hdr.Day == dayEOF:
				m.eofs.Add(1)
			}
		}
	}()
	// Confirm the subscription is registered before any home publishes: a
	// loopback probe on the monitor's own connection is processed by the
	// broker strictly after the subscription frame.
	if err := c.Publish(SensorTopic("monitor"), probeFrame()); err != nil {
		c.Close()
		return nil, err
	}
	select {
	case <-m.seen:
	case <-time.After(5 * time.Second):
		c.Close()
		return nil, fmt.Errorf("mqtt monitor probe lost")
	}
	return m, nil
}

// drain waits until every home's end-of-stream sentinel has reached the
// monitor and returns the data-frame count. Each pipe publishes its data
// frames and then its sentinel on one connection, and the broker processes
// a connection's frames in order, so seeing a home's sentinel proves all
// its data frames were counted. A quiescence fallback bounds the wait if a
// sentinel was lost to a dead connection.
func (m *fleetMonitor) drain(homes int) int64 {
	deadline := time.Now().Add(10 * time.Second)
	for m.eofs.Load() < int64(homes) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	last := m.frames.Load()
	for {
		time.Sleep(20 * time.Millisecond)
		now := m.frames.Load()
		if now == last {
			return now
		}
		last = now
	}
}

func (m *fleetMonitor) close() {
	m.client.Close()
	<-m.done
}
