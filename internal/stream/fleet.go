package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/pool"
)

// Job is one home's entry in a fleet run. Open constructs the home's source
// and runtime lazily on the worker that picks the job up, so a thousand-home
// fleet does not hold a thousand idle pipelines. Open may be called again
// when the supervisor retries the home from a checkpoint.
type Job struct {
	ID   string
	Open func() (Source, *Home, error)
}

// FleetOptions configures a fleet run. The zero value reproduces the legacy
// behaviour: no supervision (first error aborts the fleet), no checkpoints,
// no chaos, and the historical transport timeouts.
type FleetOptions struct {
	// Workers bounds the pool. 0 uses one worker per CPU; 1 forces
	// sequential execution. Per-home results are deterministic either way.
	Workers int
	// Broker, when non-empty, routes every home's frames through the MQTT
	// broker at this address: each home publishes on home/<id>/sensor and
	// its runtime consumes the subscribed stream, with per-home
	// backpressure from the bounded subscription buffer and TCP flow
	// control. A fleet-wide monitor subscribed to home/+/sensor tallies the
	// bus traffic.
	Broker string

	// Recover enables the supervisor: failed homes are retried (from their
	// last checkpoint when CheckpointDir is set) up to MaxRetries, and homes
	// that exhaust the budget are quarantined instead of failing the fleet
	// (unless FailFast). Without Recover the first error aborts the run.
	Recover bool
	// MaxRetries is the retry budget per home; 0 defaults to 3, negative
	// disables retries (a home's first failure quarantines it).
	MaxRetries int
	// FailFast makes a quarantined home abort the whole fleet; the default
	// (false) records the quarantine and lets the rest of the fleet finish.
	FailFast bool
	// RetryBackoff schedules the pause before each retry attempt.
	RetryBackoff mqtt.Backoff

	// CheckpointDir, when non-empty, persists each home's progress at day
	// boundaries so retries resume from the last completed day instead of
	// replaying the whole stream. Checkpoints of completed homes are removed.
	CheckpointDir string
	// CheckpointEvery is the checkpoint cadence in days; 0 defaults to 1.
	CheckpointEvery int
	// AsyncCheckpoints moves checkpoint writes off the drive hot path onto a
	// background sink with flush barriers before every restore, completion,
	// and at fleet drain — durability moves from "at the day boundary" to
	// "by the next barrier", which is when staleness would be observable.
	AsyncCheckpoints bool
	// ckSink is the shared async writer when AsyncCheckpoints is on; wired
	// internally by RunFleet.
	ckSink *CheckpointSink

	// Chaos, when non-nil, injects the seeded fault schedule into every
	// home's transport (see FaultConfig).
	Chaos *FaultConfig

	// Clock times chaos delay faults and supervised-retry backoff. Nil (the
	// default) is real wall-clock time; a VirtualClock makes a chaos run
	// compute-bound while producing byte-identical results.
	Clock Clock

	// LegacyJSON forces per-slot JSON framing. By default a fleet moves
	// whole day-blocks — one binary wire frame per home-day on the bus,
	// IngestDay on the consumer — with or without chaos: block-mode faults
	// perturb whole day frames on the (home, attempt, day)-keyed schedule.
	// This flag pins the per-slot JSON path (with its slot-order fault
	// schedule) for debugging and wire-level comparison; results are
	// bit-identical either way.
	LegacyJSON bool

	// Dial configures every fleet broker connection (dial deadline, redial
	// attempts with exponential backoff, per-frame write deadline).
	Dial mqtt.DialOptions
	// ProbeTimeout bounds each subscription-registration handshake; 0
	// defaults to 5s.
	ProbeTimeout time.Duration
	// ReceiveTimeout bounds each consumer wait for the next frame; 0 waits
	// forever, except that supervised broker runs default to 10s so a lost
	// end-of-stream sentinel surfaces as a retryable error instead of a hang.
	ReceiveTimeout time.Duration
	// DrainTimeout bounds the monitor's wait for the fleet's end-of-stream
	// sentinels; 0 defaults to 10s.
	DrainTimeout time.Duration
	// DrainPoll is retained for compatibility; the monitor drain is
	// event-driven now and no longer polls for sentinels.
	DrainPoll time.Duration
	// QuiescePoll is the bus stillness window the monitor requires before
	// giving up on lost sentinels; 0 defaults to 20ms. The stillness wait is
	// bounded by a second DrainTimeout.
	QuiescePoll time.Duration
}

// withDefaults resolves the option defaults documented on FleetOptions.
func (o FleetOptions) withDefaults() FleetOptions {
	if o.Recover {
		if o.MaxRetries == 0 {
			o.MaxRetries = 3
		}
		if o.ReceiveTimeout == 0 && o.Broker != "" {
			o.ReceiveTimeout = 10 * time.Second
		}
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 5 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.DrainPoll <= 0 {
		o.DrainPoll = 5 * time.Millisecond
	}
	if o.QuiescePoll <= 0 {
		o.QuiescePoll = 20 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = RealClock
	}
	return o
}

// OutcomeStatus classifies how a home's supervised run ended.
type OutcomeStatus string

const (
	// OutcomeCompleted: the home reached end-of-stream on its first attempt.
	OutcomeCompleted OutcomeStatus = "completed"
	// OutcomeRetried: the home failed at least once but a retry completed it.
	OutcomeRetried OutcomeStatus = "retried"
	// OutcomeQuarantined: the home exhausted its retry budget; its result is
	// excluded from the fleet aggregate and Err records the last failure.
	OutcomeQuarantined OutcomeStatus = "quarantined"
)

// HomeOutcome is one home's supervision record.
type HomeOutcome struct {
	ID     string        `json:"id"`
	Status OutcomeStatus `json:"status"`
	// Attempts counts runs of the home's pipeline (1 for a clean first run).
	Attempts int `json:"attempts"`
	// Restores counts attempts that resumed from a checkpoint.
	Restores int `json:"restores"`
	// CheckpointDay is the highest day boundary persisted for the home.
	CheckpointDay int `json:"checkpoint_day,omitempty"`
	// Days is the home's day progress when supervision ended: the streamed
	// day count for a completed home, and the furthest full day any attempt
	// reached for a quarantined one — so a quarantine record shows how far
	// the home got without re-running it.
	Days int `json:"days,omitempty"`
	// Duration is the wall-clock time spent driving the home's pipeline
	// across all attempts (retry backoff waits excluded).
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Err is the final error of a quarantined home (or the last retried
	// failure's message for a home that eventually completed).
	Err string `json:"err,omitempty"`
}

// FleetStats aggregates a fleet run.
type FleetStats struct {
	Homes        int           `json:"homes"`
	Days         int64         `json:"days"`
	Slots        int64         `json:"slots"`
	SensorEvents int64         `json:"sensor_events"`
	ActionEvents int64         `json:"action_events"`
	Verdicts     int64         `json:"verdicts"`
	Events       int64         `json:"events"`
	TotalKWh     float64       `json:"total_kwh"`
	TotalCostUSD float64       `json:"total_cost_usd"`
	Injected     int64         `json:"injected"`
	Flagged      int64         `json:"flagged"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	HomesPerSec  float64       `json:"homes_per_sec"`
	EventsPerSec float64       `json:"events_per_sec"`
	// BusFrames counts the data frames the fleet-wide home/+/sensor monitor
	// saw (zero without a broker). On the default block transport each
	// home-day is one binary frame, so a clean fleet tallies its Days here
	// and a chaos fleet an at-least-once count of Days (retried attempts
	// republish); under LegacyJSON every slot is its own JSON frame and the
	// tally is in Slots.
	BusFrames int64 `json:"bus_frames"`
	// Retries counts extra attempts across the fleet; Restores counts the
	// attempts that resumed from a checkpoint; Quarantined counts homes
	// that exhausted their retry budget.
	Retries     int64 `json:"retries"`
	Restores    int64 `json:"restores"`
	Quarantined int64 `json:"quarantined"`
}

// FleetResult is a fleet run's outcome: per-home results and supervision
// records in job order plus the aggregate. Quarantined homes contribute an
// ID-only HomeResult and are excluded from the aggregate. Everything except
// wall-clock fields (Stats' Elapsed/rates, each Outcome's Duration, and,
// under chaos, BusFrames) is deterministic for a fixed job list,
// independent of Workers and transport.
type FleetResult struct {
	Homes    []HomeResult
	Outcomes []HomeOutcome
	Stats    FleetStats
}

// RunFleet drives every job's pipeline to end-of-stream across a bounded
// worker pool. Each home's pipeline is sequential (pull-based, so the
// source, injector, detector, and stepper stay in lockstep) and homes run
// concurrently. Without Recover, errors propagate first-job-wins; with it,
// each home is supervised independently — retried from its checkpoint and
// quarantined past the budget — so one bad home cannot sink the fleet.
func RunFleet(jobs []Job, opts FleetOptions) (FleetResult, error) {
	opts = opts.withDefaults()
	started := time.Now()
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.ID] {
			// Duplicate IDs would share a topic in MQTT mode (crossing the
			// two homes' streams) and are ambiguous in the results either
			// way; reject them up front.
			return FleetResult{}, fmt.Errorf("stream: duplicate fleet job ID %q", j.ID)
		}
		seen[j.ID] = true
	}
	var monitor *fleetMonitor
	if opts.Broker != "" {
		m, err := newFleetMonitor(opts.Broker, opts)
		if err != nil {
			return FleetResult{}, fmt.Errorf("stream: fleet monitor: %w", err)
		}
		monitor = m
		defer monitor.close()
	}
	if opts.CheckpointDir != "" && opts.AsyncCheckpoints {
		sink := NewCheckpointSink(opts.CheckpointDir)
		opts.ckSink = sink
		// The final barrier: any write still queued for a quarantined home
		// lands before the fleet returns.
		defer sink.Close()
	}
	results := make([]HomeResult, len(jobs))
	outcomes := make([]HomeOutcome, len(jobs))
	err := pool.Run(opts.Workers, len(jobs), func(i int) error {
		res, out, jerr := superviseJob(jobs[i], opts)
		results[i], outcomes[i] = res, out
		if jerr != nil && (!opts.Recover || opts.FailFast) {
			return fmt.Errorf("stream: home %s: %w", jobs[i].ID, jerr)
		}
		return nil
	})
	if err != nil {
		return FleetResult{}, err
	}
	out := AggregateFleet(results, outcomes)
	st := &out.Stats
	if monitor != nil {
		completed := len(outcomes) - int(st.Quarantined)
		st.BusFrames = monitor.drain(completed, opts)
	}
	st.Elapsed = time.Since(started)
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.HomesPerSec = float64(st.Homes) / secs
		st.EventsPerSec = float64(st.Events) / secs
	}
	return out, nil
}

// AggregateFleet assembles a FleetResult from index-aligned per-home
// results and supervision records — the accounting shared by RunFleet and
// the fleetd service, so both report an identical aggregate over the same
// homes. Quarantined homes are excluded from the stats. Wall-clock fields
// (Elapsed, rates, BusFrames) are left zero for the caller to fill.
func AggregateFleet(results []HomeResult, outcomes []HomeOutcome) FleetResult {
	out := FleetResult{Homes: results, Outcomes: outcomes}
	st := &out.Stats
	st.Homes = len(results)
	for i := range results {
		if outcomes[i].Status == OutcomeQuarantined {
			continue
		}
		r := &results[i]
		st.Days += int64(r.Days)
		st.Slots += r.Slots
		st.SensorEvents += r.SensorEvents
		st.ActionEvents += r.ActionEvents
		st.Verdicts += r.Verdicts
		st.Injected += r.Injected
		st.Flagged += r.Flagged
		st.TotalKWh += r.Sim.TotalKWh
		st.TotalCostUSD += r.Sim.TotalCostUSD
	}
	for i := range outcomes {
		st.Retries += int64(outcomes[i].Attempts - 1)
		st.Restores += int64(outcomes[i].Restores)
		if outcomes[i].Status == OutcomeQuarantined {
			st.Quarantined++
		}
	}
	st.Events = st.SensorEvents + st.ActionEvents + st.Verdicts
	return out
}

// superviseJob runs one home under the retry policy. It returns the home's
// result, its supervision record, and — for a quarantined home — the final
// error.
func superviseJob(job Job, opts FleetOptions) (HomeResult, HomeOutcome, error) {
	out := HomeOutcome{ID: job.ID}
	retries := 0
	if opts.Recover && opts.MaxRetries > 0 {
		retries = opts.MaxRetries
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			opts.Clock.Sleep(opts.RetryBackoff.Delay(attempt - 1))
		}
		out.Attempts++
		began := time.Now()
		res, info, err := runAttempt(job, opts, attempt)
		out.Duration += time.Since(began)
		if info.restored {
			out.Restores++
		}
		if info.checkpointDay > out.CheckpointDay {
			out.CheckpointDay = info.checkpointDay
		}
		if info.days > out.Days {
			out.Days = info.days
		}
		if err == nil {
			out.Status = OutcomeCompleted
			if attempt > 0 {
				out.Status = OutcomeRetried
			}
			if opts.CheckpointDir != "" {
				// Barrier any in-flight async write, then remove: the
				// checkpoint served its purpose, and a later fresh run must
				// not resume from it.
				if opts.ckSink != nil {
					if ferr := opts.ckSink.Flush(job.ID); ferr != nil {
						out.Err = ferr.Error()
					}
				}
				if rerr := RemoveCheckpoint(opts.CheckpointDir, job.ID); rerr != nil {
					out.Err = rerr.Error()
				}
			}
			return res, out, nil
		}
		lastErr = err
		out.Err = err.Error()
	}
	out.Status = OutcomeQuarantined
	return HomeResult{ID: job.ID}, out, lastErr
}

// attemptInfo reports what one attempt did beyond its result.
type attemptInfo struct {
	restored      bool
	checkpointDay int
	// days counts the full days the attempt covered, including the days a
	// restored checkpoint already carried — the attempt's day progress even
	// when it fails mid-stream.
	days int
}

// runAttempt drives one home from open to close, resuming from a persisted
// checkpoint when one exists and the freshly opened source can seek to it.
func runAttempt(job Job, opts FleetOptions, attempt int) (HomeResult, attemptInfo, error) {
	var info attemptInfo
	src, home, err := job.Open()
	if err != nil {
		return HomeResult{}, info, err
	}
	// The source may hold real resources (files, broker connections); every
	// exit path must release them, including a failed OpenPipe below.
	defer func() { closeSource(src) }()

	if opts.CheckpointDir != "" {
		if opts.ckSink != nil {
			// Restore decisions read the disk; every queued write must land
			// first, and a write failure makes this attempt fail (retrying
			// re-runs the flush) instead of silently resuming stale.
			if ferr := opts.ckSink.Flush(job.ID); ferr != nil {
				return HomeResult{}, info, ferr
			}
		}
		ck, lerr := LoadCheckpoint(opts.CheckpointDir, job.ID)
		if lerr == nil && ck != nil && ck.Days > 0 {
			if rerr := RestoreFrom(src, home, ck); rerr == nil {
				info.restored = true
				info.checkpointDay = ck.Days
				info.days = ck.Days
			} else {
				// A checkpoint that does not fit the job (or a source that
				// cannot seek) restarts the home from scratch on fresh
				// components — a half-restored home must never stream.
				closeSource(src)
				if src, home, err = job.Open(); err != nil {
					return HomeResult{}, info, err
				}
			}
		}
		// Load errors (corrupt file) also restart from scratch: the next
		// save overwrites the bad file.
	}

	// Day-block transport is the default with or without chaos: block-mode
	// faults perturb whole day frames on the (home, attempt, day)-keyed
	// schedule, so a faulty attempt and its clean retries publish the same
	// frame unit and the fleet's bus accounting stays consistent.
	useBlocks := !opts.LegacyJSON
	plan := opts.Chaos.Plan(job.ID, attempt)
	var s Source = src
	if opts.Broker != "" {
		pipe, perr := OpenPipeOptions(opts.Broker, SensorTopic(job.ID), src, PipeOptions{
			Dial:           opts.Dial,
			ProbeTimeout:   opts.ProbeTimeout,
			ReceiveTimeout: opts.ReceiveTimeout,
			Faults:         plan,
			Epoch:          attempt,
			Blocks:         useBlocks,
			Clock:          opts.Clock,
		})
		if perr != nil {
			return HomeResult{}, info, perr
		}
		defer pipe.Close()
		if pipe.Blocks() {
			if err := driveBlocks(pipe.NextBlock, home, opts, &info); err != nil {
				return HomeResult{}, info, err
			}
			res, err := home.Close()
			return res, info, err
		}
		s = pipe
	} else {
		if plan != nil {
			s = NewFaultSource(src, plan, opts.Clock)
		}
		if useBlocks {
			if bsrc, ok := s.(BlockSource); ok {
				if err := driveBlocks(bsrc.NextBlock, home, opts, &info); err != nil {
					return HomeResult{}, info, err
				}
				res, err := home.Close()
				return res, info, err
			}
		}
	}

	var slot Slot
	for {
		if err := s.Next(&slot); err == io.EOF {
			break
		} else if err != nil {
			return HomeResult{}, info, err
		}
		if _, err := home.Ingest(&slot); err != nil {
			return HomeResult{}, info, err
		}
		if slot.Index == aras.SlotsPerDay-1 {
			info.days = slot.Day + 1
		}
		if opts.CheckpointDir != "" && slot.Index == aras.SlotsPerDay-1 {
			if done := slot.Day + 1; done%opts.CheckpointEvery == 0 {
				ck, cerr := home.Checkpoint()
				if cerr != nil {
					return HomeResult{}, info, cerr
				}
				if serr := saveFleetCheckpoint(opts, ck); serr != nil {
					return HomeResult{}, info, serr
				}
				info.checkpointDay = done
			}
		}
	}
	res, err := home.Close()
	return res, info, err
}

// driveBlocks drives a home at day-block granularity — the clean-run fast
// path shared by the direct and broker transports. Checkpoint cadence and
// day progress match the per-slot loop's day-boundary behaviour exactly.
func driveBlocks(next func(*DayBlock) error, home *Home, opts FleetOptions, info *attemptInfo) error {
	var blk DayBlock
	for {
		if err := next(&blk); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		if _, err := home.IngestDay(&blk); err != nil {
			return err
		}
		done := blk.Day + 1
		info.days = done
		if opts.CheckpointDir != "" && done%opts.CheckpointEvery == 0 {
			ck, cerr := home.Checkpoint()
			if cerr != nil {
				return cerr
			}
			if serr := saveFleetCheckpoint(opts, ck); serr != nil {
				return serr
			}
			info.checkpointDay = done
		}
	}
}

// saveFleetCheckpoint routes a day-boundary save to the async sink when one
// is wired, else writes synchronously before the next frame is ingested.
func saveFleetCheckpoint(opts FleetOptions, ck *Checkpoint) error {
	if opts.ckSink != nil {
		return opts.ckSink.Save(ck)
	}
	return SaveCheckpoint(opts.CheckpointDir, ck)
}

// RestoreFrom applies a checkpoint to a freshly opened (source, home) pair:
// the home's state is rebuilt and the source fast-forwarded to the
// checkpoint's day cursor. Shared by the fleet supervisor's retry path and
// the fleet service's shard rehydration.
func RestoreFrom(src Source, home *Home, ck *Checkpoint) error {
	seeker, ok := src.(DaySeeker)
	if !ok {
		return fmt.Errorf("stream: source cannot seek to day %d", ck.Days)
	}
	if err := home.Restore(ck); err != nil {
		return err
	}
	return seeker.SeekDay(ck.Days)
}

// closeSource releases a source's resources when it holds any; plain
// in-memory sources pass through.
func closeSource(src Source) {
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// SensorTopic names a home's sensor stream on the fleet bus; the fleet-wide
// filter home/+/sensor matches every home's topic.
func SensorTopic(homeID string) string { return "home/" + homeID + "/sensor" }

// fleetMonitor is the fleet-wide observer: one client subscribed to
// home/+/sensor counting every data frame on the bus (transport control
// frames — handshake probes and end-of-stream sentinels — are excluded
// from the count; the sentinels mark stream ends for drain).
type fleetMonitor struct {
	client *mqtt.Client
	frames atomic.Int64
	eofs   atomic.Int64
	seen   chan struct{} // closed on the first frame of any kind
	bump   chan struct{} // sticky wakeup: set after every counted message
	done   chan struct{}
}

func newFleetMonitor(broker string, opts FleetOptions) (*fleetMonitor, error) {
	c, err := mqtt.DialWithOptions(broker, opts.Dial)
	if err != nil {
		return nil, err
	}
	ch, err := c.Subscribe("home/+/sensor")
	if err != nil {
		c.Close()
		return nil, err
	}
	m := &fleetMonitor{client: c, seen: make(chan struct{}), bump: make(chan struct{}, 1), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		first := true
		for msg := range ch {
			if first {
				close(m.seen)
				first = false
			}
			if IsBlockFrame(msg.Payload) {
				// One binary frame carries a whole home-day of data.
				m.frames.Add(1)
			} else {
				var hdr struct {
					Day int `json:"day"`
				}
				switch err := json.Unmarshal(msg.Payload, &hdr); {
				case err != nil:
					// Malformed traffic carries no position to classify; skip it.
				case hdr.Day >= 0:
					m.frames.Add(1)
				case hdr.Day == dayEOF:
					m.eofs.Add(1)
				}
			}
			// Wake the drain after the counters moved; the 1-slot buffer
			// makes the signal sticky, so a wakeup is never lost.
			select {
			case m.bump <- struct{}{}:
			default:
			}
		}
	}()
	// Confirm the subscription is registered before any home publishes: a
	// loopback probe on the monitor's own connection is processed by the
	// broker strictly after the subscription frame.
	if err := c.Publish(SensorTopic("monitor"), probeFrame()); err != nil {
		c.Close()
		return nil, err
	}
	select {
	case <-m.seen:
	case <-time.After(opts.ProbeTimeout):
		c.Close()
		return nil, fmt.Errorf("mqtt monitor probe lost")
	}
	return m, nil
}

// drain waits until every completed home's end-of-stream sentinel has
// reached the monitor and returns the data-frame count. Each pipe publishes
// its data frames and then its sentinel on one connection, and the broker
// processes a connection's frames in order, so seeing a home's sentinel
// proves all its data frames were counted. The wait is event-driven — the
// subscriber wakes it through the sticky bump channel — so a quiet drain
// finishes the instant the last sentinel lands instead of on the next poll
// tick. Sentinels can be lost (a chaos-killed publisher, a quarantined
// home's aborted attempts), so a bounded stillness fallback closes the gap:
// once the sentinel wait times out, the count is taken after the bus stays
// still for one QuiescePoll window, capped by a second DrainTimeout.
func (m *fleetMonitor) drain(homes int, opts FleetOptions) int64 {
	deadline := time.NewTimer(opts.DrainTimeout)
	defer deadline.Stop()
	for m.eofs.Load() < int64(homes) {
		select {
		case <-m.bump:
		case <-deadline.C:
			return m.quiesce(opts)
		}
	}
	return m.frames.Load()
}

// quiesce waits for the bus to stay still for one QuiescePoll window — the
// lost-sentinel fallback — bounded by an extra DrainTimeout.
func (m *fleetMonitor) quiesce(opts FleetOptions) int64 {
	bound := time.NewTimer(opts.DrainTimeout)
	defer bound.Stop()
	still := time.NewTimer(opts.QuiescePoll)
	defer still.Stop()
	for {
		select {
		case <-m.bump:
			if !still.Stop() {
				select {
				case <-still.C:
				default:
				}
			}
			still.Reset(opts.QuiescePoll)
		case <-still.C:
			return m.frames.Load()
		case <-bound.C:
			return m.frames.Load()
		}
	}
}

func (m *fleetMonitor) close() {
	m.client.Close()
	<-m.done
}
