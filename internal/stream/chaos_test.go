package stream

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
	"github.com/acyd-lab/shatter/internal/scenario"
)

// chaosJobs builds a small procedurally generated fleet.
func chaosJobs(n, days int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		sp := scenario.Synth(4+i%5, 1+i%2, uint64(500+i))
		jobs[i] = specJob(sp, days, uint64(77+i))
	}
	return jobs
}

// checkSameHomes compares per-home results and the deterministic aggregate
// counters, ignoring the wall-clock and resilience-bookkeeping stats (a
// chaos run retries; a clean baseline does not).
func checkSameHomes(t *testing.T, got, want FleetResult) {
	t.Helper()
	zero := func(r FleetResult) FleetResult {
		r.Outcomes = nil
		r.Stats.Elapsed, r.Stats.HomesPerSec, r.Stats.EventsPerSec = 0, 0, 0
		r.Stats.BusFrames, r.Stats.Retries, r.Stats.Restores, r.Stats.Quarantined = 0, 0, 0, 0
		return r
	}
	checkDeterministic(t, zero(got), zero(want))
}

// chaosClasses is the fault matrix for the LegacyJSON (per-slot) legs.
// Probabilities are sized for ~2880-frame homes: high enough that first
// attempts virtually always fail, low enough that a failure usually lands
// after the first checkpointed day.
func chaosClasses() map[string]FaultConfig {
	return map[string]FaultConfig{
		"drop":       {Seed: 101, Drop: 0.002},
		"duplicate":  {Seed: 102, Duplicate: 0.005},
		"delay":      {Seed: 103, Delay: 0.002, MaxDelay: 100 * time.Microsecond},
		"corrupt":    {Seed: 104, Corrupt: 0.002},
		"truncate":   {Seed: 105, Truncate: 0.002},
		"disconnect": {Seed: 106, Disconnect: 0.001},
		"mixed": {Seed: 107, Drop: 0.0008, Duplicate: 0.002, Delay: 0.0008,
			Corrupt: 0.0004, Truncate: 0.0004, Disconnect: 0.0002, MaxDelay: 100 * time.Microsecond},
	}
}

// blockChaosClasses is the same matrix sized for day-block framing: a
// 2-day home publishes 2 frames per attempt, so per-frame probabilities
// are ~0.5 to make first attempts virtually always fail while CleanAttempt
// still guarantees completion.
func blockChaosClasses() map[string]FaultConfig {
	return map[string]FaultConfig{
		"drop":       {Seed: 201, Drop: 0.5},
		"duplicate":  {Seed: 202, Duplicate: 0.5},
		"delay":      {Seed: 203, Delay: 0.5, MaxDelay: 100 * time.Microsecond},
		"corrupt":    {Seed: 204, Corrupt: 0.5},
		"truncate":   {Seed: 205, Truncate: 0.5},
		"disconnect": {Seed: 206, Disconnect: 0.5},
		"mixed": {Seed: 207, Drop: 0.12, Duplicate: 0.12, Delay: 0.1,
			Corrupt: 0.08, Truncate: 0.08, Disconnect: 0.06, MaxDelay: 100 * time.Microsecond},
	}
}

// TestFleetChaosMatrix runs a supervised fleet under every fault class, on
// both the direct path and a real MQTT broker, over both framings — the
// default day-block transport and the equivalence-locked LegacyJSON shim —
// and requires byte-identical per-home results against the clean
// unsupervised baseline: recoverable faults must change *nothing* but the
// retry counters. CHAOS_CLASS narrows the sweep to one class and CHAOS_SEED
// reseeds the schedule (the CI matrix drives both).
func TestFleetChaosMatrix(t *testing.T) {
	const homes, days = 4, 2
	jobs := chaosJobs(homes, days)
	baseline, err := RunFleet(jobs, FleetOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	only := os.Getenv("CHAOS_CLASS")
	var seed uint64
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED: %v", err)
		}
		seed = s
	}
	legs := []struct {
		framing string
		legacy  bool
		classes map[string]FaultConfig
	}{
		{"block", false, blockChaosClasses()},
		{"legacy", true, chaosClasses()},
	}
	for _, leg := range legs {
		for name, cfg := range leg.classes {
			if only != "" && only != name {
				continue
			}
			if seed != 0 {
				cfg.Seed = seed
			}
			cfg, leg := cfg, leg
			// Direct-path expectations: delay only slows frames down; every
			// other class (duplicates included — the direct path has no dedup
			// layer) must force retries.
			t.Run(leg.framing+"/"+name+"/direct", func(t *testing.T) {
				got, err := RunFleet(jobs, FleetOptions{
					Workers: 3, Recover: true, Chaos: &cfg, LegacyJSON: leg.legacy,
					CheckpointDir: t.TempDir(),
					RetryBackoff:  mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Stats.Quarantined != 0 {
					t.Fatalf("recoverable chaos quarantined %d homes: %+v", got.Stats.Quarantined, got.Outcomes)
				}
				checkSameHomes(t, got, baseline)
				switch name {
				case "delay":
					if got.Stats.Retries != 0 {
						t.Fatalf("delay-only chaos caused %d retries", got.Stats.Retries)
					}
				default:
					if got.Stats.Retries == 0 {
						t.Fatalf("%s chaos caused no retries (faults not reaching the stream?)", name)
					}
				}
			})
			t.Run(leg.framing+"/"+name+"/mqtt", func(t *testing.T) {
				broker, err := mqtt.NewBroker("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer broker.Close()
				got, err := RunFleet(jobs, FleetOptions{
					Workers: 3, Broker: broker.Addr(), Recover: true, Chaos: &cfg, LegacyJSON: leg.legacy,
					CheckpointDir:  t.TempDir(),
					RetryBackoff:   mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
					ReceiveTimeout: 2 * time.Second,
					DrainTimeout:   2 * time.Second,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.Stats.Quarantined != 0 {
					t.Fatalf("recoverable chaos quarantined %d homes: %+v", got.Stats.Quarantined, got.Outcomes)
				}
				checkSameHomes(t, got, baseline)
				// The clean bus moves one frame per home-day on the block
				// path, one per slot on the legacy path.
				expect := got.Stats.Days
				if leg.legacy {
					expect = got.Stats.Slots
				}
				switch name {
				case "delay":
					if got.Stats.Retries != 0 {
						t.Fatalf("delay-only chaos caused %d retries", got.Stats.Retries)
					}
				case "duplicate":
					// The pipe's position tracking absorbs duplicates entirely.
					if got.Stats.Retries != 0 {
						t.Fatalf("transport failed to dedup: %d retries", got.Stats.Retries)
					}
					if got.Stats.BusFrames <= expect {
						t.Fatalf("duplicates missing from the bus: %d frames for %d expected", got.Stats.BusFrames, expect)
					}
				default:
					if got.Stats.Retries == 0 {
						t.Fatalf("%s chaos caused no retries (faults not reaching the transport?)", name)
					}
				}
			})
		}
	}
}

// TestFleetChaosWorkerDeterminism: the chaos schedule is keyed by
// (home, attempt), never by worker interleaving, so a supervised chaos run
// is byte-identical across worker counts — retries, restores, and all.
func TestFleetChaosWorkerDeterminism(t *testing.T) {
	jobs := chaosJobs(4, 2)
	cfg := blockChaosClasses()["mixed"]
	run := func(workers int) FleetResult {
		t.Helper()
		got, err := RunFleet(jobs, FleetOptions{
			Workers: workers, Recover: true, Chaos: &cfg,
			CheckpointDir: t.TempDir(),
			RetryBackoff:  mqtt.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq, par := run(1), run(4)
	checkDeterministic(t, seq, par)
	for i := range seq.Outcomes {
		// Duration is wall-clock and legitimately varies across runs.
		seq.Outcomes[i].Duration, par.Outcomes[i].Duration = 0, 0
		if seq.Outcomes[i] != par.Outcomes[i] {
			t.Fatalf("outcome %d diverges across worker counts:\n%+v\nvs\n%+v", i, seq.Outcomes[i], par.Outcomes[i])
		}
	}
	if seq.Stats.Retries == 0 {
		t.Fatalf("fixture too tame: %+v", seq.Stats)
	}
}

// TestFleetChaosSoakMQTT is the acceptance soak: a large MQTT fleet under
// mixed recoverable chaos must complete every home with byte-identical
// results and no frame lost for good — every slot reached the bus at least
// once.
func TestFleetChaosSoakMQTT(t *testing.T) {
	homes, days := 100, 2
	if testing.Short() {
		homes = 10
	}
	jobs := chaosJobs(homes, days)
	baseline, err := RunFleet(jobs, FleetOptions{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	// Block-scale probabilities: each home publishes `days` frames per
	// attempt, so per-frame rates are ~1000x the old per-slot ones.
	cfg := FaultConfig{Seed: 2023, Drop: 0.04, Duplicate: 0.06, Delay: 0.05,
		Corrupt: 0.02, Truncate: 0.02, Disconnect: 0.01, MaxDelay: 100 * time.Microsecond}
	got, err := RunFleet(jobs, FleetOptions{
		Workers: 0, Broker: broker.Addr(), Recover: true, Chaos: &cfg,
		CheckpointDir:  t.TempDir(),
		RetryBackoff:   mqtt.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		ReceiveTimeout: 5 * time.Second,
		DrainTimeout:   5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Quarantined != 0 {
		t.Fatalf("soak quarantined %d homes: %+v", got.Stats.Quarantined, got.Outcomes)
	}
	checkSameHomes(t, got, baseline)
	// On the block transport each home-day is one frame; at-least-once
	// delivery means the bus saw at least the fleet's day count.
	if got.Stats.BusFrames < got.Stats.Days {
		t.Fatalf("frames lost for good: %d on the bus, %d home-days", got.Stats.BusFrames, got.Stats.Days)
	}
	if !testing.Short() && got.Stats.Restores == 0 {
		t.Fatalf("soak exercised no checkpoint restores: %+v", got.Stats)
	}
}

// brokenSource fails every read with the given error.
type brokenSource struct{ err error }

func (b *brokenSource) Next(*Slot) error { return b.err }

// TestFleetQuarantineGracefulDegradation: a home that fails past its retry
// budget is quarantined with its error recorded, while the rest of the
// fleet completes untouched; FailFast instead aborts the run.
func TestFleetQuarantineGracefulDegradation(t *testing.T) {
	sick := errors.New("sensor bus on fire")
	good := chaosJobs(2, 1)
	jobs := append(good, Job{ID: "sick", Open: func() (Source, *Home, error) {
		src, h, err := good[0].Open()
		if err != nil {
			return nil, nil, err
		}
		closeSource(src)
		return &brokenSource{err: sick}, h, nil
	}})

	solo, err := RunFleet(good, FleetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleet(jobs, FleetOptions{
		Workers: 2, Recover: true, MaxRetries: 2,
		RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("quarantine leaked into the fleet error: %v", err)
	}
	out := res.Outcomes[2]
	if out.Status != OutcomeQuarantined || out.Attempts != 3 || !strings.Contains(out.Err, "on fire") {
		t.Fatalf("sick home outcome: %+v", out)
	}
	if res.Stats.Quarantined != 1 || res.Stats.Retries != 2 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	for i := range good {
		if res.Outcomes[i].Status != OutcomeCompleted {
			t.Fatalf("healthy home %d: %+v", i, res.Outcomes[i])
		}
		if !equalHomeResult(res.Homes[i], solo.Homes[i]) {
			t.Fatalf("healthy home %d diverged under degradation", i)
		}
	}
	// The quarantined home contributes nothing to the aggregate.
	if res.Stats.Days != solo.Stats.Days || res.Stats.Slots != solo.Stats.Slots {
		t.Fatalf("quarantined home leaked into aggregate: %+v vs %+v", res.Stats, solo.Stats)
	}

	// FailFast turns the quarantine into a fleet abort.
	if _, err := RunFleet(jobs, FleetOptions{
		Workers: 2, Recover: true, MaxRetries: 1, FailFast: true,
		RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	}); !errors.Is(err, sick) || !strings.Contains(err.Error(), "sick") {
		t.Fatalf("FailFast err = %v, want wrapped source failure naming the home", err)
	}

	// A negative retry budget quarantines on the first failure.
	res, err = RunFleet(jobs, FleetOptions{Workers: 1, Recover: true, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[2].Attempts != 1 || res.Outcomes[2].Status != OutcomeQuarantined {
		t.Fatalf("MaxRetries<0 outcome: %+v", res.Outcomes[2])
	}
}

// equalHomeResult compares the deterministic fields of two home results.
func equalHomeResult(a, b HomeResult) bool {
	return a.ID == b.ID && a.Days == b.Days && a.Slots == b.Slots &&
		a.SensorEvents == b.SensorEvents && a.ActionEvents == b.ActionEvents &&
		a.Verdicts == b.Verdicts && a.Anomalies == b.Anomalies &&
		a.Injected == b.Injected && a.Flagged == b.Flagged &&
		a.Sim.TotalKWh == b.Sim.TotalKWh && a.Sim.TotalCostUSD == b.Sim.TotalCostUSD
}

// outOfOrderSource emits a frame at the wrong position to trip the home's
// sequence check mid-stream.
type outOfOrderSource struct {
	src Source
	n   int
}

func (o *outOfOrderSource) Next(dst *Slot) error {
	if err := o.src.Next(dst); err != nil {
		return err
	}
	o.n++
	if o.n > 5 {
		dst.Index += 3 // manufacture a gap
	}
	return nil
}

// TestRunFleetMidStreamFailure: an unsupervised fleet propagates a
// mid-stream ingest failure (sequence gap) as a first-error-wins abort.
func TestRunFleetMidStreamFailure(t *testing.T) {
	base := chaosJobs(1, 1)[0]
	job := Job{ID: base.ID, Open: func() (Source, *Home, error) {
		src, h, err := base.Open()
		if err != nil {
			return nil, nil, err
		}
		return &outOfOrderSource{src: src}, h, nil
	}}
	_, err := RunFleet([]Job{job}, FleetOptions{Workers: 1})
	if err == nil || !strings.Contains(err.Error(), "stepper position") {
		t.Fatalf("err = %v, want sequence-gap ingest failure", err)
	}
}

// flakyAtSource fails deterministically once it reaches a position.
type flakyAtSource struct {
	src       Source
	day, slot int
}

func (f *flakyAtSource) Next(dst *Slot) error {
	if err := f.src.Next(dst); err != nil {
		return err
	}
	if dst.Day > f.day || (dst.Day == f.day && dst.Index >= f.slot) {
		return fmt.Errorf("%w: link died at (%d,%d)", ErrInjectedFault, dst.Day, dst.Index)
	}
	return nil
}

// TestFleetRetryRestoresFromCheckpoint is the deterministic supervisor
// lock: a home whose first attempt dies mid-day-1 must be retried from its
// day-boundary checkpoint (one restore, two attempts) and finish with a
// result byte-identical to an uninterrupted run.
func TestFleetRetryRestoresFromCheckpoint(t *testing.T) {
	base := chaosJobs(1, 3)[0]
	baseline, err := RunFleet([]Job{base}, FleetOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	job := Job{ID: base.ID, Open: func() (Source, *Home, error) {
		src, h, err := base.Open()
		if err != nil {
			return nil, nil, err
		}
		calls++
		if calls == 1 {
			// First attempt dies partway through day 1, after the day-0
			// checkpoint was persisted.
			return &flakyAtSource{src: src, day: 1, slot: 100}, h, nil
		}
		return src, h, nil
	}}
	res, err := RunFleet([]Job{job}, FleetOptions{
		Workers: 1, Recover: true, CheckpointDir: t.TempDir(),
		RetryBackoff: mqtt.Backoff{Base: time.Millisecond, Max: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Outcomes[0]
	if out.Status != OutcomeRetried || out.Attempts != 2 || out.Restores != 1 {
		t.Fatalf("outcome: %+v", out)
	}
	if !equalHomeResult(res.Homes[0], baseline.Homes[0]) {
		t.Fatalf("restored run diverges from uninterrupted:\n%+v\nvs\n%+v", res.Homes[0], baseline.Homes[0])
	}
	if res.Stats.Restores != 1 || res.Stats.Retries != 1 {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

// closableSource records whether the fleet released it.
type closableSource struct {
	Source
	closed bool
}

func (c *closableSource) Close() error {
	c.closed = true
	return nil
}

// TestRunAttemptClosesSourceOnPipeFailure: when OpenPipe fails (dead
// broker), the freshly opened source must still be released — the leak the
// supervisor's defer path exists to prevent.
func TestRunAttemptClosesSourceOnPipeFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	src := &closableSource{Source: traceSrc(t, 1)}
	base := chaosJobs(1, 1)[0]
	_, h, err := base.Open()
	if err != nil {
		t.Fatal(err)
	}
	job := Job{ID: "x", Open: func() (Source, *Home, error) { return src, h, nil }}
	opts := FleetOptions{Broker: dead, Dial: mqtt.DialOptions{Timeout: 200 * time.Millisecond}}.withDefaults()
	if _, _, err := runAttempt(job, opts, 0); err == nil {
		t.Fatal("dead broker accepted")
	}
	if !src.closed {
		t.Fatal("source leaked after OpenPipe failure")
	}
}

// TestFleetMonitorDrainLostSentinel: when end-of-stream sentinels never
// arrive, drain falls back to bounded quiescence — it returns the frame
// count within the drain deadline instead of hanging.
func TestFleetMonitorDrainLostSentinel(t *testing.T) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	opts := FleetOptions{
		DrainTimeout: 300 * time.Millisecond,
		DrainPoll:    5 * time.Millisecond,
		QuiescePoll:  10 * time.Millisecond,
	}.withDefaults()
	m, err := newFleetMonitor(broker.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()

	pub, err := mqtt.Dial(broker.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	const frames = 5
	for i := 0; i < frames; i++ {
		if err := pub.Publish(SensorTopic("ghost"), Slot{Home: "ghost", Day: 0, Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	// No sentinel is ever published: the expected-sentinel wait must time
	// out and the quiescence fallback must return the observed frames.
	start := time.Now()
	n := m.drain(1, opts)
	elapsed := time.Since(start)
	if n != frames {
		t.Fatalf("drain counted %d frames, want %d", n, frames)
	}
	if elapsed < opts.DrainTimeout {
		t.Fatalf("drain returned in %s, before the %s sentinel deadline", elapsed, opts.DrainTimeout)
	}
	if elapsed > opts.DrainTimeout+2*time.Second {
		t.Fatalf("drain took %s — quiescence loop not bounded", elapsed)
	}
}

// TestPipeReceiveTimeout: a silent publisher surfaces as ErrReceiveTimeout
// instead of a hang — the supervised fleet's escape from a lost sentinel.
func TestPipeReceiveTimeout(t *testing.T) {
	broker, err := mqtt.NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	// A source that delivers one frame and then blocks forever.
	stall := &stallingSource{src: traceSrc(t, 1), after: 1, release: make(chan struct{})}
	pipe, err := OpenPipeOptions(broker.Addr(), SensorTopic("slow"), stall, PipeOptions{
		ReceiveTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(stall.release)
		pipe.Close()
	}()
	var s Slot
	if err := pipe.Next(&s); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Next(&s); !errors.Is(err, ErrReceiveTimeout) {
		t.Fatalf("err = %v, want receive timeout", err)
	}
}

// stallingSource delivers `after` frames then blocks until released.
type stallingSource struct {
	src     Source
	after   int
	n       int
	release chan struct{}
}

func (s *stallingSource) Next(dst *Slot) error {
	if s.n >= s.after {
		<-s.release
		return io.EOF
	}
	s.n++
	return s.src.Next(dst)
}
