package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/mqtt"
)

// Sentinel day values for transport control frames; real frames always
// carry Day >= 0.
const (
	dayEOF   = -1 // end of the home's stream
	dayProbe = -2 // subscription-registration handshake
)

// probeFrame is the handshake frame a subscriber publishes to its own topic
// to confirm the broker registered the subscription (the broker processes
// frames of one connection in order, so the probe's delivery proves the
// subscription precedes any other publisher's traffic).
func probeFrame() Slot { return Slot{Day: dayProbe} }

// Pipe routes a source through an MQTT broker: a pump goroutine publishes
// every frame on the topic, and Next re-receives them from a subscription —
// the wiring a real deployment has between in-home sensor nodes and the
// supervisory service. Backpressure is per home: the subscription buffer is
// bounded and TCP flow control stalls the pump when the consumer lags.
type Pipe struct {
	pub, rcv *mqtt.Client
	ch       <-chan mqtt.Message

	mu      sync.Mutex
	pumpErr error

	wg sync.WaitGroup
}

// OpenPipe subscribes to topic on the broker, confirms registration with a
// loopback probe, and starts pumping src. The returned Pipe is the
// transport-side Source; callers must Close it.
func OpenPipe(broker, topic string, src Source) (*Pipe, error) {
	rcv, err := mqtt.Dial(broker)
	if err != nil {
		return nil, fmt.Errorf("stream: pipe dial: %w", err)
	}
	ch, err := rcv.Subscribe(topic)
	if err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe subscribe: %w", err)
	}
	if err := rcv.Publish(topic, probeFrame()); err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe probe: %w", err)
	}
	select {
	case <-ch: // probe delivered: subscription is live
	case <-time.After(5 * time.Second):
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe probe lost on %s", topic)
	}
	pub, err := mqtt.Dial(broker)
	if err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe dial: %w", err)
	}
	p := &Pipe{pub: pub, rcv: rcv, ch: ch}
	p.wg.Add(1)
	go p.pump(topic, src)
	return p, nil
}

// pump publishes src's frames until EOF or error, then an end-of-stream
// sentinel either way.
func (p *Pipe) pump(topic string, src Source) {
	defer p.wg.Done()
	var s Slot
	for {
		err := src.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		if err := p.pub.Publish(topic, &s); err != nil {
			p.setErr(fmt.Errorf("stream: pipe publish: %w", err))
			// The sentinel cannot be delivered on a dead publisher, so tear
			// the receive side down instead — the closed subscription
			// channel unblocks Next, which then surfaces the pump error.
			p.rcv.Close()
			return
		}
	}
	p.pub.Publish(topic, Slot{Day: dayEOF})
}

func (p *Pipe) setErr(err error) {
	p.mu.Lock()
	if p.pumpErr == nil {
		p.pumpErr = err
	}
	p.mu.Unlock()
}

func (p *Pipe) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pumpErr
}

// Next implements Source: it decodes the next frame off the subscription.
// The pump's end-of-stream sentinel yields io.EOF (or the pump's error).
func (p *Pipe) Next(dst *Slot) error {
	for {
		m, ok := <-p.ch
		if !ok {
			if err := p.err(); err != nil {
				return err
			}
			return fmt.Errorf("stream: pipe connection lost: %w", io.ErrUnexpectedEOF)
		}
		if err := json.Unmarshal(m.Payload, dst); err != nil {
			return fmt.Errorf("stream: pipe decode: %w", err)
		}
		switch dst.Day {
		case dayProbe:
			continue // stray handshake frame
		case dayEOF:
			if err := p.err(); err != nil {
				return err
			}
			return io.EOF
		}
		return nil
	}
}

// Close tears the transport down and waits for the pump.
func (p *Pipe) Close() error {
	p.pub.Close()
	p.rcv.Close()
	p.wg.Wait()
	return nil
}
