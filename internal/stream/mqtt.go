package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/mqtt"
)

// Sentinel day values for transport control frames; real frames always
// carry Day >= 0.
const (
	dayEOF   = -1 // end of the home's stream
	dayProbe = -2 // subscription-registration handshake
)

// probeFrame is the handshake frame a subscriber publishes to its own topic
// to confirm the broker registered the subscription (the broker processes
// frames of one connection in order, so the probe's delivery proves the
// subscription precedes any other publisher's traffic).
func probeFrame() Slot { return Slot{Day: dayProbe} }

// ErrReceiveTimeout is returned when a pipe waits longer than its
// configured ReceiveTimeout for the next frame — the signal that the
// publisher died without delivering its end-of-stream sentinel.
var ErrReceiveTimeout = errors.New("stream: pipe receive timeout")

// PipeOptions configures a pipe's transport behaviour. The zero value
// reproduces the historical defaults: a 5s handshake deadline, unbounded
// receive waits, default dial behaviour, and no injected faults.
type PipeOptions struct {
	// Dial configures the pipe's two broker connections (dial deadline,
	// redial attempts with exponential backoff, per-frame write deadline).
	Dial mqtt.DialOptions
	// ProbeTimeout bounds the subscription-registration handshake; 0
	// defaults to 5s.
	ProbeTimeout time.Duration
	// ReceiveTimeout bounds each wait for the next frame in Next; 0 waits
	// forever. Supervised fleets set it so a lost end-of-stream sentinel
	// surfaces as ErrReceiveTimeout instead of a hang.
	ReceiveTimeout time.Duration
	// Faults, when non-nil, applies the chaos schedule to the publishing
	// side — the deterministic stand-in for a lossy network.
	Faults *FaultPlan
	// Epoch tags every published frame with the attempt number. A retry
	// reuses its home's topic, and the broker may still be flushing the
	// previous attempt's tail when the new subscription registers; the
	// consumer discards frames from foreign epochs so a dead attempt can
	// never poison its successor's stream (stale data advancing the dedup
	// cursor, or a stale end-of-stream sentinel ending the new attempt).
	Epoch int
	// Blocks requests day-block transport: one binary frame per home-day
	// (the zero-copy wire codec) instead of aras.SlotsPerDay JSON envelopes.
	// The pipe falls back to per-slot JSON silently when the source cannot
	// emit blocks or a fault plan is attached (chaos perturbs individual slot
	// frames); callers check Blocks() to learn which mode is live.
	Blocks bool
}

// busFrame is the wire envelope: a Slot plus the publishing attempt's
// epoch and an integrity flag. Decoding a plain Slot from it still works
// (the extra keys are ignored), which keeps the fleet monitor and external
// subscribers agnostic. Corrupt stands in for a failed payload checksum:
// the frame is unusable, but it still names its epoch, so a stale corrupt
// frame from a dead attempt can be discarded instead of failing the
// current one.
type busFrame struct {
	Slot
	Epoch   int  `json:"epoch"`
	Corrupt bool `json:"corrupt,omitempty"`
}

// rxFrame decodes a bus frame in place into an existing Slot.
type rxFrame struct {
	*Slot
	Epoch   int  `json:"epoch"`
	Corrupt bool `json:"corrupt"`
}

// Pipe routes a source through an MQTT broker: a pump goroutine publishes
// every frame on the topic, and Next re-receives them from a subscription —
// the wiring a real deployment has between in-home sensor nodes and the
// supervisory service. Backpressure is per home: the subscription buffer is
// bounded and TCP flow control stalls the pump when the consumer lags.
// Duplicate and stale frames on the bus (retransmissions, chaos-injected
// duplicates) are absorbed by position tracking in Next, so the consumer
// sees each (day, slot) at most once, in order.
type Pipe struct {
	pub, rcv *mqtt.Client
	ch       <-chan mqtt.Message

	recvTimeout time.Duration
	timer       *time.Timer
	epoch       int  // attempt tag; frames from other epochs are discarded
	blocks      bool // day-block transport is live (see PipeOptions.Blocks)
	last        int  // highest delivered day*SlotsPerDay+slot; -1 before any
	scratch     Slot // NextBlock's decode target for JSON control frames

	mu      sync.Mutex
	pumpErr error

	wg sync.WaitGroup
}

// OpenPipe subscribes to topic on the broker with default options; see
// OpenPipeOptions.
func OpenPipe(broker, topic string, src Source) (*Pipe, error) {
	return OpenPipeOptions(broker, topic, src, PipeOptions{})
}

// OpenPipeOptions subscribes to topic on the broker, confirms registration
// with a loopback probe, and starts pumping src. The returned Pipe is the
// transport-side Source; callers must Close it. Closing the pipe does not
// close src itself.
func OpenPipeOptions(broker, topic string, src Source, opts PipeOptions) (*Pipe, error) {
	probeTimeout := opts.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 5 * time.Second
	}
	rcv, err := mqtt.DialWithOptions(broker, opts.Dial)
	if err != nil {
		return nil, fmt.Errorf("stream: pipe dial: %w", err)
	}
	ch, err := rcv.Subscribe(topic)
	if err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe subscribe: %w", err)
	}
	if err := rcv.Publish(topic, probeFrame()); err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe probe: %w", err)
	}
	select {
	case <-ch: // probe delivered: subscription is live
	case <-time.After(probeTimeout):
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe probe lost on %s", topic)
	}
	pub, err := mqtt.DialWithOptions(broker, opts.Dial)
	if err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe dial: %w", err)
	}
	p := &Pipe{pub: pub, rcv: rcv, ch: ch, recvTimeout: opts.ReceiveTimeout, epoch: opts.Epoch, last: -1}
	p.wg.Add(1)
	if bsrc, ok := src.(BlockSource); ok && opts.Blocks && opts.Faults == nil {
		p.blocks = true
		go p.pumpBlocks(topic, bsrc)
	} else {
		go p.pump(topic, src, opts.Faults)
	}
	return p, nil
}

// Blocks reports whether day-block transport is live on this pipe — when
// true the consumer must drain it with NextBlock, not Next.
func (p *Pipe) Blocks() bool { return p.blocks }

// pump publishes src's frames until EOF or error, then an end-of-stream
// sentinel either way. A non-nil fault plan perturbs the published stream
// the way a lossy network would; every manufactured failure eventually
// surfaces to the consumer as a decode error, a sequence gap, or a dead
// connection.
func (p *Pipe) pump(topic string, src Source, faults *FaultPlan) {
	defer p.wg.Done()
	var s Slot
	for {
		err := src.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		fault := FaultNone
		if faults != nil {
			fault = faults.Roll()
		}
		switch fault {
		case FaultDrop:
			continue // the frame never reaches the bus
		case FaultDelay:
			time.Sleep(faults.DelayFor())
		case FaultCorrupt:
			// Publish the frame with its integrity flag set — the transport
			// analogue of a payload that fails its checksum on receipt.
			if err := p.pub.Publish(topic, &busFrame{Slot: Slot{Day: s.Day, Index: s.Index}, Epoch: p.epoch, Corrupt: true}); err != nil {
				p.publishFailed(err)
				return
			}
			continue
		case FaultTruncate:
			trunc := s
			if len(trunc.Reported) > 0 {
				trunc.Reported = trunc.Reported[:len(trunc.Reported)-1]
			} else {
				trunc.True = trunc.True[:0]
			}
			if err := p.pub.Publish(topic, &busFrame{Slot: trunc, Epoch: p.epoch}); err != nil {
				p.publishFailed(err)
				return
			}
			continue
		case FaultDisconnect:
			// Force-close the publishing connection; the publish below
			// fails into the dead-publisher teardown.
			p.pub.Close()
		}
		if err := p.pub.Publish(topic, &busFrame{Slot: s, Epoch: p.epoch}); err != nil {
			p.publishFailed(err)
			return
		}
		if fault == FaultDuplicate {
			if err := p.pub.Publish(topic, &busFrame{Slot: s, Epoch: p.epoch}); err != nil {
				p.publishFailed(err)
				return
			}
		}
	}
	p.pub.Publish(topic, busFrame{Slot: Slot{Day: dayEOF}, Epoch: p.epoch})
}

// pumpBlocks publishes src's day-blocks as binary wire frames — one raw
// publish per home-day through a reused encode buffer, so a warm pump runs
// the whole transport path (encode, frame, fan-out) allocation-free. The
// end-of-stream sentinel stays a JSON frame: sentinels are control traffic,
// and the fleet monitor classifies them without the block decoder.
func (p *Pipe) pumpBlocks(topic string, src BlockSource) {
	defer p.wg.Done()
	var blk DayBlock
	var buf []byte
	for {
		err := src.NextBlock(&blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		buf, err = AppendBlockFrame(buf[:0], &blk, p.epoch)
		if err != nil {
			p.setErr(fmt.Errorf("stream: pipe encode day %d: %w", blk.Day, err))
			break
		}
		if err := p.pub.PublishRaw(topic, buf); err != nil {
			p.publishFailed(err)
			return
		}
	}
	p.pub.Publish(topic, busFrame{Slot: Slot{Day: dayEOF}, Epoch: p.epoch})
}

// publishFailed records a dead publisher and tears the receive side down —
// the sentinel cannot be delivered, so the closed subscription channel is
// what unblocks Next, which then surfaces the pump error.
func (p *Pipe) publishFailed(err error) {
	p.setErr(fmt.Errorf("stream: pipe publish: %w", err))
	p.rcv.Close()
}

func (p *Pipe) setErr(err error) {
	p.mu.Lock()
	if p.pumpErr == nil {
		p.pumpErr = err
	}
	p.mu.Unlock()
}

func (p *Pipe) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pumpErr
}

// receive waits for the next bus message, bounded by the configured
// receive timeout.
func (p *Pipe) receive() (mqtt.Message, bool, error) {
	if p.recvTimeout <= 0 {
		m, ok := <-p.ch
		return m, ok, nil
	}
	if p.timer == nil {
		p.timer = time.NewTimer(p.recvTimeout)
	} else {
		p.timer.Reset(p.recvTimeout)
	}
	select {
	case m, ok := <-p.ch:
		if !p.timer.Stop() {
			select {
			case <-p.timer.C:
			default:
			}
		}
		return m, ok, nil
	case <-p.timer.C:
		return mqtt.Message{}, false, fmt.Errorf("%w after %s", ErrReceiveTimeout, p.recvTimeout)
	}
}

// Next implements Source: it decodes the next frame off the subscription.
// The pump's end-of-stream sentinel yields io.EOF (or the pump's error).
// Duplicate and stale frames are skipped so each position is delivered at
// most once.
func (p *Pipe) Next(dst *Slot) error {
	for {
		m, ok, err := p.receive()
		if err != nil {
			return err
		}
		if !ok {
			if err := p.err(); err != nil {
				return err
			}
			return fmt.Errorf("stream: pipe connection lost: %w", io.ErrUnexpectedEOF)
		}
		rx := rxFrame{Slot: dst}
		if err := json.Unmarshal(m.Payload, &rx); err != nil {
			return fmt.Errorf("stream: pipe decode: %w", err)
		}
		switch dst.Day {
		case dayProbe:
			continue // stray handshake frame
		}
		if rx.Epoch != p.epoch {
			// A dead attempt's tail (data, corrupt, or sentinel) still
			// flushing out of the broker; it belongs to another epoch and
			// must not advance the dedup cursor or end this stream.
			continue
		}
		if rx.Corrupt {
			return fmt.Errorf("stream: pipe frame (%d,%d) failed integrity check: %w", dst.Day, dst.Index, ErrInjectedFault)
		}
		switch dst.Day {
		case dayEOF:
			if err := p.err(); err != nil {
				return err
			}
			return io.EOF
		}
		if key := dst.Day*aras.SlotsPerDay + dst.Index; key <= p.last {
			continue // duplicate or stale retransmission
		} else {
			p.last = key
		}
		return nil
	}
}

// NextBlock drains a block-mode pipe: binary frames decode into dst, JSON
// frames are the control plane (probes, foreign-epoch stragglers, the
// end-of-stream sentinel). A same-epoch per-slot data frame on a block pipe
// is a protocol violation and errors — the two granularities never mix
// within one attempt.
func (p *Pipe) NextBlock(dst *DayBlock) error {
	if !p.blocks {
		return errors.New("stream: NextBlock on a per-slot pipe")
	}
	for {
		m, ok, err := p.receive()
		if err != nil {
			return err
		}
		if !ok {
			if err := p.err(); err != nil {
				return err
			}
			return fmt.Errorf("stream: pipe connection lost: %w", io.ErrUnexpectedEOF)
		}
		if IsBlockFrame(m.Payload) {
			epoch, err := DecodeBlockFrame(dst, m.Payload)
			if err != nil {
				return fmt.Errorf("stream: pipe decode: %w", err)
			}
			if epoch != p.epoch {
				continue // a dead attempt's tail still flushing out
			}
			// Dedup at day granularity: delivering day d advances the slot
			// cursor past every slot of d, so retransmissions and any stale
			// per-slot stragglers below it are both absorbed.
			if key := dst.Day*aras.SlotsPerDay + aras.SlotsPerDay - 1; key <= p.last {
				continue
			} else {
				p.last = key
			}
			return nil
		}
		rx := rxFrame{Slot: &p.scratch}
		if err := json.Unmarshal(m.Payload, &rx); err != nil {
			return fmt.Errorf("stream: pipe decode: %w", err)
		}
		if p.scratch.Day == dayProbe {
			continue // stray handshake frame
		}
		if rx.Epoch != p.epoch {
			continue // foreign epoch: data, corrupt, or sentinel — all stale
		}
		if rx.Corrupt {
			return fmt.Errorf("stream: pipe frame (%d,%d) failed integrity check: %w", p.scratch.Day, p.scratch.Index, ErrInjectedFault)
		}
		if p.scratch.Day == dayEOF {
			if err := p.err(); err != nil {
				return err
			}
			return io.EOF
		}
		return fmt.Errorf("stream: per-slot frame (%d,%d) on a block-mode pipe", p.scratch.Day, p.scratch.Index)
	}
}

// Close tears the transport down and waits for the pump.
func (p *Pipe) Close() error {
	p.pub.Close()
	p.rcv.Close()
	p.wg.Wait()
	return nil
}
