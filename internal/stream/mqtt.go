package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/mqtt"
)

// Sentinel day values for transport control frames; real frames always
// carry Day >= 0.
const (
	dayEOF   = -1 // end of the home's stream
	dayProbe = -2 // subscription-registration handshake
)

// probeFrame is the handshake frame a subscriber publishes to its own topic
// to confirm the broker registered the subscription (the broker processes
// frames of one connection in order, so the probe's delivery proves the
// subscription precedes any other publisher's traffic).
func probeFrame() Slot { return Slot{Day: dayProbe} }

// ErrReceiveTimeout is returned when a pipe waits longer than its
// configured ReceiveTimeout for the next frame — the signal that the
// publisher died without delivering its end-of-stream sentinel.
var ErrReceiveTimeout = errors.New("stream: pipe receive timeout")

// PipeOptions configures a pipe's transport behaviour. The zero value
// reproduces the historical defaults: a 5s handshake deadline, unbounded
// receive waits, default dial behaviour, and no injected faults.
type PipeOptions struct {
	// Dial configures the pipe's two broker connections (dial deadline,
	// redial attempts with exponential backoff, per-frame write deadline).
	Dial mqtt.DialOptions
	// ProbeTimeout bounds the subscription-registration handshake; 0
	// defaults to 5s.
	ProbeTimeout time.Duration
	// ReceiveTimeout bounds each wait for the next frame in Next; 0 waits
	// forever. Supervised fleets set it so a lost end-of-stream sentinel
	// surfaces as ErrReceiveTimeout instead of a hang.
	ReceiveTimeout time.Duration
	// Faults, when non-nil, applies the chaos schedule to the publishing
	// side — the deterministic stand-in for a lossy network.
	Faults *FaultPlan
	// Epoch tags every published frame with the attempt number. A retry
	// reuses its home's topic, and the broker may still be flushing the
	// previous attempt's tail when the new subscription registers; the
	// consumer discards frames from foreign epochs so a dead attempt can
	// never poison its successor's stream (stale data advancing the dedup
	// cursor, or a stale end-of-stream sentinel ending the new attempt).
	Epoch int
	// Blocks requests day-block transport: one binary frame per home-day
	// (the zero-copy wire codec) instead of aras.SlotsPerDay JSON envelopes.
	// The pipe falls back to per-slot JSON silently when the source cannot
	// emit blocks; callers check Blocks() to learn which mode is live. A
	// fault plan composes with either framing — block-mode faults perturb
	// whole day frames via the (home, attempt, day)-keyed schedule.
	Blocks bool
	// Clock times chaos delay faults; nil uses real wall-clock time.
	Clock Clock
}

// busFrame is the wire envelope: a Slot plus the publishing attempt's
// epoch and an integrity flag. Decoding a plain Slot from it still works
// (the extra keys are ignored), which keeps the fleet monitor and external
// subscribers agnostic. Corrupt stands in for a failed payload checksum:
// the frame is unusable, but it still names its epoch, so a stale corrupt
// frame from a dead attempt can be discarded instead of failing the
// current one.
type busFrame struct {
	Slot
	Epoch   int  `json:"epoch"`
	Corrupt bool `json:"corrupt,omitempty"`
	// Final, set only on end-of-stream sentinels, is one past the last
	// stream position the publisher generated (day*SlotsPerDay+slot+1).
	// The consumer compares it against the last position it actually
	// delivered: a mismatch means the stream's tail was lost in transit —
	// the one loss no sequence-gap check can see, because nothing follows
	// it.
	Final int `json:"final,omitempty"`
}

// rxFrame decodes a bus frame in place into an existing Slot.
type rxFrame struct {
	*Slot
	Epoch   int  `json:"epoch"`
	Corrupt bool `json:"corrupt"`
	Final   int  `json:"final"`
}

// txRec is one publish queued from a chaos pump's reader to its publisher
// goroutine: a pre-encoded payload (binary block frame or JSON envelope),
// an optional injected delay served before the publish, or a kill order
// that force-closes the publishing connection.
type txRec struct {
	payload []byte
	binary  bool
	delay   time.Duration
	kill    bool
}

// Pipe routes a source through an MQTT broker: a pump goroutine publishes
// every frame on the topic, and Next re-receives them from a subscription —
// the wiring a real deployment has between in-home sensor nodes and the
// supervisory service. Backpressure is per home: the subscription buffer is
// bounded and TCP flow control stalls the pump when the consumer lags.
// Duplicate and stale frames on the bus (retransmissions, chaos-injected
// duplicates) are absorbed by position tracking in Next, so the consumer
// sees each (day, slot) at most once, in order.
type Pipe struct {
	pub, rcv *mqtt.Client
	ch       <-chan mqtt.Message

	recvTimeout time.Duration
	timer       *time.Timer
	clock       Clock // times chaos delay faults
	epoch       int   // attempt tag; frames from other epochs are discarded
	blocks      bool  // day-block transport is live (see PipeOptions.Blocks)
	last        int   // highest delivered day*SlotsPerDay+slot; -1 before any
	scratch     Slot  // NextBlock's decode target for JSON control frames

	mu      sync.Mutex
	pumpErr error
	severed bool

	wg sync.WaitGroup
}

// OpenPipe subscribes to topic on the broker with default options; see
// OpenPipeOptions.
func OpenPipe(broker, topic string, src Source) (*Pipe, error) {
	return OpenPipeOptions(broker, topic, src, PipeOptions{})
}

// OpenPipeOptions subscribes to topic on the broker, confirms registration
// with a loopback probe, and starts pumping src. The returned Pipe is the
// transport-side Source; callers must Close it. Closing the pipe does not
// close src itself.
func OpenPipeOptions(broker, topic string, src Source, opts PipeOptions) (*Pipe, error) {
	probeTimeout := opts.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 5 * time.Second
	}
	rcv, err := mqtt.DialWithOptions(broker, opts.Dial)
	if err != nil {
		return nil, fmt.Errorf("stream: pipe dial: %w", err)
	}
	ch, err := rcv.Subscribe(topic)
	if err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe subscribe: %w", err)
	}
	if err := rcv.Publish(topic, probeFrame()); err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe probe: %w", err)
	}
	select {
	case <-ch: // probe delivered: subscription is live
	case <-time.After(probeTimeout):
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe probe lost on %s", topic)
	}
	pub, err := mqtt.DialWithOptions(broker, opts.Dial)
	if err != nil {
		rcv.Close()
		return nil, fmt.Errorf("stream: pipe dial: %w", err)
	}
	p := &Pipe{pub: pub, rcv: rcv, ch: ch, recvTimeout: opts.ReceiveTimeout, clock: clockOrReal(opts.Clock), epoch: opts.Epoch, last: -1}
	bsrc, isBlock := src.(BlockSource)
	p.blocks = isBlock && opts.Blocks
	if opts.Faults != nil {
		// Chaos pumps split into a reader and a publisher joined by a
		// bounded queue, so an injected delay stalls only the publishing
		// side — the reader keeps draining its source, and Close never
		// waits behind a sleeping frame.
		txq := make(chan txRec, 64)
		p.wg.Add(2)
		if p.blocks {
			go p.pumpBlocksChaos(topic, bsrc, opts.Faults, txq)
		} else {
			go p.pumpChaos(topic, src, opts.Faults, txq)
		}
		go p.publisher(topic, txq)
	} else {
		p.wg.Add(1)
		if p.blocks {
			go p.pumpBlocks(topic, bsrc)
		} else {
			go p.pump(topic, src)
		}
	}
	return p, nil
}

// Blocks reports whether day-block transport is live on this pipe — when
// true the consumer must drain it with NextBlock, not Next.
func (p *Pipe) Blocks() bool { return p.blocks }

// pump publishes src's frames until EOF or error, then an end-of-stream
// sentinel either way; the sentinel carries the stream's final position so
// the consumer can detect a lost tail.
func (p *Pipe) pump(topic string, src Source) {
	defer p.wg.Done()
	var s Slot
	final := 0
	for {
		err := src.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		final = s.Day*aras.SlotsPerDay + s.Index + 1
		if err := p.pub.Publish(topic, &busFrame{Slot: s, Epoch: p.epoch}); err != nil {
			p.publishFailed(err)
			return
		}
	}
	p.pub.Publish(topic, busFrame{Slot: Slot{Day: dayEOF}, Epoch: p.epoch, Final: final})
}

// publisher drains a chaos pump's transmit queue: serve each record's
// injected delay on the pipe's clock, then publish. Records keep queue
// order, so delays stall the bus the way a slow link would without ever
// blocking the reader. After a publish failure (or a kill record) the
// remaining queue is discarded so the reader's sends never block.
func (p *Pipe) publisher(topic string, txq <-chan txRec) {
	defer p.wg.Done()
	failed := false
	for rec := range txq {
		if failed {
			continue
		}
		if rec.delay > 0 {
			p.clock.Sleep(rec.delay)
		}
		if rec.kill {
			// Force-close the publishing connection mid-stream; the
			// consumer sees a dead pipe, not a sentinel.
			p.pub.Close()
			p.publishFailed(fmt.Errorf("%w: connection force-closed", ErrInjectedFault))
			failed = true
			continue
		}
		var err error
		if rec.binary {
			err = p.pub.PublishRaw(topic, rec.payload)
		} else {
			// Pre-marshaled JSON: RawMessage round-trips the bytes as-is.
			err = p.pub.Publish(topic, json.RawMessage(rec.payload))
		}
		if err != nil {
			p.publishFailed(err)
			failed = true
		}
	}
}

// pumpChaos reads src and queues per-slot JSON frames under the slot-order
// fault schedule — the equivalence-locked legacy framing: Roll draws in
// generation order exactly as the historical inline pump did, so a given
// (config, home, attempt) produces the same perturbed stream. Every
// manufactured failure eventually surfaces to the consumer as a decode
// error, a sequence gap, a short stream, or a dead connection.
func (p *Pipe) pumpChaos(topic string, src Source, faults *FaultPlan, txq chan<- txRec) {
	defer p.wg.Done()
	defer close(txq)
	enq := func(frame *busFrame, delay time.Duration) bool {
		raw, err := json.Marshal(frame)
		if err != nil {
			p.setErr(fmt.Errorf("stream: pipe encode: %w", err))
			return false
		}
		txq <- txRec{payload: raw, delay: delay}
		return true
	}
	var s Slot
	final := 0
	for {
		err := src.Next(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		final = s.Day*aras.SlotsPerDay + s.Index + 1
		switch faults.Roll() {
		case FaultDrop:
			continue // the frame never reaches the bus
		case FaultDelay:
			if !enq(&busFrame{Slot: s, Epoch: p.epoch}, faults.DelayFor()) {
				return
			}
		case FaultCorrupt:
			// Publish the frame with its integrity flag set — the transport
			// analogue of a payload that fails its checksum on receipt.
			if !enq(&busFrame{Slot: Slot{Day: s.Day, Index: s.Index}, Epoch: p.epoch, Corrupt: true}, 0) {
				return
			}
		case FaultTruncate:
			trunc := s
			if len(trunc.Reported) > 0 {
				trunc.Reported = trunc.Reported[:len(trunc.Reported)-1]
			} else {
				trunc.True = trunc.True[:0]
			}
			if !enq(&busFrame{Slot: trunc, Epoch: p.epoch}, 0) {
				return
			}
		case FaultDisconnect:
			txq <- txRec{kill: true}
			return // no sentinel: the connection died mid-stream
		case FaultDuplicate:
			if !enq(&busFrame{Slot: s, Epoch: p.epoch}, 0) {
				return
			}
			if !enq(&busFrame{Slot: s, Epoch: p.epoch}, 0) {
				return
			}
		default:
			if !enq(&busFrame{Slot: s, Epoch: p.epoch}, 0) {
				return
			}
		}
	}
	enq(&busFrame{Slot: Slot{Day: dayEOF}, Epoch: p.epoch, Final: final}, 0)
}

// pumpBlocksChaos reads day-blocks and queues binary wire frames under the
// (home, attempt, day)-keyed fault schedule: one roll per home-day, so a
// single block fault exercises the same recovery machinery as a day's worth
// of slot faults at 1/1440th of the frame rate.
func (p *Pipe) pumpBlocksChaos(topic string, src BlockSource, faults *FaultPlan, txq chan<- txRec) {
	defer p.wg.Done()
	defer close(txq)
	var blk DayBlock
	final := 0
	for {
		err := src.NextBlock(&blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		final = (blk.Day + 1) * aras.SlotsPerDay
		class, stall := faults.RollDay(blk.Day)
		switch class {
		case FaultDrop:
			continue // the whole day frame never reaches the bus
		case FaultCorrupt:
			raw, err := json.Marshal(&busFrame{Slot: Slot{Day: blk.Day}, Epoch: p.epoch, Corrupt: true})
			if err != nil {
				p.setErr(fmt.Errorf("stream: pipe encode: %w", err))
				return
			}
			txq <- txRec{payload: raw}
			continue
		case FaultTruncate:
			// Slice a column pair off in place; the generator's ensure
			// restores the backing storage on the next read.
			truncateBlock(&blk)
		case FaultDisconnect:
			txq <- txRec{kill: true}
			return // no sentinel: the connection died mid-stream
		}
		raw, err := AppendBlockFrame(nil, &blk, p.epoch)
		if err != nil {
			p.setErr(fmt.Errorf("stream: pipe encode day %d: %w", blk.Day, err))
			return
		}
		rec := txRec{payload: raw, binary: true}
		if class == FaultDelay {
			rec.delay = stall
		}
		txq <- rec
		if class == FaultDuplicate {
			txq <- txRec{payload: raw, binary: true}
		}
	}
	raw, err := json.Marshal(&busFrame{Slot: Slot{Day: dayEOF}, Epoch: p.epoch, Final: final})
	if err != nil {
		p.setErr(fmt.Errorf("stream: pipe encode: %w", err))
		return
	}
	txq <- txRec{payload: raw}
}

// pumpBlocks publishes src's day-blocks as binary wire frames — one raw
// publish per home-day through a reused encode buffer, so a warm pump runs
// the whole transport path (encode, frame, fan-out) allocation-free. The
// end-of-stream sentinel stays a JSON frame: sentinels are control traffic,
// and the fleet monitor classifies them without the block decoder.
func (p *Pipe) pumpBlocks(topic string, src BlockSource) {
	defer p.wg.Done()
	var blk DayBlock
	var buf []byte
	final := 0
	for {
		err := src.NextBlock(&blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			p.setErr(err)
			break
		}
		final = (blk.Day + 1) * aras.SlotsPerDay
		buf, err = AppendBlockFrame(buf[:0], &blk, p.epoch)
		if err != nil {
			p.setErr(fmt.Errorf("stream: pipe encode day %d: %w", blk.Day, err))
			break
		}
		if err := p.pub.PublishRaw(topic, buf); err != nil {
			p.publishFailed(err)
			return
		}
	}
	p.pub.Publish(topic, busFrame{Slot: Slot{Day: dayEOF}, Epoch: p.epoch, Final: final})
}

// publishFailed records a dead publisher and tears the receive side down —
// the sentinel cannot be delivered, so the closed subscription channel is
// what unblocks Next, which then surfaces the pump error.
func (p *Pipe) publishFailed(err error) {
	p.setErr(fmt.Errorf("stream: pipe publish: %w", err))
	p.rcv.Close()
}

func (p *Pipe) setErr(err error) {
	p.mu.Lock()
	if p.pumpErr == nil {
		p.pumpErr = err
	}
	p.mu.Unlock()
}

func (p *Pipe) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pumpErr
}

// receive waits for the next bus message, bounded by the configured
// receive timeout.
func (p *Pipe) receive() (mqtt.Message, bool, error) {
	if p.recvTimeout <= 0 {
		m, ok := <-p.ch
		return m, ok, nil
	}
	if p.timer == nil {
		p.timer = time.NewTimer(p.recvTimeout)
	} else {
		p.timer.Reset(p.recvTimeout)
	}
	select {
	case m, ok := <-p.ch:
		if !p.timer.Stop() {
			select {
			case <-p.timer.C:
			default:
			}
		}
		return m, ok, nil
	case <-p.timer.C:
		return mqtt.Message{}, false, fmt.Errorf("%w after %s", ErrReceiveTimeout, p.recvTimeout)
	}
}

// Next implements Source: it decodes the next frame off the subscription.
// The pump's end-of-stream sentinel yields io.EOF (or the pump's error).
// Duplicate and stale frames are skipped so each position is delivered at
// most once.
func (p *Pipe) Next(dst *Slot) error {
	for {
		m, ok, err := p.receive()
		if err != nil {
			return err
		}
		if !ok {
			if err := p.err(); err != nil {
				return err
			}
			return fmt.Errorf("stream: pipe connection lost: %w", io.ErrUnexpectedEOF)
		}
		rx := rxFrame{Slot: dst}
		if err := json.Unmarshal(m.Payload, &rx); err != nil {
			return fmt.Errorf("stream: pipe decode: %w", err)
		}
		switch dst.Day {
		case dayProbe:
			continue // stray handshake frame
		}
		if rx.Epoch != p.epoch {
			// A dead attempt's tail (data, corrupt, or sentinel) still
			// flushing out of the broker; it belongs to another epoch and
			// must not advance the dedup cursor or end this stream.
			continue
		}
		if rx.Corrupt {
			return fmt.Errorf("stream: pipe frame (%d,%d) failed integrity check: %w", dst.Day, dst.Index, ErrInjectedFault)
		}
		switch dst.Day {
		case dayEOF:
			if err := p.err(); err != nil {
				return err
			}
			if rx.Final > 0 && p.last != rx.Final-1 {
				// The publisher generated frames past the last one we
				// delivered: the stream's tail was lost in transit.
				return fmt.Errorf("stream: pipe stream ended short of position %d (last delivered %d): frames lost", rx.Final-1, p.last)
			}
			return io.EOF
		}
		if key := dst.Day*aras.SlotsPerDay + dst.Index; key <= p.last {
			continue // duplicate or stale retransmission
		} else {
			p.last = key
		}
		return nil
	}
}

// NextBlock drains a block-mode pipe: binary frames decode into dst, JSON
// frames are the control plane (probes, foreign-epoch stragglers, the
// end-of-stream sentinel). A same-epoch per-slot data frame on a block pipe
// is a protocol violation and errors — the two granularities never mix
// within one attempt.
func (p *Pipe) NextBlock(dst *DayBlock) error {
	if !p.blocks {
		return errors.New("stream: NextBlock on a per-slot pipe")
	}
	for {
		m, ok, err := p.receive()
		if err != nil {
			return err
		}
		if !ok {
			if err := p.err(); err != nil {
				return err
			}
			return fmt.Errorf("stream: pipe connection lost: %w", io.ErrUnexpectedEOF)
		}
		if IsBlockFrame(m.Payload) {
			epoch, err := DecodeBlockFrame(dst, m.Payload)
			if err != nil {
				return fmt.Errorf("stream: pipe decode: %w", err)
			}
			if epoch != p.epoch {
				continue // a dead attempt's tail still flushing out
			}
			// Dedup at day granularity: delivering day d advances the slot
			// cursor past every slot of d, so retransmissions and any stale
			// per-slot stragglers below it are both absorbed.
			if key := dst.Day*aras.SlotsPerDay + aras.SlotsPerDay - 1; key <= p.last {
				continue
			} else {
				p.last = key
			}
			return nil
		}
		rx := rxFrame{Slot: &p.scratch}
		if err := json.Unmarshal(m.Payload, &rx); err != nil {
			return fmt.Errorf("stream: pipe decode: %w", err)
		}
		if p.scratch.Day == dayProbe {
			continue // stray handshake frame
		}
		if rx.Epoch != p.epoch {
			continue // foreign epoch: data, corrupt, or sentinel — all stale
		}
		if rx.Corrupt {
			return fmt.Errorf("stream: pipe frame (%d,%d) failed integrity check: %w", p.scratch.Day, p.scratch.Index, ErrInjectedFault)
		}
		if p.scratch.Day == dayEOF {
			if err := p.err(); err != nil {
				return err
			}
			if rx.Final > 0 && p.last != rx.Final-1 {
				// The publisher generated day frames past the last one we
				// delivered: the stream's tail was lost in transit.
				return fmt.Errorf("stream: pipe stream ended short of position %d (last delivered %d): frames lost", rx.Final-1, p.last)
			}
			return io.EOF
		}
		return fmt.Errorf("stream: per-slot frame (%d,%d) on a block-mode pipe", p.scratch.Day, p.scratch.Index)
	}
}

// Close tears the transport down and waits for the pump. A pipe that was
// Severed skips the wait: its pump may be wedged inside the source, and
// waiting for it would turn a stalled transport into a stalled caller.
func (p *Pipe) Close() error {
	p.pub.Close()
	p.rcv.Close()
	p.mu.Lock()
	severed := p.severed
	p.mu.Unlock()
	if !severed {
		p.wg.Wait()
	}
	return nil
}

// Sever force-closes both bus connections without waiting for the pump —
// the watchdog's lever against a transport that stopped making progress.
// Closing the receiver ends the subscription channel, so a consumer blocked
// in Next/NextBlock unblocks into its failure path immediately; closing the
// publisher makes the pump's next Publish fail so it winds down on its own.
// A pump wedged inside src.Next cannot be interrupted from outside — it is
// abandoned and exits whenever that call returns. After Sever, Close no
// longer waits for the pump.
func (p *Pipe) Sever() {
	p.mu.Lock()
	p.severed = true
	p.mu.Unlock()
	p.pub.Close()
	p.rcv.Close()
}
