package mqtt

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestBackoffDelay pins the exponential schedule and its defaults.
func TestBackoffDelay(t *testing.T) {
	var zero Backoff
	if d := zero.Delay(0); d != 50*time.Millisecond {
		t.Fatalf("default base delay = %s", d)
	}
	if d := zero.Delay(20); d != 2*time.Second {
		t.Fatalf("default cap = %s", d)
	}
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if d := b.Delay(i); d != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %s, want %dms", i, d, w)
		}
	}
}

// TestDialWithOptionsRetry: a dead address is retried the configured number
// of times with backoff, then fails with the attempt count in the error.
func TestDialWithOptionsRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	start := time.Now()
	_, err = DialWithOptions(dead, DialOptions{
		Timeout:  200 * time.Millisecond,
		Attempts: 3,
		Backoff:  Backoff{Base: 20 * time.Millisecond, Max: 40 * time.Millisecond},
	})
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want failure naming 3 attempts", err)
	}
	// Two backoff sleeps (20ms + 40ms) must have elapsed.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("retries returned in %s, backoff not applied", elapsed)
	}
}

// TestDialWithOptionsRecovers: the retry loop rides through a broker that
// comes up between attempts — the reconnect path of a fleet client.
func TestDialWithOptionsRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// Re-listen on the same address after the first attempt has failed.
	brokerCh := make(chan *Broker, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		b, err := NewBroker(addr)
		if err != nil {
			brokerCh <- nil
			return
		}
		brokerCh <- b
	}()
	c, err := DialWithOptions(addr, DialOptions{
		Timeout:  200 * time.Millisecond,
		Attempts: 10,
		Backoff:  Backoff{Base: 30 * time.Millisecond, Max: 30 * time.Millisecond},
	})
	b := <-brokerCh
	if b == nil {
		t.Skipf("could not rebind %s", addr)
	}
	defer b.Close()
	if err != nil {
		t.Fatalf("dial never recovered: %v", err)
	}
	c.Close()
}

// TestClientWriteTimeout: a peer that accepts but never reads must not
// wedge Publish forever — once the kernel buffers fill, the write deadline
// fires and the call errors.
func TestClientWriteTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn // held open, never read
	}()

	c, err := DialWithOptions(ln.Addr().String(), DialOptions{
		Timeout:      time.Second,
		WriteTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if conn := <-accepted; conn != nil {
			conn.Close()
		}
	}()

	// Large payloads fill the socket buffers quickly; the publish that
	// blocks must fail within the write deadline.
	payload := strings.Repeat("x", 512<<10)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Publish("t", payload); err != nil {
			var nerr net.Error
			if !errors.As(err, &nerr) || !nerr.Timeout() {
				t.Fatalf("publish failed with %v, want a timeout", err)
			}
			return
		}
	}
	t.Fatal("publishes never hit the write deadline")
}
