package mqtt

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"
)

func recvOrFail(t *testing.T, ch <-chan Message, what string) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatalf("%s: channel closed", what)
		}
		return m
	case <-time.After(3 * time.Second):
		t.Fatalf("%s: timed out", what)
	}
	return Message{}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Message{Topic: "sensors/temp/1", Payload: json.RawMessage(`{"f":72.5}`)}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != want.Topic || string(got.Payload) != string(want.Payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFrameTooBig(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	if _, err := readFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooBig {
		t.Errorf("want ErrFrameTooBig, got %v", err)
	}
}

func TestPubSub(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("zone/kitchen/co2")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Give the subscription a moment to register, then publish.
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("zone/kitchen/co2", map[string]float64{"ppm": 612}); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, ch, "co2 message")
	var body map[string]float64
	if err := json.Unmarshal(m.Payload, &body); err != nil {
		t.Fatal(err)
	}
	if body["ppm"] != 612 {
		t.Errorf("payload = %v", body)
	}
}

func TestTopicIsolation(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	chA, err := sub.Subscribe("a")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("a", 2); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, chA, "topic a")
	var v int
	if err := json.Unmarshal(m.Payload, &v); err != nil || v != 2 {
		t.Errorf("topic isolation broken: got %s", m.Payload)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var chans []<-chan Message
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ch, err := c.Subscribe("fanout")
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		chans = append(chans, ch)
	}
	_ = clients
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("fanout", "hello"); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		m := recvOrFail(t, ch, "fanout")
		if m.Topic != "fanout" {
			t.Errorf("subscriber %d: topic %q", i, m.Topic)
		}
	}
}

func TestMITMProxyRewrites(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The attacker doubles every reported occupancy count.
	rewrite := func(m Message) Message {
		if m.Topic != "zone/kitchen/occupancy" {
			return m
		}
		var count int
		if err := json.Unmarshal(m.Payload, &count); err != nil {
			return m
		}
		forged, _ := json.Marshal(count * 2)
		m.Payload = forged
		return m
	}
	proxy, err := NewProxy("127.0.0.1:0", b.Addr(), rewrite)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Controller subscribes directly at the broker.
	ctrl, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ch, err := ctrl.Subscribe("zone/kitchen/occupancy")
	if err != nil {
		t.Fatal(err)
	}

	// Sensor node unknowingly publishes through the MITM proxy.
	sensor, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sensor.Close()
	time.Sleep(50 * time.Millisecond)
	if err := sensor.Publish("zone/kitchen/occupancy", 1); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, ch, "forged occupancy")
	var got int
	if err := json.Unmarshal(m.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MITM should have doubled occupancy: got %d", got)
	}
}

func TestProxyPassThroughSubscriptions(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	proxy, err := NewProxy("127.0.0.1:0", b.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Subscribe THROUGH the proxy; messages flow back downstream.
	sub, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("t", "x"); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, ch, "proxied subscription")
}

func TestBrokerSurvivesMalformedClient(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Raw TCP client writes garbage.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The broker must still serve well-formed clients.
	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("ok")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("ok", true); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, ch, "post-garbage publish")
}

func TestClientCloseIdempotent(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close should be a no-op, got %v", err)
	}
}

func TestSubscriberChannelClosesOnDisconnect(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	b.Close() // broker goes away
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("expected channel close, got message")
		}
	case <-time.After(3 * time.Second):
		t.Error("channel did not close after broker shutdown")
	}
	c.Close()
}

// TestBinaryFrameRoundTrip pins the binary frame kind's wire layout.
func TestBinaryFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{0x00, 0x01, 'S', 'H', 0xFF, '{'}
	want := Message{Topic: "home/7/sensor", Payload: payload, Binary: true}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Binary || got.Topic != want.Topic || !bytes.Equal(got.Payload, payload) {
		t.Errorf("round trip: %+v", got)
	}
	// Malformed binary bodies error cleanly: truncated header, topic length
	// past the body end.
	if _, _, err := decodeBinaryBody([]byte{binFrameKind, 0}); err == nil {
		t.Error("truncated binary body accepted")
	}
	if _, _, err := decodeBinaryBody([]byte{binFrameKind, 0xFF, 0xFF, 'a'}); err == nil {
		t.Error("oversized topic length accepted")
	}
}

// TestPublishRawThroughBroker routes a binary publish through the broker to
// exact and wildcard subscribers, interleaved with JSON traffic on the same
// connections — the two frame kinds must coexist on one stream.
func TestPublishRawThroughBroker(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	exact, err := sub.Subscribe("home/9/sensor")
	if err != nil {
		t.Fatal(err)
	}
	wild, err := sub.Subscribe("home/+/sensor")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)

	payload := append([]byte{0xDE, 0xAD}, bytes.Repeat([]byte{0x42}, 1024)...)
	if err := pub.PublishRaw("home/9/sensor", payload); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("home/9/sensor", map[string]int{"day": 3}); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []<-chan Message{exact, wild} {
		bin := recvOrFail(t, ch, "binary frame")
		if !bin.Binary || !bytes.Equal(bin.Payload, payload) {
			t.Fatalf("binary delivery mangled: binary=%v len=%d", bin.Binary, len(bin.Payload))
		}
		jm := recvOrFail(t, ch, "json frame after binary")
		if jm.Binary || string(jm.Payload) != `{"day":3}` {
			t.Fatalf("json delivery after binary mangled: %+v", jm)
		}
	}
}

// TestProxyForwardsBinary checks the MITM proxy passes binary publishes
// through verbatim (its Rewrite hook only sees JSON publish envelopes).
func TestProxyForwardsBinary(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rewrites := 0
	proxy, err := NewProxy("127.0.0.1:0", b.Addr(), func(m Message) Message {
		rewrites++
		return m
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("home/5/sensor")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(proxy.Addr()) // dials the attacker thinking it is the broker
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)

	payload := []byte{binFrameKind, 0x00, 0x07, 'o', 'p', 'a', 'q', 'u', 'e', '!'}
	if err := pub.PublishRaw("home/5/sensor", payload); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, ch, "binary frame via proxy")
	if !m.Binary || !bytes.Equal(m.Payload, payload) {
		t.Fatalf("proxy mangled binary frame: %+v", m)
	}
	if rewrites != 0 {
		t.Fatalf("proxy rewrite hook fired %d times on binary traffic", rewrites)
	}
}
