package mqtt

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"
)

func recvOrFail(t *testing.T, ch <-chan Message, what string) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatalf("%s: channel closed", what)
		}
		return m
	case <-time.After(3 * time.Second):
		t.Fatalf("%s: timed out", what)
	}
	return Message{}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Message{Topic: "sensors/temp/1", Payload: json.RawMessage(`{"f":72.5}`)}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Topic != want.Topic || string(got.Payload) != string(want.Payload) {
		t.Errorf("round trip: %+v", got)
	}
}

func TestFrameTooBig(t *testing.T) {
	var hdr [4]byte
	hdr[0] = 0xFF
	hdr[1] = 0xFF
	hdr[2] = 0xFF
	hdr[3] = 0xFF
	if _, err := readFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooBig {
		t.Errorf("want ErrFrameTooBig, got %v", err)
	}
}

func TestPubSub(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("zone/kitchen/co2")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Give the subscription a moment to register, then publish.
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("zone/kitchen/co2", map[string]float64{"ppm": 612}); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, ch, "co2 message")
	var body map[string]float64
	if err := json.Unmarshal(m.Payload, &body); err != nil {
		t.Fatal(err)
	}
	if body["ppm"] != 612 {
		t.Errorf("payload = %v", body)
	}
}

func TestTopicIsolation(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	chA, err := sub.Subscribe("a")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("b", 1); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("a", 2); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, chA, "topic a")
	var v int
	if err := json.Unmarshal(m.Payload, &v); err != nil || v != 2 {
		t.Errorf("topic isolation broken: got %s", m.Payload)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var chans []<-chan Message
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(b.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ch, err := c.Subscribe("fanout")
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		chans = append(chans, ch)
	}
	_ = clients
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("fanout", "hello"); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		m := recvOrFail(t, ch, "fanout")
		if m.Topic != "fanout" {
			t.Errorf("subscriber %d: topic %q", i, m.Topic)
		}
	}
}

func TestMITMProxyRewrites(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The attacker doubles every reported occupancy count.
	rewrite := func(m Message) Message {
		if m.Topic != "zone/kitchen/occupancy" {
			return m
		}
		var count int
		if err := json.Unmarshal(m.Payload, &count); err != nil {
			return m
		}
		forged, _ := json.Marshal(count * 2)
		m.Payload = forged
		return m
	}
	proxy, err := NewProxy("127.0.0.1:0", b.Addr(), rewrite)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Controller subscribes directly at the broker.
	ctrl, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ch, err := ctrl.Subscribe("zone/kitchen/occupancy")
	if err != nil {
		t.Fatal(err)
	}

	// Sensor node unknowingly publishes through the MITM proxy.
	sensor, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sensor.Close()
	time.Sleep(50 * time.Millisecond)
	if err := sensor.Publish("zone/kitchen/occupancy", 1); err != nil {
		t.Fatal(err)
	}
	m := recvOrFail(t, ch, "forged occupancy")
	var got int
	if err := json.Unmarshal(m.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("MITM should have doubled occupancy: got %d", got)
	}
}

func TestProxyPassThroughSubscriptions(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	proxy, err := NewProxy("127.0.0.1:0", b.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Subscribe THROUGH the proxy; messages flow back downstream.
	sub, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("t", "x"); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, ch, "proxied subscription")
}

func TestBrokerSurvivesMalformedClient(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Raw TCP client writes garbage.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The broker must still serve well-formed clients.
	sub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ch, err := sub.Subscribe("ok")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond)
	if err := pub.Publish("ok", true); err != nil {
		t.Fatal(err)
	}
	recvOrFail(t, ch, "post-garbage publish")
}

func TestClientCloseIdempotent(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second close should be a no-op, got %v", err)
	}
}

func TestSubscriberChannelClosesOnDisconnect(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Subscribe("x")
	if err != nil {
		t.Fatal(err)
	}
	b.Close() // broker goes away
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("expected channel close, got message")
		}
	case <-time.After(3 * time.Second):
		t.Error("channel did not close after broker shutdown")
	}
	c.Close()
}
