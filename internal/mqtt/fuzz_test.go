package mqtt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame hammers the wire decoder with truncated, oversized, and
// malformed frames. The decoder must never panic or over-allocate: every
// input either yields a valid Message or a clean error, and any frame that
// round-trips through writeFrame must decode to the same message.
func FuzzReadFrame(f *testing.F) {
	// Seed: a valid frame.
	var valid bytes.Buffer
	if err := writeFrame(&valid, Message{Topic: "home/1/sensor", Payload: json.RawMessage(`{"x":1}`)}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Seed: truncated header.
	f.Add([]byte{0, 0})
	// Seed: header promising more bytes than follow.
	f.Add([]byte{0, 0, 0, 10, 'a', 'b'})
	// Seed: oversized length announcement.
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, maxFrame+1)
	f.Add(hdr)
	// Seed: length-valid but non-JSON body.
	f.Add([]byte{0, 0, 0, 3, 'x', 'y', 'z'})
	// Seed: a valid binary-kind frame.
	var bin bytes.Buffer
	if err := writeFrame(&bin, Message{Topic: "home/1/sensor", Payload: []byte{0xDE, 0xAD, 0xBE}, Binary: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	// Seed: binary kind with a topic length overrunning the body.
	f.Add([]byte{0, 0, 0, 4, binFrameKind, 0xFF, 0xFF, 'a'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readFrame(bytes.NewReader(data))
		if err != nil {
			// Errors must be classified: framing errors surface as IO or
			// size errors, body errors as JSON errors — never a panic.
			return
		}
		// A successfully decoded message must re-encode, and the encoding
		// must be a fixpoint: encode(decode(encode(m))) == encode(m). (An
		// absent payload re-encodes as JSON null, so the first encode
		// normalizes; byte-level stability is required from then on.)
		var buf1 bytes.Buffer
		if err := writeFrame(&buf1, m); err != nil {
			t.Fatalf("re-encode of accepted message failed: %v", err)
		}
		m2, err := readFrame(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var buf2 bytes.Buffer
		if err := writeFrame(&buf2, m2); err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("encoding not stable:\n%q\n%q", buf1.Bytes(), buf2.Bytes())
		}
	})
}

// TestReadFrameErrors pins the decoder's behaviour on the malformed-frame
// classes the fuzz target explores.
func TestReadFrameErrors(t *testing.T) {
	// Truncated header.
	if _, err := readFrame(bytes.NewReader([]byte{1, 2})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: got %v", err)
	}
	// Empty input.
	if _, err := readFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("empty input: got %v", err)
	}
	// Oversized announcement must be rejected before allocation.
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, maxFrame+1)
	if _, err := readFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized frame: got %v", err)
	}
	// Truncated body.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 9, 'h', 'i'})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated body: got %v", err)
	}
	// Malformed JSON body.
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 2, '{', 'x'})); err == nil {
		t.Error("malformed JSON accepted")
	}
}
