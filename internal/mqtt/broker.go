// Package mqtt implements the minimal MQTT-style publish/subscribe
// transport of the prototype testbed (paper Section VI, Fig 9): sensor
// nodes publish topic-tagged measurements to a broker; the supervisory
// controller subscribes; and a man-in-the-middle proxy — the Raspberry-Pi
// attacker of the paper — can intercept and rewrite messages in flight
// (the Polymorph/Scapy packet-crafting role).
//
// The wire protocol is deliberately small: a 4-byte big-endian frame length
// followed by a JSON-encoded Message. It is not the MQTT 3.1.1 wire format,
// but it preserves the properties the experiment needs — topic routing,
// ordered delivery per connection, and rewritability in transit.
package mqtt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Message is one published datum.
type Message struct {
	Topic   string          `json:"topic"`
	Payload json.RawMessage `json:"payload"`
}

// maxFrame bounds a frame to keep a malformed or malicious peer from
// forcing huge allocations.
const maxFrame = 1 << 20

// ErrFrameTooBig is returned when a peer announces an oversized frame.
var ErrFrameTooBig = errors.New("mqtt: frame exceeds limit")

// writeFrame encodes and writes one message.
func writeFrame(w io.Writer, m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("mqtt: marshal: %w", err)
	}
	if len(data) > maxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// readFrame reads one message.
func readFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, ErrFrameTooBig
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("mqtt: unmarshal: %w", err)
	}
	return m, nil
}

// control frames clients send to the broker.
type control struct {
	Op    string  `json:"op"` // "sub" or "pub"
	Topic string  `json:"topic,omitempty"`
	Msg   Message `json:"msg,omitempty"`
}

// Broker is a topic-routing pub/sub hub over TCP.
type Broker struct {
	ln net.Listener

	mu     sync.Mutex
	subs   map[string]map[net.Conn]*subscriber // exact filter → conn → writer
	wild   map[string]map[net.Conn]*subscriber // wildcard filter → conn → writer
	conns  map[net.Conn]struct{}               // every live connection
	closed bool

	wg sync.WaitGroup
}

type subscriber struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

func (s *subscriber) send(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFrame(s.w, m); err != nil {
		return err
	}
	return s.w.Flush()
}

// NewBroker starts a broker on addr ("127.0.0.1:0" for an ephemeral port).
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt: listen: %w", err)
	}
	b := &Broker{
		ln:    ln,
		subs:  make(map[string]map[net.Conn]*subscriber),
		wild:  make(map[string]map[net.Conn]*subscriber),
		conns: make(map[net.Conn]struct{}),
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serve(conn)
	}
}

func (b *Broker) serve(conn net.Conn) {
	defer b.wg.Done()
	defer func() {
		b.dropConn(conn)
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	sub := &subscriber{w: bufio.NewWriter(conn), c: conn}
	for {
		m, err := readFrame(r)
		if err != nil {
			return
		}
		var ctl control
		if err := json.Unmarshal(m.Payload, &ctl); err != nil {
			return // malformed control frame: drop the client
		}
		switch ctl.Op {
		case "sub":
			if !ValidFilter(ctl.Topic) {
				return // malformed filter: drop the client
			}
			table := b.subs
			if isWildcard(ctl.Topic) {
				table = b.wild
			}
			b.mu.Lock()
			if table[ctl.Topic] == nil {
				table[ctl.Topic] = make(map[net.Conn]*subscriber)
			}
			table[ctl.Topic][conn] = sub
			b.mu.Unlock()
		case "pub":
			b.publish(ctl.Msg)
		default:
			return // protocol violation
		}
	}
}

// publish routes a message to every subscription matching its topic —
// exact filters by direct lookup, wildcard filters ('+' one level, '#'
// trailing remainder) by Match — delivering at most one copy per
// connection even when multiple overlapping filters match.
func (b *Broker) publish(m Message) {
	b.mu.Lock()
	targets := make([]*subscriber, 0, len(b.subs[m.Topic]))
	for _, s := range b.subs[m.Topic] {
		targets = append(targets, s)
	}
	if len(b.wild) > 0 { // dedup only needed once wildcard filters exist
		seen := make(map[net.Conn]struct{}, len(b.subs[m.Topic]))
		for conn := range b.subs[m.Topic] {
			seen[conn] = struct{}{}
		}
		for filter, conns := range b.wild {
			if !Match(filter, m.Topic) {
				continue
			}
			for conn, s := range conns {
				if _, dup := seen[conn]; dup {
					continue
				}
				seen[conn] = struct{}{}
				targets = append(targets, s)
			}
		}
	}
	b.mu.Unlock()
	for _, s := range targets {
		if err := s.send(m); err != nil {
			b.dropConn(s.c)
		}
	}
}

func (b *Broker) dropConn(conn net.Conn) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.subs {
		delete(m, conn)
	}
	for _, m := range b.wild {
		delete(m, conn)
	}
	delete(b.conns, conn)
}

// Close stops the broker and waits for its goroutines.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	err := b.ln.Close()
	b.mu.Lock()
	for conn := range b.conns {
		conn.Close()
	}
	b.subs = make(map[string]map[net.Conn]*subscriber)
	b.wild = make(map[string]map[net.Conn]*subscriber)
	b.mu.Unlock()
	b.wg.Wait()
	return err
}
