// Package mqtt implements the minimal MQTT-style publish/subscribe
// transport of the prototype testbed (paper Section VI, Fig 9): sensor
// nodes publish topic-tagged measurements to a broker; the supervisory
// controller subscribes; and a man-in-the-middle proxy — the Raspberry-Pi
// attacker of the paper — can intercept and rewrite messages in flight
// (the Polymorph/Scapy packet-crafting role).
//
// The wire protocol is deliberately small: a 4-byte big-endian frame length
// followed by a frame body. Bodies come in two kinds, classified by their
// first byte: '{' opens the JSON-encoded Message envelope (control frames,
// ordinary publishes), and 0x01 opens the binary publish layout — kind byte,
// 2-byte big-endian topic length, topic, then an opaque payload forwarded
// verbatim. Binary publishes are routed without any JSON work on either the
// broker or the client path, with pooled encode buffers; they carry the
// streaming layer's day-block frames. It is not the MQTT 3.1.1 wire format,
// but it preserves the properties the experiment needs — topic routing,
// ordered delivery per connection, and rewritability in transit.
package mqtt

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Message is one published datum. Ordinary messages carry JSON payloads
// through the JSON envelope; Binary marks a raw publish (PublishRaw) whose
// Payload is opaque bytes framed in the binary wire layout.
type Message struct {
	Topic   string          `json:"topic"`
	Payload json.RawMessage `json:"payload"`
	// Binary selects the binary frame kind on the wire. It never appears in
	// JSON — the kind is a framing property, not message content.
	Binary bool `json:"-"`
}

// maxFrame bounds a frame to keep a malformed or malicious peer from
// forcing huge allocations.
const maxFrame = 1 << 20

// binFrameKind is the first body byte of a binary publish frame. JSON
// envelope bodies always start with '{', so one byte classifies a body.
const binFrameKind = 0x01

// maxTopicLen bounds a binary frame's topic (its length field is 16-bit).
const maxTopicLen = 1<<16 - 1

// ErrFrameTooBig is returned when a peer announces an oversized frame.
var ErrFrameTooBig = errors.New("mqtt: frame exceeds limit")

// framePool recycles binary encode buffers across publishes — the broker
// fan-out and client publish hot paths run without per-frame allocation.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// appendBinaryBody appends the binary frame body: kind byte, big-endian
// topic length, topic bytes, then the payload verbatim.
func appendBinaryBody(dst []byte, topic string, payload []byte) []byte {
	dst = append(dst, binFrameKind)
	var tl [2]byte
	binary.BigEndian.PutUint16(tl[:], uint16(len(topic)))
	dst = append(dst, tl[:]...)
	dst = append(dst, topic...)
	return append(dst, payload...)
}

// decodeBinaryBody splits a binary frame body into topic and payload. The
// payload aliases body — callers that retain it must copy.
func decodeBinaryBody(body []byte) (topic string, payload []byte, err error) {
	if len(body) < 3 {
		return "", nil, fmt.Errorf("mqtt: binary frame truncated (%d bytes)", len(body))
	}
	tl := int(binary.BigEndian.Uint16(body[1:3]))
	if tl > len(body)-3 {
		return "", nil, fmt.Errorf("mqtt: binary frame topic length %d exceeds body", tl)
	}
	return string(body[3 : 3+tl]), body[3+tl:], nil
}

// writeBody writes one length-prefixed frame body.
func writeBody(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// writeFrame encodes and writes one message in its wire kind: the JSON
// envelope for ordinary messages, the binary layout (assembled in a pooled
// buffer) for Binary ones.
func writeFrame(w io.Writer, m Message) error {
	if m.Binary {
		if len(m.Topic) > maxTopicLen {
			return fmt.Errorf("mqtt: topic %d bytes exceeds binary frame limit", len(m.Topic))
		}
		bp := framePool.Get().(*[]byte)
		body := appendBinaryBody((*bp)[:0], m.Topic, m.Payload)
		err := writeBody(w, body)
		*bp = body[:0]
		framePool.Put(bp)
		return err
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("mqtt: marshal: %w", err)
	}
	return writeBody(w, data)
}

// readBody reads one frame body, reusing buf's storage when it is large
// enough. The returned slice is only valid until the next call reusing the
// same buffer.
func readBody(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, ErrFrameTooBig
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// decodeBody classifies and decodes a frame body. Binary payloads are
// copied out of the read buffer (they outlive it on a client's subscription
// channels); the JSON decoder copies inherently.
func decodeBody(body []byte) (Message, error) {
	if len(body) > 0 && body[0] == binFrameKind {
		topic, payload, err := decodeBinaryBody(body)
		if err != nil {
			return Message{}, err
		}
		return Message{Topic: topic, Payload: append([]byte(nil), payload...), Binary: true}, nil
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return Message{}, fmt.Errorf("mqtt: unmarshal: %w", err)
	}
	return m, nil
}

// readFrame reads and decodes one message.
func readFrame(r io.Reader) (Message, error) {
	body, err := readBody(r, nil)
	if err != nil {
		return Message{}, err
	}
	return decodeBody(body)
}

// control frames clients send to the broker.
type control struct {
	Op    string  `json:"op"` // "sub" or "pub"
	Topic string  `json:"topic,omitempty"`
	Msg   Message `json:"msg,omitempty"`
}

// Broker is a topic-routing pub/sub hub over TCP. It is chaos-capable:
// Suspend severs every connection and stops accepting (a broker crash),
// Resume re-binds the same address and starts accepting again (a broker
// restart) — redial-enabled clients ride the outage via session resume.
type Broker struct {
	addr string // bound address, stable across Suspend/Resume

	mu        sync.Mutex
	ln        net.Listener
	subs      map[string]map[net.Conn]*subscriber // exact filter → conn → writer
	wild      map[string]map[net.Conn]*subscriber // wildcard filter → conn → writer
	conns     map[net.Conn]struct{}               // every live connection
	suspended bool
	closed    bool

	wg sync.WaitGroup
}

type subscriber struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  net.Conn
}

func (s *subscriber) send(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeFrame(s.w, m); err != nil {
		return err
	}
	return s.w.Flush()
}

// NewBroker starts a broker on addr ("127.0.0.1:0" for an ephemeral port).
func NewBroker(addr string) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt: listen: %w", err)
	}
	b := &Broker{
		addr:  ln.Addr().String(),
		ln:    ln,
		subs:  make(map[string]map[net.Conn]*subscriber),
		wild:  make(map[string]map[net.Conn]*subscriber),
		conns: make(map[net.Conn]struct{}),
	}
	b.wg.Add(1)
	go b.acceptLoop(ln)
	return b, nil
}

// Addr returns the broker's listen address. It stays valid across
// Suspend/Resume — the restarted broker re-binds the same port.
func (b *Broker) Addr() string { return b.addr }

func (b *Broker) acceptLoop(ln net.Listener) {
	defer b.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		b.mu.Lock()
		if b.closed || b.suspended {
			b.mu.Unlock()
			conn.Close()
			return
		}
		b.conns[conn] = struct{}{}
		b.mu.Unlock()
		b.wg.Add(1)
		go b.serve(conn)
	}
}

// Suspend simulates a broker crash: the listener closes, every live
// connection is severed, and all subscription state is dropped (a real
// broker restart loses its in-memory session table). Idempotent; a no-op
// after Close.
func (b *Broker) Suspend() {
	b.mu.Lock()
	if b.closed || b.suspended {
		b.mu.Unlock()
		return
	}
	b.suspended = true
	ln := b.ln
	for conn := range b.conns {
		conn.Close()
	}
	b.subs = make(map[string]map[net.Conn]*subscriber)
	b.wild = make(map[string]map[net.Conn]*subscriber)
	b.conns = make(map[net.Conn]struct{})
	b.mu.Unlock()
	ln.Close()
}

// Resume restarts a suspended broker on its original address. The old
// port may linger briefly in the kernel after Suspend, so the re-bind
// retries for a short window before giving up.
func (b *Broker) Resume() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("mqtt: broker closed")
	}
	if !b.suspended {
		b.mu.Unlock()
		return nil
	}
	b.mu.Unlock()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", b.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("mqtt: resume listen: %w", err)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ln.Close()
		return errors.New("mqtt: broker closed")
	}
	b.ln = ln
	b.suspended = false
	b.wg.Add(1)
	b.mu.Unlock()
	go b.acceptLoop(ln)
	return nil
}

func (b *Broker) serve(conn net.Conn) {
	defer b.wg.Done()
	defer func() {
		b.dropConn(conn)
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	sub := &subscriber{w: bufio.NewWriter(conn), c: conn}
	// The read buffer is reused across frames: publish fan-out is synchronous
	// (every subscriber write completes before the next read), and the JSON
	// decoder copies what it keeps.
	var buf []byte
	for {
		body, err := readBody(r, buf)
		if err != nil {
			return
		}
		buf = body
		if len(body) > 0 && body[0] == binFrameKind {
			// A binary body is an implicit publish: route it straight off the
			// read buffer with zero JSON work and zero payload copies.
			topic, payload, derr := decodeBinaryBody(body)
			if derr != nil {
				return // malformed frame: drop the client
			}
			b.publish(Message{Topic: topic, Payload: payload, Binary: true})
			continue
		}
		var m Message
		if err := json.Unmarshal(body, &m); err != nil {
			return // malformed frame: drop the client
		}
		var ctl control
		if err := json.Unmarshal(m.Payload, &ctl); err != nil {
			return // malformed control frame: drop the client
		}
		switch ctl.Op {
		case "sub":
			if !ValidFilter(ctl.Topic) {
				return // malformed filter: drop the client
			}
			// Table selection must happen under the lock: Suspend swaps both
			// map headers when it drops the session state.
			b.mu.Lock()
			table := b.subs
			if isWildcard(ctl.Topic) {
				table = b.wild
			}
			if table[ctl.Topic] == nil {
				table[ctl.Topic] = make(map[net.Conn]*subscriber)
			}
			table[ctl.Topic][conn] = sub
			b.mu.Unlock()
		case "pub":
			b.publish(ctl.Msg)
		default:
			return // protocol violation
		}
	}
}

// publish routes a message to every subscription matching its topic —
// exact filters by direct lookup, wildcard filters ('+' one level, '#'
// trailing remainder) by Match — delivering at most one copy per
// connection even when multiple overlapping filters match.
func (b *Broker) publish(m Message) {
	b.mu.Lock()
	targets := make([]*subscriber, 0, len(b.subs[m.Topic]))
	for _, s := range b.subs[m.Topic] {
		targets = append(targets, s)
	}
	if len(b.wild) > 0 { // dedup only needed once wildcard filters exist
		seen := make(map[net.Conn]struct{}, len(b.subs[m.Topic]))
		for conn := range b.subs[m.Topic] {
			seen[conn] = struct{}{}
		}
		for filter, conns := range b.wild {
			if !Match(filter, m.Topic) {
				continue
			}
			for conn, s := range conns {
				if _, dup := seen[conn]; dup {
					continue
				}
				seen[conn] = struct{}{}
				targets = append(targets, s)
			}
		}
	}
	b.mu.Unlock()
	for _, s := range targets {
		if err := s.send(m); err != nil {
			b.dropConn(s.c)
		}
	}
}

func (b *Broker) dropConn(conn net.Conn) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.subs {
		delete(m, conn)
	}
	for _, m := range b.wild {
		delete(m, conn)
	}
	delete(b.conns, conn)
}

// Close stops the broker and waits for its goroutines.
func (b *Broker) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	suspended := b.suspended
	ln := b.ln
	b.mu.Unlock()
	err := ln.Close()
	if suspended {
		err = nil // listener already closed by Suspend
	}
	b.mu.Lock()
	for conn := range b.conns {
		conn.Close()
	}
	b.subs = make(map[string]map[net.Conn]*subscriber)
	b.wild = make(map[string]map[net.Conn]*subscriber)
	b.mu.Unlock()
	b.wg.Wait()
	return err
}
