package mqtt

import (
	"encoding/json"
	"testing"
	"time"
)

func TestValidFilter(t *testing.T) {
	valid := []string{
		"a", "a/b", "+", "#", "a/+/c", "a/b/#", "+/+", "a/+/#", "/", "a//b",
	}
	for _, f := range valid {
		if !ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = false, want true", f)
		}
	}
	invalid := []string{
		"", "a/#/b", "#/a", "a+", "+a", "a#", "a/b+/c", "a/#b",
	}
	for _, f := range invalid {
		if ValidFilter(f) {
			t.Errorf("ValidFilter(%q) = true, want false", f)
		}
	}
}

func TestMatch(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		// Exact.
		{"home/1/sensor", "home/1/sensor", true},
		{"home/1/sensor", "home/2/sensor", false},
		{"home/1/sensor", "home/1/sensor/x", false},
		// '+' matches exactly one level.
		{"home/+/sensor", "home/1/sensor", true},
		{"home/+/sensor", "home/abc/sensor", true},
		{"home/+/sensor", "home/1/2/sensor", false},
		{"home/+/sensor", "home/sensor", false},
		{"home/+", "home/1", true},
		{"home/+", "home", false},
		{"home/+", "home/1/2", false},
		{"+/+", "a/b", true},
		{"+/+", "a", false},
		// Empty levels are real levels.
		{"home/+", "home/", true},
		{"+", "", true},
		// '#' matches the remainder, including zero levels.
		{"#", "anything/at/all", true},
		{"home/#", "home", true},
		{"home/#", "home/1", true},
		{"home/#", "home/1/sensor", true},
		{"home/#", "hometown", false},
		{"home/1/#", "home/2", false},
		// Mixed.
		{"home/+/#", "home/1", true},
		{"home/+/#", "home/1/sensor/0", true},
		{"home/+/#", "home", false},
	}
	for _, c := range cases {
		if got := Match(c.filter, c.topic); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

// TestWildcardSubscription routes real traffic: a fleet-wide "home/+/sensor"
// subscriber sees every home's stream; an exact subscriber only its own; an
// overlapping pair of filters on one connection still delivers one copy per
// subscription with no duplicates from the broker.
func TestWildcardSubscription(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	fleet, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	fleetCh, err := fleet.Subscribe("home/+/sensor")
	if err != nil {
		t.Fatal(err)
	}

	one, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	oneCh, err := one.Subscribe("home/1/sensor")
	if err != nil {
		t.Fatal(err)
	}

	pub, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(50 * time.Millisecond) // let subscriptions register

	for _, topic := range []string{"home/1/sensor", "home/2/sensor", "home/1/actuator"} {
		if err := pub.Publish(topic, topic); err != nil {
			t.Fatal(err)
		}
	}

	recv := func(ch <-chan Message, n int) []string {
		var got []string
		for i := 0; i < n; i++ {
			select {
			case m := <-ch:
				var s string
				if err := json.Unmarshal(m.Payload, &s); err != nil {
					t.Fatal(err)
				}
				got = append(got, m.Topic)
			case <-time.After(2 * time.Second):
				t.Fatalf("timed out after %d of %d messages", i, n)
			}
		}
		return got
	}
	fleetGot := recv(fleetCh, 2)
	if fleetGot[0] != "home/1/sensor" || fleetGot[1] != "home/2/sensor" {
		t.Errorf("fleet subscriber got %v", fleetGot)
	}
	oneGot := recv(oneCh, 1)
	if oneGot[0] != "home/1/sensor" {
		t.Errorf("exact subscriber got %v", oneGot)
	}
	// Nothing further should arrive (actuator topic matches neither filter).
	select {
	case m := <-fleetCh:
		t.Errorf("unexpected extra fleet message on %s", m.Topic)
	case m := <-oneCh:
		t.Errorf("unexpected extra exact message on %s", m.Topic)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestOverlappingFiltersOneConnection checks broker-side per-connection
// dedupe plus client-side per-subscription fan-out: a connection holding an
// exact and a wildcard filter that both match receives the frame once and
// delivers it to both subscription channels.
func TestOverlappingFiltersOneConnection(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exact, err := c.Subscribe("home/7/sensor")
	if err != nil {
		t.Fatal(err)
	}
	wild, err := c.Subscribe("home/#")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.Publish("home/7/sensor", 1); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]<-chan Message{"exact": exact, "wild": wild} {
		select {
		case m := <-ch:
			if m.Topic != "home/7/sensor" {
				t.Errorf("%s: got topic %s", name, m.Topic)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s subscription starved", name)
		}
	}
	// The broker deduped per connection: each subscription sees exactly one
	// copy, so both channels must now be empty.
	select {
	case <-exact:
		t.Error("duplicate delivery on exact subscription")
	case <-wild:
		t.Error("duplicate delivery on wildcard subscription")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestSubscribeRejectsBadFilter(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Subscribe("bad/#/middle"); err == nil {
		t.Error("malformed filter accepted")
	}
}
