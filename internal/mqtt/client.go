package mqtt

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Backoff is an exponential retry schedule: Delay(0) == Base and each
// further attempt doubles it up to Max. The zero value uses the package
// defaults (50ms base, 2s cap).
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// DialOptions configures connection establishment and per-frame deadlines.
// The zero value matches the historical Dial behaviour plus a 10s dial
// deadline (a dead broker address fails instead of hanging in the kernel).
type DialOptions struct {
	// Timeout bounds each TCP connection attempt; 0 defaults to 10s.
	Timeout time.Duration
	// Attempts is the number of dial attempts before giving up, with
	// exponential backoff between them; 0 defaults to 1 (no retry).
	Attempts int
	// Backoff schedules the delay between dial attempts.
	Backoff Backoff
	// WriteTimeout bounds each control-frame write (publish/subscribe) on
	// the resulting client; 0 leaves writes unbounded.
	WriteTimeout time.Duration

	// Redial enables session resume: when an established connection is
	// lost, the client redials (Timeout per attempt, Backoff between
	// attempts) and transparently re-issues every active subscription, so
	// subscription channels stay open across a broker restart. Each resume
	// bumps the session Epoch — consumers that tag frames with it can
	// discard stale deliveries straddling the outage. Publishes issued
	// while the connection is down fail fast with ErrDisconnected; frames
	// the broker would have delivered during the outage are lost (the
	// transport is at-most-once), which callers absorb with their own
	// sequencing/retry machinery.
	Redial bool
	// RedialAttempts bounds reconnection attempts per outage; 0 (the
	// default) retries until Close — the right behaviour for long-running
	// services that must outlive arbitrary broker downtime.
	RedialAttempts int
}

// ErrDisconnected is returned by publishes and subscribes issued while a
// redial-enabled client is between connections.
var ErrDisconnected = errors.New("mqtt: connection down (session resuming)")

// Client is a broker connection that can publish and subscribe. With
// DialOptions.Redial it is a session: the connection underneath may be
// replaced after a broker restart while subscriptions persist.
type Client struct {
	addr         string
	opts         DialOptions
	writeTimeout time.Duration
	epoch        atomic.Int64

	wmu  sync.Mutex
	conn net.Conn
	w    *bufio.Writer
	down bool // between connections (redial in progress)

	mu     sync.Mutex
	subs   map[string][]chan Message
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// Dial connects to a broker (or a MITM proxy posing as one) with default
// options.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, DialOptions{})
}

// DialWithOptions connects to a broker with bounded dial attempts: each
// attempt gets o.Timeout, and failed attempts back off exponentially
// before redialing — the reconnect schedule a fleet client rides through a
// broker restart.
func DialWithOptions(addr string, o DialOptions) (*Client, error) {
	attempts := o.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var conn net.Conn
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(o.Backoff.Delay(i - 1))
		}
		conn, err = net.DialTimeout("tcp", addr, dialTimeout(o))
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("mqtt: dial (%d attempts): %w", attempts, err)
	}
	c := &Client{
		addr:         addr,
		opts:         o,
		conn:         conn,
		writeTimeout: o.WriteTimeout,
		w:            bufio.NewWriter(conn),
		subs:         make(map[string][]chan Message),
		done:         make(chan struct{}),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func dialTimeout(o DialOptions) time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 10 * time.Second
}

// Epoch counts completed session resumes — 0 until the first broker outage
// is ridden out. Consumers tag in-flight frames with the epoch they were
// sent under and drop frames from older epochs after a resume.
func (c *Client) Epoch() int64 { return c.epoch.Load() }

func (c *Client) readLoop() {
	defer c.wg.Done()
	// Close every subscription channel on the way out — on the read-error
	// path AND the done path (Close racing a blocked dispatch below). A
	// channel left open here strands its consumer until its own receive
	// timeout instead of failing fast with a closed-connection signal.
	defer func() {
		c.mu.Lock()
		for _, chans := range c.subs {
			for _, ch := range chans {
				close(ch)
			}
		}
		c.subs = make(map[string][]chan Message)
		c.mu.Unlock()
	}()
	r := bufio.NewReader(c.conn)
	// The read buffer is reused across frames; decodeBody copies whatever
	// outlives it (JSON inherently, binary payloads explicitly).
	var buf []byte
	for {
		body, rerr := readBody(r, buf)
		if rerr != nil {
			// Session resume: a lost connection redials and resubscribes
			// instead of tearing the session down.
			if r = c.resume(); r == nil {
				return
			}
			buf = nil
			continue
		}
		buf = body
		m, err := decodeBody(body)
		if err != nil {
			return
		}
		// Dispatch to every subscription whose filter matches the topic;
		// each subscription sees the message once.
		c.mu.Lock()
		var chans []chan Message
		if exact := c.subs[m.Topic]; len(exact) > 0 {
			chans = append(chans, exact...)
		}
		for filter, fchans := range c.subs {
			if filter == m.Topic || !isWildcard(filter) || !Match(filter, m.Topic) {
				continue
			}
			chans = append(chans, fchans...)
		}
		c.mu.Unlock()
		for _, ch := range chans {
			select {
			case ch <- m:
			case <-c.done:
				return
			}
		}
	}
}

// resume is the session-resume loop the read loop falls into when its
// connection dies: redial with the configured backoff, swap the connection
// in under the write lock, re-issue every active subscription, bump the
// session epoch, and hand a reader over the new connection back. Returns
// nil when redial is disabled, the attempt budget is exhausted, or the
// client closed — the read loop then winds the session down.
func (c *Client) resume() *bufio.Reader {
	if !c.opts.Redial || c.isClosed() {
		return nil
	}
	c.wmu.Lock()
	c.down = true
	c.wmu.Unlock()
	// Dials abort promptly when Close fires mid-outage.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-c.done:
			cancel()
		case <-ctx.Done():
		}
	}()
	for attempt := 0; c.opts.RedialAttempts == 0 || attempt < c.opts.RedialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-c.done:
				return nil
			case <-time.After(c.opts.Backoff.Delay(attempt - 1)):
			}
		}
		if c.isClosed() {
			return nil
		}
		d := net.Dialer{Timeout: dialTimeout(c.opts)}
		conn, err := d.DialContext(ctx, "tcp", c.addr)
		if err != nil {
			continue
		}
		c.mu.Lock()
		filters := make([]string, 0, len(c.subs))
		for f := range c.subs {
			filters = append(filters, f)
		}
		closed := c.closed
		c.mu.Unlock()
		if closed {
			conn.Close()
			return nil
		}
		c.wmu.Lock()
		old := c.conn
		c.conn, c.w = conn, bufio.NewWriter(conn)
		c.down = false
		c.wmu.Unlock()
		if old != nil {
			old.Close()
		}
		// Re-register every active subscription on the new connection; a
		// failure here is just a failed attempt — mark the session down
		// again and keep redialing.
		resubscribed := true
		for _, f := range filters {
			if err := c.sendControl(control{Op: "sub", Topic: f}); err != nil {
				resubscribed = false
				break
			}
		}
		if !resubscribed {
			c.wmu.Lock()
			c.down = true
			c.wmu.Unlock()
			conn.Close()
			continue
		}
		c.epoch.Add(1)
		return bufio.NewReader(conn)
	}
	return nil
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) sendControl(ctl control) error {
	payload, err := json.Marshal(ctl)
	if err != nil {
		return err
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.down {
		return fmt.Errorf("mqtt: %s %q: %w", ctl.Op, ctl.Topic+ctl.Msg.Topic, ErrDisconnected)
	}
	if c.writeTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	if err := writeFrame(c.w, Message{Topic: "$ctl", Payload: payload}); err != nil {
		return err
	}
	return c.w.Flush()
}

// Publish sends payload (JSON-encoded) on the topic.
func (c *Client) Publish(topic string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("mqtt: encode payload: %w", err)
	}
	return c.sendControl(control{Op: "pub", Msg: Message{Topic: topic, Payload: data}})
}

// PublishRaw sends an opaque binary payload on the topic through the binary
// frame kind — no JSON encoding on the client, the broker, or the delivery
// path, with pooled frame buffers throughout. The payload is written to the
// wire before return, so callers may reuse its storage immediately.
func (c *Client) PublishRaw(topic string, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.down {
		return fmt.Errorf("mqtt: pub %q: %w", topic, ErrDisconnected)
	}
	if c.writeTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	if err := writeFrame(c.w, Message{Topic: topic, Payload: payload, Binary: true}); err != nil {
		return err
	}
	return c.w.Flush()
}

// ErrBadFilter is returned for malformed subscription filters.
var ErrBadFilter = errors.New("mqtt: malformed topic filter")

// Subscribe registers for a topic filter and returns the delivery channel.
// Filters may use MQTT wildcards: '+' matches one level, a trailing '#'
// matches the remainder (so "home/+/sensor" collects every home's sensor
// stream). The channel closes when the client disconnects.
func (c *Client) Subscribe(topic string) (<-chan Message, error) {
	if !ValidFilter(topic) {
		return nil, fmt.Errorf("%w: %q", ErrBadFilter, topic)
	}
	ch := make(chan Message, 64)
	c.mu.Lock()
	c.subs[topic] = append(c.subs[topic], ch)
	c.mu.Unlock()
	if err := c.sendControl(control{Op: "sub", Topic: topic}); err != nil {
		return nil, err
	}
	return ch, nil
}

// Close disconnects and waits for the reader goroutine.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	// The connection is swapped under wmu during session resume, so take
	// the same lock to close whichever connection is current.
	c.wmu.Lock()
	var err error
	if c.conn != nil {
		err = c.conn.Close()
	}
	c.wmu.Unlock()
	c.wg.Wait()
	return err
}

// Proxy is the man-in-the-middle attacker: clients dial the proxy thinking
// it is the broker; every frame passes through Rewrite before forwarding
// (ARP-poisoning + packet-crafting, Section VI).
type Proxy struct {
	ln     net.Listener
	target string
	// Rewrite transforms broker-bound frames; returning the message
	// unchanged forwards it verbatim. Only "pub" control frames reach it.
	Rewrite func(Message) Message

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg sync.WaitGroup
}

// NewProxy starts a MITM proxy on addr forwarding to the broker at target.
func NewProxy(addr, target string, rewrite func(Message) Message) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mqtt: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, Rewrite: rewrite, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

func (p *Proxy) track(conn net.Conn) {
	p.mu.Lock()
	p.conns[conn] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.bridge(conn)
	}
}

func (p *Proxy) bridge(client net.Conn) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)
	defer client.Close()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	p.track(upstream)
	defer p.untrack(upstream)
	defer upstream.Close()

	// Downstream (broker → client): verbatim body copy, no decoding at all.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer client.Close()
		defer upstream.Close()
		r := bufio.NewReader(upstream)
		w := bufio.NewWriter(client)
		var buf []byte
		for {
			body, err := readBody(r, buf)
			if err != nil {
				return
			}
			buf = body
			if err := writeBody(w, body); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()

	// Upstream (client → broker): rewrite published measurements. Rewrite
	// applies to the JSON publish envelope; binary bodies forward verbatim
	// (the fleet's clean-path block frames are not this attacker's target).
	r := bufio.NewReader(client)
	w := bufio.NewWriter(upstream)
	var buf []byte
	for {
		body, err := readBody(r, buf)
		if err != nil {
			return
		}
		buf = body
		if len(body) > 0 && body[0] == binFrameKind {
			if err := writeBody(w, body); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
			continue
		}
		var m Message
		if err := json.Unmarshal(body, &m); err != nil {
			return
		}
		var ctl control
		if err := json.Unmarshal(m.Payload, &ctl); err == nil && ctl.Op == "pub" && p.Rewrite != nil {
			ctl.Msg = p.Rewrite(ctl.Msg)
			payload, err := json.Marshal(ctl)
			if err != nil {
				return
			}
			m.Payload = payload
		}
		if err := writeFrame(w, m); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops the proxy, severs live bridges, and waits for its goroutines.
func (p *Proxy) Close() error {
	err := p.ln.Close()
	p.mu.Lock()
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}
