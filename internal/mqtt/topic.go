package mqtt

import "strings"

// Topic filters follow MQTT 3.1.1 wildcard semantics: topics are
// '/'-separated level lists; a '+' filter level matches exactly one topic
// level (any value, including empty), and a trailing '#' level matches the
// remainder of the topic — zero or more levels, so "home/#" matches both
// "home" and "home/1/sensor". The fleet runtime leans on this for
// fleet-wide subscriptions like "home/+/sensor".

// ValidFilter reports whether a subscription filter is well-formed: it is
// non-empty, '#' appears only as the final whole level, and '+' only as a
// whole level.
func ValidFilter(filter string) bool {
	if filter == "" {
		return false
	}
	levels := strings.Split(filter, "/")
	for i, l := range levels {
		switch {
		case l == "#":
			if i != len(levels)-1 {
				return false // '#' must terminate the filter
			}
		case strings.ContainsAny(l, "#+") && l != "+":
			return false // wildcards must occupy a whole level
		}
	}
	return true
}

// Match reports whether a well-formed filter matches a concrete topic.
// Filters without wildcards match only the identical topic. Match does not
// validate the filter; run ValidFilter first when the filter is untrusted.
func Match(filter, topic string) bool {
	if !strings.ContainsAny(filter, "#+") {
		return filter == topic // exact-match fast path
	}
	fl := strings.Split(filter, "/")
	tl := strings.Split(topic, "/")
	for i, f := range fl {
		if f == "#" {
			return true // consumes the rest, including zero levels
		}
		if i >= len(tl) {
			return false // filter has more levels than the topic
		}
		if f != "+" && f != tl[i] {
			return false
		}
	}
	return len(fl) == len(tl)
}

// isWildcard reports whether the filter contains any wildcard level.
func isWildcard(filter string) bool {
	return strings.ContainsAny(filter, "#+")
}
