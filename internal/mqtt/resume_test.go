package mqtt

import (
	"errors"
	"testing"
	"time"
)

// TestSessionResumeAcrossBrokerRestart drives the full outage ride: an
// established session loses its broker, fails publishes fast while down,
// then transparently redials, resubscribes, and delivers again on the same
// subscription channel — with the epoch bumped so consumers can fence
// stale frames.
func TestSessionResumeAcrossBrokerRestart(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := DialWithOptions(b.Addr(), DialOptions{
		Redial:  true,
		Timeout: 2 * time.Second,
		Backoff: Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch, err := c.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery before the outage")
	}

	b.Suspend()
	// The client notices the severed connection and fails publishes fast.
	// The first write after the cut may drain into the kernel buffer, so
	// poll until the session marks itself down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Publish("t", 0)
		if errors.Is(err, ErrDisconnected) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish never failed with ErrDisconnected during the outage (last: %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := b.Resume(); err != nil {
		t.Fatal(err)
	}
	// The session redials and resubscribes on its own; frames published in
	// the gap are lost (at-most-once), so publish until one round-trips.
	deadline = time.Now().Add(10 * time.Second)
	for delivered := false; !delivered; {
		if time.Now().After(deadline) {
			t.Fatal("subscription never came back after broker restart")
		}
		if err := c.Publish("t", 2); err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		select {
		case _, ok := <-ch:
			if !ok {
				t.Fatal("subscription channel closed across the outage")
			}
			delivered = true
		case <-time.After(50 * time.Millisecond):
		}
	}
	if c.Epoch() == 0 {
		t.Fatal("session resume did not bump the epoch")
	}
}

// TestSessionResumeExhaustsAttempts: with a bounded redial budget against a
// permanently dead broker, the session gives up and winds down — the
// subscription channel closes instead of hanging forever.
func TestSessionResumeExhaustsAttempts(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialWithOptions(b.Addr(), DialOptions{
		Redial:         true,
		RedialAttempts: 2,
		Timeout:        200 * time.Millisecond,
		Backoff:        Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ch, err := c.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	b.Close() // the broker never comes back
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return // session wound down cleanly
			}
		case <-deadline:
			t.Fatal("subscription channel never closed after redial budget ran out")
		}
	}
}

// TestCloseDuringOutage: Close must not hang while the session is mid-redial
// against a dead broker.
func TestCloseDuringOutage(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialWithOptions(b.Addr(), DialOptions{
		Redial:  true,
		Timeout: 30 * time.Second, // dials would block for a long time
		Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	b.Close()
	time.Sleep(20 * time.Millisecond) // let the resume loop start
	done := make(chan struct{})
	go func() {
		c.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung during session resume")
	}
}

// TestBrokerSuspendResumeFreshClients: after a Resume, clients without
// session resume can dial the same address from scratch.
func TestBrokerSuspendResumeFreshClients(t *testing.T) {
	b, err := NewBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	addr := b.Addr()
	b.Suspend()
	b.Suspend() // idempotent
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded against a suspended broker")
	}
	if err := b.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := b.Resume(); err != nil { // idempotent
		t.Fatal(err)
	}
	if b.Addr() != addr {
		t.Fatalf("address changed across restart: %s vs %s", b.Addr(), addr)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial after resume: %v", err)
	}
	defer c.Close()
	ch, err := c.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("t", 1); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("restarted broker does not route")
	}
}
