package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// TestBuiltinsRoundTrip asserts every registered builtin builds a valid
// house and generates a well-formed trace: the registry is usable end to
// end without special-casing any ID.
func TestBuiltinsRoundTrip(t *testing.T) {
	ids := IDs()
	if len(ids) < 6 {
		t.Fatalf("%d builtins registered, want >= 6 (A, B + 4 archetypes)", len(ids))
	}
	if ids[0] != "A" || ids[1] != "B" {
		t.Fatalf("paper pair must lead the registry, got %v", ids[:2])
	}
	for _, id := range ids {
		sp, ok := Get(id)
		if !ok {
			t.Fatalf("IDs() lists %q but Get misses it", id)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		h, err := sp.Build()
		if err != nil {
			t.Errorf("%s: build: %v", id, err)
			continue
		}
		if h.Name != id {
			t.Errorf("%s: house named %q", id, h.Name)
		}
		if len(h.Zones) != len(sp.Zones)+1 {
			t.Errorf("%s: %d zones, want %d + Outside", id, len(h.Zones), len(sp.Zones))
		}
		// Every occupant must be able to conduct every activity in a real
		// zone; without an explicit pin the zone's kind must match the
		// activity's canonical zone (a pinned assignment — e.g. the studio's
		// bedroom activities in the main room — may cross kinds on purpose).
		for o := range h.Occupants {
			for a := home.ActivityID(0); a < home.NumActivities; a++ {
				z := h.ZoneForActivity(o, a)
				want := home.ActivityByID(a).Zone
				if want == home.Outside {
					if z != home.Outside {
						t.Errorf("%s: occupant %d activity %v should be Outside, got zone %d", id, o, a, z)
					}
					continue
				}
				if int(z) <= 0 || int(z) >= len(h.Zones) {
					t.Fatalf("%s: occupant %d activity %v has no zone (%d)", id, o, a, z)
				}
				pinned := o < len(sp.ZoneAssignments) && int(want) < len(sp.ZoneAssignments[o]) &&
					sp.ZoneAssignments[o][want] != home.Outside
				if !pinned && h.KindOf(z) != want {
					t.Errorf("%s: occupant %d activity %v lands in %v-kind zone %d, want kind %v",
						id, o, a, h.KindOf(z), z, want)
				}
			}
		}
		tr, err := sp.Generate(3, 7)
		if err != nil {
			t.Errorf("%s: generate: %v", id, err)
			continue
		}
		if tr.NumDays() != 3 {
			t.Errorf("%s: %d days", id, tr.NumDays())
		}
		for o := range h.Occupants {
			if eps := tr.Episodes(o); len(eps) == 0 {
				t.Errorf("%s: occupant %d has no episodes", id, o)
			}
			for d := range tr.Days {
				for _, z := range tr.Days[d].Zone[o] {
					if int(z) < 0 || int(z) >= len(h.Zones) {
						t.Fatalf("%s: occupant %d recorded in out-of-range zone %d", id, o, z)
					}
				}
			}
		}
	}
}

// TestArasSpecsMatchLegacyPipeline asserts the registry's "A"/"B" specs
// reproduce the hardwired NewHouse+Generate pipeline byte for byte — the
// refactor's central compatibility guarantee.
func TestArasSpecsMatchLegacyPipeline(t *testing.T) {
	for _, name := range []string{"A", "B"} {
		sp, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %s not registered", name)
		}
		legacyHouse := home.MustHouse(name)
		legacyTrace, err := aras.Generate(legacyHouse, aras.GeneratorConfig{Days: 4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		specTrace, err := sp.Generate(4, 99)
		if err != nil {
			t.Fatal(err)
		}
		var legacyCSV, specCSV bytes.Buffer
		if err := legacyTrace.WriteCSV(&legacyCSV); err != nil {
			t.Fatal(err)
		}
		if err := specTrace.WriteCSV(&specCSV); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(legacyCSV.Bytes(), specCSV.Bytes()) {
			t.Errorf("house %s: spec-generated trace diverges from the legacy pipeline", name)
		}
	}
}

// TestSynthDeterminism asserts Synth is a pure function of its arguments
// and that its worlds generate deterministically.
func TestSynthDeterminism(t *testing.T) {
	a := Synth(9, 3, 42)
	b := Synth(9, 3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Synth(9,3,42) is not deterministic")
	}
	if a.ID != SynthID(9, 3, 42) {
		t.Errorf("ID %q, want %q", a.ID, SynthID(9, 3, 42))
	}
	if len(a.Zones) != 9 || len(a.Occupants) != 3 {
		t.Fatalf("shape %dz/%do, want 9z/3o", len(a.Zones), len(a.Occupants))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tr1, err := a.Generate(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := b.Generate(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2 bytes.Buffer
	if err := tr1.WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := tr2.WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("identical Synth specs generated different traces")
	}
	if reflect.DeepEqual(Synth(9, 3, 43), a) {
		t.Error("different seeds produced identical specs")
	}
}

// TestSynthShapes asserts the sweep-relevant shapes (including the
// acceptance floor of 12 zones / 4 occupants) build and generate.
func TestSynthShapes(t *testing.T) {
	for _, shape := range []struct{ z, o int }{{4, 1}, {8, 3}, {12, 4}, {16, 6}} {
		sp := Synth(shape.z, shape.o, 1)
		h, err := sp.Build()
		if err != nil {
			t.Errorf("%dz/%do: %v", shape.z, shape.o, err)
			continue
		}
		if len(h.Zones)-1 != shape.z || len(h.Occupants) != shape.o {
			t.Errorf("%s: built %dz/%do", sp.ID, len(h.Zones)-1, len(h.Occupants))
		}
	}
	// Degenerate shapes are clamped, not rejected, and SynthID clamps
	// identically so precomputed cache keys always match.
	if sp := Synth(0, 0, 1); len(sp.Zones) != 4 || len(sp.Occupants) != 1 {
		t.Errorf("clamping failed: %dz/%do", len(sp.Zones), len(sp.Occupants))
	}
	if Synth(0, 0, 1).ID != SynthID(0, 0, 1) {
		t.Errorf("SynthID clamp mismatch: %q vs %q", Synth(0, 0, 1).ID, SynthID(0, 0, 1))
	}
}

// TestRegisterValidation asserts bad specs are rejected and duplicates
// refused.
func TestRegisterValidation(t *testing.T) {
	if err := Register(Spec{}); err == nil {
		t.Error("empty spec should be rejected")
	}
	if err := Register(Spec{ID: "bad", Controller: "pid"}); err == nil {
		t.Error("unknown controller should be rejected")
	}
	// No bedroom-kind zone and no pinning: occupants cannot sleep anywhere.
	bad := Spec{
		ID: "bad-no-bedroom",
		Zones: []ZoneSpec{
			{Name: "Living", Kind: home.Livingroom, VolumeFt3: 1000, AreaFt2: 100, MaxOccupancy: 4},
			{Name: "Kitchen", Kind: home.Kitchen, VolumeFt3: 900, AreaFt2: 100, MaxOccupancy: 4},
			{Name: "Bath", Kind: home.Bathroom, VolumeFt3: 400, AreaFt2: 45, MaxOccupancy: 1},
		},
		Occupants: []OccupantSpec{{Name: "X", Demographics: 1}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("missing bedroom kind without pinning should be rejected")
	}
	sp, _ := Get("A")
	if err := Register(sp); err == nil {
		t.Error("duplicate ID should be rejected")
	}
}
