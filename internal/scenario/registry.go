package scenario

import (
	"fmt"
	"sync"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
)

// The registry maps scenario IDs to specs. Builtins are registered at init;
// applications may add their own with Register.
var (
	regMu    sync.RWMutex
	registry = make(map[string]Spec)
	regOrder []string
)

// ErrDuplicateID is returned by Register for an already-registered ID.
var ErrDuplicateID = fmt.Errorf("%w: duplicate scenario ID", ErrBadSpec)

// Register validates the spec and adds it to the registry.
func Register(sp Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[sp.ID]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, sp.ID)
	}
	registry[sp.ID] = sp
	regOrder = append(regOrder, sp.ID)
	return nil
}

// MustRegister is Register panicking on error, for builtin registration.
func MustRegister(sp Spec) {
	if err := Register(sp); err != nil {
		panic(err)
	}
}

// Get returns the registered spec for the ID.
func Get(id string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sp, ok := registry[id]
	return sp, ok
}

// IDs returns all registered scenario IDs in registration order (builtins
// first, with the paper's ARAS pair "A", "B" leading).
func IDs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// profile is a ScheduleProfile literal helper for the builtin tables.
func profile(p aras.ScheduleProfile) *aras.ScheduleProfile { return &p }

func init() {
	// The paper's two ARAS houses, derived from the same canonical
	// blueprints NewHouse builds from, with their default schedule profiles
	// made explicit — registry runs of "A"/"B" reproduce the hardwired
	// pipeline byte for byte.
	for _, name := range []string{"A", "B"} {
		bp, err := home.ArasBlueprint(name)
		if err != nil {
			panic(err)
		}
		sp := Spec{
			ID:          name,
			Description: "ARAS house " + name + " (Haque et al., DSN 2023 evaluation pair)",
		}
		for _, z := range bp.Zones[1:] {
			sp.Zones = append(sp.Zones, ZoneSpec{
				Name: z.Name, Kind: z.Kind,
				VolumeFt3: z.VolumeFt3, AreaFt2: z.AreaFt2,
				MaxOccupancy: z.MaxOccupancy,
			})
		}
		for i, o := range bp.Occupants {
			sp.Occupants = append(sp.Occupants, OccupantSpec{
				Name:         o.Name,
				Demographics: o.Demographics,
				Profile:      profile(aras.DefaultProfile(name, i)),
			})
		}
		MustRegister(sp)
	}

	// Studio: one resident in a single main room doubling as bedroom and
	// living space, with a kitchenette and a bathroom. The bedroom-kind
	// activities are pinned to the studio room.
	MustRegister(Spec{
		ID:          "studio",
		Description: "studio apartment, one home-office resident, 3 zones",
		Zones: []ZoneSpec{
			{Name: "Studio", Kind: home.Livingroom, VolumeFt3: 1800, AreaFt2: 200, MaxOccupancy: 4},
			{Name: "Kitchenette", Kind: home.Kitchen, VolumeFt3: 540, AreaFt2: 60, MaxOccupancy: 2},
			{Name: "Bathroom", Kind: home.Bathroom, VolumeFt3: 380, AreaFt2: 42, MaxOccupancy: 1},
		},
		Occupants: []OccupantSpec{
			{Name: "Riley", Demographics: 1.0, Profile: profile(aras.ScheduleProfile{
				Worker:   false,
				WakeMean: 8 * 60, WakeStd: 25,
				BedMean: 23*60 + 40, BedStd: 30,
				ShowerMorning: 0.7,
				EveningTVMean: 110,
				ChoresWeight:  0.8,
			})},
		},
		// Pin the (absent) bedroom kind to the studio room.
		ZoneAssignments: [][]home.ZoneID{{home.Outside, 1, 1, 2, 3}},
	})

	// Family of four: parents in the master bedroom, two children sharing
	// the kids' room, six conditioned zones with a second bathroom.
	MustRegister(Spec{
		ID:          "family4",
		Description: "family of four, 6 zones, two bedrooms and two bathrooms",
		Zones: []ZoneSpec{
			{Name: "MasterBedroom", Kind: home.Bedroom, VolumeFt3: 1260, AreaFt2: 140, MaxOccupancy: 3},
			{Name: "KidsRoom", Kind: home.Bedroom, VolumeFt3: 990, AreaFt2: 110, MaxOccupancy: 3},
			{Name: "Livingroom", Kind: home.Livingroom, VolumeFt3: 2070, AreaFt2: 230, MaxOccupancy: 8},
			{Name: "Kitchen", Kind: home.Kitchen, VolumeFt3: 1080, AreaFt2: 120, MaxOccupancy: 5},
			{Name: "Bathroom", Kind: home.Bathroom, VolumeFt3: 486, AreaFt2: 54, MaxOccupancy: 2},
			{Name: "EnsuiteBath", Kind: home.Bathroom, VolumeFt3: 380, AreaFt2: 42, MaxOccupancy: 1},
		},
		Occupants: []OccupantSpec{
			{Name: "Maya", Demographics: 1.0, Profile: profile(aras.ScheduleProfile{
				Worker:   true,
				WakeMean: 6*60 + 30, WakeStd: 15,
				BedMean: 22*60 + 50, BedStd: 20,
				LeaveMean: 8 * 60, ReturnMean: 17 * 60,
				ShowerMorning: 0.85,
				EveningTVMean: 70,
				ChoresWeight:  0.7,
			})},
			{Name: "Noah", Demographics: 1.15, Profile: profile(aras.ScheduleProfile{
				Worker:   false,
				WakeMean: 7 * 60, WakeStd: 20,
				BedMean: 23 * 60, BedStd: 25,
				ShowerMorning: 0.75,
				EveningTVMean: 85,
				ChoresWeight:  1.1,
			})},
			{Name: "Ada", Demographics: 0.6, Profile: profile(aras.ScheduleProfile{
				Worker:   true, // school hours
				WakeMean: 7*60 + 15, WakeStd: 15,
				BedMean: 21*60 + 30, BedStd: 20,
				LeaveMean: 8*60 + 15, ReturnMean: 15*60 + 30,
				ShowerMorning: 0.4,
				EveningTVMean: 60,
				ChoresWeight:  0.3,
			})},
			{Name: "Leo", Demographics: 0.5, Profile: profile(aras.ScheduleProfile{
				Worker:   true, // school hours
				WakeMean: 7*60 + 20, WakeStd: 18,
				BedMean: 21 * 60, BedStd: 20,
				LeaveMean: 8*60 + 15, ReturnMean: 15*60 + 45,
				ShowerMorning: 0.35,
				EveningTVMean: 55,
				ChoresWeight:  0.3,
			})},
		},
		// Parents share the master (zone 1) and ensuite (6); kids share the
		// kids' room (2) and hall bathroom (5).
		ZoneAssignments: [][]home.ZoneID{
			{home.Outside, 1, 3, 4, 6},
			{home.Outside, 1, 3, 4, 6},
			{home.Outside, 2, 3, 4, 5},
			{home.Outside, 2, 3, 4, 5},
		},
	})

	// Night-shift worker: sleeps from midnight to early afternoon, leaves
	// for the shift late in the evening — the activity clusters land in
	// time-of-day regions the ARAS pair never populates.
	MustRegister(Spec{
		ID:          "nightshift",
		Description: "night-shift worker, inverted schedule, 4 zones",
		Zones: []ZoneSpec{
			{Name: "Bedroom", Kind: home.Bedroom, VolumeFt3: 1080, AreaFt2: 120, MaxOccupancy: 2},
			{Name: "Livingroom", Kind: home.Livingroom, VolumeFt3: 1458, AreaFt2: 162, MaxOccupancy: 5},
			{Name: "Kitchen", Kind: home.Kitchen, VolumeFt3: 875, AreaFt2: 97, MaxOccupancy: 3},
			{Name: "Bathroom", Kind: home.Bathroom, VolumeFt3: 437, AreaFt2: 49, MaxOccupancy: 1},
		},
		Occupants: []OccupantSpec{
			{Name: "Vesna", Demographics: 1.05, Profile: profile(aras.ScheduleProfile{
				Worker:   true,
				WakeMean: 13 * 60, WakeStd: 30,
				BedMean: 23*60 + 55, BedStd: 2,
				LeaveMean: 15 * 60, ReturnMean: 23 * 60,
				ShowerMorning: 0.9,
				EveningTVMean: 20,
				ChoresWeight:  0.6,
			})},
		},
	})

	// Shared 8-zone home: four adults with staggered schedules, each with
	// their own bedroom, sharing two bathrooms, a living room, and a
	// kitchen.
	MustRegister(Spec{
		ID:          "shared8",
		Description: "shared 8-zone home, four adults with staggered schedules",
		Zones: []ZoneSpec{
			{Name: "Bedroom1", Kind: home.Bedroom, VolumeFt3: 945, AreaFt2: 105, MaxOccupancy: 2},
			{Name: "Bedroom2", Kind: home.Bedroom, VolumeFt3: 900, AreaFt2: 100, MaxOccupancy: 2},
			{Name: "Bedroom3", Kind: home.Bedroom, VolumeFt3: 855, AreaFt2: 95, MaxOccupancy: 2},
			{Name: "Bedroom4", Kind: home.Bedroom, VolumeFt3: 810, AreaFt2: 90, MaxOccupancy: 2},
			{Name: "Livingroom", Kind: home.Livingroom, VolumeFt3: 2250, AreaFt2: 250, MaxOccupancy: 8},
			{Name: "Kitchen", Kind: home.Kitchen, VolumeFt3: 1170, AreaFt2: 130, MaxOccupancy: 5},
			{Name: "BathroomA", Kind: home.Bathroom, VolumeFt3: 486, AreaFt2: 54, MaxOccupancy: 2},
			{Name: "BathroomB", Kind: home.Bathroom, VolumeFt3: 437, AreaFt2: 49, MaxOccupancy: 2},
		},
		Occupants: []OccupantSpec{
			{Name: "Ines", Demographics: 0.95, Profile: profile(aras.ScheduleProfile{
				Worker:   true,
				WakeMean: 6 * 60, WakeStd: 12,
				BedMean: 22 * 60, BedStd: 18,
				LeaveMean: 7 * 60, ReturnMean: 16 * 60,
				ShowerMorning: 0.9,
				EveningTVMean: 50,
				ChoresWeight:  0.5,
			})},
			{Name: "Jonas", Demographics: 1.1, Profile: profile(aras.ScheduleProfile{
				Worker:   true,
				WakeMean: 7*60 + 30, WakeStd: 20,
				BedMean: 23*60 + 30, BedStd: 25,
				LeaveMean: 9 * 60, ReturnMean: 18*60 + 30,
				ShowerMorning: 0.8,
				EveningTVMean: 75,
				ChoresWeight:  0.4,
			})},
			{Name: "Kai", Demographics: 1.0, Profile: profile(aras.ScheduleProfile{
				Worker:   false,
				WakeMean: 8*60 + 30, WakeStd: 30,
				BedMean: 23*60 + 45, BedStd: 30,
				ShowerMorning: 0.6,
				EveningTVMean: 100,
				ChoresWeight:  0.9,
			})},
			{Name: "Lena", Demographics: 0.9, Profile: profile(aras.ScheduleProfile{
				Worker:   true,
				WakeMean: 6*60 + 45, WakeStd: 15,
				BedMean: 22*60 + 30, BedStd: 20,
				LeaveMean: 8*60 + 10, ReturnMean: 19 * 60,
				ShowerMorning: 0.85,
				EveningTVMean: 60,
				ChoresWeight:  0.6,
			})},
		},
	})
}
