package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseList resolves a comma-separated scenario list — the grammar shared
// by the experiments CLI and the fleet service's admin protocol. Each entry
// is a registry ID ("A", "studio", ...) or a procedural shape written as
// "synth:ZxO[@SEED]" (seed defaults to the given dataset seed). Empty
// entries are skipped; an empty list yields no specs.
func ParseList(list string, seed uint64) ([]Spec, error) {
	var specs []Spec
	for _, entry := range strings.Split(list, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		sp, err := Parse(entry, seed)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	return specs, nil
}

// Parse resolves one scenario entry in the ParseList grammar.
func Parse(entry string, seed uint64) (Spec, error) {
	if shape, ok := strings.CutPrefix(entry, "synth:"); ok {
		synthSeed := seed
		if shape0, seedStr, hasSeed := strings.Cut(shape, "@"); hasSeed {
			v, err := strconv.ParseUint(seedStr, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("scenario: bad synth seed in %q: %v", entry, err)
			}
			shape, synthSeed = shape0, v
		}
		zStr, oStr, ok := strings.Cut(shape, "x")
		if !ok {
			return Spec{}, fmt.Errorf("scenario: bad synth shape %q (want synth:ZxO[@SEED])", entry)
		}
		zones, err1 := strconv.Atoi(zStr)
		occ, err2 := strconv.Atoi(oStr)
		if err1 != nil || err2 != nil {
			return Spec{}, fmt.Errorf("scenario: bad synth shape %q (want synth:ZxO[@SEED])", entry)
		}
		return Synth(zones, occ, synthSeed), nil
	}
	sp, ok := Get(entry)
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (registered: %s)", entry, strings.Join(IDs(), ", "))
	}
	return sp, nil
}
