// Package scenario is the declarative world-model layer of the SHATTER
// reproduction: a Spec describes a smart home (zone topology, occupant
// archetypes and schedule profiles, appliance inventory, generator and
// controller configuration) as data, a named registry carries the paper's
// two ARAS houses plus additional builtin archetypes, and Synth produces
// procedurally generated homes for unbounded scaling sweeps. Everything
// below (house construction, trace generation) and above (the experiment
// suite, the CLI) consumes specs instead of hardwired "A"/"B" switches.
package scenario

import (
	"errors"
	"fmt"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// Controller choices a spec can request for its simulations.
const (
	// ControllerSHATTER is the paper's activity-aware DCHVAC controller
	// (the default).
	ControllerSHATTER = "shatter"
	// ControllerASHRAE is the fixed-rate baseline of Fig 3.
	ControllerASHRAE = "ashrae"
)

// ZoneSpec declares one conditioned zone.
type ZoneSpec struct {
	// Name is the display name ("MasterBedroom").
	Name string
	// Kind is the canonical ARAS zone the space behaves like (home.Bedroom,
	// home.Livingroom, home.Kitchen, or home.Bathroom) — it decides which
	// activities are conducted there.
	Kind home.ZoneID
	// VolumeFt3/AreaFt2 are the air volume and floor area.
	VolumeFt3, AreaFt2 float64
	// MaxOccupancy is the rule-based capacity bound.
	MaxOccupancy int
}

// OccupantSpec declares one resident.
type OccupantSpec struct {
	Name string
	// Demographics scales physiological generation rates (1.0 = average
	// adult).
	Demographics float64
	// Profile is the occupant's schedule archetype. Nil falls back to the
	// paper default for (house name, occupant index).
	Profile *aras.ScheduleProfile
}

// GeneratorSpec parameterises the scenario's trace generation.
type GeneratorSpec struct {
	// IrregularProb and SummerMeanF forward to aras.GeneratorConfig
	// (zero = that config's defaults).
	IrregularProb float64
	SummerMeanF   float64
	// SeedOffset decorrelates the scenario from others generated off the
	// same base seed.
	SeedOffset uint64
}

// Spec is a complete declarative scenario.
type Spec struct {
	// ID is the registry key and the generated house's name.
	ID string
	// Description is a one-line summary for listings.
	Description string
	// Zones lists the conditioned zones (Outside is implicit).
	Zones []ZoneSpec
	// Occupants lists the residents.
	Occupants []OccupantSpec
	// Appliances is the smart-appliance fit-out. Nil selects the standard
	// 13-appliance fit-out retargeted onto the zone layout by kind.
	Appliances []home.Appliance
	// ActivityAppliances overrides the activity→appliance-name links
	// (nil = standard).
	ActivityAppliances map[home.ActivityID][]string
	// ZoneAssignments optionally pins occupant→zone per kind (see
	// home.Blueprint.ZoneAssignments).
	ZoneAssignments [][]home.ZoneID
	// Generator configures trace generation.
	Generator GeneratorSpec
	// Controller selects the simulation controller (ControllerSHATTER when
	// empty).
	Controller string
	// Pricing overrides the default TOU tariff when non-nil.
	Pricing *hvac.Pricing
}

// ErrBadSpec is returned for invalid scenario specs.
var ErrBadSpec = errors.New("scenario: invalid spec")

// Validate checks the spec without building it.
func (sp Spec) Validate() error {
	if sp.ID == "" {
		return fmt.Errorf("%w: empty ID", ErrBadSpec)
	}
	switch sp.Controller {
	case "", ControllerSHATTER, ControllerASHRAE:
	default:
		return fmt.Errorf("%w: %s: unknown controller %q", ErrBadSpec, sp.ID, sp.Controller)
	}
	if _, err := sp.Build(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrBadSpec, sp.ID, err)
	}
	return nil
}

// Blueprint lowers the spec to the home layer's declarative form. Only the
// conditioned zones are listed; BuildHouse inserts the canonical Outside
// zone (zone IDs therefore start at 1).
func (sp Spec) Blueprint() home.Blueprint {
	zones := make([]home.Zone, 0, len(sp.Zones))
	for i, z := range sp.Zones {
		zones = append(zones, home.Zone{
			ID:           home.ZoneID(i + 1),
			Name:         z.Name,
			Kind:         z.Kind,
			VolumeFt3:    z.VolumeFt3,
			AreaFt2:      z.AreaFt2,
			MaxOccupancy: z.MaxOccupancy,
		})
	}
	occupants := make([]home.Occupant, len(sp.Occupants))
	for i, o := range sp.Occupants {
		occupants[i] = home.Occupant{ID: i, Name: o.Name, Demographics: o.Demographics}
	}
	return home.Blueprint{
		Name:               sp.ID,
		Zones:              zones,
		Occupants:          occupants,
		Appliances:         sp.Appliances,
		ActivityAppliances: sp.ActivityAppliances,
		ZoneAssignments:    sp.ZoneAssignments,
	}
}

// Build constructs the spec's house.
func (sp Spec) Build() (*home.House, error) {
	return home.BuildHouse(sp.Blueprint())
}

// Profiles resolves the per-occupant schedule profiles, substituting the
// paper defaults for occupants that declare none.
func (sp Spec) Profiles() []aras.ScheduleProfile {
	out := make([]aras.ScheduleProfile, len(sp.Occupants))
	for i, o := range sp.Occupants {
		if o.Profile != nil {
			out[i] = *o.Profile
		} else {
			out[i] = aras.DefaultProfile(sp.ID, i)
		}
	}
	return out
}

// GeneratorConfig assembles the aras generator configuration for a run of
// the given length off the given base seed.
func (sp Spec) GeneratorConfig(days int, seed uint64) aras.GeneratorConfig {
	return aras.GeneratorConfig{
		Days:          days,
		Seed:          seed + sp.Generator.SeedOffset,
		IrregularProb: sp.Generator.IrregularProb,
		SummerMeanF:   sp.Generator.SummerMeanF,
		Profiles:      sp.Profiles(),
	}
}

// Generate builds the house and generates its activity trace — the whole
// world-construction step of the pipeline in one call.
func (sp Spec) Generate(days int, seed uint64) (*aras.Trace, error) {
	h, err := sp.Build()
	if err != nil {
		return nil, err
	}
	tr, err := aras.Generate(h, sp.GeneratorConfig(days, seed))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sp.ID, err)
	}
	return tr, nil
}
