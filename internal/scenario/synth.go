package scenario

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/rng"
)

// DefaultSweep returns the benchmark sweep set shared by cmd/bench and the
// root BenchmarkScenarioSweep: every non-ARAS registry archetype plus a
// procedural ramp to 12 zones / 4 occupants. Keeping one definition keeps
// the BENCH_PR*.json scenario_sweep series comparable with the Go bench.
func DefaultSweep(seed uint64) []Spec {
	specs := []Spec{}
	for _, id := range []string{"studio", "family4", "nightshift", "shared8"} {
		if sp, ok := Get(id); ok {
			specs = append(specs, sp)
		}
	}
	return append(specs,
		Synth(6, 2, seed),
		Synth(9, 3, seed),
		Synth(12, 4, seed),
	)
}

// SynthFleet returns n procedurally generated homes with varied shapes
// (4-11 zones, 1-3 occupants) — the fleet both `experiments -stream N` and
// cmd/bench's stream_fleet series drive, kept as one definition so the
// BENCH_PR*.json throughput numbers measure exactly the CLI's fleet.
func SynthFleet(n int, seed uint64) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Synth(4+i%8, 1+i%3, seed+uint64(i))
	}
	return specs
}

// clampShape applies Synth's minimum world shape: a home needs a living
// space, kitchen, bathroom, and bedroom, and at least one occupant.
func clampShape(zones, occupants int) (int, int) {
	if zones < 4 {
		zones = 4
	}
	if occupants < 1 {
		occupants = 1
	}
	return zones, occupants
}

// SynthID names the procedural scenario for the given shape — the ID Synth
// assigns, usable for cache keys before the spec is built. It applies the
// same shape clamps as Synth, so SynthID(args) == Synth(args).ID always.
func SynthID(zones, occupants int, seed uint64) string {
	zones, occupants = clampShape(zones, occupants)
	return fmt.Sprintf("synth-%dz-%do-%d", zones, occupants, seed)
}

// Synth procedurally generates a scenario with the given conditioned-zone
// and occupant counts. The result is a pure function of its arguments:
// the same (zones, occupants, seed) triple always yields a deeply equal
// spec, so sweeps are reproducible and cache-keyable by ID. Shapes below
// the 4-zone / 1-occupant minimum are clamped up (see clampShape).
func Synth(zones, occupants int, seed uint64) Spec {
	zones, occupants = clampShape(zones, occupants)
	r := rng.New(seed ^ uint64(zones)<<32 ^ uint64(occupants)<<16)
	sp := Spec{
		ID:          SynthID(zones, occupants, seed),
		Description: fmt.Sprintf("procedural home: %d zones, %d occupants (seed %d)", zones, occupants, seed),
	}

	// Zone layout: the four essential kinds first, then a bedroom-heavy mix.
	kinds := []home.ZoneID{home.Livingroom, home.Kitchen, home.Bathroom, home.Bedroom}
	for len(kinds) < zones {
		switch v := r.Float64(); {
		case v < 0.50:
			kinds = append(kinds, home.Bedroom)
		case v < 0.70:
			kinds = append(kinds, home.Livingroom)
		case v < 0.90:
			kinds = append(kinds, home.Bathroom)
		default:
			kinds = append(kinds, home.Kitchen)
		}
	}
	baseVolume := map[home.ZoneID]float64{
		home.Bedroom:    1080,
		home.Livingroom: 1620,
		home.Kitchen:    972,
		home.Bathroom:   486,
	}
	baseCap := map[home.ZoneID]int{
		home.Bedroom:    3,
		home.Livingroom: 6,
		home.Kitchen:    4,
		home.Bathroom:   2,
	}
	kindSeq := make(map[home.ZoneID]int)
	for _, k := range kinds {
		kindSeq[k]++
		scale := r.Range(0.75, 1.3)
		vol := baseVolume[k] * scale
		sp.Zones = append(sp.Zones, ZoneSpec{
			Name:         fmt.Sprintf("%v%d", k, kindSeq[k]),
			Kind:         k,
			VolumeFt3:    vol,
			AreaFt2:      vol / 9, // 9 ft ceilings
			MaxOccupancy: baseCap[k],
		})
	}

	// Occupants: a mix of commuters, home workers, and late risers with
	// jittered anchors, so every synthetic home clusters differently.
	for o := 0; o < occupants; o++ {
		worker := r.Bool(0.6)
		wake := r.Norm(7*60, 45)
		if wake < 5*60 {
			wake = 5 * 60
		}
		p := aras.ScheduleProfile{
			Worker:   worker,
			WakeMean: wake, WakeStd: r.Range(10, 30),
			BedMean: r.Norm(23*60, 30), BedStd: r.Range(15, 35),
			ShowerMorning: r.Range(0.4, 0.95),
			EveningTVMean: r.Range(40, 110),
			ChoresWeight:  r.Range(0.3, 1.1),
		}
		if p.BedMean > 23*60+55 {
			p.BedMean = 23*60 + 55
		}
		if p.BedMean < wake+8*60 {
			p.BedMean = wake + 8*60
		}
		if worker {
			p.LeaveMean = wake + r.Range(60, 120)
			p.ReturnMean = p.LeaveMean + r.Range(7*60, 10*60)
			if p.ReturnMean > 22*60 {
				p.ReturnMean = 22 * 60
			}
		}
		sp.Occupants = append(sp.Occupants, OccupantSpec{
			Name:         fmt.Sprintf("Occ%d", o+1),
			Demographics: r.Range(0.8, 1.25),
			Profile:      &p,
		})
	}
	return sp
}
