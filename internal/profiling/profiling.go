// Package profiling is the tiny pprof harness the CLI front-ends share:
// one call wires the -cpuprofile/-memprofile flags so perf work on any
// command starts from a profile, not a guess.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile (after
// a final GC) to memPath (when non-empty). Either path may be empty; the
// stop function is always non-nil and safe to defer. Profile-write
// failures are reported on stderr rather than failing the command — the
// run's real output is the product, the profile a diagnostic.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				os.Stderr.WriteString("profiling: cpu profile: " + err.Error() + "\n")
			}
		}
		if memPath == "" {
			return
		}
		memFile, err := os.Create(memPath)
		if err != nil {
			os.Stderr.WriteString("profiling: heap profile: " + err.Error() + "\n")
			return
		}
		defer memFile.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			os.Stderr.WriteString("profiling: heap profile: " + err.Error() + "\n")
		}
	}, nil
}
