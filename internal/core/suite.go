// Package core orchestrates the full SHATTER reproduction: it owns the
// generated ARAS-style datasets and exposes one typed experiment per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index).
// The cmd/experiments binary and the repository's benchmark harness are
// thin wrappers over this package.
package core

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// SuiteConfig parameterises a reproduction run.
type SuiteConfig struct {
	// Days is the trace length (paper: 30). Shorter values speed up
	// exploratory runs.
	Days int
	// TrainDays is the ADM training prefix (the rest is the test split).
	TrainDays int
	// Seed fixes the synthetic datasets.
	Seed uint64
	// WindowLen is the attack optimisation horizon I (paper: 10).
	WindowLen int
}

// DefaultSuiteConfig mirrors the paper's setup.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Days: 30, TrainDays: 25, Seed: 20230427, WindowLen: 10}
}

// Suite holds the generated worlds and shared parameters.
type Suite struct {
	Config  SuiteConfig
	Params  hvac.Params
	Pricing hvac.Pricing
	// Houses maps "A"/"B" to the generated traces.
	Houses map[string]*aras.Trace
}

// NewSuite generates both houses' traces.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	if cfg.Days < 2 || cfg.TrainDays < 1 || cfg.TrainDays >= cfg.Days {
		return nil, fmt.Errorf("core: need Days >= 2 and 1 <= TrainDays < Days, got %d/%d", cfg.TrainDays, cfg.Days)
	}
	if cfg.WindowLen <= 0 {
		cfg.WindowLen = 10
	}
	s := &Suite{
		Config:  cfg,
		Params:  hvac.DefaultParams(),
		Pricing: hvac.DefaultPricing(),
		Houses:  make(map[string]*aras.Trace, 2),
	}
	for i, name := range []string{"A", "B"} {
		h, err := home.NewHouse(name)
		if err != nil {
			return nil, err
		}
		tr, err := aras.Generate(h, aras.GeneratorConfig{Days: cfg.Days, Seed: cfg.Seed + uint64(i)})
		if err != nil {
			return nil, fmt.Errorf("core: generate house %s: %w", name, err)
		}
		s.Houses[name] = tr
	}
	return s, nil
}

// trainSplit returns the training prefix of a house's trace.
func (s *Suite) trainSplit(house string) (*aras.Trace, error) {
	return s.Houses[house].SubTrace(0, s.Config.TrainDays)
}

// testSplit returns the held-out suffix.
func (s *Suite) testSplit(house string) (*aras.Trace, error) {
	return s.Houses[house].SubTrace(s.Config.TrainDays, s.Config.Days)
}

// trainADM fits an ADM of the given algorithm on a house's training split.
// Partial-knowledge attacker models train on only the first half of the
// training days (Section VII's "partial data").
func (s *Suite) trainADM(house string, alg adm.Algorithm, partial bool) (*adm.Model, error) {
	end := s.Config.TrainDays
	if partial {
		end = (s.Config.TrainDays + 1) / 2
	}
	tr, err := s.Houses[house].SubTrace(0, end)
	if err != nil {
		return nil, err
	}
	cfg := adm.DefaultConfig(alg)
	if alg == adm.DBSCAN {
		// Scale the density threshold with the training length so short
		// exploratory runs still form clusters: roughly one fifth of the
		// days must support a habit before it counts.
		cfg.MinPts = maxInt(3, end/5)
		cfg.Eps = 30
	}
	return adm.Train(tr, cfg)
}

// planner builds an attack planner against a house with the given attacker
// model and capability.
func (s *Suite) planner(house string, model *adm.Model, cap attack.Capability) *attack.Planner {
	tr := s.Houses[house]
	return &attack.Planner{
		Trace:     tr,
		Model:     model,
		Cost:      hvac.NewCostModel(tr.House, s.Params, s.Pricing),
		Cap:       cap,
		WindowLen: s.Config.WindowLen,
	}
}

// controller returns the SHATTER DCHVAC controller under the suite params.
func (s *Suite) controller() hvac.Controller {
	return &hvac.SHATTERController{Params: s.Params}
}

// Fig3Result is one house's controller-cost comparison (Fig 3): the daily
// cost series under the ASHRAE baseline and the activity-aware SHATTER
// controller, plus the monthly saving.
type Fig3Result struct {
	House      string
	ASHRAE     []float64
	SHATTER    []float64
	SavingsPct float64
}

// Fig3 reproduces the Fig 3 controller comparison for both houses.
func (s *Suite) Fig3() ([]Fig3Result, error) {
	var out []Fig3Result
	for _, house := range []string{"A", "B"} {
		tr := s.Houses[house]
		shatter, err := hvac.Simulate(tr, s.controller(), s.Params, s.Pricing, hvac.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: fig3 %s shatter: %w", house, err)
		}
		ashrae, err := hvac.Simulate(tr, hvac.NewASHRAEController(s.Params, tr.House), s.Params, s.Pricing, hvac.Options{})
		if err != nil {
			return nil, fmt.Errorf("core: fig3 %s ashrae: %w", house, err)
		}
		out = append(out, Fig3Result{
			House:      house,
			ASHRAE:     ashrae.DailyCostUSD,
			SHATTER:    shatter.DailyCostUSD,
			SavingsPct: (1 - shatter.TotalCostUSD/ashrae.TotalCostUSD) * 100,
		})
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
