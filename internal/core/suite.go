// Package core orchestrates the full SHATTER reproduction: it owns the
// generated ARAS-style datasets and exposes one typed experiment per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index).
// The cmd/experiments binary and the repository's benchmark harness are
// thin wrappers over this package.
//
// The suite is a concurrent, cache-aware experiment engine: the evaluation
// grid of {house × ADM backend × knowledge level × framework} cells is
// embarrassingly parallel, so each experiment fans its independent cells
// across a bounded worker pool (SuiteConfig.Workers), while a suite-level
// artifact cache (cache.go) memoizes the trained models, benign
// simulations, splits, and truth plans the cells share. Results are
// deterministic: a Workers=1 run and a Workers=N run produce identical
// tables.
package core

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/hvac"
)

// SuiteConfig parameterises a reproduction run.
type SuiteConfig struct {
	// Days is the trace length (paper: 30). Shorter values speed up
	// exploratory runs.
	Days int
	// TrainDays is the ADM training prefix (the rest is the test split).
	TrainDays int
	// Seed fixes the synthetic datasets.
	Seed uint64
	// WindowLen is the attack optimisation horizon I (paper: 10).
	WindowLen int
	// Workers bounds the experiment worker pool. 0 (the default) uses one
	// worker per available CPU; 1 forces sequential execution for
	// reproducibility checks. Results are identical either way.
	Workers int
}

// DefaultSuiteConfig mirrors the paper's setup.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Days: 30, TrainDays: 25, Seed: 20230427, WindowLen: 10}
}

// Suite holds the generated worlds and shared parameters.
type Suite struct {
	Config  SuiteConfig
	Params  hvac.Params
	Pricing hvac.Pricing
	// Houses maps "A"/"B" to the generated traces.
	Houses map[string]*aras.Trace

	cache *artifactCache
}

// NewSuite generates both houses' traces.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	if cfg.Days < 2 || cfg.TrainDays < 1 || cfg.TrainDays >= cfg.Days {
		return nil, fmt.Errorf("core: need Days >= 2 and 1 <= TrainDays < Days, got %d/%d", cfg.TrainDays, cfg.Days)
	}
	if cfg.WindowLen <= 0 {
		cfg.WindowLen = 10
	}
	s := &Suite{
		Config:  cfg,
		Params:  hvac.DefaultParams(),
		Pricing: hvac.DefaultPricing(),
		Houses:  make(map[string]*aras.Trace, 2),
		cache:   newArtifactCache(),
	}
	// The two houses' generators are independent (separate seeds), so build
	// them as cells of the suite's worker pool.
	names := []string{"A", "B"}
	traces := make([]*aras.Trace, len(names))
	err := s.runCells(len(names), func(i int) error {
		h, err := home.NewHouse(names[i])
		if err != nil {
			return err
		}
		tr, err := aras.Generate(h, aras.GeneratorConfig{Days: cfg.Days, Seed: cfg.Seed + uint64(i)})
		if err != nil {
			return fmt.Errorf("core: generate house %s: %w", names[i], err)
		}
		traces[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		s.Houses[name] = traces[i]
	}
	return s, nil
}

// trainADM fits an ADM of the given algorithm on a house's training split,
// memoized by the suite cache. Partial-knowledge attacker models train on
// only the first half of the training days (Section VII's "partial data").
func (s *Suite) trainADM(house string, alg adm.Algorithm, partial bool) (*adm.Model, error) {
	end := s.Config.TrainDays
	if partial {
		end = (s.Config.TrainDays + 1) / 2
	}
	return s.trainADMPrefix(house, alg, end)
}

// planner builds an attack planner against a house with the given attacker
// model and capability. The planner consumes the suite's memoized cost
// surface; the surface provider declines traces other than the house's
// full trace, so re-pointing the planner at a sub-trace is safe.
func (s *Suite) planner(house string, model *adm.Model, cap attack.Capability) *attack.Planner {
	tr := s.Houses[house]
	return &attack.Planner{
		Trace:       tr,
		Model:       model,
		Cost:        hvac.NewCostModel(tr.House, s.Params, s.Pricing),
		Cap:         cap,
		WindowLen:   s.Config.WindowLen,
		CostSurface: s.costSurface(house),
	}
}

// controller returns the SHATTER DCHVAC controller under the suite params.
func (s *Suite) controller() hvac.Controller {
	return &hvac.SHATTERController{Params: s.Params}
}

// Fig3Result is one house's controller-cost comparison (Fig 3): the daily
// cost series under the ASHRAE baseline and the activity-aware SHATTER
// controller, plus the monthly saving.
type Fig3Result struct {
	House      string
	ASHRAE     []float64
	SHATTER    []float64
	SavingsPct float64
}

// Fig3 reproduces the Fig 3 controller comparison for both houses. The four
// (house, controller) simulations run as independent cells and land in the
// benign-simulation cache, where the SHATTER legs are shared with every
// attack-impact evaluation.
func (s *Suite) Fig3() ([]Fig3Result, error) {
	houses := []string{"A", "B"}
	type cell struct {
		house  string
		ctrlID int
	}
	var cells []cell
	for _, house := range houses {
		cells = append(cells, cell{house, ctrlSHATTER}, cell{house, ctrlASHRAE})
	}
	sims := make([]hvac.Result, len(cells))
	err := s.runCells(len(cells), func(i int) error {
		res, err := s.benignSim(cells[i].house, cells[i].ctrlID)
		if err != nil {
			return fmt.Errorf("core: fig3 %s: %w", cells[i].house, err)
		}
		sims[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig3Result, 0, len(houses))
	for hi, house := range houses {
		shatter, ashrae := sims[2*hi], sims[2*hi+1]
		out = append(out, Fig3Result{
			House:      house,
			ASHRAE:     ashrae.DailyCostUSD,
			SHATTER:    shatter.DailyCostUSD,
			SavingsPct: (1 - shatter.TotalCostUSD/ashrae.TotalCostUSD) * 100,
		})
	}
	return out, nil
}
