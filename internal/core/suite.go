// Package core orchestrates the full SHATTER reproduction: it owns the
// generated scenario worlds and exposes one typed experiment per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index),
// plus the full-stack ScenarioSweep over arbitrary registry or procedural
// scenarios. The cmd/experiments binary and the repository's benchmark
// harness are thin wrappers over this package.
//
// The suite is a concurrent, cache-aware experiment engine: the evaluation
// grid of {scenario × ADM backend × knowledge level × framework} cells is
// embarrassingly parallel, so each experiment fans its independent cells
// across a bounded worker pool (SuiteConfig.Workers), while a suite-level
// artifact cache (cache.go) memoizes the trained models, benign
// simulations, splits, and truth plans the cells share, keyed by scenario
// ID. Results are deterministic: a Workers=1 run and a Workers=N run
// produce identical tables.
package core

import (
	"fmt"
	"sync"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/scenario"
)

// SuiteConfig parameterises a reproduction run.
type SuiteConfig struct {
	// Days is the trace length (paper: 30). Shorter values speed up
	// exploratory runs.
	Days int
	// TrainDays is the ADM training prefix (the rest is the test split).
	TrainDays int
	// Seed fixes the synthetic datasets.
	Seed uint64
	// WindowLen is the attack optimisation horizon I (paper: 10). Zero
	// selects the paper default; negative values are rejected.
	WindowLen int
	// Workers bounds the experiment worker pool. 0 (the default) uses one
	// worker per available CPU; 1 forces sequential execution for
	// reproducibility checks. Results are identical either way.
	Workers int
	// Scenarios lists the registry scenario IDs the suite loads, in order.
	// Empty selects the paper's ARAS pair {"A", "B"}, reproducing the
	// hardwired evaluation exactly.
	Scenarios []string
}

// DefaultSuiteConfig mirrors the paper's setup.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{Days: 30, TrainDays: 25, Seed: 20230427, WindowLen: 10}
}

// Validate reports configuration errors. It is the single validation point
// shared by NewSuite and the CLI front-ends.
func (c SuiteConfig) Validate() error {
	if c.Days < 2 || c.TrainDays < 1 || c.TrainDays >= c.Days {
		return fmt.Errorf("core: need Days >= 2 and 1 <= TrainDays < Days, got %d/%d", c.TrainDays, c.Days)
	}
	if c.WindowLen < 0 {
		return fmt.Errorf("core: need WindowLen >= 0 (0 = paper default 10), got %d", c.WindowLen)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: need Workers >= 0 (0 = one per CPU), got %d", c.Workers)
	}
	seen := make(map[string]bool, len(c.Scenarios))
	for _, id := range c.Scenarios {
		if _, ok := scenario.Get(id); !ok {
			return fmt.Errorf("core: unknown scenario %q (registered: %v)", id, scenario.IDs())
		}
		if seen[id] {
			return fmt.Errorf("core: scenario %q listed twice", id)
		}
		seen[id] = true
	}
	return nil
}

// normalized resolves the config defaults Validate treats as sentinels.
func (c SuiteConfig) normalized() SuiteConfig {
	if c.WindowLen == 0 {
		c.WindowLen = 10
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []string{"A", "B"}
	}
	return c
}

// World is one loaded scenario: its declarative spec and generated trace.
type World struct {
	ID    string
	Spec  scenario.Spec
	Trace *aras.Trace
	// Seed is the base seed the trace was generated from — the seed an
	// incremental source must use to reproduce the trace frame-by-frame
	// (Suite.Stream's generator jobs).
	Seed uint64
}

// Suite holds the generated worlds and shared parameters.
type Suite struct {
	Config  SuiteConfig
	Params  hvac.Params
	Pricing hvac.Pricing
	// Worlds are the configured scenarios in order. ScenarioSweep may load
	// further worlds on demand; those are reachable through Trace/World but
	// do not join the experiment grid.
	Worlds []*World

	mu    sync.RWMutex
	byID  map[string]*World
	cache *artifactCache
}

// NewSuite generates the configured scenarios' traces.
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Suite{
		Config:  cfg,
		Params:  hvac.DefaultParams(),
		Pricing: hvac.DefaultPricing(),
		byID:    make(map[string]*World, len(cfg.Scenarios)),
		cache:   newArtifactCache(),
	}
	// The scenarios' generators are independent (separate seeds), so build
	// them as cells of the suite's worker pool.
	worlds := make([]*World, len(cfg.Scenarios))
	err := s.runCells(len(worlds), func(i int) error {
		sp, _ := scenario.Get(cfg.Scenarios[i])
		seed := cfg.Seed + uint64(i)
		tr, err := sp.Generate(cfg.Days, seed)
		if err != nil {
			return fmt.Errorf("core: generate scenario %s: %w", sp.ID, err)
		}
		worlds[i] = &World{ID: sp.ID, Spec: sp, Trace: tr, Seed: seed}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.Worlds = worlds
	for _, w := range worlds {
		s.byID[w.ID] = w
	}
	return s, nil
}

// World returns the loaded world for a scenario ID (nil when not loaded).
func (s *Suite) World(id string) *World {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[id]
}

// Trace returns the generated trace for a loaded scenario (nil when not
// loaded).
func (s *Suite) Trace(id string) *aras.Trace {
	if w := s.World(id); w != nil {
		return w.Trace
	}
	return nil
}

// trace is the internal accessor for scenario IDs the suite is known to
// have loaded; an unknown ID is a programmer error.
func (s *Suite) trace(id string) *aras.Trace {
	tr := s.Trace(id)
	if tr == nil {
		panic(fmt.Sprintf("core: scenario %q not loaded", id))
	}
	return tr
}

// ScenarioIDs returns the configured scenario IDs in order — the axis the
// paper experiments iterate (on-demand sweep worlds are excluded).
func (s *Suite) ScenarioIDs() []string {
	ids := make([]string, len(s.Worlds))
	for i, w := range s.Worlds {
		ids[i] = w.ID
	}
	return ids
}

// trainADM fits an ADM of the given algorithm on a scenario's training
// split, memoized by the suite cache. Partial-knowledge attacker models
// train on only the first half of the training days (Section VII's
// "partial data").
func (s *Suite) trainADM(id string, alg adm.Algorithm, partial bool) (*adm.Model, error) {
	end := s.Config.TrainDays
	if partial {
		end = (s.Config.TrainDays + 1) / 2
	}
	return s.trainADMPrefix(id, alg, end)
}

// planner builds an attack planner against a scenario with the given
// attacker model and capability. The planner consumes the suite's memoized
// cost surface and fans its occupant-day cells across the suite's worker
// width; the surface provider declines traces other than the scenario's
// full trace, so re-pointing the planner at a sub-trace is safe.
func (s *Suite) planner(id string, model *adm.Model, capability attack.Capability) *attack.Planner {
	tr := s.trace(id)
	return &attack.Planner{
		Trace:       tr,
		Model:       model,
		Cost:        hvac.NewCostModel(tr.House, s.Params, s.pricingFor(id)),
		Cap:         capability,
		WindowLen:   s.Config.WindowLen,
		CostSurface: s.costSurface(id),
		Workers:     s.Config.Workers,
	}
}

// controllerFor returns the scenario's chosen DCHVAC controller under the
// suite params — the paper's SHATTER controller unless the spec opts into
// the ASHRAE baseline.
func (s *Suite) controllerFor(id string) hvac.Controller {
	if w := s.World(id); w != nil && w.Spec.Controller == scenario.ControllerASHRAE {
		return hvac.NewASHRAEController(s.Params, w.Trace.House)
	}
	return &hvac.SHATTERController{Params: s.Params}
}

// pricingFor returns the scenario's tariff (the suite default unless the
// spec overrides it).
func (s *Suite) pricingFor(id string) hvac.Pricing {
	if w := s.World(id); w != nil && w.Spec.Pricing != nil {
		return *w.Spec.Pricing
	}
	return s.Pricing
}

// Fig3Result is one scenario's controller-cost comparison (Fig 3): the
// daily cost series under the ASHRAE baseline and the activity-aware
// SHATTER controller, plus the monthly saving.
type Fig3Result struct {
	House      string
	ASHRAE     []float64
	SHATTER    []float64
	SavingsPct float64
}

// Fig3 reproduces the Fig 3 controller comparison for every configured
// scenario. The (scenario, controller) simulations run as independent cells
// and land in the benign-simulation cache, where the SHATTER legs are
// shared with every attack-impact evaluation.
func (s *Suite) Fig3() ([]Fig3Result, error) {
	houses := s.ScenarioIDs()
	type cell struct {
		house  string
		ctrlID int
	}
	var cells []cell
	for _, house := range houses {
		cells = append(cells, cell{house, ctrlSHATTER}, cell{house, ctrlASHRAE})
	}
	sims := make([]hvac.Result, len(cells))
	err := s.runCells(len(cells), func(i int) error {
		res, err := s.benignSim(cells[i].house, cells[i].ctrlID)
		if err != nil {
			return fmt.Errorf("core: fig3 %s: %w", cells[i].house, err)
		}
		sims[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig3Result, 0, len(houses))
	for hi, house := range houses {
		shatter, ashrae := sims[2*hi], sims[2*hi+1]
		out = append(out, Fig3Result{
			House:      house,
			ASHRAE:     ashrae.DailyCostUSD,
			SHATTER:    shatter.DailyCostUSD,
			SavingsPct: (1 - shatter.TotalCostUSD/ashrae.TotalCostUSD) * 100,
		})
	}
	return out, nil
}
