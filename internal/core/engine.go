package core

import (
	"github.com/acyd-lab/shatter/internal/pool"
)

// runCells executes fn(i) for every cell index in [0, n) across the suite's
// worker pool — SuiteConfig.Workers wide, 0 selecting one worker per CPU
// (see pool.Run for the determinism and first-error-wins contract the
// experiments rely on).
func (s *Suite) runCells(n int, fn func(i int) error) error {
	return pool.Run(s.Config.Workers, n, fn)
}
