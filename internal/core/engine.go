package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the configured pool width: Workers if positive, otherwise
// one worker per available CPU. Workers = 1 forces fully sequential
// execution for reproducibility checks.
func (s *Suite) workers() int {
	if s.Config.Workers > 0 {
		return s.Config.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes fn(i) for every cell index in [0, n) across the suite's
// worker pool. Cells must be independent and write their results only to
// their own index, which makes the output deterministic regardless of pool
// width — parallel and sequential runs produce identical results.
//
// Error handling is first-error-wins with cancellation: once any cell
// fails, no new cells start, and the error reported is the one from the
// lowest-indexed failed cell that ran.
func (s *Suite) runCells(n int, fn func(i int) error) error {
	w := min(s.workers(), n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		errIdx   = n
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
