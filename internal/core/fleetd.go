package core

import (
	"fmt"
	"strings"

	"github.com/acyd-lab/shatter/internal/fleetd"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

// FleetJobFactory adapts the suite into the fleet service's control-plane
// job resolver: an admin AddRequest names scenarios in the shared grammar
// (registry IDs, synth:ZxO[@SEED], or a bulk synthetic fleet) and the
// factory assembles the same lazily-opening jobs Stream runs. A request
// Prefix renames the specs before job assembly, so repeated adds of the
// same scenarios coexist — note a renamed spec derives a different
// generator seed (seeds are keyed by ID), making each prefixed cohort a
// distinct set of homes.
func (s *Suite) FleetJobFactory() fleetd.JobFactory {
	return func(req fleetd.AddRequest) ([]stream.Job, error) {
		specs, err := s.resolveAddSpecs(req)
		if err != nil {
			return nil, err
		}
		return s.FleetJobs(specs, StreamOptions{
			Days:   req.Days,
			Defend: req.Defend,
			Attack: req.Attack,
		})
	}
}

// resolveAddSpecs expands an AddRequest into scenario specs.
func (s *Suite) resolveAddSpecs(req fleetd.AddRequest) ([]scenario.Spec, error) {
	seed := req.Seed
	if seed == 0 {
		seed = s.Config.Seed
	}
	var specs []scenario.Spec
	for _, entry := range req.Scenarios {
		sp, err := scenario.Parse(strings.TrimSpace(entry), seed)
		if err != nil {
			return nil, err
		}
		specs = append(specs, sp)
	}
	if req.Synth > 0 {
		specs = append(specs, scenario.SynthFleet(req.Synth, seed)...)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: add request names no homes (set scenarios or synth)")
	}
	if req.Prefix != "" {
		for i := range specs {
			specs[i].ID = req.Prefix + specs[i].ID
		}
	}
	return specs, nil
}

// NewFleetService starts a fleet service wired to the suite: unset shard
// workers default to the suite's pool width, and the control plane resolves
// add requests through the suite's job factory.
func NewFleetService(s *Suite, cfg fleetd.Config) (*fleetd.Service, error) {
	if cfg.Shard.Workers == 0 {
		cfg.Shard.Workers = s.Config.Workers
	}
	if cfg.Jobs == nil {
		cfg.Jobs = s.FleetJobFactory()
	}
	return fleetd.NewService(cfg)
}
