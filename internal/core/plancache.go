package core

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/attack"
)

// campaign is a cached attack campaign: the (possibly triggered) plan plus
// the Algorithm-1 trigger count it was built with. Cached campaigns are
// immutable — consumers that need a mutable plan clone it.
type campaign struct {
	plan      *attack.Plan
	triggered int
}

// campaignSpec names a memoizable campaign: the scenario, the strategy, the
// attacker's knowledge level (ADM backend + partial-data flag; BIoTA is
// ADM-oblivious and leaves Alg zero), the capability, and whether the
// Algorithm-1 appliance-triggering stage is applied. Every grid cell that
// shares a spec shares one planned campaign — TableV's SHATTER/DBSCAN cell,
// Fig10's no-trigger leg, the scenario sweep, and the streaming fleet all
// resolve to the same cache entry instead of re-planning.
type campaignSpec struct {
	House    string
	Strategy string // "SHATTER" | "Greedy" | "BIoTA"
	Alg      adm.Algorithm
	Partial  bool
	Trigger  bool
	Cap      attack.Capability
}

// key builds the cache key; ok is false for capabilities without a
// signature (slot-restricted), which cannot be keyed.
func (cs campaignSpec) key() (artifactKey, bool) {
	sig, ok := cs.Cap.Signature()
	if !ok {
		return artifactKey{}, false
	}
	n := 0
	if cs.Partial {
		n |= 1
	}
	if cs.Trigger {
		n |= 2
	}
	return artifactKey{
		kind:  artifactPlan,
		house: cs.House,
		alg:   cs.Alg,
		n:     n,
		extra: cs.Strategy + "|" + sig,
	}, true
}

// sig renders the spec as the impact cache's campaign identifier.
func (cs campaignSpec) sig() (string, bool) {
	capSig, ok := cs.Cap.Signature()
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s|%d|%t|%t|%s", cs.Strategy, cs.Alg, cs.Partial, cs.Trigger, capSig), true
}

// attackerFor resolves the spec's attacker model: the memoized ADM estimate
// for the knowledge level, or nil for the ADM-oblivious BIoTA baseline.
func (s *Suite) attackerFor(cs campaignSpec) (*adm.Model, error) {
	if cs.Alg == 0 {
		return nil, nil
	}
	return s.trainADM(cs.House, cs.Alg, cs.Partial)
}

// campaignFor returns the memoized campaign for the spec, planning at most
// once per key across all goroutines. Triggered specs build from the cached
// untriggered campaign: the plan is cloned and Algorithm 1 runs on the
// copy, so both variants stay cached without re-planning the schedule.
// Unkeyable specs (slot-restricted capabilities) are planned fresh.
func (s *Suite) campaignFor(cs campaignSpec) (*campaign, error) {
	k, ok := cs.key()
	if !ok {
		return s.buildCampaign(cs)
	}
	v, err := s.cache.do(k, func() (any, error) {
		if !cs.Trigger {
			return s.buildCampaign(cs)
		}
		base := cs
		base.Trigger = false
		untriggered, err := s.campaignFor(base)
		if err != nil {
			return nil, err
		}
		attacker, err := s.attackerFor(cs)
		if err != nil {
			return nil, err
		}
		plan := untriggered.plan.CloneForTriggering()
		n := attack.TriggerAppliances(s.trace(cs.House), plan, attacker, cs.Cap)
		return &campaign{plan: plan, triggered: n}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*campaign), nil
}

// buildCampaign plans the spec from first principles (no caching).
func (s *Suite) buildCampaign(cs campaignSpec) (*campaign, error) {
	attacker, err := s.attackerFor(cs)
	if err != nil {
		return nil, err
	}
	pl := s.planner(cs.House, attacker, cs.Cap)
	var plan *attack.Plan
	switch cs.Strategy {
	case "BIoTA":
		plan, err = pl.PlanBIoTA()
	case "Greedy":
		plan, err = pl.PlanGreedy()
	case "SHATTER":
		plan, err = pl.PlanSHATTER()
	default:
		return nil, fmt.Errorf("core: unknown attack strategy %q", cs.Strategy)
	}
	if err != nil {
		return nil, err
	}
	c := &campaign{plan: plan}
	if cs.Trigger {
		c.triggered = attack.TriggerAppliances(s.trace(cs.House), plan, attacker, cs.Cap)
	}
	return c, nil
}

// impactFor returns the memoized impact of a campaign evaluated against a
// defender ADM. The evaluation depends only on (campaign, house artifacts,
// defender, abort flag) — controller, pricing, and the benign leg are fixed
// per house — so warm experiment grids (and repeated benchmark iterations)
// skip both the re-planning and the re-simulation.
func (s *Suite) impactFor(cs campaignSpec, defAlg adm.Algorithm, defPartial, abort bool) (attack.Impact, error) {
	defender, err := s.trainADM(cs.House, defAlg, defPartial)
	if err != nil {
		return attack.Impact{}, err
	}
	opts := attack.EvalOptions{AbortDetectedDays: abort}
	eval := func() (attack.Impact, error) {
		c, err := s.campaignFor(cs)
		if err != nil {
			return attack.Impact{}, err
		}
		return s.evaluateImpact(cs.House, c.plan, defender, opts)
	}
	planSig, ok := cs.sig()
	if !ok {
		return eval()
	}
	n := 0
	if defPartial {
		n |= 1
	}
	if abort {
		n |= 2
	}
	k := artifactKey{kind: artifactImpact, house: cs.House, alg: defAlg, n: n, extra: planSig}
	v, err := s.cache.do(k, func() (any, error) { return eval() })
	if err != nil {
		return attack.Impact{}, err
	}
	return v.(attack.Impact), nil
}
