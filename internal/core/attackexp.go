package core

import (
	"time"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/solver"
	"github.com/acyd-lab/shatter/internal/testbed"
)

// TableVRow is one row of the attack-cost comparison (Table V).
type TableVRow struct {
	Framework string // "BIoTA", "Greedy", "SHATTER"
	ADM       string // "Rules-based", "DBSCAN", "K-Means"
	Knowledge string // "-", "All Data", "Partial Data"
	// CostUSD maps house name to total monthly energy cost under attack.
	CostUSD map[string]float64
	// DetectionRate maps house name to the defender ADM's detection rate
	// over the injected episodes.
	DetectionRate map[string]float64
}

// BenignCosts returns the no-attack monthly cost per scenario (the Table V
// reference line; paper: $244.69 for House A). The costs come straight from
// the cached benign simulations.
func (s *Suite) BenignCosts() (map[string]float64, error) {
	houses := s.ScenarioIDs()
	costs := make([]float64, len(houses))
	err := s.runCells(len(houses), func(i int) error {
		res, err := s.benignSim(houses[i], ctrlSHATTER)
		if err != nil {
			return err
		}
		costs[i] = res.TotalCostUSD
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(houses))
	for i, house := range houses {
		out[house] = costs[i]
	}
	return out, nil
}

// evaluateImpact scores a plan against a house with the cached benign leg.
func (s *Suite) evaluateImpact(house string, plan *attack.Plan, defender *adm.Model, opts attack.EvalOptions) (attack.Impact, error) {
	benign, err := s.benignSim(house, ctrlSHATTER)
	if err != nil {
		return attack.Impact{}, err
	}
	opts.Benign = &benign
	return attack.EvaluateImpact(s.trace(house), plan, defender, s.controllerFor(house), s.Params, s.pricingFor(house), opts)
}

// TableV reproduces the BIoTA / Greedy / SHATTER cost grid. Greedy and
// SHATTER rows are evaluated with detected days aborted (a flagged vector's
// impact does not materialise); the BIoTA row reports its raw rule-based
// impact plus the rate at which each clustering ADM would have caught it.
//
// Every (row, house) measurement is an independent cell: 18 cells fan out
// across the worker pool and are folded into the 9 rows afterwards, so the
// row order and contents are identical to a sequential run.
func (s *Suite) TableV() ([]TableVRow, error) {
	houses := s.ScenarioIDs()
	rows := []TableVRow{{
		Framework: "BIoTA",
		ADM:       "Rules-based",
		Knowledge: "-",
	}}
	type cellSpec struct {
		row       int
		house     string
		framework string
		alg       adm.Algorithm
		partial   bool
	}
	var cells []cellSpec
	for _, house := range houses {
		cells = append(cells, cellSpec{row: 0, house: house, framework: "BIoTA", alg: adm.DBSCAN})
	}
	for _, framework := range []string{"Greedy", "SHATTER"} {
		for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
			for _, partial := range []bool{false, true} {
				knowledge := "All Data"
				if partial {
					knowledge = "Partial Data"
				}
				rows = append(rows, TableVRow{
					Framework: framework,
					ADM:       alg.String(),
					Knowledge: knowledge,
				})
				for _, house := range houses {
					cells = append(cells, cellSpec{
						row: len(rows) - 1, house: house,
						framework: framework, alg: alg, partial: partial,
					})
				}
			}
		}
	}
	type measurement struct {
		cost, det float64
	}
	results := make([]measurement, len(cells))
	err := s.runCells(len(cells), func(i int) error {
		c := cells[i]
		spec := campaignSpec{
			House:    c.house,
			Strategy: c.framework,
			Cap:      attack.Full(s.trace(c.house).House),
		}
		abort := false
		if c.framework != "BIoTA" {
			spec.Alg, spec.Partial = c.alg, c.partial
			abort = true // a flagged vector's impact does not materialise
		}
		imp, err := s.impactFor(spec, c.alg, false, abort)
		if err != nil {
			return err
		}
		results[i] = measurement{cost: imp.Attacked.TotalCostUSD, det: imp.DetectionRate}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].CostUSD = make(map[string]float64, len(houses))
		rows[i].DetectionRate = make(map[string]float64, len(houses))
	}
	for i, c := range cells {
		rows[c.row].CostUSD[c.house] = results[i].cost
		rows[c.row].DetectionRate[c.house] = results[i].det
	}
	return rows, nil
}

// Fig10Result holds the appliance-triggering comparison for one house:
// daily benign cost, attacked cost without triggering, and attacked cost
// with triggering, plus the trigger-attributable monthly delta.
type Fig10Result struct {
	House          string
	Benign         []float64
	WithoutTrigger []float64
	WithTrigger    []float64
	TriggerExtra   float64
	TriggerPct     float64
}

// Fig10 runs the DBSCAN-ADM SHATTER attack with and without the Algorithm-1
// appliance-triggering stage, one cell per scenario.
func (s *Suite) Fig10() ([]Fig10Result, error) {
	houses := s.ScenarioIDs()
	out := make([]Fig10Result, len(houses))
	err := s.runCells(len(houses), func(i int) error {
		res, err := s.triggerImpact(houses[i], attack.Full(s.trace(houses[i]).House))
		if err != nil {
			return err
		}
		out[i] = *res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// triggerImpact measures the triggering stage's contribution under a
// capability. Both legs — the SHATTER plan without triggering and the
// triggered copy — are memoized campaigns evaluated through the impact
// cache against the same DBSCAN attacker-as-defender.
func (s *Suite) triggerImpact(house string, capability attack.Capability) (*Fig10Result, error) {
	spec := campaignSpec{House: house, Strategy: "SHATTER", Alg: adm.DBSCAN, Cap: capability}
	noTrig, err := s.impactFor(spec, adm.DBSCAN, false, false)
	if err != nil {
		return nil, err
	}
	spec.Trigger = true
	withTrig, err := s.impactFor(spec, adm.DBSCAN, false, false)
	if err != nil {
		return nil, err
	}
	extra := withTrig.Attacked.TotalCostUSD - noTrig.Attacked.TotalCostUSD
	pct := 0.0
	if noTrig.Attacked.TotalCostUSD > 0 {
		pct = extra / noTrig.Attacked.TotalCostUSD * 100
	}
	return &Fig10Result{
		House:          house,
		Benign:         noTrig.Benign.DailyCostUSD,
		WithoutTrigger: noTrig.Attacked.DailyCostUSD,
		WithTrigger:    withTrig.Attacked.DailyCostUSD,
		TriggerExtra:   extra,
		TriggerPct:     pct,
	}, nil
}

// AccessRow is one row of the capability sweeps (Tables VI and VII).
type AccessRow struct {
	Label string
	// ImpactUSD maps house name to the triggering attack's added cost.
	ImpactUSD map[string]float64
}

// TableVI sweeps zone-measurement access: all four zones, three (no
// bathroom), and two (no bathroom or kitchen — dropping the heavy-appliance
// zone collapses the impact, the paper's defensive insight).
func (s *Suite) TableVI() ([]AccessRow, error) {
	zoneSets := []struct {
		label string
		zones []home.ZoneID
	}{
		{"4 Zones", []home.ZoneID{home.Bedroom, home.Livingroom, home.Kitchen, home.Bathroom}},
		{"3 Zones", []home.ZoneID{home.Bedroom, home.Livingroom, home.Kitchen}},
		{"2 Zones", []home.ZoneID{home.Bedroom, home.Livingroom}},
	}
	rows := make([]AccessRow, len(zoneSets))
	err := s.accessSweep(rows, len(zoneSets), func(set int, house string) attack.Capability {
		return attack.Full(s.trace(house).House).WithZones(zoneSets[set].zones...)
	})
	if err != nil {
		return nil, err
	}
	for i, zs := range zoneSets {
		rows[i].Label = zs.label
	}
	return rows, nil
}

// accessSweep runs the Table VI/VII pattern: sets × scenarios triggering
// impacts as independent cells, folded into per-set rows.
func (s *Suite) accessSweep(rows []AccessRow, sets int, capFor func(set int, house string) attack.Capability) error {
	houses := s.ScenarioIDs()
	impacts := make([]float64, sets*len(houses))
	err := s.runCells(len(impacts), func(i int) error {
		set, house := i/len(houses), houses[i%len(houses)]
		res, err := s.triggerImpact(house, capFor(set, house))
		if err != nil {
			return err
		}
		impacts[i] = res.TriggerExtra
		return nil
	})
	if err != nil {
		return err
	}
	for set := 0; set < sets; set++ {
		rows[set].ImpactUSD = make(map[string]float64, len(houses))
		for hi, house := range houses {
			rows[set].ImpactUSD[house] = impacts[set*len(houses)+hi]
		}
	}
	return nil
}

// TableVII sweeps appliance-triggering access: all 13 appliances, 8, and a
// high-wattage 3 (oven, kettle, dryer).
func (s *Suite) TableVII() ([]AccessRow, error) {
	sets := []struct {
		label      string
		appliances []int
	}{
		{"13 Appliances", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		{"8 Appliances", []int{0, 1, 2, 3, 4, 10, 11, 12}},
		{"3 Appliances", []int{0, 3, 12}},
	}
	rows := make([]AccessRow, len(sets))
	err := s.accessSweep(rows, len(sets), func(set int, house string) attack.Capability {
		return attack.Full(s.trace(house).House).WithAppliances(sets[set].appliances...)
	})
	if err != nil {
		return nil, err
	}
	for i, as := range sets {
		rows[i].Label = as.label
	}
	return rows, nil
}

// ScalePoint is one scalability measurement (Fig 11).
type ScalePoint struct {
	X       int
	Elapsed time.Duration
	Nodes   int
}

// Fig11a measures joint branch-and-bound solve time against the horizon I —
// the exponential profile of Fig 11a. The oracle is a dense five-zone stay
// model (every zone reachable, stays of 2..k minutes) so the search tree's
// branching factor reflects the full schedule space rather than one
// particular evening's habits.
func (s *Suite) Fig11a(horizons []int) ([]ScalePoint, error) {
	oracle := newSyntheticOracle(5)
	zones := make([]home.ZoneID, 5)
	for i := range zones {
		zones[i] = home.ZoneID(i)
	}
	cost := func(_ int, z home.ZoneID) float64 { return float64(int(z)%7) + 0.5 }
	var out []ScalePoint
	for _, h := range horizons {
		w := solver.Window{
			StartSlot: 18 * 60, Length: h,
			StartZone: zones[1], StartArrival: 18*60 - 3,
			Zones: zones,
		}
		start := time.Now()
		_, st, err := solver.BranchAndBound(w, oracle, cost, func(int, home.ZoneID) bool { return true },
			solver.BBConfig{Prune: false, NodeBudget: 50_000_000})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{X: h, Elapsed: time.Since(start), Nodes: st.NodesExpanded})
	}
	return out, nil
}

// Fig11b measures window-optimisation time against the number of zones
// (horizontal scaling, lookback 10) on a synthetic oracle.
func (s *Suite) Fig11b(zoneCounts []int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, n := range zoneCounts {
		oracle := newSyntheticOracle(n)
		zones := make([]home.ZoneID, n)
		for i := range zones {
			zones[i] = home.ZoneID(i)
		}
		w := solver.Window{
			StartSlot: 600, Length: 10,
			StartZone: zones[0], StartArrival: 595,
			Zones: zones,
		}
		cost := func(_ int, z home.ZoneID) float64 { return float64(int(z)%7) + 0.5 }
		start := time.Now()
		var nodes int
		var ws solver.Workspace
		// Repeat to get a measurable duration for small n.
		const reps = 200
		for r := 0; r < reps; r++ {
			_, st, err := solver.OptimizeWindowWS(&ws, w, oracle, cost, func(int, home.ZoneID) bool { return true })
			if err != nil {
				return nil, err
			}
			nodes += st.NodesExpanded
		}
		out = append(out, ScalePoint{X: n, Elapsed: time.Since(start) / reps, Nodes: nodes / reps})
	}
	return out, nil
}

// syntheticOracle gives every zone a simple stay band, for zone-scaling
// benchmarks where no trained model exists.
type syntheticOracle struct{ n int }

func newSyntheticOracle(n int) syntheticOracle { return syntheticOracle{n: n} }

func (o syntheticOracle) MaxStay(_ int, z home.ZoneID, _ int) (int, bool) {
	return 5 + int(z)%11, true
}

func (o syntheticOracle) InRangeStay(_ int, z home.ZoneID, _ int, stay int) bool {
	return stay >= 2 && stay <= 5+int(z)%11
}

// TestbedResult wraps the Section VI validation.
type TestbedResult = testbed.ValidationResult

// Testbed runs the full scaled-testbed validation (identification error and
// MITM attack energy increase).
func (s *Suite) Testbed() (TestbedResult, error) {
	return testbed.Validate(testbed.DefaultConfig())
}
