package core

import (
	"fmt"
	"time"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
	"github.com/acyd-lab/shatter/internal/solver"
	"github.com/acyd-lab/shatter/internal/testbed"
)

// TableVRow is one row of the attack-cost comparison (Table V).
type TableVRow struct {
	Framework string // "BIoTA", "Greedy", "SHATTER"
	ADM       string // "Rules-based", "DBSCAN", "K-Means"
	Knowledge string // "-", "All Data", "Partial Data"
	// CostUSD maps house name to total monthly energy cost under attack.
	CostUSD map[string]float64
	// DetectionRate maps house name to the defender ADM's detection rate
	// over the injected episodes.
	DetectionRate map[string]float64
}

// BenignCosts returns the no-attack monthly cost per house (the Table V
// reference line; paper: $244.69 for House A).
func (s *Suite) BenignCosts() (map[string]float64, error) {
	out := make(map[string]float64, 2)
	for _, house := range []string{"A", "B"} {
		res, err := attack.EvaluateImpact(s.Houses[house], s.truthPlan(house), nil, s.controller(), s.Params, s.Pricing, attack.EvalOptions{})
		if err != nil {
			return nil, err
		}
		out[house] = res.Benign.TotalCostUSD
	}
	return out, nil
}

// truthPlan builds a no-op plan (reported = actual).
func (s *Suite) truthPlan(house string) *attack.Plan {
	pl := s.planner(house, nil, attack.Capability{})
	plan, err := pl.PlanBIoTA() // powerless capability ⇒ pure truth
	if err != nil {
		// PlanBIoTA cannot fail with a powerless capability.
		panic(fmt.Sprintf("core: truth plan: %v", err))
	}
	return plan
}

// TableV reproduces the BIoTA / Greedy / SHATTER cost grid. Greedy and
// SHATTER rows are evaluated with detected days aborted (a flagged vector's
// impact does not materialise); the BIoTA row reports its raw rule-based
// impact plus the rate at which each clustering ADM would have caught it.
func (s *Suite) TableV() ([]TableVRow, error) {
	biota := TableVRow{
		Framework:     "BIoTA",
		ADM:           "Rules-based",
		Knowledge:     "-",
		CostUSD:       make(map[string]float64),
		DetectionRate: make(map[string]float64),
	}
	var rows []TableVRow
	for _, house := range []string{"A", "B"} {
		defender, err := s.trainADM(house, adm.DBSCAN, false)
		if err != nil {
			return nil, err
		}
		pl := s.planner(house, nil, attack.Full(s.Houses[house].House))
		plan, err := pl.PlanBIoTA()
		if err != nil {
			return nil, err
		}
		imp, err := attack.EvaluateImpact(s.Houses[house], plan, defender, s.controller(), s.Params, s.Pricing, attack.EvalOptions{})
		if err != nil {
			return nil, err
		}
		biota.CostUSD[house] = imp.Attacked.TotalCostUSD
		biota.DetectionRate[house] = imp.DetectionRate
	}
	rows = append(rows, biota)

	for _, framework := range []string{"Greedy", "SHATTER"} {
		for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
			for _, partial := range []bool{false, true} {
				knowledge := "All Data"
				if partial {
					knowledge = "Partial Data"
				}
				row := TableVRow{
					Framework:     framework,
					ADM:           alg.String(),
					Knowledge:     knowledge,
					CostUSD:       make(map[string]float64),
					DetectionRate: make(map[string]float64),
				}
				for _, house := range []string{"A", "B"} {
					defender, err := s.trainADM(house, alg, false)
					if err != nil {
						return nil, err
					}
					attacker, err := s.trainADM(house, alg, partial)
					if err != nil {
						return nil, err
					}
					pl := s.planner(house, attacker, attack.Full(s.Houses[house].House))
					var plan *attack.Plan
					if framework == "Greedy" {
						plan, err = pl.PlanGreedy()
					} else {
						plan, err = pl.PlanSHATTER()
					}
					if err != nil {
						return nil, err
					}
					imp, err := attack.EvaluateImpact(s.Houses[house], plan, defender, s.controller(), s.Params, s.Pricing, attack.EvalOptions{AbortDetectedDays: true})
					if err != nil {
						return nil, err
					}
					row.CostUSD[house] = imp.Attacked.TotalCostUSD
					row.DetectionRate[house] = imp.DetectionRate
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// Fig10Result holds the appliance-triggering comparison for one house:
// daily benign cost, attacked cost without triggering, and attacked cost
// with triggering, plus the trigger-attributable monthly delta.
type Fig10Result struct {
	House          string
	Benign         []float64
	WithoutTrigger []float64
	WithTrigger    []float64
	TriggerExtra   float64
	TriggerPct     float64
}

// Fig10 runs the DBSCAN-ADM SHATTER attack with and without the Algorithm-1
// appliance-triggering stage.
func (s *Suite) Fig10() ([]Fig10Result, error) {
	var out []Fig10Result
	for _, house := range []string{"A", "B"} {
		res, err := s.triggerImpact(house, attack.Full(s.Houses[house].House))
		if err != nil {
			return nil, err
		}
		out = append(out, *res)
	}
	return out, nil
}

// triggerImpact measures the triggering stage's contribution under a
// capability.
func (s *Suite) triggerImpact(house string, cap attack.Capability) (*Fig10Result, error) {
	attacker, err := s.trainADM(house, adm.DBSCAN, false)
	if err != nil {
		return nil, err
	}
	pl := s.planner(house, attacker, cap)
	plan, err := pl.PlanSHATTER()
	if err != nil {
		return nil, err
	}
	noTrig, err := attack.EvaluateImpact(s.Houses[house], plan, attacker, s.controller(), s.Params, s.Pricing, attack.EvalOptions{})
	if err != nil {
		return nil, err
	}
	attack.TriggerAppliances(s.Houses[house], plan, attacker, cap)
	withTrig, err := attack.EvaluateImpact(s.Houses[house], plan, attacker, s.controller(), s.Params, s.Pricing, attack.EvalOptions{})
	if err != nil {
		return nil, err
	}
	extra := withTrig.Attacked.TotalCostUSD - noTrig.Attacked.TotalCostUSD
	pct := 0.0
	if noTrig.Attacked.TotalCostUSD > 0 {
		pct = extra / noTrig.Attacked.TotalCostUSD * 100
	}
	return &Fig10Result{
		House:          house,
		Benign:         noTrig.Benign.DailyCostUSD,
		WithoutTrigger: noTrig.Attacked.DailyCostUSD,
		WithTrigger:    withTrig.Attacked.DailyCostUSD,
		TriggerExtra:   extra,
		TriggerPct:     pct,
	}, nil
}

// AccessRow is one row of the capability sweeps (Tables VI and VII).
type AccessRow struct {
	Label string
	// ImpactUSD maps house name to the triggering attack's added cost.
	ImpactUSD map[string]float64
}

// TableVI sweeps zone-measurement access: all four zones, three (no
// bathroom), and two (no bathroom or kitchen — dropping the heavy-appliance
// zone collapses the impact, the paper's defensive insight).
func (s *Suite) TableVI() ([]AccessRow, error) {
	zoneSets := []struct {
		label string
		zones []home.ZoneID
	}{
		{"4 Zones", []home.ZoneID{home.Bedroom, home.Livingroom, home.Kitchen, home.Bathroom}},
		{"3 Zones", []home.ZoneID{home.Bedroom, home.Livingroom, home.Kitchen}},
		{"2 Zones", []home.ZoneID{home.Bedroom, home.Livingroom}},
	}
	var out []AccessRow
	for _, zs := range zoneSets {
		row := AccessRow{Label: zs.label, ImpactUSD: make(map[string]float64)}
		for _, house := range []string{"A", "B"} {
			cap := attack.Full(s.Houses[house].House).WithZones(zs.zones...)
			res, err := s.triggerImpact(house, cap)
			if err != nil {
				return nil, err
			}
			row.ImpactUSD[house] = res.TriggerExtra
		}
		out = append(out, row)
	}
	return out, nil
}

// TableVII sweeps appliance-triggering access: all 13 appliances, 8, and a
// high-wattage 3 (oven, kettle, dryer).
func (s *Suite) TableVII() ([]AccessRow, error) {
	sets := []struct {
		label      string
		appliances []int
	}{
		{"13 Appliances", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		{"8 Appliances", []int{0, 1, 2, 3, 4, 10, 11, 12}},
		{"3 Appliances", []int{0, 3, 12}},
	}
	var out []AccessRow
	for _, as := range sets {
		row := AccessRow{Label: as.label, ImpactUSD: make(map[string]float64)}
		for _, house := range []string{"A", "B"} {
			cap := attack.Full(s.Houses[house].House).WithAppliances(as.appliances...)
			res, err := s.triggerImpact(house, cap)
			if err != nil {
				return nil, err
			}
			row.ImpactUSD[house] = res.TriggerExtra
		}
		out = append(out, row)
	}
	return out, nil
}

// ScalePoint is one scalability measurement (Fig 11).
type ScalePoint struct {
	X       int
	Elapsed time.Duration
	Nodes   int
}

// Fig11a measures joint branch-and-bound solve time against the horizon I —
// the exponential profile of Fig 11a. The oracle is a dense five-zone stay
// model (every zone reachable, stays of 2..k minutes) so the search tree's
// branching factor reflects the full schedule space rather than one
// particular evening's habits.
func (s *Suite) Fig11a(horizons []int) ([]ScalePoint, error) {
	oracle := newSyntheticOracle(5)
	zones := make([]home.ZoneID, 5)
	for i := range zones {
		zones[i] = home.ZoneID(i)
	}
	cost := func(_ int, z home.ZoneID) float64 { return float64(int(z)%7) + 0.5 }
	var out []ScalePoint
	for _, h := range horizons {
		w := solver.Window{
			StartSlot: 18 * 60, Length: h,
			StartZone: zones[1], StartArrival: 18*60 - 3,
			Zones: zones,
		}
		start := time.Now()
		_, st, err := solver.BranchAndBound(w, oracle, cost, func(int, home.ZoneID) bool { return true },
			solver.BBConfig{Prune: false, NodeBudget: 50_000_000})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{X: h, Elapsed: time.Since(start), Nodes: st.NodesExpanded})
	}
	return out, nil
}

// Fig11b measures window-optimisation time against the number of zones
// (horizontal scaling, lookback 10) on a synthetic oracle.
func (s *Suite) Fig11b(zoneCounts []int) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, n := range zoneCounts {
		oracle := newSyntheticOracle(n)
		zones := make([]home.ZoneID, n)
		for i := range zones {
			zones[i] = home.ZoneID(i)
		}
		w := solver.Window{
			StartSlot: 600, Length: 10,
			StartZone: zones[0], StartArrival: 595,
			Zones: zones,
		}
		cost := func(_ int, z home.ZoneID) float64 { return float64(int(z)%7) + 0.5 }
		start := time.Now()
		var nodes int
		// Repeat to get a measurable duration for small n.
		const reps = 200
		for r := 0; r < reps; r++ {
			_, st, err := solver.OptimizeWindow(w, oracle, cost, func(int, home.ZoneID) bool { return true })
			if err != nil {
				return nil, err
			}
			nodes += st.NodesExpanded
		}
		out = append(out, ScalePoint{X: n, Elapsed: time.Since(start) / reps, Nodes: nodes / reps})
	}
	return out, nil
}

// syntheticOracle gives every zone a simple stay band, for zone-scaling
// benchmarks where no trained model exists.
type syntheticOracle struct{ n int }

func newSyntheticOracle(n int) syntheticOracle { return syntheticOracle{n: n} }

func (o syntheticOracle) MaxStay(_ int, z home.ZoneID, _ int) (int, bool) {
	return 5 + int(z)%11, true
}

func (o syntheticOracle) InRangeStay(_ int, z home.ZoneID, _ int, stay int) bool {
	return stay >= 2 && stay <= 5+int(z)%11
}

// TestbedResult wraps the Section VI validation.
type TestbedResult = testbed.ValidationResult

// Testbed runs the full scaled-testbed validation (identification error and
// MITM attack energy increase).
func (s *Suite) Testbed() (TestbedResult, error) {
	return testbed.Validate(testbed.DefaultConfig())
}

func allZoneIDs(h *home.House) []home.ZoneID {
	out := make([]home.ZoneID, 0, len(h.Zones))
	for _, z := range h.Zones {
		out = append(out, z.ID)
	}
	return out
}

