package core

import (
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

// suiteSpecs resolves the suite's configured scenarios back to their specs.
func suiteSpecs(t *testing.T, s *Suite) []scenario.Spec {
	t.Helper()
	specs := make([]scenario.Spec, len(s.Worlds))
	for i, w := range s.Worlds {
		specs[i] = w.Spec
	}
	return specs
}

// TestStreamBenignMatchesBatchCosts pins the fleet's streamed controller
// accounting to the batch pipeline: each home's streamed bill equals the
// suite's cached benign simulation of the same world.
func TestStreamBenignMatchesBatchCosts(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Days: 4, TrainDays: 2, Seed: 321, WindowLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Stream(suiteSpecs(t, s), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	benign, err := s.BenignCosts()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Homes) != len(s.Worlds) {
		t.Fatalf("%d home results for %d worlds", len(res.Homes), len(s.Worlds))
	}
	for _, h := range res.Homes {
		if h.Sim.TotalCostUSD != benign[h.ID] {
			t.Errorf("home %s: streamed bill %v, batch benign %v", h.ID, h.Sim.TotalCostUSD, benign[h.ID])
		}
		if h.Verdicts != 0 || h.Injected != 0 {
			t.Errorf("home %s: benign stream produced detection events: %+v", h.ID, h)
		}
	}
	if res.Stats.TotalCostUSD <= 0 || res.Stats.Events <= res.Stats.Slots {
		t.Errorf("implausible aggregate: %+v", res.Stats)
	}
}

// TestStreamDefendedAttackedMatchesSweep pins the streaming fleet's attack
// and detection accounting to the batch ScenarioSweep over the same worlds:
// attacked bills and detection rates must agree exactly.
func TestStreamDefendedAttackedMatchesSweep(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Days: 6, TrainDays: 4, Seed: 321, WindowLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	specs := suiteSpecs(t, s)
	points, err := s.ScenarioSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Stream(specs, StreamOptions{Defend: true, Attack: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		h := res.Homes[i]
		if h.ID != p.ScenarioID {
			t.Fatalf("home %d is %q, sweep point %q", i, h.ID, p.ScenarioID)
		}
		if h.Sim.TotalCostUSD != p.AttackedUSD {
			t.Errorf("home %s: streamed attacked bill %v, sweep %v", h.ID, h.Sim.TotalCostUSD, p.AttackedUSD)
		}
		var rate float64
		if h.Injected > 0 {
			rate = float64(h.Flagged) / float64(h.Injected)
		}
		if rate != p.DetectionRate {
			t.Errorf("home %s: streamed detection rate %v, sweep %v", h.ID, rate, p.DetectionRate)
		}
	}
}

// TestStreamDeterministicAcrossWorkers asserts Workers=1 ≡ Workers=N for a
// defended, attacked fleet that includes an on-demand (unconfigured) world.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	specs := []scenario.Spec{}
	for _, id := range []string{"A", "studio"} {
		sp, ok := scenario.Get(id)
		if !ok {
			t.Fatalf("builtin scenario %q missing", id)
		}
		specs = append(specs, sp)
	}
	specs = append(specs, scenario.Synth(6, 2, 3))
	run := func(workers int) stream.FleetResult {
		s, err := NewSuite(SuiteConfig{Days: 6, TrainDays: 4, Seed: 9, WindowLen: 10, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Stream(specs, StreamOptions{Defend: true, Attack: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	for i := range seq.Homes {
		a, b := seq.Homes[i], par.Homes[i]
		if !reflect.DeepEqual(a, b) {
			t.Errorf("home %s diverges across worker counts:\n%+v\nvs\n%+v", a.ID, a, b)
		}
	}
}

// TestStreamChaosSupervisedMatchesClean drives a defended, attacked suite
// fleet through the supervised fault path and requires the per-home results
// to be byte-identical to the clean run — the resilience layer must change
// the retry counters and nothing else, all the way up at the suite level.
func TestStreamChaosSupervisedMatchesClean(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Days: 6, TrainDays: 4, Seed: 321, WindowLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	specs := suiteSpecs(t, s)
	clean, err := s.Stream(specs, StreamOptions{Defend: true, Attack: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Stream(specs, StreamOptions{
		Defend: true, Attack: true,
		Recover:       true,
		CheckpointDir: t.TempDir(),
		// Block-scale probabilities: the default transport moves one frame
		// per home-day, so per-frame rates sit near the day count's inverse.
		Chaos:         &stream.FaultConfig{Seed: 17, Drop: 0.2, Duplicate: 0.15, Corrupt: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Quarantined != 0 {
		t.Fatalf("recoverable chaos quarantined %d homes: %+v", got.Stats.Quarantined, got.Outcomes)
	}
	if got.Stats.Retries == 0 {
		t.Fatal("chaos caused no retries — faults not reaching the suite's fleet")
	}
	for i := range clean.Homes {
		if !reflect.DeepEqual(got.Homes[i], clean.Homes[i]) {
			t.Errorf("home %s diverges under chaos:\n%+v\nvs\n%+v", clean.Homes[i].ID, got.Homes[i], clean.Homes[i])
		}
	}
}

// TestStreamUnboundedWorldsStayUnmaterialized checks a benign fleet over
// scenarios the suite never loaded leaves no world behind — the streaming
// path must not materialize traces it does not need.
func TestStreamUnboundedWorldsStayUnmaterialized(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Days: 4, TrainDays: 2, Seed: 5, WindowLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	sp := scenario.Synth(5, 2, 11)
	if _, err := s.Stream([]scenario.Spec{sp}, StreamOptions{Days: 2}); err != nil {
		t.Fatal(err)
	}
	if s.World(sp.ID) != nil {
		t.Errorf("benign stream materialized world %s", sp.ID)
	}
	if got := s.CacheStats().ADMTrainings; got != 0 {
		t.Errorf("benign stream trained %d models", got)
	}
}
