package core

import (
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/scenario"
)

// sweepSpecsForTest is the non-ARAS sweep set the determinism and reuse
// tests share: registry archetypes plus a procedural 12-zone, 4-occupant
// home (the acceptance floor).
func sweepSpecsForTest(t *testing.T) []scenario.Spec {
	t.Helper()
	specs := []scenario.Spec{}
	for _, id := range []string{"studio", "nightshift", "family4", "shared8"} {
		sp, ok := scenario.Get(id)
		if !ok {
			t.Fatalf("builtin scenario %q missing", id)
		}
		specs = append(specs, sp)
	}
	return append(specs, scenario.Synth(12, 4, 7))
}

// zeroElapsed strips the only wall-clock (non-deterministic) field.
func zeroElapsed(points []SweepPoint) []SweepPoint {
	out := append([]SweepPoint(nil), points...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// TestScenarioSweepDeterministicAcrossWorkers asserts the engine guarantee
// extends to the sweep: Workers=1 and Workers=N produce identical results
// on non-ARAS worlds.
func TestScenarioSweepDeterministicAcrossWorkers(t *testing.T) {
	specs := sweepSpecsForTest(t)
	cfg := SuiteConfig{Days: 8, TrainDays: 6, Seed: 123, WindowLen: 10}
	cfg.Workers = 1
	seq, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqPts, err := seq.ScenarioSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	parPts, err := par.ScenarioSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroElapsed(seqPts), zeroElapsed(parPts)) {
		t.Errorf("sweep diverges between Workers=1 and Workers=8:\nseq: %+v\npar: %+v",
			zeroElapsed(seqPts), zeroElapsed(parPts))
	}
}

// TestScenarioSweepShapeAndImpact sanity-checks the end-to-end pipeline on
// each world: positive bills, non-negative attack lift, and world shapes
// matching the specs.
func TestScenarioSweepShapeAndImpact(t *testing.T) {
	s, err := NewSuite(SuiteConfig{Days: 8, TrainDays: 6, Seed: 123, WindowLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	specs := sweepSpecsForTest(t)
	points, err := s.ScenarioSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(specs) {
		t.Fatalf("%d points for %d specs", len(points), len(specs))
	}
	for i, p := range points {
		if p.ScenarioID != specs[i].ID {
			t.Errorf("point %d is %q, want %q", i, p.ScenarioID, specs[i].ID)
		}
		if p.Zones != len(specs[i].Zones) || p.Occupants != len(specs[i].Occupants) {
			t.Errorf("%s: shape %dz/%do, want %dz/%do",
				p.ScenarioID, p.Zones, p.Occupants, len(specs[i].Zones), len(specs[i].Occupants))
		}
		if p.BenignUSD <= 0 {
			t.Errorf("%s: benign bill %v", p.ScenarioID, p.BenignUSD)
		}
		if p.AttackedUSD < p.BenignUSD {
			t.Errorf("%s: attacked %v below benign %v", p.ScenarioID, p.AttackedUSD, p.BenignUSD)
		}
	}
	last := points[len(points)-1]
	if last.Zones < 12 || last.Occupants < 4 {
		t.Errorf("procedural ramp tops out at %dz/%do, want >= 12z/4o", last.Zones, last.Occupants)
	}
}

// TestScenarioSweepReusesArtifacts asserts per-scenario artifact reuse: a
// second sweep over the same specs must not train a single new model or
// add a cache entry, and must not disturb the configured A/B worlds.
func TestScenarioSweepReusesArtifacts(t *testing.T) {
	s := testSuite(t)
	specs := []scenario.Spec{}
	for _, id := range []string{"studio", "nightshift"} {
		sp, _ := scenario.Get(id)
		specs = append(specs, sp)
	}
	specs = append(specs, scenario.Synth(6, 2, 3))
	first, err := s.ScenarioSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.CacheStats()
	if stats.ADMTrainings != int64(len(specs)) {
		t.Errorf("first sweep trained %d models, want %d (one defender per scenario)",
			stats.ADMTrainings, len(specs))
	}
	second, err := s.ScenarioSweep(specs)
	if err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	if after.ADMTrainings != stats.ADMTrainings {
		t.Errorf("re-sweep trained %d new models", after.ADMTrainings-stats.ADMTrainings)
	}
	if after.Entries != stats.Entries {
		t.Errorf("re-sweep grew the cache %d -> %d entries", stats.Entries, after.Entries)
	}
	if !reflect.DeepEqual(zeroElapsed(first), zeroElapsed(second)) {
		t.Error("re-sweep results diverge from the first run")
	}
	// The sweep loads worlds on demand without joining the experiment grid.
	if got := len(s.Worlds); got != 2 {
		t.Errorf("sweep disturbed the configured scenario set: %d worlds", got)
	}
	if s.Trace("studio") == nil {
		t.Error("swept world not reachable via Trace")
	}
}
