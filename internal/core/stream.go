package core

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/scenario"
	"github.com/acyd-lab/shatter/internal/stream"
)

// StreamOptions configures a Suite.Stream fleet run.
type StreamOptions struct {
	// Days bounds each home's stream; 0 streams the suite's configured
	// trace length, which makes a defended/attacked run comparable
	// slot-for-slot with the batch pipeline over the same world.
	Days int
	// Defend attaches an online detector per home: the suite's cached
	// DBSCAN defender (trained on the configured training prefix) scores
	// episodes the moment they close.
	Defend bool
	// Attack plans a full-knowledge SHATTER campaign (sensor spoofing +
	// Algorithm-1 appliance triggering) per home and injects it into the
	// stream in flight.
	Attack bool
	// Broker, when non-empty, routes every home's frames through the MQTT
	// broker at this address (per-home topics, fleet-wide monitor).
	Broker string
	// Recover enables the fault-tolerant supervisor: failed homes retry
	// from their last checkpoint up to MaxRetries, then quarantine with a
	// recorded error instead of aborting the fleet.
	Recover bool
	// MaxRetries bounds retry attempts per home; 0 takes the stream-layer
	// default, negative disables retries.
	MaxRetries int
	// FailFast aborts the whole fleet on the first quarantined home even
	// when Recover is set.
	FailFast bool
	// CheckpointDir persists per-home day-boundary checkpoints so retries
	// (and later runs) resume instead of replaying from day zero.
	CheckpointDir string
	// AsyncCheckpoints moves checkpoint disk writes off the drive hot path
	// onto a background sink with flush barriers (see
	// stream.FleetOptions.AsyncCheckpoints).
	AsyncCheckpoints bool
	// Chaos injects a deterministic fault schedule into every home's
	// transport — the resilience test harness.
	Chaos *stream.FaultConfig
	// Clock times chaos delays and retry backoff; nil is real wall-clock
	// time, a stream.VirtualClock makes chaos runs compute-bound with
	// byte-identical results.
	Clock stream.Clock
	// LegacyJSON forces per-slot JSON framing instead of the default binary
	// day-block transport (see stream.FleetOptions.LegacyJSON). Results are
	// bit-identical either way.
	LegacyJSON bool
}

// Stream drives the scenario worlds as a concurrent streaming fleet: each
// home advances slot-by-slot through an incremental generator source, the
// optional live injector, the optional online detector, and the incremental
// HVAC stepper, across the suite's worker pool with per-home backpressure.
// Per-home results and the deterministic aggregate fields are identical for
// any worker count, and — because every streaming stage is equivalence-
// locked to its batch counterpart — identical to the batch pipeline over
// the same worlds.
//
// Worlds are materialized (and defenders trained, campaigns planned) only
// when Defend or Attack demands them; a plain benign fleet streams straight
// from the generators without ever holding a full trace.
func (s *Suite) Stream(specs []scenario.Spec, opts StreamOptions) (stream.FleetResult, error) {
	jobs, err := s.FleetJobs(specs, opts)
	if err != nil {
		return stream.FleetResult{}, err
	}
	return stream.RunFleet(jobs, stream.FleetOptions{
		Workers:          s.Config.Workers,
		Broker:           opts.Broker,
		Recover:          opts.Recover,
		MaxRetries:       opts.MaxRetries,
		FailFast:         opts.FailFast,
		CheckpointDir:    opts.CheckpointDir,
		AsyncCheckpoints: opts.AsyncCheckpoints,
		Chaos:            opts.Chaos,
		Clock:            opts.Clock,
		LegacyJSON:       opts.LegacyJSON,
	})
}

// FleetJobs assembles one lazily-opening stream job per spec — the job
// list both Stream and the fleetd service run, so a sharded service and a
// one-shot RunFleet drive byte-identical pipelines. Worlds are materialized
// (and defenders trained, campaigns planned) up front across the pool only
// when Defend or Attack demands them; a benign fleet streams straight from
// the generators without ever holding a full trace.
func (s *Suite) FleetJobs(specs []scenario.Spec, opts StreamOptions) ([]stream.Job, error) {
	days := opts.Days
	if days <= 0 {
		days = s.Config.Days
	}
	if opts.Defend || opts.Attack {
		// Training and planning need the materialized trace; build every
		// world up front across the pool so job Opens only read.
		if err := s.runCells(len(specs), func(i int) error {
			_, err := s.ensureWorld(specs[i])
			return err
		}); err != nil {
			return nil, err
		}
	}
	jobs := make([]stream.Job, len(specs))
	for i, sp := range specs {
		sp := sp
		jobs[i] = stream.Job{ID: sp.ID, Open: func() (stream.Source, *stream.Home, error) {
			src, h, err := s.openStream(sp, days, opts)
			if err != nil {
				return nil, nil, fmt.Errorf("core: stream %s: %w", sp.ID, err)
			}
			return src, h, nil
		}}
	}
	return jobs, nil
}

// openStream assembles one home's streaming pipeline on the worker that
// picked the job up.
func (s *Suite) openStream(sp scenario.Spec, days int, opts StreamOptions) (stream.Source, *stream.Home, error) {
	cfg := stream.HomeConfig{ID: sp.ID, Params: s.Params, Pricing: s.Pricing}
	if sp.Pricing != nil {
		cfg.Pricing = *sp.Pricing
	}
	var seed uint64
	if w := s.World(sp.ID); w != nil {
		cfg.House, seed = w.Trace.House, w.Seed
	} else {
		house, err := sp.Build()
		if err != nil {
			return nil, nil, err
		}
		// The seed ensureWorld would use, so a later materialization of the
		// same scenario replays exactly this stream.
		cfg.House, seed = house, sweepSeed(s.Config.Seed, sp.ID)
	}
	if sp.Controller == scenario.ControllerASHRAE {
		cfg.Controller = hvac.NewASHRAEController(s.Params, cfg.House)
	}
	if opts.Defend || opts.Attack {
		defender, err := s.trainADM(sp.ID, adm.DBSCAN, false)
		if err != nil {
			return nil, nil, err
		}
		if opts.Defend {
			cfg.Defender = defender
		}
		if opts.Attack {
			// The triggered SHATTER campaign comes from the suite cache —
			// the same entry the scenario sweep evaluates — so a fleet
			// that streams a previously analysed world injects its cached
			// campaign instead of re-planning it.
			camp, err := s.campaignFor(campaignSpec{
				House:    sp.ID,
				Strategy: "SHATTER",
				Alg:      adm.DBSCAN,
				Trigger:  true,
				Cap:      attack.Full(cfg.House),
			})
			if err != nil {
				return nil, nil, err
			}
			inj, err := stream.NewInjector(cfg.House, camp.plan)
			if err != nil {
				return nil, nil, err
			}
			cfg.Injector = inj
		}
	}
	gen, err := aras.NewGenerator(cfg.House, sp.GeneratorConfig(days, seed))
	if err != nil {
		return nil, nil, err
	}
	h, err := stream.NewHome(cfg)
	if err != nil {
		return nil, nil, err
	}
	return stream.NewGeneratorSource(sp.ID, gen), h, nil
}
