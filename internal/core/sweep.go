package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/scenario"
)

// SweepPoint is one scenario's full-stack pipeline measurement: the world
// is generated, an ADM trained, a SHATTER attack planned and triggered, and
// its impact evaluated — the real end-to-end run that replaces the Fig 11b
// synthetic-oracle scaling proxy.
type SweepPoint struct {
	ScenarioID string
	// Zones and Occupants describe the world's size (conditioned zones).
	Zones     int
	Occupants int
	// Appliances is the smart-appliance count.
	Appliances int
	// BenignUSD and AttackedUSD are the simulated bills; ExtraUSD is the
	// attack's added cost.
	BenignUSD   float64
	AttackedUSD float64
	ExtraUSD    float64
	// DetectionRate is the defender ADM's flag rate over injected episodes.
	DetectionRate float64
	// InjectedSlots and TriggeredSlots are the campaign's footprint.
	InjectedSlots  int
	TriggeredSlots int
	// InfeasibleWindows counts optimisation windows without a stealthy
	// schedule.
	InfeasibleWindows int
	// Elapsed is the cell's wall-clock time (generation through evaluation).
	// It is the only non-deterministic field; determinism comparisons must
	// zero it.
	Elapsed time.Duration
}

// sweepSeed decorrelates on-demand worlds from the configured scenario set
// deterministically: the seed depends only on the base seed and scenario
// ID, never on load order or worker interleaving.
func sweepSeed(base uint64, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return base + h.Sum64()
}

// ensureWorld loads a scenario world on demand. Worlds already loaded
// (configured or previously swept) are reused, so repeated sweeps share
// every cached artifact.
func (s *Suite) ensureWorld(sp scenario.Spec) (*World, error) {
	if w := s.World(sp.ID); w != nil {
		return w, nil
	}
	seed := sweepSeed(s.Config.Seed, sp.ID)
	tr, err := sp.Generate(s.Config.Days, seed)
	if err != nil {
		return nil, fmt.Errorf("core: sweep scenario %s: %w", sp.ID, err)
	}
	w := &World{ID: sp.ID, Spec: sp, Trace: tr, Seed: seed}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prior := s.byID[sp.ID]; prior != nil {
		return prior, nil // lost a benign race: both builders used the same inputs
	}
	s.byID[sp.ID] = w
	return w, nil
}

// ScenarioSweep runs the full SHATTER pipeline end to end on each spec:
// generate the world, train the DBSCAN defender on the training prefix,
// plan the windowed SHATTER attack, run the Algorithm-1 appliance
// triggering, and evaluate the impact against the defender. Specs may come
// from the registry or scenario.Synth; worlds and artifacts are cached by
// scenario ID, so re-sweeping is warm. Cells fan across the suite's worker
// pool and the deterministic fields of the result are identical for any
// worker count.
func (s *Suite) ScenarioSweep(specs []scenario.Spec) ([]SweepPoint, error) {
	// Phase 1: materialise every world so the pipeline cells only read.
	if err := s.runCells(len(specs), func(i int) error {
		_, err := s.ensureWorld(specs[i])
		return err
	}); err != nil {
		return nil, err
	}
	// Phase 2: one full-pipeline cell per scenario.
	points := make([]SweepPoint, len(specs))
	err := s.runCells(len(specs), func(i int) error {
		p, err := s.sweepScenario(specs[i].ID)
		if err != nil {
			return fmt.Errorf("core: sweep %s: %w", specs[i].ID, err)
		}
		points[i] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// sweepScenario measures one loaded scenario end to end. The triggered
// SHATTER campaign and its impact come from the suite cache, so re-sweeping
// a scenario (or sharing its campaign with the streaming fleet) reuses the
// planned attack instead of re-planning it.
func (s *Suite) sweepScenario(id string) (SweepPoint, error) {
	started := time.Now()
	tr := s.trace(id)
	house := tr.House
	spec := campaignSpec{
		House:    id,
		Strategy: "SHATTER",
		Alg:      adm.DBSCAN,
		Trigger:  true,
		Cap:      attack.Full(house),
	}
	camp, err := s.campaignFor(spec)
	if err != nil {
		return SweepPoint{}, err
	}
	imp, err := s.impactFor(spec, adm.DBSCAN, false, false)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		ScenarioID:        id,
		Zones:             len(house.Zones) - 1, // conditioned zones
		Occupants:         len(house.Occupants),
		Appliances:        len(house.Appliances),
		BenignUSD:         imp.Benign.TotalCostUSD,
		AttackedUSD:       imp.Attacked.TotalCostUSD,
		ExtraUSD:          imp.ExtraCostUSD,
		DetectionRate:     imp.DetectionRate,
		InjectedSlots:     camp.plan.InjectedSlots(tr),
		TriggeredSlots:    camp.triggered,
		InfeasibleWindows: camp.plan.InfeasibleWindows,
		Elapsed:           time.Since(started),
	}, nil
}
