package core

import (
	"math"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
)

// testSuite builds a reduced-size suite so the full experiment matrix runs
// quickly in CI.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(SuiteConfig{Days: 12, TrainDays: 9, Seed: 99, WindowLen: 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSuiteValidation(t *testing.T) {
	if _, err := NewSuite(SuiteConfig{Days: 1, TrainDays: 1}); err == nil {
		t.Error("Days=1 should fail")
	}
	if _, err := NewSuite(SuiteConfig{Days: 10, TrainDays: 10}); err == nil {
		t.Error("TrainDays == Days should fail")
	}
	if _, err := NewSuite(SuiteConfig{Days: 10, TrainDays: 8, WindowLen: -1}); err == nil {
		t.Error("negative WindowLen should fail")
	}
	if _, err := NewSuite(SuiteConfig{Days: 10, TrainDays: 8, Scenarios: []string{"nope"}}); err == nil {
		t.Error("unknown scenario should fail")
	}
	if _, err := NewSuite(SuiteConfig{Days: 10, TrainDays: 8, Scenarios: []string{"A", "A"}}); err == nil {
		t.Error("duplicate scenario should fail")
	}
	// Validate is usable standalone (the CLI front-ends call it directly).
	if err := (SuiteConfig{Days: 10, TrainDays: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFig3Shape(t *testing.T) {
	s := testSuite(t)
	results, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d houses", len(results))
	}
	for _, r := range results {
		if r.SavingsPct < 20 || r.SavingsPct > 80 {
			t.Errorf("house %s savings %.1f%%, want the paper's ~50%% regime", r.House, r.SavingsPct)
		}
		for d := range r.SHATTER {
			if r.SHATTER[d] >= r.ASHRAE[d] {
				t.Errorf("house %s day %d: SHATTER %.2f !< ASHRAE %.2f", r.House, d, r.SHATTER[d], r.ASHRAE[d])
			}
		}
	}
}

func TestFig4Sweeps(t *testing.T) {
	s := testSuite(t)
	results, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d sweeps", len(results))
	}
	for _, r := range results {
		if len(r.Points) < 3 {
			t.Errorf("%v sweep too short: %d points", r.Algorithm, len(r.Points))
		}
	}
}

func TestFig5Progressive(t *testing.T) {
	s := testSuite(t)
	results, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 { // 2 algorithms × 2 houses × 2 occupants
		t.Fatalf("%d curves, want 8", len(results))
	}
	for _, r := range results {
		if len(r.Points) == 0 {
			t.Errorf("%s/%v: empty curve", r.Dataset, r.Algorithm)
			continue
		}
		for _, p := range r.Points {
			if math.IsNaN(p.F1) || p.F1 < 0 || p.F1 > 1 {
				t.Errorf("%s/%v: bad F1 %v", r.Dataset, r.Algorithm, p.F1)
			}
		}
	}
}

func TestFig6KMeansCoversMore(t *testing.T) {
	s := testSuite(t)
	results, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	var db, km Fig6Result
	for _, r := range results {
		switch r.Algorithm {
		case adm.DBSCAN:
			db = r
		case adm.KMeans:
			km = r
		}
	}
	if km.Stats.TotalArea <= db.Stats.TotalArea {
		t.Errorf("K-Means area %.0f should exceed DBSCAN %.0f (Fig 6)",
			km.Stats.TotalArea, db.Stats.TotalArea)
	}
	if km.Stats.NoisePruned != 0 {
		t.Errorf("K-Means pruned %d points, want 0", km.Stats.NoisePruned)
	}
	if db.Stats.NoisePruned == 0 {
		t.Error("DBSCAN should prune noise")
	}
}

func TestTableIVGrid(t *testing.T) {
	s := testSuite(t)
	rows, err := s.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 2 alg × 2 knowledge × 4 datasets
		t.Fatalf("%d rows, want 16", len(rows))
	}
	for _, r := range rows {
		f1 := r.Metrics.F1()
		if math.IsNaN(f1) || f1 <= 0 {
			t.Errorf("%v/%s/%s: degenerate F1 %v", r.Algorithm, r.Knowledge, r.Dataset, f1)
		}
	}
}

func TestBenignCosts(t *testing.T) {
	s := testSuite(t)
	costs, err := s.BenignCosts()
	if err != nil {
		t.Fatal(err)
	}
	if costs["A"] <= 0 || costs["B"] <= 0 {
		t.Fatalf("non-positive benign costs: %v", costs)
	}
	if costs["B"] >= costs["A"] {
		t.Errorf("house B (%v) should be cheaper than A (%v)", costs["B"], costs["A"])
	}
}

func TestTableVShapes(t *testing.T) {
	s := testSuite(t)
	rows, err := s.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // BIoTA + 2 frameworks × 2 ADM × 2 knowledge
		t.Fatalf("%d rows, want 9", len(rows))
	}
	benign, err := s.BenignCosts()
	if err != nil {
		t.Fatal(err)
	}
	get := func(fw, admName, knowledge string) TableVRow {
		for _, r := range rows {
			if r.Framework == fw && r.ADM == admName && r.Knowledge == knowledge {
				return r
			}
		}
		t.Fatalf("row %s/%s/%s missing", fw, admName, knowledge)
		return TableVRow{}
	}
	biota := rows[0]
	for _, house := range []string{"A", "B"} {
		// BIoTA's raw cost tops everything (unconstrained greedy FDI).
		if biota.CostUSD[house] <= benign[house] {
			t.Errorf("BIoTA cost %v not above benign %v", biota.CostUSD[house], benign[house])
		}
		// The clustering ADM catches the majority of BIoTA's vectors.
		if biota.DetectionRate[house] < 0.5 {
			t.Errorf("house %s: BIoTA detection %.2f, want >= 0.5 (paper: 60-100%%)",
				house, biota.DetectionRate[house])
		}
		// SHATTER with full knowledge beats greedy and raises cost above
		// benign.
		sh := get("SHATTER", "K-Means", "All Data")
		gr := get("Greedy", "K-Means", "All Data")
		// The window-optimised schedule should at least match greedy up to
		// evaluation noise (the surrogate the optimiser maximises is not
		// identical to the simulated bill).
		if sh.CostUSD[house] < gr.CostUSD[house]*0.98 {
			t.Errorf("house %s: SHATTER %v < greedy %v", house, sh.CostUSD[house], gr.CostUSD[house])
		}
		if sh.CostUSD[house] <= benign[house] {
			t.Errorf("house %s: SHATTER %v not above benign %v", house, sh.CostUSD[house], benign[house])
		}
		// Partial knowledge must not materially beat full knowledge (a few
		// percent of noise is possible because the two attacker models
		// shape different schedules; the paper's own Table V has similar
		// wobble).
		shPartial := get("SHATTER", "K-Means", "Partial Data")
		if shPartial.CostUSD[house] > sh.CostUSD[house]*1.05 {
			t.Errorf("house %s: partial knowledge (%v) beat full (%v)",
				house, shPartial.CostUSD[house], sh.CostUSD[house])
		}
	}
}

func TestFig10TriggerAddsCost(t *testing.T) {
	s := testSuite(t)
	results, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.TriggerExtra <= 0 {
			t.Errorf("house %s: triggering added %v", r.House, r.TriggerExtra)
		}
		if r.TriggerPct < 2 || r.TriggerPct > 80 {
			t.Errorf("house %s: trigger contribution %.1f%%, want the paper's ~20%% regime", r.House, r.TriggerPct)
		}
	}
}

func TestTableVIZoneCollapse(t *testing.T) {
	s := testSuite(t)
	rows, err := s.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, house := range []string{"A", "B"} {
		four := rows[0].ImpactUSD[house]
		two := rows[2].ImpactUSD[house]
		if two >= four {
			t.Errorf("house %s: 2-zone impact %v !< 4-zone %v", house, two, four)
		}
		// Dropping the kitchen should collapse the impact drastically
		// (paper: 3.7× / 12×).
		if four > 0 && two > four/2 {
			t.Errorf("house %s: 2-zone impact %v did not collapse vs %v", house, two, four)
		}
	}
}

func TestTableVIIApplianceDegradation(t *testing.T) {
	s := testSuite(t)
	rows, err := s.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, house := range []string{"A", "B"} {
		all := rows[0].ImpactUSD[house]
		three := rows[2].ImpactUSD[house]
		if three > all {
			t.Errorf("house %s: 3-appliance impact %v exceeds 13-appliance %v", house, three, all)
		}
		// The three heavy hitters keep a significant share (paper: 93/125).
		if all > 0 && three < all/4 {
			t.Errorf("house %s: 3-appliance impact %v degraded too much vs %v", house, three, all)
		}
	}
}

func TestFig11aExponentialGrowth(t *testing.T) {
	s := testSuite(t)
	points, err := s.Fig11a([]int{4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if points[1].Nodes <= points[0].Nodes || points[2].Nodes <= points[1].Nodes {
		t.Errorf("node counts not increasing: %+v", points)
	}
	growth1 := float64(points[1].Nodes) / float64(points[0].Nodes)
	growth2 := float64(points[2].Nodes) / float64(points[1].Nodes)
	if growth1 < 1.5 || growth2 < 1.5 {
		t.Errorf("growth not super-linear: %v %v", growth1, growth2)
	}
}

func TestFig11bModerateGrowth(t *testing.T) {
	s := testSuite(t)
	points, err := s.Fig11b([]int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// Horizontal scaling must stay polynomial: 4×the zones should cost far
	// less than the exponential profile of Fig 11a (well under 50× nodes).
	ratio := float64(points[2].Nodes) / float64(points[0].Nodes)
	if ratio > 50 {
		t.Errorf("zone scaling ratio %v too steep", ratio)
	}
}

func TestCaseStudy(t *testing.T) {
	s := testSuite(t)
	cs, err := s.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Slots) != 10 {
		t.Fatalf("%d slots", len(cs.Slots))
	}
	// Over the whole day the lookahead schedule must earn at least the
	// greedy schedule and at least reality (δ=0 is always available).
	if cs.DaySHATTERCents < cs.DayGreedyCents-1e-6 {
		t.Errorf("day: SHATTER %.3f¢ < greedy %.3f¢", cs.DaySHATTERCents, cs.DayGreedyCents)
	}
	if cs.DaySHATTERCents < cs.DayActualCents-1e-6 {
		t.Errorf("day: SHATTER %.3f¢ below benign %.3f¢", cs.DaySHATTERCents, cs.DayActualCents)
	}
}

func TestTestbedValidation(t *testing.T) {
	s := testSuite(t)
	res, err := s.Testbed()
	if err != nil {
		t.Fatal(err)
	}
	if res.FitErrorPct >= 2 {
		t.Errorf("fit error %.2f%%", res.FitErrorPct)
	}
	if res.IncreasePct < 40 {
		t.Errorf("testbed attack increase %.1f%%", res.IncreasePct)
	}
}
