package core

import (
	"errors"
	"reflect"
	"testing"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/attack"
)

// TestParallelMatchesSequential asserts the engine's central guarantee:
// a Workers=1 suite and a wide-pool suite produce identical experiment
// results, table for table.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := SuiteConfig{Days: 12, TrainDays: 9, Seed: 99, WindowLen: 10}
	cfg.Workers = 1
	seq, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}

	seqIV, err := seq.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	parIV, err := par.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqIV, parIV) {
		t.Errorf("TableIV diverges between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", seqIV, parIV)
	}

	seqV, err := seq.TableV()
	if err != nil {
		t.Fatal(err)
	}
	parV, err := par.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqV, parV) {
		t.Errorf("TableV diverges between Workers=1 and Workers=8:\nseq: %+v\npar: %+v", seqV, parV)
	}
}

// TestADMCacheTrainsOnce asserts that repeated trainADM calls return the
// same trained model without retraining, and that the experiment grid's
// training count equals the number of distinct (house, alg, prefix) keys.
func TestADMCacheTrainsOnce(t *testing.T) {
	s := testSuite(t)
	m1, err := s.trainADM("A", adm.DBSCAN, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().ADMTrainings; got != 1 {
		t.Fatalf("first training: count %d, want 1", got)
	}
	m2, err := s.trainADM("A", adm.DBSCAN, false)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("cache returned a different model instance for the same key")
	}
	if got := s.CacheStats().ADMTrainings; got != 1 {
		t.Errorf("repeated training: count %d, want 1 (cache miss)", got)
	}

	// The whole Table IV + Table V grid needs only the distinct keys:
	// 2 houses × 2 algorithms × 2 prefixes (full, partial).
	if _, err := s.TableIV(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TableV(); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().ADMTrainings; got != 8 {
		t.Errorf("after TableIV+TableV: %d trainings, want 8 distinct models", got)
	}
	// Re-running the experiments must not train anything new.
	if _, err := s.TableIV(); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().ADMTrainings; got != 8 {
		t.Errorf("after repeated TableIV: %d trainings, want 8", got)
	}
}

// TestTruthPlanCached asserts the memoized truth plan is a genuine no-op
// vector and that repeated lookups share one instance.
func TestTruthPlanCached(t *testing.T) {
	s := testSuite(t)
	p1, err := s.truthPlan("A")
	if err != nil {
		t.Fatal(err)
	}
	if n := p1.InjectedSlots(s.Trace("A")); n != 0 {
		t.Errorf("truth plan injects %d slots, want 0", n)
	}
	p2, err := s.truthPlan("A")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("truth plan not cached: distinct instances")
	}
}

// TestRunCellsErrorPropagation checks first-error-wins cancellation.
func TestRunCellsErrorPropagation(t *testing.T) {
	s := testSuite(t)
	sentinel := errors.New("cell failed")
	for _, workers := range []int{1, 4} {
		s.Config.Workers = workers
		err := s.runCells(32, func(i int) error {
			if i == 5 || i == 20 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: got %v, want sentinel", workers, err)
		}
	}
	s.Config.Workers = 0
	if err := s.runCells(8, func(int) error { return nil }); err != nil {
		t.Errorf("all-ok run returned %v", err)
	}
}

// TestCampaignCacheReuse asserts the plan-level memoization contract:
// grid cells that share (scenario, strategy, knowledge, capability) share
// one planned campaign; the triggered variant is a distinct cached entry
// built from the untriggered plan's reported streams without re-planning;
// impact evaluations are cached; and slot-restricted (unkeyable)
// capabilities bypass the cache entirely.
func TestCampaignCacheReuse(t *testing.T) {
	s := testSuite(t)
	spec := campaignSpec{
		House:    "A",
		Strategy: "SHATTER",
		Alg:      adm.DBSCAN,
		Cap:      attack.Full(s.Trace("A").House),
	}
	c1, err := s.campaignFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.campaignFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("same spec returned distinct campaigns (cache miss)")
	}
	trig := spec
	trig.Trigger = true
	ct, err := s.campaignFor(trig)
	if err != nil {
		t.Fatal(err)
	}
	if ct == c1 {
		t.Error("triggered spec must be a distinct campaign")
	}
	if &ct.plan.RepZone[0][0][0] != &c1.plan.RepZone[0][0][0] {
		t.Error("triggered campaign should share the untriggered reported streams (clone, not re-plan)")
	}
	if c1.plan.TriggeredSlots() != 0 {
		t.Error("untriggered cache entry was mutated by the triggering stage")
	}
	if ct.triggered == 0 || ct.plan.TriggeredSlots() != ct.triggered {
		t.Errorf("triggered campaign bookkeeping: %d marked vs %d counted",
			ct.plan.TriggeredSlots(), ct.triggered)
	}

	entries := s.CacheStats().Entries
	imp1, err := s.impactFor(spec, adm.DBSCAN, false, false)
	if err != nil {
		t.Fatal(err)
	}
	grew := s.CacheStats().Entries
	if grew <= entries {
		t.Error("first impact evaluation should add a cache entry")
	}
	imp2, err := s.impactFor(spec, adm.DBSCAN, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheStats().Entries != grew {
		t.Error("repeated impact evaluation grew the cache")
	}
	if !reflect.DeepEqual(imp1, imp2) {
		t.Error("cached impact diverges from the first evaluation")
	}

	// Slot-restricted capabilities carry a func and cannot be keyed: the
	// campaign is planned fresh each call and never cached.
	restricted := spec
	restricted.Cap = attack.Full(s.Trace("A").House)
	restricted.Cap.SlotAllowed = func(slot int) bool { return slot >= 600 }
	entries = s.CacheStats().Entries
	r1, err := s.campaignFor(restricted)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.campaignFor(restricted)
	if err != nil {
		t.Fatal(err)
	}
	if r1 == r2 {
		t.Error("unkeyable capability should plan fresh campaigns")
	}
	if s.CacheStats().Entries != entries {
		t.Error("unkeyable campaign leaked into the cache")
	}
}
