package core

import (
	"sync"
	"sync/atomic"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/hvac"
	"github.com/acyd-lab/shatter/internal/solver"
)

// artifactCache memoizes the expensive artifacts the experiment grid shares:
// trained ADMs, benign plant simulations, train/test splits, truth plans,
// and the BIoTA labelled-episode evaluation sets, each keyed by scenario ID
// so ScenarioSweep worlds reuse artifacts exactly like the paper pair.
// Seven of the paper's tables and figures retrain the very same models from
// scratch without it; with it the whole harness — including repeated
// benchmark iterations — computes each artifact exactly once.
//
// Every entry is built under a per-key sync.Once, so concurrent experiment
// cells that race for the same artifact block until the single builder
// finishes (singleflight semantics) and then share the result. Cached values
// are treated as immutable by all consumers.
type artifactCache struct {
	mu      sync.Mutex
	entries map[artifactKey]*cacheEntry
	// admTrains counts ADM trainings actually performed (not cache hits) —
	// the observable the cache tests and suite stats hook into.
	admTrains atomic.Int64
}

// artifactKey identifies one artifact. kind discriminates the artifact
// family; house (a scenario ID), alg, and n cover every family's parameters
// (n holds training days, occupant index, or boolean flags packed as bits
// depending on kind); extra carries the open-ended component of plan and
// impact keys (strategy plus capability signature) and is empty elsewhere.
type artifactKey struct {
	kind  artifactKind
	house string
	alg   adm.Algorithm
	n     int
	extra string
}

type artifactKind uint8

const (
	artifactADM       artifactKind = iota + 1 // (house, alg, trainDays) → *adm.Model
	artifactSplit                             // (house, n=from<<16|to) → *aras.Trace
	artifactBenign                            // (house, n=controller id) → hvac.Result
	artifactTruth                             // (house) → *attack.Plan
	artifactEpisodes                          // (house, n=occupant<<1|partial) → []adm.LabeledEpisode
	artifactCostTable                         // (house, n=occupant<<16|day) → []float64
	artifactPlan                              // (house, alg, n=flags, extra=strategy|capSig) → *campaign
	artifactImpact                            // (house, alg=defender, n=flags, extra=campaign sig) → attack.Impact
)

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

func newArtifactCache() *artifactCache {
	return &artifactCache{entries: make(map[artifactKey]*cacheEntry)}
}

// do returns the memoized artifact for k, building it at most once across
// all goroutines.
func (c *artifactCache) do(k artifactKey, build func() (any, error)) (any, error) {
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &cacheEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// size reports the number of cached entries (built or in flight).
func (c *artifactCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats reports the suite cache's effectiveness.
type CacheStats struct {
	// ADMTrainings is the number of adm.Train calls actually executed.
	ADMTrainings int64
	// Entries is the number of distinct cached artifacts.
	Entries int
}

// CacheStats returns the current cache counters.
func (s *Suite) CacheStats() CacheStats {
	return CacheStats{ADMTrainings: s.cache.admTrains.Load(), Entries: s.cache.size()}
}

// --- typed accessors -------------------------------------------------------

// trainADMPrefix fits (or returns the memoized) ADM for a house trained on
// the first endDays days, with the suite's per-algorithm hyperparameter
// policy. This is the single training entry point for every experiment:
// trainADM's full/partial axis and Fig 5's progressive prefixes are all
// (house, alg, endDays) points.
func (s *Suite) trainADMPrefix(house string, alg adm.Algorithm, endDays int) (*adm.Model, error) {
	v, err := s.cache.do(artifactKey{kind: artifactADM, house: house, alg: alg, n: endDays}, func() (any, error) {
		tr, err := s.trace(house).SubTrace(0, endDays)
		if err != nil {
			return nil, err
		}
		cfg := adm.DefaultConfig(alg)
		if alg == adm.DBSCAN {
			// Scale the density threshold with the training length so short
			// exploratory runs still form clusters: roughly one fifth of the
			// days must support a habit before it counts.
			cfg.MinPts = max(3, endDays/5)
			cfg.Eps = 30
		}
		s.cache.admTrains.Add(1)
		return adm.Train(tr, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*adm.Model), nil
}

// trainSplit returns the training prefix of a house's trace.
func (s *Suite) trainSplit(house string) (*aras.Trace, error) {
	return s.split(house, 0, s.Config.TrainDays)
}

// testSplit returns the held-out suffix.
func (s *Suite) testSplit(house string) (*aras.Trace, error) {
	return s.split(house, s.Config.TrainDays, s.Config.Days)
}

func (s *Suite) split(house string, from, to int) (*aras.Trace, error) {
	v, err := s.cache.do(artifactKey{kind: artifactSplit, house: house, n: from<<16 | to}, func() (any, error) {
		return s.trace(house).SubTrace(from, to)
	})
	if err != nil {
		return nil, err
	}
	return v.(*aras.Trace), nil
}

// Controller identifiers for the benign-simulation cache.
const (
	ctrlSHATTER = iota
	ctrlASHRAE
)

// benignSim returns the memoized no-attack simulation of a scenario under
// the given controller. The ctrlSHATTER entry (the scenario's configured
// controller) doubles as the benign leg of every attack-impact evaluation.
func (s *Suite) benignSim(house string, ctrlID int) (hvac.Result, error) {
	v, err := s.cache.do(artifactKey{kind: artifactBenign, house: house, n: ctrlID}, func() (any, error) {
		tr := s.trace(house)
		var ctrl hvac.Controller
		switch ctrlID {
		case ctrlASHRAE:
			ctrl = hvac.NewASHRAEController(s.Params, tr.House)
		default:
			ctrl = s.controllerFor(house)
		}
		return hvac.Simulate(tr, ctrl, s.Params, s.pricingFor(house), hvac.Options{})
	})
	if err != nil {
		return hvac.Result{}, err
	}
	return v.(hvac.Result), nil
}

// truthPlan returns the memoized no-op plan (reported = actual) for a house.
// The plan is immutable by convention: consumers must not trigger appliances
// on it. No experiment currently consumes it (BenignCosts reads the cached
// benign simulation directly); it stays as the cached reference vector for
// detection baselines and is covered by TestTruthPlanCached.
func (s *Suite) truthPlan(house string) (*attack.Plan, error) {
	v, err := s.cache.do(artifactKey{kind: artifactTruth, house: house}, func() (any, error) {
		pl := s.planner(house, nil, attack.Capability{})
		return pl.PlanBIoTA() // powerless capability ⇒ pure truth
	})
	if err != nil {
		return nil, err
	}
	return v.(*attack.Plan), nil
}

// labeledEpisodes returns the memoized Table IV / Fig 5 evaluation set for
// one occupant: benign episodes from the held-out days plus the injected
// episodes of a BIoTA attack over those days. With partial knowledge the
// attacker only alters measurements in the time windows they observed data
// for (alternating hours), which changes the attack-sample distribution the
// ADM is scored on — the Table IV "Partial Data" axis. BIoTA is ADM-
// oblivious (rule-based verification only), so the set depends solely on
// (house, occupant, partial) and is shared across every ADM backend and
// training prefix that scores against it.
func (s *Suite) labeledEpisodes(house string, occupant int, partial bool) ([]adm.LabeledEpisode, error) {
	flag := 0
	if partial {
		flag = 1
	}
	v, err := s.cache.do(artifactKey{kind: artifactEpisodes, house: house, n: occupant<<1 | flag}, func() (any, error) {
		return s.buildLabeledEpisodes(house, occupant, partial)
	})
	if err != nil {
		return nil, err
	}
	return v.([]adm.LabeledEpisode), nil
}

// costSurface returns the memoized occupant-day surrogate cost tables for a
// house's full trace. The surface depends only on (trace, cost model), so
// one table per (house, day, occupant) serves every strategy, backend, and
// knowledge level that plans against the house. Planners re-pointed at a
// different trace (sub-trace splits) get nil back and tabulate locally.
func (s *Suite) costSurface(house string) func(tr *aras.Trace, day, occupant int) solver.CostFn {
	full := s.trace(house)
	return func(tr *aras.Trace, day, occupant int) solver.CostFn {
		if tr != full {
			return nil // surface indexes full-trace days only
		}
		v, err := s.cache.do(artifactKey{kind: artifactCostTable, house: house, n: occupant<<16 | day}, func() (any, error) {
			pl := s.planner(house, nil, attack.Capability{})
			pl.CostSurface = nil // build from first principles
			return pl.CostTable(day, occupant), nil
		})
		if err != nil { // unreachable: the builder cannot fail
			panic(err)
		}
		return attack.CostFnFromTable(v.([]float64))
	}
}

func (s *Suite) buildLabeledEpisodes(house string, occupant int, partial bool) ([]adm.LabeledEpisode, error) {
	test, err := s.testSplit(house)
	if err != nil {
		return nil, err
	}
	var labeled []adm.LabeledEpisode
	for _, e := range test.Episodes(occupant) {
		labeled = append(labeled, adm.LabeledEpisode{Episode: e})
	}
	capability := attack.Full(test.House)
	if partial {
		capability.SlotAllowed = func(slot int) bool { return (slot/60)%2 == 0 }
	}
	pl := s.planner(house, nil, capability)
	pl.Trace = test // the surface provider detects the sub-trace and opts out
	plan, err := pl.PlanBIoTA()
	if err != nil {
		return nil, err
	}
	for d := 0; d < test.NumDays(); d++ {
		for _, e := range plan.DayReportedEpisodes(test, d, occupant) {
			if e.Injected {
				labeled = append(labeled, adm.LabeledEpisode{Episode: e.Episode, Attack: true})
			}
		}
	}
	return labeled, nil
}
