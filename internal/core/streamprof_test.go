package core_test

import (
	"testing"

	"github.com/acyd-lab/shatter/internal/core"
	"github.com/acyd-lab/shatter/internal/scenario"
)

func BenchmarkStreamFleetDirectProf(b *testing.B) {
	s, err := core.NewSuite(core.SuiteConfig{Days: 12, TrainDays: 9, Seed: 20230427, WindowLen: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Stream(scenario.SynthFleet(100, 20230427), core.StreamOptions{Days: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
