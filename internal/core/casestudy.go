package core

import (
	"fmt"

	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/home"
)

// CaseStudySlot is one timeline column of the Table III case study.
type CaseStudySlot struct {
	Slot int
	// Actual/Greedy/SHATTER are the per-occupant zones at the slot.
	Actual  []home.ZoneID
	Greedy  []home.ZoneID
	SHATTER []home.ZoneID
	// StayMin/StayMax bound the stealthy stay for each occupant's SHATTER
	// zone given its arrival (the "Range Threshold" row); -1,-1 when the
	// arrival is uncovered.
	StayMin []int
	StayMax []int
	// Trigger is Algorithm 1's per-occupant triggering decision.
	Trigger []bool
}

// CaseStudyResult is the Section V case study: a 10-slot evening window of
// House A with per-strategy schedules and window cost accounting.
type CaseStudyResult struct {
	Day       int
	StartSlot int
	Slots     []CaseStudySlot
	// Surrogate window costs (¢) per strategy summed over both occupants.
	ActualCostCents  float64
	GreedyCostCents  float64
	SHATTERCostCents float64
	// Whole-day surrogate costs (¢): the lookahead schedule may sacrifice a
	// single window (e.g. when reality is already at peak dinner-time cost)
	// for a better day, so the day totals are the meaningful comparison.
	DayActualCents  float64
	DayGreedyCents  float64
	DaySHATTERCents float64
}

// CaseStudy reproduces Table III: the 6:00-6:09 PM window of the first
// scenario (House A under the default configuration), comparing the actual
// occupancy, the greedy schedule, and the SHATTER schedule, with the ADM
// stay thresholds and appliance-trigger decisions.
func (s *Suite) CaseStudy() (*CaseStudyResult, error) {
	const start = 18 * 60 // 6:00 PM
	const span = 10
	house := s.Worlds[0].ID
	day := 4
	if day >= s.Config.Days {
		day = s.Config.Days - 1
	}
	model, err := s.trainADM(house, adm.KMeans, false)
	if err != nil {
		return nil, err
	}
	tr := s.trace(house)
	pl := s.planner(house, model, attack.Full(tr.House))
	spec := campaignSpec{House: house, Strategy: "Greedy", Alg: adm.KMeans, Cap: attack.Full(tr.House)}
	greedyCamp, err := s.campaignFor(spec)
	if err != nil {
		return nil, fmt.Errorf("core: case study greedy: %w", err)
	}
	spec.Strategy, spec.Trigger = "SHATTER", true
	shatterCamp, err := s.campaignFor(spec)
	if err != nil {
		return nil, fmt.Errorf("core: case study shatter: %w", err)
	}
	greedy, shatter := greedyCamp.plan, shatterCamp.plan

	occ := len(tr.House.Occupants)
	res := &CaseStudyResult{Day: day, StartSlot: start}
	for t := start; t < start+span; t++ {
		slot := CaseStudySlot{
			Slot:    t,
			Actual:  make([]home.ZoneID, occ),
			Greedy:  make([]home.ZoneID, occ),
			SHATTER: make([]home.ZoneID, occ),
			StayMin: make([]int, occ),
			StayMax: make([]int, occ),
			Trigger: make([]bool, occ),
		}
		for o := 0; o < occ; o++ {
			slot.Actual[o] = tr.Days[day].Zone[o][t]
			slot.Greedy[o] = greedy.RepZone[day][o][t]
			slot.SHATTER[o] = shatter.RepZone[day][o][t]
			arr := reportedArrival(shatter, day, o, t)
			if mn, mx, ok := model.StayRange(o, slot.SHATTER[o], arr); ok {
				slot.StayMin[o], slot.StayMax[o] = mn, mx
			} else {
				slot.StayMin[o], slot.StayMax[o] = -1, -1
			}
			// Trigger status: the reported zone is within the min-stay
			// window of its arrival and really unoccupied (Algorithm 1).
			if slot.SHATTER[o].Conditioned() {
				thresh := 0
				if mn, ok := model.MinStay(o, slot.SHATTER[o], arr); ok {
					thresh = mn
				}
				if t-arr <= thresh && !actuallyOccupied(tr, day, t, slot.SHATTER[o]) {
					slot.Trigger[o] = true
				}
			}
		}
		res.Slots = append(res.Slots, slot)
	}
	// Window and whole-day surrogate costs in cents.
	for o := 0; o < occ; o++ {
		cost := pl.CostFnFor(day, o)
		for t := start; t < start+span; t++ {
			res.ActualCostCents += cost(t, tr.Days[day].Zone[o][t]) * 100
			res.GreedyCostCents += cost(t, greedy.RepZone[day][o][t]) * 100
			res.SHATTERCostCents += cost(t, shatter.RepZone[day][o][t]) * 100
		}
		for t := 0; t < aras.SlotsPerDay; t++ {
			res.DayActualCents += cost(t, tr.Days[day].Zone[o][t]) * 100
			res.DayGreedyCents += cost(t, greedy.RepZone[day][o][t]) * 100
			res.DaySHATTERCents += cost(t, shatter.RepZone[day][o][t]) * 100
		}
	}
	return res, nil
}

// reportedArrival scans back through the reported stream to the stay start.
func reportedArrival(p *attack.Plan, day, occupant, slot int) int {
	zones := p.RepZone[day][occupant]
	z := zones[slot]
	for slot > 0 && zones[slot-1] == z {
		slot--
	}
	return slot
}

func actuallyOccupied(tr *aras.Trace, day, slot int, z home.ZoneID) bool {
	for o := range tr.Days[day].Zone {
		if tr.Days[day].Zone[o][slot] == z {
			return true
		}
	}
	return false
}
