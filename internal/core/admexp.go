package core

import (
	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/stats"
)

// Fig4Result is the hyperparameter-tuning sweep for one ADM backend on one
// dataset (Fig 4): validity scores per hyperparameter value.
type Fig4Result struct {
	Dataset   string
	Algorithm adm.Algorithm
	Points    []adm.TunePoint
}

// Fig4 sweeps DBSCAN MinPts and K-Means k on the first scenario's first
// occupant (the paper's HAO1 dataset under the default configuration). The
// two backend sweeps run as independent cells.
func (s *Suite) Fig4() ([]Fig4Result, error) {
	first := s.Worlds[0].ID
	train, err := s.trainSplit(first)
	if err != nil {
		return nil, err
	}
	name := aras.DatasetName(first, 0)
	out := []Fig4Result{
		{Dataset: name, Algorithm: adm.DBSCAN},
		{Dataset: name, Algorithm: adm.KMeans},
	}
	err = s.runCells(len(out), func(i int) error {
		switch out[i].Algorithm {
		case adm.DBSCAN:
			out[i].Points = adm.TuneDBSCAN(train, 0, 25, 5, 50, 5)
		default:
			out[i].Points = adm.TuneKMeans(train, 0, s.Config.Seed, 2, 40, 3)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig5Point is one (training days, F1) measurement.
type Fig5Point struct {
	TrainDays int
	F1        float64
}

// Fig5Result is the progressive-training curve for one ADM on one dataset.
type Fig5Result struct {
	Dataset   string
	Occupant  int
	House     string
	Algorithm adm.Algorithm
	Points    []Fig5Point
}

// Fig5 reproduces the progressive incremental performance study: ADMs
// trained on 10/15/20/25-day prefixes, scored by F1 against BIoTA attack
// episodes plus held-out benign episodes. The eight curves run as
// independent cells; the prefix models and labelled-episode sets come from
// the suite cache, so each (house, algorithm, prefix) model is trained once
// and shared between the two occupants' curves.
func (s *Suite) Fig5() ([]Fig5Result, error) {
	days := []int{10, 15, 20, 25}
	var out []Fig5Result
	for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
		for _, house := range s.ScenarioIDs() {
			for o := range s.trace(house).House.Occupants {
				out = append(out, Fig5Result{
					Dataset:   aras.DatasetName(house, o),
					Occupant:  o,
					House:     house,
					Algorithm: alg,
				})
			}
		}
	}
	err := s.runCells(len(out), func(i int) error {
		res := &out[i]
		for _, td := range days {
			if td >= s.Config.Days {
				continue
			}
			f1, err := s.progressiveF1(res.House, res.Occupant, res.Algorithm, td)
			if err != nil {
				return err
			}
			res.Points = append(res.Points, Fig5Point{TrainDays: td, F1: f1})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// progressiveF1 trains (or fetches) the prefix ADM and scores it on the
// labelled evaluation set: held-out benign days plus BIoTA-generated attack
// episodes.
func (s *Suite) progressiveF1(house string, occupant int, alg adm.Algorithm, trainDays int) (float64, error) {
	model, err := s.trainADMPrefix(house, alg, trainDays)
	if err != nil {
		return 0, err
	}
	labeled, err := s.labeledEpisodes(house, occupant, false)
	if err != nil {
		return 0, err
	}
	return adm.Evaluate(model, labeled).F1(), nil
}

// Fig6Result compares the learned cluster geometry of the two backends on
// HAO1 (Fig 6): K-Means covers more area because it absorbs every sample.
type Fig6Result struct {
	Algorithm adm.Algorithm
	Stats     adm.HullStats
}

// Fig6 reports hull statistics for both backends on the first scenario.
func (s *Suite) Fig6() ([]Fig6Result, error) {
	first := s.Worlds[0].ID
	out := []Fig6Result{{Algorithm: adm.DBSCAN}, {Algorithm: adm.KMeans}}
	err := s.runCells(len(out), func(i int) error {
		model, err := s.trainADM(first, out[i].Algorithm, false)
		if err != nil {
			return err
		}
		out[i].Stats = model.Stats()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TableIVRow is one row of the ADM-performance grid (Table IV).
type TableIVRow struct {
	Algorithm adm.Algorithm
	Knowledge string // "All Data" or "Partial Data"
	Dataset   string
	Metrics   stats.Confusion
}

// TableIV evaluates both ADMs on every scenario's per-occupant datasets
// against BIoTA attack samples generated with full or partial attacker
// knowledge. The grid cells run in parallel; the defender models and
// labelled-episode sets are cache-shared, so the grid trains each distinct
// model exactly once.
func (s *Suite) TableIV() ([]TableIVRow, error) {
	type cell struct {
		alg     adm.Algorithm
		partial bool
		house   string
		occ     int
	}
	var cells []cell
	var rows []TableIVRow
	for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
		for _, partial := range []bool{false, true} {
			knowledge := "All Data"
			if partial {
				knowledge = "Partial Data"
			}
			for _, house := range s.ScenarioIDs() {
				for o := range s.trace(house).House.Occupants {
					cells = append(cells, cell{alg, partial, house, o})
					rows = append(rows, TableIVRow{
						Algorithm: alg,
						Knowledge: knowledge,
						Dataset:   aras.DatasetName(house, o),
					})
				}
			}
		}
	}
	err := s.runCells(len(cells), func(i int) error {
		c := cells[i]
		defender, err := s.trainADM(c.house, c.alg, false)
		if err != nil {
			return err
		}
		// BIoTA's attack samples are ADM-oblivious: the partial-knowledge
		// axis shapes them through the capability's observed-slot mask, so
		// the attacker's own model estimate never needs training here.
		labeled, err := s.labeledEpisodes(c.house, c.occ, c.partial)
		if err != nil {
			return err
		}
		rows[i].Metrics = adm.Evaluate(defender, labeled)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
