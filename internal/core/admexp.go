package core

import (
	"github.com/acyd-lab/shatter/internal/adm"
	"github.com/acyd-lab/shatter/internal/aras"
	"github.com/acyd-lab/shatter/internal/attack"
	"github.com/acyd-lab/shatter/internal/stats"
)

// Fig4Result is the hyperparameter-tuning sweep for one ADM backend on one
// dataset (Fig 4): validity scores per hyperparameter value.
type Fig4Result struct {
	Dataset   string
	Algorithm adm.Algorithm
	Points    []adm.TunePoint
}

// Fig4 sweeps DBSCAN MinPts and K-Means k on the HAO1 dataset.
func (s *Suite) Fig4() ([]Fig4Result, error) {
	train, err := s.trainSplit("A")
	if err != nil {
		return nil, err
	}
	name := aras.DatasetName("A", 0)
	return []Fig4Result{
		{Dataset: name, Algorithm: adm.DBSCAN, Points: adm.TuneDBSCAN(train, 0, 25, 5, 50, 5)},
		{Dataset: name, Algorithm: adm.KMeans, Points: adm.TuneKMeans(train, 0, s.Config.Seed, 2, 40, 3)},
	}, nil
}

// Fig5Point is one (training days, F1) measurement.
type Fig5Point struct {
	TrainDays int
	F1        float64
}

// Fig5Result is the progressive-training curve for one ADM on one dataset.
type Fig5Result struct {
	Dataset   string
	Occupant  int
	House     string
	Algorithm adm.Algorithm
	Points    []Fig5Point
}

// Fig5 reproduces the progressive incremental performance study: ADMs
// trained on 10/15/20/25-day prefixes, scored by F1 against BIoTA attack
// episodes plus held-out benign episodes.
func (s *Suite) Fig5() ([]Fig5Result, error) {
	days := []int{10, 15, 20, 25}
	var out []Fig5Result
	for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
		for _, house := range []string{"A", "B"} {
			for o := range s.Houses[house].House.Occupants {
				res := Fig5Result{
					Dataset:   aras.DatasetName(house, o),
					Occupant:  o,
					House:     house,
					Algorithm: alg,
				}
				for _, td := range days {
					if td >= s.Config.Days {
						continue
					}
					f1, err := s.progressiveF1(house, o, alg, td)
					if err != nil {
						return nil, err
					}
					res.Points = append(res.Points, Fig5Point{TrainDays: td, F1: f1})
				}
				out = append(out, res)
			}
		}
	}
	return out, nil
}

// progressiveF1 trains an ADM on a prefix and scores it on labelled
// episodes: held-out benign days plus BIoTA-generated attack episodes.
func (s *Suite) progressiveF1(house string, occupant int, alg adm.Algorithm, trainDays int) (float64, error) {
	trainTr, err := s.Houses[house].SubTrace(0, trainDays)
	if err != nil {
		return 0, err
	}
	cfg := adm.DefaultConfig(alg)
	if alg == adm.DBSCAN {
		cfg.MinPts = maxInt(3, trainDays/5)
		cfg.Eps = 30
	}
	model, err := adm.Train(trainTr, cfg)
	if err != nil {
		return 0, err
	}
	labeled, err := s.labeledEpisodes(house, occupant, model, false)
	if err != nil {
		return 0, err
	}
	return adm.Evaluate(model, labeled).F1(), nil
}

// labeledEpisodes builds the Table IV / Fig 5 evaluation set for one
// occupant: benign episodes from the held-out days plus the injected
// episodes of a BIoTA attack over those days. With partial knowledge the
// attacker only alters measurements in the time windows they observed data
// for (alternating hours), which changes the attack-sample distribution the
// ADM is scored on — the Table IV "Partial Data" axis.
func (s *Suite) labeledEpisodes(house string, occupant int, attackerModel *adm.Model, partial bool) ([]adm.LabeledEpisode, error) {
	test, err := s.testSplit(house)
	if err != nil {
		return nil, err
	}
	var labeled []adm.LabeledEpisode
	for _, e := range test.Episodes(occupant) {
		labeled = append(labeled, adm.LabeledEpisode{Episode: e})
	}
	cap := attack.Full(test.House)
	if partial {
		cap.SlotAllowed = func(slot int) bool { return (slot/60)%2 == 0 }
	}
	pl := s.planner(house, attackerModel, cap)
	pl.Trace = test
	plan, err := pl.PlanBIoTA()
	if err != nil {
		return nil, err
	}
	for d := 0; d < test.NumDays(); d++ {
		for _, e := range plan.DayReportedEpisodes(test, d, occupant) {
			if e.Injected {
				labeled = append(labeled, adm.LabeledEpisode{Episode: e.Episode, Attack: true})
			}
		}
	}
	return labeled, nil
}

// Fig6Result compares the learned cluster geometry of the two backends on
// HAO1 (Fig 6): K-Means covers more area because it absorbs every sample.
type Fig6Result struct {
	Algorithm adm.Algorithm
	Stats     adm.HullStats
}

// Fig6 reports hull statistics for both backends.
func (s *Suite) Fig6() ([]Fig6Result, error) {
	var out []Fig6Result
	for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
		model, err := s.trainADM("A", alg, false)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Result{Algorithm: alg, Stats: model.Stats()})
	}
	return out, nil
}

// TableIVRow is one row of the ADM-performance grid (Table IV).
type TableIVRow struct {
	Algorithm adm.Algorithm
	Knowledge string // "All Data" or "Partial Data"
	Dataset   string
	Metrics   stats.Confusion
}

// TableIV evaluates both ADMs on all four datasets against BIoTA attack
// samples generated with full or partial attacker knowledge.
func (s *Suite) TableIV() ([]TableIVRow, error) {
	var out []TableIVRow
	for _, alg := range []adm.Algorithm{adm.DBSCAN, adm.KMeans} {
		for _, partial := range []bool{false, true} {
			knowledge := "All Data"
			if partial {
				knowledge = "Partial Data"
			}
			for _, house := range []string{"A", "B"} {
				defender, err := s.trainADM(house, alg, false)
				if err != nil {
					return nil, err
				}
				attacker, err := s.trainADM(house, alg, partial)
				if err != nil {
					return nil, err
				}
				for o := range s.Houses[house].House.Occupants {
					labeled, err := s.labeledEpisodes(house, o, attacker, partial)
					if err != nil {
						return nil, err
					}
					out = append(out, TableIVRow{
						Algorithm: alg,
						Knowledge: knowledge,
						Dataset:   aras.DatasetName(house, o),
						Metrics:   adm.Evaluate(defender, labeled),
					})
				}
			}
		}
	}
	return out, nil
}

